// Insider attacks (Section 5.3): what a *compromised* node — as opposed to
// a merely dead one — can and cannot do to an HOURS-protected hierarchy.
//
// Three demonstrations:
//   1. Theorem 5 live: a query-dropping insider at index distance d from a
//      victim sibling costs the victim ~1/(d+1) of its accessibility —
//      moving the insider away decays its power hyperbolically.
//   2. Mis-routing insiders waste hops but rarely deny service: honest
//      nodes resume the algorithm.
//   3. At the message level, an insider is *stealthier* than a DoS: it acks
//      every hop, so upstream nodes learn nothing from timeouts, and the
//      query silently vanishes — whereas routing around a dead node is
//      routine.
//
//   $ ./insider_demo
#include <cstdio>

#include "analysis/resilience.hpp"
#include "overlay/overlay.hpp"
#include "sim/hierarchy_protocol.hpp"

namespace {

using namespace hours;

void theorem5_live() {
  std::printf("== 1. dropper power vs distance (Theorem 5, N=200 overlay) ==\n");
  std::printf("   %-10s %-18s %-18s\n", "distance", "measured damage", "1/(d+1)");
  for (const std::uint32_t d : {1U, 3U, 9U, 24U}) {
    int delivered = 0;
    int total = 0;
    for (int seed = 0; seed < 60; ++seed) {
      overlay::OverlayParams params;
      params.design = overlay::Design::kEnhanced;
      params.k = 1;
      params.q = 2;
      params.seed = 0x1D0 + static_cast<std::uint64_t>(seed);
      overlay::Overlay ov{200, params};
      const ids::RingIndex victim = 77;
      ov.set_behavior(ids::counter_clockwise_step(victim, d, 200),
                      overlay::NodeBehavior::kDropper);
      for (ids::RingIndex from = 0; from < 200; from += 10) {
        if (from == victim) continue;
        ++total;
        if (ov.forward(from, victim).kind == overlay::ExitKind::kArrivedAtOd) ++delivered;
      }
    }
    const double damage = 1.0 - static_cast<double>(delivered) / total;
    std::printf("   %-10u %-18.3f %-18.3f\n", d, damage, analysis::theorem5_damage(d));
  }
}

void misrouter_live() {
  std::printf("\n== 2. misrouter: wasted hops, not denial (N=200 overlay) ==\n");
  overlay::OverlayParams params;
  params.design = overlay::Design::kEnhanced;
  params.k = 5;
  params.q = 2;
  overlay::Overlay ov{200, params};
  ov.set_behavior(30, overlay::NodeBehavior::kMisrouter);

  int delivered = 0;
  std::uint64_t hops = 0;
  int total = 0;
  for (ids::RingIndex to = 35; to < 200; to += 6) {
    const auto res = ov.forward(30, to);  // every query starts AT the insider
    ++total;
    if (res.kind == overlay::ExitKind::kArrivedAtOd) {
      ++delivered;
      hops += res.hops;
    }
  }
  std::printf("   %d/%d queries injected *at* the insider still delivered, avg %.1f hops\n",
              delivered, total, static_cast<double>(hops) / delivered);
}

void stealth_live() {
  std::printf("\n== 3. stealth: DoS'd node vs insider, at the message level ==\n");
  for (const bool insider : {false, true}) {
    sim::HierarchySimConfig cfg;
    cfg.fanout = {12, 4};
    cfg.params.k = 3;
    cfg.params.q = 2;
    sim::HierarchySimulation sim{cfg};
    if (insider) {
      sim.set_behavior({5}, overlay::NodeBehavior::kDropper);
    } else {
      sim.kill({5});
    }
    const auto outcome = sim.run_query({5, 2});
    std::printf("   zone 5 %-9s -> query %-12s (%u hops, %u timeouts%s)\n",
                insider ? "INSIDER" : "DoS'd",
                outcome.delivered ? "delivered" : "never answers", outcome.hops,
                outcome.timeouts,
                insider ? " — no timeout ever fired; nothing to route around" : "");
  }
  std::printf("\n   A dead server is routed around; a compromised one must be *evicted* —\n"
              "   which is why HOURS keeps the parent's admission control (Section 5.3).\n");
}

}  // namespace

int main() {
  theorem5_live();
  misrouter_live();
  stealth_live();
  return 0;
}
