// Quickstart: build a small HOURS-protected hierarchy, take down a zone,
// and watch queries detour around it.
//
//   $ ./quickstart
#include <cstdio>

#include "hours/hours.hpp"

namespace {

void show(const char* label, const hours::QueryResult& r) {
  if (r.delivered) {
    std::printf("%-34s delivered in %u hops (%u tree, %u overlay, %u inter-overlay)\n", label,
                r.hops, r.hierarchical_hops, r.overlay_hops, r.inter_overlay_hops);
    if (!r.path.empty()) {
      std::printf("  path:");
      for (const auto& node : r.path) std::printf(" -> %s", node.c_str());
      std::printf("\n");
    }
  } else {
    std::printf("%-34s FAILED (%s)\n", label, hours::util::to_string(r.failure));
  }
}

}  // namespace

int main() {
  // Enhanced design with k = 3 redundant pointers and q = 2 nephews/entry.
  hours::HoursConfig config;
  config.overlay.design = hours::overlay::Design::kEnhanced;
  config.overlay.k = 3;
  config.overlay.q = 2;
  hours::HoursSystem sys{config};

  // Delegated admission: each zone admits its own children (Section 3.1).
  for (const char* zone : {"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}) {
    sys.admit(zone);
    for (const char* svc : {"api", "web", "db"}) {
      sys.admit(std::string{svc} + "." + zone);
    }
  }

  std::printf("== healthy hierarchy ==\n");
  show("query(api.gamma):", sys.query("api.gamma", /*record_path=*/true));
  // A second lookup warms the client's bootstrap cache with the (alive)
  // level-1 zone "epsilon" — it will matter once the root goes down.
  show("query(db.epsilon):", sys.query("db.epsilon"));

  std::printf("\n== DoS attack on zone 'gamma' ==\n");
  sys.set_alive("gamma", false);
  show("query(api.gamma):", sys.query("api.gamma", /*record_path=*/true));
  std::printf("  (the level-1 overlay carried the query around the dead zone server)\n");

  std::printf("\n== root also under attack: bootstrap from the client cache ==\n");
  sys.set_alive(".", false);
  const auto r = sys.query("web.beta", /*record_path=*/true);
  show("query(web.beta):", r);
  std::printf("  used bootstrap cache: %s\n", r.used_bootstrap_cache ? "yes" : "no");

  std::printf("\n== recovery ==\n");
  sys.set_alive(".", true);
  sys.set_alive("gamma", true);
  show("query(api.gamma):", sys.query("api.gamma"));
  return 0;
}
