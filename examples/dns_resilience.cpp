// DNS-flavored scenario — the workload that motivates the paper's intro.
//
// A miniature DNS: root -> TLDs (com/net/org/edu) -> domains -> hosts.
// A topology-aware attacker takes down the 'com' zone server *and* its
// counter-clockwise TLD neighbors (the optimal neighbor attack), trying to
// deny every name under .com. HOURS keeps resolving; the unprotected tree
// would return SERVFAIL for the whole subtree (Figure 1's domino effect).
//
//   $ ./dns_resilience
#include <cstdio>
#include <string>
#include <vector>

#include "hours/hours.hpp"

namespace {

struct Tally {
  int delivered = 0;
  int failed = 0;
  std::uint64_t hops = 0;
};

Tally resolve_all(hours::HoursSystem& sys, const std::vector<std::string>& names) {
  Tally t;
  for (const auto& name : names) {
    const auto r = sys.query(name);
    if (r.delivered) {
      ++t.delivered;
      t.hops += r.hops;
    } else {
      ++t.failed;
    }
  }
  return t;
}

void report(const char* phase, const Tally& t) {
  const int total = t.delivered + t.failed;
  std::printf("%-44s %3d/%3d resolved, avg %.1f hops\n", phase, t.delivered, total,
              t.delivered > 0 ? static_cast<double>(t.hops) / t.delivered : 0.0);
}

}  // namespace

int main() {
  hours::HoursConfig config;
  config.overlay.k = 5;
  config.overlay.q = 4;
  hours::HoursSystem sys{config};

  // Build the name space. 12 TLDs so the level-1 overlay has room to route.
  const std::vector<std::string> tlds{"com", "net",  "org", "edu", "gov", "io",
                                      "dev", "info", "biz", "tv",  "co",  "app"};
  std::vector<std::string> host_names;
  for (const auto& tld : tlds) {
    sys.admit(tld);
    for (const char* domain : {"example", "acme", "initech"}) {
      const std::string d = std::string{domain} + "." + tld;
      sys.admit(d);
      for (const char* host : {"www", "mail", "ns1"}) {
        const std::string h = std::string{host} + "." + d;
        sys.admit(h);
        host_names.push_back(h);
      }
    }
  }

  std::printf("miniature DNS: %zu zones/hosts admitted under %zu TLDs\n\n",
              host_names.size() + tlds.size() * 4, tlds.size());

  report("healthy: resolve all hosts", resolve_all(sys, host_names));

  // -- the attack: 'com' plus its CCW neighbors in the TLD overlay ----------------
  // A topology-aware attacker can compute every TLD's ring position from the
  // public hash, so it knows exactly which TLD servers are com's potential
  // exits and hits those.
  auto& hierarchy = sys.hierarchy();
  const auto com_path = hierarchy.resolve(hours::naming::Name::parse("com").value()).value();
  auto& tld_overlay = hierarchy.overlay_of({});
  sys.set_alive("com", false);
  std::vector<std::string> killed_tlds{"com"};
  for (std::uint32_t step = 1; step <= 3; ++step) {
    const auto victim =
        hours::ids::counter_clockwise_step(com_path.back(), step, tld_overlay.size());
    const auto victim_name = hierarchy.name_of({victim}).value().to_string();
    sys.set_alive(victim_name, false);
    killed_tlds.push_back(victim_name);
  }
  std::printf("\nneighbor attack on the TLD overlay: killed");
  for (const auto& z : killed_tlds) std::printf(" .%s", z.c_str());
  std::printf("\n\n");

  std::vector<std::string> com_hosts;
  for (const auto& h : host_names) {
    if (h.size() > 4 && h.substr(h.size() - 4) == ".com") com_hosts.push_back(h);
  }
  report("under attack: resolve *.com (HOURS)", resolve_all(sys, com_hosts));

  // What plain DNS would do: every *.com query dies at the dead TLD server.
  std::printf("%-44s %3d/%3zu resolved (domino effect, Figure 1)\n",
              "under attack: *.com without HOURS", 0, com_hosts.size());

  report("under attack: all other TLDs unaffected",
         resolve_all(sys, std::vector<std::string>{"www.acme.edu", "mail.example.io",
                                                   "ns1.initech.org", "www.example.dev"}));

  // -- recovery ------------------------------------------------------------------
  for (const auto& z : killed_tlds) sys.set_alive(z, true);
  report("\nrecovered: resolve all hosts", resolve_all(sys, host_names));
  return 0;
}
