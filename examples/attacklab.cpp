// attacklab — interactive-ish CLI for exploring HOURS resilience.
//
// Sweeps an attack against a single overlay and prints delivery/hops, so
// you can answer "what does a 40% neighbor attack do to my 500-node tier
// with k = 3?" without writing code.
//
//   $ ./attacklab [--n 500] [--k 5] [--q 10] [--strategy neighbor|random]
//                 [--density 0.4] [--trials 500] [--design enhanced|base]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "analysis/resilience.hpp"
#include "attack/attack.hpp"
#include "overlay/overlay.hpp"

namespace {

struct Options {
  std::uint32_t n = 500;
  std::uint32_t k = 5;
  std::uint32_t q = 10;
  double density = 0.4;
  int trials = 500;
  hours::attack::Strategy strategy = hours::attack::Strategy::kNeighbor;
  hours::overlay::Design design = hours::overlay::Design::kEnhanced;
};

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (flag == "--n") {
      opt.n = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (flag == "--k") {
      opt.k = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (flag == "--q") {
      opt.q = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (flag == "--density") {
      opt.density = std::atof(next());
    } else if (flag == "--trials") {
      opt.trials = std::atoi(next());
    } else if (flag == "--strategy") {
      const char* v = next();
      opt.strategy = (v != nullptr && std::strcmp(v, "random") == 0)
                         ? hours::attack::Strategy::kRandom
                         : hours::attack::Strategy::kNeighbor;
    } else if (flag == "--design") {
      const char* v = next();
      opt.design = (v != nullptr && std::strcmp(v, "base") == 0)
                       ? hours::overlay::Design::kBase
                       : hours::overlay::Design::kEnhanced;
    } else if (flag == "--help" || flag == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return opt.n >= 4 && opt.density >= 0.0 && opt.density < 1.0 && opt.trials > 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) {
    std::printf(
        "usage: attacklab [--n N] [--k K] [--q Q] [--strategy neighbor|random]\n"
        "                 [--density 0..1] [--trials T] [--design enhanced|base]\n");
    return 1;
  }

  using namespace hours;
  const auto attacked = static_cast<std::uint32_t>(opt.density * opt.n);
  rng::Xoshiro256 attack_rng{2024};

  int exits = 0;
  std::uint64_t hop_total = 0;
  std::uint64_t backward_total = 0;
  for (int t = 0; t < opt.trials; ++t) {
    overlay::OverlayParams params;
    params.design = opt.design;
    params.k = opt.k;
    params.q = opt.q;
    params.seed = 0x1AB + static_cast<std::uint64_t>(t);
    overlay::Overlay ov{opt.n, params, overlay::TableStorage::kEager,
                        [](ids::RingIndex) { return 32U; }};

    const auto od = static_cast<ids::RingIndex>(t) % opt.n;
    ov.kill(od);
    attack::strike(ov, attack::plan(opt.strategy, opt.n, od, attacked, attack_rng));

    const auto entrance = ov.nearest_alive_cw(od);
    if (!entrance.has_value()) continue;
    const auto res = ov.forward(*entrance, od);
    if (res.kind == overlay::ExitKind::kNephewExit) {
      ++exits;
      hop_total += res.hops;
      backward_total += res.backward_steps;
    }
  }

  const double delivery = static_cast<double>(exits) / opt.trials;
  std::printf("overlay: N=%u design=%s k=%u q=%u\n", opt.n,
              opt.design == overlay::Design::kBase ? "base" : "enhanced", opt.k, opt.q);
  std::printf("attack:  %s, density %.2f (%u victims + the OD)\n",
              opt.strategy == attack::Strategy::kRandom ? "random" : "neighbor", opt.density,
              attacked);
  std::printf("result:  delivery %.3f over %d trials", delivery, opt.trials);
  if (exits > 0) {
    std::printf(", avg %.1f hops (%.1f backward)",
                static_cast<double>(hop_total) / exits,
                static_cast<double>(backward_total) / exits);
  }
  std::printf("\n");
  if (opt.design == overlay::Design::kEnhanced) {
    const double predicted =
        opt.strategy == attack::Strategy::kRandom
            ? analysis::delivery_random_attack(opt.n, opt.k, opt.density)
            : analysis::delivery_neighbor_attack(opt.n, opt.k, opt.density);
    std::printf("analysis: Section 5 closed form predicts %.3f\n", predicted);
  }
  return 0;
}
