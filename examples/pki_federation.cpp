// PKI-flavored scenario (SPKI-style certification hierarchy, one of the
// paper's motivating open service hierarchies).
//
// A federation of certificate authorities: a root CA delegates to national
// CAs, which delegate to sector CAs, which certify end entities. Validating
// a certificate chain requires *accessibility* of the issuing CA's record —
// exactly the lookup the hierarchy serves. We DoS an intermediate CA and
// its overlay neighborhood and show chain lookups still complete; then we
// DoS the root CA and bootstrap from cached CAs (Section 7).
//
//   $ ./pki_federation
#include <cstdio>
#include <string>
#include <vector>

#include "hours/hours.hpp"

namespace {

/// Validating leaf certificate "entity" means looking up every issuer on
/// its chain, leaf first.
bool validate_chain(hours::HoursSystem& sys, const std::string& entity, bool verbose) {
  auto name = hours::naming::Name::parse(entity).value();
  std::uint32_t total_hops = 0;
  while (!name.is_root()) {
    const auto r = sys.query(name.to_string());
    if (!r.delivered) {
      if (verbose) {
        std::printf("  chain lookup %-28s FAILED (%s)\n", name.to_string().c_str(),
                    hours::util::to_string(r.failure));
      }
      return false;
    }
    total_hops += r.hops;
    name = name.parent();
  }
  if (verbose) std::printf("  chain for %-28s validated (%u total hops)\n", entity.c_str(), total_hops);
  return true;
}

}  // namespace

int main() {
  hours::HoursConfig config;
  config.overlay.k = 4;
  config.overlay.q = 3;
  hours::HoursSystem sys{config};

  const std::vector<std::string> nations{"us", "de", "jp", "br", "in", "fr", "kr", "ca"};
  const std::vector<std::string> sectors{"banking", "health", "telecom"};
  std::vector<std::string> entities;
  for (const auto& nation : nations) {
    sys.admit(nation);
    for (const auto& sector : sectors) {
      const std::string ca = sector + "." + nation;
      sys.admit(ca);
      for (int e = 0; e < 4; ++e) {
        const std::string entity = "entity" + std::to_string(e) + "." + ca;
        sys.admit(entity);
        entities.push_back(entity);
      }
    }
  }
  std::printf("PKI federation: %zu national CAs x %zu sector CAs, %zu end entities\n\n",
              nations.size(), sectors.size(), entities.size());

  std::printf("== healthy: validate two chains ==\n");
  validate_chain(sys, "entity0.banking.de", true);
  validate_chain(sys, "entity2.health.jp", true);

  std::printf("\n== DoS on the 'de' national CA and two ring neighbors ==\n");
  sys.set_alive("de", false);
  // Kill two CCW neighbors of 'de' in the national-CA overlay as well.
  auto& h = sys.hierarchy();
  const auto de = h.resolve(hours::naming::Name::parse("de").value()).value();
  const auto ring = h.overlay_of({}).size();
  int extra = 0;
  for (std::uint32_t s = 1; s <= 2; ++s) {
    const auto victim = h.name_of({hours::ids::counter_clockwise_step(de.back(), s, ring)});
    sys.set_alive(victim.value().to_string(), false);
    ++extra;
  }
  std::printf("(killed de + %d neighboring national CAs)\n", extra);

  int ok = 0;
  for (const auto& entity : entities) {
    if (validate_chain(sys, entity, false)) ++ok;
  }
  std::printf("validated %d/%zu chains under attack", ok, entities.size());
  std::printf(" — every chain not issued by a *dead* CA still validates.\n");
  validate_chain(sys, "entity0.banking.de", true);  // issuer itself is dead: must fail

  std::printf("\n== root CA under DoS: bootstrap from cached CAs ==\n");
  sys.set_alive(".", true);  // ensure a clean cache warm-up
  (void)sys.query("telecom.kr");
  sys.set_alive(".", false);
  const auto r = sys.query("entity1.telecom.us");
  std::printf("lookup entity1.telecom.us with dead root: %s%s\n",
              r.delivered ? "delivered" : "FAILED",
              r.used_bootstrap_cache ? " (via bootstrap cache)" : "");
  return 0;
}
