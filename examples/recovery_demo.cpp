// Active recovery, live (Section 4.3 / Figure 3).
//
// An event-driven 24-node overlay ring with k = 2: every node probes its
// neighbors each period. We kill a block of six consecutive nodes — wider
// than k, so conventional neighborhood recovery cannot bridge it — and
// watch the Repair protocol reconnect the ring, then prove it with queries.
//
//   $ ./recovery_demo
#include <cstdio>

#include "sim/ring_protocol.hpp"

namespace {

void snapshot(const hours::sim::RingSimulation& ring, const char* label) {
  std::printf("t=%-8llu %-34s ring_connected=%s probes=%llu claims=%llu repairs=%llu\n",
              static_cast<unsigned long long>(
                  const_cast<hours::sim::RingSimulation&>(ring).simulator().now()),
              label, ring.ring_connected() ? "yes" : "NO ",
              static_cast<unsigned long long>(ring.probes_sent()),
              static_cast<unsigned long long>(ring.claims_sent()),
              static_cast<unsigned long long>(ring.repairs_sent()));
}

}  // namespace

int main() {
  hours::sim::RingSimConfig cfg;
  cfg.size = 24;
  cfg.params.design = hours::overlay::Design::kEnhanced;
  cfg.params.k = 2;
  cfg.params.q = 2;
  cfg.probe_period = 1000;

  hours::sim::RingSimulation ring{cfg};
  ring.start();
  ring.simulator().run(2 * cfg.probe_period);
  snapshot(ring, "steady state");

  std::printf("\nkilling nodes 8..13 (gap of 6 > k=2 — conventional recovery cannot span it)\n");
  for (hours::ids::RingIndex i = 8; i <= 13; ++i) ring.kill(i);
  snapshot(ring, "immediately after the attack");

  for (int period = 1; period <= 8; ++period) {
    ring.simulator().run(cfg.probe_period);
    char label[64];
    std::snprintf(label, sizeof(label), "after %d probe period(s)", period);
    snapshot(ring, label);
    if (ring.ring_connected()) break;
  }

  std::printf("\nring healed: node 7's clockwise successor is now %u, node 14's "
              "counter-clockwise neighbor is %u\n",
              ring.cw_successor(7), ring.ccw_neighbor(14));

  std::printf("\ninjecting queries across the healed gap...\n");
  const auto q1 = ring.inject_query(20, 7);   // destination just behind the gap
  const auto q2 = ring.inject_query(2, 16);   // crosses the gap region
  ring.simulator().run(20 * cfg.probe_period);
  std::printf("  query 20 -> 7 : %s in %u hops\n",
              ring.query(q1).delivered ? "delivered" : "failed", ring.query(q1).hops);
  std::printf("  query 2 -> 16 : %s in %u hops\n",
              ring.query(q2).delivered ? "delivered" : "failed", ring.query(q2).hops);
  return 0;
}
