// Declarative experiment front-end: validates and runs scenario DSL
// documents (see scenarios/README.md and DESIGN.md §10).
//
// Each argument is a scenario file or a directory (expanded to its *.json
// members in lexicographic order). Every document is schema-validated up
// front; with --validate-only the run stops there. Otherwise the whole list
// fans out across the work-stealing executor as one jobs::sweep, each
// scenario seeded by its own document — per-scenario reports and the merged
// matrix are byte-identical at any --threads value.
//
// Output: <out-dir>/<scenario-name>.json per scenario plus
// <out-dir>/scenario_matrix.json (also printed to stdout). Exit status: 0
// when every document validated and every declared expectation held.
//
// Flags:
//   --validate-only      schema-check every document, run nothing
//   --threads=T          executor width (default 0 = hardware)
//   --out-dir=D          report directory (default ".")
//   --quick              CI smoke size: ring intervals x2, hierarchy rates /2
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "jobs/executor.hpp"
#include "metrics/json_writer.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

namespace {

namespace fs = std::filesystem;

/// Expands one CLI argument to scenario file paths (directories recurse one
/// level: their *.json members, sorted so the matrix order is stable).
std::vector<std::string> expand(const std::string& arg) {
  std::vector<std::string> paths;
  std::error_code ec;
  if (fs::is_directory(arg, ec)) {
    for (const auto& entry : fs::directory_iterator(arg, ec)) {
      if (entry.path().extension() == ".json") paths.push_back(entry.path().string());
    }
    std::sort(paths.begin(), paths.end());
  } else {
    paths.push_back(arg);
  }
  return paths;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hours;

  const bool quick = bench::quick_mode(argc, argv);
  bool validate_only = false;
  unsigned threads = 0;  // 0 = hardware concurrency (Executor's convention)
  std::string out_dir = ".";
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--validate-only") == 0) {
      validate_only = true;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<unsigned>(std::strtoul(argv[i] + 10, nullptr, 10));
    } else if (std::strncmp(argv[i], "--out-dir=", 10) == 0) {
      out_dir = argv[i] + 10;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      // handled by quick_mode
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr, "scenario_runner: unknown flag %s\n", argv[i]);
      return 2;
    } else {
      args.emplace_back(argv[i]);
    }
  }
  if (args.empty()) {
    std::fprintf(stderr,
                 "usage: scenario_runner [--validate-only] [--threads=T] [--out-dir=D] "
                 "[--quick] <scenario.json | dir>...\n");
    return 2;
  }

  std::vector<std::string> paths;
  for (const auto& arg : args) {
    for (auto& p : expand(arg)) paths.push_back(std::move(p));
  }
  if (paths.empty()) {
    std::fprintf(stderr, "scenario_runner: no scenario files found\n");
    return 2;
  }

  // Validate everything before running anything: a matrix with one broken
  // document fails fast instead of wasting the other runs.
  std::vector<scenario::Scenario> scenarios;
  std::set<std::string> names;
  bool invalid = false;
  for (const auto& path : paths) {
    scenario::Scenario sc;
    if (const auto error = scenario::load_file(path, sc); !error.empty()) {
      std::fprintf(stderr, "scenario_runner: %s\n", error.c_str());
      invalid = true;
      continue;
    }
    if (!names.insert(sc.name).second) {
      std::fprintf(stderr, "scenario_runner: %s: duplicate scenario name \"%s\"\n",
                   path.c_str(), sc.name.c_str());
      invalid = true;
      continue;
    }
    std::printf("[scenario_runner] %s: ok (%s)\n", path.c_str(), sc.name.c_str());
    scenarios.push_back(std::move(sc));
  }
  if (invalid) return 1;
  if (validate_only) {
    std::printf("[scenario_runner] %zu scenario(s) valid\n", scenarios.size());
    return 0;
  }

  scenario::RunOptions options;
  if (quick) {
    options.interval_scale = 2;
    options.rate_divisor = 2;
  }
  jobs::Executor executor{threads};
  const auto outcomes = scenario::run_matrix(scenarios, executor, options);

  std::error_code ec;
  fs::create_directories(out_dir, ec);
  std::uint64_t failed_total = 0;
  metrics::JsonWriter matrix;
  matrix.begin_object();
  matrix.field("bench", "scenario_runner");
  matrix.field("quick", quick);
  matrix.field("scenarios", static_cast<std::uint64_t>(scenarios.size()));
  matrix.key("matrix").begin_array();
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const auto& outcome = outcomes[i];
    const std::string report_path = out_dir + "/" + scenarios[i].name + ".json";
    std::ofstream out{report_path};
    out << outcome.json << "\n";
    matrix.begin_object();
    matrix.field("scenario", scenarios[i].name);
    matrix.field("expectations_met", outcome.expectations_met);
    if (!outcome.failed.empty()) {
      matrix.key("failed").begin_array();
      for (const auto& check : outcome.failed) matrix.value(check);
      matrix.end_array();
    }
    matrix.end_object();
    if (!outcome.expectations_met) {
      ++failed_total;
      for (const auto& check : outcome.failed) {
        std::fprintf(stderr, "[scenario_runner] FAIL %s: %s\n", scenarios[i].name.c_str(),
                     check.c_str());
      }
    }
    std::printf("[scenario_runner] %s: %s -> %s\n", scenarios[i].name.c_str(),
                outcome.expectations_met ? "pass" : "FAIL", report_path.c_str());
  }
  matrix.end_array();
  matrix.field("failed", failed_total);
  matrix.end_object();

  std::ofstream matrix_out{out_dir + "/scenario_matrix.json"};
  matrix_out << matrix.str() << "\n";
  std::printf("%s\n", matrix.str().c_str());
  std::printf("[scenario_runner] scenarios=%zu failed=%llu %s\n", scenarios.size(),
              static_cast<unsigned long long>(failed_total),
              failed_total == 0 ? "clean" : "EXPECTATIONS FAILED");
  return failed_total == 0 ? 0 : 1;
}
