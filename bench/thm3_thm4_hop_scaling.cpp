// Theorems 3 and 4 validation: overlay forwarding hops under attack.
//
//   Theorem 3 (random attack):   F = O((1 - log(1-alpha)) log N)
//     (self-consistent reading of the paper's printed bound; see
//      analysis/resilience.hpp and EXPERIMENTS.md)
//   Theorem 4 (neighbor attack): F = O(log N) + O(N_a)
//     — the O(N_a) term is the counter-clockwise backward walk.
//
// We measure mean hops of successful intra-overlay forwards and print them
// against the predicted scaling curves.
#include <cmath>
#include <cstdio>

#include "analysis/resilience.hpp"
#include "attack/attack.hpp"
#include "bench_util.hpp"
#include "metrics/histogram.hpp"
#include "metrics/table_writer.hpp"
#include "overlay/overlay.hpp"

namespace {

using namespace hours;

struct HopStats {
  double mean = 0;
  double backward = 0;
  double delivery = 0;
};

HopStats measure(std::uint32_t n, std::uint32_t k, attack::Strategy strategy,
                 std::uint32_t attacked, int trials) {
  rng::Xoshiro256 rng{0x334ULL};
  metrics::Histogram hops;
  std::uint64_t backward_total = 0;
  int ok = 0;
  for (int t = 0; t < trials; ++t) {
    overlay::OverlayParams params;
    params.design = overlay::Design::kEnhanced;
    params.k = k;
    params.q = 6;
    params.seed = 0x334A + static_cast<std::uint64_t>(t);
    overlay::Overlay ov{n, params, overlay::TableStorage::kEager,
                        [](ids::RingIndex) { return 8U; }};
    const ids::RingIndex od = static_cast<ids::RingIndex>(t * 17) % n;
    ov.kill(od);
    attack::strike(ov, attack::plan(strategy, n, od, attacked, rng));

    const auto entrance = ov.nearest_alive_cw(od);
    if (!entrance.has_value()) continue;
    const auto res = ov.forward(*entrance, od);
    if (res.kind == overlay::ExitKind::kNephewExit) {
      ++ok;
      hops.add(res.hops);
      backward_total += res.backward_steps;
    }
  }
  HopStats out;
  out.delivery = static_cast<double>(ok) / trials;
  out.mean = hops.mean();
  out.backward = ok > 0 ? static_cast<double>(backward_total) / ok : 0.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using metrics::TableWriter;
  const bool quick = bench::quick_mode(argc, argv);
  const int trials = static_cast<int>(bench::scaled(600, 60, quick));
  const std::uint32_t n = 1000;
  const std::uint32_t k = 5;

  TableWriter random_table{{"alpha", "mean_hops", "backward", "delivery", "thm3_scaling"}};
  for (const double alpha : {0.0, 0.2, 0.4, 0.6, 0.8, 0.9}) {
    const auto attacked = static_cast<std::uint32_t>(alpha * (n - 1));
    const auto s = measure(n, k, attack::Strategy::kRandom, attacked, trials);
    random_table.add_row({TableWriter::fmt(alpha, 1), TableWriter::fmt(s.mean, 2),
                          TableWriter::fmt(s.backward, 2), TableWriter::fmt(s.delivery, 3),
                          TableWriter::fmt(analysis::theorem3_hops(n, std::min(alpha, 0.999)), 2)});
  }
  random_table.print("Theorem 3 — hops under random attack (N=1000, k=5)");
  random_table.write_csv(hours::bench::csv_path("thm3_random_hops"));

  TableWriter neighbor_table{
      {"N_a", "mean_hops", "backward", "delivery", "predicted_backward"}};
  for (const std::uint32_t attacked : {0U, 50U, 100U, 200U, 400U, 600U}) {
    const auto s = measure(n, k, attack::Strategy::kNeighbor, attacked, trials);
    neighbor_table.add_row(
        {TableWriter::fmt(std::uint64_t{attacked}), TableWriter::fmt(s.mean, 2),
         TableWriter::fmt(s.backward, 2), TableWriter::fmt(s.delivery, 3),
         TableWriter::fmt(analysis::expected_backward_steps(n, k, attacked), 2)});
  }
  neighbor_table.print("Theorem 4 — hops under neighbor attack (N=1000, k=5)");
  neighbor_table.write_csv(hours::bench::csv_path("thm4_neighbor_hops"));

  std::printf("\nTheorem 4's O(N_a) term dominates: the backward column grows linearly with\n"
              "the attacked-block width while the greedy prefix stays ~log N.\n");
  return 0;
}
