// Protocol-level cost study on the event engine: what does an attack cost
// a *deployed* HOURS in wall-clock latency and message overhead, once
// liveness must be learned from ack timeouts instead of an oracle?
//
// The graph-engine figures count hops; here every dead candidate costs a
// full ack-timeout before the next is tried, so attacks translate into
// latency. This quantifies the paper's implicit operational cost and the
// value of suspicion reuse across queries (the second query is much faster
// than the first).
#include <cstdio>

#include "bench_util.hpp"
#include "metrics/histogram.hpp"
#include "metrics/table_writer.hpp"
#include "sim/hierarchy_protocol.hpp"

namespace {

using namespace hours;

struct Costs {
  double delivery = 0;
  double first_latency = 0;   ///< cold suspicion caches
  double warm_latency = 0;    ///< immediately after a prior query
  double messages_per_query = 0;
};

Costs measure(std::uint32_t attacked, double loss, int trials) {
  Costs costs;
  std::uint64_t messages = 0;
  int delivered = 0;
  for (int t = 0; t < trials; ++t) {
    sim::HierarchySimConfig cfg;
    cfg.fanout = {48, 6};
    cfg.params.design = overlay::Design::kEnhanced;
    cfg.params.k = 5;
    cfg.params.q = 4;
    cfg.seed = 0xE7E + static_cast<std::uint64_t>(t);
    cfg.transport.loss_probability = loss;
    // Long suspicion TTL (~many probe periods) so the warm-query benefit is
    // visible; the default TTL is tuned for lossy links, not this study.
    cfg.suspicion_ttl = 200'000;
    sim::HierarchySimulation sim{cfg};

    const ids::RingIndex target = 20;
    sim.kill({target});
    for (std::uint32_t s = 1; s <= attacked; ++s) {
      sim.kill({ids::counter_clockwise_step(target, s, 48)});
    }

    const auto before_messages = sim.messages_sent();
    const auto t0 = sim.simulator().now();
    const auto first = sim.run_query({target, 3});
    HOURS_ASSERT(!sim.simulator().truncated());
    const auto t1 = sim.simulator().now();
    const auto second = sim.run_query({target, 3});
    HOURS_ASSERT(!sim.simulator().truncated());
    const auto t2 = sim.simulator().now();

    if (first.delivered) {
      ++delivered;
      costs.first_latency += static_cast<double>(first.completed_at - t0);
    }
    if (second.delivered) {
      costs.warm_latency += static_cast<double>(second.completed_at - t1);
    }
    (void)t2;
    messages += sim.messages_sent() - before_messages;
  }
  costs.delivery = static_cast<double>(delivered) / trials;
  if (delivered > 0) {
    costs.first_latency /= delivered;
    costs.warm_latency /= delivered;
  }
  costs.messages_per_query = static_cast<double>(messages) / (2.0 * trials);
  return costs;
}

}  // namespace

int main(int argc, char** argv) {
  using metrics::TableWriter;
  const bool quick = bench::quick_mode(argc, argv);
  const int trials = static_cast<int>(bench::scaled(150, 20, quick));

  TableWriter table{{"attacked_neighbors", "loss", "delivery", "cold_latency_ticks",
                     "warm_latency_ticks", "messages/query"}};
  for (const double loss : {0.0, 0.05}) {
    for (const std::uint32_t attacked : {0U, 4U, 12U, 24U}) {
      const auto c = measure(attacked, loss, trials);
      table.add_row({TableWriter::fmt(std::uint64_t{attacked}), TableWriter::fmt(loss, 2),
                     TableWriter::fmt(c.delivery, 3), TableWriter::fmt(c.first_latency, 0),
                     TableWriter::fmt(c.warm_latency, 0),
                     TableWriter::fmt(c.messages_per_query, 1)});
    }
  }

  table.print("Event-protocol costs — latency & messages under attack (48-ring, k=5)");
  table.write_csv(hours::bench::csv_path("event_protocol_study"));
  std::printf("\nCold queries pay one ack-timeout per dead candidate en route; warm queries\n"
              "reuse suspicion and approach healthy latency. Loss adds retries, not failures.\n");
  return 0;
}
