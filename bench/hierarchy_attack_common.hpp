// Shared machinery for the Section 6.2 experiments (Figures 9 and 10).
//
// Topology, as described in the paper: a four-level hierarchy with 1000
// nodes at level 1; the attacker's target T has 50,000 children at level 2,
// each level-2 node has a few level-3 children. The victim destination D is
// an (arbitrary, fixed) level-3 descendant of T. The attack shuts down T
// plus a set of T's siblings chosen per strategy; every query is injected at
// the root with destination D, and we report delivery ratio plus the mean
// number of forwarding hops over fresh overlay instantiations (the paper
// feeds 1M queries into one instantiation; averaging over instantiations
// measures the same expectation without replaying identical deterministic
// paths).
#pragma once

#include <cstdint>

#include "attack/attack.hpp"
#include "hierarchy/router.hpp"
#include "hierarchy/synthetic.hpp"
#include "metrics/histogram.hpp"

namespace hours::bench {

struct ScenarioConfig {
  std::uint32_t level1 = 1000;        // siblings of T (incl. T)
  std::uint32_t default_fanout2 = 100;
  std::uint32_t target_children = 50'000;  // T's level-2 fanout
  std::uint32_t fanout3 = 3;
  std::uint32_t k = 5;
  std::uint32_t q = 10;
  /// Algorithm 2 line 6 says the parent forwards to "an alive child"; the
  /// paper's numbers are consistent with a random choice, so the figure
  /// benches use it. (The library's router defaults to the optimal
  /// nearest-CCW entrance, which cuts several hops — an improvement over
  /// the paper, quantified by flipping this flag.)
  hierarchy::EntrancePolicy entrance = hierarchy::EntrancePolicy::kRandomAliveChild;
};

struct ScenarioResult {
  double delivery_ratio = 0.0;
  double mean_hops = 0.0;          // over delivered queries
  double mean_backward = 0.0;      // backward steps per delivered query
  metrics::Histogram hops;
};

/// Runs `trials` independent instantiations of the Section 6.2 scenario with
/// `attacked` of T's siblings shut down (plus T itself) and returns the
/// aggregate statistics for queries root -> D.
inline ScenarioResult run_scenario(const ScenarioConfig& cfg, attack::Strategy strategy,
                                   std::uint32_t attacked, int trials,
                                   std::uint64_t seed_base = 0x962ULL) {
  ScenarioResult out;
  rng::Xoshiro256 attack_rng{rng::mix64(seed_base, attacked)};

  const ids::RingIndex target_index = cfg.level1 / 3;  // arbitrary, fixed
  const hierarchy::NodePath target{target_index};
  const hierarchy::NodePath dest{target_index, cfg.target_children / 2, 1};

  std::uint64_t delivered = 0;
  std::uint64_t hop_total = 0;
  std::uint64_t backward_total = 0;

  for (int t = 0; t < trials; ++t) {
    hierarchy::SyntheticSpec spec;
    spec.fanout = {cfg.level1, cfg.default_fanout2, cfg.fanout3};
    spec.fanout_overrides[target] = cfg.target_children;
    spec.eager_table_limit = 5'000;

    overlay::OverlayParams params;
    params.design = overlay::Design::kEnhanced;
    params.k = cfg.k;
    params.q = cfg.q;
    params.seed = rng::mix64(seed_base, 0xABCDULL + static_cast<std::uint64_t>(t));

    hierarchy::SyntheticHierarchy h{spec, params};
    hierarchy::Router router{h, params.seed};

    attack::HierarchyAttack plan;
    plan.target = target;
    plan.strategy = strategy;
    plan.sibling_count = attacked;
    (void)attack::strike_hierarchy(h, plan, attack_rng);

    hierarchy::RouteOptions opts;
    opts.entrance = cfg.entrance;
    const auto res = router.route(dest, opts);
    if (res.delivered) {
      ++delivered;
      hop_total += res.hops;
      backward_total += res.backward_steps;
      out.hops.add(res.hops);
    }
  }

  out.delivery_ratio = static_cast<double>(delivered) / trials;
  if (delivered > 0) {
    out.mean_hops = static_cast<double>(hop_total) / static_cast<double>(delivered);
    out.mean_backward = static_cast<double>(backward_total) / static_cast<double>(delivered);
  }
  return out;
}

inline ScenarioConfig scenario_for(bool quick, std::uint32_t k) {
  ScenarioConfig cfg;
  cfg.k = k;
  if (quick) {
    cfg.level1 = 200;
    cfg.default_fanout2 = 20;
    cfg.target_children = 1'000;
  }
  return cfg;
}

}  // namespace hours::bench
