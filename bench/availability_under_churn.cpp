// Availability-under-churn timeline: a deadline-bounded query client keeps
// issuing queries while the fault injector drives a correlated ccw-neighbor
// outage (the Section 6.2 neighbor attack, re-striking once after repair), a
// flapping node, and a lossy-link episode against the message-level ring.
//
// Output: a windowed delivery/latency timeline as JSON (stdout and
// availability_under_churn.json) plus a phase summary showing the delivery
// ratio dipping during the attack and returning to the pre-attack level
// after recovery. The whole scenario is run twice and the two JSON blobs are
// compared byte-for-byte to demonstrate bit-reproducibility.
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "metrics/json_writer.hpp"
#include "metrics/table_writer.hpp"
#include "metrics/timeline.hpp"
#include "rng/xoshiro256.hpp"
#include "sim/fault_injector.hpp"
#include "sim/query_client.hpp"
#include "sim/ring_protocol.hpp"

namespace {

using namespace hours;
using namespace hours::sim;

struct Scenario {
  Ticks horizon = 130'000;
  Ticks query_interval = 450;
  Ticks window = 2'000;
  // Attack timeline: strike the target's ccw neighborhood at 30k for 20k,
  // repair, strike again at 65k; flap and a lossy episode ride along.
  Ticks attack_start = 30'000;
  Ticks attack_end = 85'000;
  Ticks post_start = 95'000;  ///< 10k settle after the last repair
};

struct RunResult {
  std::string json;
  double pre = 0.0;
  double during = 0.0;
  double post = 0.0;
  std::uint64_t queries = 0;
  std::uint64_t unsettled = 0;
  QueryClientStats client;
  FaultInjectorStats faults;
};

RunResult run_scenario(const Scenario& sc) {
  RingSimConfig cfg;
  cfg.size = 24;
  cfg.probe_period = 1'000;
  cfg.probe_failure_threshold = 2;  // lossy episode must not churn the ring
  RingSimulation ring{cfg};
  ring.start();

  // The attack: take out the ccw-side neighborhood {5, 4, 3} of target 6 so
  // queries must route around the gap, twice; node 18 flaps independently
  // and the links degrade mid-attack.
  FaultInjector injector{make_fault_target(ring),
                         FaultPlan{}
                             .correlated_outage({5, 4, 3}, sc.attack_start,
                                                /*duration=*/20'000, /*strikes=*/2,
                                                /*strike_gap=*/15'000)
                             .flap(18, 35'000, /*down=*/3'000, /*up=*/5'000, /*cycles=*/4)
                             .loss_episode(0.10, 40'000, 60'000)};
  injector.arm();

  QueryClientConfig ccfg;
  ccfg.deadline = 8'000;  // every query settles well inside the horizon
  QueryClient client{make_query_network(ring), ccfg};

  // Seeded periodic workload: sources drawn among currently-alive nodes,
  // destinations anywhere (including struck nodes — their unavailability is
  // part of the measured dip).
  auto& sim = ring.simulator();
  auto workload_rng = std::make_shared<rng::Xoshiro256>(0xBEEFULL);
  auto qids = std::make_shared<std::vector<std::uint64_t>>();
  const Ticks issue_until = sc.horizon - ccfg.deadline - 2'000;
  std::function<void()> issue = [&, workload_rng, qids]() {
    auto src = static_cast<ids::RingIndex>(workload_rng->below(cfg.size));
    for (std::uint32_t tries = 0; !ring.alive(src) && tries < cfg.size; ++tries) {
      src = static_cast<ids::RingIndex>(workload_rng->below(cfg.size));
    }
    const auto dest = static_cast<ids::RingIndex>(workload_rng->below(cfg.size));
    qids->push_back(client.submit(src, dest));
    if (sim.now() + sc.query_interval <= issue_until) {
      sim.schedule(sc.query_interval, issue);
    }
  };
  sim.schedule(200, issue);
  sim.run(sc.horizon);
  HOURS_ASSERT(!sim.truncated());  // a silent event cap would skew availability

  RunResult result;
  metrics::Timeline timeline{sc.window};
  for (const auto qid : *qids) {
    const auto& out = client.outcome(qid);
    if (out.status == QueryStatus::kPending) {
      ++result.unsettled;
      continue;
    }
    timeline.record(out.issued_at, out.status == QueryStatus::kDelivered, out.latency());
  }

  result.pre = timeline.delivery_ratio(0, sc.attack_start);
  result.during = timeline.delivery_ratio(sc.attack_start, sc.attack_end);
  result.post = timeline.delivery_ratio(sc.post_start, sc.horizon);
  result.queries = qids->size();
  result.client = client.stats();
  result.faults = injector.stats();

  // One structured report: scenario constants, the windowed timeline, phase
  // summaries, and the client/fault aggregates the stdout lines print.
  metrics::JsonWriter json;
  json.begin_object();
  json.field("bench", "availability_under_churn");
  json.field("ring_size", cfg.size);
  json.field("horizon", sc.horizon);
  json.field("attack_start", sc.attack_start);
  json.field("attack_end", sc.attack_end);
  json.field("post_start", sc.post_start);
  json.key("timeline").raw(timeline.to_json());
  json.key("phases").begin_object();
  json.field("pre", result.pre, 4);
  json.field("during", result.during, 4);
  json.field("post", result.post, 4);
  json.end_object();
  json.key("client").begin_object();
  json.field("submitted", result.client.submitted);
  json.field("delivered", result.client.delivered);
  json.field("deadline_exceeded", result.client.deadline_exceeded);
  json.field("no_route", result.client.no_route);
  json.field("retransmissions", result.client.retransmissions);
  json.field("failovers", result.client.failovers);
  json.end_object();
  json.key("faults").begin_object();
  json.field("kills", result.faults.kills);
  json.field("revivals", result.faults.revivals);
  json.field("loss_changes", result.faults.loss_changes);
  json.end_object();
  json.field("unsettled", result.unsettled);
  json.end_object();
  result.json = json.str();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);
  Scenario sc;
  if (quick) sc.query_interval = 900;

  const RunResult first = run_scenario(sc);
  const RunResult second = run_scenario(sc);
  const bool reproducible = first.json == second.json;

  metrics::TableWriter table{{"phase", "window", "delivery_ratio"}};
  table.add_row({"pre-attack", "[0, 30000)", metrics::TableWriter::fmt(first.pre, 4)});
  table.add_row({"under attack", "[30000, 85000)", metrics::TableWriter::fmt(first.during, 4)});
  table.add_row({"recovered", "[95000, 130000)", metrics::TableWriter::fmt(first.post, 4)});
  table.print("availability under churn (ring n=24, correlated outage x2 + flap + loss)");
  table.write_csv(bench::csv_path("availability_under_churn"));

  std::printf("queries: %llu  delivered: %llu  deadline-exceeded: %llu  no-route: %llu\n",
              static_cast<unsigned long long>(first.queries),
              static_cast<unsigned long long>(first.client.delivered),
              static_cast<unsigned long long>(first.client.deadline_exceeded),
              static_cast<unsigned long long>(first.client.no_route));
  std::printf("retransmissions: %llu  failovers: %llu  kills: %llu  revivals: %llu\n",
              static_cast<unsigned long long>(first.client.retransmissions),
              static_cast<unsigned long long>(first.client.failovers),
              static_cast<unsigned long long>(first.faults.kills),
              static_cast<unsigned long long>(first.faults.revivals));
  std::printf("unsettled: %llu\n", static_cast<unsigned long long>(first.unsettled));
  std::printf("dip observed: %s  recovered to pre-attack: %s  reproducible: %s\n",
              first.during < first.pre ? "yes" : "no",
              first.post >= first.pre ? "yes" : "no", reproducible ? "yes" : "no");

  bench::emit_json_report("availability_under_churn", first.json);

  return reproducible && first.during < first.pre && first.post >= first.pre ? 0 : 1;
}
