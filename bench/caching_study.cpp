// Section 7 / related-work caching study: "caching provides only an
// opportunistic query resolution, and its effectiveness highly depends on
// the query patterns. On the contrary, HOURS assures to forward arbitrary
// queries with high probability."
//
// We drive a client Resolver with Zipf-distributed queries (the web/DNS
// pattern of [Breslau99]/[Jung01]) over a hierarchy under attack, and
// compare:
//   * cache-only   (unprotected tree + client cache)
//   * HOURS-only   (no client cache)
//   * cache+HOURS
// sweeping the Zipf exponent. Caching's answer rate collapses as the
// pattern flattens; HOURS' does not.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "hours/resolver.hpp"
#include "metrics/table_writer.hpp"
#include "workload/workload.hpp"

namespace {

using namespace hours;

HoursConfig world_config(overlay::Design design) {
  HoursConfig cfg;
  cfg.overlay.design = design;
  cfg.overlay.k = 5;
  cfg.overlay.q = 4;
  return cfg;
}

struct World {
  HoursSystem sys;
  std::vector<std::string> names;

  explicit World(overlay::Design design) : sys(world_config(design)) {
    // 20 zones x 25 hosts = 500 resolvable names.
    for (int z = 0; z < 20; ++z) {
      const std::string zone = "zone" + std::to_string(z);
      sys.admit(zone);
      for (int h = 0; h < 25; ++h) {
        const std::string host = "h" + std::to_string(h) + "." + zone;
        sys.admit(host);
        sys.add_record(host, store::Record{"A", host, 600});
        names.push_back(host);
      }
    }
  }
};

struct Outcome {
  double answer_rate;
  double hit_rate;
  double early_rate;  ///< answer rate within the first TTL after attack onset
  double late_rate;   ///< answer rate after every pre-attack entry expired
};

enum class Mode {
  kHoursOnly,   ///< routed lookups, no client cache
  kHoursCache,  ///< routed lookups behind the client cache
  kCachePlain,  ///< client cache in front of the *unprotected* tree path
};

Outcome run(overlay::Design design, Mode mode, double zipf_s, int queries) {
  const bool use_cache = mode != Mode::kHoursOnly;
  World world{design};

  // Warm phase: the system is healthy; clients query and fill caches.
  Resolver resolver{world.sys, 4096};
  workload::ZipfSampler zipf{world.names.size(), zipf_s, 0xCAC4E};
  std::uint64_t now = 0;
  for (int i = 0; i < queries / 2; ++i) {
    (void)resolver.resolve(world.names[zipf.next()], now++);
  }
  if (!use_cache) resolver.clear_cache();

  // Attack phase: five zones go down. Without HOURS (base design cannot
  // detour two-deep here; we emulate "no HOURS" by killing the zones AND
  // the root so no detour exists) the tree path is gone.
  for (int z = 0; z < 5; ++z) world.sys.set_alive("zone" + std::to_string(z), false);

  // Score only queries whose zone is dead — the ones where protection
  // matters. The attack phase runs past the record TTL (600), so cached
  // answers for dead zones expire and cannot be refreshed: exactly the
  // "opportunistic" decay the paper points out.
  auto zone_is_dead = [](const std::string& host) {
    const auto zone = naming::Name::parse(host).value().label(1);  // "zoneZ"
    return zone.size() == 5 && zone[4] >= '0' && zone[4] < '5';
  };

  int answered = 0;
  int asked = 0;
  int scored_hits = 0;
  int early_answered = 0;
  int early_asked = 0;
  int late_answered = 0;
  int late_asked = 0;
  const std::uint64_t attack_start = now;
  constexpr std::uint64_t kTtl = 600;
  for (int i = 0; i < 2 * queries; ++i) {
    const auto& name = world.names[zipf.next()];
    if (!zone_is_dead(name)) {
      // Keep the clock and cache churning but score only dead-zone names.
      if (mode == Mode::kHoursCache) {
        (void)resolver.resolve(name, now);
      } else if (mode == Mode::kCachePlain && resolver.peek(name, now) == nullptr) {
        // Plain tree still resolves alive zones; refresh the cache as a
        // real client would.
        const auto r = world.sys.lookup(name);
        if (r.query.delivered) resolver.insert(name, now, r.records);
      }
      ++now;
      continue;
    }
    ++asked;
    const bool early = now < attack_start + kTtl;
    int before = answered;
    switch (mode) {
      case Mode::kHoursOnly:
        if (world.sys.lookup(name).query.delivered) ++answered;
        break;
      case Mode::kHoursCache: {
        const auto r = resolver.resolve(name, now++);
        if (r.answered) ++answered;
        if (r.from_cache) ++scored_hits;
        break;
      }
      case Mode::kCachePlain: {
        // Unprotected tree (Figure 1): the query succeeds only from the
        // cache — the zone on the tree path is dead, so the hierarchy
        // cannot answer and the cache cannot be refreshed.
        if (resolver.peek(name, now) != nullptr) {
          ++answered;
          ++scored_hits;
        }
        ++now;
        break;
      }
    }
    if (early) {
      ++early_asked;
      early_answered += answered - before;
    } else {
      ++late_asked;
      late_answered += answered - before;
    }
  }
  Outcome out{};
  out.answer_rate = static_cast<double>(answered) / asked;
  out.early_rate = early_asked > 0 ? static_cast<double>(early_answered) / early_asked : 0.0;
  out.late_rate = late_asked > 0 ? static_cast<double>(late_answered) / late_asked : 0.0;
  out.hit_rate = use_cache && asked > 0
                     ? static_cast<double>(scored_hits) / static_cast<double>(asked)
                     : 0.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using metrics::TableWriter;
  const bool quick = bench::quick_mode(argc, argv);
  const int queries = static_cast<int>(bench::scaled(20'000, 2'000, quick));

  TableWriter table{{"zipf_s", "cache_only<TTL", "cache_only>TTL", "hours_only",
                     "hours+cache", "cache_hit_rate"}};
  for (const double s : {1.2, 0.9, 0.6, 0.0}) {
    const auto plain = run(overlay::Design::kEnhanced, Mode::kCachePlain, s, queries);
    const auto hours_only = run(overlay::Design::kEnhanced, Mode::kHoursOnly, s, queries);
    const auto both = run(overlay::Design::kEnhanced, Mode::kHoursCache, s, queries);
    table.add_row({TableWriter::fmt(s, 1), TableWriter::fmt(plain.early_rate, 3),
                   TableWriter::fmt(plain.late_rate, 3),
                   TableWriter::fmt(hours_only.answer_rate, 3),
                   TableWriter::fmt(both.answer_rate, 3), TableWriter::fmt(both.hit_rate, 3)});
  }

  table.print("Section 7 — caching is opportunistic, HOURS is assured (5/20 zones dead)");
  table.write_csv(hours::bench::csv_path("caching_study"));
  std::printf("\nThe cache's contribution (hit rate) collapses as the Zipf exponent drops to\n"
              "uniform; HOURS' answer rate stays ~1.0 regardless of the query pattern.\n");
  return 0;
}
