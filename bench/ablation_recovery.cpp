// Ablation of ring maintenance (Section 4.3): backward forwarding needs an
// intact counter-clockwise chain. We compare delivery with repaired ring
// pointers (active recovery converged) vs stale pointers (no recovery),
// under combined neighbor + scattered random attacks that punch holes into
// the backward path.
//
// Also reports the event-level recovery itself: how long the protocol takes
// to reconnect rings with gaps of increasing width.
#include <cstdio>

#include "attack/attack.hpp"
#include "bench_util.hpp"
#include "metrics/table_writer.hpp"
#include "overlay/overlay.hpp"
#include "sim/ring_protocol.hpp"

namespace {

using namespace hours;

double delivery(bool repaired, std::uint32_t neighbor_block, std::uint32_t scattered,
                int trials) {
  rng::Xoshiro256 rng{0xAB2A};
  int ok = 0;
  for (int t = 0; t < trials; ++t) {
    overlay::OverlayParams params;
    params.design = overlay::Design::kEnhanced;
    params.k = 5;
    params.q = 6;
    params.seed = 0x9999 + static_cast<std::uint64_t>(t);
    overlay::Overlay ov{400, params, overlay::TableStorage::kEager,
                        [](ids::RingIndex) { return 12U; }};
    ov.set_ring_repaired(repaired);

    const ids::RingIndex od = static_cast<ids::RingIndex>(t * 13) % 400;
    ov.kill(od);
    attack::strike(ov, attack::plan_neighbor(400, od, neighbor_block));
    attack::strike(ov, attack::plan_random(400, od, scattered, rng));

    const auto entrance = ov.nearest_alive_cw(od);
    if (!entrance.has_value()) continue;
    const auto res = ov.forward(*entrance, od);
    if (res.kind == overlay::ExitKind::kNephewExit) ++ok;
  }
  return static_cast<double>(ok) / trials;
}

}  // namespace

int main(int argc, char** argv) {
  using metrics::TableWriter;
  const bool quick = bench::quick_mode(argc, argv);
  const int trials = static_cast<int>(bench::scaled(600, 60, quick));

  TableWriter table{{"neighbor_block", "scattered_kills", "delivery_no_recovery",
                     "delivery_recovered"}};
  for (const std::uint32_t block : {20U, 60U, 120U}) {
    for (const std::uint32_t scattered : {0U, 20U, 80U}) {
      table.add_row({TableWriter::fmt(std::uint64_t{block}),
                     TableWriter::fmt(std::uint64_t{scattered}),
                     TableWriter::fmt(delivery(false, block, scattered, trials), 3),
                     TableWriter::fmt(delivery(true, block, scattered, trials), 3)});
    }
  }
  table.print("Ablation — backward forwarding with vs without ring recovery (N=400, k=5)");
  table.write_csv(hours::bench::csv_path("ablation_recovery"));

  // Event-level: time for active recovery to reconnect a gap.
  TableWriter recovery{{"gap_width", "reconnected", "probe_periods_to_heal", "repairs_sent"}};
  for (const std::uint32_t gap : {2U, 5U, 10U, 20U}) {
    sim::RingSimConfig cfg;
    cfg.size = 64;
    cfg.params.design = overlay::Design::kEnhanced;
    cfg.params.k = 3;
    cfg.params.q = 2;
    sim::RingSimulation ring{cfg};
    ring.start();
    ring.simulator().run(2 * cfg.probe_period);
    HOURS_ASSERT(!ring.simulator().truncated());
    for (std::uint32_t i = 0; i < gap; ++i) ring.kill(20 + i);

    std::uint64_t periods = 0;
    for (; periods < 60; ++periods) {
      ring.simulator().run(cfg.probe_period);
      HOURS_ASSERT(!ring.simulator().truncated());
      if (ring.ring_connected()) break;
    }
    recovery.add_row({TableWriter::fmt(std::uint64_t{gap}),
                      ring.ring_connected() ? "yes" : "NO",
                      TableWriter::fmt(periods + 1),
                      TableWriter::fmt(ring.repairs_sent())});
  }
  recovery.print("Active recovery — event-level healing time (N=64, k=3)");
  recovery.write_csv(hours::bench::csv_path("ablation_recovery_event"));
  std::printf("\nWithout recovery, scattered holes strand backward walks; with it, delivery\n"
              "matches Eq.(2). Gaps wider than k heal via Repair messages.\n");
  return 0;
}
