// Ablation of Section 4.1's three redundancy steps, under neighbor attacks:
//
//   A  base design                      (k=1 pointers, nephews at d=1 only)
//   B  step 1: k certain CCW exits      (enhanced pointers, nephews only on
//                                        the k nearest clockwise entries)
//   C  steps 1+2: randomized nephews    (nephews on every entry)  [= full
//      enhanced design: step 3's k-fold sibling pointers come with the
//      min(1, k/d) distribution used throughout]
//
// Step B is emulated by filtering which entries' nephews may be used at
// exit time; the pointer distribution itself is the enhanced one, so the
// delta isolates the value of *randomizing the nephew placement*.
#include <cstdio>
#include <vector>

#include "attack/attack.hpp"
#include "bench_util.hpp"
#include "metrics/table_writer.hpp"
#include "overlay/overlay.hpp"

namespace {

using namespace hours;

constexpr std::uint32_t kN = 500;
constexpr std::uint32_t kK = 5;

enum class Variant { kBase, kFixedNephews, kFullEnhanced };

double delivery(Variant variant, std::uint32_t attacked, int trials) {
  int ok = 0;
  for (int t = 0; t < trials; ++t) {
    overlay::OverlayParams params;
    params.design = variant == Variant::kBase ? overlay::Design::kBase
                                              : overlay::Design::kEnhanced;
    params.k = kK;
    params.q = 6;
    params.seed = 0xAB1A + static_cast<std::uint64_t>(t);

    // Step B: strip nephews from entries beyond the k nearest clockwise
    // neighbors, emulating "redundancy without randomization".
    overlay::ChildCountFn children = [](ids::RingIndex) { return 12U; };
    overlay::Overlay ov{kN, params, overlay::TableStorage::kEager, children};

    const ids::RingIndex od = static_cast<ids::RingIndex>(t * 37) % kN;
    ov.kill(od);
    attack::strike(ov, attack::plan_neighbor(kN, od, attacked));

    const auto entrance = ov.nearest_alive_cw(od);
    if (!entrance.has_value()) continue;

    if (variant == Variant::kFixedNephews) {
      // Success requires an alive node within the k certain CCW exits.
      bool exit_alive = false;
      for (std::uint32_t d = 1; d <= kK; ++d) {
        if (ov.alive(ids::counter_clockwise_step(od, d, kN))) {
          exit_alive = true;
          break;
        }
      }
      if (exit_alive) ++ok;
      continue;
    }

    const auto res = ov.forward(*entrance, od);
    if (res.kind == overlay::ExitKind::kNephewExit) ++ok;
  }
  return static_cast<double>(ok) / trials;
}

}  // namespace

int main(int argc, char** argv) {
  using metrics::TableWriter;
  const bool quick = bench::quick_mode(argc, argv);
  const int trials = static_cast<int>(bench::scaled(1000, 100, quick));

  TableWriter table{{"attacked_neighbors", "base", "k_fixed_nephews", "full_enhanced"}};
  for (const std::uint32_t attacked : {1U, 2U, 5U, 10U, 50U, 150U, 300U, 450U}) {
    table.add_row({TableWriter::fmt(std::uint64_t{attacked}),
                   TableWriter::fmt(delivery(Variant::kBase, attacked, trials), 3),
                   TableWriter::fmt(delivery(Variant::kFixedNephews, attacked, trials), 3),
                   TableWriter::fmt(delivery(Variant::kFullEnhanced, attacked, trials), 3)});
  }

  table.print("Ablation — Section 4.1 redundancy steps under neighbor attack (N=500, k=5)");
  table.write_csv(hours::bench::csv_path("ablation_redundancy_steps"));
  std::printf("\nbase dies at 1 attacked neighbor; fixed-k nephews die at k; randomized\n"
              "nephews (full enhanced) degrade only as the whole arc is destroyed.\n");
  return 0;
}
