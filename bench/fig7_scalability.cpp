// Figure 7: average forwarding path length vs overlay size, 500 to
// 2,000,000 nodes — the scalability of the randomized overlay.
//
// Two engines measure the same curve:
//
//   * graph mode — overlay::Overlay::forward() on lazily regenerated
//     tables, the original instantaneous measurement;
//   * event mode — a sim::HierarchySimulation ring of N siblings driven at
//     message level: every hop is a scheduled transport delivery with an
//     ack/timeout, liveness is learned from silence, and the timer-wheel
//     arena core is what makes the 1M-node point feasible. The event rows
//     also reproduce the Figure 4 delivery shape by killing a fraction of
//     the ring and measuring delivered ratio among attempts to alive
//     destinations.
//
// Paper reference: base design grows ~ ln N; the enhanced design grows
// sub-logarithmically. The report is emitted both as the paper-shaped table
// (+ CSV) and as a metrics::JsonWriter document with events/sec and peak
// RSS, the numbers the scale-smoke CI job tracks.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "metrics/json_writer.hpp"
#include "metrics/table_writer.hpp"
#include "overlay/overlay.hpp"
#include "rng/xoshiro256.hpp"
#include "sim/hierarchy_protocol.hpp"
#include "util/contracts.hpp"

namespace {

using namespace hours;

double mean_path_length(std::uint32_t n, const overlay::OverlayParams& params,
                        std::uint64_t queries) {
  const auto storage =
      n <= 50'000 ? overlay::TableStorage::kEager : overlay::TableStorage::kLazy;
  const overlay::Overlay ov{n, params, storage};
  rng::Xoshiro256 rng{0xF16'7ULL};
  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i < queries; ++i) {
    const auto from = static_cast<ids::RingIndex>(rng.below(n));
    const auto to = static_cast<ids::RingIndex>(rng.below(n));
    total += ov.forward(from, to).hops;
  }
  return static_cast<double>(total) / static_cast<double>(queries);
}

/// One message-level measurement over a single-overlay hierarchy (root +
/// N children): sibling-to-sibling queries ride Algorithm 3 through the
/// event transport. `dead_fraction` > 0 reproduces the Figure 4 regime.
struct EventModeResult {
  std::uint64_t queries = 0;
  std::uint64_t delivered = 0;
  double mean_hops = 0.0;
  std::uint64_t events = 0;
  double events_per_sec = 0.0;
  double wall_ms = 0.0;
};

EventModeResult event_mode_run(std::uint32_t n, const overlay::OverlayParams& params,
                               std::uint64_t queries, double dead_fraction) {
  sim::TreeTopology topology;
  topology.child_counts.assign(n + 1, 0);
  topology.child_counts[0] = n;

  sim::HierarchySimConfig config;
  config.params = params;
  config.seed = 0xF16'7E5ULL;
  sim::HierarchySimulation sim{config, topology};

  rng::Xoshiro256 rng{0xF16'7E5ULL};
  std::vector<std::uint8_t> dead(n + 1, 0);
  if (dead_fraction > 0.0) {
    const auto target = static_cast<std::uint64_t>(dead_fraction * n);
    std::uint64_t killed = 0;
    while (killed < target) {
      const auto id = static_cast<std::uint32_t>(1 + rng.below(n));
      if (dead[id] != 0) continue;
      dead[id] = 1;
      sim.kill_id(id);
      ++killed;
    }
  }

  EventModeResult result;
  result.queries = queries;
  std::uint64_t total_hops = 0;
  const auto started = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < queries; ++i) {
    std::uint32_t from = 0;
    std::uint32_t to = 0;
    do {
      from = static_cast<std::uint32_t>(1 + rng.below(n));
    } while (dead[from] != 0);
    do {
      to = static_cast<std::uint32_t>(1 + rng.below(n));
    } while (to == from || dead[to] != 0);

    const std::uint64_t qid =
        sim.inject_query(hierarchy::NodePath{to - 1}, hierarchy::NodePath{from - 1});
    result.events += sim.simulator().run();
    // A silent event cap would corrupt the delivery curve — fail loudly.
    HOURS_ASSERT(!sim.simulator().truncated());
    const auto& outcome = sim.query(qid);
    HOURS_ASSERT(outcome.done);
    if (outcome.delivered) {
      ++result.delivered;
      total_hops += outcome.hops;
    }
  }
  const auto elapsed = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - started);
  result.wall_ms = elapsed.count() * 1e3;
  result.events_per_sec =
      elapsed.count() > 0.0 ? static_cast<double>(result.events) / elapsed.count() : 0.0;
  result.mean_hops = result.delivered > 0
                         ? static_cast<double>(total_hops) / static_cast<double>(result.delivered)
                         : 0.0;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using hours::metrics::JsonWriter;
  using hours::metrics::TableWriter;
  const bool quick = hours::bench::quick_mode(argc, argv);

  std::vector<std::uint32_t> sizes{500, 2'000, 10'000, 50'000, 200'000, 1'000'000, 2'000'000};
  if (quick) sizes = {500, 2'000, 10'000, 50'000};
  // Message-level points: every hop costs scheduled events, so the grid is
  // sparser, but the top point stays >= 1M nodes (acceptance bar).
  std::vector<std::uint32_t> event_sizes{10'000, 100'000, 1'000'000};
  if (quick) event_sizes = {2'000, 10'000};

  hours::overlay::OverlayParams base;
  base.design = hours::overlay::Design::kBase;
  hours::overlay::OverlayParams enhanced;
  enhanced.design = hours::overlay::Design::kEnhanced;
  enhanced.k = 5;

  JsonWriter json;
  json.begin_object();
  json.field("bench", "fig7_scalability");
  json.field("quick", quick);

  TableWriter table{{"N", "base_mean_hops", "enhanced_mean_hops", "ln(N)"}};
  json.key("graph").begin_array();
  for (const auto n : sizes) {
    // Fewer queries at giant sizes: per-query cost includes lazy table
    // regeneration at every hop.
    const std::uint64_t queries =
        hours::bench::scaled(n >= 1'000'000 ? 5'000 : 20'000, 2'000, quick);
    const double b = mean_path_length(n, base, queries);
    const double e = mean_path_length(n, enhanced, queries);
    table.add_row({TableWriter::fmt(std::uint64_t{n}), TableWriter::fmt(b, 2),
                   TableWriter::fmt(e, 2), TableWriter::fmt(std::log(n), 2)});
    json.begin_object();
    json.field("n", n);
    json.field("queries", queries);
    json.field("base_mean_hops", b, 2);
    json.field("enhanced_mean_hops", e, 2);
    json.field("ln_n", std::log(n), 2);
    json.end_object();
    std::printf("  [fig7] N=%u done (base %.2f, enhanced %.2f)\n", n, b, e);
  }
  json.end_array();

  TableWriter event_table{{"N", "event_mean_hops", "events/sec", "delivered@f=0.10"}};
  json.key("event").begin_array();
  for (const auto n : event_sizes) {
    const std::uint64_t queries = hours::bench::scaled(n >= 1'000'000 ? 2'000 : 5'000, 500, quick);
    const auto healthy = event_mode_run(n, enhanced, queries, /*dead_fraction=*/0.0);
    const auto attacked = event_mode_run(n, enhanced, queries, /*dead_fraction=*/0.10);
    const double delivered_ratio =
        static_cast<double>(attacked.delivered) / static_cast<double>(attacked.queries);
    event_table.add_row({TableWriter::fmt(std::uint64_t{n}),
                         TableWriter::fmt(healthy.mean_hops, 2),
                         TableWriter::fmt(healthy.events_per_sec, 0),
                         TableWriter::fmt(delivered_ratio, 4)});
    json.begin_object();
    json.field("n", n);
    json.field("queries", queries);
    json.field("mean_hops", healthy.mean_hops, 2);
    json.field("events", healthy.events);
    json.field("events_per_sec", healthy.events_per_sec, 0);
    json.field("wall_ms", healthy.wall_ms, 1);
    json.field("dead_fraction", 0.10, 2);
    json.field("delivered_ratio", delivered_ratio, 4);
    json.field("attacked_events_per_sec", attacked.events_per_sec, 0);
    json.end_object();
    std::printf("  [fig7] event N=%u done (hops %.2f, %.0f events/sec, delivered %.4f)\n", n,
                healthy.mean_hops, healthy.events_per_sec, delivered_ratio);
  }
  json.end_array();

  json.field("peak_rss_bytes", hours::bench::peak_rss_bytes());
  json.end_object();

  table.print("Figure 7 — scalability of overlay forwarding (graph engine)");
  event_table.print("Figure 7 — message-level overlay forwarding (event engine)");
  table.write_csv(hours::bench::csv_path("fig7_scalability"));
  hours::bench::emit_json_report("fig7_scalability", json.str());
  std::printf("\nPaper reference: base ~ ln N; enhanced sub-logarithmic.\n");
  return 0;
}
