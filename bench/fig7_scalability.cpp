// Figure 7: average forwarding path length vs overlay size, 500 to
// 2,000,000 nodes — the scalability of the randomized overlay.
//
// Paper reference: base design grows ~ ln N; the enhanced design grows
// sub-logarithmically. Tables at the larger sizes are regenerated lazily per
// visited node (deterministic per-node seeds), so the 2M-node point runs in
// O(queries x hops x k log^2 N) time and O(N) memory for liveness only.
#include <cstdio>
#include <cmath>
#include <vector>

#include "bench_util.hpp"
#include "metrics/table_writer.hpp"
#include "overlay/overlay.hpp"
#include "rng/xoshiro256.hpp"

namespace {

double mean_path_length(std::uint32_t n, const hours::overlay::OverlayParams& params,
                        std::uint64_t queries) {
  using namespace hours;
  const auto storage =
      n <= 50'000 ? overlay::TableStorage::kEager : overlay::TableStorage::kLazy;
  const overlay::Overlay ov{n, params, storage};
  rng::Xoshiro256 rng{0xF16'7ULL};
  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i < queries; ++i) {
    const auto from = static_cast<ids::RingIndex>(rng.below(n));
    const auto to = static_cast<ids::RingIndex>(rng.below(n));
    total += ov.forward(from, to).hops;
  }
  return static_cast<double>(total) / static_cast<double>(queries);
}

}  // namespace

int main(int argc, char** argv) {
  using hours::metrics::TableWriter;
  const bool quick = hours::bench::quick_mode(argc, argv);

  std::vector<std::uint32_t> sizes{500, 2'000, 10'000, 50'000, 200'000, 1'000'000, 2'000'000};
  if (quick) sizes = {500, 2'000, 10'000, 50'000};

  hours::overlay::OverlayParams base;
  base.design = hours::overlay::Design::kBase;
  hours::overlay::OverlayParams enhanced;
  enhanced.design = hours::overlay::Design::kEnhanced;
  enhanced.k = 5;

  TableWriter table{{"N", "base_mean_hops", "enhanced_mean_hops", "ln(N)"}};
  for (const auto n : sizes) {
    // Fewer queries at giant sizes: per-query cost includes lazy table
    // regeneration at every hop.
    const std::uint64_t queries =
        hours::bench::scaled(n >= 1'000'000 ? 5'000 : 20'000, 2'000, quick);
    const double b = mean_path_length(n, base, queries);
    const double e = mean_path_length(n, enhanced, queries);
    table.add_row({TableWriter::fmt(std::uint64_t{n}), TableWriter::fmt(b, 2),
                   TableWriter::fmt(e, 2), TableWriter::fmt(std::log(n), 2)});
    std::printf("  [fig7] N=%u done (base %.2f, enhanced %.2f)\n", n, b, e);
  }

  table.print("Figure 7 — scalability of overlay forwarding");
  table.write_csv(hours::bench::csv_path("fig7_scalability"));
  std::printf("\nPaper reference: base ~ ln N; enhanced sub-logarithmic.\n");
  return 0;
}
