// Figure 10: average number of forwarding hops under *neighbor* attacks —
// the optimal topology-aware strategy: T plus its closest counter-clockwise
// neighbors are shut down simultaneously.
//
// Paper reference (k=5): 13.5 hops at 100 attacked, 24.2 at 300, 61.4 at
// 500; (k=10): 11.2 / 19.1 / 46.6. Most hops are counter-clockwise
// backward steps hunting for a surviving exit. The paper reports 100%
// delivery; the structural bound is (1 - prod(1 - k/d)) — we report the
// measured ratio (see EXPERIMENTS.md for the discussion).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "hierarchy_attack_common.hpp"
#include "metrics/table_writer.hpp"

int main(int argc, char** argv) {
  using hours::metrics::TableWriter;
  const bool quick = hours::bench::quick_mode(argc, argv);
  const int trials = static_cast<int>(hours::bench::scaled(300, 30, quick));

  TableWriter table{{"attacked_neighbors", "k", "delivery", "mean_hops", "p90_hops",
                     "mean_backward_steps"}};

  for (const std::uint32_t k : {5U, 10U}) {
    const auto cfg = hours::bench::scenario_for(quick, k);
    std::vector<std::uint32_t> counts{0, 100, 200, 300, 400, 500};
    if (quick) counts = {0, 20, 40, 60, 80, 100};
    for (const auto attacked : counts) {
      const auto res = hours::bench::run_scenario(cfg, hours::attack::Strategy::kNeighbor,
                                                  attacked, trials);
      table.add_row({TableWriter::fmt(std::uint64_t{attacked}),
                     TableWriter::fmt(std::uint64_t{k}),
                     TableWriter::fmt(res.delivery_ratio, 3), TableWriter::fmt(res.mean_hops, 1),
                     TableWriter::fmt(res.hops.quantile(0.9)),
                     TableWriter::fmt(res.mean_backward, 2)});
      std::printf("  [fig10] k=%u attacked=%u done (%.1f hops, delivery %.3f)\n", k, attacked,
                  res.mean_hops, res.delivery_ratio);
    }
  }

  table.print("Figure 10 — hops under neighbor attacks (T always attacked)");
  table.write_csv(hours::bench::csv_path("fig10_neighbor_attack"));
  std::printf("\nPaper reference (k=5): 13.5 @100, 24.2 @300, 61.4 @500; (k=10): 11.2 / 19.1 /\n"
              "46.6. Neighbor attacks cost far more hops than random attacks of equal size.\n");
  return 0;
}
