// google-benchmark microbenchmarks for the hot primitives: routing-table
// generation (jump sampler vs naive O(N) Bernoulli), greedy forwarding, and
// Chord routing. These justify the jump sampler that makes Figure 7's
// 2,000,000-node point tractable.
#include <benchmark/benchmark.h>

#include "baseline/chord.hpp"
#include "overlay/overlay.hpp"
#include "overlay/table_builder.hpp"
#include "rng/pointer_sampler.hpp"
#include "rng/xoshiro256.hpp"

namespace {

using namespace hours;

void BM_SamplerJump(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  rng::Xoshiro256 rng{42};
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng::sample_pointer_distances(n, 5, rng));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SamplerJump)->Range(1024, 1 << 21)->Complexity(benchmark::oLogN);

void BM_SamplerNaive(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  rng::Xoshiro256 rng{42};
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng::sample_pointer_distances_naive(n, 5, rng));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SamplerNaive)->Range(1024, 1 << 17)->Complexity(benchmark::oN);

void BM_TableBuild(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  overlay::OverlayParams params;
  params.design = overlay::Design::kEnhanced;
  params.k = 5;
  std::uint32_t owner = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(overlay::build_routing_table(n, owner, params));
    owner = (owner + 1) % n;
  }
}
BENCHMARK(BM_TableBuild)->Range(1024, 1 << 21);

void BM_ForwardEager(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  overlay::OverlayParams params;
  params.design = overlay::Design::kEnhanced;
  params.k = 5;
  const overlay::Overlay ov{n, params};
  rng::Xoshiro256 rng{7};
  for (auto _ : state) {
    const auto from = static_cast<ids::RingIndex>(rng.below(n));
    const auto to = static_cast<ids::RingIndex>(rng.below(n));
    benchmark::DoNotOptimize(ov.forward(from, to));
  }
}
BENCHMARK(BM_ForwardEager)->Range(1024, 1 << 16);

void BM_ForwardLazy(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  overlay::OverlayParams params;
  params.design = overlay::Design::kEnhanced;
  params.k = 5;
  const overlay::Overlay ov{n, params, overlay::TableStorage::kLazy};
  rng::Xoshiro256 rng{7};
  for (auto _ : state) {
    const auto from = static_cast<ids::RingIndex>(rng.below(n));
    const auto to = static_cast<ids::RingIndex>(rng.below(n));
    benchmark::DoNotOptimize(ov.forward(from, to));
  }
}
BENCHMARK(BM_ForwardLazy)->Range(1024, 1 << 20);

void BM_ChordRoute(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const baseline::ChordOverlay chord{n};
  rng::Xoshiro256 rng{7};
  for (auto _ : state) {
    const auto from = static_cast<ids::RingIndex>(rng.below(n));
    const auto to = static_cast<ids::RingIndex>(rng.below(n));
    benchmark::DoNotOptimize(chord.route(from, to));
  }
}
BENCHMARK(BM_ChordRoute)->Range(1024, 1 << 16);

}  // namespace

BENCHMARK_MAIN();
