// google-benchmark microbenchmarks for the hot primitives: routing-table
// generation (jump sampler vs naive O(N) Bernoulli), greedy forwarding,
// Chord routing, the trace emission path, and the timer-wheel event core.
// The BM_ForwardTraced* group bounds the cost the tracing subsystem adds to
// a hot protocol op: with no tracer attached the emission site must be
// within noise (<= 2%) of the untraced BM_ForwardEager loop. The BM_Sim*
// group reports events/sec through the arena-backed wheel (items/sec in the
// benchmark output) plus peak RSS, the scale metrics ISSUE-level runs track.
#include <benchmark/benchmark.h>

#include <vector>

#include "baseline/chord.hpp"
#include "bench_util.hpp"
#include "overlay/overlay.hpp"
#include "overlay/table_builder.hpp"
#include "rng/pointer_sampler.hpp"
#include "rng/xoshiro256.hpp"
#include "sim/hierarchy_protocol.hpp"
#include "sim/simulator.hpp"
#include "trace/ring_buffer_sink.hpp"
#include "trace/sink.hpp"

namespace {

using namespace hours;

void BM_SamplerJump(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  rng::Xoshiro256 rng{42};
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng::sample_pointer_distances(n, 5, rng));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SamplerJump)->Range(1024, 1 << 21)->Complexity(benchmark::oLogN);

void BM_SamplerNaive(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  rng::Xoshiro256 rng{42};
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng::sample_pointer_distances_naive(n, 5, rng));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SamplerNaive)->Range(1024, 1 << 17)->Complexity(benchmark::oN);

void BM_TableBuild(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  overlay::OverlayParams params;
  params.design = overlay::Design::kEnhanced;
  params.k = 5;
  std::uint32_t owner = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(overlay::build_routing_table(n, owner, params));
    owner = (owner + 1) % n;
  }
}
BENCHMARK(BM_TableBuild)->Range(1024, 1 << 21);

void BM_ForwardEager(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  overlay::OverlayParams params;
  params.design = overlay::Design::kEnhanced;
  params.k = 5;
  const overlay::Overlay ov{n, params};
  rng::Xoshiro256 rng{7};
  for (auto _ : state) {
    const auto from = static_cast<ids::RingIndex>(rng.below(n));
    const auto to = static_cast<ids::RingIndex>(rng.below(n));
    benchmark::DoNotOptimize(ov.forward(from, to));
  }
}
BENCHMARK(BM_ForwardEager)->Range(1024, 1 << 16);

void BM_ForwardLazy(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  overlay::OverlayParams params;
  params.design = overlay::Design::kEnhanced;
  params.k = 5;
  const overlay::Overlay ov{n, params, overlay::TableStorage::kLazy};
  rng::Xoshiro256 rng{7};
  for (auto _ : state) {
    const auto from = static_cast<ids::RingIndex>(rng.below(n));
    const auto to = static_cast<ids::RingIndex>(rng.below(n));
    benchmark::DoNotOptimize(ov.forward(from, to));
  }
}
BENCHMARK(BM_ForwardLazy)->Range(1024, 1 << 20);

/// The forwarding loop of BM_ForwardEager with a per-hop emission site, the
/// way ring_protocol's hot path is instrumented. `tracer` selects the mode:
/// nullptr = tracing disabled (the default for every protocol object), a
/// sink-less tracer = attached but idle, a sink-backed tracer = recording.
void forward_traced_loop(benchmark::State& state, trace::Tracer* tracer) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  overlay::OverlayParams params;
  params.design = overlay::Design::kEnhanced;
  params.k = 5;
  const overlay::Overlay ov{n, params};
  rng::Xoshiro256 rng{7};
  std::uint64_t tick = 0;
  for (auto _ : state) {
    const auto from = static_cast<ids::RingIndex>(rng.below(n));
    const auto to = static_cast<ids::RingIndex>(rng.below(n));
    const auto next = ov.forward(from, to);
    benchmark::DoNotOptimize(next);
    HOURS_TRACE_EMIT(tracer, {.at = ++tick, .type = trace::EventType::kRingHop,
                              .node = from, .peer = next.last_node, .causal = tick});
  }
}

void BM_ForwardTracedDisabled(benchmark::State& state) {
  forward_traced_loop(state, nullptr);
}
BENCHMARK(BM_ForwardTracedDisabled)->Range(1024, 1 << 16);

void BM_ForwardTracedNoSink(benchmark::State& state) {
  trace::Tracer tracer;
  forward_traced_loop(state, &tracer);
}
BENCHMARK(BM_ForwardTracedNoSink)->Range(1024, 1 << 16);

void BM_ForwardTracedRingBuffer(benchmark::State& state) {
  trace::Tracer tracer;
  trace::RingBufferSink sink{4096};
  tracer.add_sink(&sink);
  forward_traced_loop(state, &tracer);
}
BENCHMARK(BM_ForwardTracedRingBuffer)->Range(1024, 1 << 16);

/// Raw cost of one emit through the dispatcher into the ring buffer.
void BM_TraceEmit(benchmark::State& state) {
  trace::Tracer tracer;
  trace::RingBufferSink sink{4096};
  tracer.add_sink(&sink);
  std::uint64_t tick = 0;
  for (auto _ : state) {
    tracer.emit({.at = ++tick, .type = trace::EventType::kProbeSent, .node = 1, .peer = 2});
  }
  benchmark::DoNotOptimize(sink.total_events());
}
BENCHMARK(BM_TraceEmit);

/// Steady-state timer-wheel churn at `n` live events: each iteration
/// schedules one described event at a random future instant and dispatches
/// the earliest pending one, so the slab stays at ~n occupancy and the
/// wheel's insert + find-next + dispatch path dominates. Items/sec in the
/// report is events/sec through the arena core.
void BM_SimWheelChurn(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  sim::Simulator sim;
  std::uint64_t dispatched = 0;
  sim.set_runner([&dispatched](std::uint16_t, const std::uint64_t*, std::size_t) {
    ++dispatched;
  });
  rng::Xoshiro256 rng{0x5E7'Au};
  const std::uint64_t arg = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    sim.schedule(1 + rng.below(1u << 17), /*kind=*/0x900, &arg, 1);
  }
  for (auto _ : state) {
    sim.schedule(1 + rng.below(1u << 17), /*kind=*/0x900, &arg, 1);
    sim.run(/*limit=*/0, /*max_events=*/1);
  }
  benchmark::DoNotOptimize(dispatched);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["peak_rss_mb"] =
      static_cast<double>(hours::bench::peak_rss_bytes()) / (1024.0 * 1024.0);
}
BENCHMARK(BM_SimWheelChurn)->Range(1024, 1 << 20);

/// A full message-level query between random siblings of a single-overlay
/// hierarchy: transport deliveries, acks and continuations all ride the
/// wheel. Items/sec is simulator events/sec at protocol granularity.
void BM_SimHierQuery(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  sim::TreeTopology topology;
  topology.child_counts.assign(n + 1, 0);
  topology.child_counts[0] = n;
  sim::HierarchySimConfig config;
  config.params.design = overlay::Design::kEnhanced;
  config.params.k = 5;
  sim::HierarchySimulation sim{config, topology};
  rng::Xoshiro256 rng{0x5E7'Bu};
  std::uint64_t events = 0;
  for (auto _ : state) {
    const auto from = static_cast<std::uint32_t>(rng.below(n));
    auto to = static_cast<std::uint32_t>(rng.below(n));
    if (to == from) to = (to + 1) % n;
    const std::uint64_t qid =
        sim.inject_query(hierarchy::NodePath{to}, hierarchy::NodePath{from});
    events += sim.simulator().run();
    HOURS_ASSERT(!sim.simulator().truncated());
    benchmark::DoNotOptimize(sim.query(qid).delivered);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["peak_rss_mb"] =
      static_cast<double>(hours::bench::peak_rss_bytes()) / (1024.0 * 1024.0);
}
BENCHMARK(BM_SimHierQuery)->Range(1024, 1 << 16);

void BM_ChordRoute(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const baseline::ChordOverlay chord{n};
  rng::Xoshiro256 rng{7};
  for (auto _ : state) {
    const auto from = static_cast<ids::RingIndex>(rng.below(n));
    const auto to = static_cast<ids::RingIndex>(rng.below(n));
    benchmark::DoNotOptimize(chord.route(from, to));
  }
}
BENCHMARK(BM_ChordRoute)->Range(1024, 1 << 16);

}  // namespace

BENCHMARK_MAIN();
