// Theorem 5 validation: a compromised (query-dropping) insider at index
// distance d counter-clockwise of a victim sibling decreases the victim's
// service accessibility by 1/(d+1).
//
// Intuition: greedy forwarding funnels toward the victim through its last
// few counter-clockwise predecessors; the dropper intercepts exactly the
// queries whose final approach lands on it, which happens with probability
// 1/(d+1) for random sources.
#include <cstdio>

#include "analysis/resilience.hpp"
#include "bench_util.hpp"
#include "metrics/table_writer.hpp"
#include "overlay/overlay.hpp"
#include "rng/xoshiro256.hpp"

int main(int argc, char** argv) {
  using namespace hours;
  using metrics::TableWriter;
  const bool quick = bench::quick_mode(argc, argv);
  const std::uint32_t n = 200;
  const int seeds = static_cast<int>(bench::scaled(200, 40, quick));

  TableWriter table{{"dropper_distance_d", "measured_delivery", "predicted_1-1/(d+1)",
                     "measured_damage", "theorem_damage"}};

  for (const std::uint32_t d : {1U, 2U, 4U, 9U, 19U, 49U}) {
    std::uint64_t delivered = 0;
    std::uint64_t total = 0;
    for (int s = 0; s < seeds; ++s) {
      overlay::OverlayParams params;
      params.design = overlay::Design::kEnhanced;
      params.k = 1;  // the theorem's setting: single funnel chain
      params.q = 2;
      params.seed = 0x7435 + static_cast<std::uint64_t>(s);
      overlay::Overlay ov{n, params};
      const ids::RingIndex victim = 123;
      ov.set_behavior(ids::counter_clockwise_step(victim, d, n),
                      overlay::NodeBehavior::kDropper);
      rng::Xoshiro256 rng{0x51 + static_cast<std::uint64_t>(s)};
      for (int qy = 0; qy < 50; ++qy) {
        const auto from = static_cast<ids::RingIndex>(rng.below(n));
        if (from == victim) continue;
        ++total;
        if (ov.forward(from, victim).kind == overlay::ExitKind::kArrivedAtOd) ++delivered;
      }
    }
    const double measured = static_cast<double>(delivered) / static_cast<double>(total);
    const double damage = analysis::theorem5_damage(d);
    table.add_row({TableWriter::fmt(std::uint64_t{d}), TableWriter::fmt(measured, 3),
                   TableWriter::fmt(1.0 - damage, 3), TableWriter::fmt(1.0 - measured, 3),
                   TableWriter::fmt(damage, 3)});
  }

  table.print("Theorem 5 — insider dropper damage vs index distance (N=200, k=1)");
  table.write_csv(hours::bench::csv_path("thm5_inside_attack"));
  std::printf("\nMeasured damage should track 1/(d+1).\n");
  return 0;
}
