// Ablation of q (nephew pointers per entry): Section 5.2 argues the
// inter-overlay hop fails with probability alpha^q when the next-level
// overlay has attack density alpha, so "a reasonably large q, say 10" makes
// it negligible.
//
// Two measurements per (q, alpha):
//   * exit_blocked — the designated exit node's q nephews are all dead
//     (the per-attempt failure Section 5.2 bounds by alpha^q; exactly
//     hypergeometric since victims are drawn without replacement);
//   * end_to_end_failure — forwarding ultimately finds no usable exit at
//     all, which is rarer because a blocked exit just hands the query on to
//     the next candidate.
#include <cstdio>
#include <vector>

#include "analysis/resilience.hpp"
#include "bench_util.hpp"
#include "metrics/table_writer.hpp"
#include "overlay/overlay.hpp"
#include "rng/xoshiro256.hpp"

int main(int argc, char** argv) {
  using namespace hours;
  using metrics::TableWriter;
  const bool quick = bench::quick_mode(argc, argv);
  const int trials = static_cast<int>(bench::scaled(4000, 400, quick));

  constexpr std::uint32_t kN = 200;
  constexpr std::uint32_t kChildren = 64;

  TableWriter table{{"q", "child_alpha", "exit_blocked", "alpha^q", "end_to_end_failure"}};
  for (const std::uint32_t q : {1U, 2U, 4U, 10U}) {
    for (const double alpha : {0.3, 0.6, 0.9}) {
      rng::Xoshiro256 rng{rng::mix64(q, static_cast<std::uint64_t>(alpha * 100))};
      int blocked = 0;
      int failures = 0;
      for (int t = 0; t < trials; ++t) {
        overlay::OverlayParams params;
        params.design = overlay::Design::kEnhanced;
        params.k = 5;
        params.q = q;
        params.seed = 0xAB3A + static_cast<std::uint64_t>(t);
        overlay::Overlay ov{kN, params, overlay::TableStorage::kEager,
                            [](ids::RingIndex) { return kChildren; }};
        const ids::RingIndex od = static_cast<ids::RingIndex>(t * 7) % kN;
        ov.kill(od);

        std::vector<std::uint8_t> child_alive(kChildren, 1);
        std::uint32_t to_kill = static_cast<std::uint32_t>(alpha * kChildren);
        while (to_kill > 0) {
          const auto c = static_cast<std::size_t>(rng.below(kChildren));
          if (child_alive[c] != 0) {
            child_alive[c] = 0;
            --to_kill;
          }
        }

        // Per-attempt: the OD's immediate CCW neighbor holds a certain
        // entry for it; is that entry's nephew set entirely dead?
        const auto exit_node = ids::counter_clockwise_step(od, 1, kN);
        const auto* entry = ov.table(exit_node).find(od);
        bool all_dead = true;
        if (entry != nullptr) {
          for (const auto n : entry->nephews) {
            if (child_alive[n] != 0) {
              all_dead = false;
              break;
            }
          }
        }
        if (all_dead) ++blocked;

        overlay::ForwardOptions opts;
        opts.next_od = 0;
        opts.child_alive = &child_alive;
        const auto entrance = ov.nearest_alive_cw(od);
        if (ov.forward(*entrance, od, opts).kind != overlay::ExitKind::kNephewExit) {
          ++failures;
        }
      }
      table.add_row({TableWriter::fmt(std::uint64_t{q}), TableWriter::fmt(alpha, 1),
                     TableWriter::fmt(static_cast<double>(blocked) / trials, 4),
                     TableWriter::fmt(analysis::inter_overlay_failure(alpha, q), 4),
                     TableWriter::fmt(static_cast<double>(failures) / trials, 4)});
    }
  }

  table.print("Ablation — nephew redundancy q vs inter-overlay failure (N=200, 64 children)");
  table.write_csv(hours::bench::csv_path("ablation_nephew_q"));
  std::printf("\nexit_blocked tracks alpha^q; end-to-end failure is lower still because a\n"
              "blocked exit hands the query to the next entry-holder.\n");
  return 0;
}
