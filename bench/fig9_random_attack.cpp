// Figure 9: average number of forwarding hops under *random* attacks in the
// four-level hierarchy of Section 6.2 (target T plus a random fraction of
// its 999 siblings shut down), for k = 5 and k = 10.
//
// Paper reference (k=5): 7.8 hops with only T attacked, rising to just 10.7
// at 70% of siblings attacked; k=10 drops that to ~7. Delivery stays 100%.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "hierarchy_attack_common.hpp"
#include "metrics/table_writer.hpp"

int main(int argc, char** argv) {
  using hours::metrics::TableWriter;
  const bool quick = hours::bench::quick_mode(argc, argv);
  const int trials = static_cast<int>(hours::bench::scaled(300, 30, quick));

  TableWriter table{{"attacked_fraction", "k", "delivery", "mean_hops", "p90_hops",
                     "mean_backward_steps"}};

  const std::vector<double> fractions{0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7};
  for (const std::uint32_t k : {5U, 10U}) {
    const auto cfg = hours::bench::scenario_for(quick, k);
    for (const double f : fractions) {
      const auto attacked = static_cast<std::uint32_t>(f * (cfg.level1 - 1));
      const auto res = hours::bench::run_scenario(cfg, hours::attack::Strategy::kRandom,
                                                  attacked, trials);
      table.add_row({TableWriter::fmt(f, 1), TableWriter::fmt(std::uint64_t{k}),
                     TableWriter::fmt(res.delivery_ratio, 3), TableWriter::fmt(res.mean_hops, 1),
                     TableWriter::fmt(res.hops.quantile(0.9)),
                     TableWriter::fmt(res.mean_backward, 2)});
      std::printf("  [fig9] k=%u f=%.1f done (%.1f hops, delivery %.3f)\n", k, f, res.mean_hops,
                  res.delivery_ratio);
    }
  }

  table.print("Figure 9 — hops under random attacks (T always attacked)");
  table.write_csv(hours::bench::csv_path("fig9_random_attack"));
  std::printf("\nPaper reference (k=5): 7.8 hops at f=0, 10.7 at f=0.7; k=10: ~7 at f=0.7;\n"
              "delivery 100%% throughout.\n");
  return 0;
}
