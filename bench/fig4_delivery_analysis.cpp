// Figure 4: intra-overlay delivery probability P_i vs attack density alpha
// in an overlay of N=200 nodes, under random and neighbor attacks, for
// k in {1, 5, 10} — the paper's Equations (1) and (2), cross-checked by
// Monte-Carlo simulation of the actual overlay structures.
//
// Paper reference points: random attack is negligible until ~80% density;
// neighbor attack at 80% with k=5 still gives > 50%; k=10 at 90% gives ~64%.
#include <cstdio>
#include <vector>

#include "analysis/resilience.hpp"
#include "attack/attack.hpp"
#include "bench_util.hpp"
#include "metrics/table_writer.hpp"
#include "overlay/overlay.hpp"

namespace {

constexpr std::uint32_t kN = 200;

/// Monte-Carlo estimate of P_i: the probability that intra-overlay
/// forwarding toward a dead OD still finds an exit, over fresh random
/// overlay instantiations.
double simulate_delivery(std::uint32_t k, double alpha, hours::attack::Strategy strategy,
                         int trials) {
  using namespace hours;
  const auto attacked = static_cast<std::uint32_t>(alpha * kN);
  if (attacked >= kN - 1) return 0.0;

  rng::Xoshiro256 attack_rng{0xF16'4ULL};
  int exits = 0;
  for (int t = 0; t < trials; ++t) {
    overlay::OverlayParams params;
    params.design = overlay::Design::kEnhanced;
    params.k = k;
    params.q = 10;
    params.seed = 0xABC0 + static_cast<std::uint64_t>(t);
    overlay::Overlay ov{kN, params, overlay::TableStorage::kEager,
                        [](hours::ids::RingIndex) { return 16U; }};

    const ids::RingIndex od = static_cast<ids::RingIndex>(t) % kN;
    ov.kill(od);
    const auto victims = attack::plan(strategy, kN, od, attacked, attack_rng);
    attack::strike(ov, victims);

    const auto entrance = ov.nearest_alive_cw(od);  // worst-case: enter far side
    if (!entrance.has_value()) continue;
    const auto res = ov.forward(*entrance, od);
    if (res.kind == overlay::ExitKind::kNephewExit) ++exits;
  }
  return static_cast<double>(exits) / trials;
}

}  // namespace

int main(int argc, char** argv) {
  using hours::metrics::TableWriter;
  const bool quick = hours::bench::quick_mode(argc, argv);
  const int trials = static_cast<int>(hours::bench::scaled(2000, 200, quick));

  TableWriter table{{"alpha", "k", "random:analysis", "random:sim", "neighbor:analysis",
                     "neighbor:sim"}};

  const std::vector<double> alphas{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95};
  for (const std::uint32_t k : {1U, 5U, 10U}) {
    for (const double alpha : alphas) {
      const double rnd_an = hours::analysis::delivery_random_attack(kN, k, alpha);
      const double nbr_an = hours::analysis::delivery_neighbor_attack(kN, k, alpha);
      const double rnd_sim = simulate_delivery(k, alpha, hours::attack::Strategy::kRandom, trials);
      const double nbr_sim =
          simulate_delivery(k, alpha, hours::attack::Strategy::kNeighbor, trials);
      table.add_row({TableWriter::fmt(alpha, 2), TableWriter::fmt(std::uint64_t{k}),
                     TableWriter::fmt(rnd_an), TableWriter::fmt(rnd_sim),
                     TableWriter::fmt(nbr_an), TableWriter::fmt(nbr_sim)});
    }
  }

  table.print("Figure 4 — delivery ratio P_i vs attack density (N=200)");
  table.write_csv(hours::bench::csv_path("fig4_delivery_analysis"));

  std::printf("\nPaper reference: random attack negligible until ~80%%; neighbor attack at\n"
              "alpha=0.8,k=5 keeps P>0.5; alpha=0.9,k=10 gives P~0.64.\n");
  return 0;
}
