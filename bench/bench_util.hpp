// Shared helpers for the experiment harness binaries.
//
// Every bench accepts `--quick` (or env HOURS_BENCH_QUICK=1) to run a
// reduced-size version suitable for CI smoke runs; the default sizes match
// the paper's setup. Each bench prints the paper-shaped table to stdout and
// mirrors it to <binary>.csv in the current directory.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <string_view>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace hours::bench {

inline bool quick_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view{argv[i]} == "--quick") return true;
  }
  const char* env = std::getenv("HOURS_BENCH_QUICK");
  return env != nullptr && std::string_view{env} != "0";
}

/// Scales a default workload down in quick mode.
inline std::uint64_t scaled(std::uint64_t full, std::uint64_t quick, bool is_quick) {
  return is_quick ? quick : full;
}

inline std::string csv_path(std::string_view bench_name) {
  return std::string{bench_name} + ".csv";
}

/// Peak resident set size of this process in bytes (0 where unsupported).
/// Scale benches report it next to events/sec so memory regressions are as
/// loud as throughput regressions.
inline std::uint64_t peak_rss_bytes() {
#if defined(__APPLE__)
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes on macOS
#elif defined(__unix__)
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#else
  return 0;
#endif
}

/// Prints a finished JSON report to stdout and mirrors it to
/// <bench_name>.json — the shared tail of every reproducibility bench.
/// Reports should be built with metrics::JsonWriter, not hand-concatenated.
inline void emit_json_report(std::string_view bench_name, const std::string& json) {
  std::printf("%s\n", json.c_str());
  std::ofstream out{std::string{bench_name} + ".json"};
  out << json << "\n";
}

}  // namespace hours::bench
