// Trace-schema checker: validates a JSON-lines trace file (or stdin)
// against the v1 event schema via trace::validate_event_line. CI runs a
// bench with a JSONL sink and pipes the output through this; any line a
// sink emits that the validator rejects is a schema break.
//
// Usage: validate_trace [file.jsonl]   (no argument = stdin)
// Exit: 0 all lines valid, 1 first invalid line (reported), 2 bad usage.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "trace/event.hpp"

int main(int argc, char** argv) {
  std::ifstream file;
  std::istream* in = &std::cin;
  if (argc > 1) {
    file.open(argv[1]);
    if (!file) {
      std::fprintf(stderr, "validate_trace: cannot open %s\n", argv[1]);
      return 2;
    }
    in = &file;
  }

  std::string line;
  std::string error;
  unsigned long long lines = 0;
  while (std::getline(*in, line)) {
    if (line.empty()) continue;
    ++lines;
    if (!hours::trace::validate_event_line(line, &error)) {
      std::fprintf(stderr, "validate_trace: line %llu invalid: %s\n  %s\n", lines,
                   error.c_str(), line.c_str());
      return 1;
    }
  }
  std::printf("validate_trace: %llu lines, all schema-valid\n", lines);
  return 0;
}
