// Ablation of server replication (Section 7): "server replication can
// greatly strengthen the system resilience under DoS attacks."
//
// The attacker spends a fixed budget of B server-kills against the OD's
// counter-clockwise neighborhood. With replication factor r it must spend r
// kills to fell one logical node, so the effective neighbor-attack width is
// B/r — delivery at budget B with factor r should track delivery at width
// B/r without replication.
#include <cstdio>

#include "analysis/resilience.hpp"
#include "bench_util.hpp"
#include "metrics/table_writer.hpp"
#include "overlay/replication.hpp"

namespace {

using namespace hours;

constexpr std::uint32_t kN = 300;
constexpr std::uint32_t kK = 5;

double delivery_with_replication(std::uint32_t replicas, std::uint32_t budget, int trials) {
  int exits = 0;
  for (int t = 0; t < trials; ++t) {
    overlay::OverlayParams params;
    params.design = overlay::Design::kEnhanced;
    params.k = kK;
    params.q = 6;
    params.seed = 0x3E9 + static_cast<std::uint64_t>(t);
    overlay::Overlay ov{kN, params, overlay::TableStorage::kEager,
                        [](ids::RingIndex) { return 12U; }};
    overlay::ReplicatedOverlay rep{ov, replicas};

    const ids::RingIndex od = static_cast<ids::RingIndex>(t * 11) % kN;
    // The attacker fells whole logical nodes, nearest-CCW first (optimal),
    // spending r kills each; the OD itself is taken down first.
    std::uint32_t remaining = budget;
    for (std::uint32_t r = 0; r < replicas && remaining > 0; ++r, --remaining) {
      rep.kill_server(od, r);
    }
    std::uint32_t step = 1;
    while (remaining >= replicas && step < kN) {
      const auto node = ids::counter_clockwise_step(od, step, kN);
      for (std::uint32_t r = 0; r < replicas; ++r) rep.kill_server(node, r);
      remaining -= replicas;
      ++step;
    }
    if (ov.alive(od)) {
      // Budget too small to finish the OD: trivially reachable.
      ++exits;
      continue;
    }

    const auto entrance = ov.nearest_alive_cw(od);
    if (!entrance.has_value()) continue;
    if (ov.forward(*entrance, od).kind == overlay::ExitKind::kNephewExit) ++exits;
  }
  return static_cast<double>(exits) / trials;
}

}  // namespace

int main(int argc, char** argv) {
  using metrics::TableWriter;
  const bool quick = bench::quick_mode(argc, argv);
  const int trials = static_cast<int>(bench::scaled(800, 80, quick));

  TableWriter table{{"server_kill_budget", "r=1", "r=2", "r=3", "eq2_at_B/r=2"}};
  for (const std::uint32_t budget : {50U, 100U, 200U, 400U, 580U}) {
    const double predicted =
        analysis::delivery_neighbor_attack(kN, kK, std::min(0.99, budget / 2.0 / kN));
    table.add_row({TableWriter::fmt(std::uint64_t{budget}),
                   TableWriter::fmt(delivery_with_replication(1, budget, trials), 3),
                   TableWriter::fmt(delivery_with_replication(2, budget, trials), 3),
                   TableWriter::fmt(delivery_with_replication(3, budget, trials), 3),
                   TableWriter::fmt(predicted, 3)});
  }

  table.print("Ablation — server replication vs attack budget (N=300, k=5, neighbor attack)");
  table.write_csv(hours::bench::csv_path("ablation_replication"));
  std::printf("\nFactor r divides the attacker's effective width by r: the r=2 column tracks\n"
              "Eq.(2) evaluated at half the budget.\n");
  return 0;
}
