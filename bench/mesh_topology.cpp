// Mesh topology study (Section 7): "the mesh topology further increases the
// connectivity among peering overlays, thus the DoS resilience."
//
// Setup: R regions, each with S sites. A fraction of sites "peer": they
// register a secondary parent region. The attacker takes down a victim
// region plus a growing share of that region's sites. We measure the
// answer rate for the victim region's sites, tree vs HOURS vs HOURS+mesh.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "hours/hours.hpp"
#include "metrics/table_writer.hpp"

namespace {

using namespace hours;

constexpr int kRegions = 12;
constexpr int kSites = 8;

HoursConfig config(std::uint64_t seed) {
  HoursConfig cfg;
  cfg.overlay.k = 3;
  cfg.overlay.q = 2;
  cfg.overlay.seed = seed;
  return cfg;
}

std::string region_name(int r) { return "region" + std::to_string(r); }
std::string site_name(int r, int s) {
  return "site" + std::to_string(s) + "." + region_name(r);
}

/// Builds the federation; site s of each region peers with the next region
/// when `mesh` and s < peers.
void build(HoursSystem& sys, bool mesh, int peers) {
  for (int r = 0; r < kRegions; ++r) sys.admit(region_name(r));
  for (int r = 0; r < kRegions; ++r) {
    for (int s = 0; s < kSites; ++s) sys.admit(site_name(r, s));
  }
  if (mesh) {
    for (int r = 0; r < kRegions; ++r) {
      for (int s = 0; s < peers; ++s) {
        const auto node = naming::Name::parse(site_name(r, s)).value();
        const auto second = naming::Name::parse(region_name((r + 1) % kRegions)).value();
        sys.hierarchy().admit_secondary(node, second);
      }
    }
  }
}

struct Rates {
  double peered = 0;    ///< answer rate over peered sites (secondary parent exists)
  double unpeered = 0;  ///< answer rate over non-peered sites
};

/// Worst-case regional outage: the victim region dies together with every
/// other region *except* the `survivors` regions immediately clockwise of
/// it in the level-1 overlay. Clockwise survivors hold (almost) no routing
/// entries toward the victim — their clockwise distance to it is ~N — so
/// the intra-overlay detour into the victim's subtree usually has no exit.
/// Peered sites do not need one: their secondary region (victim+1) is the
/// first survivor.
Rates measure_once(bool mesh, int peers, int survivors, std::uint64_t seed) {
  HoursSystem sys{config(seed)};
  build(sys, mesh, peers);

  const int victim = 3;
  sys.set_alive(region_name(victim), false);
  std::vector<bool> keep(kRegions, false);
  for (int i = 1; i <= survivors; ++i) keep[(victim + i) % kRegions] = true;
  for (int r = 0; r < kRegions; ++r) {
    if (r != victim && !keep[r]) sys.set_alive(region_name(r), false);
  }

  Rates rates;
  int peered_asked = 0;
  int unpeered_asked = 0;
  for (int s = 0; s < kSites; ++s) {
    const bool is_peered = mesh && s < peers;
    const bool ok = sys.query(site_name(victim, s)).delivered;
    if (is_peered) {
      ++peered_asked;
      rates.peered += ok ? 1 : 0;
    } else {
      ++unpeered_asked;
      rates.unpeered += ok ? 1 : 0;
    }
  }
  if (peered_asked > 0) rates.peered /= peered_asked;
  if (unpeered_asked > 0) rates.unpeered /= unpeered_asked;
  return rates;
}

/// Fresh overlay randomness per trial: one seed would freeze the level-1
/// tables and make every row an all-or-nothing coin flip.
Rates measure(bool mesh, int peers, int survivors, int trials) {
  Rates total;
  for (int t = 0; t < trials; ++t) {
    const auto r = measure_once(mesh, peers, survivors, 0x3E5A + static_cast<std::uint64_t>(t));
    total.peered += r.peered;
    total.unpeered += r.unpeered;
  }
  total.peered /= trials;
  total.unpeered /= trials;
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  using metrics::TableWriter;
  const bool quick = hours::bench::quick_mode(argc, argv);
  const int trials = static_cast<int>(hours::bench::scaled(100, 20, quick));

  TableWriter table{{"surviving_regions", "plain_tree", "hours_no_mesh",
                     "hours_mesh:peered_sites", "hours_mesh:unpeered_sites"}};
  for (const int survivors : {1, 2, 4, 8}) {
    const auto none = measure(false, 0, survivors, trials);
    const auto mesh4 = measure(true, 4, survivors, trials);
    table.add_row({TableWriter::fmt(std::uint64_t(survivors)), TableWriter::fmt(0.0, 3),
                   TableWriter::fmt(none.unpeered, 3), TableWriter::fmt(mesh4.peered, 3),
                   TableWriter::fmt(mesh4.unpeered, 3)});
  }

  table.print("Section 7 — mesh topology: answer rate for sites of a dead region");
  table.write_csv(hours::bench::csv_path("mesh_topology"));
  std::printf("\nPeered sites stay reachable through their secondary region even when the\n"
              "primary region server and most sibling sites are gone; the plain tree\n"
              "loses the whole subtree to the single region failure.\n");
  return 0;
}
