// Figure 5: routing-table size distribution in a randomized overlay of
// N = 50,000 nodes — base design vs enhanced design (k = 5).
//
// The unit is one table entry (one sibling pointer; in the enhanced design
// an entry additionally carries q nephew pointers, exactly as the paper
// counts). Paper reference: base mean ~13.5 entries (our analytic
// expectation is H_{N-1} ~ 11.3 — see EXPERIMENTS.md), enhanced ~5x that
// with a similar distribution shape.
#include <cstdio>

#include "analysis/resilience.hpp"
#include "bench_util.hpp"
#include "metrics/histogram.hpp"
#include "metrics/table_writer.hpp"
#include "overlay/table_builder.hpp"

namespace {

hours::metrics::Histogram table_size_distribution(std::uint32_t n,
                                                  const hours::overlay::OverlayParams& params) {
  hours::metrics::Histogram hist;
  for (hours::ids::RingIndex i = 0; i < n; ++i) {
    hist.add(hours::overlay::build_routing_table(n, i, params).size());
  }
  return hist;
}

}  // namespace

int main(int argc, char** argv) {
  using hours::metrics::TableWriter;
  const bool quick = hours::bench::quick_mode(argc, argv);
  const auto n = static_cast<std::uint32_t>(hours::bench::scaled(50'000, 5'000, quick));

  hours::overlay::OverlayParams base;
  base.design = hours::overlay::Design::kBase;
  hours::overlay::OverlayParams enhanced;
  enhanced.design = hours::overlay::Design::kEnhanced;
  enhanced.k = 5;

  const auto base_hist = table_size_distribution(n, base);
  const auto enh_hist = table_size_distribution(n, enhanced);

  TableWriter summary{{"design", "mean", "p10", "p50", "p90", "p99", "max", "analytic_mean"}};
  summary.add_row({"base", TableWriter::fmt(base_hist.mean(), 2),
                   TableWriter::fmt(base_hist.quantile(0.10)),
                   TableWriter::fmt(base_hist.quantile(0.50)),
                   TableWriter::fmt(base_hist.quantile(0.90)),
                   TableWriter::fmt(base_hist.quantile(0.99)),
                   TableWriter::fmt(base_hist.max_value()),
                   TableWriter::fmt(hours::analysis::expected_table_size(n, 1), 2)});
  summary.add_row({"enhanced(k=5)", TableWriter::fmt(enh_hist.mean(), 2),
                   TableWriter::fmt(enh_hist.quantile(0.10)),
                   TableWriter::fmt(enh_hist.quantile(0.50)),
                   TableWriter::fmt(enh_hist.quantile(0.90)),
                   TableWriter::fmt(enh_hist.quantile(0.99)),
                   TableWriter::fmt(enh_hist.max_value()),
                   TableWriter::fmt(hours::analysis::expected_table_size(n, 5), 2)});
  summary.print("Figure 5 — routing table size (N=" + std::to_string(n) + ")");

  // Full distribution (the figure's curve), mirrored to CSV.
  TableWriter dist{{"entries", "base_nodes", "enhanced_nodes"}};
  const std::uint64_t max_bin = std::max(base_hist.max_value(), enh_hist.max_value());
  for (std::uint64_t v = 0; v <= max_bin; ++v) {
    if (base_hist.count_at(v) == 0 && enh_hist.count_at(v) == 0) continue;
    dist.add_row({TableWriter::fmt(v), TableWriter::fmt(base_hist.count_at(v)),
                  TableWriter::fmt(enh_hist.count_at(v))});
  }
  dist.write_csv(hours::bench::csv_path("fig5_table_size"));
  std::printf("\nDistribution CSV: fig5_table_size.csv (paper: base mean ~13.5, enhanced ~5x)\n");
  return 0;
}
