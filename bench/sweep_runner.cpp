// Parallel experiment-fleet orchestrator: fans the fault-schedule fuzz
// corpus (sim/fuzz_cases.hpp) across the work-stealing executor and merges
// every per-seed verdict into one deterministic report
// (sweep_runner.json). This is the binary the nightly CI sweep runs — the
// 200-seed ASan + snapshot-equivalence pass that used to crawl through the
// serial gtest harness.
//
// The merged `sweep` section is byte-identical at any --threads value (the
// determinism contract of jobs/sweep.hpp, proven by
// tests/sweep_determinism_test); wall-clock, thread count, and speedup live
// only in the envelope around it. With --baseline-serial the runner first
// executes the same seeds serially, records both wall clocks and the
// speedup, and hard-fails if the serial and parallel reports differ by one
// byte — a production-sized rerun of the determinism oracle.
//
// Flags:
//   --seeds=N            sweep seeds 1..N        (default 200; --quick: 10)
//   --threads=T          executor width           (default 0 = hardware)
//   --snapshot-stride=K  snapshot oracle every Kth seed (default 4; 0 off,
//                        1 = every seed — the nightly setting)
//   --baseline-serial    also run serially; record wall clocks + speedup
//   --quick              CI smoke size (bench-smoke ctest label)
// Exit status: 0 clean, 1 if any seed reported violations (or the serial
// and parallel reports diverged).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "jobs/executor.hpp"
#include "jobs/sweep.hpp"
#include "metrics/json_writer.hpp"
#include "sim/fuzz_cases.hpp"
#include "util/contracts.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

std::vector<hours::sim::fuzz::SeedResult> run_parallel(
    unsigned threads, const std::vector<std::uint64_t>& seeds,
    const hours::sim::fuzz::SeedOptions& options) {
  hours::jobs::Executor executor{threads};
  return hours::jobs::sweep<hours::sim::fuzz::SeedResult>(
      executor, /*sweep_seed=*/0, seeds.size(),
      [&seeds, &options](std::size_t index, hours::rng::Xoshiro256&) {
        return hours::sim::fuzz::run_seed(seeds[index], options);
      });
}

}  // namespace

int main(int argc, char** argv) {
  using hours::metrics::JsonWriter;
  namespace fuzz = hours::sim::fuzz;

  const bool quick = hours::bench::quick_mode(argc, argv);
  std::uint64_t seed_count = quick ? 10 : 200;
  unsigned threads = 0;  // 0 = hardware concurrency (Executor's convention)
  std::uint64_t snapshot_stride = 4;
  bool baseline_serial = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seeds=", 8) == 0) {
      seed_count = std::strtoull(argv[i] + 8, nullptr, 10);
    }
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<unsigned>(std::strtoul(argv[i] + 10, nullptr, 10));
    }
    if (std::strncmp(argv[i], "--snapshot-stride=", 18) == 0) {
      snapshot_stride = std::strtoull(argv[i] + 18, nullptr, 10);
    }
    if (std::strcmp(argv[i], "--baseline-serial") == 0) baseline_serial = true;
  }
  HOURS_ASSERT(seed_count > 0);

  fuzz::SeedOptions options;
  options.snapshot_stride = snapshot_stride;

  std::vector<std::uint64_t> seeds;
  seeds.reserve(seed_count);
  for (std::uint64_t i = 0; i < seed_count; ++i) seeds.push_back(i + 1);

  std::string serial_report;
  double serial_wall = 0.0;
  if (baseline_serial) {
    std::printf("[sweep_runner] serial baseline over %llu seeds...\n",
                (unsigned long long)seed_count);
    const auto t_serial = std::chrono::steady_clock::now();
    std::vector<fuzz::SeedResult> serial_results;
    serial_results.reserve(seeds.size());
    for (const auto seed : seeds) serial_results.push_back(fuzz::run_seed(seed, options));
    serial_wall = seconds_since(t_serial);
    serial_report = fuzz::sweep_report_json(serial_results);
    std::printf("[sweep_runner] serial baseline done in %.2fs\n", serial_wall);
  }

  const auto t_parallel = std::chrono::steady_clock::now();
  const auto results = run_parallel(threads, seeds, options);
  const double parallel_wall = seconds_since(t_parallel);
  const std::string report = fuzz::sweep_report_json(results);

  std::uint64_t failing = 0;
  for (const auto& result : results) {
    if (result.violations.empty()) continue;
    ++failing;
    std::fprintf(stderr, "[sweep_runner] FAIL seed %llu:\n",
                 (unsigned long long)result.seed);
    for (const auto& violation : result.violations) {
      std::fprintf(stderr, "  %s\n", violation.c_str());
    }
    std::fprintf(stderr, "  reproduce: HOURS_FUZZ_SEED=%llu ./tests/fault_schedule_fuzz_test\n",
                 (unsigned long long)result.seed);
  }
  const bool diverged = baseline_serial && report != serial_report;
  if (diverged) {
    std::fprintf(stderr,
                 "[sweep_runner] FAIL parallel report diverged from the serial baseline — "
                 "the determinism contract is broken\n");
  }

  // The resolved width (threads=0 expands to hardware concurrency inside
  // the Executor; reconstruct it the same way for the report).
  unsigned resolved_threads = threads;
  if (resolved_threads == 0) {
    resolved_threads = std::thread::hardware_concurrency();
    if (resolved_threads == 0) resolved_threads = 1;
  }

  JsonWriter json;
  json.begin_object();
  json.field("bench", "sweep_runner");
  json.field("quick", quick);
  json.field("threads", static_cast<std::uint64_t>(resolved_threads));
  json.field("snapshot_stride", snapshot_stride);
  json.field("wall_seconds", parallel_wall, 2);
  if (baseline_serial) {
    json.field("serial_wall_seconds", serial_wall, 2);
    const double speedup = parallel_wall > 0.0 ? serial_wall / parallel_wall : 0.0;
    json.field("speedup", speedup, 2);
    json.field("serial_report_identical", !diverged);
  }
  json.field("peak_rss_mb",
             static_cast<double>(hours::bench::peak_rss_bytes()) / (1024.0 * 1024.0), 1);
  json.key("sweep");
  json.raw(report);  // deterministic section: bytes depend only on verdicts
  json.end_object();
  hours::bench::emit_json_report("sweep_runner", json.str());

  std::printf("[sweep_runner] seeds=%llu threads=%u wall=%.2fs", (unsigned long long)seed_count,
              resolved_threads, parallel_wall);
  if (baseline_serial) {
    std::printf(" serial=%.2fs speedup=%.2fx", serial_wall,
                parallel_wall > 0.0 ? serial_wall / parallel_wall : 0.0);
  }
  std::printf(" failing=%llu %s\n", (unsigned long long)failing,
              failing == 0 && !diverged ? "clean" : "VIOLATIONS");

  return failing == 0 && !diverged ? 0 : 1;
}
