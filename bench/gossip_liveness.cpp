// Gossip-assisted failure detection, measured end to end (DESIGN.md §11).
//
// For each of three fault schedules — staggered crashes under a lossy-link
// episode, a re-striking correlated neighborhood outage, and flap-heavy
// churn — the bench runs the same seeded ring scenario twice: once with
// probe-only liveness and once with suspicion digests piggybacked on the
// existing transport frames. Each run streams its full event trace to a
// JSONL file, and the bench mines the trace for suspicion latency: for
// every (death episode, observer) pair, the delay from the injector's
// fault_kill to that observer's first suspect / liveness_gossip_suspect
// event, censored at the victim's revival.
//
// Reported per run: the pooled latency CDF (p50/p90/p99 over observed
// pairs), the fraction of pairs that never learned, the median per-episode
// time until half the surviving ring suspected the victim (t_half, the
// headline detection-latency number; censored episodes count at their full
// duration), false suspicions of live nodes, and the digest overhead
// (digests sent, entries carried, adoptions). Exit is nonzero unless the
// gossip run strictly improves detection on every schedule — lower median
// t_half, or on a censoring tie a strictly lower never-learned fraction —
// every scenario run is byte-reproducible, and no digest ever exceeded the
// configured budget.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.hpp"
#include "liveness/liveness.hpp"
#include "metrics/json_writer.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "snapshot/json.hpp"

namespace {

using namespace hours;

constexpr std::uint32_t kRingSize = 24;
constexpr std::uint64_t kHorizon = 120000;

// The whole experiment as a scenario document; only the schedule's fault
// plan and the liveness evidence source vary between runs.
constexpr std::string_view kTemplate = R"({
  "magic": "hours-scenario",
  "version": 1,
  "name": "%NAME%",
  "description": "gossip_liveness schedule, generated in-process by bench/gossip_liveness.",
  "seed": 50505,
  "system": {
    "kind": "ring",
    "size": 24,
    "probe_period": 1000,
    "probe_failure_threshold": 2,
    "client_deadline": 8000
  },
  "workload": {
    "horizon": 120000,
    "window": 2000,
    "start": 200,
    "alive_sources": 1,
    "phases": [{"until": 120000, "interval": 450}]
  },
  "faults": {"plan": [%PLAN%]},
  "liveness": {"source": "%SOURCE%"},
  "metrics": {"emit": ["client", "faults"]}
})";

struct Schedule {
  const char* name;
  const char* plan;  ///< comma-joined, pre-quoted fault plan lines
};

constexpr Schedule kSchedules[] = {
    {"loss_episode",
     R"x("crash(5, 30000, 50000)", "crash(11, 60000, 80000)", "crash(17, 85000, 105000)",
      "loss_episode(0.2, 25000, 105000)")x"},
    {"zone_outage", R"x("correlated_outage({5, 4, 3}, 30000, 20000, 2, 15000)")x"},
    {"flap_churn",
     R"x("flap(18, 30000, 3000, 5000, 4)", "flap(7, 45000, 3000, 5000, 4)",
      "crash(2, 70000, 90000)")x"},
};

std::string instantiate(std::string_view tmpl, std::string_view name, std::string_view plan,
                        std::string_view source) {
  std::string out{tmpl};
  const auto replace = [&out](std::string_view key, std::string_view with) {
    const auto pos = out.find(key);
    out.replace(pos, key.size(), with);
  };
  replace("%NAME%", name);
  replace("%PLAN%", plan);
  replace("%SOURCE%", source);
  return out;
}

// -- JSONL trace mining -------------------------------------------------------------

/// The few fields of a trace line this bench cares about, pulled out by
/// substring against the fixed key order of trace::to_json_line.
struct TraceLine {
  std::uint64_t at = 0;
  std::string type;
  std::uint32_t node = 0;
  std::uint32_t peer = 0;
  std::uint64_t value = 0;
  bool has_node = false;
  bool has_peer = false;
};

bool parse_line(const std::string& line, TraceLine& out) {
  const auto number_after = [&line](std::string_view key, std::uint64_t& value, bool& present) {
    const auto pos = line.find(key);
    if (pos == std::string::npos) return false;
    const char* start = line.c_str() + pos + key.size();
    if (*start == 'n') {  // null
      present = false;
      return true;
    }
    present = true;
    value = std::strtoull(start, nullptr, 10);
    return true;
  };
  bool present = false;
  std::uint64_t scratch = 0;
  if (!number_after("\"at\":", out.at, present)) return false;
  const auto type_pos = line.find("\"type\":\"");
  if (type_pos == std::string::npos) return false;
  const auto type_start = type_pos + 8;
  const auto type_end = line.find('"', type_start);
  out.type = line.substr(type_start, type_end - type_start);
  if (!number_after("\"node\":", scratch, out.has_node)) return false;
  out.node = static_cast<std::uint32_t>(scratch);
  if (!number_after("\"peer\":", scratch, out.has_peer)) return false;
  out.peer = static_cast<std::uint32_t>(scratch);
  if (!number_after("\"value\":", out.value, present)) return false;
  return true;
}

/// One victim-down interval and who learned of it, when.
struct Episode {
  std::uint32_t victim = 0;
  std::uint64_t kill_at = 0;
  std::uint64_t end_at = 0;          ///< revival or horizon (censor point)
  std::uint32_t alive_observers = 0; ///< ring peers alive at the kill
  std::map<std::uint32_t, std::uint64_t> first_seen;  ///< observer -> latency
};

struct RunStats {
  std::vector<Episode> episodes;
  std::uint64_t false_suspicions = 0;  ///< suspicion of a node that was up
  std::uint64_t digests_sent = 0;
  std::uint64_t digest_entries = 0;
  std::uint64_t max_digest_entries = 0;
  std::uint64_t gossip_adoptions = 0;
};

RunStats mine_trace(const std::string& path) {
  RunStats stats;
  std::map<std::uint32_t, Episode> open;  ///< victim -> in-progress episode
  std::uint32_t dead = 0;
  std::ifstream in{path};
  std::string line;
  TraceLine ev;
  while (std::getline(in, line)) {
    if (!parse_line(line, ev)) continue;
    if (ev.type == "fault_kill" && ev.has_node) {
      ++dead;
      Episode episode;
      episode.victim = ev.node;
      episode.kill_at = ev.at;
      episode.alive_observers = kRingSize - dead;
      open[ev.node] = episode;
    } else if (ev.type == "fault_revive" && ev.has_node) {
      --dead;
      if (const auto it = open.find(ev.node); it != open.end()) {
        it->second.end_at = ev.at;
        stats.episodes.push_back(std::move(it->second));
        open.erase(it);
      }
    } else if ((ev.type == "suspect" || ev.type == "liveness_gossip_suspect") && ev.has_node &&
               ev.has_peer) {
      if (const auto it = open.find(ev.peer); it != open.end()) {
        it->second.first_seen.emplace(ev.node, ev.at - it->second.kill_at);
      } else {
        ++stats.false_suspicions;
      }
    } else if (ev.type == "liveness_digest_sent") {
      ++stats.digests_sent;
      stats.digest_entries += ev.value;
      stats.max_digest_entries = std::max(stats.max_digest_entries, ev.value);
    } else if (ev.type == "liveness_digest_applied") {
      stats.gossip_adoptions += ev.value;
    }
  }
  for (auto& [victim, episode] : open) {
    episode.end_at = kHorizon;
    stats.episodes.push_back(std::move(episode));
  }
  return stats;
}

std::uint64_t percentile(std::vector<std::uint64_t> sorted, double p) {
  if (sorted.empty()) return 0;
  const auto index =
      static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

struct Summary {
  std::uint64_t episodes = 0;
  std::uint64_t pairs_possible = 0;
  std::uint64_t pairs_observed = 0;
  double never_fraction = 1.0;
  std::uint64_t p50 = 0, p90 = 0, p99 = 0;  ///< pooled observed-pair latencies
  std::uint64_t median_t_half = 0;          ///< headline detection latency
  std::uint64_t censored_episodes = 0;      ///< t_half hit the episode end
};

Summary summarize(const RunStats& stats) {
  Summary s;
  s.episodes = stats.episodes.size();
  std::vector<std::uint64_t> pooled;
  std::vector<std::uint64_t> t_half;
  for (const auto& episode : stats.episodes) {
    s.pairs_possible += episode.alive_observers;
    s.pairs_observed += episode.first_seen.size();
    std::vector<std::uint64_t> latencies;
    latencies.reserve(episode.first_seen.size());
    for (const auto& [observer, latency] : episode.first_seen) {
      latencies.push_back(latency);
      pooled.push_back(latency);
    }
    std::sort(latencies.begin(), latencies.end());
    const std::size_t need = (episode.alive_observers + 1) / 2;
    if (latencies.size() >= need && need > 0) {
      t_half.push_back(latencies[need - 1]);
    } else {
      t_half.push_back(episode.end_at - episode.kill_at);  // censored
      ++s.censored_episodes;
    }
  }
  if (s.pairs_possible > 0) {
    s.never_fraction = 1.0 - static_cast<double>(s.pairs_observed) /
                                 static_cast<double>(s.pairs_possible);
  }
  std::sort(pooled.begin(), pooled.end());
  s.p50 = percentile(pooled, 0.50);
  s.p90 = percentile(pooled, 0.90);
  s.p99 = percentile(pooled, 0.99);
  std::sort(t_half.begin(), t_half.end());
  s.median_t_half = percentile(t_half, 0.50);
  return s;
}

void write_summary(metrics::JsonWriter& json, const Summary& s, const RunStats& stats) {
  json.begin_object();
  json.field("episodes", s.episodes);
  json.field("pairs_possible", s.pairs_possible);
  json.field("pairs_observed", s.pairs_observed);
  json.field("never_fraction", s.never_fraction, 4);
  json.field("latency_p50", s.p50);
  json.field("latency_p90", s.p90);
  json.field("latency_p99", s.p99);
  json.field("median_t_half", s.median_t_half);
  json.field("censored_episodes", s.censored_episodes);
  json.field("false_suspicions", stats.false_suspicions);
  json.field("digests_sent", stats.digests_sent);
  json.field("digest_entries", stats.digest_entries);
  json.field("max_digest_entries", stats.max_digest_entries);
  json.field("gossip_adoptions", stats.gossip_adoptions);
  json.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);

  scenario::RunOptions options;
  if (quick) options.interval_scale = 2;

  bool all_reproducible = true;
  bool budget_respected = true;
  bool required_improved = true;

  metrics::JsonWriter report;
  report.begin_object();
  report.field("bench", "gossip_liveness");
  report.field("quick", quick);
  report.field("ring_size", static_cast<std::uint64_t>(kRingSize));
  report.field("digest_budget", liveness::kDefaultDigestBudget);
  report.key("schedules").begin_array();

  std::ofstream csv{bench::csv_path("gossip_liveness")};
  csv << "schedule,source,episodes,never_fraction,latency_p50,latency_p90,latency_p99,"
         "median_t_half,digests_sent,gossip_adoptions\n";

  std::printf("schedule      source      p50     p90     p99     t_half  never   adoptions\n");

  for (const auto& schedule : kSchedules) {
    Summary per_source[2];
    RunStats per_stats[2];
    const char* sources[2] = {"probe_only", "gossip"};
    report.begin_object();
    report.field("schedule", schedule.name);
    for (int si = 0; si < 2; ++si) {
      const std::string doc_name =
          std::string{"gossip_liveness_"} + schedule.name + "_" + sources[si];
      const std::string text = instantiate(kTemplate, doc_name, schedule.plan, sources[si]);
      snapshot::Json doc;
      std::string error;
      if (!snapshot::parse_json(text, doc, &error)) {
        std::fprintf(stderr, "gossip_liveness: %s: bad template: %s\n", doc_name.c_str(),
                     error.c_str());
        return 1;
      }
      scenario::Scenario sc;
      if (error = scenario::parse(doc, sc); !error.empty()) {
        std::fprintf(stderr, "gossip_liveness: %s: %s\n", doc_name.c_str(), error.c_str());
        return 1;
      }
      scenario::RunOptions traced = options;
      traced.trace_path = doc_name + ".trace.jsonl";
      const auto first = scenario::run(sc, traced);
      const auto second = scenario::run(sc, options);
      if (first.json != second.json) {
        std::fprintf(stderr, "gossip_liveness: %s: NOT reproducible\n", doc_name.c_str());
        all_reproducible = false;
      }
      per_stats[si] = mine_trace(traced.trace_path);
      per_source[si] = summarize(per_stats[si]);
      if (per_stats[si].max_digest_entries > liveness::kDefaultDigestBudget) {
        budget_respected = false;
      }
      report.key(sources[si]);
      write_summary(report, per_source[si], per_stats[si]);
      std::printf("%-13s %-10s %-7llu %-7llu %-7llu %-7llu %.4f  %llu\n", schedule.name,
                  sources[si], static_cast<unsigned long long>(per_source[si].p50),
                  static_cast<unsigned long long>(per_source[si].p90),
                  static_cast<unsigned long long>(per_source[si].p99),
                  static_cast<unsigned long long>(per_source[si].median_t_half),
                  per_source[si].never_fraction,
                  static_cast<unsigned long long>(per_stats[si].gossip_adoptions));
      csv << schedule.name << "," << sources[si] << "," << per_source[si].episodes << ","
          << metrics::JsonWriter::fixed(per_source[si].never_fraction, 4) << ","
          << per_source[si].p50 << "," << per_source[si].p90 << "," << per_source[si].p99 << ","
          << per_source[si].median_t_half << "," << per_stats[si].digests_sent << ","
          << per_stats[si].gossip_adoptions << "\n";
    }
    // The acceptance gate, per schedule: gossip must strictly beat
    // probe-only's median detection latency. When both medians are censored
    // to the same episode length (short flap episodes; the lossy schedule
    // under quick mode's halved carrier traffic), the tie breaks on who
    // actually informed more of the ring.
    const bool improved =
        per_source[1].median_t_half < per_source[0].median_t_half ||
        (per_source[1].median_t_half == per_source[0].median_t_half &&
         per_source[1].never_fraction < per_source[0].never_fraction);
    report.field("median_t_half_improved", improved);
    report.end_object();
    if (!improved) {
      std::fprintf(stderr, "gossip_liveness: %s: gossip did not improve detection\n",
                   schedule.name);
      required_improved = false;
    }
  }

  report.end_array();
  report.field("reproducible", all_reproducible);
  report.field("digest_budget_respected", budget_respected);
  report.end_object();
  bench::emit_json_report("gossip_liveness", report.str());

  std::printf("reproducible: %s  budget_respected: %s  gossip_improves_required: %s\n",
              all_reproducible ? "yes" : "no", budget_respected ? "yes" : "no",
              required_improved ? "yes" : "no");
  return all_reproducible && budget_respected && required_improved ? 0 : 1;
}
