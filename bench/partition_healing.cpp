// Partition-healing timeline: the ring is split into two halves that are
// both alive yet mutually unreachable, a deadline-bounded query client keeps
// issuing queries throughout, and Section 4.3 active recovery re-merges the
// halves after the cut lifts.
//
// Output: a windowed JSON timeline (stdout and partition_healing.json) of
// delivery ratio plus repair traffic — Repair and NeighborClaim messages and
// link-filter drops per window, and whether the cw pointers form a single
// cycle at the window boundary. The run ends with a fingerprint comparison
// against a never-partitioned control ring: the healed pointer tables must
// be byte-identical to the no-fault fixpoint. The scenario runs twice and
// the JSON blobs are compared byte-for-byte for bit-reproducibility.
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "metrics/json_writer.hpp"
#include "metrics/table_writer.hpp"
#include "metrics/timeline.hpp"
#include "rng/xoshiro256.hpp"
#include "sim/fault_injector.hpp"
#include "sim/query_client.hpp"
#include "sim/ring_protocol.hpp"

namespace {

using namespace hours;
using namespace hours::sim;

struct Scenario {
  std::uint32_t size = 24;
  Ticks partition_at = 20'000;
  Ticks heal_at = 60'000;
  Ticks horizon = 110'000;
  Ticks post_start = 70'000;  ///< 10k settle after the heal
  Ticks window = 2'000;
  Ticks query_interval = 450;
};

RingSimConfig ring_config(const Scenario& sc) {
  RingSimConfig cfg;
  cfg.size = sc.size;
  cfg.params.design = overlay::Design::kEnhanced;
  cfg.params.k = 3;
  cfg.params.q = 2;
  cfg.probe_period = 1'000;
  cfg.probe_failure_threshold = 2;
  return cfg;
}

/// Counter snapshot taken at each window boundary.
struct TrafficSample {
  Ticks at = 0;
  std::uint64_t repairs = 0;
  std::uint64_t claims = 0;
  std::uint64_t link_dropped = 0;
  bool connected = true;
};

struct RunResult {
  std::string json;
  double pre = 0.0;
  double during = 0.0;
  double post = 0.0;
  std::uint64_t queries = 0;
  std::uint64_t link_dropped = 0;
  bool split_observed = false;   ///< ring was two cycles at some boundary
  bool remerged = false;         ///< single cycle again at the horizon
  bool fixpoint_matches = false; ///< healed tables == never-partitioned run
  QueryClientStats client;
};

RunResult run_scenario(const Scenario& sc) {
  // Control: identical ring, no faults, no workload — its pointer tables at
  // the horizon are the no-fault fixpoint the healed ring must match.
  const RingSimConfig cfg = ring_config(sc);
  RingSimulation control{cfg};
  control.start();
  control.simulator().run(sc.horizon);
  HOURS_ASSERT(!control.simulator().truncated());

  RingSimulation ring{cfg};
  ring.start();

  std::vector<std::uint32_t> low;
  std::vector<std::uint32_t> high;
  for (std::uint32_t i = 0; i < sc.size; ++i) (i < sc.size / 2 ? low : high).push_back(i);
  FaultInjector injector{make_fault_target(ring),
                         FaultPlan{}.partition({low, high}, sc.partition_at, sc.heal_at)};
  injector.arm();

  QueryClientConfig ccfg;
  ccfg.deadline = 8'000;
  QueryClient client{make_query_network(ring), ccfg};

  auto& sim = ring.simulator();

  // Sample repair traffic and ring connectivity at every window boundary.
  auto samples = std::make_shared<std::vector<TrafficSample>>();
  std::function<void()> sample = [&, samples]() {
    TrafficSample s;
    s.at = sim.now();
    s.repairs = ring.repairs_sent();
    s.claims = ring.claims_sent();
    s.link_dropped = ring.messages_link_dropped();
    s.connected = ring.ring_connected();
    samples->push_back(s);
    if (sim.now() + sc.window <= sc.horizon) sim.schedule(sc.window, sample);
  };
  sim.schedule(0, sample);

  // Seeded periodic workload; destinations uniform, so during the cut about
  // half the queries must cross the severed boundary and fail.
  auto workload_rng = std::make_shared<rng::Xoshiro256>(0x5EA1ULL);
  auto qids = std::make_shared<std::vector<std::uint64_t>>();
  const Ticks issue_until = sc.horizon - ccfg.deadline - 2'000;
  std::function<void()> issue = [&, workload_rng, qids]() {
    const auto src = static_cast<ids::RingIndex>(workload_rng->below(cfg.size));
    const auto dest = static_cast<ids::RingIndex>(workload_rng->below(cfg.size));
    qids->push_back(client.submit(src, dest));
    if (sim.now() + sc.query_interval <= issue_until) {
      sim.schedule(sc.query_interval, issue);
    }
  };
  sim.schedule(200, issue);
  sim.run(sc.horizon);
  HOURS_ASSERT(!sim.truncated());  // a silent event cap would skew availability

  RunResult result;
  metrics::Timeline timeline{sc.window};
  for (const auto qid : *qids) {
    const auto& out = client.outcome(qid);
    if (out.status == QueryStatus::kPending) continue;
    timeline.record(out.issued_at, out.status == QueryStatus::kDelivered, out.latency());
  }

  // Merge the delivery windows with the traffic samples into one JSON report.
  // Sample i covers [sample[i].at, sample[i+1].at) — deltas, not totals.
  // Samples and timeline buckets share width and alignment, so the window
  // starting at a.at is the one whose queries were issued in that span.
  std::map<std::uint64_t, metrics::Timeline::Window> delivery;
  for (const auto& w : timeline.windows()) delivery[w.start] = w;
  metrics::JsonWriter json;
  json.begin_object();
  json.field("size", sc.size);
  json.field("partition_at", sc.partition_at);
  json.field("heal_at", sc.heal_at);
  json.field("window_width", sc.window);
  json.key("windows").begin_array();
  for (std::size_t i = 0; i + 1 < samples->size(); ++i) {
    const TrafficSample& a = (*samples)[i];
    const TrafficSample& b = (*samples)[i + 1];
    const metrics::Timeline::Window w = delivery.count(a.at) != 0 ? delivery[a.at]
                                                                  : metrics::Timeline::Window{};
    json.begin_object();
    json.field("start", a.at);
    json.field("attempts", w.attempts);
    json.field("delivered", w.delivered);
    json.field("delivery_ratio", w.delivery_ratio(), 4);
    json.field("repairs", b.repairs - a.repairs);
    json.field("claims", b.claims - a.claims);
    json.field("link_dropped", b.link_dropped - a.link_dropped);
    json.field("ring_connected", b.connected);
    json.end_object();
    if (!b.connected) result.split_observed = true;
  }
  json.end_array();
  // Full counter/histogram snapshot from the ring's registry — the windowed
  // repair/claim series above is carved out of the same counters.
  json.key("counters").raw(ring.registry().to_json());
  json.end_object();

  result.json = json.str();
  result.pre = timeline.delivery_ratio(0, sc.partition_at);
  result.during = timeline.delivery_ratio(sc.partition_at, sc.heal_at);
  result.post = timeline.delivery_ratio(sc.post_start, sc.horizon);
  result.queries = qids->size();
  result.link_dropped = ring.messages_link_dropped();
  result.remerged = ring.ring_connected();
  result.client = client.stats();

  // Byte-identical pointer tables: healed == never partitioned.
  std::ostringstream healed;
  std::ostringstream never;
  for (ids::RingIndex i = 0; i < cfg.size; ++i) {
    healed << i << "->" << ring.cw_successor(i) << "/" << ring.ccw_neighbor(i) << ";";
    never << i << "->" << control.cw_successor(i) << "/" << control.ccw_neighbor(i) << ";";
  }
  result.fixpoint_matches = healed.str() == never.str();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);
  Scenario sc;
  if (quick) sc.query_interval = 900;

  const RunResult first = run_scenario(sc);
  const RunResult second = run_scenario(sc);
  const bool reproducible = first.json == second.json;

  metrics::TableWriter table{{"phase", "window", "delivery_ratio"}};
  table.add_row({"pre-partition", "[0, 20000)", metrics::TableWriter::fmt(first.pre, 4)});
  table.add_row({"partitioned", "[20000, 60000)", metrics::TableWriter::fmt(first.during, 4)});
  table.add_row({"re-merged", "[70000, 110000)", metrics::TableWriter::fmt(first.post, 4)});
  table.print("partition healing (ring n=24, halves cut at 20k, healed at 60k)");
  table.write_csv(bench::csv_path("partition_healing"));

  std::printf("queries: %llu  delivered: %llu  deadline-exceeded: %llu  no-route: %llu\n",
              static_cast<unsigned long long>(first.queries),
              static_cast<unsigned long long>(first.client.delivered),
              static_cast<unsigned long long>(first.client.deadline_exceeded),
              static_cast<unsigned long long>(first.client.no_route));
  std::printf("link-dropped messages: %llu  retransmissions: %llu  failovers: %llu\n",
              static_cast<unsigned long long>(first.link_dropped),
              static_cast<unsigned long long>(first.client.retransmissions),
              static_cast<unsigned long long>(first.client.failovers));
  std::printf("split observed: %s  re-merged: %s  fixpoint matches control: %s\n",
              first.split_observed ? "yes" : "no", first.remerged ? "yes" : "no",
              first.fixpoint_matches ? "yes" : "no");
  std::printf("dip observed: %s  recovered to pre-partition: %s  reproducible: %s\n",
              first.during < first.pre ? "yes" : "no", first.post >= first.pre ? "yes" : "no",
              reproducible ? "yes" : "no");

  bench::emit_json_report("partition_healing", first.json);

  const bool ok = reproducible && first.split_observed && first.remerged &&
                  first.fixpoint_matches && first.during < first.pre && first.post >= first.pre &&
                  first.link_dropped > 0;
  return ok ? 0 : 1;
}
