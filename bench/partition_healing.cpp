// Partition-healing timeline, now a thin wrapper over the scenario DSL: the
// half-ring cut, heal, repair-traffic windows, the no-fault fixpoint control
// run, and the split/remerge/fixpoint expectations all live in
// scenarios/partition_healing.json and run through scenario::run(). This
// binary only keeps the CLI contract (--quick, exit status,
// partition_healing.json report) and the run-twice byte-reproducibility
// check.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

#ifndef HOURS_SCENARIO_DIR
#define HOURS_SCENARIO_DIR "scenarios"
#endif

int main(int argc, char** argv) {
  using namespace hours;

  const bool quick = bench::quick_mode(argc, argv);
  const std::string path = std::string{HOURS_SCENARIO_DIR} + "/partition_healing.json";

  scenario::Scenario sc;
  if (const auto error = scenario::load_file(path, sc); !error.empty()) {
    std::fprintf(stderr, "partition_healing: %s\n", error.c_str());
    return 1;
  }

  scenario::RunOptions options;
  if (quick) options.interval_scale = 2;  // 450 -> 900 ticks, the legacy quick size

  const auto first = scenario::run(sc, options);
  const auto second = scenario::run(sc, options);
  const bool reproducible = first.json == second.json;

  for (const auto& check : first.failed) {
    std::fprintf(stderr, "partition_healing: FAIL %s\n", check.c_str());
  }
  std::printf("scenario: %s (%s)\n", sc.name.c_str(), path.c_str());
  std::printf("expectations met: %s  reproducible: %s\n",
              first.expectations_met ? "yes" : "no", reproducible ? "yes" : "no");

  bench::emit_json_report("partition_healing", first.json);

  return first.expectations_met && reproducible ? 0 : 1;
}
