// Adaptive vs. static attacker on the message-level ring, equal firepower.
//
// Both scenarios spend exactly `strikes` x `neighborhood` x `duration` of
// node-downtime budget against the same seeded ring and query workload. The
// static attacker (FaultPlan::correlated_outage) re-strikes the original
// neighborhood on a timer, blind to the repair; the adaptive attacker
// (sim::AdaptiveAttacker, a TraceSink) watches recovery_adopt events and
// re-strikes wherever the repair actually landed. The report contrasts the
// delivery ratio under each attack; the adaptive form should hurt more (or
// at least never less) because it chases the healed neighborhood instead of
// hammering servers the ring already routed around.
//
// Output: adaptive_attacker.json (via metrics::JsonWriter, deterministic),
// a summary table, and optionally --trace <path> to dump the adaptive run's
// full event stream as JSONL. Each scenario runs twice and the JSON report
// is compared byte for byte to demonstrate bit-reproducibility.
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "metrics/json_writer.hpp"
#include "metrics/table_writer.hpp"
#include "metrics/timeline.hpp"
#include "rng/xoshiro256.hpp"
#include "sim/adaptive_attacker.hpp"
#include "sim/fault_injector.hpp"
#include "sim/query_client.hpp"
#include "sim/ring_protocol.hpp"
#include "trace/jsonl_sink.hpp"

namespace {

using namespace hours;
using namespace hours::sim;

struct Scenario {
  std::uint32_t size = 32;
  Ticks horizon = 140'000;
  Ticks query_interval = 450;
  Ticks window = 2'000;
  // First strike: a 6-node run (> k = 5), the ccw neighborhood of node 9 —
  // wide enough that conventional table-walk recovery cannot bridge it and
  // Section 4.3 active recovery (with its adoption events) must run.
  std::vector<std::uint32_t> first_strike{8, 7, 6, 5, 4, 3};
  Ticks attack_start = 25'000;
  Ticks strike_duration = 15'000;
  std::uint32_t total_strikes = 3;
  Ticks strike_gap = 10'000;  ///< static attacker's calm between strikes
  Ticks post_start = 105'000;
};

struct RunResult {
  double pre = 0.0;
  double during = 0.0;
  double post = 0.0;
  std::uint64_t submitted = 0;
  std::uint64_t delivered = 0;
  std::uint64_t kills = 0;
  std::uint64_t events_emitted = 0;
  std::uint64_t adoptions_seen = 0;
  std::uint32_t adaptive_strikes = 0;
  std::vector<std::vector<std::uint32_t>> strike_sets;
  std::string timeline_json;
};

RunResult run_scenario(const Scenario& sc, bool adaptive, const std::string& trace_path) {
  RingSimConfig cfg;
  cfg.size = sc.size;
  cfg.probe_period = 1'000;
  RingSimulation ring{cfg};

  trace::Tracer tracer;
  ring.set_tracer(&tracer);
  std::unique_ptr<trace::JsonLinesSink> jsonl;
  if (!trace_path.empty()) {
    jsonl = std::make_unique<trace::JsonLinesSink>(trace_path);
    tracer.add_sink(jsonl.get());
  }

  // Equal budget split: the static plan fires all strikes on its timer; the
  // adaptive plan fires the first strike identically, then hands the
  // remaining budget to the trace-driven attacker.
  AdaptiveAttackerConfig acfg;
  acfg.neighborhood = static_cast<std::uint32_t>(sc.first_strike.size());
  acfg.strike_duration = sc.strike_duration;
  acfg.max_strikes = sc.total_strikes - 1;
  acfg.cooldown = sc.strike_gap;  // same calm the static plan gets between strikes
  AdaptiveAttacker attacker{ring, acfg};
  if (adaptive) tracer.add_sink(&attacker);

  FaultInjector injector{
      make_fault_target(ring),
      FaultPlan{}.correlated_outage(sc.first_strike, sc.attack_start, sc.strike_duration,
                                    /*strikes=*/adaptive ? 1 : sc.total_strikes,
                                    sc.strike_gap)};
  injector.set_tracer(&tracer);
  injector.arm();
  ring.start();

  QueryClientConfig ccfg;
  ccfg.deadline = 8'000;
  QueryClient client{make_query_network(ring), ccfg};
  client.set_tracer(&tracer);

  auto& sim = ring.simulator();
  auto workload_rng = std::make_shared<rng::Xoshiro256>(0xADA7ULL);
  auto qids = std::make_shared<std::vector<std::uint64_t>>();
  const Ticks issue_until = sc.horizon - ccfg.deadline - 2'000;
  std::function<void()> issue = [&, workload_rng, qids]() {
    auto src = static_cast<ids::RingIndex>(workload_rng->below(cfg.size));
    for (std::uint32_t tries = 0; !ring.alive(src) && tries < cfg.size; ++tries) {
      src = static_cast<ids::RingIndex>(workload_rng->below(cfg.size));
    }
    const auto dest = static_cast<ids::RingIndex>(workload_rng->below(cfg.size));
    qids->push_back(client.submit(src, dest));
    if (sim.now() + sc.query_interval <= issue_until) {
      sim.schedule(sc.query_interval, issue);
    }
  };
  sim.schedule(200, issue);
  sim.run(sc.horizon);
  HOURS_ASSERT(!sim.truncated());  // a silent event cap would skew availability
  tracer.flush();

  RunResult result;
  metrics::Timeline timeline{sc.window};
  for (const auto qid : *qids) {
    const auto& out = client.outcome(qid);
    if (out.status == QueryStatus::kPending) continue;
    timeline.record(out.issued_at, out.status == QueryStatus::kDelivered, out.latency());
  }
  result.pre = timeline.delivery_ratio(0, sc.attack_start);
  result.during = timeline.delivery_ratio(sc.attack_start, sc.post_start);
  result.post = timeline.delivery_ratio(sc.post_start, sc.horizon);
  result.submitted = client.stats().submitted;
  result.delivered = client.stats().delivered;
  result.kills = injector.stats().kills + (adaptive ? attacker.strike_sets().size() : 0);
  result.events_emitted = tracer.events_emitted();
  result.adoptions_seen = attacker.adoptions_seen();
  result.adaptive_strikes = attacker.strikes_launched();
  result.strike_sets = attacker.strike_sets();
  result.timeline_json = timeline.to_json();
  return result;
}

void write_run(metrics::JsonWriter& w, const RunResult& r, bool adaptive) {
  w.begin_object();
  w.field("pre", r.pre, 4);
  w.field("during", r.during, 4);
  w.field("post", r.post, 4);
  w.field("submitted", r.submitted);
  w.field("delivered", r.delivered);
  w.field("events_emitted", r.events_emitted);
  if (adaptive) {
    w.field("adoptions_seen", r.adoptions_seen);
    w.field("strikes_launched", static_cast<std::uint64_t>(r.adaptive_strikes));
    w.key("strike_sets").begin_array();
    for (const auto& set : r.strike_sets) {
      w.begin_array();
      for (const auto n : set) w.value(static_cast<std::uint64_t>(n));
      w.end_array();
    }
    w.end_array();
  }
  w.key("timeline").raw(r.timeline_json);
  w.end_object();
}

std::string report(const Scenario& sc, const RunResult& stat, const RunResult& adap) {
  metrics::JsonWriter out;
  out.begin_object();
  out.field("bench", "adaptive_attacker");
  out.key("config").begin_object();
  out.field("size", static_cast<std::uint64_t>(sc.size));
  out.field("horizon", sc.horizon);
  out.field("strike_duration", sc.strike_duration);
  out.field("total_strikes", static_cast<std::uint64_t>(sc.total_strikes));
  out.field("neighborhood", static_cast<std::uint64_t>(sc.first_strike.size()));
  out.end_object();
  out.key("static");
  write_run(out, stat, /*adaptive=*/false);
  out.key("adaptive");
  write_run(out, adap, /*adaptive=*/true);
  out.key("contrast").begin_object();
  out.field("during_static", stat.during, 4);
  out.field("during_adaptive", adap.during, 4);
  out.field("during_delta", stat.during - adap.during, 4);
  out.field("adaptive_hurts_more", adap.during <= stat.during);
  out.end_object();
  out.end_object();
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);
  std::string trace_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view{argv[i]} == "--trace") trace_path = argv[i + 1];
  }

  Scenario sc;
  if (quick) sc.query_interval = 900;

  const RunResult stat1 = run_scenario(sc, /*adaptive=*/false, "");
  const RunResult adap1 = run_scenario(sc, /*adaptive=*/true, trace_path);
  const std::string first = report(sc, stat1, adap1);

  const RunResult stat2 = run_scenario(sc, /*adaptive=*/false, "");
  const RunResult adap2 = run_scenario(sc, /*adaptive=*/true, "");
  const std::string second = report(sc, stat2, adap2);
  const bool reproducible = first == second;

  metrics::TableWriter table{{"attacker", "pre", "during", "post", "strikes"}};
  table.add_row({"static", metrics::TableWriter::fmt(stat1.pre, 4),
                 metrics::TableWriter::fmt(stat1.during, 4),
                 metrics::TableWriter::fmt(stat1.post, 4), std::to_string(sc.total_strikes)});
  table.add_row({"adaptive", metrics::TableWriter::fmt(adap1.pre, 4),
                 metrics::TableWriter::fmt(adap1.during, 4),
                 metrics::TableWriter::fmt(adap1.post, 4),
                 std::to_string(1 + adap1.adaptive_strikes)});
  table.print("adaptive vs static attacker (ring n=32, equal strike budget)");
  table.write_csv(bench::csv_path("adaptive_attacker"));

  std::printf("adoptions seen: %llu  adaptive strikes: %u  events: %llu\n",
              static_cast<unsigned long long>(adap1.adoptions_seen), adap1.adaptive_strikes,
              static_cast<unsigned long long>(adap1.events_emitted));
  std::printf("during-attack delivery: static %.4f vs adaptive %.4f  reproducible: %s\n",
              stat1.during, adap1.during, reproducible ? "yes" : "no");

  bench::emit_json_report("adaptive_attacker", first);

  return reproducible && adap1.adaptive_strikes > 0 ? 0 : 1;
}
