// Adaptive trace-following attacker contrast, now a thin wrapper over the
// scenario DSL: the blind three-strike schedule lives in
// scenarios/adaptive_static.json and the trace-subscribed adaptive chase in
// scenarios/adaptive_restrike.json — system shape, workload, fault plans,
// attacker tuning, phase windows, and the dip/recovery expectations are all
// document-side. This binary only keeps the CLI contract (--quick,
// --trace <path>, exit status, adaptive_attacker.{json,csv} reports), runs
// each document twice for the byte-reproducibility check, and contrasts the
// attack-phase delivery ratios of the two runs.
//
// The first adaptive run carries the requested trace while its repeat does
// not — so the byte-compare also re-checks the invariant that tracing never
// changes a run's decisions.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <string_view>

#include "bench_util.hpp"
#include "metrics/json_writer.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

#ifndef HOURS_SCENARIO_DIR
#define HOURS_SCENARIO_DIR "scenarios"
#endif

namespace {

// The scenario reports are rendered JSON and snapshot::parse_json has no
// float support, so the contrast pulls values out by substring against the
// writer's deterministic formatting.
double during_delivery(const std::string& json) {
  constexpr std::string_view needle = "\"during\":{\"delivery_ratio\":";
  const auto pos = json.find(needle);
  if (pos == std::string::npos) return -1.0;
  return std::strtod(json.c_str() + pos + needle.size(), nullptr);
}

std::uint64_t strikes_launched(const std::string& json) {
  constexpr std::string_view needle = "\"strikes_launched\":";
  const auto pos = json.find(needle);
  if (pos == std::string::npos) return 0;
  return std::strtoull(json.c_str() + pos + needle.size(), nullptr, 10);
}

bool load(const char* name, hours::scenario::Scenario& sc) {
  const std::string path = std::string{HOURS_SCENARIO_DIR} + "/" + name;
  if (const auto error = hours::scenario::load_file(path, sc); !error.empty()) {
    std::fprintf(stderr, "adaptive_attacker: %s\n", error.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hours;

  const bool quick = bench::quick_mode(argc, argv);
  std::string trace_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view{argv[i]} == "--trace") trace_path = argv[i + 1];
  }

  scenario::Scenario fixed;
  scenario::Scenario adaptive;
  if (!load("adaptive_static.json", fixed) || !load("adaptive_restrike.json", adaptive)) return 1;

  scenario::RunOptions options;
  if (quick) options.interval_scale = 2;  // 450 -> 900 ticks, the legacy quick size
  scenario::RunOptions traced = options;
  traced.trace_path = trace_path;

  const auto fixed_first = scenario::run(fixed, options);
  const auto fixed_second = scenario::run(fixed, options);
  const auto adaptive_first = scenario::run(adaptive, traced);
  const auto adaptive_second = scenario::run(adaptive, options);
  const bool reproducible =
      fixed_first.json == fixed_second.json && adaptive_first.json == adaptive_second.json;

  for (const auto& check : fixed_first.failed) {
    std::fprintf(stderr, "adaptive_attacker: FAIL %s: %s\n", fixed.name.c_str(), check.c_str());
  }
  for (const auto& check : adaptive_first.failed) {
    std::fprintf(stderr, "adaptive_attacker: FAIL %s: %s\n", adaptive.name.c_str(), check.c_str());
  }

  const double during_static = during_delivery(fixed_first.json);
  const double during_adaptive = during_delivery(adaptive_first.json);
  const std::uint64_t strikes = strikes_launched(adaptive_first.json);
  const bool hurts_more = during_adaptive < during_static;

  std::printf("run        during_delivery  strikes\n");
  std::printf("static     %.4f           scheduled\n", during_static);
  std::printf("adaptive   %.4f           %llu launched\n", during_adaptive,
              static_cast<unsigned long long>(strikes));
  std::printf("expectations met: %s  reproducible: %s  adaptive_hurts_more: %s\n",
              fixed_first.expectations_met && adaptive_first.expectations_met ? "yes" : "no",
              reproducible ? "yes" : "no", hurts_more ? "yes" : "no");

  {
    std::ofstream csv{bench::csv_path("adaptive_attacker")};
    csv << "run,during_delivery,strikes_launched\n";
    csv << "static," << metrics::JsonWriter::fixed(during_static, 4) << ",\n";
    csv << "adaptive," << metrics::JsonWriter::fixed(during_adaptive, 4) << "," << strikes << "\n";
  }

  metrics::JsonWriter report;
  report.begin_object();
  report.field("bench", "adaptive_attacker");
  report.field("quick", quick);
  report.key("static").raw(fixed_first.json);
  report.key("adaptive").raw(adaptive_first.json);
  report.key("contrast").begin_object();
  report.field("during_static", during_static, 4);
  report.field("during_adaptive", during_adaptive, 4);
  report.field("during_delta", during_static - during_adaptive, 4);
  report.field("adaptive_hurts_more", hurts_more);
  report.end_object();
  report.end_object();
  bench::emit_json_report("adaptive_attacker", report.str());

  return fixed_first.expectations_met && adaptive_first.expectations_met && reproducible &&
                 strikes > 0
             ? 0
             : 1;
}
