// Future-work study (Section 7, "Unbalanced Hierarchy"): aggregating small
// sibling overlays into one large overlay.
//
// Scenario: 100 families of C = 4 siblings (an unbalanced hierarchy's thin
// tier, e.g. small delegated zones). The attacker spends budget B on the
// optimal neighbor attack against one victim family member plus its
// neighborhood, under two architectures:
//
//   * per-family overlays — the paper's base architecture; each ring has 4
//     members, so any budget >= 4 erases all possible exits;
//   * one aggregated cousin overlay of 400 members — the future-work
//     proposal; Eq.(2)-grade resilience of a 400-ring.
//
// The aggregation's cost (the "deviation" the paper worries about) is also
// measured: cross-family pointers per node, i.e. routing state pointing at
// cousins outside the node's own administrative parent.
#include <cstdio>

#include "analysis/resilience.hpp"
#include "attack/attack.hpp"
#include "bench_util.hpp"
#include "hierarchy/aggregation.hpp"
#include "metrics/table_writer.hpp"

namespace {

using namespace hours;

constexpr std::uint32_t kParents = 100;
constexpr std::uint32_t kC = 4;
constexpr std::uint32_t kGrandchildren = 3;

overlay::OverlayParams params(std::uint64_t seed) {
  overlay::OverlayParams p;
  p.k = 5;
  p.q = 3;
  p.seed = seed;
  return p;
}

double tiny_ring_delivery(std::uint32_t budget, int trials) {
  int ok = 0;
  for (int t = 0; t < trials; ++t) {
    overlay::Overlay tiny{kC, params(0x711 + static_cast<std::uint64_t>(t)),
                          overlay::TableStorage::kEager,
                          [](ids::RingIndex) { return kGrandchildren; }};
    const ids::RingIndex od = static_cast<ids::RingIndex>(t) % kC;
    tiny.kill(od);
    attack::strike(tiny, attack::plan_neighbor(kC, od, std::min(budget, kC - 1)));
    const auto entrance = tiny.nearest_alive_cw(od);
    if (!entrance.has_value()) continue;
    if (tiny.forward(*entrance, od).kind == overlay::ExitKind::kNephewExit) ++ok;
  }
  return static_cast<double>(ok) / trials;
}

double aggregate_delivery(std::uint32_t budget, int trials) {
  int ok = 0;
  for (int t = 0; t < trials; ++t) {
    hierarchy::CousinOverlay agg{kParents, kC, kGrandchildren,
                                 params(0x712 + static_cast<std::uint64_t>(t))};
    const hierarchy::CousinRef target{static_cast<std::uint32_t>(t) % kParents, 1};
    const auto od = agg.index_of(target);
    agg.overlay().kill(od);
    attack::strike(agg.overlay(),
                   attack::plan_neighbor(agg.size(), od, std::min(budget, agg.size() - 2)));
    const auto entrance = agg.overlay().nearest_alive_cw(od);
    if (!entrance.has_value()) continue;
    if (agg.overlay().forward(*entrance, od).kind == overlay::ExitKind::kNephewExit) ++ok;
  }
  return static_cast<double>(ok) / trials;
}

double cross_family_pointer_fraction() {
  hierarchy::CousinOverlay agg{kParents, kC, kGrandchildren, params(0x713)};
  std::uint64_t cross = 0;
  std::uint64_t total = 0;
  for (ids::RingIndex i = 0; i < agg.size(); ++i) {
    const auto self = agg.member_at(i);
    for (const auto& entry : agg.overlay().table(i).entries()) {
      ++total;
      if (agg.member_at(entry.sibling).parent != self.parent) ++cross;
    }
  }
  return static_cast<double>(cross) / static_cast<double>(total);
}

}  // namespace

int main(int argc, char** argv) {
  using metrics::TableWriter;
  const bool quick = bench::quick_mode(argc, argv);
  const int trials = static_cast<int>(bench::scaled(500, 60, quick));

  TableWriter table{{"attack_budget", "per_family_rings(C=4)", "aggregated(400)",
                     "eq2_aggregate"}};
  for (const std::uint32_t budget : {1U, 2U, 3U, 4U, 40U, 150U, 300U, 380U}) {
    table.add_row(
        {TableWriter::fmt(std::uint64_t{budget}), TableWriter::fmt(tiny_ring_delivery(budget, trials), 3),
         TableWriter::fmt(aggregate_delivery(budget, trials), 3),
         TableWriter::fmt(analysis::delivery_neighbor_attack(
                              kParents * kC, 5, static_cast<double>(budget) / (kParents * kC)),
                          3)});
  }
  table.print(
      "Future work (Section 7) — aggregating 100 C=4 sibling sets into one 400-ring");
  table.write_csv(hours::bench::csv_path("future_overlay_aggregation"));

  std::printf("\nDeviation cost: %.1f%% of routing-table pointers cross administrative\n"
              "family boundaries (the \"deviates from the original service hierarchy\"\n"
              "concern the paper raises).\n",
              100.0 * cross_family_pointer_fraction());
  return 0;
}
