// Section 4's comparison table: per-node routing state, base vs enhanced.
//
//                         | Base          | Enhanced
//   sibling pointers      | O(log N)      | O(k log N)
//   nephew pointers       | q             | O(q k log N)
//   clockwise neighbors   | 1             | k
//   counter-clockwise     | 0             | 1
//
// This bench measures the realized averages on a concrete overlay and
// prints them next to the analytic expectations.
#include <cstdio>

#include "analysis/resilience.hpp"
#include "bench_util.hpp"
#include "metrics/table_writer.hpp"
#include "overlay/table_builder.hpp"

namespace {

struct StateStats {
  double siblings = 0;
  double nephews = 0;
  double certain_cw = 0;   // guaranteed clockwise neighbor pointers
  double ccw = 0;
};

StateStats measure(std::uint32_t n, const hours::overlay::OverlayParams& params,
                   std::uint32_t sample) {
  using namespace hours;
  StateStats stats;
  auto children = [](ids::RingIndex) { return 64U; };
  for (std::uint32_t i = 0; i < sample; ++i) {
    const auto owner = static_cast<ids::RingIndex>((i * 104729ULL) % n);
    const auto t = overlay::build_routing_table(n, owner, params, children);
    stats.siblings += static_cast<double>(t.size());
    stats.nephews += static_cast<double>(t.nephew_count());
    stats.ccw += t.ccw_neighbor().has_value() ? 1.0 : 0.0;
    // Certain clockwise neighbors = leading entries at distances 1..k_eff.
    std::uint32_t certain = 0;
    for (std::uint32_t d = 1; d <= params.effective_k() && d < n; ++d) {
      if (t.find(ids::clockwise_step(owner, d, n)) != nullptr) ++certain;
    }
    stats.certain_cw += certain;
  }
  stats.siblings /= sample;
  stats.nephews /= sample;
  stats.certain_cw /= sample;
  stats.ccw /= sample;
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  using hours::metrics::TableWriter;
  const bool quick = hours::bench::quick_mode(argc, argv);
  const auto n = static_cast<std::uint32_t>(hours::bench::scaled(10'000, 2'000, quick));
  const auto sample = static_cast<std::uint32_t>(hours::bench::scaled(2'000, 500, quick));

  hours::overlay::OverlayParams base;
  base.design = hours::overlay::Design::kBase;
  base.q = 10;
  hours::overlay::OverlayParams enhanced;
  enhanced.design = hours::overlay::Design::kEnhanced;
  enhanced.k = 5;
  enhanced.q = 10;

  const auto b = measure(n, base, sample);
  const auto e = measure(n, enhanced, sample);

  TableWriter table{{"state", "base_measured", "base_expected", "enhanced_measured",
                     "enhanced_expected"}};
  table.add_row({"sibling pointers", TableWriter::fmt(b.siblings, 2),
                 TableWriter::fmt(hours::analysis::expected_table_size(n, 1), 2),
                 TableWriter::fmt(e.siblings, 2),
                 TableWriter::fmt(hours::analysis::expected_table_size(n, 5), 2)});
  table.add_row({"nephew pointers", TableWriter::fmt(b.nephews, 2), "q = 10.00",
                 TableWriter::fmt(e.nephews, 2), "q * siblings"});
  table.add_row({"certain clockwise neighbors", TableWriter::fmt(b.certain_cw, 2), "1.00",
                 TableWriter::fmt(e.certain_cw, 2), "k = 5.00"});
  table.add_row({"counter-clockwise pointer", TableWriter::fmt(b.ccw, 2), "0.00",
                 TableWriter::fmt(e.ccw, 2), "1.00"});

  table.print("Table (Section 4) — routing state per node (N=" + std::to_string(n) +
              ", q=10, k=5)");
  table.write_csv(hours::bench::csv_path("table1_design_state"));
  std::printf("\nPaper reference: base O(log N)/q/1/0 vs enhanced O(k log N)/O(qk log N)/k/1.\n");
  return 0;
}
