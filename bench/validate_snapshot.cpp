// Snapshot-schema checker: reads a snapshot file written by
// sim::Snapshotter::save_file or HoursSystem::save and validates its
// structure — magic, version, section shape, and (for simulator snapshots)
// the event list — via snapshot::validate_document. CI runs it on a
// freshly written snapshot so a schema regression fails fast, outside any
// particular test.
//
// Usage:
//   validate_snapshot <file.json>     validate an existing snapshot
//   validate_snapshot --demo <file>   write a small mid-run ring snapshot
//                                     to <file>, then validate it (the CI
//                                     smoke path needs no fixture file)
// Exit: 0 valid, 1 invalid or unreadable (reported), 2 bad usage.
#include <cstdio>
#include <cstring>
#include <string>

#include "sim/fault_injector.hpp"
#include "sim/ring_protocol.hpp"
#include "sim/snapshotter.hpp"
#include "snapshot/json.hpp"
#include "snapshot/snapshot.hpp"

namespace {

int write_demo(const std::string& path) {
  using namespace hours::sim;
  RingSimConfig config;
  config.size = 12;
  config.probe_failure_threshold = 2;
  RingSimulation ring{config};
  ring.start();
  FaultPlan plan;
  plan.crash(3, 1'500, 6'000);
  plan.loss_episode(0.05, 2'000, 5'000);
  FaultInjector injector{make_fault_target(ring), plan};
  injector.arm();
  Snapshotter snap{ring.simulator()};
  snap.add(ring);
  snap.add(injector);
  ring.simulator().run(2'500);  // inside the fault window: nontrivial state
  HOURS_ASSERT(!ring.simulator().truncated());
  if (const auto error = snap.save_file(path); !error.empty()) {
    std::fprintf(stderr, "validate_snapshot: demo save failed: %s\n", error.c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  if (argc == 2 && std::strcmp(argv[1], "--demo") != 0) {
    path = argv[1];
  } else if (argc == 3 && std::strcmp(argv[1], "--demo") == 0) {
    path = argv[2];
    if (const int rc = write_demo(path); rc != 0) return rc;
  } else {
    std::fprintf(stderr, "usage: validate_snapshot [--demo] <file.json>\n");
    return 2;
  }

  hours::snapshot::Json doc;
  if (const auto error = hours::snapshot::read_file(path, doc); !error.empty()) {
    std::fprintf(stderr, "validate_snapshot: %s\n", error.c_str());
    return 1;
  }
  if (const auto error = hours::snapshot::validate_document(doc); !error.empty()) {
    std::fprintf(stderr, "validate_snapshot: %s: %s\n", path.c_str(), error.c_str());
    return 1;
  }
  const auto* sections = doc.find("sections");
  std::printf("validate_snapshot: %s schema-valid (version %llu, %zu sections)\n",
              path.c_str(),
              static_cast<unsigned long long>(doc.find("version")->as_u64()),
              sections->fields().size());
  return 0;
}
