// Scale smoke: builds a >=1M-node hierarchy through the facade, swaps in the
// message-level EventBackend, runs a short query burst, and reports
// construction time, events/sec, and peak RSS as a metrics::JsonWriter
// document (scale_smoke.json).
//
// With --enforce the run compares against bench/scale_thresholds.json (an
// events/sec floor plus RSS and construction-time ceilings) and exits
// nonzero on regression — the CI scale-smoke job runs exactly that in
// Release mode. Without --enforce it only reports, so Debug/dev runs stay
// green. --quick shrinks the tree to ~1k nodes for the bench-smoke ctest
// label.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.hpp"
#include "hours/hours.hpp"
#include "metrics/json_writer.hpp"
#include "rng/xoshiro256.hpp"
#include "snapshot/json.hpp"
#include "util/contracts.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// Admits the full fanout tree level by level; names are short label chains
/// ("c3.b17.a4") so admission cost stays dominated by tree walks, not
/// string work. Returns the leaf names for the query burst.
std::vector<std::string> admit_tree(hours::HoursSystem& sys,
                                    const std::vector<std::uint32_t>& fanout) {
  std::vector<std::string> frontier{""};  // suffix of the parent level ("" = root)
  std::vector<std::string> next;
  const char* prefixes = "abcdef";
  for (std::size_t level = 0; level < fanout.size(); ++level) {
    next.clear();
    next.reserve(frontier.size() * fanout[level]);
    for (const auto& parent : frontier) {
      for (std::uint32_t i = 0; i < fanout[level]; ++i) {
        std::string name = prefixes[level % 6] + std::to_string(i);
        if (!parent.empty()) name += "." + parent;
        const auto admitted = sys.admit(name);
        HOURS_ASSERT(admitted.ok());
        next.push_back(std::move(name));
      }
    }
    frontier.swap(next);
  }
  return frontier;  // deepest level
}

struct Thresholds {
  std::uint64_t nodes = 0;
  double events_per_sec_floor = 0.0;
  double peak_rss_mb_ceiling = 0.0;
  double construction_seconds_ceiling = 0.0;
  bool loaded = false;
};

Thresholds load_thresholds(const std::string& path) {
  Thresholds t;
  std::ifstream in{path};
  if (!in) return t;
  std::stringstream buffer;
  buffer << in.rdbuf();
  hours::snapshot::Json doc;
  std::string error;
  if (!hours::snapshot::parse_json(buffer.str(), doc, &error)) {
    std::fprintf(stderr, "scale_smoke: cannot parse %s: %s\n", path.c_str(), error.c_str());
    return t;
  }
  // snapshot::Json numbers are u64-only; thresholds are stored as integers.
  const auto u64_field = [&doc](std::string_view key) -> std::uint64_t {
    const auto* field = doc.find(key);
    HOURS_ASSERT(field != nullptr && field->is_u64());
    return field->as_u64();
  };
  t.nodes = u64_field("nodes");
  t.events_per_sec_floor = static_cast<double>(u64_field("events_per_sec_floor"));
  t.peak_rss_mb_ceiling = static_cast<double>(u64_field("peak_rss_mb_ceiling"));
  t.construction_seconds_ceiling = static_cast<double>(u64_field("construction_seconds_ceiling"));
  t.loaded = true;
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  using hours::metrics::JsonWriter;
  const bool quick = hours::bench::quick_mode(argc, argv);
  bool enforce = false;
  std::string thresholds_path = "scale_thresholds.json";
  std::vector<std::uint32_t> fanout =
      quick ? std::vector<std::uint32_t>{10, 10, 10} : std::vector<std::uint32_t>{100, 100, 100};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--enforce") == 0) enforce = true;
    if (std::strncmp(argv[i], "--thresholds=", 13) == 0) thresholds_path = argv[i] + 13;
    if (std::strncmp(argv[i], "--fanout=", 9) == 0) {
      // Comma-separated per-level fanouts, e.g. --fanout=100,100 for the
      // 10k point of BENCH_scale.json. Overrides the quick/full default.
      fanout.clear();
      for (const char* cursor = argv[i] + 9; *cursor != '\0';) {
        char* end = nullptr;
        fanout.push_back(static_cast<std::uint32_t>(std::strtoul(cursor, &end, 10)));
        HOURS_ASSERT(end != cursor && fanout.back() > 0);
        cursor = *end == ',' ? end + 1 : end;
      }
      HOURS_ASSERT(!fanout.empty());
    }
  }
  std::uint64_t nodes = 1;  // the implicit root
  std::uint64_t level_size = 1;
  for (const auto f : fanout) {
    level_size *= f;
    nodes += level_size;
  }
  std::printf("[scale_smoke] admitting %llu nodes (fanout", (unsigned long long)nodes);
  for (const auto f : fanout) std::printf(" %u", f);
  std::printf(")...\n");

  const auto t_admit = std::chrono::steady_clock::now();
  hours::HoursSystem sys;
  const auto leaves = admit_tree(sys, fanout);
  const double admit_seconds = seconds_since(t_admit);
  std::printf("[scale_smoke] admission done in %.2fs\n", admit_seconds);

  // The event backend materializes its topology mirror on first touch;
  // node_id() forces it so construction cost is measured separately from
  // the query burst.
  auto& backend = sys.use_event_backend();
  const auto t_build = std::chrono::steady_clock::now();
  HOURS_ASSERT(backend.node_id(leaves.front()).has_value());
  const double build_seconds = seconds_since(t_build);
  std::printf("[scale_smoke] event mirror built in %.2fs\n", build_seconds);

  const std::uint64_t queries = quick ? 50 : 500;
  hours::rng::Xoshiro256 rng{0x5CA1EULL};
  std::uint64_t delivered = 0;
  auto& simulator = backend.simulation()->simulator();
  const std::uint64_t events_before = simulator.executed_total();
  const auto t_burst = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < queries; ++i) {
    const auto& dest = leaves[rng.below(leaves.size())];
    const auto result = sys.query(dest);
    // A silent event cap at scale would corrupt the delivery stats.
    HOURS_ASSERT(!simulator.truncated());
    if (result.delivered) ++delivered;
  }
  const double burst_seconds = seconds_since(t_burst);
  const std::uint64_t events = simulator.executed_total() - events_before;
  const double events_per_sec =
      burst_seconds > 0.0 ? static_cast<double>(events) / burst_seconds : 0.0;
  const double peak_rss_mb =
      static_cast<double>(hours::bench::peak_rss_bytes()) / (1024.0 * 1024.0);
  const double construction_seconds = admit_seconds + build_seconds;

  JsonWriter json;
  json.begin_object();
  json.field("bench", "scale_smoke");
  json.field("quick", quick);
  json.field("nodes", nodes);
  json.field("admit_seconds", admit_seconds, 2);
  json.field("build_seconds", build_seconds, 2);
  json.field("construction_seconds", construction_seconds, 2);
  json.field("queries", queries);
  json.field("delivered", delivered);
  json.field("events", events);
  json.field("events_per_sec", events_per_sec, 0);
  json.field("burst_seconds", burst_seconds, 2);
  json.field("peak_rss_mb", peak_rss_mb, 1);
  json.end_object();
  hours::bench::emit_json_report("scale_smoke", json.str());

  HOURS_ASSERT(delivered == queries);  // healthy tree: every query delivers

  if (!enforce) return 0;
  const auto thresholds = load_thresholds(thresholds_path);
  if (!thresholds.loaded) {
    std::fprintf(stderr, "scale_smoke: --enforce set but no thresholds at %s\n",
                 thresholds_path.c_str());
    return 2;
  }
  if (quick) {
    std::fprintf(stderr, "scale_smoke: --enforce is meaningless with --quick\n");
    return 2;
  }
  int failures = 0;
  if (thresholds.nodes != nodes) {
    std::fprintf(stderr, "FAIL thresholds calibrated for %llu nodes, ran %llu\n",
                 (unsigned long long)thresholds.nodes, (unsigned long long)nodes);
    ++failures;
  }
  if (events_per_sec < thresholds.events_per_sec_floor) {
    std::fprintf(stderr, "FAIL events/sec %.0f < floor %.0f\n", events_per_sec,
                 thresholds.events_per_sec_floor);
    ++failures;
  }
  if (peak_rss_mb > thresholds.peak_rss_mb_ceiling) {
    std::fprintf(stderr, "FAIL peak RSS %.1f MB > ceiling %.1f MB\n", peak_rss_mb,
                 thresholds.peak_rss_mb_ceiling);
    ++failures;
  }
  if (construction_seconds > thresholds.construction_seconds_ceiling) {
    std::fprintf(stderr, "FAIL construction %.2fs > ceiling %.2fs\n", construction_seconds,
                 thresholds.construction_seconds_ceiling);
    ++failures;
  }
  if (failures == 0) std::printf("[scale_smoke] thresholds OK\n");
  return failures == 0 ? 0 : 1;
}
