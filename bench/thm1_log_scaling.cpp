// Theorem 1 validation: with high probability a node's routing table has
// O(log N) entries and queries are forwarded in O(log N) steps.
//
// We sweep N over two decades and print measured mean/percentile table sizes
// and hop counts next to ln N; the ratios should stabilize to constants.
#include <cstdio>
#include <cmath>
#include <vector>

#include "bench_util.hpp"
#include "metrics/histogram.hpp"
#include "metrics/table_writer.hpp"
#include "overlay/overlay.hpp"
#include "rng/xoshiro256.hpp"

int main(int argc, char** argv) {
  using namespace hours;
  using metrics::TableWriter;
  const bool quick = bench::quick_mode(argc, argv);

  std::vector<std::uint32_t> sizes{1'000, 4'000, 16'000, 64'000};
  if (quick) sizes = {1'000, 4'000};

  overlay::OverlayParams params;  // base design: the theorem's setting (k=1)
  params.design = overlay::Design::kBase;

  TableWriter table{{"N", "ln(N)", "mean_table", "p99_table", "table/lnN", "mean_hops",
                     "p99_hops", "hops/lnN"}};
  for (const auto n : sizes) {
    const overlay::Overlay ov{n, params};
    metrics::Histogram sizes_hist;
    for (ids::RingIndex i = 0; i < n; i += std::max(1U, n / 5000)) {
      sizes_hist.add(ov.table(i).size());
    }

    metrics::Histogram hops_hist;
    rng::Xoshiro256 rng{0x7177ULL};
    const std::uint64_t queries = bench::scaled(20'000, 2'000, quick);
    for (std::uint64_t i = 0; i < queries; ++i) {
      const auto from = static_cast<ids::RingIndex>(rng.below(n));
      const auto to = static_cast<ids::RingIndex>(rng.below(n));
      hops_hist.add(ov.forward(from, to).hops);
    }

    const double ln_n = std::log(n);
    table.add_row({TableWriter::fmt(std::uint64_t{n}), TableWriter::fmt(ln_n, 2),
                   TableWriter::fmt(sizes_hist.mean(), 2),
                   TableWriter::fmt(sizes_hist.quantile(0.99)),
                   TableWriter::fmt(sizes_hist.mean() / ln_n, 3),
                   TableWriter::fmt(hops_hist.mean(), 2),
                   TableWriter::fmt(hops_hist.quantile(0.99)),
                   TableWriter::fmt(hops_hist.mean() / ln_n, 3)});
  }

  table.print("Theorem 1 — O(log N) routing state and forwarding steps (base design)");
  table.write_csv(hours::bench::csv_path("thm1_log_scaling"));
  std::printf("\nBoth ratio columns should be ~constant across N (w.h.p. O(log N)).\n");
  return 0;
}
