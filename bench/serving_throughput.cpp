// Concurrent serving throughput: hammers the ConcurrentResolver front-end
// (sharded RCU answer cache over HoursSystem) with resolver threads and
// reports queries/sec/thread across a thread-scaling curve — the "service
// under heavy traffic" measurement the ROADMAP's concurrency item asks for.
//
// Setup: a ~1k-name hierarchy with one A record per leaf, a resolver warmed
// by one pass over every name, then for each thread count in {1,2,4,8} a
// timed phase where every thread resolves uniformly random names (all cache
// hits — the lock-free read path is what scales) plus one batched phase at
// the widest count exercising resolve_batch. Thread counts above the
// machine's hardware concurrency still run (the curve shows the
// oversubscribed tail) but are excluded from enforcement.
//
// With --enforce the run compares each in-hardware thread count's
// queries/sec/thread against bench/serving_thresholds.json and exits
// nonzero below the floor — the Release CI job runs exactly that. --quick
// shrinks the name set and iteration counts for the bench-smoke ctest label.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "hours/concurrent_resolver.hpp"
#include "metrics/json_writer.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256.hpp"
#include "snapshot/json.hpp"
#include "util/contracts.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// zones × hosts two-level hierarchy; every host carries one A record.
/// Returns the resolvable host names.
std::vector<std::string> build_hierarchy(hours::HoursSystem& sys, std::uint64_t zones,
                                         std::uint64_t hosts) {
  std::vector<std::string> names;
  names.reserve(zones * hosts);
  for (std::uint64_t z = 0; z < zones; ++z) {
    const std::string zone = "z" + std::to_string(z);
    HOURS_ASSERT(sys.admit(zone).ok());
    for (std::uint64_t h = 0; h < hosts; ++h) {
      const std::string name = "h" + std::to_string(h) + "." + zone;
      HOURS_ASSERT(sys.admit(name).ok());
      HOURS_ASSERT(
          sys.add_record(name, hours::store::Record{"A", std::to_string(z * hosts + h), 1'000})
              .ok());
      names.push_back(name);
    }
  }
  return names;
}

struct PhaseResult {
  unsigned threads = 0;
  std::uint64_t queries = 0;
  double wall_seconds = 0.0;
  double qps_total = 0.0;
  double qps_per_thread = 0.0;
};

/// Runs `threads` resolver threads for `iterations` lookups each against a
/// warmed cache; every lookup must answer (they are all cache hits).
PhaseResult run_phase(hours::ConcurrentResolver& resolver,
                      const std::vector<std::string>& names, unsigned threads,
                      std::uint64_t iterations) {
  std::atomic<std::uint64_t> answered{0};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  const auto t_start = std::chrono::steady_clock::now();
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&resolver, &names, &answered, t, iterations] {
      hours::rng::Xoshiro256 g{hours::rng::mix64(0x5E12F1, t)};
      std::uint64_t local = 0;
      for (std::uint64_t i = 0; i < iterations; ++i) {
        const auto result = resolver.resolve(names[g.below(names.size())], /*now=*/1);
        HOURS_ASSERT(result.answered);
        ++local;
      }
      answered.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (auto& thread : pool) thread.join();
  PhaseResult r;
  r.threads = threads;
  r.wall_seconds = seconds_since(t_start);
  r.queries = answered.load();
  HOURS_ASSERT(r.queries == static_cast<std::uint64_t>(threads) * iterations);
  r.qps_total = r.wall_seconds > 0.0 ? static_cast<double>(r.queries) / r.wall_seconds : 0.0;
  r.qps_per_thread = r.qps_total / threads;
  return r;
}

struct Thresholds {
  double min_qps_per_thread = 0.0;
  bool loaded = false;
};

Thresholds load_thresholds(const std::string& path) {
  Thresholds t;
  std::ifstream in{path};
  if (!in) return t;
  std::stringstream buffer;
  buffer << in.rdbuf();
  hours::snapshot::Json doc;
  std::string error;
  if (!hours::snapshot::parse_json(buffer.str(), doc, &error)) {
    std::fprintf(stderr, "serving_throughput: cannot parse %s: %s\n", path.c_str(),
                 error.c_str());
    return t;
  }
  // snapshot::Json numbers are u64-only; the floor is stored as an integer.
  const auto* field = doc.find("min_qps_per_thread");
  HOURS_ASSERT(field != nullptr && field->is_u64());
  t.min_qps_per_thread = static_cast<double>(field->as_u64());
  t.loaded = true;
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  using hours::metrics::JsonWriter;
  const bool quick = hours::bench::quick_mode(argc, argv);
  bool enforce = false;
  std::string thresholds_path = "serving_thresholds.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--enforce") == 0) enforce = true;
    if (std::strncmp(argv[i], "--thresholds=", 13) == 0) thresholds_path = argv[i] + 13;
  }

  const std::uint64_t zones = hours::bench::scaled(32, 8, quick);
  const std::uint64_t hosts = hours::bench::scaled(32, 8, quick);
  const std::uint64_t iterations = hours::bench::scaled(200'000, 2'000, quick);

  hours::HoursSystem sys;
  const auto names = build_hierarchy(sys, zones, hosts);
  std::printf("[serving_throughput] %zu names admitted\n", names.size());

  hours::ConcurrentResolver resolver{sys, /*capacity=*/names.size() * 2, /*shard_count=*/16};
  for (const auto& name : names) {
    const auto warmed = resolver.resolve(name, /*now=*/0);  // TTL 1000s: hot for the run
    HOURS_ASSERT(warmed.answered);
  }
  std::printf("[serving_throughput] cache warmed (%zu entries)\n", resolver.cached_names());

  const unsigned hardware = std::max(1U, std::thread::hardware_concurrency());
  const std::vector<unsigned> curve = {1, 2, 4, 8};
  std::vector<PhaseResult> phases;
  for (const unsigned threads : curve) {
    phases.push_back(run_phase(resolver, names, threads, iterations));
    const auto& phase = phases.back();
    std::printf("[serving_throughput] threads=%u qps_total=%.0f qps/thread=%.0f%s\n",
                phase.threads, phase.qps_total, phase.qps_per_thread,
                phase.threads > hardware ? " (oversubscribed)" : "");
  }

  // One batched phase at the widest in-hardware width: resolve_batch
  // amortizes the probe loop and (on misses) the authority mutex.
  const unsigned batch_threads = std::min(hardware, curve.back());
  const std::uint64_t batch_rounds = hours::bench::scaled(2'000, 50, quick);
  std::atomic<std::uint64_t> batch_answered{0};
  const auto t_batch = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < batch_threads; ++t) {
      pool.emplace_back([&resolver, &names, &batch_answered, batch_rounds] {
        std::uint64_t local = 0;
        for (std::uint64_t i = 0; i < batch_rounds; ++i) {
          const auto results = resolver.resolve_batch(names, /*now=*/1);
          for (const auto& result : results) {
            HOURS_ASSERT(result.answered);
            ++local;
          }
        }
        batch_answered.fetch_add(local, std::memory_order_relaxed);
      });
    }
    for (auto& thread : pool) thread.join();
  }
  const double batch_wall = seconds_since(t_batch);
  const double batch_qps =
      batch_wall > 0.0 ? static_cast<double>(batch_answered.load()) / batch_wall : 0.0;
  std::printf("[serving_throughput] batch threads=%u qps_total=%.0f\n", batch_threads,
              batch_qps);

  const auto stats = resolver.stats();
  JsonWriter json;
  json.begin_object();
  json.field("bench", "serving_throughput");
  json.field("quick", quick);
  json.field("names", static_cast<std::uint64_t>(names.size()));
  json.field("iterations_per_thread", iterations);
  json.field("hardware_concurrency", static_cast<std::uint64_t>(hardware));
  json.key("curve");
  json.begin_array();
  const double base_qps = phases.front().qps_total;
  for (const auto& phase : phases) {
    json.begin_object();
    json.field("threads", static_cast<std::uint64_t>(phase.threads));
    json.field("queries", phase.queries);
    json.field("wall_seconds", phase.wall_seconds, 3);
    json.field("qps_total", phase.qps_total, 0);
    json.field("qps_per_thread", phase.qps_per_thread, 0);
    json.field("scaling_vs_1", base_qps > 0.0 ? phase.qps_total / base_qps : 0.0, 2);
    json.field("oversubscribed", phase.threads > hardware);
    json.end_object();
  }
  json.end_array();
  json.field("batch_threads", static_cast<std::uint64_t>(batch_threads));
  json.field("batch_qps_total", batch_qps, 0);
  json.field("cache_hits", stats.cache_hits);
  json.field("cache_misses", stats.cache_misses);
  json.field("failures", stats.failures);
  json.field("peak_rss_mb",
             static_cast<double>(hours::bench::peak_rss_bytes()) / (1024.0 * 1024.0), 1);
  json.end_object();
  hours::bench::emit_json_report("serving_throughput", json.str());

  HOURS_ASSERT(stats.failures == 0);  // a healthy tree answers everything

  if (!enforce) return 0;
  if (quick) {
    std::fprintf(stderr, "serving_throughput: --enforce is meaningless with --quick\n");
    return 2;
  }
  const auto thresholds = load_thresholds(thresholds_path);
  if (!thresholds.loaded) {
    std::fprintf(stderr, "serving_throughput: --enforce set but no thresholds at %s\n",
                 thresholds_path.c_str());
    return 2;
  }
  int failures = 0;
  for (const auto& phase : phases) {
    if (phase.threads > hardware) continue;  // the oversubscribed tail is reported, not gated
    if (phase.qps_per_thread < thresholds.min_qps_per_thread) {
      std::fprintf(stderr, "FAIL threads=%u qps/thread %.0f < floor %.0f\n", phase.threads,
                   phase.qps_per_thread, thresholds.min_qps_per_thread);
      ++failures;
    }
  }
  if (failures == 0) std::printf("[serving_throughput] thresholds OK\n");
  return failures == 0 ? 0 : 1;
}
