// Figure 6: forwarding path length distribution in a randomized overlay of
// N = 50,000 nodes, 1M queries with random source/destination pairs.
//
// Paper reference: base design mean 10.4 hops; enhanced (k=5) mean 4.8 hops
// with 90% of queries under 7 hops.
#include <cstdio>

#include "bench_util.hpp"
#include "metrics/histogram.hpp"
#include "metrics/table_writer.hpp"
#include "overlay/overlay.hpp"
#include "rng/xoshiro256.hpp"

namespace {

hours::metrics::Histogram run_queries(const hours::overlay::Overlay& ov, std::uint64_t queries) {
  hours::metrics::Histogram hist;
  hours::rng::Xoshiro256 rng{0xF16'6ULL};
  const std::uint32_t n = ov.size();
  for (std::uint64_t i = 0; i < queries; ++i) {
    const auto from = static_cast<hours::ids::RingIndex>(rng.below(n));
    const auto to = static_cast<hours::ids::RingIndex>(rng.below(n));
    const auto res = ov.forward(from, to);
    // No failures are possible in an attack-free overlay.
    hist.add(res.hops);
  }
  return hist;
}

}  // namespace

int main(int argc, char** argv) {
  using hours::metrics::TableWriter;
  const bool quick = hours::bench::quick_mode(argc, argv);
  const auto n = static_cast<std::uint32_t>(hours::bench::scaled(50'000, 5'000, quick));
  const std::uint64_t queries = hours::bench::scaled(1'000'000, 50'000, quick);

  hours::overlay::OverlayParams base;
  base.design = hours::overlay::Design::kBase;
  hours::overlay::OverlayParams enhanced;
  enhanced.design = hours::overlay::Design::kEnhanced;
  enhanced.k = 5;

  const hours::overlay::Overlay base_ov{n, base};
  const hours::overlay::Overlay enh_ov{n, enhanced};

  const auto base_hist = run_queries(base_ov, queries);
  const auto enh_hist = run_queries(enh_ov, queries);

  TableWriter summary{{"design", "mean", "p50", "p90", "p99", "max", "frac<=7"}};
  summary.add_row({"base", TableWriter::fmt(base_hist.mean(), 2),
                   TableWriter::fmt(base_hist.quantile(0.5)),
                   TableWriter::fmt(base_hist.quantile(0.9)),
                   TableWriter::fmt(base_hist.quantile(0.99)),
                   TableWriter::fmt(base_hist.max_value()),
                   TableWriter::fmt(base_hist.cdf(7), 3)});
  summary.add_row({"enhanced(k=5)", TableWriter::fmt(enh_hist.mean(), 2),
                   TableWriter::fmt(enh_hist.quantile(0.5)),
                   TableWriter::fmt(enh_hist.quantile(0.9)),
                   TableWriter::fmt(enh_hist.quantile(0.99)),
                   TableWriter::fmt(enh_hist.max_value()),
                   TableWriter::fmt(enh_hist.cdf(7), 3)});
  summary.print("Figure 6 — forwarding path length (N=" + std::to_string(n) + ", " +
                std::to_string(queries) + " queries)");

  TableWriter dist{{"hops", "base_queries", "enhanced_queries"}};
  const std::uint64_t max_bin = std::max(base_hist.max_value(), enh_hist.max_value());
  for (std::uint64_t v = 0; v <= max_bin; ++v) {
    dist.add_row({TableWriter::fmt(v), TableWriter::fmt(base_hist.count_at(v)),
                  TableWriter::fmt(enh_hist.count_at(v))});
  }
  dist.write_csv(hours::bench::csv_path("fig6_path_length"));
  std::printf("\nPaper reference: base mean 10.4; enhanced mean 4.8, 90%% under 7 hops.\n");
  return 0;
}
