// Section 5.2's comparison: HOURS vs a deterministic structured overlay
// (Chord) under an equal-budget topology-aware attacker.
//
// Against Chord, the attacker enumerates the O(log N) nodes whose fingers
// point at the victim and shuts them down: availability collapses from 100%
// to 0 with ~log2(N) kills. Against HOURS the same budget spent on the
// optimal neighbor attack barely moves the needle, because the attacker
// cannot know the random long-range pointers.
#include <cstdio>
#include <vector>

#include "attack/attack.hpp"
#include "baseline/chord.hpp"
#include "bench_util.hpp"
#include "metrics/table_writer.hpp"
#include "overlay/overlay.hpp"
#include "rng/xoshiro256.hpp"

namespace {

constexpr std::uint32_t kN = 1024;

double chord_delivery(std::uint32_t budget) {
  using namespace hours;
  baseline::ChordOverlay chord{kN};
  const ids::RingIndex target = 600;
  const auto in_pointers = baseline::ChordOverlay::inbound_pointer_nodes(kN, target);
  for (std::uint32_t i = 0; i < budget && i < in_pointers.size(); ++i) {
    chord.kill(in_pointers[i]);
  }
  std::uint32_t delivered = 0;
  std::uint32_t total = 0;
  for (ids::RingIndex from = 0; from < kN; from += 7) {
    if (!chord.alive(from) || from == target) continue;
    ++total;
    if (chord.route(from, target).delivered) ++delivered;
  }
  return static_cast<double>(delivered) / total;
}

double hours_delivery(std::uint32_t budget, int trials) {
  using namespace hours;
  int ok = 0;
  for (int t = 0; t < trials; ++t) {
    overlay::OverlayParams params;
    params.design = overlay::Design::kEnhanced;
    params.k = 5;
    params.q = 10;
    params.seed = 0xC0DE + static_cast<std::uint64_t>(t);
    overlay::Overlay ov{kN, params, overlay::TableStorage::kEager,
                        [](ids::RingIndex) { return 16U; }};
    const ids::RingIndex target = 600;
    // Equal budget, optimal HOURS-aware use: the target's CCW neighbors
    // (its only predictable exit candidates). The target itself stays up —
    // the attacker is trying to cut it off, as in the Chord case.
    attack::strike(ov, attack::plan_neighbor(kN, target, budget));

    // Source clockwise of the target: never inside the attacked CCW block.
    const auto res = ov.forward(700, target);
    if (res.kind == overlay::ExitKind::kArrivedAtOd) ++ok;
  }
  return static_cast<double>(ok) / trials;
}

}  // namespace

int main(int argc, char** argv) {
  using hours::metrics::TableWriter;
  const bool quick = hours::bench::quick_mode(argc, argv);
  const int trials = static_cast<int>(hours::bench::scaled(400, 50, quick));

  TableWriter table{{"attack_budget", "chord_delivery", "hours_delivery(k=5)"}};
  for (const std::uint32_t budget : {0U, 2U, 4U, 6U, 8U, 10U, 50U, 200U, 500U}) {
    table.add_row({TableWriter::fmt(std::uint64_t{budget}),
                   TableWriter::fmt(chord_delivery(budget), 3),
                   TableWriter::fmt(hours_delivery(budget, trials), 3)});
  }

  table.print("Section 5.2 — topology-aware attack: Chord vs HOURS (N=1024, alive target)");
  table.write_csv(hours::bench::csv_path("baseline_chord_compare"));
  std::printf("\nChord collapses to 0 at ~log2(N)=10 kills; HOURS stays ~1.0 far beyond.\n");
  return 0;
}
