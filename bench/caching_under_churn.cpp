// Resolver caching under scripted churn — the Section 7 "caching is
// complementary, not a substitute" claim ([Breslau99]/[Jung01]) measured
// against a *dynamic* fault schedule instead of a static oracle strike.
//
// A Zipf-driven client resolves names through a TTL-bounded Resolver cache
// whose clock is the backend's. On the event backend the same facade runs a
// message-level simulation (sim::QueryClient retries/deadlines, liveness
// inferred from silence) with a FaultPlan scheduling a re-striking
// correlated outage over three zone subtrees, a lossy-link episode, and
// random host churn. The graph backend mirrors the correlated outage with
// oracle set_alive toggles at the same boundaries (it has no transport, so
// loss and churn have no graph equivalent).
//
// The windowed timeline shows the paper's point: cached answers carry part
// of the load for one record TTL into the outage, then expire and cannot be
// refreshed — availability and hit rate dip together and recover only when
// the attack lifts. Output: paper-shaped table plus reproducible JSON
// (stdout and caching_under_churn.json, byte-compared across two runs);
// --trace <path> dumps the first event run's trace for schema validation.
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.hpp"
#include "hours/resolver.hpp"
#include "metrics/json_writer.hpp"
#include "metrics/table_writer.hpp"
#include "trace/jsonl_sink.hpp"
#include "trace/sink.hpp"
#include "workload/workload.hpp"

namespace {

using namespace hours;

constexpr int kZones = 6;
constexpr int kHosts = 6;
constexpr int kStruckZones = 3;
constexpr std::uint64_t kRecordTtl = 90;  // seconds — expires mid-outage
constexpr std::uint64_t kHorizon = 420;   // seconds
constexpr std::uint64_t kWindow = 30;     // seconds
// Outage strikes [120, 180) and [210, 270); loss episode [150, 240).
constexpr std::uint64_t kAttackStart = 120;
constexpr std::uint64_t kStrikeLen = 60;
constexpr std::uint64_t kStrikeGap = 30;
constexpr std::uint64_t kAttackEnd = 270;
constexpr std::uint64_t kPostStart = 300;
constexpr sim::Ticks kTps = 1'000;  // EventBackendConfig::ticks_per_second

HoursConfig world_config() {
  HoursConfig cfg;
  cfg.overlay.design = overlay::Design::kEnhanced;
  cfg.overlay.k = 5;
  cfg.overlay.q = 4;
  return cfg;
}

struct World {
  HoursSystem sys{world_config()};
  std::vector<std::string> names;

  World() {
    for (int z = 0; z < kZones; ++z) {
      const std::string zone = "zone" + std::to_string(z);
      (void)sys.admit(zone);
      for (int h = 0; h < kHosts; ++h) {
        const std::string host = "h" + std::to_string(h) + "." + zone;
        (void)sys.admit(host);
        (void)sys.add_record(host, store::Record{"A", host, kRecordTtl});
        names.push_back(host);
      }
    }
  }
};

/// Struck subtrees: the first kStruckZones zones plus every host below them.
std::vector<std::string> victim_names() {
  std::vector<std::string> victims;
  for (int z = 0; z < kStruckZones; ++z) {
    const std::string zone = "zone" + std::to_string(z);
    victims.push_back(zone);
    for (int h = 0; h < kHosts; ++h) victims.push_back("h" + std::to_string(h) + "." + zone);
  }
  return victims;
}

struct WindowStats {
  std::uint64_t asked = 0;
  std::uint64_t answered = 0;
  std::uint64_t hits = 0;

  [[nodiscard]] double availability() const noexcept {
    return asked == 0 ? 0.0 : static_cast<double>(answered) / static_cast<double>(asked);
  }
  [[nodiscard]] double hit_rate() const noexcept {
    return asked == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(asked);
  }
};

struct RunResult {
  std::vector<WindowStats> windows;  // one per kWindow seconds
  std::string plan;                  // FaultPlan::describe(), empty on graph
  sim::QueryClientStats client{};
  sim::FaultInjectorStats faults{};
  std::string json;                  // this run's backend report fragment

  [[nodiscard]] WindowStats phase(std::uint64_t from, std::uint64_t to) const {
    WindowStats sum;
    for (std::size_t i = 0; i < windows.size(); ++i) {
      const std::uint64_t start = i * kWindow;
      if (start < from || start >= to) continue;
      sum.asked += windows[i].asked;
      sum.answered += windows[i].answered;
      sum.hits += windows[i].hits;
    }
    return sum;
  }
};

/// The shared measurement loop: one wall-clock second per iteration, `qps`
/// Zipf-drawn resolutions each, windowed by the backend clock at issue time.
void drive(World& world, int qps, RunResult& result) {
  Resolver resolver{world.sys, 4096};
  workload::ZipfSampler zipf{world.names.size(), 0.9, 0xCAC4EULL};
  const std::size_t window_count = kHorizon / kWindow;
  result.windows.assign(window_count, {});
  while (world.sys.now() < kHorizon) {
    for (int q = 0; q < qps && world.sys.now() < kHorizon; ++q) {
      const std::uint64_t at = world.sys.now();  // failed queries cost time
      const auto r = resolver.resolve(world.names[zipf.next()]);
      auto& w = result.windows[std::min<std::uint64_t>(at / kWindow, window_count - 1)];
      ++w.asked;
      if (r.answered) ++w.answered;
      if (r.from_cache) ++w.hits;
    }
    world.sys.advance(1);
  }
}

void render_json(std::string_view backend, RunResult& result) {
  metrics::JsonWriter json;
  json.begin_object();
  json.field("backend", backend);
  json.key("windows").begin_array();
  for (std::size_t i = 0; i < result.windows.size(); ++i) {
    const auto& w = result.windows[i];
    json.begin_object();
    json.field("start", static_cast<std::uint64_t>(i * kWindow));
    json.field("asked", w.asked);
    json.field("answered", w.answered);
    json.field("hits", w.hits);
    json.field("availability", w.availability(), 4);
    json.field("hit_rate", w.hit_rate(), 4);
    json.end_object();
  }
  json.end_array();
  json.key("phases").begin_object();
  const auto pre = result.phase(0, kAttackStart);
  const auto during = result.phase(kAttackStart, kAttackEnd);
  const auto post = result.phase(kPostStart, kHorizon);
  json.key("pre").begin_object();
  json.field("availability", pre.availability(), 4).field("hit_rate", pre.hit_rate(), 4);
  json.end_object();
  json.key("during").begin_object();
  json.field("availability", during.availability(), 4).field("hit_rate", during.hit_rate(), 4);
  json.end_object();
  json.key("post").begin_object();
  json.field("availability", post.availability(), 4).field("hit_rate", post.hit_rate(), 4);
  json.end_object();
  json.end_object();
  if (!result.plan.empty()) json.field("plan", result.plan);
  json.key("client").begin_object();
  json.field("submitted", result.client.submitted);
  json.field("delivered", result.client.delivered);
  json.field("deadline_exceeded", result.client.deadline_exceeded);
  json.field("no_route", result.client.no_route);
  json.field("retransmissions", result.client.retransmissions);
  json.field("failovers", result.client.failovers);
  json.end_object();
  json.key("faults").begin_object();
  json.field("kills", result.faults.kills);
  json.field("revivals", result.faults.revivals);
  json.field("loss_changes", result.faults.loss_changes);
  json.end_object();
  json.end_object();
  result.json = json.str();
}

RunResult run_event(int qps, trace::Tracer* tracer) {
  World world;
  EventBackendConfig ecfg;
  ecfg.client.deadline = 6'000;  // availability semantics: 6 simulated seconds
  ecfg.ticks_per_second = kTps;
  auto& event = world.sys.use_event_backend(ecfg);
  if (tracer != nullptr) world.sys.set_tracer(tracer);

  std::vector<std::uint32_t> victims;
  for (const auto& name : victim_names()) victims.push_back(event.node_id(name).value());

  sim::FaultPlan plan;
  plan.correlated_outage(victims, kAttackStart * kTps, kStrikeLen * kTps, /*strikes=*/2,
                         kStrikeGap * kTps);
  plan.loss_episode(0.15, 150 * kTps, 240 * kTps);
  plan.random_churn(/*events=*/8, kAttackStart * kTps, kPostStart * kTps,
                    /*mean_downtime=*/15 * kTps, /*seed=*/0xC42ULL, /*spare=*/{0});

  RunResult result;
  result.plan = plan.describe();
  (void)world.sys.schedule_faults(std::move(plan));

  drive(world, qps, result);
  result.client = event.client()->stats();
  result.faults = event.fault_stats();
  render_json("event", result);
  return result;
}

RunResult run_graph(int qps) {
  World world;
  const auto victims = victim_names();

  // Oracle mirror of the correlated outage: same strike boundaries, applied
  // instantaneously through set_alive. The set_alive toggles are woven into
  // the drive loop via a wrapper system clock check each second.
  RunResult result;
  Resolver resolver{world.sys, 4096};
  workload::ZipfSampler zipf{world.names.size(), 0.9, 0xCAC4EULL};
  const std::size_t window_count = kHorizon / kWindow;
  result.windows.assign(window_count, {});
  bool down = false;
  while (world.sys.now() < kHorizon) {
    const std::uint64_t t = world.sys.now();
    const bool strike = (t >= kAttackStart && t < kAttackStart + kStrikeLen) ||
                        (t >= kAttackStart + kStrikeLen + kStrikeGap && t < kAttackEnd);
    if (strike != down) {
      for (const auto& v : victims) (void)world.sys.set_alive(v, !strike);
      down = strike;
    }
    for (int q = 0; q < qps; ++q) {
      const auto r = resolver.resolve(world.names[zipf.next()]);
      auto& w = result.windows[std::min<std::uint64_t>(t / kWindow, window_count - 1)];
      ++w.asked;
      if (r.answered) ++w.answered;
      if (r.from_cache) ++w.hits;
    }
    world.sys.advance(1);
  }
  render_json("graph", result);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);
  const int qps = static_cast<int>(bench::scaled(4, 1, quick));
  std::string trace_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view{argv[i]} == "--trace") trace_path = argv[i + 1];
  }

  trace::Tracer tracer;
  std::unique_ptr<trace::JsonLinesSink> jsonl;
  if (!trace_path.empty()) {
    jsonl = std::make_unique<trace::JsonLinesSink>(trace_path);
    tracer.add_sink(jsonl.get());
  }

  const RunResult event1 = run_event(qps, trace_path.empty() ? nullptr : &tracer);
  tracer.flush();
  const RunResult event2 = run_event(qps, nullptr);
  const RunResult graph = run_graph(qps);
  const bool reproducible = event1.json == event2.json;

  const auto epre = event1.phase(0, kAttackStart);
  const auto eduring = event1.phase(kAttackStart, kAttackEnd);
  const auto epost = event1.phase(kPostStart, kHorizon);
  const auto gpre = graph.phase(0, kAttackStart);
  const auto gduring = graph.phase(kAttackStart, kAttackEnd);
  const auto gpost = graph.phase(kPostStart, kHorizon);

  using metrics::TableWriter;
  TableWriter table{{"backend", "phase", "availability", "hit_rate"}};
  const auto add = [&table](const char* backend, const char* phase, const WindowStats& w) {
    table.add_row({backend, phase, TableWriter::fmt(w.availability(), 4),
                   TableWriter::fmt(w.hit_rate(), 4)});
  };
  add("event", "pre [0,120)", epre);
  add("event", "during [120,270)", eduring);
  add("event", "post [300,420)", epost);
  add("graph", "pre [0,120)", gpre);
  add("graph", "during [120,270)", gduring);
  add("graph", "post [300,420)", gpost);
  table.print("resolver caching under scripted churn (3/6 zone subtrees struck, TTL 90s)");
  table.write_csv(hours::bench::csv_path("caching_under_churn"));

  std::printf("event client: submitted %llu delivered %llu deadline-exceeded %llu no-route %llu\n",
              static_cast<unsigned long long>(event1.client.submitted),
              static_cast<unsigned long long>(event1.client.delivered),
              static_cast<unsigned long long>(event1.client.deadline_exceeded),
              static_cast<unsigned long long>(event1.client.no_route));
  std::printf("event faults: kills %llu revivals %llu loss-changes %llu\n",
              static_cast<unsigned long long>(event1.faults.kills),
              static_cast<unsigned long long>(event1.faults.revivals),
              static_cast<unsigned long long>(event1.faults.loss_changes));

  metrics::JsonWriter json;
  json.begin_object();
  json.field("bench", "caching_under_churn");
  json.field("zones", kZones);
  json.field("hosts_per_zone", kHosts);
  json.field("struck_zones", kStruckZones);
  json.field("record_ttl", kRecordTtl);
  json.field("horizon", kHorizon);
  json.field("window", kWindow);
  json.field("queries_per_second", static_cast<std::uint64_t>(qps));
  json.key("event").raw(event1.json);
  json.key("graph").raw(graph.json);
  json.end_object();
  bench::emit_json_report("caching_under_churn", json.str());

  const bool event_dip = eduring.availability() < epre.availability();
  const bool event_recovered = epost.availability() > eduring.availability();
  const bool hit_rate_dip = eduring.hit_rate() < epre.hit_rate();
  std::printf("dip observed: %s  recovered: %s  hit-rate dip: %s  reproducible: %s\n",
              event_dip ? "yes" : "no", event_recovered ? "yes" : "no",
              hit_rate_dip ? "yes" : "no", reproducible ? "yes" : "no");
  return event_dip && event_recovered && reproducible ? 0 : 1;
}
