// Resolver caching under scripted churn — the Section 7 "caching is
// complementary, not a substitute" claim, now a thin wrapper over the
// scenario DSL: the message-level run (re-striking three-zone outage plus a
// lossy-link episode on the event backend) lives in
// scenarios/zone_outage_restrike.json and its oracle mirror (the same
// double strike as instantaneous set_alive toggles on the graph backend) in
// scenarios/graph_strike_baseline.json. The dip/recovery expectations are
// document-side; this binary only keeps the CLI contract (--quick,
// --trace <path>, exit status, caching_under_churn.{json,csv} reports),
// runs each document twice for the byte-reproducibility check, and
// contrasts the attack-phase availability of the two backends.
//
// The first event run carries the requested trace while its repeat does
// not — so the byte-compare also re-checks the invariant that tracing never
// changes a run's decisions.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <string_view>

#include "bench_util.hpp"
#include "metrics/json_writer.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

#ifndef HOURS_SCENARIO_DIR
#define HOURS_SCENARIO_DIR "scenarios"
#endif

namespace {

// The scenario reports are rendered JSON and snapshot::parse_json has no
// float support, so the contrast pulls values out by substring against the
// writer's deterministic formatting.
double phase_value(const std::string& json, std::string_view phase, std::string_view metric) {
  const std::string anchor = "\"" + std::string{phase} + "\":{";
  const auto start = json.find(anchor);
  if (start == std::string::npos) return -1.0;
  const std::string needle = "\"" + std::string{metric} + "\":";
  const auto pos = json.find(needle, start);
  if (pos == std::string::npos) return -1.0;
  return std::strtod(json.c_str() + pos + needle.size(), nullptr);
}

bool load(const char* name, hours::scenario::Scenario& sc) {
  const std::string path = std::string{HOURS_SCENARIO_DIR} + "/" + name;
  if (const auto error = hours::scenario::load_file(path, sc); !error.empty()) {
    std::fprintf(stderr, "caching_under_churn: %s\n", error.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hours;

  const bool quick = bench::quick_mode(argc, argv);
  std::string trace_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view{argv[i]} == "--trace") trace_path = argv[i + 1];
  }

  scenario::Scenario event;
  scenario::Scenario graph;
  if (!load("zone_outage_restrike.json", event) || !load("graph_strike_baseline.json", graph)) {
    return 1;
  }

  scenario::RunOptions options;
  if (quick) options.rate_divisor = 2;  // 4/s -> 2/s, the CI smoke size
  scenario::RunOptions traced = options;
  traced.trace_path = trace_path;

  const auto event_first = scenario::run(event, traced);
  const auto event_second = scenario::run(event, options);
  const auto graph_first = scenario::run(graph, options);
  const auto graph_second = scenario::run(graph, options);
  const bool reproducible =
      event_first.json == event_second.json && graph_first.json == graph_second.json;

  for (const auto& check : event_first.failed) {
    std::fprintf(stderr, "caching_under_churn: FAIL %s: %s\n", event.name.c_str(), check.c_str());
  }
  for (const auto& check : graph_first.failed) {
    std::fprintf(stderr, "caching_under_churn: FAIL %s: %s\n", graph.name.c_str(), check.c_str());
  }

  std::printf("backend  pre_avail  during_avail  post_avail  during_hit_rate\n");
  const std::string* jsons[] = {&event_first.json, &graph_first.json};
  const char* labels[] = {"event", "graph"};
  for (int i = 0; i < 2; ++i) {
    std::printf("%-7s  %.4f     %.4f        %.4f      %.4f\n", labels[i],
                phase_value(*jsons[i], "pre", "availability"),
                phase_value(*jsons[i], "during", "availability"),
                phase_value(*jsons[i], "post", "availability"),
                phase_value(*jsons[i], "during", "hit_rate"));
  }
  std::printf("expectations met: %s  reproducible: %s\n",
              event_first.expectations_met && graph_first.expectations_met ? "yes" : "no",
              reproducible ? "yes" : "no");

  {
    std::ofstream csv{bench::csv_path("caching_under_churn")};
    csv << "backend,pre_availability,during_availability,post_availability,during_hit_rate\n";
    for (int i = 0; i < 2; ++i) {
      csv << labels[i] << "," << metrics::JsonWriter::fixed(phase_value(*jsons[i], "pre", "availability"), 4)
          << "," << metrics::JsonWriter::fixed(phase_value(*jsons[i], "during", "availability"), 4)
          << "," << metrics::JsonWriter::fixed(phase_value(*jsons[i], "post", "availability"), 4)
          << "," << metrics::JsonWriter::fixed(phase_value(*jsons[i], "during", "hit_rate"), 4)
          << "\n";
    }
  }

  const double during_event = phase_value(event_first.json, "during", "availability");
  const double during_graph = phase_value(graph_first.json, "during", "availability");

  metrics::JsonWriter report;
  report.begin_object();
  report.field("bench", "caching_under_churn");
  report.field("quick", quick);
  report.key("event").raw(event_first.json);
  report.key("graph").raw(graph_first.json);
  report.key("contrast").begin_object();
  report.field("during_event", during_event, 4);
  report.field("during_graph", during_graph, 4);
  report.field("graph_minus_event", during_graph - during_event, 4);
  report.end_object();
  report.end_object();
  bench::emit_json_report("caching_under_churn", report.str());

  return event_first.expectations_met && graph_first.expectations_met && reproducible ? 0 : 1;
}
