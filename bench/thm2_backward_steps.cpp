// Theorem 2 / Corollary 1 validation: when greedy forwarding stalls at
// distance d from the OD, an exit node exists within [d, 2d] counter-
// clockwise w.h.p. (probability >= 1 - 2^-k), and for small stalls the
// backward walk is at most ~k steps.
//
// We shut down the OD plus a block of `w` counter-clockwise neighbors and
// measure the backward-step distribution of queries that must cross the
// block's shadow.
#include <cstdio>
#include <vector>

#include "attack/attack.hpp"
#include "bench_util.hpp"
#include "metrics/histogram.hpp"
#include "metrics/table_writer.hpp"
#include "overlay/overlay.hpp"

int main(int argc, char** argv) {
  using namespace hours;
  using metrics::TableWriter;
  const bool quick = bench::quick_mode(argc, argv);
  const std::uint32_t n = 1000;
  const int trials = static_cast<int>(bench::scaled(2000, 200, quick));

  TableWriter table{{"k", "block_width", "exit_found", "mean_backward", "p90_backward",
                     "max_backward", "frac<=k"}};

  for (const std::uint32_t k : {2U, 5U, 10U}) {
    for (const std::uint32_t width : {1U, 2U, 5U, 20U, 100U}) {
      metrics::Histogram backward;
      int found = 0;
      for (int t = 0; t < trials; ++t) {
        overlay::OverlayParams params;
        params.design = overlay::Design::kEnhanced;
        params.k = k;
        params.q = 4;
        params.seed = 0x7472 + static_cast<std::uint64_t>(t);
        overlay::Overlay ov{n, params, overlay::TableStorage::kEager,
                            [](ids::RingIndex) { return 8U; }};
        const ids::RingIndex od = static_cast<ids::RingIndex>(t) % n;
        ov.kill(od);
        attack::strike(ov, attack::plan_neighbor(n, od, width));

        const auto entrance = ov.nearest_alive_cw(od);
        const auto res = ov.forward(*entrance, od);
        if (res.kind == overlay::ExitKind::kNephewExit) {
          ++found;
          backward.add(res.backward_steps);
        }
      }
      table.add_row({TableWriter::fmt(std::uint64_t{k}), TableWriter::fmt(std::uint64_t{width}),
                     TableWriter::fmt(static_cast<double>(found) / trials, 3),
                     TableWriter::fmt(backward.mean(), 2),
                     TableWriter::fmt(backward.quantile(0.9)),
                     TableWriter::fmt(backward.max_value()),
                     TableWriter::fmt(backward.cdf(k), 3)});
    }
  }

  table.print("Theorem 2 / Corollary 1 — backward steps to find an exit (N=1000)");
  table.write_csv(hours::bench::csv_path("thm2_backward_steps"));
  std::printf("\nFor block widths <= k the backward walk is ~0 steps (exits guaranteed by the\n"
              "k certain pointers); for wider blocks it stays bounded and exit probability\n"
              "stays >= 1 - 2^-k per doubling interval.\n");
  return 0;
}
