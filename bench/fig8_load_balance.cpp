// Figure 8: load balancing — distribution of per-node forwarding workload
// (queries forwarded per node) in an N = 50,000 overlay.
//
// Paper reference: the base design leaves a heavy tail (nodes with many
// inbound links forward disproportionately); the enhanced design flattens
// it because larger tables give every node more next-hop choices.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "metrics/histogram.hpp"
#include "metrics/table_writer.hpp"
#include "overlay/overlay.hpp"
#include "rng/xoshiro256.hpp"

namespace {

/// Runs `queries` random queries and returns per-node forwarded counts
/// (intermediate hops only; neither source nor destination is "forwarding").
std::vector<std::uint64_t> workload(const hours::overlay::Overlay& ov, std::uint64_t queries) {
  using namespace hours;
  std::vector<std::uint64_t> counts(ov.size(), 0);
  rng::Xoshiro256 rng{0xF16'8ULL};
  overlay::ForwardOptions opts;
  opts.record_path = true;
  for (std::uint64_t i = 0; i < queries; ++i) {
    const auto from = static_cast<ids::RingIndex>(rng.below(ov.size()));
    const auto to = static_cast<ids::RingIndex>(rng.below(ov.size()));
    const auto res = ov.forward(from, to, opts);
    for (std::size_t h = 1; h + 1 < res.path.size(); ++h) counts[res.path[h]] += 1;
  }
  return counts;
}

void report(const char* design, const std::vector<std::uint64_t>& counts,
            hours::metrics::TableWriter& summary, hours::metrics::Histogram& hist) {
  using hours::metrics::TableWriter;
  for (const auto c : counts) hist.add(c);
  const double mean = hist.mean();
  const auto p999 = hist.quantile(0.999);
  summary.add_row({design, TableWriter::fmt(mean, 2), TableWriter::fmt(hist.quantile(0.5)),
                   TableWriter::fmt(hist.quantile(0.99)), TableWriter::fmt(p999),
                   TableWriter::fmt(hist.max_value()),
                   TableWriter::fmt(static_cast<double>(hist.max_value()) / (mean + 1e-9), 1)});
}

}  // namespace

int main(int argc, char** argv) {
  using hours::metrics::TableWriter;
  const bool quick = hours::bench::quick_mode(argc, argv);
  const auto n = static_cast<std::uint32_t>(hours::bench::scaled(50'000, 5'000, quick));
  const std::uint64_t queries = hours::bench::scaled(1'000'000, 50'000, quick);

  hours::overlay::OverlayParams base;
  base.design = hours::overlay::Design::kBase;
  hours::overlay::OverlayParams enhanced;
  enhanced.design = hours::overlay::Design::kEnhanced;
  enhanced.k = 5;

  const hours::overlay::Overlay base_ov{n, base};
  const hours::overlay::Overlay enh_ov{n, enhanced};

  TableWriter summary{{"design", "mean_load", "p50", "p99", "p99.9", "max", "max/mean"}};
  hours::metrics::Histogram base_hist;
  hours::metrics::Histogram enh_hist;
  report("base", workload(base_ov, queries), summary, base_hist);
  report("enhanced(k=5)", workload(enh_ov, queries), summary, enh_hist);
  summary.print("Figure 8 — per-node forwarding workload (N=" + std::to_string(n) + ", " +
                std::to_string(queries) + " queries)");

  TableWriter dist{{"workload", "base_nodes", "enhanced_nodes"}};
  const std::uint64_t max_bin = std::max(base_hist.max_value(), enh_hist.max_value());
  // Coarse log-spaced rows to keep the table readable.
  for (std::uint64_t v = 0; v <= max_bin;) {
    dist.add_row({TableWriter::fmt(v), TableWriter::fmt(base_hist.count_at(v)),
                  TableWriter::fmt(enh_hist.count_at(v))});
    v = v < 20 ? v + 1 : v + v / 8;
  }
  dist.write_csv(hours::bench::csv_path("fig8_load_balance"));
  std::printf("\nPaper reference: enhanced design shrinks the heavy tail (max/mean drops).\n");
  return 0;
}
