#include <gtest/gtest.h>

#include <set>

#include "attack/attack.hpp"
#include "hierarchy/synthetic.hpp"

namespace hours::attack {
namespace {

overlay::OverlayParams params() {
  overlay::OverlayParams p;
  p.k = 5;
  p.q = 4;
  return p;
}

TEST(PlanRandom, NeverPicksTargetAndIsDistinct) {
  rng::Xoshiro256 rng{7};
  for (int trial = 0; trial < 50; ++trial) {
    const auto set = plan_random(100, 42, 60, rng);
    EXPECT_EQ(set.victims.size(), 60U);
    std::set<ids::RingIndex> unique;
    for (const auto v : set.victims) {
      EXPECT_NE(v, 42U);
      EXPECT_LT(v, 100U);
      unique.insert(v);
    }
    EXPECT_EQ(unique.size(), 60U);
  }
}

TEST(PlanRandom, CoversTheRingUniformly) {
  rng::Xoshiro256 rng{11};
  std::vector<int> counts(50, 0);
  for (int trial = 0; trial < 5000; ++trial) {
    for (const auto v : plan_random(50, 0, 5, rng).victims) counts[v]++;
  }
  EXPECT_EQ(counts[0], 0);  // the target
  for (std::uint32_t i = 1; i < 50; ++i) {
    // Each non-target chosen with probability 5/49.
    EXPECT_NEAR(counts[i], 5000.0 * 5 / 49, 150) << i;
  }
}

TEST(PlanNeighbor, ExactCounterClockwiseBlock) {
  const auto set = plan_neighbor(100, 5, 8);
  ASSERT_EQ(set.victims.size(), 8U);
  EXPECT_EQ(set.victims.front(), 4U);
  EXPECT_EQ(set.victims.back(), 97U);  // wrapped
  for (std::uint32_t s = 0; s < 8; ++s) {
    EXPECT_EQ(set.victims[s], ids::counter_clockwise_step(5, s + 1, 100));
  }
}

TEST(StrikeAndLift, RoundTrip) {
  overlay::Overlay ov{30, params()};
  const auto set = plan_neighbor(30, 10, 6);
  strike(ov, set);
  EXPECT_EQ(ov.alive_count(), 24U);
  for (const auto v : set.victims) EXPECT_FALSE(ov.alive(v));
  lift(ov, set);
  EXPECT_EQ(ov.alive_count(), 30U);
}

TEST(StrikeHierarchy, KillsTargetAndSiblings) {
  hierarchy::SyntheticSpec spec;
  spec.fanout = {50, 10};
  hierarchy::SyntheticHierarchy h{spec, params()};
  rng::Xoshiro256 rng{3};

  HierarchyAttack attack;
  attack.target = {20};
  attack.strategy = Strategy::kNeighbor;
  attack.sibling_count = 12;

  const auto set = strike_hierarchy(h, attack, rng);
  EXPECT_FALSE(h.node_alive({20}));
  EXPECT_EQ(h.overlay_of({}).alive_count(), 50U - 13U);

  lift_hierarchy(h, attack, set);
  EXPECT_TRUE(h.node_alive({20}));
  EXPECT_EQ(h.overlay_of({}).alive_count(), 50U);
}

TEST(StrikeHierarchy, CanSpareTheTarget) {
  hierarchy::SyntheticSpec spec;
  spec.fanout = {20, 4};
  hierarchy::SyntheticHierarchy h{spec, params()};
  rng::Xoshiro256 rng{3};

  HierarchyAttack attack;
  attack.target = {7};
  attack.strategy = Strategy::kRandom;
  attack.sibling_count = 5;
  attack.include_target = false;

  (void)strike_hierarchy(h, attack, rng);
  EXPECT_TRUE(h.node_alive({7}));
  EXPECT_EQ(h.overlay_of({}).alive_count(), 15U);
}

}  // namespace
}  // namespace hours::attack
