// The public HoursSystem facade: admission, queries, attacks, bootstrap
// cache.
#include <gtest/gtest.h>

#include "hours/hours.hpp"

namespace hours {
namespace {

HoursConfig small_config() {
  HoursConfig cfg;
  cfg.overlay.k = 3;
  cfg.overlay.q = 2;
  return cfg;
}

// HoursSystem is intentionally pinned (the router holds a reference to the
// hierarchy), so tests populate it in place.
void populate(HoursSystem& sys) {
  for (const char* zone : {"ucla", "mit", "cmu", "gatech", "uw"}) {
    EXPECT_TRUE(sys.admit(zone).ok());
    for (const char* dept : {"cs", "ee", "math"}) {
      EXPECT_TRUE(sys.admit(std::string{dept} + "." + zone).ok());
      for (const char* host : {"www", "ns1"}) {
        EXPECT_TRUE(sys.admit(std::string{host} + "." + dept + "." + zone).ok());
      }
    }
  }
}

struct SmallSystem {
  HoursSystem sys{small_config()};
  SmallSystem() { populate(sys); }
};

TEST(HoursApi, AdmissionValidation) {
  HoursSystem sys;
  EXPECT_FALSE(sys.admit("a..b").ok());
  EXPECT_FALSE(sys.admit("www.unknown").ok());
  EXPECT_TRUE(sys.admit("zone").ok());
  EXPECT_FALSE(sys.admit("zone").ok());
}

TEST(HoursApi, HealthyQueriesUseTreePath) {
  SmallSystem wrapper;
  HoursSystem& sys = wrapper.sys;
  const auto r = sys.query("www.cs.ucla");
  ASSERT_TRUE(r.delivered);
  EXPECT_EQ(r.hops, 3U);
  EXPECT_EQ(r.hierarchical_hops, 3U);
  EXPECT_EQ(r.overlay_hops, 0U);
}

TEST(HoursApi, RecordPathNamesNodes) {
  SmallSystem wrapper;
  HoursSystem& sys = wrapper.sys;
  const auto r = sys.query("www.cs.ucla", /*record_path=*/true);
  ASSERT_TRUE(r.delivered);
  ASSERT_EQ(r.path.size(), 4U);
  EXPECT_EQ(r.path.front(), ".");
  EXPECT_EQ(r.path.back(), "www.cs.ucla");
}

TEST(HoursApi, QueryUnknownNameFails) {
  SmallSystem wrapper;
  HoursSystem& sys = wrapper.sys;
  const auto r = sys.query("nonexistent.cs.ucla");
  EXPECT_FALSE(r.delivered);
  EXPECT_EQ(r.failure, util::Error::Code::kNotFound);
}

TEST(HoursApi, DetourAroundDeadZone) {
  SmallSystem wrapper;
  HoursSystem& sys = wrapper.sys;
  ASSERT_TRUE(sys.set_alive("ucla", false).ok());
  const auto r = sys.query("www.cs.ucla");
  ASSERT_TRUE(r.delivered);
  EXPECT_GT(r.overlay_hops + r.inter_overlay_hops, 0U);

  // The unprotected path would be dead: the destination's ancestor is down.
  EXPECT_FALSE(sys.query("ucla").delivered);
}

TEST(HoursApi, DeadDestinationReportsDead) {
  SmallSystem wrapper;
  HoursSystem& sys = wrapper.sys;
  ASSERT_TRUE(sys.set_alive("www.cs.ucla", false).ok());
  const auto r = sys.query("www.cs.ucla");
  EXPECT_FALSE(r.delivered);
  EXPECT_EQ(r.failure, util::Error::Code::kDead);
}

TEST(HoursApi, BootstrapCacheSurvivesRootDeath) {
  SmallSystem wrapper;
  HoursSystem& sys = wrapper.sys;
  // Populate the cache with a successful query.
  ASSERT_TRUE(sys.query("cs.mit").delivered);

  ASSERT_TRUE(sys.set_alive(".", false).ok());

  // Same subtree as the cached node: climbs to "mit" and descends.
  const auto near = sys.query("www.ee.mit");
  EXPECT_TRUE(near.delivered);
  EXPECT_TRUE(near.used_bootstrap_cache);

  // Different subtree: climbs to "mit", crosses the level-1 overlay.
  const auto far = sys.query("www.cs.ucla");
  EXPECT_TRUE(far.delivered);
  EXPECT_TRUE(far.used_bootstrap_cache);
}

TEST(HoursApi, QueryFromExplicitStart) {
  SmallSystem wrapper;
  HoursSystem& sys = wrapper.sys;
  ASSERT_TRUE(sys.set_alive(".", false).ok());
  const auto r = sys.query_from("gatech", "www.cs.gatech");
  ASSERT_TRUE(r.delivered);
  const auto sideways = sys.query_from("mit", "cs.ucla");
  // mit is a sibling of ucla: the level-1 overlay carries the query across.
  EXPECT_TRUE(sideways.delivered);
  EXPECT_GT(sideways.overlay_hops, 0U);
}

TEST(HoursApi, RemoveSubtreeThenQueryFails) {
  SmallSystem wrapper;
  HoursSystem& sys = wrapper.sys;
  ASSERT_TRUE(sys.remove("cs.ucla").ok());
  EXPECT_FALSE(sys.query("www.cs.ucla").delivered);
  EXPECT_TRUE(sys.query("ee.ucla").delivered);  // membership refresh keeps the rest working
}

TEST(HoursApi, ReviveRestoresTreePath) {
  SmallSystem wrapper;
  HoursSystem& sys = wrapper.sys;
  ASSERT_TRUE(sys.set_alive("ucla", false).ok());
  ASSERT_TRUE(sys.query("www.cs.ucla").delivered);
  ASSERT_TRUE(sys.set_alive("ucla", true).ok());
  const auto r = sys.query("www.cs.ucla");
  ASSERT_TRUE(r.delivered);
  EXPECT_EQ(r.hops, 3U);
  EXPECT_EQ(r.overlay_hops, 0U);
}

TEST(HoursApi, StrikeAndLiftAttack) {
  SmallSystem wrapper;
  HoursSystem& sys = wrapper.sys;

  // Neighbor attack on "ucla" plus 2 of its 4 siblings.
  ASSERT_TRUE(sys.strike("ucla", attack::Strategy::kNeighbor, 2).ok());
  EXPECT_FALSE(sys.hierarchy().is_alive(naming::Name::parse("ucla").value()).value());
  // HOURS still serves the subtree.
  EXPECT_TRUE(sys.query("www.cs.ucla").delivered);
  // Double strike rejected.
  EXPECT_FALSE(sys.strike("ucla", attack::Strategy::kRandom, 1).ok());

  ASSERT_TRUE(sys.lift_attack("ucla").ok());
  EXPECT_TRUE(sys.hierarchy().is_alive(naming::Name::parse("ucla").value()).value());
  const auto r = sys.query("www.cs.ucla");
  ASSERT_TRUE(r.delivered);
  EXPECT_EQ(r.overlay_hops, 0U);  // clean tree path again
  EXPECT_FALSE(sys.lift_attack("ucla").ok());  // nothing active anymore
}

TEST(HoursApi, StrikeValidation) {
  SmallSystem wrapper;
  HoursSystem& sys = wrapper.sys;
  EXPECT_FALSE(sys.strike(".", attack::Strategy::kNeighbor, 1).ok());
  EXPECT_FALSE(sys.strike("ghost", attack::Strategy::kNeighbor, 1).ok());
  EXPECT_FALSE(sys.strike("ucla", attack::Strategy::kNeighbor, 99).ok());
  EXPECT_FALSE(sys.lift_attack("ucla").ok());
}

TEST(HoursApi, StrikeVictimsSurviveMembershipChanges) {
  SmallSystem wrapper;
  HoursSystem& sys = wrapper.sys;
  ASSERT_TRUE(sys.strike("mit", attack::Strategy::kRandom, 1).ok());
  // Admission shifts ring indices; victims are pinned by name.
  ASSERT_TRUE(sys.admit("stanford").ok());
  ASSERT_TRUE(sys.lift_attack("mit").ok());
  for (const char* zone : {"ucla", "mit", "cmu", "gatech", "uw", "stanford"}) {
    EXPECT_TRUE(sys.hierarchy().is_alive(naming::Name::parse(zone).value()).value()) << zone;
  }
}

}  // namespace
}  // namespace hours
