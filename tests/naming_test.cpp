#include <gtest/gtest.h>

#include "naming/name.hpp"

namespace hours::naming {
namespace {

TEST(Name, ParsePresentationOrder) {
  auto r = Name::parse("www.cs.ucla");
  ASSERT_TRUE(r.ok());
  const Name& n = r.value();
  EXPECT_EQ(n.depth(), 3U);
  // Root-first internal order.
  EXPECT_EQ(n.label(1), "ucla");
  EXPECT_EQ(n.label(2), "cs");
  EXPECT_EQ(n.label(3), "www");
}

TEST(Name, ParseRoot) {
  auto empty = Name::parse("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().is_root());

  auto dot = Name::parse(".");
  ASSERT_TRUE(dot.ok());
  EXPECT_TRUE(dot.value().is_root());
}

TEST(Name, ParseRejectsEmptyLabels) {
  EXPECT_FALSE(Name::parse("a..b").ok());
  EXPECT_FALSE(Name::parse(".a").ok());
  EXPECT_FALSE(Name::parse("a.").ok());
}

TEST(Name, ToStringRoundTrip) {
  const auto n = Name::parse("leaf.mid.top").value();
  EXPECT_EQ(n.to_string(), "leaf.mid.top");
  EXPECT_EQ(Name{}.to_string(), ".");
}

TEST(Name, ParentChain) {
  const auto n = Name::parse("a.b.c").value();
  EXPECT_EQ(n.parent().to_string(), "b.c");
  EXPECT_EQ(n.parent().parent().to_string(), "c");
  EXPECT_TRUE(n.parent().parent().parent().is_root());
}

TEST(Name, ChildExtends) {
  const auto n = Name::parse("b.c").value();
  EXPECT_EQ(n.child("a").to_string(), "a.b.c");
  EXPECT_EQ(Name{}.child("top").to_string(), "top");
}

TEST(Name, AncestorAt) {
  const auto n = Name::parse("a.b.c").value();
  EXPECT_TRUE(n.ancestor_at(0).is_root());
  EXPECT_EQ(n.ancestor_at(1).to_string(), "c");
  EXPECT_EQ(n.ancestor_at(2).to_string(), "b.c");
  EXPECT_EQ(n.ancestor_at(3), n);
}

TEST(Name, PrefixRelations) {
  const auto anc = Name::parse("b.c").value();
  const auto desc = Name::parse("a.b.c").value();
  const auto other = Name::parse("a.x.c").value();

  EXPECT_TRUE(anc.is_prefix_of(desc));
  EXPECT_TRUE(anc.is_ancestor_of(desc));
  EXPECT_FALSE(anc.is_ancestor_of(anc));
  EXPECT_TRUE(anc.is_prefix_of(anc));
  EXPECT_FALSE(anc.is_prefix_of(other));
  EXPECT_TRUE(Name{}.is_prefix_of(desc));  // root prefixes everything
}

TEST(Name, OrderingIsDeterministic) {
  const auto a = Name::parse("a.z").value();
  const auto b = Name::parse("b.z").value();
  EXPECT_NE(a, b);
  EXPECT_TRUE((a < b) != (b < a));
}

}  // namespace
}  // namespace hours::naming
