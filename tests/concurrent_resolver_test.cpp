// ConcurrentResolver: the sharded RCU-published answer cache in front of
// HoursSystem. Two kinds of coverage: (a) oracle equality — a
// single-threaded trace through ConcurrentResolver produces exactly the
// hit/miss/failure counts Resolver produces, whenever capacity never binds;
// (b) TSan-exercised concurrency — lock-free readers racing inserts,
// evictions and TTL expiry (the `unit` label runs under the TSan CI job).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "hours/concurrent_resolver.hpp"
#include "hours/resolver.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256.hpp"

namespace hours {
namespace {

struct Fixture {
  HoursSystem sys;
  std::vector<std::string> names;  ///< every admitted host with a record
  Fixture() {
    for (const char* zone : {"red", "green", "blue", "cyan"}) {
      sys.admit(zone);
      for (const char* host : {"a", "b", "c"}) {
        const std::string n = std::string{host} + "." + zone;
        sys.admit(n);
        sys.add_record(n, store::Record{"A", "10.0.0." + std::string{host}, 100});
        names.push_back(n);
      }
    }
  }
};

TEST(ConcurrentResolver, ResolveCachesAndExpiresLikeResolver) {
  Fixture f;
  ConcurrentResolver resolver{f.sys};

  const auto first = resolver.resolve("a.red", 0);
  ASSERT_TRUE(first.answered);
  EXPECT_FALSE(first.from_cache);
  EXPECT_GT(first.hops, 0U);

  const auto second = resolver.resolve("a.red", 50);  // within ttl=100
  ASSERT_TRUE(second.answered);
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(second.hops, 0U);
  EXPECT_EQ(second.records, first.records);

  const auto third = resolver.resolve("a.red", 100);  // expiry is exclusive
  ASSERT_TRUE(third.answered);
  EXPECT_FALSE(third.from_cache);

  EXPECT_EQ(resolver.stats().cache_hits, 1U);
  EXPECT_EQ(resolver.stats().cache_misses, 2U);
}

TEST(ConcurrentResolver, SingleThreadedTraceMatchesResolverOracle) {
  // Drive an identical pseudo-random trace (names, times, an outage window)
  // through Resolver and ConcurrentResolver. Capacity never binds, so the
  // shard-local eviction difference is out of play and every counter must
  // agree exactly.
  Fixture oracle_fixture;
  Fixture subject_fixture;
  Resolver oracle{oracle_fixture.sys, /*capacity=*/1024};
  ConcurrentResolver subject{subject_fixture.sys, /*capacity=*/1024, /*shard_count=*/4};

  const auto drive = [&](std::uint64_t step, HoursSystem& sys,
                         const std::vector<std::string>& names,
                         auto&& resolve) {
    rng::Xoshiro256 g{rng::mix64(0xACE5, step)};
    if (step == 40) sys.set_alive("a.cyan", false);
    if (step == 120) sys.set_alive("a.cyan", true);
    const auto& name = names[g.below(names.size())];
    // Time advances slowly relative to the 100s TTL, then jumps past it
    // twice so expiry paths run.
    const std::uint64_t now = step + (step > 90 ? 200 : 0) + (step > 160 ? 400 : 0);
    resolve(name, now);
  };
  for (std::uint64_t step = 0; step < 220; ++step) {
    drive(step, oracle_fixture.sys, oracle_fixture.names,
          [&](const std::string& name, std::uint64_t now) { (void)oracle.resolve(name, now); });
    drive(step, subject_fixture.sys, subject_fixture.names,
          [&](const std::string& name, std::uint64_t now) { (void)subject.resolve(name, now); });
  }

  EXPECT_EQ(subject.stats().cache_hits, oracle.stats().cache_hits);
  EXPECT_EQ(subject.stats().cache_misses, oracle.stats().cache_misses);
  EXPECT_EQ(subject.stats().failures, oracle.stats().failures);
  EXPECT_EQ(subject.stats().evictions, 0U);
  EXPECT_EQ(oracle.stats().evictions, 0U);
  EXPECT_GT(subject.stats().cache_hits, 0U);   // the trace exercised every path
  EXPECT_GT(subject.stats().failures, 0U);
}

TEST(ConcurrentResolver, BatchMatchesSingly) {
  Fixture batched_fixture;
  Fixture single_fixture;
  ConcurrentResolver batched{batched_fixture.sys};
  ConcurrentResolver singly{single_fixture.sys};

  const std::vector<std::string> wave1 = {"a.red", "b.red", "a.green", "missing.red", "a.red"};
  const auto results1 = batched.resolve_batch(wave1, 0);
  std::vector<ResolveResult> expected1;
  for (const auto& name : wave1) expected1.push_back(singly.resolve(name, 0));
  ASSERT_EQ(results1.size(), expected1.size());
  for (std::size_t i = 0; i < results1.size(); ++i) {
    EXPECT_EQ(results1[i].answered, expected1[i].answered) << wave1[i];
    EXPECT_EQ(results1[i].records, expected1[i].records) << wave1[i];
  }
  // The duplicate "a.red" in one batch: first instance misses and
  // publishes, but the whole batch was probed before the authority pass, so
  // whether the second instance counts as hit or miss is the double-check's
  // business. Totals across hit+miss must still match the serial driver.
  const auto batch_stats = batched.stats();
  const auto single_stats = singly.stats();
  EXPECT_EQ(batch_stats.cache_hits + batch_stats.cache_misses,
            single_stats.cache_hits + single_stats.cache_misses);
  EXPECT_EQ(batch_stats.failures, single_stats.failures);

  // A second identical wave is all hits for both.
  const auto results2 = batched.resolve_batch(wave1, 1);
  for (std::size_t i = 0; i < wave1.size(); ++i) {
    if (wave1[i] == "missing.red") continue;
    EXPECT_TRUE(results2[i].from_cache) << wave1[i];
  }
}

TEST(ConcurrentResolver, CachedNamesRespectsShardCapacityBound) {
  Fixture f;
  // capacity 6 over 3 shards -> per-shard cap 2, global bound 6.
  ConcurrentResolver resolver{f.sys, /*capacity=*/6, /*shard_count=*/3};
  for (int round = 0; round < 3; ++round) {
    for (const auto& name : f.names) {
      (void)resolver.resolve(name, static_cast<std::uint64_t>(round));
    }
  }
  EXPECT_LE(resolver.cached_names(), 6U);
  EXPECT_GT(resolver.stats().evictions, 0U);
}

TEST(ConcurrentResolver, EvictionPrefersExpiredThenEarliestExpiryPerShard) {
  Fixture f;
  // One shard so the policy is observable without hash bucketing.
  ConcurrentResolver resolver{f.sys, /*capacity=*/3, /*shard_count=*/1};
  resolver.insert("short", 0, {store::Record{"A", "1", 10}});
  resolver.insert("mid", 0, {store::Record{"A", "2", 50}});
  resolver.insert("long", 0, {store::Record{"A", "3", 100}});
  std::vector<store::Record> out;

  // At t=20 "short" is expired; inserting under pressure drops exactly it.
  resolver.insert("fresh", 20, {store::Record{"A", "4", 100}});
  EXPECT_EQ(resolver.cached_names(), 3U);
  EXPECT_EQ(resolver.stats().evictions, 1U);
  EXPECT_FALSE(resolver.peek("short", 20, &out));
  EXPECT_TRUE(resolver.peek("mid", 20, &out));
  EXPECT_TRUE(resolver.peek("long", 20, &out));

  // Nothing expired now: the entry closest to expiry ("mid") is the victim.
  resolver.insert("newest", 20, {store::Record{"A", "5", 100}});
  EXPECT_EQ(resolver.stats().evictions, 2U);
  EXPECT_FALSE(resolver.peek("mid", 20, &out));
  EXPECT_TRUE(resolver.peek("long", 20, &out));
  EXPECT_TRUE(resolver.peek("newest", 20, &out));
}

TEST(ConcurrentResolver, ConcurrentReadersDuringInsertsAndEvictions) {
  // Readers spin on peek/resolve while writer threads churn the cache with
  // inserts that force both TTL expiry sweeps and earliest-expiry eviction.
  // Correctness here is (a) no torn/stale-freed snapshots — TSan and ASan
  // enforce the memory side — and (b) every answered result carries the
  // records that were published for that name.
  Fixture f;
  ConcurrentResolver resolver{f.sys, /*capacity=*/16, /*shard_count=*/4};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> clock{0};
  std::atomic<std::uint64_t> answered{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      rng::Xoshiro256 g{rng::mix64(0x5EED, static_cast<std::uint64_t>(t))};
      std::vector<store::Record> out;
      while (!stop.load(std::memory_order_acquire)) {
        const std::uint64_t now = clock.load(std::memory_order_relaxed);
        const auto& name = f.names[g.below(f.names.size())];
        if (resolver.peek(name, now, &out)) {
          ASSERT_FALSE(out.empty());
          ASSERT_EQ(out[0].type, "A");
          answered.fetch_add(1, std::memory_order_relaxed);
        }
        const auto result = resolver.resolve(name, now);
        if (result.answered) {
          ASSERT_EQ(result.records.size(), 1U);
          answered.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&, t] {
      rng::Xoshiro256 g{rng::mix64(0xF00D, static_cast<std::uint64_t>(t))};
      for (int i = 0; i < 2'000; ++i) {
        const std::uint64_t now = clock.fetch_add(1, std::memory_order_relaxed);
        // Short TTLs guarantee expiry sweeps; synthetic names guarantee
        // capacity pressure beyond the fixture's 12 hosts.
        const std::string name = "synthetic-" + std::to_string(g.below(64));
        resolver.insert(name, now,
                        {store::Record{"A", std::to_string(i), 1 + g.below(8)}});
      }
    });
  }
  for (auto& writer : writers) writer.join();
  stop.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();

  EXPECT_GT(answered.load(), 0U);
  EXPECT_LE(resolver.cached_names(), 16U);
  EXPECT_GT(resolver.stats().evictions, 0U);
}

TEST(ConcurrentResolver, ConcurrentResolversAgreeOnRecords) {
  // Many threads resolving the same working set: every answered resolve
  // must return the one true record for its name, whether it was served
  // from the cache or from the (mutex-serialized) hierarchy.
  Fixture f;
  ConcurrentResolver resolver{f.sys, /*capacity=*/64, /*shard_count=*/8};
  std::atomic<std::uint64_t> total{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      rng::Xoshiro256 g{rng::mix64(0xBEEF, static_cast<std::uint64_t>(t))};
      for (int i = 0; i < 500; ++i) {
        const auto& name = f.names[g.below(f.names.size())];
        const auto result = resolver.resolve(name, static_cast<std::uint64_t>(i / 8));
        ASSERT_TRUE(result.answered) << name;
        ASSERT_EQ(result.records.size(), 1U) << name;
        // The record value encodes the host letter the fixture gave it.
        ASSERT_EQ(result.records[0].value, "10.0.0." + name.substr(0, 1)) << name;
        total.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto stats = resolver.stats();
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, total.load());
  EXPECT_EQ(stats.failures, 0U);
}

TEST(ConcurrentResolver, ConcurrentBatchesDrainEveryName) {
  Fixture f;
  ConcurrentResolver resolver{f.sys, /*capacity=*/64, /*shard_count=*/4};
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> answered{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        const auto results = resolver.resolve_batch(f.names, static_cast<std::uint64_t>(i));
        for (const auto& result : results) {
          ASSERT_TRUE(result.answered);
          answered.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(answered.load(), 4U * 50U * f.names.size());
  const auto stats = resolver.stats();
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, answered.load());
}

}  // namespace
}  // namespace hours
