// Focused tests for corners the main suites leave untouched: logging
// levels, resolve_paths caps, zero-jitter transport, facade trace output,
// and misc accessor behavior.
#include <gtest/gtest.h>

#include "hierarchy/named.hpp"
#include "hours/hours.hpp"
#include "sim/transport.hpp"
#include "util/log.hpp"

namespace hours {
namespace {

naming::Name name(std::string_view text) { return naming::Name::parse(text).value(); }

TEST(Log, LevelThresholding) {
  const auto saved = util::log_level();
  util::set_log_level(util::LogLevel::kError);
  EXPECT_EQ(util::log_level(), util::LogLevel::kError);
  // Below-threshold logging must be a no-op (and must not crash with
  // format arguments).
  HOURS_LOG_DEBUG("dropped %d", 1);
  HOURS_LOG_WARN("dropped %s", "too");
  util::set_log_level(util::LogLevel::kOff);
  HOURS_LOG_ERROR("also dropped %d", 2);
  util::set_log_level(saved);
}

TEST(ResolvePaths, HonorsMaxPathsCap) {
  overlay::OverlayParams params;
  params.k = 2;
  params.q = 1;
  hierarchy::NamedHierarchy h{params};
  for (const char* z : {"a", "b", "c", "d", "e"}) ASSERT_TRUE(h.admit(name(z)).ok());
  ASSERT_TRUE(h.admit(name("n.a")).ok());
  // Four extra parents: five paths total.
  for (const char* z : {"b", "c", "d", "e"}) {
    ASSERT_TRUE(h.admit_secondary(name("n.a"), name(z)).ok());
  }
  EXPECT_EQ(h.resolve_paths(name("n.a")).size(), 5U);
  EXPECT_EQ(h.resolve_paths(name("n.a"), 3).size(), 3U);
  EXPECT_EQ(h.resolve_paths(name("n.a"), 1).size(), 1U);
  EXPECT_TRUE(h.resolve_paths(name("ghost")).empty());
}

TEST(ResolvePaths, MultiLevelMeshMultiplies) {
  overlay::OverlayParams params;
  params.k = 2;
  params.q = 1;
  hierarchy::NamedHierarchy h{params};
  for (const char* z : {"p1", "p2"}) ASSERT_TRUE(h.admit(name(z)).ok());
  ASSERT_TRUE(h.admit(name("m.p1")).ok());
  ASSERT_TRUE(h.admit_secondary(name("m.p1"), name("p2")).ok());
  ASSERT_TRUE(h.admit(name("q.m.p1")).ok());
  // Leaf inherits both of its parent's paths.
  EXPECT_EQ(h.resolve_paths(name("q.m.p1")).size(), 2U);
}

TEST(Transport, FixedLatencyConfiguration) {
  sim::Simulator simulator;
  sim::TransportConfig cfg;
  cfg.latency_min = 25;
  cfg.latency_max = 25;  // degenerate jitter window
  cfg.ack_timeout = 60;
  sim::Transport<int> transport{simulator, cfg, 2, 1};
  sim::Ticks delivered_at = 0;
  transport.set_handler([&](std::uint32_t, const sim::Transport<int>::Envelope&) {
    delivered_at = simulator.now();
  });
  transport.post(0, 1, 7);
  simulator.run();
  EXPECT_EQ(delivered_at, 25U);
}

TEST(Facade, QueryFromRecordsNamedPath) {
  HoursConfig cfg;
  cfg.overlay.k = 2;
  cfg.overlay.q = 1;
  HoursSystem sys{cfg};
  for (const char* z : {"x", "y"}) {
    sys.admit(z);
    sys.admit(std::string{"s."} + z);
  }
  const auto r = sys.query_from("x", "s.y", /*record_path=*/true);
  ASSERT_TRUE(r.delivered);
  ASSERT_GE(r.path.size(), 2U);
  EXPECT_EQ(r.path.front(), "x");
  EXPECT_EQ(r.path.back(), "s.y");
}

TEST(Facade, LookupOnMeshNodeReturnsRecordsViaEitherPath) {
  HoursConfig cfg;
  cfg.overlay.k = 2;
  cfg.overlay.q = 1;
  HoursSystem sys{cfg};
  for (const char* z : {"east", "west"}) sys.admit(z);
  sys.admit("svc.east");
  ASSERT_TRUE(sys.hierarchy().admit_secondary(name("svc.east"), name("west")).ok());
  ASSERT_TRUE(sys.add_record("svc.east", store::Record{"A", "10.0.0.1", 60}).ok());

  // Primary subtree annihilated: only the mesh path remains.
  sys.set_alive("east", false);
  const auto r = sys.lookup("svc.east");
  ASSERT_TRUE(r.query.delivered);
  ASSERT_EQ(r.records.size(), 1U);
  EXPECT_EQ(r.records[0].value, "10.0.0.1");
}

TEST(Facade, PathAttemptsReportedForMeshFallback) {
  HoursConfig cfg;
  cfg.overlay.k = 2;
  cfg.overlay.q = 1;
  HoursSystem sys{cfg};
  for (const char* z : {"east", "west", "north"}) {
    sys.admit(z);
    sys.admit(std::string{"s1."} + z);
    sys.admit(std::string{"s2."} + z);
  }
  ASSERT_TRUE(sys.hierarchy().admit_secondary(name("s1.east"), name("west")).ok());
  // Kill the entire east sibling set except the mesh node: the primary path
  // fails outright (no alive entrance), forcing the second attempt.
  sys.set_alive("east", false);
  sys.set_alive("s2.east", false);
  const auto r = sys.query("s1.east");
  ASSERT_TRUE(r.delivered);
  // Depending on draw, either the primary detour or the secondary path
  // served it; if the primary failed, attempts reflect the fallback.
  EXPECT_GE(r.path_attempts, 1U);
  EXPECT_LE(r.path_attempts, 2U);
}

}  // namespace
}  // namespace hours
