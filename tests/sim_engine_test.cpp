#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace hours::sim {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(30, [&] { order.push_back(3); });
  sim.schedule(10, [&] { order.push_back(1); });
  sim.schedule(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30U);
}

TEST(Simulator, FifoAmongSameInstant) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(5, [&] { order.push_back(1); });
  sim.schedule(5, [&] { order.push_back(2); });
  sim.schedule(5, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  std::vector<Ticks> times;
  sim.schedule(10, [&] {
    times.push_back(sim.now());
    sim.schedule(5, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<Ticks>{10, 15}));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const auto id = sim.schedule(10, [&] { ran = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.pending(), 0U);
}

TEST(Simulator, CancelIsIdempotentAndSafeAfterRun) {
  Simulator sim;
  const auto id = sim.schedule(1, [] {});
  sim.run();
  sim.cancel(id);  // already executed; must not break later events
  bool ran = false;
  sim.schedule(1, [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(Simulator, RunWithTimeLimit) {
  Simulator sim;
  int count = 0;
  sim.schedule(10, [&] { ++count; });
  sim.schedule(20, [&] { ++count; });
  sim.schedule(100, [&] { ++count; });

  const auto executed = sim.run(50);
  EXPECT_EQ(executed, 2U);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), 50U);  // clock advances to the limit
  sim.run();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, PeriodicSelfRescheduling) {
  Simulator sim;
  int ticks = 0;
  std::function<void()> beat = [&] {
    ++ticks;
    if (ticks < 5) sim.schedule(10, beat);
  };
  sim.schedule(10, beat);
  sim.run();
  EXPECT_EQ(ticks, 5);
  EXPECT_EQ(sim.now(), 50U);
}

TEST(Simulator, MaxEventsGuardsAgainstRunaway) {
  Simulator sim;
  std::function<void()> forever = [&] { sim.schedule(1, forever); };
  sim.schedule(1, forever);
  const auto executed = sim.run(0, 1000);
  EXPECT_EQ(executed, 1000U);
}

}  // namespace
}  // namespace hours::sim
