#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace hours::sim {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(30, [&] { order.push_back(3); });
  sim.schedule(10, [&] { order.push_back(1); });
  sim.schedule(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30U);
}

TEST(Simulator, FifoAmongSameInstant) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(5, [&] { order.push_back(1); });
  sim.schedule(5, [&] { order.push_back(2); });
  sim.schedule(5, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  std::vector<Ticks> times;
  sim.schedule(10, [&] {
    times.push_back(sim.now());
    sim.schedule(5, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<Ticks>{10, 15}));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const auto id = sim.schedule(10, [&] { ran = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.pending(), 0U);
}

TEST(Simulator, CancelIsIdempotentAndSafeAfterRun) {
  Simulator sim;
  const auto id = sim.schedule(1, [] {});
  sim.run();
  sim.cancel(id);  // already executed; must not break later events
  bool ran = false;
  sim.schedule(1, [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(Simulator, CancelOfExecutedIdDoesNotCorruptPending) {
  // Regression: cancelling an already-executed id used to sit in the
  // cancelled list forever and permanently deflate pending().
  Simulator sim;
  const auto id = sim.schedule(1, [] {});
  sim.run();
  sim.cancel(id);
  sim.cancel(id);  // twice, for good measure
  EXPECT_EQ(sim.pending(), 0U);
  sim.schedule(1, [] {});
  EXPECT_EQ(sim.pending(), 1U);
  sim.run();
  EXPECT_EQ(sim.pending(), 0U);
}

TEST(Simulator, CancelOfUnknownIdIsNoOp) {
  Simulator sim;
  sim.cancel(12345);  // never issued
  sim.schedule(1, [] {});
  EXPECT_EQ(sim.pending(), 1U);
  EXPECT_EQ(sim.run(), 1U);
}

TEST(Simulator, CancelDoesNotRecycleOntoLaterEvents) {
  // A cancelled-but-executed id must never suppress a later event that
  // happens to pop after the cancel call.
  Simulator sim;
  int ran = 0;
  const auto early = sim.schedule(1, [&] { ++ran; });
  sim.run();
  sim.cancel(early);
  const auto late = sim.schedule(1, [&] { ++ran; });
  (void)late;
  sim.run();
  EXPECT_EQ(ran, 2);
}

TEST(Simulator, ManyCancellationsStayConsistent) {
  // Mixed live/stale cancels at scale: pending() must track exactly the
  // events that will still execute.
  Simulator sim;
  int executed = 0;
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(sim.schedule(static_cast<Ticks>(i + 1), [&] { ++executed; }));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) sim.cancel(ids[i]);   // evens
  for (std::size_t i = 0; i < ids.size(); i += 2) sim.cancel(ids[i]);   // repeats
  EXPECT_EQ(sim.pending(), 500U);
  sim.run();
  EXPECT_EQ(executed, 500);
  EXPECT_EQ(sim.pending(), 0U);
  for (const auto id : ids) sim.cancel(id);  // all stale now
  EXPECT_EQ(sim.pending(), 0U);
}

TEST(Simulator, RunWithTimeLimit) {
  Simulator sim;
  int count = 0;
  sim.schedule(10, [&] { ++count; });
  sim.schedule(20, [&] { ++count; });
  sim.schedule(100, [&] { ++count; });

  const auto executed = sim.run(50);
  EXPECT_EQ(executed, 2U);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), 50U);  // clock advances to the limit
  sim.run();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, PeriodicSelfRescheduling) {
  Simulator sim;
  int ticks = 0;
  std::function<void()> beat = [&] {
    ++ticks;
    if (ticks < 5) sim.schedule(10, beat);
  };
  sim.schedule(10, beat);
  sim.run();
  EXPECT_EQ(ticks, 5);
  EXPECT_EQ(sim.now(), 50U);
}

TEST(Simulator, MaxEventsGuardsAgainstRunaway) {
  Simulator sim;
  std::function<void()> forever = [&] { sim.schedule(1, forever); };
  sim.schedule(1, forever);
  const auto executed = sim.run(0, 1000);
  EXPECT_EQ(executed, 1000U);
}

TEST(Simulator, DescribedEventsAreInspectable) {
  Simulator sim;
  sim.schedule(10, snapshot::Described{snapshot::kFaultAction, {7}}, [] {});
  sim.schedule(5, [] {});  // opaque
  const auto pending = sim.pending_events();
  ASSERT_EQ(pending.size(), 2U);
  EXPECT_EQ(pending[0].at, 5U);
  EXPECT_EQ(pending[0].desc.kind, snapshot::kOpaque);
  EXPECT_EQ(pending[1].at, 10U);
  EXPECT_EQ(pending[1].desc.kind, snapshot::kFaultAction);
  EXPECT_EQ(pending[1].desc.args, (std::vector<std::uint64_t>{7}));
  EXPECT_EQ(sim.opaque_event_ids(), (std::vector<std::uint64_t>{2}));
}

TEST(Simulator, RestoreUnderOriginalIdsKeepsFifoOrder) {
  // Three same-instant events: the FIFO tie-break follows the schedule-time
  // ids, so a restore that re-instates them under their ORIGINAL ids — in
  // any insertion order — must replay them in the original order.
  Simulator original;
  std::vector<int> order;
  for (std::uint64_t i = 0; i < 3; ++i) {
    original.schedule(50, snapshot::Described{snapshot::kFaultAction, {i}}, [] {});
  }
  const auto saved = original.pending_events();
  const auto saved_next_id = original.next_id();
  const auto saved_now = original.now();
  ASSERT_EQ(saved.size(), 3U);

  Simulator restored;
  restored.reset(saved_now, saved_next_id);
  for (auto it = saved.rbegin(); it != saved.rend(); ++it) {  // reversed on purpose
    const auto tag = static_cast<int>(it->desc.args[0]);
    restored.restore_event(it->at, it->id, it->desc, [&order, tag] { order.push_back(tag); });
  }
  restored.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(restored.now(), 50U);
  // The id sequence continues where the original left off.
  EXPECT_EQ(restored.next_id(), saved_next_id);
}

TEST(Simulator, CancelSurvivesRestore) {
  Simulator original;
  const auto keep = original.schedule(10, snapshot::Described{snapshot::kFaultAction, {0}}, [] {});
  const auto drop = original.schedule(20, snapshot::Described{snapshot::kFaultAction, {1}}, [] {});
  const auto saved = original.pending_events();

  Simulator restored;
  restored.reset(original.now(), original.next_id());
  std::vector<std::uint64_t> ran;
  for (const auto& event : saved) {
    const auto tag = event.desc.args[0];
    restored.restore_event(event.at, event.id, event.desc, [&ran, tag] { ran.push_back(tag); });
  }
  restored.cancel(drop);  // cancellation works on restored ids too
  restored.run();
  EXPECT_EQ(ran, (std::vector<std::uint64_t>{0}));
  (void)keep;
}

TEST(Simulator, ResetDropsQueueAndRewindsClock) {
  Simulator sim;
  sim.schedule(10, [] { FAIL() << "dropped by reset"; });
  sim.run(5);
  EXPECT_EQ(sim.now(), 5U);
  sim.reset(1000, 42);
  EXPECT_EQ(sim.pending(), 0U);
  EXPECT_EQ(sim.now(), 1000U);
  EXPECT_EQ(sim.next_id(), 42U);
  // Fresh scheduling continues from the restored counter.
  EXPECT_EQ(sim.schedule(1, [] {}), 42U);
}

TEST(Simulator, PauseAndContinueMatchesUninterruptedRun) {
  // run(limit) pins now() to the deadline, so run(a) + run(b) lands exactly
  // at a + b — the property that lets a restored run rejoin the continuous
  // timeline tick-for-tick.
  Simulator sim;
  sim.run(30);
  sim.run(12);
  EXPECT_EQ(sim.now(), 42U);
}

}  // namespace
}  // namespace hours::sim
