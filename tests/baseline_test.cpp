// Chord baseline and plain-hierarchy baseline: the Section 5.2 comparison.
#include <gtest/gtest.h>

#include "baseline/chord.hpp"
#include "baseline/plain.hpp"
#include "hierarchy/synthetic.hpp"

namespace hours::baseline {
namespace {

TEST(Chord, FingersArePowersOfTwo) {
  ChordOverlay c{64};
  const auto f = c.fingers(10);
  ASSERT_EQ(f.size(), 6U);
  EXPECT_EQ(f[0], 11U);
  EXPECT_EQ(f[1], 12U);
  EXPECT_EQ(f[2], 14U);
  EXPECT_EQ(f[5], 42U);
}

TEST(Chord, FingersDeduplicateOnTinyRings) {
  ChordOverlay c{3};
  const auto f = c.fingers(0);
  EXPECT_EQ(f, (std::vector<ids::RingIndex>{1, 2}));
}

TEST(Chord, RoutesEverywhereWhenHealthy) {
  ChordOverlay c{128};
  for (ids::RingIndex from = 0; from < 128; from += 13) {
    for (ids::RingIndex to = 0; to < 128; to += 17) {
      const auto r = c.route(from, to);
      EXPECT_TRUE(r.delivered) << from << "->" << to;
      EXPECT_LE(r.hops, 7U);  // <= log2(128)
    }
  }
}

TEST(Chord, HopsAreLogTwo) {
  ChordOverlay c{1024};
  std::uint64_t total = 0;
  std::uint32_t count = 0;
  for (ids::RingIndex to = 1; to < 1024; to += 7) {
    const auto r = c.route(0, to);
    ASSERT_TRUE(r.delivered);
    total += r.hops;
    ++count;
  }
  const double mean = static_cast<double>(total) / count;
  EXPECT_NEAR(mean, 5.0, 1.0);  // ~ (log2 N)/2
}

TEST(Chord, InboundPointerNodes) {
  const auto preds = ChordOverlay::inbound_pointer_nodes(64, 10);
  ASSERT_EQ(preds.size(), 6U);
  EXPECT_EQ(preds[0], 9U);    // 10 - 1
  EXPECT_EQ(preds[1], 8U);    // 10 - 2
  EXPECT_EQ(preds[2], 6U);    // 10 - 4
  EXPECT_EQ(preds[5], 42U);   // 10 - 32 (wraps)
}

TEST(Chord, TopologyAwareAttackSeversTarget) {
  // Section 5.2: kill the O(log N) deterministic in-pointers and the target
  // becomes unreachable from everywhere, even though it is alive.
  ChordOverlay c{256};
  const ids::RingIndex target = 100;
  for (const auto p : ChordOverlay::inbound_pointer_nodes(256, target)) c.kill(p);

  int delivered = 0;
  for (ids::RingIndex from = 0; from < 256; from += 5) {
    if (!c.alive(from) || from == target) continue;
    if (c.route(from, target).delivered) ++delivered;
  }
  EXPECT_EQ(delivered, 0);
  EXPECT_TRUE(c.alive(target));
}

TEST(Chord, SameBudgetRandomAttackBarelyHurts) {
  ChordOverlay c{256};
  const ids::RingIndex target = 100;
  // Same number of victims, but scattered instead of the in-pointer set.
  for (ids::RingIndex v = 3; v <= 3 + 7 * 8; v += 8) {
    if (v != target) c.kill(v);
  }
  int delivered = 0;
  int sources = 0;
  for (ids::RingIndex from = 0; from < 256; from += 5) {
    if (!c.alive(from)) continue;
    ++sources;
    if (c.route(from, target).delivered) ++delivered;
  }
  EXPECT_GT(static_cast<double>(delivered) / sources, 0.85);
}

TEST(Chord, FallsBackToSmallerFingersAroundFailures) {
  ChordOverlay c{64};
  // Kill the big fingers of node 0 toward 63; routing must still arrive via
  // smaller spans.
  c.kill(32);
  c.kill(16);
  const auto r = c.route(0, 63);
  EXPECT_TRUE(r.delivered);
  EXPECT_GE(r.failed_probes, 1U);
}

TEST(Plain, DeliversAlongTreePath) {
  hierarchy::SyntheticSpec spec;
  spec.fanout = {8, 8};
  overlay::OverlayParams params;
  hierarchy::SyntheticHierarchy h{spec, params};
  const auto r = route_plain(h, {3, 4});
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.hops, 2U);
}

TEST(Plain, DominoEffect) {
  // Figure 1: one dead ancestor denies the whole subtree.
  hierarchy::SyntheticSpec spec;
  spec.fanout = {8, 8, 8};
  overlay::OverlayParams params;
  hierarchy::SyntheticHierarchy h{spec, params};
  h.kill({3});
  for (ids::RingIndex a = 0; a < 8; ++a) {
    for (ids::RingIndex b = 0; b < 8; ++b) {
      EXPECT_FALSE(route_plain(h, {3, a, b}).delivered);
    }
  }
  EXPECT_TRUE(route_plain(h, {4, 0, 0}).delivered);
}

TEST(Plain, DeadRootDeniesEverything) {
  hierarchy::SyntheticSpec spec;
  spec.fanout = {4};
  overlay::OverlayParams params;
  hierarchy::SyntheticHierarchy h{spec, params};
  h.set_root_alive(false);
  EXPECT_FALSE(route_plain(h, {2}).delivered);
}

}  // namespace
}  // namespace hours::baseline
