// The sweep determinism oracle: the merged fuzz-sweep report must be
// byte-identical no matter how many worker threads fan the seeds out.
//
// This is the contract bench/sweep_runner and the nightly CI sweep stand
// on — parallelism may only change wall-clock, never a byte of output.
// The test runs the same seed set serially, on a 1-worker executor, a
// 2-worker executor, and a wide executor, and compares the full
// fuzz::sweep_report_json strings. Seeds come from the same env knobs as
// the fuzz harness (HOURS_FUZZ_SEEDS / HOURS_FUZZ_SNAPSHOT), so nightly CI
// can deepen the sweep without a rebuild; the default is sized for the
// `fuzz`-labelled ctest tier.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "jobs/executor.hpp"
#include "jobs/sweep.hpp"
#include "sim/fuzz_cases.hpp"

namespace hours::sim {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  return std::strtoull(raw, nullptr, 10);
}

std::string report_at(unsigned threads, const std::vector<std::uint64_t>& seeds,
                      const fuzz::SeedOptions& options) {
  jobs::Executor executor{threads};
  const auto results = jobs::sweep<fuzz::SeedResult>(
      executor, /*sweep_seed=*/0, seeds.size(),
      [&seeds, &options](std::size_t index, rng::Xoshiro256&) {
        return fuzz::run_seed(seeds[index], options);
      });
  return fuzz::sweep_report_json(results);
}

TEST(SweepDeterminism, ReportIsByteIdenticalAcrossThreadCounts) {
  const std::uint64_t count = env_u64("HOURS_FUZZ_SEEDS", 8);
  ASSERT_GT(count, 0U);
  fuzz::SeedOptions options;
  options.snapshot_stride = env_u64("HOURS_FUZZ_SNAPSHOT", 4);

  std::vector<std::uint64_t> seeds;
  seeds.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) seeds.push_back(i + 1);

  // The serial reference does not touch the executor at all.
  std::vector<fuzz::SeedResult> serial_results;
  serial_results.reserve(seeds.size());
  for (const auto seed : seeds) serial_results.push_back(fuzz::run_seed(seed, options));
  const std::string serial = fuzz::sweep_report_json(serial_results);
  ASSERT_FALSE(serial.empty());
  EXPECT_NE(serial.find("\"report\""), std::string::npos);

  const unsigned wide = std::max(4U, std::thread::hardware_concurrency());
  EXPECT_EQ(report_at(1, seeds, options), serial) << "1-worker executor diverged from serial";
  EXPECT_EQ(report_at(2, seeds, options), serial) << "2-worker executor diverged from serial";
  EXPECT_EQ(report_at(wide, seeds, options), serial)
      << wide << "-worker executor diverged from serial";
}

TEST(SweepDeterminism, ReportIsStableAcrossRepeatedRuns) {
  // Same sweep twice on the same wide executor: scheduling noise between
  // runs must not reach the report either.
  fuzz::SeedOptions options;
  options.snapshot_stride = 0;  // keep the repeat cheap; stride covered above
  const std::vector<std::uint64_t> seeds = {3, 1, 2};  // caller order, not sorted
  const std::string first = report_at(4, seeds, options);
  const std::string second = report_at(4, seeds, options);
  EXPECT_EQ(first, second);
  // Order is the caller's: seed 3 renders before seed 1.
  EXPECT_LT(first.find("\"seed\":3"), first.find("\"seed\":1"));
}

}  // namespace
}  // namespace hours::sim
