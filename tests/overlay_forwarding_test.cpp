// Intra-overlay forwarding — Algorithms 2 and 3.
//
// Covers: greedy delivery with no failures, detours around dead ODs via
// nephew exits, backward-mode flips, base-design dead-ends (the Section 3.4
// vulnerability), dropper/misrouter behaviors, and parameterized sweeps of
// delivery under no attack.
#include <gtest/gtest.h>

#include "overlay/overlay.hpp"

namespace hours::overlay {
namespace {

OverlayParams enhanced(std::uint32_t k = 5, std::uint32_t q = 4) {
  OverlayParams p;
  p.design = Design::kEnhanced;
  p.k = k;
  p.q = q;
  return p;
}

OverlayParams base(std::uint32_t q = 4) {
  OverlayParams p;
  p.design = Design::kBase;
  p.q = q;
  return p;
}

ChildCountFn uniform_children(std::uint32_t count) {
  return [count](ids::RingIndex) { return count; };
}

TEST(Forward, TrivialSelfDelivery) {
  Overlay ov{16, enhanced()};
  const auto res = ov.forward(3, 3);
  EXPECT_EQ(res.kind, ExitKind::kArrivedAtOd);
  EXPECT_EQ(res.hops, 0U);
}

TEST(Forward, DeliversEverywhereWithoutAttack) {
  Overlay ov{64, enhanced()};
  for (ids::RingIndex from = 0; from < 64; from += 5) {
    for (ids::RingIndex to = 0; to < 64; to += 3) {
      const auto res = ov.forward(from, to);
      EXPECT_EQ(res.kind, ExitKind::kArrivedAtOd) << from << "->" << to;
      EXPECT_EQ(res.backward_steps, 0U);
    }
  }
}

TEST(Forward, GreedyNeverOvershootsAndMakesProgress) {
  Overlay ov{256, enhanced()};
  ForwardOptions opts;
  opts.record_path = true;
  for (ids::RingIndex to = 3; to < 256; to += 37) {
    const auto res = ov.forward(0, to, opts);
    ASSERT_EQ(res.kind, ExitKind::kArrivedAtOd);
    // Clockwise distance to the OD must shrink strictly at every hop.
    std::uint32_t previous = ids::clockwise_distance(0, to, 256);
    for (std::size_t i = 1; i < res.path.size(); ++i) {
      const std::uint32_t d = ids::clockwise_distance(res.path[i], to, 256);
      EXPECT_LT(d, previous);
      previous = d;
    }
  }
}

TEST(Forward, HopsAreLogarithmic) {
  Overlay ov{4096, enhanced()};
  std::uint64_t total = 0;
  std::uint32_t queries = 0;
  for (ids::RingIndex from = 0; from < 4096; from += 97) {
    for (ids::RingIndex to = 1; to < 4096; to += 131) {
      const auto res = ov.forward(from, to);
      ASSERT_EQ(res.kind, ExitKind::kArrivedAtOd);
      total += res.hops;
      ++queries;
    }
  }
  const double mean = static_cast<double>(total) / queries;
  // ln(4096) ~ 8.3; the enhanced design should do clearly better, and
  // anything above it would signal broken greedy routing.
  EXPECT_LT(mean, 8.3);
  EXPECT_GT(mean, 1.0);
}

TEST(Forward, DeadOdExitsThroughNephew) {
  Overlay ov{64, enhanced(5, 4), TableStorage::kEager, uniform_children(10)};
  ov.kill(20);
  const auto res = ov.forward(3, 20);
  ASSERT_EQ(res.kind, ExitKind::kNephewExit);
  EXPECT_LT(res.nephew, 10U);
  EXPECT_TRUE(ov.alive(res.last_node));
  // The exit node must actually hold a table entry for the OD.
  EXPECT_NE(ov.table(res.last_node).find(20), nullptr);
}

TEST(Forward, NephewSelectionPrefersClosestToNextOd) {
  Overlay ov{64, enhanced(5, 6), TableStorage::kEager, uniform_children(40)};
  ov.kill(20);
  ForwardOptions opts;
  opts.next_od = 17;
  std::vector<std::uint8_t> child_alive(40, 1);
  opts.child_alive = &child_alive;

  const auto res = ov.forward(3, 20, opts);
  ASSERT_EQ(res.kind, ExitKind::kNephewExit);
  // The chosen nephew is the clockwise-closest to 17 among the entry's
  // nephews.
  const TableEntry* entry = ov.table(res.last_node).find(20);
  ASSERT_NE(entry, nullptr);
  const auto chosen = ids::clockwise_distance(res.nephew, 17, 40);
  for (const auto n : entry->nephews) {
    EXPECT_LE(chosen, ids::clockwise_distance(n, 17, 40));
  }
}

TEST(Forward, DeadNephewsAreSkipped) {
  Overlay ov{64, enhanced(5, 3), TableStorage::kEager, uniform_children(12)};
  ov.kill(20);
  ForwardOptions opts;
  opts.next_od = 0;
  std::vector<std::uint8_t> child_alive(12, 1);
  opts.child_alive = &child_alive;

  const auto first = ov.forward(3, 20, opts);
  ASSERT_EQ(first.kind, ExitKind::kNephewExit);

  // Kill the nephew that was chosen; rerouting must avoid it.
  child_alive[first.nephew] = 0;
  const auto second = ov.forward(3, 20, opts);
  if (second.kind == ExitKind::kNephewExit) {
    EXPECT_NE(second.nephew, first.nephew);
  }
}

TEST(Forward, NeighborAttackTriggersBackwardMode) {
  // Kill the OD and its k counter-clockwise neighbors: greedy must stall at
  // the block edge and walk backward to an exit holding an OD entry.
  const std::uint32_t k = 4;
  Overlay ov{128, enhanced(k, 3), TableStorage::kEager, uniform_children(8)};
  const ids::RingIndex od = 60;
  ov.kill(od);
  for (std::uint32_t s = 1; s <= 3 * k; ++s) {
    ov.kill(ids::counter_clockwise_step(od, s, 128));
  }

  const auto res = ov.forward(70, od);  // entrance is clockwise of the block
  ASSERT_EQ(res.kind, ExitKind::kNephewExit);
  EXPECT_TRUE(ov.alive(res.last_node));
  EXPECT_NE(ov.table(res.last_node).find(od), nullptr);
}

TEST(Forward, BackwardStepsCountedUnderNeighborAttack) {
  const std::uint32_t k = 2;
  Overlay ov{256, enhanced(k, 3), TableStorage::kEager, uniform_children(8)};
  const ids::RingIndex od = 100;
  ov.kill(od);
  for (std::uint32_t s = 1; s <= 30; ++s) {
    ov.kill(ids::counter_clockwise_step(od, s, 256));
  }
  // Start counter-clockwise of the dead block so greedy stalls immediately.
  const auto res = ov.forward(ids::counter_clockwise_step(od, 40, 256), od);
  ASSERT_EQ(res.kind, ExitKind::kNephewExit);
  // With such a deep block relative to k, reaching an exit generally takes
  // backward movement; at minimum the count must be consistent.
  EXPECT_LE(res.backward_steps, res.hops);
}

TEST(Forward, BaseDesignDiesOnTwoNodeNeighborAttack) {
  // Section 3.4: shutting down the OD and its counter-clockwise neighbor
  // breaks the base design (no backward mode, nephews only at distance 1).
  Overlay ov{128, base(3), TableStorage::kEager, uniform_children(8)};
  const ids::RingIndex od = 50;
  ov.kill(od);
  ov.kill(ids::counter_clockwise_step(od, 1, 128));

  const auto res = ov.forward(10, od);
  EXPECT_EQ(res.kind, ExitKind::kUnreachable);
}

TEST(Forward, EnhancedSurvivesTwoNodeNeighborAttack) {
  Overlay ov{128, enhanced(5, 3), TableStorage::kEager, uniform_children(8)};
  const ids::RingIndex od = 50;
  ov.kill(od);
  ov.kill(ids::counter_clockwise_step(od, 1, 128));

  const auto res = ov.forward(10, od);
  EXPECT_EQ(res.kind, ExitKind::kNephewExit);
}

TEST(Forward, UnrepairedRingGapCutsBackwardWalkShort) {
  // Ablation of active recovery. Force a pure backward walk by killing the
  // OD and *every* node holding a routing entry for it; the dead
  // entry-holders leave holes in the counter-clockwise chain. With repaired
  // ring pointers the walk skips holes (and eventually exhausts its budget,
  // since no exit exists at all); with stale pointers it dead-ends at the
  // first hole.
  const std::uint32_t k = 2;
  Overlay ov{64, enhanced(k, 3), TableStorage::kEager, uniform_children(8)};
  const ids::RingIndex od = 30;
  ov.kill(od);
  for (ids::RingIndex i = 0; i < 64; ++i) {
    if (i != od && ov.table(i).find(od) != nullptr) ov.kill(i);
  }
  // The immediate CCW neighbors of the OD hold entries with certainty, so
  // the backward path starts right behind a hole.
  ASSERT_FALSE(ov.alive(ids::counter_clockwise_step(od, 1, 64)));

  const ids::RingIndex entrance = ids::clockwise_step(od, 5, 64) < 64 &&
                                          ov.alive(ids::clockwise_step(od, 32, 64))
                                      ? ids::clockwise_step(od, 32, 64)
                                      : *ov.nearest_alive_cw(od);

  ov.set_ring_repaired(true);
  const auto repaired = ov.forward(entrance, od);
  EXPECT_EQ(repaired.kind, ExitKind::kUnreachable);  // no exit exists at all

  ov.set_ring_repaired(false);
  const auto stale = ov.forward(entrance, od);
  EXPECT_EQ(stale.kind, ExitKind::kUnreachable);
  // The stale-pointer walk dies at the first hole; the repaired walk keeps
  // skipping holes until its hop budget ends.
  EXPECT_LT(stale.hops, repaired.hops);
}

TEST(Forward, DropperSwallowsQueries) {
  Overlay ov{64, enhanced()};
  // Find the first hop toward 40 from 0 and make it a dropper.
  ForwardOptions opts;
  opts.record_path = true;
  const auto clean = ov.forward(0, 40, opts);
  ASSERT_EQ(clean.kind, ExitKind::kArrivedAtOd);
  ASSERT_GE(clean.path.size(), 2U);
  ov.set_behavior(clean.path[1], NodeBehavior::kDropper);

  const auto res = ov.forward(0, 40, opts);
  EXPECT_EQ(res.kind, ExitKind::kDropped);
  EXPECT_EQ(res.last_node, clean.path[1]);
}

TEST(Forward, MisrouterStillUsuallyDelivers) {
  Overlay ov{128, enhanced()};
  ov.set_behavior(5, NodeBehavior::kMisrouter);
  int delivered = 0;
  for (ids::RingIndex to = 10; to < 128; to += 7) {
    const auto res = ov.forward(5, to);
    if (res.kind == ExitKind::kArrivedAtOd) ++delivered;
  }
  // Mis-routing wastes hops but honest downstream nodes resume greedy.
  EXPECT_GT(delivered, 10);
}

TEST(Forward, LazyStorageMatchesEager) {
  OverlayParams params = enhanced(5, 3);
  Overlay eager{512, params, TableStorage::kEager};
  Overlay lazy{512, params, TableStorage::kLazy};
  for (ids::RingIndex from = 0; from < 512; from += 61) {
    for (ids::RingIndex to = 2; to < 512; to += 97) {
      const auto a = eager.forward(from, to);
      const auto b = lazy.forward(from, to);
      EXPECT_EQ(a.kind, b.kind);
      EXPECT_EQ(a.hops, b.hops);
      EXPECT_EQ(a.last_node, b.last_node);
    }
  }
}

TEST(Forward, HopBudgetBoundsPathologicalQueries) {
  Overlay ov{32, enhanced(2, 2)};
  // Kill everything except two nodes on opposite sides; no exit can exist
  // for a dead OD whose every potential exit is dead.
  for (ids::RingIndex i = 0; i < 32; ++i) {
    if (i != 0 && i != 1) ov.kill(i);
  }
  const auto res = ov.forward(0, 16);
  EXPECT_EQ(res.kind, ExitKind::kUnreachable);
}

TEST(Reseed, RedrawsPointersKeepsLiveness) {
  Overlay ov{128, enhanced()};
  ov.kill(7);
  std::vector<ids::RingIndex> before;
  for (const auto& e : ov.table(0).entries()) before.push_back(e.sibling);

  ov.reseed(0xDEADBEEF);
  std::vector<ids::RingIndex> after;
  for (const auto& e : ov.table(0).entries()) after.push_back(e.sibling);

  EXPECT_NE(before, after);       // fresh random structure
  EXPECT_FALSE(ov.alive(7));      // liveness preserved
  EXPECT_EQ(ov.forward(3, 40).kind, ExitKind::kArrivedAtOd);  // still routes
}

TEST(Reseed, RetryWithRefreshClosesResidualFailures) {
  // Section 7 "Overlay Maintenance" closing the Figure-10 residual: under
  // an extreme neighbor attack a given table state may leave no exit, but
  // each periodic regeneration is an independent draw, so retrying across a
  // few refreshes converges to delivery (or proves the OD truly isolated).
  const std::uint32_t n = 200;
  const ids::RingIndex od = 50;
  int failed_then_recovered = 0;
  int never_failed = 0;
  for (int trial = 0; trial < 40; ++trial) {
    OverlayParams params = enhanced(3, 3);
    params.seed = 0x9E5EED + static_cast<std::uint64_t>(trial);
    Overlay ov{n, params, TableStorage::kEager, uniform_children(8)};
    ov.kill(od);
    for (std::uint32_t s = 1; s <= 120; ++s) {
      ov.kill(ids::counter_clockwise_step(od, s, n));
    }
    const auto entrance = *ov.nearest_alive_cw(od);
    if (ov.forward(entrance, od).kind == ExitKind::kNephewExit) {
      ++never_failed;
      continue;
    }
    // Refresh up to 5 times; each redraw is an independent chance.
    for (int refresh = 0; refresh < 5; ++refresh) {
      ov.reseed(params.seed + 1000 + static_cast<std::uint64_t>(refresh));
      if (ov.forward(entrance, od).kind == ExitKind::kNephewExit) {
        ++failed_then_recovered;
        break;
      }
    }
  }
  // Some trials fail on the first draw at this severity (k=3, 60% block)...
  EXPECT_GT(40 - never_failed, 0);
  // ...and refreshes recover essentially all of them.
  EXPECT_GE(never_failed + failed_then_recovered, 39);
}

TEST(Liveness, KillReviveCounts) {
  Overlay ov{16, enhanced()};
  EXPECT_EQ(ov.alive_count(), 16U);
  ov.kill(3);
  ov.kill(3);
  EXPECT_EQ(ov.alive_count(), 15U);
  ov.revive(3);
  EXPECT_EQ(ov.alive_count(), 16U);
  ov.kill(1);
  ov.kill(2);
  ov.revive_all();
  EXPECT_EQ(ov.alive_count(), 16U);
}

TEST(Liveness, NearestAliveScans) {
  Overlay ov{16, enhanced()};
  ov.kill(4);
  ov.kill(5);
  EXPECT_EQ(ov.nearest_alive_ccw(6).value(), 3U);
  EXPECT_EQ(ov.nearest_alive_cw(3).value(), 6U);
  for (ids::RingIndex i = 0; i < 16; ++i) {
    if (i != 6) ov.kill(i);
  }
  EXPECT_FALSE(ov.nearest_alive_ccw(6).has_value());
}

// ---- parameterized sweep: delivery without attack, across designs/sizes -----------

struct DeliveryCase {
  std::uint32_t n;
  Design design;
  std::uint32_t k;
};

class DeliverySweep : public ::testing::TestWithParam<DeliveryCase> {};

TEST_P(DeliverySweep, AlwaysDeliversWithNoFailures) {
  const auto [n, design, k] = GetParam();
  OverlayParams params;
  params.design = design;
  params.k = k;
  Overlay ov{n, params};
  for (std::uint32_t trial = 0; trial < 200; ++trial) {
    const auto from = static_cast<ids::RingIndex>((trial * 2654435761ULL) % n);
    const auto to = static_cast<ids::RingIndex>((trial * 40503ULL + 17) % n);
    const auto res = ov.forward(from, to);
    ASSERT_EQ(res.kind, ExitKind::kArrivedAtOd) << "n=" << n << " " << from << "->" << to;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DeliverySweep,
    ::testing::Values(DeliveryCase{8, Design::kBase, 1}, DeliveryCase{100, Design::kBase, 1},
                      DeliveryCase{1000, Design::kBase, 1},
                      DeliveryCase{8, Design::kEnhanced, 5},
                      DeliveryCase{100, Design::kEnhanced, 5},
                      DeliveryCase{1000, Design::kEnhanced, 5},
                      DeliveryCase{1000, Design::kEnhanced, 1},
                      DeliveryCase{257, Design::kEnhanced, 10}));

}  // namespace
}  // namespace hours::overlay
