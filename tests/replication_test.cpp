// Server replication (Section 7): a logical node stays reachable until all
// of its replica servers are down, and attacks must spend budget per server.
#include <gtest/gtest.h>

#include "overlay/replication.hpp"

namespace hours::overlay {
namespace {

OverlayParams params() {
  OverlayParams p;
  p.design = Design::kEnhanced;
  p.k = 3;
  p.q = 2;
  return p;
}

TEST(Replication, NodeDiesOnlyWhenAllServersDo) {
  Overlay ov{16, params()};
  ReplicatedOverlay rep{ov, 3};
  EXPECT_EQ(rep.alive_servers(5), 3U);
  EXPECT_TRUE(ov.alive(5));

  EXPECT_TRUE(rep.kill_server(5, 0));
  EXPECT_TRUE(rep.kill_server(5, 1));
  EXPECT_TRUE(ov.alive(5));  // one server left
  EXPECT_TRUE(rep.kill_server(5, 2));
  EXPECT_FALSE(ov.alive(5));
  EXPECT_EQ(rep.alive_servers(5), 0U);
}

TEST(Replication, KillIsIdempotentPerServer) {
  Overlay ov{8, params()};
  ReplicatedOverlay rep{ov, 2};
  EXPECT_TRUE(rep.kill_server(3, 1));
  EXPECT_FALSE(rep.kill_server(3, 1));  // already down
  EXPECT_EQ(rep.alive_servers(3), 1U);
  EXPECT_TRUE(ov.alive(3));
}

TEST(Replication, ReviveRestoresReachability) {
  Overlay ov{8, params()};
  ReplicatedOverlay rep{ov, 2};
  rep.kill_server(3, 0);
  rep.kill_server(3, 1);
  EXPECT_FALSE(ov.alive(3));

  EXPECT_TRUE(rep.revive_server(3, 0));
  EXPECT_TRUE(ov.alive(3));
  EXPECT_FALSE(rep.revive_server(3, 0));  // already up
  EXPECT_EQ(rep.alive_servers(3), 1U);
}

TEST(Replication, TotalServerAccounting) {
  Overlay ov{10, params()};
  ReplicatedOverlay rep{ov, 4};
  EXPECT_EQ(rep.total_alive_servers(), 40U);
  rep.kill_server(0, 0);
  rep.kill_server(9, 3);
  EXPECT_EQ(rep.total_alive_servers(), 38U);
}

TEST(Replication, ForwardingUsesLogicalLiveness) {
  // A neighbor attack that kills one server per node achieves nothing with
  // replication factor 2: all logical nodes stay reachable.
  Overlay ov{64, params(), TableStorage::kEager, [](ids::RingIndex) { return 8U; }};
  ReplicatedOverlay rep{ov, 2};
  const ids::RingIndex od = 30;
  for (std::uint32_t s = 0; s <= 10; ++s) {
    rep.kill_server(ids::counter_clockwise_step(od, s, 64), 0);
  }
  const auto res = ov.forward(50, od);
  EXPECT_EQ(res.kind, ExitKind::kArrivedAtOd);  // OD itself still reachable

  // Finish off the OD's second server: now the detour machinery kicks in.
  rep.kill_server(od, 1);
  const auto detour = ov.forward(50, od);
  EXPECT_EQ(detour.kind, ExitKind::kNephewExit);
}

TEST(Replication, FactorOneMatchesPlainOverlay) {
  Overlay ov{16, params()};
  ReplicatedOverlay rep{ov, 1};
  rep.kill_server(4, 0);
  EXPECT_FALSE(ov.alive(4));
  rep.revive_server(4, 0);
  EXPECT_TRUE(ov.alive(4));
}

}  // namespace
}  // namespace hours::overlay
