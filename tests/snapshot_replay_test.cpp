// Snapshot/restore with deterministic replay — the equivalence oracle.
//
// The bar these tests hold (and the fault-schedule fuzz harness re-checks
// across hundreds of seeds): a run that is saved at an arbitrary instant,
// restored into a freshly constructed simulation, and continued must be
// BYTE-IDENTICAL to the uninterrupted run — same final snapshot, same trace
// tail, same metrics. A snapshot that restores must re-save to exactly the
// bytes it was loaded from. And a corrupted snapshot (here: a tampered RNG
// stream, the classic "forgot to serialize" bug) must be caught by the
// oracle, not silently absorbed.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "hours/hours.hpp"
#include "hours/resolver.hpp"
#include "liveness/liveness.hpp"
#include "rng/xoshiro256.hpp"
#include "sim/fault_injector.hpp"
#include "sim/hierarchy_protocol.hpp"
#include "sim/ring_protocol.hpp"
#include "sim/snapshotter.hpp"
#include "snapshot/json.hpp"
#include "snapshot/snapshot.hpp"
#include "trace/event.hpp"
#include "trace/ring_buffer_sink.hpp"
#include "trace/sink.hpp"

namespace hours::sim {
namespace {

// ---------------------------------------------------------------------------
// JSON substrate

TEST(SnapshotJson, DumpParseRoundTrip) {
  using snapshot::Json;
  Json doc = Json::object();
  doc["zeta"] = Json(std::uint64_t{18446744073709551615ULL});
  doc["alpha"] = Json("text with \"quotes\" and \\ and \n control");
  Json arr = Json::array();
  arr.push(Json(std::uint64_t{0}));
  arr.push(Json("x"));
  Json nested = Json::object();
  nested["k"] = Json(std::uint64_t{7});
  arr.push(std::move(nested));
  doc["list"] = std::move(arr);

  const std::string text = doc.dump();
  Json parsed;
  std::string error;
  ASSERT_TRUE(parse_json(text, parsed, &error)) << error;
  EXPECT_EQ(parsed, doc);
  EXPECT_EQ(parsed.dump(), text);  // dump is a fixpoint: byte-deterministic
}

TEST(SnapshotJson, DoubleBitsRoundTripExactly) {
  for (const double v : {0.0, 0.1, 0.25, 1.0 / 3.0, 6.62607015e-34}) {
    EXPECT_EQ(snapshot::double_from_bits(snapshot::bits_from_double(v)), v);
  }
}

// ---------------------------------------------------------------------------
// FaultPlan describe()/parse() round trip

FaultPlan random_plan(std::uint64_t seed) {
  rng::Xoshiro256 g{seed};
  FaultPlan plan;
  const auto n = static_cast<std::uint32_t>(8 + g.below(8));
  if (g.bernoulli(0.6)) {
    plan.crash(static_cast<std::uint32_t>(g.below(n)), 100 + g.below(4000),
               g.bernoulli(0.3) ? 0 : 6000 + g.below(4000));
  }
  if (g.bernoulli(0.5)) {
    plan.flap(static_cast<std::uint32_t>(g.below(n)), 500 + g.below(1000), 200 + g.below(500),
              300 + g.below(700), static_cast<std::uint32_t>(1 + g.below(4)));
  }
  if (g.bernoulli(0.4)) {
    plan.correlated_outage({0, static_cast<std::uint32_t>(1 + g.below(n - 1))},
                           1000 + g.below(2000), 500 + g.below(2000),
                           static_cast<std::uint32_t>(1 + g.below(3)), g.below(1500));
  }
  if (g.bernoulli(0.4)) {
    plan.partition({{0, 1, 2}, {3, 4, static_cast<std::uint32_t>(5 + g.below(n - 5))}},
                   800 + g.below(1200), g.bernoulli(0.25) ? 0 : 4000 + g.below(4000));
  }
  if (g.bernoulli(0.5)) {
    const auto a = static_cast<std::uint32_t>(g.below(n));
    const auto b = static_cast<std::uint32_t>((a + 1 + g.below(n - 1)) % n);  // b != a
    plan.cut_link(a, b, 300 + g.below(900), g.bernoulli(0.3) ? 0 : 2000 + g.below(3000));
  }
  if (g.bernoulli(0.6)) {
    plan.loss_episode(0.01 + g.uniform() * 0.4, 100 + g.below(3000), 5000 + g.below(5000));
  }
  if (g.bernoulli(0.3)) {
    plan.byzantine(static_cast<std::uint32_t>(g.below(n)),
                   g.bernoulli(0.5) ? overlay::NodeBehavior::kDropper
                                    : overlay::NodeBehavior::kMisrouter,
                   400 + g.below(4000));
  }
  if (g.bernoulli(0.4)) {
    plan.random_churn(static_cast<std::uint32_t>(1 + g.below(6)), 1000, 9000,
                      600 + g.below(1000), g(), {0});
  }
  return plan;
}

TEST(FaultPlanRoundTrip, ParseInvertsDescribeAcrossRandomPlans) {
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    const FaultPlan plan = random_plan(seed);
    std::string error;
    const auto reparsed = FaultPlan::parse(plan.describe(), &error);
    ASSERT_TRUE(reparsed.has_value()) << "seed " << seed << ": " << error << "\n"
                                      << plan.describe();
    EXPECT_TRUE(*reparsed == plan) << "seed " << seed << " round-trip mismatch:\n"
                                   << plan.describe() << "-- reparsed --\n"
                                   << reparsed->describe();
    // describe() itself must be a fixpoint through the round trip.
    EXPECT_EQ(reparsed->describe(), plan.describe());
  }
}

TEST(FaultPlanRoundTrip, ParseRejectsMalformedText) {
  std::string error;
  EXPECT_FALSE(FaultPlan::parse("crash(", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(FaultPlan::parse("launch_missiles(1, 2)\n", &error).has_value());
  EXPECT_FALSE(FaultPlan::parse("crash(1; 2)\n", &error).has_value());
  // Empty text is a valid (empty) plan.
  const auto empty = FaultPlan::parse("", &error);
  ASSERT_TRUE(empty.has_value()) << error;
  EXPECT_TRUE(*empty == FaultPlan{});
}

// ---------------------------------------------------------------------------
// Ring equivalence oracle

struct RingRun {
  RingSimConfig config;
  FaultPlan plan;
};

RingRun oracle_case(std::uint64_t seed) {
  RingRun r;
  r.config.size = 12;
  r.config.params.design = overlay::Design::kEnhanced;
  r.config.params.k = 3;
  r.config.params.q = 2;
  r.config.params.seed = seed * 31 + 7;
  r.config.seed = seed;
  r.config.probe_failure_threshold = 2;
  r.plan.crash(3, 2'000, 9'000);
  r.plan.cut_link(5, 6, 4'000, 12'000);
  r.plan.loss_episode(0.08, 6'000, 10'000);
  r.plan.flap(9, 3'000, 800, 1'200, 2);
  return r;
}

constexpr Ticks kOracleHorizon = 30'000;

/// Saved-state string at `run_to`, plus the final state string at the
/// horizon and the trace tail (events after `run_to`), for one continuous
/// run.
struct ContinuousResult {
  std::string at_pause;
  std::string final_state;
  std::vector<std::string> tail;
};

ContinuousResult run_continuous(const RingRun& r, Ticks pause) {
  RingSimulation ring{r.config};
  trace::Tracer tracer;
  trace::RingBufferSink events{65536};
  ring.set_tracer(&tracer);
  tracer.add_sink(&events);
  ring.start();
  FaultInjector injector{make_fault_target(ring), r.plan};
  injector.set_tracer(&tracer);
  injector.arm();
  Snapshotter snap{ring.simulator()};
  snap.add(ring);
  snap.add(injector);

  ContinuousResult out;
  ring.simulator().run(pause);
  EXPECT_EQ(snap.save_string(out.at_pause), "");
  ring.simulator().run(kOracleHorizon - pause);
  EXPECT_EQ(snap.save_string(out.final_state), "");
  for (const auto& event : events.events()) {
    if (event.at > pause) out.tail.push_back(trace::to_json_line(event));
  }
  return out;
}

/// Restores `saved` into freshly constructed objects and runs to the
/// horizon; returns the re-saved string right after restore, the final
/// state, and the post-restore trace stream.
struct RestoredResult {
  std::string error;  // non-empty = restore failed
  std::string resaved;
  std::string final_state;
  std::vector<std::string> tail;
};

RestoredResult run_restored(const RingRun& r, const std::string& saved) {
  RestoredResult out;
  snapshot::Json doc;
  if (!snapshot::parse_json(saved, doc, &out.error)) return out;

  RingSimulation ring{r.config};  // no start(): the snapshot carries the timers
  trace::Tracer tracer;
  trace::RingBufferSink events{65536};
  ring.set_tracer(&tracer);
  tracer.add_sink(&events);
  FaultInjector injector{make_fault_target(ring), r.plan};  // not armed
  injector.set_tracer(&tracer);
  Snapshotter snap{ring.simulator()};
  snap.add(ring);
  snap.add(injector);

  out.error = snap.restore(doc);
  if (!out.error.empty()) return out;
  out.error = snap.save_string(out.resaved);
  if (!out.error.empty()) return out;

  ring.simulator().run(kOracleHorizon - ring.simulator().now());
  out.error = snap.save_string(out.final_state);
  for (const auto& event : events.events()) out.tail.push_back(trace::to_json_line(event));
  return out;
}

TEST(SnapshotReplay, RestoredRunIsByteIdenticalToContinuousRun) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const RingRun r = oracle_case(seed);
    const Ticks pause = 1'000 + 1'771 * seed;  // straddles the fault windows
    const ContinuousResult continuous = run_continuous(r, pause);
    ASSERT_FALSE(continuous.at_pause.empty());

    const RestoredResult restored = run_restored(r, continuous.at_pause);
    ASSERT_EQ(restored.error, "") << "seed " << seed;
    // Restore -> immediate save reproduces the snapshot bytes.
    EXPECT_EQ(restored.resaved, continuous.at_pause) << "seed " << seed;
    // Continuing the restored run reaches the continuous run's exact final
    // state: ring tables, suspicion, RNG streams, metrics, event queue.
    EXPECT_EQ(restored.final_state, continuous.final_state) << "seed " << seed;
    // The trace streams agree event for event past the snapshot instant.
    EXPECT_EQ(restored.tail, continuous.tail) << "seed " << seed;
  }
}

TEST(SnapshotReplay, GossipLivenessRestoredRunIsByteIdentical) {
  // Same equivalence oracle with the gossip liveness plane armed: the pause
  // lands while the crash(3)-at-2'000 rumor is inside the digest horizon, so
  // the snapshot must carry mid-propagation state — since/source rows and
  // the gossip-mode config echo — and the restored run must keep spreading
  // the rumor exactly where the continuous run does.
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    RingRun r = oracle_case(seed);
    r.config.liveness.mode = liveness::Mode::kGossip;
    const Ticks pause = 2'500 + 1'771 * seed;
    const ContinuousResult continuous = run_continuous(r, pause);
    ASSERT_FALSE(continuous.at_pause.empty());

    const RestoredResult restored = run_restored(r, continuous.at_pause);
    ASSERT_EQ(restored.error, "") << "seed " << seed;
    EXPECT_EQ(restored.resaved, continuous.at_pause) << "seed " << seed;
    EXPECT_EQ(restored.final_state, continuous.final_state) << "seed " << seed;
    EXPECT_EQ(restored.tail, continuous.tail) << "seed " << seed;
  }
}

TEST(SnapshotReplay, SaveIsStableAcrossIdenticalRuns) {
  const RingRun r = oracle_case(4);
  const ContinuousResult a = run_continuous(r, 5'000);
  const ContinuousResult b = run_continuous(r, 5'000);
  EXPECT_EQ(a.at_pause, b.at_pause);
  EXPECT_EQ(a.final_state, b.final_state);
}

TEST(SnapshotReplay, TamperedRngStreamIsCaughtByTheOracle) {
  const RingRun r = oracle_case(5);
  const ContinuousResult continuous = run_continuous(r, 7'000);

  // Inject the classic divergence bug: restore everything EXCEPT the
  // protocol RNG stream (simulated by corrupting the saved words). The
  // restore itself succeeds — the state is structurally valid — but the
  // continued run must not reproduce the continuous one, and the oracle's
  // byte comparison has to catch it.
  snapshot::Json doc;
  std::string error;
  ASSERT_TRUE(snapshot::parse_json(continuous.at_pause, doc, &error)) << error;
  snapshot::Json& rng = doc["sections"]["ring"]["rng"];
  ASSERT_TRUE(rng.is_array());
  rng.items()[0] = snapshot::Json(rng.items()[0].as_u64() ^ 0xDEADBEEFULL);
  const std::string tampered = doc.dump();
  ASSERT_NE(tampered, continuous.at_pause);

  const RestoredResult restored = run_restored(r, tampered);
  ASSERT_EQ(restored.error, "");  // structurally fine — that's the point
  EXPECT_NE(restored.final_state, continuous.final_state)
      << "a corrupted RNG stream went undetected: the equivalence oracle is blind";
}

TEST(SnapshotReplay, RestoreRejectsMismatchedConfiguration) {
  const RingRun r = oracle_case(6);
  const ContinuousResult continuous = run_continuous(r, 3'000);
  snapshot::Json doc;
  std::string error;
  ASSERT_TRUE(snapshot::parse_json(continuous.at_pause, doc, &error)) << error;

  RingRun other = r;
  other.config.size = 14;  // different ring: restore must refuse
  RingSimulation ring{other.config};
  FaultInjector injector{make_fault_target(ring), other.plan};
  Snapshotter snap{ring.simulator()};
  snap.add(ring);
  snap.add(injector);
  const std::string refused = snap.restore(doc);
  EXPECT_NE(refused, "");
}

TEST(SnapshotReplay, OpaqueEventsBlockSaveWithIds) {
  RingSimConfig config;
  RingSimulation ring{config};
  ring.start();
  const auto id = ring.simulator().schedule(100, [] {});  // closure-only event
  Snapshotter snap{ring.simulator()};
  snap.add(ring);
  std::string out;
  const std::string error = snap.save_string(out);
  ASSERT_NE(error, "");
  EXPECT_NE(error.find("opaque"), std::string::npos);
  EXPECT_NE(error.find(std::to_string(id)), std::string::npos);
}

TEST(SnapshotReplay, SnapshotFileRoundTripsThroughDisk) {
  const RingRun r = oracle_case(7);
  RingSimulation ring{r.config};
  ring.start();
  FaultInjector injector{make_fault_target(ring), r.plan};
  injector.arm();
  Snapshotter snap{ring.simulator()};
  snap.add(ring);
  snap.add(injector);
  ring.simulator().run(2'500);

  const std::string path = ::testing::TempDir() + "hours_ring_snapshot.json";
  ASSERT_EQ(snap.save_file(path), "");

  RingSimulation ring2{r.config};
  FaultInjector injector2{make_fault_target(ring2), r.plan};
  Snapshotter snap2{ring2.simulator()};
  snap2.add(ring2);
  snap2.add(injector2);
  ASSERT_EQ(snap2.restore_file(path), "");
  std::string resaved;
  ASSERT_EQ(snap2.save_string(resaved), "");
  std::string original;
  ASSERT_EQ(snap.save_string(original), "");
  EXPECT_EQ(resaved, original);
}

// ---------------------------------------------------------------------------
// Hierarchy engine: mid-query snapshot

TEST(SnapshotReplay, HierarchyMidQuerySnapshotReplaysIdentically) {
  HierarchySimConfig config;
  config.fanout = {3, 3};
  config.transport.loss_probability = 0.1;  // forces retries/suspicion traffic

  // Continuous run: two queries (the second against a killed on-path node),
  // paused MID-QUERY — in-flight messages, pending ack timers and all.
  HierarchySimulation a{config};
  a.kill({1});
  const auto qid_a = a.inject_query({1, 2});
  a.simulator().run(/*limit=*/300);  // partway into the query
  Snapshotter snap_a{a.simulator()};
  snap_a.add(a);
  std::string at_pause;
  ASSERT_EQ(snap_a.save_string(at_pause), "");
  a.simulator().run(/*limit=*/0, 100'000);  // drain
  std::string final_a;
  ASSERT_EQ(snap_a.save_string(final_a), "");

  // Restore into a fresh simulation and drain.
  HierarchySimulation b{config};
  Snapshotter snap_b{b.simulator()};
  snap_b.add(b);
  snapshot::Json doc;
  std::string error;
  ASSERT_TRUE(snapshot::parse_json(at_pause, doc, &error)) << error;
  ASSERT_EQ(snap_b.restore(doc), "");
  std::string resaved;
  ASSERT_EQ(snap_b.save_string(resaved), "");
  EXPECT_EQ(resaved, at_pause);

  b.simulator().run(/*limit=*/0, 100'000);
  std::string final_b;
  ASSERT_EQ(snap_b.save_string(final_b), "");
  EXPECT_EQ(final_b, final_a);
  EXPECT_EQ(b.query(qid_a).delivered, a.query(qid_a).delivered);
  EXPECT_EQ(b.query(qid_a).hops, a.query(qid_a).hops);
}

// ---------------------------------------------------------------------------
// Facade layer: HoursSystem::save/restore

TEST(SnapshotReplay, FacadeSaveRestoreRoundTrip) {
  HoursSystem original;
  ASSERT_TRUE(original.admit("ucla").ok());
  ASSERT_TRUE(original.admit("mit").ok());
  ASSERT_TRUE(original.admit("cs.ucla").ok());
  ASSERT_TRUE(original.admit("ee.ucla").ok());
  ASSERT_TRUE(original.admit("www.cs.ucla").ok());
  ASSERT_TRUE(original.add_record("www.cs.ucla", {"A", "10.0.0.7", 120}).ok());
  ASSERT_TRUE(original.set_alive("ee.ucla", false).ok());
  ASSERT_TRUE(original.strike("mit", attack::Strategy::kRandom, 0).ok());
  original.cache_bootstrap("mit");
  original.advance(42);
  (void)original.query("www.cs.ucla");

  const std::string path = ::testing::TempDir() + "hours_system_snapshot.json";
  ASSERT_EQ(original.save(path), "");

  HoursSystem restored;
  ASSERT_EQ(restored.restore(path), "");

  // The restored system re-saves to the identical document.
  snapshot::Json doc_a;
  snapshot::Json doc_b;
  ASSERT_EQ(original.save_json(doc_a), "");
  ASSERT_EQ(restored.save_json(doc_b), "");
  EXPECT_EQ(doc_a.dump(), doc_b.dump());

  // Behavioral spot checks: same clock, same membership semantics, the
  // record is reachable, the attack is liftable.
  EXPECT_EQ(restored.now(), original.now());
  const auto lookup = restored.lookup("www.cs.ucla");
  EXPECT_TRUE(lookup.query.delivered);
  ASSERT_EQ(lookup.records.size(), 1U);
  EXPECT_EQ(lookup.records[0].value, "10.0.0.7");
  EXPECT_TRUE(restored.lift_attack("mit").ok());
}

TEST(SnapshotReplay, FacadeRestoreRequiresFreshSystem) {
  HoursSystem original;
  ASSERT_TRUE(original.admit("ucla").ok());
  snapshot::Json doc;
  ASSERT_EQ(original.save_json(doc), "");

  HoursSystem busy;
  ASSERT_TRUE(busy.admit("mit").ok());
  EXPECT_NE(busy.restore_json(doc), "");

  HoursConfig other_config;
  other_config.overlay.k = 7;
  HoursSystem mismatched{other_config};
  EXPECT_NE(mismatched.restore_json(doc), "");
}

TEST(SnapshotReplay, FacadeEventBackendSurvivesRestore) {
  HoursSystem original;
  ASSERT_TRUE(original.admit("ucla").ok());
  ASSERT_TRUE(original.admit("cs.ucla").ok());
  ASSERT_TRUE(original.admit("www.cs.ucla").ok());
  auto& backend = original.use_event_backend();
  FaultPlan plan;
  plan.crash(1, 1'000, 5'000);
  ASSERT_TRUE(original.schedule_faults(std::move(plan)).ok());
  (void)original.query("www.cs.ucla");
  original.advance(30);

  snapshot::Json doc;
  ASSERT_EQ(original.save_json(doc), "");

  HoursSystem restored;
  ASSERT_EQ(restored.restore_json(doc), "");
  ASSERT_NE(restored.event_backend(), nullptr);
  EXPECT_EQ(restored.now(), original.now());
  EXPECT_EQ(restored.event_backend()->config().seed, backend.config().seed);
  ASSERT_EQ(restored.event_backend()->plans().size(), 1U);
  EXPECT_EQ(restored.event_backend()->plans()[0].describe(),
            original.event_backend()->plans()[0].describe());
  const auto result = restored.query("www.cs.ucla");
  EXPECT_TRUE(result.delivered);
}

TEST(SnapshotReplay, ResolverCacheRoundTrips) {
  HoursSystem system;
  ASSERT_TRUE(system.admit("ucla").ok());
  ASSERT_TRUE(system.admit("cs.ucla").ok());
  ASSERT_TRUE(system.add_record("cs.ucla", {"A", "10.1.1.1", 600}).ok());

  Resolver original{system, 16};
  (void)original.resolve("cs.ucla");  // miss -> fills the cache
  (void)original.resolve("cs.ucla");  // hit
  (void)original.resolve("nosuch.ucla");

  Resolver restored{system, 4};
  ASSERT_EQ(restored.from_json(original.to_json()), "");
  EXPECT_EQ(restored.cached_names(), original.cached_names());
  EXPECT_EQ(restored.stats().cache_hits, original.stats().cache_hits);
  EXPECT_EQ(restored.stats().failures, original.stats().failures);
  EXPECT_EQ(restored.to_json().dump(), original.to_json().dump());
  const auto* peeked = restored.peek("cs.ucla");
  ASSERT_NE(peeked, nullptr);
  ASSERT_EQ(peeked->size(), 1U);
  EXPECT_EQ((*peeked)[0].value, "10.1.1.1");
}

}  // namespace
}  // namespace hours::sim
