// The ROADMAP partition scenario, deterministically: a sibling ring is split
// into two halves that are both alive yet mutually unreachable, each half
// self-heals into its own smaller ring, queries detour around the cut while
// it holds, and once the partition lifts Section 4.3 active recovery
// re-merges the halves — pointer tables byte-identical to a run that was
// never partitioned.
#include <gtest/gtest.h>

#include <vector>

#include "sim/ring_invariants.hpp"
#include "sim/fault_injector.hpp"
#include "sim/ring_protocol.hpp"

namespace hours::sim {
namespace {

constexpr Ticks kPartitionAt = 5'000;
constexpr Ticks kHealAt = 35'000;
constexpr Ticks kHorizon = 70'000;

RingSimConfig demo_config() {
  RingSimConfig cfg;
  cfg.size = 16;
  cfg.params.design = overlay::Design::kEnhanced;
  cfg.params.k = 3;
  cfg.params.q = 2;
  cfg.params.seed = 0xFEEDULL;
  return cfg;
}

FaultPlan halves_partition() {
  return FaultPlan{}.partition({{0, 1, 2, 3, 4, 5, 6, 7}, {8, 9, 10, 11, 12, 13, 14, 15}},
                               kPartitionAt, kHealAt);
}

TEST(PartitionHealing, HalvesSelfHealIntoTwoRingsWhileCut) {
  RingSimulation ring{demo_config()};
  ring.start();
  FaultInjector injector{make_fault_target(ring), halves_partition()};
  injector.arm();

  ring.simulator().run(kHealAt - 5'000);  // deep inside the partition window

  // Everyone is alive — this is a connectivity fault, not a crash.
  for (ids::RingIndex i = 0; i < 16; ++i) EXPECT_TRUE(ring.alive(i));
  EXPECT_TRUE(injector.link_severed(7, 8));
  EXPECT_TRUE(injector.link_severed(8, 7));
  EXPECT_FALSE(injector.link_severed(3, 4));  // same side: untouched

  // Each half closed into its own ring across the cut...
  EXPECT_EQ(ring.cw_successor(7), 0U);
  EXPECT_EQ(ring.ccw_neighbor(0), 7U);
  EXPECT_EQ(ring.cw_successor(15), 8U);
  EXPECT_EQ(ring.ccw_neighbor(8), 15U);
  // ...which means the full ring is NOT one cycle right now.
  EXPECT_FALSE(ring.ring_connected());
  EXPECT_GE(ring.repairs_sent(), 1U);  // halves re-rang via active recovery
}

TEST(PartitionHealing, QueriesDetourWithinAHalfAndFailAcross) {
  RingSimulation ring{demo_config()};
  ring.start();
  FaultInjector injector{make_fault_target(ring), halves_partition()};
  injector.arm();
  ring.simulator().run(kHealAt - 5'000);

  // Same-side query whose greedy candidates point into the other half: node
  // 6's best hops toward 1 are 9 and 8 (unreachable) — it must detour via 7.
  const auto same_side = ring.inject_query(6, 1);
  // Cross-partition query: no path exists while the cut holds.
  const auto cross = ring.inject_query(1, 12);
  ring.simulator().run(10 * ring.config().probe_period);

  EXPECT_TRUE(ring.query(same_side).done);
  EXPECT_TRUE(ring.query(same_side).delivered);
  EXPECT_TRUE(ring.query(cross).done);
  EXPECT_FALSE(ring.query(cross).delivered);
}

TEST(PartitionHealing, ActiveRecoveryRemergesToNeverPartitionedFixpoint) {
  // Control: identical config, no faults, same horizon.
  RingSimulation control{demo_config()};
  control.start();
  control.simulator().run(kHorizon);
  const std::string control_fixpoint = invariants::pointer_table_fingerprint(control);
  ASSERT_TRUE(invariants::ring_invariant_violations(control).empty());

  RingSimulation ring{demo_config()};
  ring.start();
  FaultInjector injector{make_fault_target(ring), halves_partition()};
  injector.arm();
  ring.simulator().run(kHorizon);

  // The halves re-merged into one ring at the no-fault fixpoint.
  EXPECT_TRUE(ring.ring_connected());
  const auto violations = invariants::ring_invariant_violations(ring);
  EXPECT_TRUE(violations.empty()) << violations.front();
  EXPECT_EQ(invariants::pointer_table_fingerprint(ring), control_fixpoint);
  EXPECT_EQ(injector.stats().link_cuts, 128U);   // 8 * 8 pairs, both directions
  EXPECT_EQ(injector.stats().link_heals, 128U);
  EXPECT_EQ(injector.stats().kills, 0U);  // nobody ever died

  // Boundary suspicion dissolved on both sides of the former cut.
  EXPECT_FALSE(ring.suspects(7, 8));
  EXPECT_FALSE(ring.suspects(8, 7));

  // Cross-boundary queries flow again, in both directions.
  const auto query_failures = invariants::query_delivery_violations(
      ring, {{1, 12}, {12, 1}, {0, 8}, {15, 7}, {4, 11}});
  EXPECT_TRUE(query_failures.empty()) << query_failures.front();
}

TEST(PartitionHealing, RemergeAlsoConvergesOnHierarchyStyleNonContiguousGroups) {
  // A partition need not split the ring into contiguous arcs: interleave the
  // groups (evens vs odds). Both "halves" degenerate into heavy suspicion;
  // after the heal the ring must still converge to the no-fault fixpoint.
  RingSimulation ring{demo_config()};
  ring.start();
  FaultInjector injector{
      make_fault_target(ring),
      FaultPlan{}.partition({{0, 2, 4, 6, 8, 10, 12, 14}, {1, 3, 5, 7, 9, 11, 13, 15}},
                            kPartitionAt, kHealAt)};
  injector.arm();
  ring.simulator().run(kHorizon);

  const auto violations = invariants::ring_invariant_violations(ring);
  EXPECT_TRUE(violations.empty()) << violations.front();
}

}  // namespace
}  // namespace hours::sim
