// SHA-1 correctness against the RFC 3174 / FIPS 180-1 test vectors, plus
// incremental-update equivalence and boundary-size messages.
#include "crypto/sha1.hpp"

#include <gtest/gtest.h>

#include <string>

namespace hours::crypto {
namespace {

TEST(Sha1, Rfc3174Vector1) {
  EXPECT_EQ(to_hex(sha1("abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, Rfc3174Vector2) {
  EXPECT_EQ(to_hex(sha1("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, Rfc3174Vector3MillionA) {
  Sha1 hasher;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.update(chunk);
  EXPECT_EQ(to_hex(hasher.finish()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, Rfc3174Vector4Repeated) {
  // "0123456701234567..." repeated 10 times (RFC 3174 test 4).
  Sha1 hasher;
  for (int i = 0; i < 10; ++i) hasher.update("0123456701234567012345670123456701234567012345670123456701234567");
  EXPECT_EQ(to_hex(hasher.finish()), "dea356a2cddd90c7a7ecedc5ebb563934f460452");
}

TEST(Sha1, EmptyMessage) {
  EXPECT_EQ(to_hex(sha1("")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  const std::string message =
      "The quick brown fox jumps over the lazy dog, repeatedly, across block "
      "boundaries of the SHA-1 compression function. ";
  for (std::size_t split = 0; split <= message.size(); split += 7) {
    Sha1 hasher;
    hasher.update(message.substr(0, split));
    hasher.update(message.substr(split));
    EXPECT_EQ(hasher.finish(), sha1(message)) << "split at " << split;
  }
}

TEST(Sha1, BlockBoundarySizes) {
  // 55/56/57 and 63/64/65 bytes exercise the padding edge cases.
  for (const std::size_t size : {55U, 56U, 57U, 63U, 64U, 65U, 119U, 128U}) {
    const std::string message(size, 'x');
    Sha1 incremental;
    for (const char c : message) incremental.update(&c, 1);
    EXPECT_EQ(incremental.finish(), sha1(message)) << "size " << size;
  }
}

TEST(Sha1, ResetReusesObject) {
  Sha1 hasher;
  hasher.update("garbage");
  hasher.reset();
  hasher.update("abc");
  EXPECT_EQ(to_hex(hasher.finish()), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, DistinctInputsDistinctDigests) {
  EXPECT_NE(sha1("node-a.example"), sha1("node-b.example"));
}

}  // namespace
}  // namespace hours::crypto
