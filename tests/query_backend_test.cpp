// The QueryBackend seam: the graph engine's invariants, the event engine's
// message-level semantics (silence-inferred liveness, scripted fault
// windows, simulated time), and the facade behavior both share — one clock,
// one bootstrap cache, one trace stream (docs/PROTOCOL.md §7).
#include <gtest/gtest.h>

#include <string>

#include "hours/hours.hpp"
#include "trace/event.hpp"
#include "trace/ring_buffer_sink.hpp"

namespace hours {
namespace {

/// Four zones of two hosts each — small enough that event-backend queries
/// settle in a handful of simulated round trips.
struct Fixture {
  HoursSystem sys;
  Fixture() {
    for (const char* zone : {"red", "green", "blue", "cyan"}) {
      sys.admit(zone);
      for (const char* host : {"a", "b"}) {
        sys.admit(std::string{host} + "." + zone);
      }
    }
  }
};

/// A short client deadline so a query against a dead destination settles
/// well inside any scheduled fault window instead of racing its repair.
EventBackendConfig tight_deadline_config() {
  EventBackendConfig config;
  config.client.deadline = 2'000;
  return config;
}

TEST(GraphBackend, IsTheDefaultEngine) {
  Fixture f;
  EXPECT_EQ(f.sys.backend().kind(), "graph");
  EXPECT_EQ(f.sys.event_backend(), nullptr);
  EXPECT_EQ(f.sys.now(), 0U);
  f.sys.advance(5);
  EXPECT_EQ(f.sys.now(), 5U);  // logical clock: moves only when advanced
  const auto r = f.sys.query("a.red");
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(f.sys.now(), 5U);  // graph queries are instantaneous
  EXPECT_EQ(r.latency_ticks, 0U);
  EXPECT_EQ(r.retransmissions, 0U);
}

TEST(GraphBackend, RejectsFaultPlans) {
  Fixture f;
  const auto scheduled =
      f.sys.schedule_faults(sim::FaultPlan{}.correlated_outage({1}, 1'000, 1'000));
  ASSERT_FALSE(scheduled.ok());
  EXPECT_EQ(scheduled.error().code, util::Error::Code::kInvalidArgument);
}

TEST(EventBackend, DeliversOnHealthyTreeAndCostsSimulatedTime) {
  Fixture f;
  f.sys.use_event_backend();
  EXPECT_EQ(f.sys.backend().kind(), "event");
  ASSERT_NE(f.sys.event_backend(), nullptr);

  const auto r = f.sys.query("a.red");
  ASSERT_TRUE(r.delivered);
  EXPECT_GT(r.hops, 0U);
  EXPECT_GT(r.latency_ticks, 0U);  // a routed query is never free in sim time
  EXPECT_FALSE(r.used_bootstrap_cache);

  const auto from = f.sys.query_from("red", "b.blue");
  EXPECT_TRUE(from.delivered);
}

TEST(EventBackend, AgreesWithGraphBackendOnHealthyTree) {
  // Same admitted tree, no faults: both engines must agree on reachability
  // for every admitted name (hop taxonomy legitimately differs).
  Fixture graph_f;
  Fixture event_f;
  event_f.sys.use_event_backend();
  for (const char* name : {"red", "green", "a.red", "b.green", "a.blue", "b.cyan"}) {
    EXPECT_TRUE(graph_f.sys.query(name).delivered) << name;
    EXPECT_TRUE(event_f.sys.query(name).delivered) << name;
  }
}

TEST(EventBackend, InfersDeathFromSilenceAndRecovers) {
  Fixture f;
  f.sys.use_event_backend(tight_deadline_config());

  ASSERT_TRUE(f.sys.query("a.red").delivered);

  // The oracle edge is mirrored into the simulator: the node goes silent,
  // so the in-network query fails (there is no liveness oracle to consult).
  ASSERT_TRUE(f.sys.set_alive("a.red", false).ok());
  EXPECT_FALSE(f.sys.query("a.red").delivered);
  EXPECT_TRUE(f.sys.query("b.red").delivered);  // sibling unaffected

  // Revival is not instant knowledge: suspicion entries planted by the
  // failed attempt must expire (suspicion_ttl) before queries flow again.
  ASSERT_TRUE(f.sys.set_alive("a.red", true).ok());
  f.sys.advance(10);  // 10s > suspicion_ttl (4s at 1000 ticks/s)
  EXPECT_TRUE(f.sys.query("a.red").delivered);
}

TEST(EventBackend, ScheduledFaultWindowOpensAndCloses) {
  Fixture f;
  auto& event = f.sys.use_event_backend(tight_deadline_config());
  const auto victim = event.node_id("a.green");
  ASSERT_TRUE(victim.has_value());

  // Outage window [5s, 15s) in simulator ticks, armed relative to now.
  const auto scheduled = f.sys.schedule_faults(
      sim::FaultPlan{}.correlated_outage({*victim}, 5'000, 10'000));
  ASSERT_TRUE(scheduled.ok());
  EXPECT_EQ(scheduled.value(), 1U);

  ASSERT_TRUE(f.sys.query("a.green").delivered);  // before the window
  f.sys.advance(8);
  EXPECT_GE(f.sys.now(), 8U);
  EXPECT_FALSE(f.sys.query("a.green").delivered);  // inside the window
  f.sys.advance(20);                               // past repair + suspicion expiry
  EXPECT_TRUE(f.sys.query("a.green").delivered);

  const auto faults = event.fault_stats();
  EXPECT_EQ(faults.kills, 1U);
  EXPECT_EQ(faults.revivals, 1U);
}

TEST(EventBackend, ClockContinuesAcrossBackendSwaps) {
  Fixture f;
  f.sys.advance(7);  // graph logical clock
  f.sys.use_event_backend();
  EXPECT_EQ(f.sys.now(), 7U);  // swap does not rewind the timeline
  f.sys.advance(3);
  EXPECT_EQ(f.sys.now(), 10U);
  f.sys.use_graph_backend();
  EXPECT_EQ(f.sys.backend().kind(), "graph");
  EXPECT_EQ(f.sys.event_backend(), nullptr);
  EXPECT_EQ(f.sys.now(), 10U);
  EXPECT_TRUE(f.sys.query("a.red").delivered);
}

TEST(EventBackend, NameToNodeIdMappingCoversTheTree) {
  Fixture f;
  auto& event = f.sys.use_event_backend();
  // BFS from the root: the root is node 0; every admitted name maps to a
  // distinct id; unknown names map to nothing.
  const auto root = event.node_id(".");
  ASSERT_TRUE(root.has_value());
  EXPECT_EQ(*root, 0U);
  const auto zone = event.node_id("red");
  const auto host = event.node_id("a.red");
  ASSERT_TRUE(zone.has_value());
  ASSERT_TRUE(host.has_value());
  EXPECT_NE(*zone, *host);
  EXPECT_FALSE(event.node_id("ghost.red").has_value());

  // The snapshot materialized 1 root + 4 zones + 8 hosts.
  ASSERT_NE(event.simulation(), nullptr);
  EXPECT_EQ(event.simulation()->node_count(), 13U);
}

TEST(EventBackend, MembershipChangeRebuildsWithoutRewindingClock) {
  Fixture f;
  auto& event = f.sys.use_event_backend();
  ASSERT_TRUE(f.sys.query("a.red").delivered);
  f.sys.advance(5);
  const auto before = f.sys.now();

  ASSERT_TRUE(f.sys.admit("c.red").ok());  // invalidates the snapshot
  EXPECT_GE(f.sys.now(), before);          // clock folded into the offset
  EXPECT_TRUE(event.node_id("c.red").has_value());
  EXPECT_TRUE(f.sys.query("c.red").delivered);
  EXPECT_EQ(event.simulation()->node_count(), 14U);
}

TEST(EventBackend, BootstrapCacheServesQueriesWhenRootIsDown) {
  Fixture f;
  f.sys.use_event_backend(tight_deadline_config());
  // Seed the client cache: a delivered query caches the destination and its
  // level-1 ancestor, exactly as on the graph backend.
  ASSERT_TRUE(f.sys.query("a.blue").delivered);
  ASSERT_FALSE(f.sys.bootstrap_cache().empty());

  ASSERT_TRUE(f.sys.set_alive(".", false).ok());
  const auto r = f.sys.query("b.blue");
  ASSERT_TRUE(r.delivered);
  EXPECT_TRUE(r.used_bootstrap_cache);
}

TEST(EventBackend, FacadeTraceEventsShareTheSimulatorTimelineAndSchema) {
  Fixture f;
  trace::Tracer tracer;
  trace::RingBufferSink sink;
  tracer.add_sink(&sink);
  f.sys.set_tracer(&tracer);

  f.sys.use_event_backend();
  f.sys.advance(2);
  ASSERT_TRUE(f.sys.query("a.red").delivered);
  ASSERT_TRUE(f.sys.query("b.cyan").delivered);

  const auto events = sink.events();
  ASSERT_FALSE(events.empty());
  std::uint64_t last_at = 0;
  bool saw_submit = false;
  bool saw_delivered = false;
  for (const auto& event : events) {
    std::string error;
    EXPECT_TRUE(trace::validate_event_line(trace::to_json_line(event), &error)) << error;
    EXPECT_GE(event.at, last_at);  // one monotone timeline, facade + protocol
    last_at = event.at;
    saw_submit |= event.type == trace::EventType::kQuerySubmit;
    saw_delivered |= event.type == trace::EventType::kQueryDelivered;
  }
  // Facade events are stamped in simulator ticks: the queries were submitted
  // after advance(2), i.e. at or after tick 2000.
  EXPECT_TRUE(saw_submit);
  EXPECT_TRUE(saw_delivered);
  EXPECT_GE(last_at, 2'000U);
}

}  // namespace
}  // namespace hours
