// Scenario DSL: schema validator golden corpus (accept + reject with exact
// error paths), runner determinism across worker-thread counts, and the
// FaultPlan::parse error-position contract the $.faults.plan clause relies
// on.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "jobs/executor.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "sim/fault_injector.hpp"
#include "snapshot/json.hpp"

#ifndef HOURS_SCENARIO_DIR
#define HOURS_SCENARIO_DIR "scenarios"
#endif

namespace {

using namespace hours;

// A minimal valid ring document; reject cases are single-edit mutations of
// this (or of kHierarchyBase below), so each case isolates one field.
constexpr const char* kRingBase = R"({
  "magic": "hours-scenario",
  "version": 1,
  "name": "ring_base",
  "seed": 7,
  "system": {"kind": "ring", "size": 8},
  "workload": {
    "horizon": 20000,
    "window": 2000,
    "phases": [{"until": 10000, "interval": 500}, {"until": 20000, "interval": 250}]
  },
  "metrics": {
    "phases": [{"name": "early", "from": 0, "until": 10000},
               {"name": "late", "from": 10000, "until": 20000}],
    "expect": [{"kind": "phase_ge", "left": "late", "right": "early"}]
  }
})";

constexpr const char* kHierarchyBase = R"({
  "magic": "hours-scenario",
  "version": 1,
  "name": "hier_base",
  "seed": 9,
  "system": {"kind": "hierarchy", "backend": "event", "branching": [3, 3]},
  "workload": {
    "horizon": 60,
    "window": 10,
    "phases": [{"until": 60, "rate": 2}]
  }
})";

std::string validate_text(const std::string& text) {
  snapshot::Json doc;
  std::string error;
  if (!snapshot::parse_json(text, doc, &error)) return "json: " + error;
  return scenario::validate(doc);
}

/// One-shot substring replacement; fails the test if `from` is absent so a
/// stale mutation cannot silently validate the unmodified base.
std::string mutate(const std::string& base, const std::string& from, const std::string& to) {
  const auto at = base.find(from);
  EXPECT_NE(at, std::string::npos) << "mutation target not in base: " << from;
  std::string out = base;
  out.replace(at, from.size(), to);
  return out;
}

struct RejectCase {
  const char* base;
  const char* from;
  const char* to;
  const char* expect_in_error;  ///< must appear in the validator message
};

TEST(ScenarioValidate, AcceptsBaseDocuments) {
  EXPECT_EQ(validate_text(kRingBase), "");
  EXPECT_EQ(validate_text(kHierarchyBase), "");
}

TEST(ScenarioValidate, RejectCorpusNamesTheOffendingPath) {
  const std::vector<RejectCase> cases = {
      // Envelope.
      {kRingBase, "\"magic\": \"hours-scenario\"", "\"magic\": \"hours\"", "$.magic"},
      {kRingBase, "\"version\": 1", "\"version\": 2", "$.version"},
      {kRingBase, "\"name\": \"ring_base\"", "\"name\": \"Ring Base\"", "$.name"},
      {kRingBase, "\"seed\": 7", "\"seed\": \"7\"", "$.seed: expected u64"},
      {kRingBase, "\"seed\": 7", "\"seed\": 7, \"bogus\": 1", "$.bogus: unknown key"},
      // System clause.
      {kRingBase, "\"kind\": \"ring\"", "\"kind\": \"mesh\"", "$.system.kind"},
      {kRingBase, "\"size\": 8", "\"size\": 2", "$.system.size"},
      {kRingBase, "\"size\": 8", "\"size\": 8, \"branching\": [3]",
       "$.system.branching: unknown key"},
      {kRingBase, "\"size\": 8", "\"size\": \"eight\"", "$.system.size: expected u64"},
      {kHierarchyBase, "\"branching\": [3, 3]", "\"branching\": [3, 0]",
       "$.system.branching[1]"},
      {kHierarchyBase, "\"backend\": \"event\"", "\"backend\": \"oracle\"",
       "$.system.backend"},
      // Workload clause.
      {kRingBase, "\"horizon\": 20000,", "", "$.workload.horizon: required field missing"},
      {kRingBase, "\"window\": 2000", "\"window\": 0", "$.workload.window"},
      {kRingBase, "{\"until\": 20000, \"interval\": 250}",
       "{\"until\": 5000, \"interval\": 250}",
       "$.workload.phases[1].until: phase boundaries must be strictly increasing"},
      {kRingBase, "{\"until\": 20000, \"interval\": 250}",
       "{\"until\": 19000, \"interval\": 250}",
       "$.workload.phases[1].until: last phase must end exactly at the horizon"},
      {kRingBase, "\"interval\": 500", "\"interval\": 0", "$.workload.phases[0].interval"},
      {kRingBase, "\"interval\": 500", "\"rate\": 500",
       "$.workload.phases[0].rate: unknown key"},
      {kHierarchyBase, "\"rate\": 2", "\"rate\": 2, \"popularity\": {\"kind\": \"pareto\"}",
       "$.workload.phases[0].popularity.kind"},
      {kHierarchyBase, "\"rate\": 2",
       "\"rate\": 2, \"popularity\": {\"kind\": \"hotspot\", \"hot\": 9, \"fraction\": \"0.5\"}",
       "$.workload.phases[0].popularity.hot"},
      {kHierarchyBase, "\"rate\": 2",
       "\"rate\": 2, \"popularity\": {\"kind\": \"zipf\", \"exponent\": \"fast\"}",
       "$.workload.phases[0].popularity.exponent"},
      {kRingBase, "\"window\": 2000,", "\"window\": 2000, \"alive_sources\": 2,",
       "$.workload.alive_sources: expected 0 or 1"},
      // Fault clause (plan errors carry FaultPlan::parse line/col context).
      {kRingBase, "\"metrics\"", "\"faults\": {\"plan\": [\"crash(1, bogus)\"]}, \"metrics\"",
       "$.faults.plan: line 1, col"},
      {kRingBase, "\"metrics\"",
       "\"faults\": {\"plan\": [\"byzantine(1, NodeBehavior(2), 5)\"]}, \"metrics\"",
       "$.faults.plan: byzantine() is unsupported on the ring system"},
      {kHierarchyBase, "\"backend\": \"event\"", "\"backend\": \"graph\"", ""},  // setup below
      // Attacker clause.
      {kRingBase, "\"metrics\"", "\"attacker\": {\"kind\": \"strike\"}, \"metrics\"",
       "$.attacker.kind: \"strike\" requires a hierarchy system"},
      {kHierarchyBase, "\"workload\"",
       "\"attacker\": {\"kind\": \"adaptive\"}, \"workload\"",
       "$.attacker.kind: \"adaptive\" requires a ring system"},
      {kHierarchyBase, "\"workload\"",
       "\"attacker\": {\"kind\": \"strike\", \"victims\": [\"n9\"], \"at\": 5, "
       "\"duration\": 5}, \"workload\"",
       "$.attacker.victims[0]"},
      {kHierarchyBase, "\"workload\"",
       "\"attacker\": {\"kind\": \"cache_busting\", \"rate\": 5, \"from\": 20, "
       "\"until\": 10}, \"workload\"",
       "$.attacker.until: must be > from"},
      // Metrics clause.
      {kRingBase, "\"phases\": [{\"name\": \"early\"",
       "\"emit\": [\"windows\"], \"phases\": [{\"name\": \"early\"",
       "$.metrics.emit[0]"},
      {kRingBase, "{\"name\": \"late\", \"from\": 10000, \"until\": 20000}",
       "{\"name\": \"early\", \"from\": 10000, \"until\": 20000}",
       "$.metrics.phases[1].name: duplicate phase name"},
      {kRingBase, "\"right\": \"early\"", "\"right\": \"missing\"",
       "\"missing\" is not a defined $.metrics.phases name"},
      {kRingBase, "{\"kind\": \"phase_ge\", \"left\": \"late\", \"right\": \"early\"}",
       "{\"kind\": \"hit_rate_ge\", \"left\": \"late\", \"right\": \"early\"}",
       "$.metrics.expect[0].kind: hit-rate expectations are hierarchy-only"},
      {kRingBase, "{\"kind\": \"phase_ge\", \"left\": \"late\", \"right\": \"early\"}",
       "{\"kind\": \"flag\", \"name\": \"remerged\"}",
       "flag expectations require $.metrics.fixpoint = 1"},
      {kHierarchyBase, "\"workload\"", "\"metrics\": {\"fixpoint\": 1}, \"workload\"",
       "$.metrics.fixpoint: the no-fault fixpoint check is ring-only"},
  };
  for (const auto& c : cases) {
    if (c.expect_in_error[0] == '\0') continue;  // placeholder row
    const std::string text = mutate(c.base, c.from, c.to);
    const std::string error = validate_text(text);
    EXPECT_NE(error, "") << "mutation should not validate: " << c.to;
    EXPECT_NE(error.find(c.expect_in_error), std::string::npos)
        << "error \"" << error << "\" should mention \"" << c.expect_in_error << "\"";
  }
}

TEST(ScenarioValidate, GraphBackendRejectsFaultPlans) {
  std::string text = mutate(kHierarchyBase, "\"backend\": \"event\"", "\"backend\": \"graph\"");
  text = mutate(text, "\"workload\"",
                "\"faults\": {\"plan\": [\"crash(1, 5, 9)\"]}, \"workload\"");
  const std::string error = validate_text(text);
  EXPECT_NE(error.find("$.faults: the graph backend cannot schedule faults"),
            std::string::npos)
      << error;
}

std::vector<std::string> library_files() {
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(HOURS_SCENARIO_DIR)) {
    if (entry.path().extension() == ".json") paths.push_back(entry.path().string());
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

TEST(ScenarioLibrary, EveryShippedScenarioValidates) {
  const auto paths = library_files();
  EXPECT_GE(paths.size(), 8u) << "the seeded library must stay populated";
  for (const auto& path : paths) {
    scenario::Scenario sc;
    EXPECT_EQ(scenario::load_file(path, sc), "") << path;
  }
}

TEST(ScenarioRunner, MatrixBytesAreThreadCountInvariant) {
  std::vector<scenario::Scenario> scenarios;
  for (const auto& path : library_files()) {
    scenario::Scenario sc;
    ASSERT_EQ(scenario::load_file(path, sc), "") << path;
    scenarios.push_back(std::move(sc));
  }
  ASSERT_GE(scenarios.size(), 8u);

  scenario::RunOptions quick;
  quick.interval_scale = 2;
  quick.rate_divisor = 2;

  std::vector<std::vector<scenario::RunOutcome>> runs;
  for (const unsigned threads : {1u, 2u, 4u}) {
    jobs::Executor executor{threads};
    runs.push_back(scenario::run_matrix(scenarios, executor, quick));
  }
  for (std::size_t t = 1; t < runs.size(); ++t) {
    ASSERT_EQ(runs[t].size(), runs[0].size());
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_EQ(runs[t][i].json, runs[0][i].json)
          << scenarios[i].name << " diverged between 1 and " << (t == 1 ? 2 : 4)
          << " worker threads";
      EXPECT_EQ(runs[t][i].expectations_met, runs[0][i].expectations_met);
    }
  }
}

TEST(ScenarioRunner, RunIsByteReproducibleAndReportsFailures) {
  // phase_lt(early, early) can never hold: the runner must report the failed
  // check while still producing a deterministic report.
  const std::string text =
      mutate(kRingBase, "{\"kind\": \"phase_ge\", \"left\": \"late\", \"right\": \"early\"}",
             "{\"kind\": \"phase_lt\", \"left\": \"early\", \"right\": \"early\"}");
  snapshot::Json doc;
  std::string error;
  ASSERT_TRUE(snapshot::parse_json(text, doc, &error)) << error;
  scenario::Scenario sc;
  ASSERT_EQ(scenario::parse(doc, sc), "");

  const auto first = scenario::run(sc);
  const auto second = scenario::run(sc);
  EXPECT_EQ(first.json, second.json);
  EXPECT_FALSE(first.expectations_met);
  ASSERT_EQ(first.failed.size(), 1u);
  EXPECT_EQ(first.failed[0], "phase_lt(early, early)");
  EXPECT_NE(first.json.find("{\"check\":\"phase_lt(early, early)\",\"pass\":false}"),
            std::string::npos);
}

TEST(FaultPlanParse, ErrorsCarryLineColumnAndNearContext) {
  std::string error;
  // Column points at the first unparsable token, "near" quotes it.
  EXPECT_FALSE(sim::FaultPlan::parse("crash(1, bogus)", &error).has_value());
  EXPECT_NE(error.find("line 1, col 10"), std::string::npos) << error;
  EXPECT_NE(error.find("malformed crash()"), std::string::npos) << error;
  EXPECT_NE(error.find("near \"bogus)\""), std::string::npos) << error;

  // Later lines report their own line number.
  EXPECT_FALSE(
      sim::FaultPlan::parse("crash(1, 5, 9)\nflap(2, 10, 3,)", &error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_NE(error.find("malformed flap()"), std::string::npos) << error;

  // Unknown builders quote the offending token instead of the whole line.
  EXPECT_FALSE(sim::FaultPlan::parse("frobnicate(1, 2)", &error).has_value());
  EXPECT_NE(error.find("unknown builder call \"frobnicate\""), std::string::npos) << error;

  // Truncation past the end of the line degrades to an explicit marker.
  EXPECT_FALSE(sim::FaultPlan::parse("crash(1, 5, 9", &error).has_value());
  EXPECT_NE(error.find("at end of line"), std::string::npos) << error;

  // The describe() round-trip is unaffected by the richer errors.
  sim::FaultPlan plan;
  plan.crash(3, 100, 900).loss_episode(0.25, 10, 20);
  const auto reparsed = sim::FaultPlan::parse(plan.describe(), &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  EXPECT_TRUE(*reparsed == plan);
}

}  // namespace
