// The mixed hierarchical/overlay router (Section 3.3 + Algorithm 2).
#include <gtest/gtest.h>

#include "hierarchy/router.hpp"
#include "hierarchy/synthetic.hpp"

namespace hours::hierarchy {
namespace {

overlay::OverlayParams params(std::uint32_t k = 5, std::uint32_t q = 4) {
  overlay::OverlayParams p;
  p.k = k;
  p.q = q;
  return p;
}

SyntheticHierarchy make_tree(std::vector<std::uint32_t> fanout, std::uint32_t k = 5) {
  SyntheticSpec spec;
  spec.fanout = std::move(fanout);
  return SyntheticHierarchy{spec, params(k)};
}

TEST(Router, PureHierarchicalPath) {
  auto h = make_tree({8, 8, 8});
  Router router{h};
  const NodePath dest{3, 5, 1};
  const auto out = router.route(dest);
  ASSERT_TRUE(out.delivered);
  EXPECT_EQ(out.hops, 3U);
  EXPECT_EQ(out.hierarchical_hops, 3U);
  EXPECT_EQ(out.overlay_hops, 0U);
  EXPECT_EQ(out.inter_overlay_hops, 0U);
}

TEST(Router, RouteToRootAndLevelOne) {
  auto h = make_tree({4, 4});
  Router router{h};
  EXPECT_TRUE(router.route({}).delivered);
  const auto out = router.route({2});
  EXPECT_TRUE(out.delivered);
  EXPECT_EQ(out.hops, 1U);
}

TEST(Router, DeadDestinationFails) {
  auto h = make_tree({4, 4});
  Router router{h};
  h.kill({1, 2});
  const auto out = router.route({1, 2});
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(out.failure, util::Error::Code::kDead);
}

TEST(Router, InvalidDestinationFails) {
  auto h = make_tree({4, 4});
  Router router{h};
  const auto out = router.route({1, 99});
  EXPECT_FALSE(out.delivered);
}

TEST(Router, DetoursAroundDeadLevel1Node) {
  auto h = make_tree({16, 16, 4});
  Router router{h};
  const NodePath dest{5, 7, 2};

  const auto clean = router.route(dest);
  ASSERT_TRUE(clean.delivered);

  h.kill({5});  // the level-1 ancestor dies
  const auto detour = router.route(dest);
  ASSERT_TRUE(detour.delivered);
  EXPECT_GT(detour.hops, clean.hops);
  EXPECT_GE(detour.inter_overlay_hops, 1U);  // went through a nephew pointer
  EXPECT_GT(detour.overlay_hops, 0U);
}

TEST(Router, SurvivesWholePathDead) {
  // "even if all intermediate nodes are attacked simultaneously, the
  // delivery ratio is still 100%" (Section 5.1).
  auto h = make_tree({16, 16, 4});
  Router router{h};
  const NodePath dest{5, 7, 2};
  h.kill({5});
  h.kill({5, 7});
  const auto out = router.route(dest);
  ASSERT_TRUE(out.delivered);
  EXPECT_GE(out.inter_overlay_hops, 1U);
}

TEST(Router, RecordPathTracesContiguousRoute) {
  auto h = make_tree({16, 16, 4});
  Router router{h};
  h.kill({5});
  RouteOptions opts;
  opts.record_path = true;
  const NodePath dest{5, 7, 2};
  const auto out = router.route(dest, opts);
  ASSERT_TRUE(out.delivered);
  ASSERT_FALSE(out.path.empty());
  EXPECT_EQ(out.path.front(), NodePath{});
  EXPECT_EQ(out.path.back(), dest);
  // Recorded trace has exactly hops+1 positions.
  EXPECT_EQ(out.path.size(), out.hops + 1U);
}

TEST(Router, BootstrapFromSiblingOverlay) {
  auto h = make_tree({16, 8});
  Router router{h};
  h.set_root_alive(false);

  // Start at a level-1 node that is not the destination's ancestor: the
  // query must cross the level-1 overlay sideways.
  const NodePath dest{5, 3};
  const auto out = router.route(dest, {}, StartPoint{{9}});
  ASSERT_TRUE(out.delivered);
  EXPECT_GT(out.overlay_hops, 0U);
}

TEST(Router, BootstrapFromUnrelatedSubtreeClimbs) {
  auto h = make_tree({8, 8, 4});
  Router router{h};
  const NodePath dest{5, 3, 1};
  const auto out = router.route(dest, {}, StartPoint{{2, 6, 0}});
  ASSERT_TRUE(out.delivered);
  EXPECT_GE(out.hops, 5U);  // climbed out, descended back down
}

TEST(Router, BootstrapStartBelowDestination) {
  auto h = make_tree({8, 8, 4});
  Router router{h};
  const NodePath dest{5, 3};
  const auto out = router.route(dest, {}, StartPoint{{5, 3, 2}});
  ASSERT_TRUE(out.delivered);
  EXPECT_EQ(out.hops, 1U);  // one climb
}

TEST(Router, DeadStartFails) {
  auto h = make_tree({8, 8});
  Router router{h};
  h.kill({3});
  const auto out = router.route({5, 1}, {}, StartPoint{{3}});
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(out.failure, util::Error::Code::kDead);
}

TEST(Router, DeadRootFailsWithoutBootstrap) {
  auto h = make_tree({8, 8});
  Router router{h};
  h.set_root_alive(false);
  const auto out = router.route({5, 1});
  EXPECT_FALSE(out.delivered);
}

TEST(Router, EntireSiblingSetDeadIsUnreachable) {
  auto h = make_tree({4, 4});
  Router router{h};
  for (ids::RingIndex i = 0; i < 4; ++i) h.kill({1, i});
  // Destination itself dead -> kDead; pick an alive dest whose level-1
  // ancestor set is all dead instead.
  for (ids::RingIndex i = 0; i < 4; ++i) h.revive({1, i});
  for (ids::RingIndex i = 0; i < 4; ++i) h.kill({i});
  const auto out = router.route({1, 2});
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(out.failure, util::Error::Code::kUnreachable);
}

TEST(Router, FootnoteFourChainedOverlayDescent) {
  // Both v_1 and v_2 dead: the query must chain two overlay traversals
  // (S_1 then S_2) without ever resuming hierarchical forwarding.
  auto h = make_tree({16, 16, 4});
  Router router{h};
  const NodePath dest{5, 7, 2};
  h.kill({5});
  h.kill({5, 7});
  RouteOptions opts;
  opts.record_path = true;
  const auto out = router.route(dest, opts);
  ASSERT_TRUE(out.delivered);
  EXPECT_GE(out.inter_overlay_hops, 2U);
}

TEST(Router, RandomEntrancePolicyStillDelivers) {
  auto h = make_tree({32, 8});
  Router router{h};
  h.kill({5});
  RouteOptions opts;
  opts.entrance = EntrancePolicy::kRandomAliveChild;
  for (int trial = 0; trial < 20; ++trial) {
    const auto out = router.route({5, 3}, opts);
    ASSERT_TRUE(out.delivered);
  }
}

TEST(Router, DropperInsiderKillsQueriesThroughIt) {
  auto h = make_tree({16, 8});
  Router router{h};
  const NodePath dest{5, 3};
  h.kill({5});

  // Find the detour and compromise its first overlay node.
  RouteOptions opts;
  opts.record_path = true;
  const auto clean = router.route(dest, opts);
  ASSERT_TRUE(clean.delivered);
  ASSERT_GE(clean.path.size(), 2U);
  const NodePath& first_detour = clean.path[1];
  ASSERT_EQ(first_detour.size(), 1U);
  h.overlay_of({}).set_behavior(first_detour.back(), overlay::NodeBehavior::kDropper);

  const auto dropped = router.route(dest, opts);
  EXPECT_FALSE(dropped.delivered);
  EXPECT_EQ(dropped.failure, util::Error::Code::kDropped);
}

TEST(Router, MaxHopsBudgetIsEnforced) {
  auto h = make_tree({64, 16});
  Router router{h};
  const NodePath dest{40, 7};

  // A healthy 2-hop route fits any budget >= 2.
  RouteOptions opts;
  opts.max_hops = 2;
  EXPECT_TRUE(router.route(dest, opts).delivered);

  // Force a long detour, then squeeze the budget below it.
  h.kill({40});
  RouteOptions unbounded;
  const auto full = router.route(dest, unbounded);
  ASSERT_TRUE(full.delivered);
  ASSERT_GT(full.hops, 2U);

  RouteOptions tight;
  tight.max_hops = 2;
  const auto capped = router.route(dest, tight);
  EXPECT_FALSE(capped.delivered);
  EXPECT_TRUE(capped.failure == util::Error::Code::kHopLimit ||
              capped.failure == util::Error::Code::kUnreachable);
  EXPECT_LE(capped.hops, 4U);  // within a few hops of the cap

  RouteOptions generous;
  generous.max_hops = full.hops + 8;
  EXPECT_TRUE(router.route(dest, generous).delivered);
}

// Parameterized sweep: delivery through one dead ancestor across shapes.
struct TreeCase {
  std::uint32_t level1;
  std::uint32_t level2;
  std::uint32_t k;
};

class DetourSweep : public ::testing::TestWithParam<TreeCase> {};

TEST_P(DetourSweep, DeliversThroughDeadAncestor) {
  const auto [l1, l2, k] = GetParam();
  SyntheticSpec spec;
  spec.fanout = {l1, l2};
  SyntheticHierarchy h{spec, params(k)};
  Router router{h};
  const NodePath dest{l1 / 2, l2 / 2};
  h.kill({l1 / 2});
  const auto out = router.route(dest);
  ASSERT_TRUE(out.delivered) << "l1=" << l1 << " l2=" << l2 << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Shapes, DetourSweep,
                         ::testing::Values(TreeCase{8, 8, 5}, TreeCase{64, 16, 5},
                                           TreeCase{256, 64, 5}, TreeCase{64, 16, 1},
                                           TreeCase{64, 16, 10}, TreeCase{3, 3, 2}));

}  // namespace
}  // namespace hours::hierarchy
