// Client resolver: TTL answer caching in front of the routed lookup
// (Section 7's caching discussion).
#include <gtest/gtest.h>

#include "hours/resolver.hpp"

namespace hours {
namespace {

struct Fixture {
  HoursSystem sys;
  Fixture() {
    HoursConfig cfg;
    cfg.overlay.k = 3;
    cfg.overlay.q = 2;
    for (const char* zone : {"red", "green", "blue", "cyan"}) {
      sys.admit(zone);
      for (const char* host : {"a", "b"}) {
        const std::string n = std::string{host} + "." + zone;
        sys.admit(n);
        sys.add_record(n, store::Record{"A", "10.0.0." + std::string{host}, 100});
      }
    }
  }
};

TEST(HoursDataPlane, LookupReturnsRecords) {
  Fixture f;
  const auto r = f.sys.lookup("a.red");
  ASSERT_TRUE(r.query.delivered);
  ASSERT_EQ(r.records.size(), 1U);
  EXPECT_EQ(r.records[0].type, "A");
}

TEST(HoursDataPlane, RecordsRequireAdmittedOwner) {
  Fixture f;
  EXPECT_FALSE(f.sys.add_record("ghost.red", store::Record{"A", "x", 1}).ok());
  EXPECT_TRUE(f.sys.add_record("b.blue", store::Record{"TXT", "x", 1}).ok());
}

TEST(HoursDataPlane, LookupOfNodeWithoutRecords) {
  Fixture f;
  const auto r = f.sys.lookup("red");
  EXPECT_TRUE(r.query.delivered);
  EXPECT_TRUE(r.records.empty());
}

TEST(Resolver, CachesWithinTtl) {
  Fixture f;
  Resolver resolver{f.sys};

  const auto first = resolver.resolve("a.red", 0);
  ASSERT_TRUE(first.answered);
  EXPECT_FALSE(first.from_cache);
  EXPECT_GT(first.hops, 0U);

  const auto second = resolver.resolve("a.red", 50);  // within ttl=100
  ASSERT_TRUE(second.answered);
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(second.hops, 0U);
  EXPECT_EQ(second.records, first.records);

  const auto third = resolver.resolve("a.red", 150);  // expired
  ASSERT_TRUE(third.answered);
  EXPECT_FALSE(third.from_cache);

  EXPECT_EQ(resolver.stats().cache_hits, 1U);
  EXPECT_EQ(resolver.stats().cache_misses, 2U);
}

TEST(Resolver, CachedAnswersSurviveTotalOutage) {
  // The paper's point about caching being opportunistic: cached names keep
  // resolving through an outage, anything else fails.
  Fixture f;
  Resolver resolver{f.sys};
  ASSERT_TRUE(resolver.resolve("a.green", 0).answered);

  f.sys.set_alive(".", false);
  for (const char* zone : {"red", "green", "blue", "cyan"}) {
    f.sys.set_alive(zone, false);
  }

  EXPECT_TRUE(resolver.resolve("a.green", 10).answered);  // cache hit
  // Sibling of the cached node: bootstraps sideways through the (dead)
  // parent's child overlay — HOURS at work, not the cache.
  const auto sibling = resolver.resolve("b.green", 10);
  EXPECT_TRUE(sibling.answered);
  EXPECT_FALSE(sibling.from_cache);
  // A different zone is beyond reach: the only cached nodes sit under the
  // dead "green" and cannot climb out of it.
  EXPECT_FALSE(resolver.resolve("b.blue", 10).answered);
  EXPECT_EQ(resolver.stats().failures, 1U);
}

TEST(Resolver, CapacityEviction) {
  Fixture f;
  Resolver resolver{f.sys, /*capacity=*/2};
  ASSERT_TRUE(resolver.resolve("a.red", 0).answered);
  ASSERT_TRUE(resolver.resolve("a.green", 0).answered);
  ASSERT_TRUE(resolver.resolve("a.blue", 0).answered);  // evicts one
  EXPECT_LE(resolver.cached_names(), 2U);
  EXPECT_GE(resolver.stats().evictions, 1U);
}

TEST(Resolver, FailureIsNotCached) {
  Fixture f;
  Resolver resolver{f.sys};
  f.sys.set_alive("a.cyan", false);
  EXPECT_FALSE(resolver.resolve("a.cyan", 0).answered);
  f.sys.set_alive("a.cyan", true);
  const auto r = resolver.resolve("a.cyan", 1);
  EXPECT_TRUE(r.answered);
  EXPECT_FALSE(r.from_cache);
}

TEST(Resolver, FailureAccountingAndHitRateDenominator) {
  // Failures are forwarded-but-unanswered lookups; they must count in the
  // hit-rate denominator (an unavailable name is not a cache win).
  Fixture f;
  Resolver resolver{f.sys};
  f.sys.set_alive("a.cyan", false);
  EXPECT_FALSE(resolver.resolve("a.cyan", 0).answered);
  EXPECT_FALSE(resolver.resolve("a.cyan", 1).answered);
  ASSERT_TRUE(resolver.resolve("a.red", 2).answered);   // miss
  ASSERT_TRUE(resolver.resolve("a.red", 3).answered);   // hit
  EXPECT_EQ(resolver.stats().failures, 2U);
  EXPECT_EQ(resolver.stats().cache_misses, 1U);
  EXPECT_EQ(resolver.stats().cache_hits, 1U);
  EXPECT_DOUBLE_EQ(resolver.stats().hit_rate(), 0.25);
  // Failures leave no cache entry behind.
  EXPECT_EQ(resolver.peek("a.cyan", 4), nullptr);
}

TEST(Resolver, EvictionPrefersExpiredThenEarliestExpiry) {
  Fixture f;
  Resolver resolver{f.sys, /*capacity=*/3};
  resolver.insert("short", 0, {store::Record{"A", "1", 10}});
  resolver.insert("mid", 0, {store::Record{"A", "2", 50}});
  resolver.insert("long", 0, {store::Record{"A", "3", 100}});
  ASSERT_EQ(resolver.cached_names(), 3U);

  // At t=20 "short" is expired; inserting under pressure drops exactly it.
  resolver.insert("fresh", 20, {store::Record{"A", "4", 100}});
  EXPECT_EQ(resolver.cached_names(), 3U);
  EXPECT_EQ(resolver.stats().evictions, 1U);
  EXPECT_EQ(resolver.peek("short", 20), nullptr);
  EXPECT_NE(resolver.peek("mid", 20), nullptr);
  EXPECT_NE(resolver.peek("long", 20), nullptr);

  // Nothing expired now: the entry closest to expiry ("mid") is the victim.
  resolver.insert("newest", 20, {store::Record{"A", "5", 100}});
  EXPECT_EQ(resolver.cached_names(), 3U);
  EXPECT_EQ(resolver.stats().evictions, 2U);
  EXPECT_EQ(resolver.peek("mid", 20), nullptr);
  EXPECT_NE(resolver.peek("long", 20), nullptr);
  EXPECT_NE(resolver.peek("newest", 20), nullptr);
}

TEST(Resolver, MultiRecordAnswerCachedUnderMinimumTtl) {
  Fixture f;
  Resolver resolver{f.sys, /*capacity=*/4};
  resolver.insert("multi", 0,
                  {store::Record{"A", "1", 80}, store::Record{"TXT", "t", 30}});
  EXPECT_NE(resolver.peek("multi", 29), nullptr);   // within the min TTL
  EXPECT_EQ(resolver.peek("multi", 30), nullptr);   // the 30s record bounds it
}

TEST(Resolver, TtlOfSixtyIsNotASentinel) {
  // Regression: min_ttl() once started its accumulator at the 60s
  // no-records default, so a record whose TTL *was* 60 lost to any larger
  // sibling and {60, 300} stayed cached for 300s.
  Fixture f;
  Resolver resolver{f.sys, /*capacity=*/4};
  resolver.insert("pair", 0,
                  {store::Record{"A", "1", 60}, store::Record{"TXT", "t", 300}});
  EXPECT_NE(resolver.peek("pair", 59), nullptr);
  EXPECT_EQ(resolver.peek("pair", 60), nullptr);  // bounded by the 60s record

  // TTLs above 60 must still win over the empty-answer default...
  resolver.insert("slow", 0, {store::Record{"A", "1", 200}});
  EXPECT_NE(resolver.peek("slow", 199), nullptr);
  EXPECT_EQ(resolver.peek("slow", 200), nullptr);
  // ...and an answer with no records still gets the 60s existence TTL.
  resolver.insert("bare", 0, {});
  EXPECT_NE(resolver.peek("bare", 59), nullptr);
  EXPECT_EQ(resolver.peek("bare", 60), nullptr);
}

TEST(Resolver, ExpiryBoundaryIsExclusive) {
  // An entry expiring at T is stale *at* T, for peek and resolve alike.
  Fixture f;
  Resolver resolver{f.sys};
  ASSERT_TRUE(resolver.resolve("a.red", 0).answered);  // ttl=100 -> expires_at=100
  EXPECT_NE(resolver.peek("a.red", 99), nullptr);
  EXPECT_EQ(resolver.peek("a.red", 100), nullptr);

  const auto at_expiry = resolver.resolve("a.red", 100);
  ASSERT_TRUE(at_expiry.answered);
  EXPECT_FALSE(at_expiry.from_cache);  // refetched, not served stale
  EXPECT_EQ(resolver.stats().cache_hits, 0U);
  EXPECT_EQ(resolver.stats().cache_misses, 2U);
}

TEST(Resolver, EvictionCountsEveryExpiredDrop) {
  // A single insert under capacity pressure may sweep several expired
  // entries; each one is an eviction, not just the first.
  Fixture f;
  Resolver resolver{f.sys, /*capacity=*/3};
  resolver.insert("e1", 0, {store::Record{"A", "1", 5}});
  resolver.insert("e2", 0, {store::Record{"A", "2", 10}});
  resolver.insert("e3", 0, {store::Record{"A", "3", 15}});
  ASSERT_EQ(resolver.cached_names(), 3U);

  resolver.insert("fresh", 50, {store::Record{"A", "4", 100}});  // all three expired
  EXPECT_EQ(resolver.stats().evictions, 3U);
  EXPECT_EQ(resolver.cached_names(), 1U);
  EXPECT_NE(resolver.peek("fresh", 50), nullptr);

  // No expired entries now: exactly one (earliest-expiry) victim.
  resolver.insert("f2", 50, {store::Record{"A", "5", 200}});
  resolver.insert("f3", 50, {store::Record{"A", "6", 300}});
  resolver.insert("f4", 50, {store::Record{"A", "7", 400}});
  EXPECT_EQ(resolver.stats().evictions, 4U);
  EXPECT_EQ(resolver.cached_names(), 3U);
  EXPECT_EQ(resolver.peek("fresh", 50), nullptr);  // closest expiry lost
}

TEST(Resolver, BackendClockDrivesTtlExpiry) {
  // The now-less overloads read system.now(): cache TTLs live on the
  // backend timeline, so advancing the clock ages entries.
  Fixture f;
  Resolver resolver{f.sys};
  const auto first = resolver.resolve("a.red");
  ASSERT_TRUE(first.answered);
  EXPECT_FALSE(first.from_cache);

  f.sys.advance(99);  // ttl=100, still fresh
  EXPECT_TRUE(resolver.resolve("a.red").from_cache);
  EXPECT_NE(resolver.peek("a.red"), nullptr);

  f.sys.advance(1);  // now == expires_at
  EXPECT_EQ(resolver.peek("a.red"), nullptr);
  const auto refreshed = resolver.resolve("a.red");
  ASSERT_TRUE(refreshed.answered);
  EXPECT_FALSE(refreshed.from_cache);
}

TEST(Resolver, CacheSurvivesBackendSwapAndExpiresAcrossClockJump) {
  // Swapping engines carries the clock forward, so cached answers stay
  // valid across the swap; a large advance() on the new backend then ages
  // them out like any other passage of time.
  Fixture f;
  Resolver resolver{f.sys};
  ASSERT_TRUE(resolver.resolve("a.red").answered);  // graph backend, t=0

  f.sys.use_event_backend();
  ASSERT_EQ(f.sys.now(), 0U);
  EXPECT_TRUE(resolver.resolve("a.red").from_cache);  // swap kept the entry live

  f.sys.advance(250);  // clock jump far past the 100s TTL
  EXPECT_EQ(resolver.peek("a.red"), nullptr);
  const auto after_jump = resolver.resolve("a.red");
  ASSERT_TRUE(after_jump.answered);
  EXPECT_FALSE(after_jump.from_cache);  // re-routed through the event engine
  EXPECT_EQ(resolver.stats().cache_hits, 1U);
  EXPECT_EQ(resolver.stats().cache_misses, 2U);
}

TEST(Resolver, PeekDoesNotMutateStats) {
  Fixture f;
  Resolver resolver{f.sys};
  ASSERT_TRUE(resolver.resolve("a.red", 0).answered);
  const auto before = resolver.stats();

  ASSERT_NE(resolver.peek("a.red", 1), nullptr);    // fresh hit
  EXPECT_EQ(resolver.peek("a.green", 1), nullptr);  // absent
  EXPECT_EQ(resolver.peek("a.red", 1000), nullptr); // expired

  EXPECT_EQ(resolver.stats().cache_hits, before.cache_hits);
  EXPECT_EQ(resolver.stats().cache_misses, before.cache_misses);
  EXPECT_EQ(resolver.stats().failures, before.failures);
  EXPECT_EQ(resolver.stats().evictions, before.evictions);
  EXPECT_EQ(resolver.cached_names(), 1U);  // peek of an expired entry does not erase
}

TEST(Resolver, ServesThroughCoordinatedStrike) {
  // End-to-end: records keep flowing while a zone and its ring neighborhood
  // are under a coordinated neighbor attack.
  Fixture f;
  Resolver resolver{f.sys};
  ASSERT_TRUE(f.sys.strike("red", attack::Strategy::kNeighbor, 2).ok());

  const auto r = resolver.resolve("a.red", 0);
  ASSERT_TRUE(r.answered);
  EXPECT_FALSE(r.from_cache);
  ASSERT_EQ(r.records.size(), 1U);

  ASSERT_TRUE(f.sys.lift_attack("red").ok());
  const auto healed = f.sys.query("a.red");
  ASSERT_TRUE(healed.delivered);
  EXPECT_EQ(healed.overlay_hops, 0U);
}

}  // namespace
}  // namespace hours
