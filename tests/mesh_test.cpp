// Mesh topology (Section 7): nodes with multiple parents join multiple
// overlays, gaining multiple top-down paths and therefore resilience beyond
// the tree case.
#include <gtest/gtest.h>

#include "hierarchy/named.hpp"
#include "hours/hours.hpp"

namespace hours {
namespace {

naming::Name name(std::string_view text) { return naming::Name::parse(text).value(); }

overlay::OverlayParams params() {
  overlay::OverlayParams p;
  p.k = 3;
  p.q = 2;
  return p;
}

struct MeshFixture {
  hierarchy::NamedHierarchy h{params()};
  MeshFixture() {
    for (const char* region : {"east", "west", "north", "south"}) {
      EXPECT_TRUE(h.admit(name(region)).ok());
      for (const char* site : {"s1", "s2"}) {
        EXPECT_TRUE(h.admit(name(std::string{site} + "." + region)).ok());
      }
    }
    // s1.east also peers under "west": two parents, two paths.
    EXPECT_TRUE(h.admit_secondary(name("s1.east"), name("west")).ok());
  }
};

TEST(Mesh, SecondaryAdmissionValidation) {
  MeshFixture f;
  // Unknown node / parent.
  EXPECT_FALSE(f.h.admit_secondary(name("ghost.east"), name("west")).ok());
  EXPECT_FALSE(f.h.admit_secondary(name("s1.east"), name("ghost")).ok());
  // Wrong level.
  EXPECT_FALSE(f.h.admit_secondary(name("s1.east"), name("s2.west")).ok());
  EXPECT_FALSE(f.h.admit_secondary(name("east"), name("west")).ok());
  // Duplicate parents.
  EXPECT_FALSE(f.h.admit_secondary(name("s1.east"), name("east")).ok());
  EXPECT_FALSE(f.h.admit_secondary(name("s1.east"), name("west")).ok());
}

TEST(Mesh, MemberOfBothOverlays) {
  MeshFixture f;
  const auto east = f.h.resolve(name("east")).value();
  const auto west = f.h.resolve(name("west")).value();
  EXPECT_EQ(f.h.child_count(east), 2U);
  EXPECT_EQ(f.h.child_count(west), 3U);  // s1.west, s2.west + alias s1.east
}

TEST(Mesh, ResolvePathsEnumeratesBoth) {
  MeshFixture f;
  const auto paths = f.h.resolve_paths(name("s1.east"));
  ASSERT_EQ(paths.size(), 2U);
  EXPECT_NE(paths[0], paths[1]);
  // Primary path first: its level-1 index is east's.
  const auto east = f.h.resolve(name("east")).value();
  EXPECT_EQ(paths[0][0], east[0]);
  const auto west = f.h.resolve(name("west")).value();
  EXPECT_EQ(paths[1][0], west[0]);
  // Both map back to the same node.
  EXPECT_EQ(f.h.name_of(paths[0]).value(), name("s1.east"));
  EXPECT_EQ(f.h.name_of(paths[1]).value(), name("s1.east"));
}

TEST(Mesh, NonMeshNodeHasOnePath) {
  MeshFixture f;
  EXPECT_EQ(f.h.resolve_paths(name("s2.north")).size(), 1U);
  EXPECT_EQ(f.h.resolve_paths(name("east")).size(), 1U);
}

TEST(Mesh, LivenessMirroredIntoAllOverlays) {
  MeshFixture f;
  ASSERT_TRUE(f.h.set_alive(name("s1.east"), false).ok());
  for (const auto& path : f.h.resolve_paths(name("s1.east"))) {
    EXPECT_FALSE(f.h.overlay_of(hierarchy::parent(path)).alive(path.back()))
        << hierarchy::to_string(path);
  }
  ASSERT_TRUE(f.h.set_alive(name("s1.east"), true).ok());
  for (const auto& path : f.h.resolve_paths(name("s1.east"))) {
    EXPECT_TRUE(f.h.overlay_of(hierarchy::parent(path)).alive(path.back()));
  }
}

TEST(Mesh, RemoveUnlinksAliases) {
  MeshFixture f;
  const auto west = f.h.resolve(name("west")).value();
  ASSERT_EQ(f.h.child_count(west), 3U);
  ASSERT_TRUE(f.h.remove(name("s1.east")).ok());
  EXPECT_EQ(f.h.child_count(f.h.resolve(name("west")).value()), 2U);
  EXPECT_TRUE(f.h.resolve_paths(name("s1.east")).empty());
}

TEST(Mesh, RemovingSecondaryParentKeepsNode) {
  MeshFixture f;
  ASSERT_TRUE(f.h.remove(name("west")).ok());
  // s1.east survives with only its primary path.
  const auto paths = f.h.resolve_paths(name("s1.east"));
  ASSERT_EQ(paths.size(), 1U);
  EXPECT_TRUE(f.h.is_alive(name("s1.east")).value());
}

struct MeshSystem {
  HoursSystem sys;
  MeshSystem() : sys{[] {
      HoursConfig cfg;
      cfg.overlay.k = 3;
      cfg.overlay.q = 2;
      return cfg;
    }()} {
    for (const char* region : {"east", "west", "north", "south", "mid"}) {
      sys.admit(region);
      for (const char* site : {"s1", "s2", "s3"}) {
        sys.admit(std::string{site} + "." + region);
      }
    }
    EXPECT_TRUE(
        sys.hierarchy().admit_secondary(name("s1.east"), name("west")).ok());
  }
};

TEST(Mesh, QueryFallsBackToSecondaryPath) {
  MeshSystem m;
  // Take down the ENTIRE east sibling set: the primary path is unreachable
  // even for HOURS (no alive entrance), but the west path still works.
  for (const char* site : {"s1", "s2", "s3"}) {
    if (std::string{site} != "s1") {
      m.sys.set_alive(std::string{site} + ".east", false);
    }
  }
  m.sys.set_alive("east", false);
  // Kill east's whole child overlay except the mesh node itself.
  const auto r = m.sys.query("s1.east");
  ASSERT_TRUE(r.delivered);

  // Now remove the only other alive sibling paths: primary entrance requires
  // an alive child of east; only s1.east itself is alive there, which IS the
  // destination — the entrance will be the destination's own slot. Force the
  // harder case: dead east *and* dead s2/s3 handled above; verify a fallback
  // was not even needed (HOURS detoured) or the secondary path served it.
  EXPECT_GE(r.path_attempts, 1U);
}

TEST(Mesh, SecondaryPathServesWhenPrimarySubtreeIsGone) {
  MeshSystem m;
  // Kill east and ALL of its children except the mesh node: the primary
  // path's level-2 overlay has exactly one alive member — the destination —
  // so HOURS can still enter it only via east's overlay detour; kill the
  // exit candidates too by taking the whole east ring down.
  m.sys.set_alive("east", false);
  m.sys.set_alive("s2.east", false);
  m.sys.set_alive("s3.east", false);

  const auto r = m.sys.query("s1.east");
  ASSERT_TRUE(r.delivered);

  // The same scenario *without* the mesh link must fail: s2/s3/east dead
  // means no nephew exit into east's child overlay can land anywhere alive
  // except the destination... verify via a non-mesh sibling region.
  m.sys.set_alive("north", false);
  m.sys.set_alive("s2.north", false);
  m.sys.set_alive("s3.north", false);
  const auto no_mesh = m.sys.query("s1.north");
  // Delivery here depends only on nephew pointers reaching s1.north itself;
  // with q=2 over 3 children the exit usually knows it, so do not assert
  // failure — assert the mesh case needed no luck.
  (void)no_mesh;
  EXPECT_LE(r.path_attempts, 2U);
}

}  // namespace
}  // namespace hours
