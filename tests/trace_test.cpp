// Tests for the src/trace subsystem: event taxonomy round-trips, the JSONL
// wire format against golden strings (with the validator as the other side
// of the contract), ring-buffer wrap and subscriber dispatch, Chrome
// trace_event export, and registry determinism.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "trace/chrome_trace_sink.hpp"
#include "trace/event.hpp"
#include "trace/jsonl_sink.hpp"
#include "trace/registry.hpp"
#include "trace/ring_buffer_sink.hpp"
#include "trace/sink.hpp"

namespace {

using namespace hours::trace;

// -- taxonomy ----------------------------------------------------------------

TEST(EventTaxonomy, NamesRoundTripForEveryType) {
  for (std::size_t i = 0; i < kEventTypeCount; ++i) {
    const auto type = static_cast<EventType>(i);
    const std::string_view name = event_type_name(type);
    EXPECT_NE(name, "unknown") << "type index " << i;
    EventType parsed{};
    ASSERT_TRUE(event_type_from_name(name, parsed)) << name;
    EXPECT_EQ(parsed, type) << name;
  }
}

TEST(EventTaxonomy, UnknownNamesRejected) {
  EventType out{};
  EXPECT_FALSE(event_type_from_name("", out));
  EXPECT_FALSE(event_type_from_name("not_an_event", out));
  EXPECT_FALSE(event_type_from_name("Probe_Sent", out));  // case-sensitive
}

// -- JSONL wire format (golden) ----------------------------------------------

TEST(EventJson, GoldenLineAllFieldsSet) {
  const Event e{.at = 1234,
                .type = EventType::kRecoveryAdopt,
                .node = 7,
                .peer = 9,
                .level = 2,
                .causal = 42,
                .value = 3};
  EXPECT_EQ(to_json_line(e),
            R"({"at":1234,"type":"recovery_adopt","node":7,"peer":9,"level":2,"causal":42,"value":3})");
}

TEST(EventJson, GoldenLineDefaultsSerializeNulls) {
  // Default event: node/peer are kNoNode -> null, level -1.
  EXPECT_EQ(to_json_line(Event{}),
            R"({"at":0,"type":"hier_hop","node":null,"peer":null,"level":-1,"causal":0,"value":0})");
}

TEST(EventJson, EveryEmittedLineValidates) {
  std::string error;
  for (std::size_t i = 0; i < kEventTypeCount; ++i) {
    const Event e{.at = i, .type = static_cast<EventType>(i), .node = 1, .level = 0};
    EXPECT_TRUE(validate_event_line(to_json_line(e), &error)) << error;
  }
}

TEST(EventJson, ValidatorRejectsMalformedLines) {
  std::string error;
  // Unknown type name.
  EXPECT_FALSE(validate_event_line(
      R"({"at":0,"type":"bogus","node":null,"peer":null,"level":-1,"causal":0,"value":0})",
      &error));
  EXPECT_NE(error.find("taxonomy"), std::string::npos);
  // Keys out of order (peer before node).
  EXPECT_FALSE(validate_event_line(
      R"({"at":0,"type":"hier_hop","peer":null,"node":null,"level":-1,"causal":0,"value":0})"));
  // Missing field.
  EXPECT_FALSE(validate_event_line(
      R"({"at":0,"type":"hier_hop","node":null,"peer":null,"level":-1,"value":0})"));
  // Trailing junk.
  EXPECT_FALSE(validate_event_line(
      R"({"at":0,"type":"hier_hop","node":null,"peer":null,"level":-1,"causal":0,"value":0} )"));
  // Negative 'at' is not allowed (only 'level' may be negative).
  EXPECT_FALSE(validate_event_line(
      R"({"at":-1,"type":"hier_hop","node":null,"peer":null,"level":-1,"causal":0,"value":0})"));
  EXPECT_FALSE(validate_event_line(""));
  EXPECT_FALSE(validate_event_line("not json"));
}

// -- Tracer dispatch ---------------------------------------------------------

class RecordingSink final : public TraceSink {
 public:
  void on_event(const Event& event) override { events.push_back(event); }
  void flush() override { ++flushes; }
  std::vector<Event> events;
  int flushes = 0;
};

TEST(Tracer, DisabledUntilSinkAttachedAndMacroIsNullSafe) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  EXPECT_FALSE(emitting(&tracer));
  EXPECT_FALSE(emitting(nullptr));

  Tracer* null_tracer = nullptr;
  HOURS_TRACE_EMIT(null_tracer, {.at = 1});  // must not crash
  HOURS_TRACE_EMIT(&tracer, {.at = 1});      // no sink: constructs nothing
  EXPECT_EQ(tracer.events_emitted(), 0U);
}

TEST(Tracer, FansOutToAllSinksAndRemoveDetaches) {
  Tracer tracer;
  RecordingSink a;
  RecordingSink b;
  tracer.add_sink(&a);
  tracer.add_sink(&b);
  EXPECT_TRUE(tracer.enabled());

  HOURS_TRACE_EMIT(&tracer, {.at = 5, .type = EventType::kProbeSent, .node = 1, .peer = 2});
  ASSERT_EQ(a.events.size(), 1U);
  ASSERT_EQ(b.events.size(), 1U);
  EXPECT_EQ(a.events[0].peer, 2U);

  tracer.flush();
  EXPECT_EQ(a.flushes, 1);

  tracer.remove_sink(&a);
  HOURS_TRACE_EMIT(&tracer, {.at = 6, .type = EventType::kProbeFailed});
  EXPECT_EQ(a.events.size(), 1U);
  EXPECT_EQ(b.events.size(), 2U);
  EXPECT_EQ(tracer.events_emitted(), 2U);
}

// -- RingBufferSink ----------------------------------------------------------

TEST(RingBufferSink, WrapsKeepingMostRecentOldestFirst) {
  RingBufferSink sink{4};
  for (std::uint64_t i = 0; i < 6; ++i) {
    sink.on_event({.at = i, .type = EventType::kRingHop});
  }
  EXPECT_EQ(sink.total_events(), 6U);
  EXPECT_EQ(sink.overwritten(), 2U);
  const auto events = sink.events();
  ASSERT_EQ(events.size(), 4U);
  for (std::size_t i = 0; i < events.size(); ++i) EXPECT_EQ(events[i].at, i + 2);
}

TEST(RingBufferSink, FiltersByTypeAndClears) {
  RingBufferSink sink{8};
  sink.on_event({.at = 1, .type = EventType::kProbeSent});
  sink.on_event({.at = 2, .type = EventType::kSuspect});
  sink.on_event({.at = 3, .type = EventType::kProbeSent});
  const auto probes = sink.events_of(EventType::kProbeSent);
  ASSERT_EQ(probes.size(), 2U);
  EXPECT_EQ(probes[1].at, 3U);
  sink.clear();
  EXPECT_TRUE(sink.events().empty());
}

TEST(RingBufferSink, TypedSubscribersBeforeUntypedInOrder) {
  RingBufferSink sink{4};
  std::vector<std::string> calls;
  sink.subscribe(EventType::kRecoveryAdopt, [&](const Event&) { calls.push_back("typed1"); });
  sink.subscribe(EventType::kRecoveryAdopt, [&](const Event&) { calls.push_back("typed2"); });
  sink.subscribe(EventType::kProbeSent, [&](const Event&) { calls.push_back("other"); });
  sink.subscribe_all([&](const Event& e) {
    calls.push_back("all@" + std::to_string(e.at));
  });

  sink.on_event({.at = 9, .type = EventType::kRecoveryAdopt});
  EXPECT_EQ(calls, (std::vector<std::string>{"typed1", "typed2", "all@9"}));

  calls.clear();
  sink.on_event({.at = 10, .type = EventType::kDrop});  // no typed subscriber
  EXPECT_EQ(calls, (std::vector<std::string>{"all@10"}));
}

// -- JsonLinesSink -----------------------------------------------------------

TEST(JsonLinesSink, GoldenRoundTrip) {
  std::ostringstream out;
  JsonLinesSink sink{out};
  ASSERT_TRUE(sink.ok());
  sink.on_event({.at = 1, .type = EventType::kQuerySubmit, .node = 3, .peer = 8, .causal = 1});
  sink.on_event({.at = 60, .type = EventType::kQueryDelivered, .node = 8, .causal = 1, .value = 4});
  sink.flush();
  EXPECT_EQ(sink.lines_written(), 2U);
  EXPECT_EQ(out.str(),
            "{\"at\":1,\"type\":\"query_submit\",\"node\":3,\"peer\":8,\"level\":-1,"
            "\"causal\":1,\"value\":0}\n"
            "{\"at\":60,\"type\":\"query_delivered\",\"node\":8,\"peer\":null,\"level\":-1,"
            "\"causal\":1,\"value\":4}\n");

  // The other side of the contract: every line the sink wrote validates.
  std::istringstream in{out.str()};
  std::string line;
  std::string error;
  while (std::getline(in, line)) {
    EXPECT_TRUE(validate_event_line(line, &error)) << error;
  }
}

TEST(JsonLinesSink, BadPathReportsNotOk) {
  JsonLinesSink sink{std::string{"/nonexistent-dir/trace.jsonl"}};
  EXPECT_FALSE(sink.ok());
  sink.on_event({.at = 1});  // must not crash
  EXPECT_EQ(sink.lines_written(), 0U);
}

// -- ChromeTraceSink ---------------------------------------------------------

TEST(ChromeTraceSink, GoldenDocument) {
  std::ostringstream out;
  {
    ChromeTraceSink sink{out};
    ASSERT_TRUE(sink.ok());
    sink.on_event({.at = 10, .type = EventType::kQuerySubmit, .node = 2, .peer = 5, .causal = 7});
    sink.on_event({.at = 15, .type = EventType::kRingHop, .node = 2, .peer = 3, .level = 1,
                   .causal = 7, .value = 1});
    sink.on_event({.at = 30, .type = EventType::kQueryDelivered, .node = 5, .causal = 7,
                   .value = 2});
    EXPECT_EQ(sink.events_written(), 3U);
  }  // destructor closes the JSON array
  EXPECT_EQ(out.str(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
            "{\"name\":\"query_submit\",\"ph\":\"b\",\"ts\":10,\"pid\":0,\"tid\":2,"
            "\"cat\":\"query\",\"id\":7,"
            "\"args\":{\"peer\":5,\"level\":-1,\"causal\":7,\"value\":0}},\n"
            "{\"name\":\"ring_hop\",\"ph\":\"i\",\"ts\":15,\"pid\":0,\"tid\":2,\"s\":\"t\","
            "\"args\":{\"peer\":3,\"level\":1,\"causal\":7,\"value\":1}},\n"
            "{\"name\":\"query_delivered\",\"ph\":\"e\",\"ts\":30,\"pid\":0,\"tid\":5,"
            "\"cat\":\"query\",\"id\":7,"
            "\"args\":{\"peer\":null,\"level\":-1,\"causal\":7,\"value\":2}}\n"
            "]}\n");
}

TEST(ChromeTraceSink, EventsAfterCloseIgnored) {
  std::ostringstream out;
  ChromeTraceSink sink{out};
  sink.on_event({.at = 1, .type = EventType::kProbeSent, .node = 0});
  sink.close();
  const std::string closed = out.str();
  sink.on_event({.at = 2, .type = EventType::kProbeSent, .node = 0});
  sink.close();  // idempotent
  EXPECT_EQ(out.str(), closed);
  EXPECT_EQ(sink.events_written(), 1U);
}

// -- Registry ----------------------------------------------------------------

TEST(Registry, CountersIncrementThroughHandles) {
  Registry registry;
  Counter a = registry.counter("ring.probes_sent");
  Counter a_again = registry.counter("ring.probes_sent");
  a.inc();
  a_again.inc(4);
  EXPECT_EQ(a.value(), 5U);
  EXPECT_EQ(registry.counter_value("ring.probes_sent"), 5U);
  EXPECT_EQ(registry.counter_value("never.registered"), 0U);
  EXPECT_TRUE(registry.has_counter("ring.probes_sent"));
  EXPECT_FALSE(registry.has_counter("never.registered"));

  Counter unbound;  // default handle: safe no-op
  unbound.inc();
  EXPECT_EQ(unbound.value(), 0U);
}

TEST(Registry, JsonSnapshotSortsNamesDeterministically) {
  Registry registry;
  registry.counter("z.last").inc(2);
  registry.counter("a.first").inc();
  registry.histogram("m.hops").add(3);
  const std::string json = registry.to_json();
  EXPECT_LT(json.find("a.first"), json.find("z.last"));
  EXPECT_NE(json.find("m.hops"), std::string::npos);
  EXPECT_EQ(json, registry.to_json());  // stable across snapshots
}

TEST(Registry, ResetZeroesButKeepsHandlesValid) {
  Registry registry;
  Counter c = registry.counter("x.count");
  c.inc(7);
  registry.histogram("x.hist").add(5);
  registry.reset();
  EXPECT_EQ(c.value(), 0U);
  EXPECT_TRUE(registry.histogram("x.hist").empty());
  c.inc();  // handle survives reset
  EXPECT_EQ(registry.counter_value("x.count"), 1U);
}

}  // namespace
