// End-to-end query client: per-hop retry with capped exponential backoff,
// alternate-pointer failover, client-side suspicion, and deadline budgets —
// liveness inferred purely from silence.
#include <gtest/gtest.h>

#include <vector>

#include "sim/fault_injector.hpp"
#include "sim/hierarchy_protocol.hpp"
#include "sim/query_client.hpp"
#include "sim/ring_protocol.hpp"

namespace hours::sim {
namespace {

RingSimConfig client_ring(double loss = 0.0) {
  RingSimConfig cfg;
  cfg.size = 16;
  cfg.loss_probability = loss;
  return cfg;
}

TEST(QueryClient, DeliversOnHealthyRing) {
  RingSimulation ring{client_ring()};
  QueryClient client{make_query_network(ring), QueryClientConfig{}};
  const auto qid = client.submit(0, 8);
  ring.simulator().run();

  const auto& out = client.outcome(qid);
  EXPECT_EQ(out.status, QueryStatus::kDelivered);
  EXPECT_GE(out.hops, 1U);
  EXPECT_EQ(out.retransmissions, 0U);
  EXPECT_EQ(out.failovers, 0U);
  EXPECT_GT(out.latency(), 0U);
  EXPECT_EQ(client.stats().delivered, 1U);
}

TEST(QueryClient, ImmediateDeliveryWhenStartIsDestination) {
  RingSimulation ring{client_ring()};
  QueryClient client{make_query_network(ring), QueryClientConfig{}};
  const auto qid = client.submit(5, 5);
  ring.simulator().run();
  EXPECT_EQ(client.outcome(qid).status, QueryStatus::kDelivered);
  EXPECT_EQ(client.outcome(qid).hops, 0U);
}

TEST(QueryClient, RetriesAbsorbLoss) {
  // Loss probabilities {0.1, 0.3}: retransmissions mask lost messages and
  // lost acks; nearly everything still delivers, and under loss the client
  // observably retransmits.
  for (const double loss : {0.1, 0.3}) {
    RingSimulation ring{client_ring(loss)};
    QueryClientConfig cfg;
    cfg.max_retries_per_hop = 3;
    QueryClient client{make_query_network(ring), cfg};

    std::vector<std::uint64_t> qids;
    for (std::uint32_t i = 0; i < 40; ++i) {
      qids.push_back(client.submit(i % 16, (i * 5 + 8) % 16));
    }
    ring.simulator().run();

    std::uint64_t delivered = 0;
    for (const auto qid : qids) {
      if (client.outcome(qid).status == QueryStatus::kDelivered) ++delivered;
    }
    EXPECT_GE(delivered, 36U) << "loss=" << loss;  // >= 90% even at 30% loss
    EXPECT_GT(client.stats().retransmissions, 0U) << "loss=" << loss;
  }
}

TEST(QueryClient, LossFreeNeedsNoRetransmissions) {
  RingSimulation ring{client_ring(0.0)};
  QueryClient client{make_query_network(ring), QueryClientConfig{}};
  for (std::uint32_t i = 0; i < 20; ++i) client.submit(i % 16, (i + 7) % 16);
  ring.simulator().run();
  EXPECT_EQ(client.stats().delivered, 20U);
  EXPECT_EQ(client.stats().retransmissions, 0U);
}

TEST(QueryClient, DeadlineBoundsAnUnreachableQuery) {
  // Everything but the start node is dead and the deadline (300) expires
  // before the first backoff retry can even fire: deterministic
  // deadline-exceeded, completed exactly at the budget.
  RingSimulation ring{client_ring()};
  for (ids::RingIndex i = 1; i < 16; ++i) ring.kill(i);
  QueryClientConfig cfg;
  cfg.deadline = 300;  // ack_timeout is 250
  QueryClient client{make_query_network(ring), cfg};
  const auto qid = client.submit(0, 8);
  ring.simulator().run();

  const auto& out = client.outcome(qid);
  EXPECT_EQ(out.status, QueryStatus::kDeadlineExceeded);
  EXPECT_EQ(out.latency(), 300U);
  EXPECT_EQ(client.stats().deadline_exceeded, 1U);
}

TEST(QueryClient, RetriesStraddlingAHealedPartitionDeliverWithinDeadline) {
  // The destination is cut off (not dead) when the query is issued; every
  // attempt on the last hop times out until the partition heals at 6'000.
  // The client's backoff/retry/failover loop must keep the query alive
  // across the heal boundary and deliver well inside its 20'000 deadline.
  RingSimulation ring{client_ring()};
  std::vector<std::uint32_t> rest;
  for (std::uint32_t i = 0; i < 16; ++i) {
    if (i != 12) rest.push_back(i);
  }
  FaultInjector injector{make_fault_target(ring),
                         FaultPlan{}.partition({{12}, rest}, 100, 6'000)};
  injector.arm();
  ring.simulator().run(200);  // partition in force before submission
  ASSERT_TRUE(injector.link_severed(1, 12));

  // Patient client: the per-hop retry schedule (backoff 200, 400, 800,
  // 1'600, 3'000, 3'000 ...) stretches past the heal at 6'000, so the later
  // retransmissions of the stuck final hop land on a restored link.
  QueryClientConfig cfg;
  cfg.max_retries_per_hop = 6;
  cfg.backoff_cap = 3'000;
  cfg.deadline = 20'000;
  QueryClient client{make_query_network(ring), cfg};
  const auto qid = client.submit(1, 12);
  ring.simulator().run();

  const auto& out = client.outcome(qid);
  EXPECT_EQ(out.status, QueryStatus::kDelivered);
  EXPECT_GE(out.completed_at, 6'000U);         // impossible while severed
  EXPECT_LE(out.completed_at, 200U + 20'000U);  // and within the budget
  EXPECT_GE(out.retransmissions, 1U);           // the cut forced retries
  EXPECT_EQ(injector.stats().kills, 0U);        // connectivity fault only
}

TEST(QueryClient, NoRouteWhenEveryPointerIsSuspect) {
  RingSimulation ring{client_ring()};
  for (ids::RingIndex i = 1; i < 16; ++i) ring.kill(i);
  QueryClientConfig cfg;
  cfg.max_retries_per_hop = 0;  // fail over immediately, no retransmits
  QueryClient client{make_query_network(ring), cfg};
  const auto qid = client.submit(0, 8);
  ring.simulator().run();

  const auto& out = client.outcome(qid);
  EXPECT_EQ(out.status, QueryStatus::kNoRoute);
  EXPECT_GT(out.failovers, 0U);  // every candidate was tried and suspected
  EXPECT_EQ(out.hops, 0U);
  EXPECT_EQ(client.stats().no_route, 1U);
}

TEST(QueryClient, FailsOverToAlternatePointerAfterRetryExhaustion) {
  RingSimulation ring{client_ring()};
  // Find a destination whose best first-hop candidate is an intermediary
  // (not the destination itself), then kill exactly that intermediary.
  ids::RingIndex dest = 0;
  ids::RingIndex first_choice = 0;
  for (ids::RingIndex d = 2; d < 16; ++d) {
    bool backward = false;
    const auto cands = ring.route_candidates(0, d, backward);
    if (cands.size() >= 2 && cands.front() != d) {
      dest = d;
      first_choice = cands.front();
      break;
    }
  }
  ASSERT_NE(dest, 0U) << "no suitable destination under this seed";
  ring.kill(first_choice);

  QueryClientConfig cfg;
  cfg.max_retries_per_hop = 1;
  QueryClient client{make_query_network(ring), cfg};
  const auto qid = client.submit(0, dest);
  ring.simulator().run();

  const auto& out = client.outcome(qid);
  EXPECT_EQ(out.status, QueryStatus::kDelivered);
  EXPECT_GE(out.retransmissions, 1U);  // the dead first choice was retried...
  EXPECT_GE(out.failovers, 1U);        // ...then abandoned for an alternate
  EXPECT_TRUE(client.suspected(first_choice));
}

TEST(QueryClient, SuspicionExpiresAfterTtl) {
  RingSimulation ring{client_ring()};
  bool backward = false;
  const auto cands = ring.route_candidates(0, 8, backward);
  ASSERT_FALSE(cands.empty());
  const auto victim = cands.front();
  ring.kill(victim);

  QueryClientConfig cfg;
  cfg.max_retries_per_hop = 0;
  cfg.suspicion_ttl = 2'000;
  QueryClient client{make_query_network(ring), cfg};
  client.submit(0, 8);
  ring.simulator().run();
  EXPECT_TRUE(client.suspected(victim));

  ring.revive(victim);
  ring.simulator().run(cfg.suspicion_ttl + 1);
  EXPECT_FALSE(client.suspected(victim));
}

TEST(QueryClient, BackoffGrowsExponentiallyAndCaps) {
  RingSimulation ring{client_ring()};
  QueryClientConfig cfg;
  cfg.backoff_base = 100;
  cfg.backoff_cap = 450;
  QueryClient client{make_query_network(ring), cfg};
  EXPECT_EQ(client.base_backoff(1), 100U);
  EXPECT_EQ(client.base_backoff(2), 200U);
  EXPECT_EQ(client.base_backoff(3), 400U);
  EXPECT_EQ(client.base_backoff(4), 450U);  // clamped
  EXPECT_EQ(client.base_backoff(10), 450U);
}

TEST(QueryClient, RunsAreBitReproducible) {
  const auto run_once = [](std::vector<std::uint64_t>& trace) {
    RingSimulation ring{client_ring(0.2)};
    QueryClientConfig cfg;
    cfg.deadline = 30'000;
    QueryClient client{make_query_network(ring), cfg};
    std::vector<std::uint64_t> qids;
    for (std::uint32_t i = 0; i < 30; ++i) qids.push_back(client.submit(i % 16, (i * 3) % 16));
    ring.simulator().run();
    for (const auto qid : qids) {
      const auto& out = client.outcome(qid);
      trace.push_back(static_cast<std::uint64_t>(out.status));
      trace.push_back(out.hops);
      trace.push_back(out.retransmissions);
      trace.push_back(out.completed_at);
    }
  };
  std::vector<std::uint64_t> first;
  std::vector<std::uint64_t> second;
  run_once(first);
  run_once(second);
  EXPECT_EQ(first, second);
}

TEST(QueryClient, DrivesHierarchySimulationAroundDeadOnPathNode) {
  HierarchySimConfig cfg;
  cfg.fanout = {8, 4};
  HierarchySimulation sim{cfg};
  const auto dest = sim.id_of({3, 2});
  sim.kill({3});  // the on-path child of the root

  QueryClientConfig ccfg;
  ccfg.max_retries_per_hop = 1;
  QueryClient client{make_query_network(sim), ccfg};
  const auto qid = client.submit(sim.id_of({}), dest);
  sim.simulator().run();

  const auto& out = client.outcome(qid);
  EXPECT_EQ(out.status, QueryStatus::kDelivered);
  EXPECT_GE(out.failovers, 1U);  // went around the dead entrance
}

TEST(QueryClient, HierarchyHealthyPathDelivers) {
  HierarchySimConfig cfg;
  cfg.fanout = {8, 4};
  HierarchySimulation sim{cfg};
  QueryClient client{make_query_network(sim), QueryClientConfig{}};
  const auto qid = client.submit(sim.id_of({}), sim.id_of({5, 1}));
  sim.simulator().run();
  EXPECT_EQ(client.outcome(qid).status, QueryStatus::kDelivered);
  EXPECT_EQ(client.outcome(qid).hops, 2U);
  EXPECT_EQ(client.outcome(qid).retransmissions, 0U);
}

}  // namespace
}  // namespace hours::sim
