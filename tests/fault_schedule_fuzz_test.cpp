// Property-based fault-schedule fuzzing: generate a random FaultPlan per
// seed — crashes, flaps, partitions, link cuts, and loss episodes in
// arbitrary overlap — run the ring well past the last fault window, and
// assert the structural invariants from sim/ring_invariants.hpp plus
// sampled query delivery.
//
// The per-seed pipeline (case generation, quiescence run, traced-stream
// schema check, snapshot-equivalence oracle) lives in sim/fuzz_cases.hpp so
// this harness, bench/sweep_runner, and the sweep-determinism oracle all
// run byte-identical cases. This file owns what a *test* owns: seed-sweep
// control, failure artifacts, and gtest assertions.
//
// Seed control:
//   HOURS_FUZZ_SEEDS=N      sweep seeds 1..N        (default 25; nightly 200)
//   HOURS_FUZZ_SEED=S       run exactly seed S       (local reproduction)
//   HOURS_FUZZ_SNAPSHOT=K   oracle every Kth seed    (default 4; 0 disables,
//                           1 = every seed; pinned seeds always run it)
//   HOURS_FUZZ_THREADS=T    fan seeds across a T-worker work-stealing
//                           executor (default 1 = serial; 0 = hardware
//                           concurrency). Results and artifacts are
//                           identical at any T — the sweep's determinism
//                           contract (jobs/sweep.hpp).
// On failure the harness writes fuzz_failures/seed_<S>.txt containing the
// generated config, the serialized FaultPlan, and the one-line repro command,
// so a CI failure reproduces locally from the seed alone.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "jobs/executor.hpp"
#include "jobs/sweep.hpp"
#include "sim/fuzz_cases.hpp"

namespace hours::sim {
namespace {

/// Serializes everything needed to replay a failing seed by hand and drops
/// it where CI picks artifacts up (fuzz_failures/ under the test's cwd).
void write_failure_artifact(std::uint64_t seed, const fuzz::FuzzCase& c,
                            const std::vector<std::string>& violations) {
  std::filesystem::create_directories("fuzz_failures");
  std::ofstream out("fuzz_failures/seed_" + std::to_string(seed) + ".txt");
  out << "fault-schedule fuzz failure\n"
      << "seed: " << seed << "\n"
      << "config: " << fuzz::describe_config(c.config) << "\n"
      << "fault plan:\n"
      << c.plan.describe() << "violations:\n";
  for (const auto& v : violations) out << "  " << v << "\n";
  out << "\nreproduce with:\n  HOURS_FUZZ_SEED=" << seed
      << " ./tests/fault_schedule_fuzz_test\n";
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  return std::strtoull(raw, nullptr, 10);
}

TEST(FaultScheduleFuzz, RandomFaultPlansConvergeToCleanRings) {
  const std::uint64_t pinned = env_u64("HOURS_FUZZ_SEED", 0);
  const std::uint64_t count = pinned != 0 ? 1 : env_u64("HOURS_FUZZ_SEEDS", 25);
  ASSERT_GT(count, 0U) << "HOURS_FUZZ_SEEDS must be >= 1";

  fuzz::SeedOptions options;
  options.snapshot_stride = env_u64("HOURS_FUZZ_SNAPSHOT", 4);
  options.force_traced = pinned != 0;
  options.force_snapshot = pinned != 0;

  std::vector<std::uint64_t> seeds;
  seeds.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) seeds.push_back(pinned != 0 ? pinned : i + 1);

  // Serial by default; HOURS_FUZZ_THREADS fans the same seeds across the
  // work-stealing executor. Each seed is an independent single-threaded
  // simulation, so the verdicts are identical either way.
  const auto threads = static_cast<unsigned>(env_u64("HOURS_FUZZ_THREADS", 1));
  std::vector<fuzz::SeedResult> results;
  if (threads == 1) {
    results.reserve(seeds.size());
    for (const auto seed : seeds) results.push_back(fuzz::run_seed(seed, options));
  } else {
    jobs::Executor executor{threads};
    results = jobs::sweep<fuzz::SeedResult>(
        executor, /*sweep_seed=*/0, seeds.size(),
        [&seeds, &options](std::size_t index, rng::Xoshiro256&) {
          return fuzz::run_seed(seeds[index], options);
        });
  }

  std::uint64_t failures = 0;
  for (const auto& result : results) {
    if (result.violations.empty()) continue;
    ++failures;
    const fuzz::FuzzCase c = fuzz::generate_case(result.seed);
    write_failure_artifact(result.seed, c, result.violations);
    std::ostringstream os;
    os << "seed " << result.seed << " (" << fuzz::describe_config(c.config)
       << ")\nfault plan:\n"
       << c.plan.describe();
    for (const auto& v : result.violations) os << "  violation: " << v << "\n";
    os << "reproduce: HOURS_FUZZ_SEED=" << result.seed << " ./tests/fault_schedule_fuzz_test";
    ADD_FAILURE() << os.str();
  }
  if (failures == 0 && std::filesystem::exists("fuzz_failures")) {
    // A clean sweep invalidates artifacts from earlier local runs.
    std::filesystem::remove_all("fuzz_failures");
  }
}

/// The same seed must generate the same plan — reproduction depends on it.
TEST(FaultScheduleFuzz, GeneratorIsDeterministicPerSeed) {
  const fuzz::FuzzCase a = fuzz::generate_case(7);
  const fuzz::FuzzCase b = fuzz::generate_case(7);
  EXPECT_EQ(a.plan.describe(), b.plan.describe());
  EXPECT_EQ(fuzz::describe_config(a.config), fuzz::describe_config(b.config));
  const fuzz::FuzzCase other = fuzz::generate_case(8);
  EXPECT_NE(a.plan.describe() + fuzz::describe_config(a.config),
            other.plan.describe() + fuzz::describe_config(other.config));
}

}  // namespace
}  // namespace hours::sim
