// Property-based fault-schedule fuzzing: generate a random FaultPlan per
// seed — crashes, flaps, partitions, link cuts, and loss episodes in
// arbitrary overlap — run the ring well past the last fault window, and
// assert the structural invariants from ring_invariant_checker.hpp plus
// sampled query delivery.
//
// Every fault that severs connectivity lifts by the fault horizon (permanent
// partitions and mid-run permanent crashes are covered deterministically in
// fault_injector_test.cpp), so the ring must converge to a clean fixpoint.
//
// Each case additionally runs the snapshot-equivalence oracle on a sampled
// subset of seeds (every 4th by default): the same case is paused at a
// seed-derived random instant, saved, restored into a freshly constructed
// simulation, and continued — the final snapshot must be byte-identical to
// the uninterrupted run's, and the restored state must re-save to exactly
// the bytes it was loaded from. Any state a participant forgets to
// serialize (an RNG stream, a suspicion timer, an in-flight message)
// surfaces as a divergence here, under arbitrary fault overlap.
//
// Seed control:
//   HOURS_FUZZ_SEEDS=N      sweep seeds 1..N        (default 25; nightly 200)
//   HOURS_FUZZ_SEED=S       run exactly seed S       (local reproduction)
//   HOURS_FUZZ_SNAPSHOT=K   oracle every Kth seed    (default 4; 0 disables,
//                           1 = every seed; pinned seeds always run it)
// On failure the harness writes fuzz_failures/seed_<S>.txt containing the
// generated config, the serialized FaultPlan, and the one-line repro command,
// so a CI failure reproduces locally from the seed alone.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "ring_invariant_checker.hpp"
#include "rng/xoshiro256.hpp"
#include "sim/fault_injector.hpp"
#include "sim/ring_protocol.hpp"
#include "sim/snapshotter.hpp"
#include "snapshot/json.hpp"
#include "trace/event.hpp"
#include "trace/ring_buffer_sink.hpp"
#include "trace/sink.hpp"

namespace hours::sim {
namespace {

constexpr Ticks kFaultHorizon = 24'000;  ///< every generated window lifts by here
constexpr Ticks kSettlePeriods = 80;     ///< probe periods granted to re-converge

Ticks ticks_between(rng::Xoshiro256& g, Ticks lo, Ticks hi) {
  HOURS_EXPECTS(hi > lo);
  return lo + g.below(hi - lo);
}

struct FuzzCase {
  RingSimConfig config;
  FaultPlan plan;
};

/// Derives a ring config and a FaultPlan from one seed. Every randomized
/// choice flows through a single Xoshiro256 stream, so the case is a pure
/// function of the seed.
FuzzCase generate(std::uint64_t seed) {
  rng::Xoshiro256 g{seed};
  FuzzCase c;

  const auto n = static_cast<std::uint32_t>(10 + g.below(7));  // 10..16 nodes
  c.config.size = n;
  c.config.params.design = overlay::Design::kEnhanced;
  c.config.params.k = static_cast<std::uint32_t>(2 + g.below(2));
  c.config.params.q = 2;
  c.config.params.seed = seed * 0x9E3779B97F4A7C15ULL + 1;
  c.config.seed = seed;
  // Loss episodes and flapping produce spurious single misses; require two
  // consecutive misses before declaring a neighbor dead.
  c.config.probe_failure_threshold = 2;

  // Crashes: 0..2, all recovering before the horizon.
  const auto crashes = g.below(3);
  for (std::uint64_t i = 0; i < crashes; ++i) {
    const Ticks at = ticks_between(g, 1'000, kFaultHorizon - 9'000);
    c.plan.crash(static_cast<std::uint32_t>(g.below(n)), at,
                 at + ticks_between(g, 2'000, 8'000));
  }

  // Flapping node: up to 3 down/up cycles, finished before the horizon.
  if (g.bernoulli(0.4)) {
    const auto cycles = static_cast<std::uint32_t>(1 + g.below(3));
    const Ticks down = ticks_between(g, 500, 2'000);
    const Ticks up = ticks_between(g, 1'500, 3'500);
    const Ticks span = cycles * (down + up);
    c.plan.flap(static_cast<std::uint32_t>(g.below(n)),
                ticks_between(g, 1'000, kFaultHorizon - span), down, up, cycles);
  }

  // Partitions: 0..2 windows, biased toward contiguous arc splits (the
  // hierarchy-realistic shape); always healing.
  const auto partitions = g.below(3);
  for (std::uint64_t i = 0; i < partitions; ++i) {
    std::vector<std::uint32_t> a;
    std::vector<std::uint32_t> b;
    if (g.bernoulli(0.75)) {
      // Contiguous arc [start, start+len) vs the rest.
      const auto start = g.below(n);
      const auto len = 2 + g.below(n - 3);
      for (std::uint32_t j = 0; j < n; ++j) {
        const bool in_arc = ((j + n - start) % n) < len;
        (in_arc ? a : b).push_back(j);
      }
    } else {
      // Arbitrary membership split (interleaved halves and worse).
      for (std::uint32_t j = 0; j < n; ++j) (g.bernoulli(0.5) ? a : b).push_back(j);
      if (a.empty()) a.push_back(b.back()), b.pop_back();
      if (b.empty()) b.push_back(a.back()), a.pop_back();
    }
    const Ticks at = ticks_between(g, 1'000, kFaultHorizon - 12'000);
    c.plan.partition({std::move(a), std::move(b)}, at,
                     at + ticks_between(g, 3'000, 11'000));
  }

  // Individual link cuts: 0..3, always healing.
  const auto cuts = g.below(4);
  for (std::uint64_t i = 0; i < cuts; ++i) {
    const auto x = static_cast<std::uint32_t>(g.below(n));
    auto y = static_cast<std::uint32_t>(g.below(n));
    if (y == x) y = (y + 1) % n;
    const Ticks at = ticks_between(g, 500, kFaultHorizon - 8'000);
    c.plan.cut_link(x, y, at, at + ticks_between(g, 1'000, 7'000));
  }

  // A lossy-link episode overlapping whatever else is in flight.
  if (g.bernoulli(0.35)) {
    const Ticks from = ticks_between(g, 1'000, kFaultHorizon - 9'000);
    c.plan.loss_episode(0.05 + g.uniform() * 0.15, from,
                        from + ticks_between(g, 2'000, 8'000));
  }

  return c;
}

std::string describe_config(const RingSimConfig& cfg) {
  std::ostringstream os;
  os << "size=" << cfg.size << " k=" << cfg.params.k << " q=" << cfg.params.q
     << " table_seed=" << cfg.params.seed << " sim_seed=" << cfg.seed
     << " probe_failure_threshold=" << cfg.probe_failure_threshold;
  return os.str();
}

/// Serializes everything needed to replay a failing seed by hand and drops
/// it where CI picks artifacts up (fuzz_failures/ under the test's cwd).
void write_failure_artifact(std::uint64_t seed, const FuzzCase& c,
                            const std::vector<std::string>& violations) {
  std::filesystem::create_directories("fuzz_failures");
  std::ofstream out("fuzz_failures/seed_" + std::to_string(seed) + ".txt");
  out << "fault-schedule fuzz failure\n"
      << "seed: " << seed << "\n"
      << "config: " << describe_config(c.config) << "\n"
      << "fault plan:\n"
      << c.plan.describe() << "violations:\n";
  for (const auto& v : violations) out << "  " << v << "\n";
  out << "\nreproduce with:\n  HOURS_FUZZ_SEED=" << seed
      << " ./tests/fault_schedule_fuzz_test\n";
}

/// Runs one generated case to quiescence; returns all invariant violations.
/// With `traced`, the run carries a full tracing pipeline (bounded ring
/// buffer, so memory stays flat) and the emitted stream itself becomes a
/// checked property: every event must serialize to a schema-valid JSON line.
std::vector<std::string> run_case(const FuzzCase& c, bool traced) {
  RingSimulation ring{c.config};
  trace::Tracer tracer;
  trace::RingBufferSink events{2048};
  if (traced) {
    ring.set_tracer(&tracer);
    tracer.add_sink(&events);
  }
  ring.start();
  FaultInjector injector{make_fault_target(ring), c.plan};
  if (traced) injector.set_tracer(&tracer);
  injector.arm();
  ring.simulator().run(kFaultHorizon + kSettlePeriods * c.config.probe_period);

  auto violations = invariants::ring_invariant_violations(ring);
  if (traced) {
    // Probing alone guarantees traffic, so a silent stream means the
    // instrumentation came unhooked.
    if (tracer.events_emitted() == 0) {
      violations.push_back("traced run emitted no events");
    }
    std::string error;
    for (const auto& event : events.events()) {
      if (!trace::validate_event_line(trace::to_json_line(event), &error)) {
        violations.push_back("schema-invalid event: " + trace::to_json_line(event) + " (" +
                             error + ")");
        break;
      }
    }
  }
  if (!violations.empty()) return violations;  // queries would only add noise

  // Sample random query pairs over the survivors (permanent faults are never
  // generated here, so "survivors" is everyone — but stay defensive).
  rng::Xoshiro256 g{c.config.seed ^ 0xC0FFEEULL};
  std::vector<std::pair<ids::RingIndex, ids::RingIndex>> pairs;
  for (int i = 0; i < 6; ++i) {
    const auto from = static_cast<ids::RingIndex>(g.below(c.config.size));
    auto to = static_cast<ids::RingIndex>(g.below(c.config.size));
    if (to == from) to = (to + 1) % c.config.size;
    pairs.emplace_back(from, to);
  }
  return invariants::query_delivery_violations(ring, pairs);
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  return std::strtoull(raw, nullptr, 10);
}

/// Snapshot-equivalence oracle: runs the case twice — once uninterrupted,
/// once saved at a seed-derived instant, restored into a freshly built
/// simulation, and continued — and demands byte-identical final snapshots
/// plus a byte-exact resave immediately after restore. Returns violations.
std::vector<std::string> run_snapshot_oracle(const FuzzCase& c, std::uint64_t seed) {
  const Ticks total = kFaultHorizon + kSettlePeriods * c.config.probe_period;
  // Pause somewhere inside the fault window, where the most state is in
  // flight; derived from the seed so reproduction is exact.
  rng::Xoshiro256 g{seed ^ 0x534E4150ULL};  // "SNAP"
  const Ticks pause = 1 + g.below(kFaultHorizon);

  std::vector<std::string> violations;
  const auto fail = [&violations](std::string what) {
    violations.push_back("snapshot oracle: " + std::move(what));
  };

  // Run A: uninterrupted.
  std::string final_a;
  {
    RingSimulation ring{c.config};
    ring.start();
    FaultInjector injector{make_fault_target(ring), c.plan};
    injector.arm();
    Snapshotter snap{ring.simulator()};
    snap.add(ring);
    snap.add(injector);
    ring.simulator().run(total);
    if (const auto e = snap.save_string(final_a); !e.empty()) {
      fail("continuous run unsaveable at quiescence: " + e);
      return violations;
    }
  }

  // Run B: pause, save, restore into fresh objects, continue.
  std::string at_pause;
  {
    RingSimulation ring{c.config};
    ring.start();
    FaultInjector injector{make_fault_target(ring), c.plan};
    injector.arm();
    Snapshotter snap{ring.simulator()};
    snap.add(ring);
    snap.add(injector);
    ring.simulator().run(pause);
    if (const auto e = snap.save_string(at_pause); !e.empty()) {
      fail("save at t=" + std::to_string(pause) + " failed: " + e);
      return violations;
    }
  }
  {
    snapshot::Json doc;
    std::string error;
    if (!snapshot::parse_json(at_pause, doc, &error)) {
      fail("saved document does not re-parse: " + error);
      return violations;
    }
    RingSimulation ring{c.config};  // neither started nor armed: restored instead
    FaultInjector injector{make_fault_target(ring), c.plan};
    Snapshotter snap{ring.simulator()};
    snap.add(ring);
    snap.add(injector);
    if (const auto e = snap.restore(doc); !e.empty()) {
      fail("restore at t=" + std::to_string(pause) + " failed: " + e);
      return violations;
    }
    std::string resaved;
    if (const auto e = snap.save_string(resaved); !e.empty()) {
      fail("resave after restore failed: " + e);
      return violations;
    }
    if (resaved != at_pause) {
      fail("restore -> save is not the identity at t=" + std::to_string(pause));
    }
    ring.simulator().run(total - ring.simulator().now());
    std::string final_b;
    if (const auto e = snap.save_string(final_b); !e.empty()) {
      fail("restored run unsaveable at quiescence: " + e);
      return violations;
    }
    if (final_b != final_a) {
      fail("restored run diverged from continuous run (paused at t=" +
           std::to_string(pause) + ")");
    }
  }
  return violations;
}

TEST(FaultScheduleFuzz, RandomFaultPlansConvergeToCleanRings) {
  const std::uint64_t pinned = env_u64("HOURS_FUZZ_SEED", 0);
  const std::uint64_t count = pinned != 0 ? 1 : env_u64("HOURS_FUZZ_SEEDS", 25);
  ASSERT_GT(count, 0U) << "HOURS_FUZZ_SEEDS must be >= 1";
  const std::uint64_t snapshot_stride = env_u64("HOURS_FUZZ_SNAPSHOT", 4);

  std::uint64_t failures = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t seed = pinned != 0 ? pinned : i + 1;
    const FuzzCase c = generate(seed);
    // Every fifth seed (and any pinned repro) runs with tracing attached:
    // wide enough to catch instrumentation regressions under arbitrary fault
    // overlap, sparse enough not to slow the default sweep.
    const bool traced = pinned != 0 || seed % 5 == 0;
    auto violations = run_case(c, traced);
    // Snapshot-equivalence oracle on a sampled subset (the case runs twice
    // more, so sampling keeps the default sweep fast).
    if (pinned != 0 || (snapshot_stride != 0 && seed % snapshot_stride == 0)) {
      auto divergences = run_snapshot_oracle(c, seed);
      violations.insert(violations.end(), std::make_move_iterator(divergences.begin()),
                        std::make_move_iterator(divergences.end()));
    }
    if (violations.empty()) continue;

    ++failures;
    write_failure_artifact(seed, c, violations);
    std::ostringstream os;
    os << "seed " << seed << " (" << describe_config(c.config) << ")\nfault plan:\n"
       << c.plan.describe();
    for (const auto& v : violations) os << "  violation: " << v << "\n";
    os << "reproduce: HOURS_FUZZ_SEED=" << seed << " ./tests/fault_schedule_fuzz_test";
    ADD_FAILURE() << os.str();
  }
  if (failures == 0 && std::filesystem::exists("fuzz_failures")) {
    // A clean sweep invalidates artifacts from earlier local runs.
    std::filesystem::remove_all("fuzz_failures");
  }
}

/// The same seed must generate the same plan — reproduction depends on it.
TEST(FaultScheduleFuzz, GeneratorIsDeterministicPerSeed) {
  const FuzzCase a = generate(7);
  const FuzzCase b = generate(7);
  EXPECT_EQ(a.plan.describe(), b.plan.describe());
  EXPECT_EQ(describe_config(a.config), describe_config(b.config));
  const FuzzCase other = generate(8);
  EXPECT_NE(a.plan.describe() + describe_config(a.config),
            other.plan.describe() + describe_config(other.config));
}

}  // namespace
}  // namespace hours::sim
