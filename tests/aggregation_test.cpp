// Overlay aggregation (the paper's Section-7 future work): merging small
// sibling sets into one large overlay restores DoS resilience that tiny
// rings cannot provide.
#include <gtest/gtest.h>

#include <set>

#include "attack/attack.hpp"
#include "hierarchy/aggregation.hpp"

namespace hours::hierarchy {
namespace {

overlay::OverlayParams params(std::uint32_t k = 5, std::uint64_t seed = 0xA99ULL) {
  overlay::OverlayParams p;
  p.k = k;
  p.q = 3;
  p.seed = seed;
  return p;
}

TEST(CousinOverlay, MappingIsABijection) {
  CousinOverlay agg{10, 4, 2, params()};
  EXPECT_EQ(agg.size(), 40U);
  std::set<ids::RingIndex> seen;
  for (std::uint32_t p = 0; p < 10; ++p) {
    for (std::uint32_t c = 0; c < 4; ++c) {
      const auto ring = agg.index_of({p, c});
      EXPECT_TRUE(seen.insert(ring).second) << "duplicate ring index";
      EXPECT_EQ(agg.member_at(ring), (CousinRef{p, c}));
    }
  }
  EXPECT_EQ(seen.size(), 40U);
}

TEST(CousinOverlay, PlacementScattersFamilies) {
  // Members of one family must not cluster on the ring (the whole point of
  // hashing): the average gap between consecutive ring slots of a family
  // should be ~P (their fair share), not ~1.
  CousinOverlay agg{50, 4, 2, params()};
  std::vector<ids::RingIndex> family;
  for (std::uint32_t c = 0; c < 4; ++c) family.push_back(agg.index_of({7, c}));
  std::sort(family.begin(), family.end());
  std::uint32_t adjacent_pairs = 0;
  for (std::size_t i = 1; i < family.size(); ++i) {
    if (family[i] - family[i - 1] == 1) ++adjacent_pairs;
  }
  EXPECT_LE(adjacent_pairs, 1U);
}

TEST(CousinOverlay, ForwardsBetweenCousins) {
  CousinOverlay agg{20, 4, 2, params()};
  const auto res = agg.forward({0, 0}, {19, 3});
  EXPECT_EQ(res.kind, overlay::ExitKind::kArrivedAtOd);
}

TEST(CousinOverlay, SurvivesFamilyWipeout) {
  // Killing an entire 4-member sibling set — fatal for a per-family overlay
  // — barely dents the aggregate: a query for a *different* family's member
  // still routes, and even the wiped family's members are exit-reachable
  // via nephews.
  CousinOverlay agg{50, 4, 3, params()};
  for (std::uint32_t c = 0; c < 4; ++c) agg.kill({7, c});

  EXPECT_EQ(agg.forward({0, 0}, {20, 2}).kind, overlay::ExitKind::kArrivedAtOd);

  const auto res = agg.forward({0, 0}, {7, 1});
  EXPECT_EQ(res.kind, overlay::ExitKind::kNephewExit);  // into (7,1)'s children
}

TEST(CousinOverlay, SeedChangesPlacement) {
  CousinOverlay a{30, 4, 2, params(5, 1)};
  CousinOverlay b{30, 4, 2, params(5, 2)};
  int same = 0;
  for (std::uint32_t p = 0; p < 30; ++p) {
    for (std::uint32_t c = 0; c < 4; ++c) {
      if (a.index_of({p, c}) == b.index_of({p, c})) ++same;
    }
  }
  EXPECT_LT(same, 12);  // ~1/N coincidence rate, not systematic
}

TEST(CousinOverlay, AggregateBeatsTinyRingUnderEqualBudget) {
  // The headline property: a neighbor attack with budget equal to an entire
  // family (C = 4 nodes) annihilates the per-family overlay but leaves the
  // aggregate's delivery intact.
  constexpr std::uint32_t kParents = 60;
  constexpr std::uint32_t kC = 4;
  int tiny_ok = 0;
  int agg_ok = 0;
  constexpr int kTrials = 60;
  for (int t = 0; t < kTrials; ++t) {
    const auto p = params(3, 100 + static_cast<std::uint64_t>(t));

    // Tiny ring: the family itself is the whole overlay.
    overlay::Overlay tiny{kC, p, overlay::TableStorage::kEager,
                          [](ids::RingIndex) { return 3U; }};
    const ids::RingIndex od = 1;
    attack::strike(tiny, attack::plan_neighbor(kC, od, kC - 1));
    tiny.kill(od);
    // Everyone who could hold a nephew pointer is dead: unreachable.
    if (tiny.alive_count() > 0) {
      // (no alive entrance even exists; count as failure)
    }

    // Aggregate: same budget (kC kills) against the OD's neighborhood.
    CousinOverlay agg{kParents, kC, 3, p};
    const CousinRef target{7, 1};
    const auto od_ring = agg.index_of(target);
    agg.overlay().kill(od_ring);
    attack::strike(agg.overlay(), attack::plan_neighbor(agg.size(), od_ring, kC - 1));
    const auto entrance = agg.overlay().nearest_alive_cw(od_ring);
    ASSERT_TRUE(entrance.has_value());
    if (agg.overlay().forward(*entrance, od_ring).kind == overlay::ExitKind::kNephewExit) {
      ++agg_ok;
    }
  }
  EXPECT_EQ(tiny_ok, 0);
  EXPECT_EQ(agg_ok, kTrials);
}

}  // namespace
}  // namespace hours::hierarchy
