// Property-based equivalence fuzz for the timer-wheel event queue.
//
// The wheel (sim/simulator.hpp) must be observationally identical to the
// std::map<(at, id)> queue it replaced. Each seed drives the Simulator and
// an in-test reference model with the same randomized operation stream —
// schedules across every delay class the wheel treats differently (same
// instant, level 0..4, beyond the overflow horizon), antechamber inserts
// (near events scheduled while the windows sit anchored at a far event),
// cancels of live and stale ids, deadline- and max_events-bounded runs, and
// events that schedule children mid-dispatch — and asserts identical
// execution order, clocks, pending counts, and truncation flags.
//
// On a sampled subset of seeds the snapshot oracle interposes: pending
// events are captured, the queue is reset, and every event is re-instated
// under its original id in SHUFFLED order; the re-read queue must match the
// capture exactly and the continued run must stay in lockstep with the
// reference (same-instant FIFO order must survive a restore).
//
// Seed control (same conventions as fault_schedule_fuzz_test):
//   HOURS_FUZZ_SEEDS=N      sweep seeds 1..N       (default 25; nightly 200)
//   HOURS_FUZZ_SEED=S       run exactly seed S      (local reproduction)
//   HOURS_FUZZ_SNAPSHOT=K   oracle every Kth seed   (default 4; 0 disables,
//                           1 = every seed; pinned seeds always run it)
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "rng/xoshiro256.hpp"
#include "sim/simulator.hpp"
#include "snapshot/described.hpp"

namespace hours::sim {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  return std::strtoull(raw, nullptr, 10);
}

/// Event kinds private to this test (any nonzero kind is restorable).
constexpr std::uint32_t kKindDescribed = 7;      ///< described + closure
constexpr std::uint32_t kKindRunnerOnly = 9;     ///< described-only, runner path

/// Execution log entry: (execution instant, event id). Runner-dispatched
/// events carry their id as args[0] so both paths log identically.
using Log = std::vector<std::pair<Ticks, std::uint64_t>>;

/// Reference model: the std::map<(at, id)> queue the wheel replaced, with
/// the original run() semantics (deadline break, max_events truncation
/// flag, clamp-to-deadline on drain).
class RefModel {
 public:
  struct Entry {
    bool chain = false;
    Ticks child_delay = 0;
  };

  void schedule(Ticks delay, bool chain, Ticks child_delay) {
    q_.emplace(std::make_pair(now_ + delay, next_id_++), Entry{chain, child_delay});
  }

  void cancel(std::uint64_t id) {
    for (auto it = q_.begin(); it != q_.end(); ++it) {
      if (it->first.second == id) {
        q_.erase(it);
        return;
      }
    }
  }

  std::size_t run(Ticks limit, std::size_t max_events, Log& log) {
    const Ticks deadline = limit == 0 ? 0 : now_ + limit;
    std::size_t executed = 0;
    truncated_ = false;
    while (executed < max_events) {
      const auto it = q_.begin();
      if (it == q_.end()) break;
      if (deadline != 0 && it->first.first > deadline) break;
      const auto [at, id] = it->first;
      const Entry entry = it->second;
      q_.erase(it);
      now_ = at;
      log.emplace_back(now_, id);
      if (entry.chain) schedule(entry.child_delay, false, 0);
      ++executed;
    }
    if (executed == max_events) {
      const auto it = q_.begin();
      truncated_ =
          it != q_.end() && (deadline == 0 || it->first.first <= deadline);
    }
    if (deadline != 0 && now_ < deadline) now_ = deadline;
    return executed;
  }

  [[nodiscard]] Ticks now() const { return now_; }
  [[nodiscard]] bool truncated() const { return truncated_; }
  [[nodiscard]] std::size_t pending() const { return q_.size(); }

 private:
  std::map<std::pair<Ticks, std::uint64_t>, Entry> q_;
  Ticks now_ = 0;
  std::uint64_t next_id_ = 1;
  bool truncated_ = false;
};

/// Harness pairing a Simulator with the reference model; every operation is
/// applied to both and the observable state compared.
class Lockstep {
 public:
  Lockstep() {
    sim_.set_runner([this](std::uint32_t kind, const std::uint64_t* args, std::size_t count) {
      ASSERT_EQ(kind, kKindRunnerOnly);
      ASSERT_GE(count, 3U);
      wheel_log_.emplace_back(sim_.now(), args[0]);
      if (args[1] != 0) schedule_child(args[2]);
    });
  }

  /// Described args layout: [own id, chain flag, child delay].
  void schedule(Ticks delay, int form, bool chain, Ticks child_delay) {
    const std::uint64_t id = sim_.next_id();
    const std::uint64_t args[3] = {id, chain ? 1ULL : 0ULL, child_delay};
    snapshot::Described desc;
    desc.args.assign(args, args + 3);
    switch (form) {
      case 0:  // opaque closure
        sim_.schedule(delay, make_action(id, chain, child_delay));
        break;
      case 1:  // described + closure
        desc.kind = kKindDescribed;
        sim_.schedule(delay, desc, make_action(id, chain, child_delay));
        break;
      default:  // described-only, dispatched through the runner
        desc.kind = kKindRunnerOnly;
        sim_.schedule(delay, desc);
        break;
    }
    ref_.schedule(delay, chain, child_delay);
    known_ids_.push_back(id);
  }

  void cancel(std::uint64_t id) {
    sim_.cancel(id);
    ref_.cancel(id);
  }

  void run(Ticks limit, std::size_t max_events) {
    const std::size_t wheel_n = sim_.run(limit, max_events);
    const std::size_t ref_n = ref_.run(limit, max_events, ref_log_);
    ASSERT_EQ(wheel_n, ref_n);
    ASSERT_EQ(sim_.now(), ref_.now());
    ASSERT_EQ(sim_.truncated(), ref_.truncated());
    check_state();
  }

  /// Snapshot oracle: capture, reset, restore shuffled under original ids,
  /// verify the queue reads back identically. No-op while opaque events are
  /// queued (they are unserializable by design).
  void snapshot_roundtrip(rng::Xoshiro256& g) {
    if (!sim_.opaque_event_ids().empty()) return;
    const auto before = sim_.pending_events();
    const Ticks now = sim_.now();
    // A deadline-clamped, max_events-truncated run can leave now() past
    // still-pending events (matching the replaced queue exactly); the real
    // snapshotter never saves in that state, so neither does the oracle.
    if (!before.empty() && before.front().at < now) return;
    const std::uint64_t next_id = sim_.next_id();

    auto shuffled = before;
    for (std::size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[static_cast<std::size_t>(g.below(i))]);
    }

    sim_.reset(now, next_id);
    ASSERT_EQ(sim_.pending(), 0U);
    for (const auto& event : shuffled) {
      ASSERT_GE(event.desc.args.size(), 3U);
      const bool chain = event.desc.args[1] != 0;
      const Ticks child_delay = event.desc.args[2];
      sim_.restore_event(event.at, event.id, event.desc,
                         make_action(event.id, chain, child_delay));
    }

    const auto after = sim_.pending_events();
    ASSERT_EQ(after.size(), before.size());
    for (std::size_t i = 0; i < before.size(); ++i) {
      ASSERT_EQ(after[i].at, before[i].at);
      ASSERT_EQ(after[i].id, before[i].id);
      ASSERT_EQ(after[i].desc.kind, before[i].desc.kind);
      ASSERT_EQ(after[i].desc.args, before[i].desc.args);
    }
    ASSERT_EQ(sim_.now(), ref_.now());
  }

  void check_state() {
    ASSERT_EQ(sim_.pending(), ref_.pending());
    ASSERT_EQ(wheel_log_.size(), ref_log_.size());
    // Compare only the tail since the last check to keep failures local.
    for (std::size_t i = checked_; i < ref_log_.size(); ++i) {
      ASSERT_EQ(wheel_log_[i], ref_log_[i]) << "divergence at log index " << i;
    }
    checked_ = ref_log_.size();
  }

  [[nodiscard]] const std::vector<std::uint64_t>& known_ids() const { return known_ids_; }
  [[nodiscard]] Simulator& sim() { return sim_; }

 private:
  Simulator::Action make_action(std::uint64_t id, bool chain, Ticks child_delay) {
    return [this, id, chain, child_delay] {
      wheel_log_.emplace_back(sim_.now(), id);
      if (chain) schedule_child(child_delay);
    };
  }

  /// Children go through the described-only hot path; the reference model
  /// mirrors the insertion inside its own dispatch loop, so the id
  /// counters advance in lockstep.
  void schedule_child(Ticks delay) {
    const std::uint64_t id = sim_.next_id();
    const std::uint64_t args[3] = {id, 0, 0};
    sim_.schedule(delay, kKindRunnerOnly, args, 3);
    known_ids_.push_back(id);
  }

  Simulator sim_;
  RefModel ref_;
  Log wheel_log_;
  Log ref_log_;
  std::size_t checked_ = 0;
  std::vector<std::uint64_t> known_ids_;
};

/// Delay classes chosen to exercise every wheel home: same-tick collisions,
/// each level, and the overflow list past the ~2^36-tick horizon.
Ticks random_delay(rng::Xoshiro256& g) {
  switch (g.below(8)) {
    case 0: return g.below(4);                                // same-instant FIFO
    case 1: return g.below(64);                               // level 0
    case 2: return g.below(4096);                             // level 1
    case 3: return g.below(262'144);                          // level 2
    case 4: return g.below(1ULL << 24);                       // level 3/4
    case 5: return g.below(1ULL << 32);                       // level 4/5
    case 6: return (1ULL << 36) + g.below(1ULL << 40);        // overflow
    default: return g.below(1024);
  }
}

void run_seed(std::uint64_t seed, bool oracle) {
  rng::Xoshiro256 g(seed * 0x9E3779B97F4A7C15ULL + 1);
  Lockstep pair;

  const int phases = 24 + static_cast<int>(g.below(24));
  for (int phase = 0; phase < phases; ++phase) {
    const std::uint64_t op = g.below(8);
    if (op < 3) {
      const int batch = 1 + static_cast<int>(g.below(16));
      for (int i = 0; i < batch; ++i) {
        // Oracle seeds stay fully described so the queue is serializable
        // at any pause point; other seeds mix in opaque closures.
        const int form = oracle ? 1 + static_cast<int>(g.below(2))
                                : static_cast<int>(g.below(3));
        const bool chain = g.below(4) == 0;
        pair.schedule(random_delay(g), form, chain, random_delay(g));
      }
      pair.check_state();
    } else if (op == 3 && !pair.known_ids().empty()) {
      const int cancels = 1 + static_cast<int>(g.below(4));
      for (int i = 0; i < cancels; ++i) {
        const auto& ids = pair.known_ids();
        pair.cancel(ids[static_cast<std::size_t>(g.below(ids.size()))]);
      }
      pair.check_state();
    } else if (op < 7) {
      // Mixed run shapes: unbounded, deadline-bounded (often breaking mid
      // queue, which leaves the windows anchored ahead of now and forces
      // later near inserts through the antechamber), and tiny max_events
      // caps that must raise truncated() identically on both sides.
      const std::uint64_t shape = g.below(4);
      if (shape == 0) {
        pair.run(0, 1 + g.below(8));
      } else if (shape == 1) {
        pair.run(1 + random_delay(g), 10'000'000);
      } else if (shape == 2) {
        pair.run(1 + g.below(65'536), 1 + g.below(16));
      } else {
        pair.run(0, 10'000'000);
      }
    } else if (oracle) {
      pair.snapshot_roundtrip(g);
    }
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "reproduce with: HOURS_FUZZ_SEED=" << seed
             << " ./sim_queue_property_test";
    }
  }

  // Drain: both queues must finish empty, in lockstep, at the same instant.
  pair.run(0, 10'000'000);
  ASSERT_FALSE(pair.sim().truncated());
  ASSERT_EQ(pair.sim().pending(), 0U);
}

TEST(SimQueueProperty, WheelMatchesMapReference) {
  const std::uint64_t pinned = env_u64("HOURS_FUZZ_SEED", 0);
  const std::uint64_t count = pinned != 0 ? 1 : env_u64("HOURS_FUZZ_SEEDS", 25);
  ASSERT_GT(count, 0U) << "HOURS_FUZZ_SEEDS must be >= 1";
  const std::uint64_t snapshot_stride = env_u64("HOURS_FUZZ_SNAPSHOT", 4);

  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t seed = pinned != 0 ? pinned : i + 1;
    const bool oracle =
        pinned != 0 || (snapshot_stride != 0 && seed % snapshot_stride == 0);
    run_seed(seed, oracle);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace hours::sim
