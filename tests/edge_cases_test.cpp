// Edge cases and contract enforcement across modules: degenerate sizes,
// budget exhaustion, precondition violations (death tests), and extremes
// the main suites do not reach.
#include <gtest/gtest.h>

#include "analysis/resilience.hpp"
#include "metrics/histogram.hpp"
#include "hierarchy/router.hpp"
#include "hierarchy/synthetic.hpp"
#include "overlay/overlay.hpp"
#include "rng/pointer_sampler.hpp"
#include "sim/simulator.hpp"

namespace hours {
namespace {

overlay::OverlayParams enhanced(std::uint32_t k = 3, std::uint32_t q = 2) {
  overlay::OverlayParams p;
  p.k = k;
  p.q = q;
  return p;
}

// ---- contracts abort on misuse ----------------------------------------------------

using ContractDeath = ::testing::Test;

TEST(ContractDeath, OverlayIndexOutOfRange) {
  overlay::Overlay ov{8, enhanced()};
  EXPECT_DEATH(ov.kill(100), "precondition");
  EXPECT_DEATH(ov.revive(8), "precondition");
  EXPECT_DEATH((void)ov.forward(0, 9), "precondition");
}

TEST(ContractDeath, ForwardFromDeadEntrance) {
  overlay::Overlay ov{8, enhanced()};
  ov.kill(3);
  EXPECT_DEATH((void)ov.forward(3, 5), "precondition");
}

TEST(ContractDeath, InvalidOverlayParams) {
  overlay::OverlayParams p;
  p.k = 0;
  EXPECT_DEATH(p.validate(), "precondition");
}

TEST(ContractDeath, SamplerRequiresPositiveK) {
  rng::Xoshiro256 g{1};
  EXPECT_DEATH((void)rng::sample_pointer_distances(10, 0, g), "precondition");
}

TEST(ContractDeath, HistogramQuantileRange) {
  metrics::Histogram h;
  h.add(1);
  EXPECT_DEATH((void)h.quantile(1.5), "precondition");
}

// ---- degenerate sizes ------------------------------------------------------------

TEST(EdgeCases, TwoNodeOverlayForwardsBothWays) {
  overlay::Overlay ov{2, enhanced()};
  EXPECT_EQ(ov.forward(0, 1).kind, overlay::ExitKind::kArrivedAtOd);
  EXPECT_EQ(ov.forward(1, 0).kind, overlay::ExitKind::kArrivedAtOd);
}

TEST(EdgeCases, SingleChildHierarchy) {
  hierarchy::SyntheticSpec spec;
  spec.fanout = {1, 1, 1};
  hierarchy::SyntheticHierarchy h{spec, enhanced()};
  hierarchy::Router router{h};
  const auto out = router.route({0, 0, 0});
  ASSERT_TRUE(out.delivered);
  EXPECT_EQ(out.hops, 3U);
  // The only child dead: no detour can exist.
  h.kill({0});
  EXPECT_FALSE(router.route({0, 0, 0}).delivered);
}

TEST(EdgeCases, MaxHopsOptionCapsForwarding) {
  overlay::Overlay ov{64, enhanced(2, 2)};
  const ids::RingIndex od = 32;
  ov.kill(od);
  // No children: no nephew exits can exist, so the walk would wander far.
  overlay::ForwardOptions opts;
  opts.max_hops = 3;
  const auto res = ov.forward(0, od, opts);
  EXPECT_EQ(res.kind, overlay::ExitKind::kUnreachable);
  EXPECT_LE(res.hops, 3U);
}

TEST(EdgeCases, KLargerThanRingIsFullMesh) {
  overlay::Overlay ov{6, enhanced(/*k=*/10, /*q=*/1)};
  for (ids::RingIndex i = 0; i < 6; ++i) {
    EXPECT_EQ(ov.table(i).size(), 5U);  // pointer to every sibling
    for (ids::RingIndex j = 0; j < 6; ++j) {
      if (i != j) {
        EXPECT_NE(ov.table(i).find(j), nullptr);
      }
    }
  }
  // Fully meshed: everything is one hop.
  EXPECT_EQ(ov.forward(0, 5).hops, 1U);
}

TEST(EdgeCases, BackwardStepsFormulaDegenerates) {
  // attacked = n-2 leaves exactly one alive candidate.
  const double steps = analysis::expected_backward_steps(10, 2, 8);
  EXPECT_GE(steps, 0.0);
  EXPECT_LE(steps, 1.0);
}

TEST(EdgeCases, SamplerAtMillionsIsFastAndSane) {
  rng::Xoshiro256 g{9};
  const auto distances = rng::sample_pointer_distances(2'000'000, 5, g);
  // E[count] = 5 + 5(H_{N-1} - H_5) ~ 66.
  EXPECT_GT(distances.size(), 35U);
  EXPECT_LT(distances.size(), 120U);
  for (std::size_t i = 1; i < distances.size(); ++i) {
    EXPECT_LT(distances[i - 1], distances[i]);
  }
  EXPECT_LT(distances.back(), 2'000'000U);
}

TEST(EdgeCases, SimulatorRunTwiceAndNestedCancel) {
  sim::Simulator s;
  int fired = 0;
  std::uint64_t victim = 0;
  s.schedule(10, [&] {
    ++fired;
    s.cancel(victim);  // cancel a later event from within an earlier one
  });
  victim = s.schedule(20, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  s.schedule(5, [&] { ++fired; });  // engine reusable after drain
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(EdgeCases, RouterToDeepestLeafOfHugeFanout) {
  hierarchy::SyntheticSpec spec;
  spec.fanout = {3, 40'000};  // level-2 overlay beyond the eager limit
  spec.eager_table_limit = 1'000;
  hierarchy::SyntheticHierarchy h{spec, enhanced(5, 4)};
  hierarchy::Router router{h};
  h.kill({1});
  const auto out = router.route({1, 39'999});
  ASSERT_TRUE(out.delivered);  // lazy tables route through the dead zone
}

}  // namespace
}  // namespace hours
