// Routing-table construction (Algorithm 1) — structure, determinism,
// base-vs-enhanced differences, and Theorem 1's O(log N) size, swept over
// (N, k) with parameterized property tests.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/resilience.hpp"
#include "ids/ring.hpp"
#include "overlay/table_builder.hpp"

namespace hours::overlay {
namespace {

OverlayParams base_params(std::uint32_t q = 3) {
  OverlayParams p;
  p.design = Design::kBase;
  p.q = q;
  return p;
}

OverlayParams enhanced_params(std::uint32_t k = 5, std::uint32_t q = 3) {
  OverlayParams p;
  p.design = Design::kEnhanced;
  p.k = k;
  p.q = q;
  return p;
}

TEST(RoutingTableType, FindAndOrdering) {
  RoutingTable t{2, 10};
  t.add_entry(TableEntry{3, {}});
  t.add_entry(TableEntry{5, {}});
  t.add_entry(TableEntry{0, {}});  // distance 8 from owner 2

  EXPECT_NE(t.find(3), nullptr);
  EXPECT_NE(t.find(0), nullptr);
  EXPECT_EQ(t.find(4), nullptr);
  EXPECT_EQ(t.size(), 3U);
}

TEST(RoutingTableType, LastBeforeDistance) {
  RoutingTable t{0, 100};
  t.add_entry(TableEntry{1, {}});
  t.add_entry(TableEntry{5, {}});
  t.add_entry(TableEntry{20, {}});

  // Entries at distances {1, 5, 20}.
  EXPECT_EQ(t.last_before_distance(1), t.entries().size());  // none strictly below 1
  EXPECT_EQ(t.entries()[t.last_before_distance(2)].sibling, 1U);
  EXPECT_EQ(t.entries()[t.last_before_distance(6)].sibling, 5U);
  EXPECT_EQ(t.entries()[t.last_before_distance(20)].sibling, 5U);
  EXPECT_EQ(t.entries()[t.last_before_distance(99)].sibling, 20U);
}

TEST(RoutingTableType, InsertEntrySortsAndReplaces) {
  RoutingTable t{0, 100};
  t.add_entry(TableEntry{5, {}});
  t.insert_entry(TableEntry{2, {}});
  t.insert_entry(TableEntry{50, {}});
  t.insert_entry(TableEntry{5, {7, 8}});  // replace

  ASSERT_EQ(t.size(), 3U);
  EXPECT_EQ(t.entries()[0].sibling, 2U);
  EXPECT_EQ(t.entries()[1].sibling, 5U);
  EXPECT_EQ(t.entries()[1].nephews.size(), 2U);
  EXPECT_EQ(t.entries()[2].sibling, 50U);
}

TEST(TableBuilder, Deterministic) {
  const auto params = enhanced_params();
  const RoutingTable a = build_routing_table(500, 42, params);
  const RoutingTable b = build_routing_table(500, 42, params);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.entries()[i].sibling, b.entries()[i].sibling);
    EXPECT_EQ(a.entries()[i].nephews, b.entries()[i].nephews);
  }
}

TEST(TableBuilder, DifferentNodesDifferentTables) {
  const auto params = enhanced_params();
  const RoutingTable a = build_routing_table(500, 1, params);
  const RoutingTable b = build_routing_table(500, 2, params);
  // Identical tables for distinct owners would betray broken seed derivation.
  bool different = a.size() != b.size();
  if (!different) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      const auto da = ids::clockwise_distance(1, a.entries()[i].sibling, 500);
      const auto db = ids::clockwise_distance(2, b.entries()[i].sibling, 500);
      if (da != db) {
        different = true;
        break;
      }
    }
  }
  EXPECT_TRUE(different);
}

TEST(TableBuilder, BaseKeepsClockwiseNeighborAndNoCcwPointer) {
  const RoutingTable t = build_routing_table(200, 10, base_params());
  ASSERT_GE(t.size(), 1U);
  EXPECT_EQ(t.entries().front().sibling, 11U);  // distance-1 pointer is certain
  EXPECT_FALSE(t.ccw_neighbor().has_value());   // base design: no backward pointer
}

TEST(TableBuilder, EnhancedKeepsKClockwiseNeighborsAndCcwPointer) {
  const std::uint32_t k = 5;
  const RoutingTable t = build_routing_table(200, 10, enhanced_params(k));
  ASSERT_GE(t.size(), k);
  for (std::uint32_t d = 1; d <= k; ++d) {
    EXPECT_EQ(ids::clockwise_distance(10, t.entries()[d - 1].sibling, 200), d);
  }
  ASSERT_TRUE(t.ccw_neighbor().has_value());
  EXPECT_EQ(*t.ccw_neighbor(), 9U);
}

TEST(TableBuilder, BaseNephewsOnlyOnClockwiseNeighbor) {
  auto child_count = [](ids::RingIndex) { return 20U; };
  const RoutingTable t = build_routing_table(200, 0, base_params(/*q=*/3), child_count);
  ASSERT_GE(t.size(), 1U);
  EXPECT_EQ(t.entries().front().nephews.size(), 3U);
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_TRUE(t.entries()[i].nephews.empty());
  }
}

TEST(TableBuilder, EnhancedNephewsOnEveryEntry) {
  auto child_count = [](ids::RingIndex) { return 20U; };
  const RoutingTable t =
      build_routing_table(200, 0, enhanced_params(5, /*q=*/4), child_count);
  for (const auto& entry : t.entries()) {
    EXPECT_EQ(entry.nephews.size(), 4U);
    for (const auto n : entry.nephews) EXPECT_LT(n, 20U);
  }
}

TEST(TableBuilder, NephewCountCappedByChildren) {
  auto child_count = [](ids::RingIndex j) { return j % 2 == 0 ? 2U : 0U; };
  const RoutingTable t =
      build_routing_table(50, 0, enhanced_params(3, /*q=*/10), child_count);
  for (const auto& entry : t.entries()) {
    if (entry.sibling % 2 == 0) {
      EXPECT_EQ(entry.nephews.size(), 2U);  // only two children exist
    } else {
      EXPECT_TRUE(entry.nephews.empty());
    }
  }
}

TEST(TableBuilder, SingletonAndPairRings) {
  EXPECT_EQ(build_routing_table(1, 0, enhanced_params()).size(), 0U);
  const RoutingTable pair = build_routing_table(2, 0, enhanced_params());
  ASSERT_EQ(pair.size(), 1U);
  EXPECT_EQ(pair.entries()[0].sibling, 1U);
}

// ---- parameterized property sweep ------------------------------------------------

struct SweepCase {
  std::uint32_t n;
  std::uint32_t k;
  Design design;
};

class TableSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(TableSweep, SizeTracksTheoremOne) {
  const auto [n, k, design] = GetParam();
  OverlayParams params;
  params.design = design;
  params.k = k;

  double total = 0;
  const std::uint32_t samples = std::min(200U, n);
  for (std::uint32_t i = 0; i < samples; ++i) {
    const auto owner = static_cast<ids::RingIndex>((i * 7919ULL) % n);
    const RoutingTable t = build_routing_table(n, owner, params);

    // Entries sorted, unique, in-range — structural invariants.
    for (std::size_t e = 1; e < t.size(); ++e) {
      EXPECT_LT(ids::clockwise_distance(owner, t.entries()[e - 1].sibling, n),
                ids::clockwise_distance(owner, t.entries()[e].sibling, n));
    }
    total += static_cast<double>(t.size());
  }

  const double mean = total / samples;
  const double expected = analysis::expected_table_size(n, params.effective_k());
  // Sample mean over >=100 nodes: allow 15% plus a small absolute slack.
  EXPECT_NEAR(mean, expected, 0.15 * expected + 1.0)
      << "n=" << n << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    SizeSweep, TableSweep,
    ::testing::Values(SweepCase{100, 1, Design::kBase}, SweepCase{1000, 1, Design::kBase},
                      SweepCase{10'000, 1, Design::kBase}, SweepCase{100, 5, Design::kEnhanced},
                      SweepCase{1000, 5, Design::kEnhanced},
                      SweepCase{10'000, 5, Design::kEnhanced},
                      SweepCase{1000, 10, Design::kEnhanced},
                      SweepCase{1000, 2, Design::kEnhanced}));

}  // namespace
}  // namespace hours::overlay
