#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "metrics/histogram.hpp"
#include "metrics/json_writer.hpp"
#include "metrics/table_writer.hpp"
#include "metrics/timeline.hpp"

namespace hours::metrics {
namespace {

TEST(Histogram, Empty) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.total_count(), 0U);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0U);
}

TEST(Histogram, BasicStats) {
  Histogram h;
  for (const std::uint64_t v : {1, 2, 2, 3, 3, 3}) h.add(v);
  EXPECT_EQ(h.total_count(), 6U);
  EXPECT_EQ(h.count_at(2), 2U);
  EXPECT_EQ(h.count_at(9), 0U);
  EXPECT_EQ(h.min_value(), 1U);
  EXPECT_EQ(h.max_value(), 3U);
  EXPECT_NEAR(h.mean(), 14.0 / 6.0, 1e-12);
}

TEST(Histogram, WeightedAdd) {
  Histogram h;
  h.add(5, 10);
  h.add(7, 30);
  EXPECT_EQ(h.total_count(), 40U);
  EXPECT_NEAR(h.mean(), (5.0 * 10 + 7.0 * 30) / 40.0, 1e-12);
}

TEST(Histogram, Quantiles) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.add(v);
  EXPECT_EQ(h.quantile(0.0), 1U);
  EXPECT_EQ(h.quantile(0.5), 50U);
  EXPECT_EQ(h.quantile(0.9), 90U);
  EXPECT_EQ(h.quantile(1.0), 100U);
}

TEST(Histogram, Cdf) {
  Histogram h;
  for (std::uint64_t v = 0; v < 10; ++v) h.add(v);
  EXPECT_NEAR(h.cdf(4), 0.5, 1e-12);
  EXPECT_NEAR(h.cdf(9), 1.0, 1e-12);
  EXPECT_NEAR(h.cdf(100), 1.0, 1e-12);
}

TEST(Histogram, Variance) {
  Histogram h;
  h.add(2);
  h.add(4);
  EXPECT_NEAR(h.variance(), 1.0, 1e-9);
}

TEST(Histogram, Merge) {
  Histogram a;
  Histogram b;
  a.add(1);
  a.add(2);
  b.add(2);
  b.add(3);
  a.merge(b);
  EXPECT_EQ(a.total_count(), 4U);
  EXPECT_EQ(a.count_at(2), 2U);
  EXPECT_EQ(a.max_value(), 3U);
}

TEST(TableWriter, FormatHelpers) {
  EXPECT_EQ(TableWriter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TableWriter::fmt(std::uint64_t{42}), "42");
}

TEST(TableWriter, CsvRoundTrip) {
  TableWriter table{{"alpha", "delivery"}};
  table.add_row({"0.1", "0.999"});
  table.add_row({"0.9", "0.640"});

  const std::string path = ::testing::TempDir() + "/hours_table_test.csv";
  ASSERT_TRUE(table.write_csv(path));

  std::ifstream in{path};
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "alpha,delivery\n0.1,0.999\n0.9,0.640\n");
  std::remove(path.c_str());
}

TEST(TableWriter, PrintRendersAlignedTable) {
  TableWriter table{{"name", "value"}};
  table.add_row({"alpha", "1"});
  table.add_row({"beta-long", "22"});
  ::testing::internal::CaptureStdout();
  table.print("demo");
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("| name      | value |"), std::string::npos);
  EXPECT_NE(out.find("| beta-long | 22    |"), std::string::npos);
}

TEST(TableWriter, CsvFailsOnBadPath) {
  TableWriter table{{"x"}};
  EXPECT_FALSE(table.write_csv("/nonexistent-dir/impossible.csv"));
}

TEST(Timeline, BucketsByWindowAndComputesRatios) {
  Timeline tl{100};
  tl.record(0, true, 40);
  tl.record(99, false);
  tl.record(100, true, 60);
  tl.record(250, true, 20);

  const auto windows = tl.windows();
  ASSERT_EQ(windows.size(), 3U);
  EXPECT_EQ(windows[0].start, 0U);
  EXPECT_EQ(windows[0].attempts, 2U);
  EXPECT_EQ(windows[0].delivered, 1U);
  EXPECT_DOUBLE_EQ(windows[0].delivery_ratio(), 0.5);
  EXPECT_DOUBLE_EQ(windows[0].mean_latency(), 40.0);
  EXPECT_EQ(windows[1].start, 100U);
  EXPECT_DOUBLE_EQ(windows[1].delivery_ratio(), 1.0);
  EXPECT_EQ(windows[2].start, 200U);
  EXPECT_EQ(tl.total_attempts(), 4U);
  EXPECT_EQ(tl.total_delivered(), 3U);
}

TEST(Timeline, MaterializesGapWindows) {
  Timeline tl{10};
  tl.record(5, true, 1);
  tl.record(35, true, 1);
  const auto windows = tl.windows();
  ASSERT_EQ(windows.size(), 4U);  // 0, 10, 20, 30 — gaps filled
  EXPECT_EQ(windows[1].attempts, 0U);
  EXPECT_EQ(windows[2].attempts, 0U);
  EXPECT_DOUBLE_EQ(windows[1].delivery_ratio(), 0.0);
}

TEST(Timeline, PhaseRatioAggregatesWindowRange) {
  Timeline tl{10};
  for (std::uint64_t t = 0; t < 30; t += 10) tl.record(t, true, 1);
  for (std::uint64_t t = 30; t < 50; t += 10) tl.record(t, false);
  EXPECT_DOUBLE_EQ(tl.delivery_ratio(0, 30), 1.0);
  EXPECT_DOUBLE_EQ(tl.delivery_ratio(30, 50), 0.0);
  EXPECT_DOUBLE_EQ(tl.delivery_ratio(0, 50), 0.6);
  EXPECT_DOUBLE_EQ(tl.delivery_ratio(500, 600), 0.0);  // empty range
}

TEST(Timeline, JsonIsDeterministicAndWellFormed) {
  Timeline a{50};
  Timeline b{50};
  for (Timeline* tl : {&a, &b}) {
    tl->record(10, true, 30);
    tl->record(60, false);
    tl->record(170, true, 90);
  }
  const std::string json = a.to_json();
  EXPECT_EQ(json, b.to_json());  // byte-identical for identical inputs
  EXPECT_NE(json.find("\"window_width\":50"), std::string::npos);
  EXPECT_NE(json.find("{\"start\":0,\"attempts\":1,\"delivered\":1"), std::string::npos);
  EXPECT_NE(json.find("\"delivery_ratio\":1.000000"), std::string::npos);
  EXPECT_NE(json.find("\"mean_latency\":30.000"), std::string::npos);
  // The 100-window gap is materialized.
  EXPECT_NE(json.find("{\"start\":100,\"attempts\":0,\"delivered\":0"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(Timeline, EmptyTimeline) {
  Timeline tl{10};
  EXPECT_TRUE(tl.windows().empty());
  EXPECT_EQ(tl.to_json(), "{\"window_width\":10,\"windows\":[]}");
  EXPECT_DOUBLE_EQ(tl.delivery_ratio(0, 100), 0.0);
}

TEST(Histogram, EmptyPercentilesAndExtremes) {
  Histogram h;
  EXPECT_EQ(h.quantile(0.0), 0U);
  EXPECT_EQ(h.quantile(0.99), 0U);
  EXPECT_EQ(h.quantile(1.0), 0U);
  EXPECT_EQ(h.min_value(), 0U);
  EXPECT_EQ(h.max_value(), 0U);
  EXPECT_EQ(h.variance(), 0.0);
  EXPECT_NEAR(h.cdf(5), 0.0, 1e-12);
}

TEST(Histogram, SingleSampleQuantilesAllCollapse) {
  Histogram h;
  h.add(7);
  for (const double p : {0.0, 0.01, 0.5, 0.9, 0.999, 1.0}) {
    EXPECT_EQ(h.quantile(p), 7U) << "p=" << p;
  }
  EXPECT_EQ(h.min_value(), 7U);
  EXPECT_EQ(h.max_value(), 7U);
  EXPECT_DOUBLE_EQ(h.mean(), 7.0);
  EXPECT_DOUBLE_EQ(h.variance(), 0.0);
}

TEST(Timeline, WindowBoundaryBucketing) {
  // Observations exactly on a boundary belong to the window they start.
  Timeline tl{100};
  tl.record(99, true, 1);    // last tick of window 0
  tl.record(100, false);     // first tick of window 100
  tl.record(199, false);     // last tick of window 100
  tl.record(200, true, 1);   // first tick of window 200

  const auto windows = tl.windows();
  ASSERT_EQ(windows.size(), 3U);
  EXPECT_EQ(windows[0].start, 0U);
  EXPECT_EQ(windows[0].attempts, 1U);
  EXPECT_EQ(windows[1].start, 100U);
  EXPECT_EQ(windows[1].attempts, 2U);
  EXPECT_EQ(windows[2].start, 200U);
  EXPECT_EQ(windows[2].attempts, 1U);

  // Phase ratios are window-granular, keyed by window start: [100, 200)
  // covers exactly the middle window.
  EXPECT_DOUBLE_EQ(tl.delivery_ratio(100, 200), 0.0);
  EXPECT_DOUBLE_EQ(tl.delivery_ratio(0, 100), 1.0);
  EXPECT_DOUBLE_EQ(tl.delivery_ratio(200, 300), 1.0);
}

TEST(JsonWriter, NestedContainersAndCommaPlacement) {
  JsonWriter w;
  w.begin_object();
  w.field("a", 1);
  w.key("list").begin_array();
  w.value(std::uint64_t{2});
  w.begin_object();
  w.field("b", true);
  w.end_object();
  w.end_array();
  w.field("c", 0.5, 2);
  w.end_object();
  EXPECT_EQ(w.str(), R"({"a":1,"list":[2,{"b":true}],"c":0.50})");
}

TEST(JsonWriter, StringLiteralsAreStringsNotBools) {
  // A bare string literal must take the string overload, not decay to bool.
  JsonWriter w;
  w.begin_object();
  w.field("bench", "partition_healing");
  w.end_object();
  EXPECT_EQ(w.str(), R"({"bench":"partition_healing"})");
}

TEST(JsonWriter, EscapesQuotesBackslashesAndControlChars) {
  JsonWriter w;
  w.begin_array();
  w.value(std::string_view{"a\"b\\c\n"});
  w.end_array();
  EXPECT_EQ(w.str(), "[\"a\\\"b\\\\c\\n\"]");
}

TEST(JsonWriter, RawSplicesPrerenderedJson) {
  Timeline tl{10};
  tl.record(0, true, 1);
  JsonWriter w;
  w.begin_object();
  w.key("timeline").raw(tl.to_json());
  w.end_object();
  const std::string json = w.str();
  EXPECT_EQ(json.find("{\"timeline\":{\"window_width\":10"), 0U);
  EXPECT_EQ(json.back(), '}');
}

TEST(JsonWriter, FixedPointDoublesAreDeterministic) {
  JsonWriter w;
  w.begin_array();
  w.value(1.0 / 3.0, 4);
  w.value(2.0, 1);
  w.end_array();
  EXPECT_EQ(w.str(), "[0.3333,2.0]");
  EXPECT_EQ(JsonWriter::fixed(0.126, 2), "0.13");  // fixed formatting, not exponent
}

}  // namespace
}  // namespace hours::metrics
