#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "metrics/histogram.hpp"
#include "metrics/table_writer.hpp"

namespace hours::metrics {
namespace {

TEST(Histogram, Empty) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.total_count(), 0U);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0U);
}

TEST(Histogram, BasicStats) {
  Histogram h;
  for (const std::uint64_t v : {1, 2, 2, 3, 3, 3}) h.add(v);
  EXPECT_EQ(h.total_count(), 6U);
  EXPECT_EQ(h.count_at(2), 2U);
  EXPECT_EQ(h.count_at(9), 0U);
  EXPECT_EQ(h.min_value(), 1U);
  EXPECT_EQ(h.max_value(), 3U);
  EXPECT_NEAR(h.mean(), 14.0 / 6.0, 1e-12);
}

TEST(Histogram, WeightedAdd) {
  Histogram h;
  h.add(5, 10);
  h.add(7, 30);
  EXPECT_EQ(h.total_count(), 40U);
  EXPECT_NEAR(h.mean(), (5.0 * 10 + 7.0 * 30) / 40.0, 1e-12);
}

TEST(Histogram, Quantiles) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.add(v);
  EXPECT_EQ(h.quantile(0.0), 1U);
  EXPECT_EQ(h.quantile(0.5), 50U);
  EXPECT_EQ(h.quantile(0.9), 90U);
  EXPECT_EQ(h.quantile(1.0), 100U);
}

TEST(Histogram, Cdf) {
  Histogram h;
  for (std::uint64_t v = 0; v < 10; ++v) h.add(v);
  EXPECT_NEAR(h.cdf(4), 0.5, 1e-12);
  EXPECT_NEAR(h.cdf(9), 1.0, 1e-12);
  EXPECT_NEAR(h.cdf(100), 1.0, 1e-12);
}

TEST(Histogram, Variance) {
  Histogram h;
  h.add(2);
  h.add(4);
  EXPECT_NEAR(h.variance(), 1.0, 1e-9);
}

TEST(Histogram, Merge) {
  Histogram a;
  Histogram b;
  a.add(1);
  a.add(2);
  b.add(2);
  b.add(3);
  a.merge(b);
  EXPECT_EQ(a.total_count(), 4U);
  EXPECT_EQ(a.count_at(2), 2U);
  EXPECT_EQ(a.max_value(), 3U);
}

TEST(TableWriter, FormatHelpers) {
  EXPECT_EQ(TableWriter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TableWriter::fmt(std::uint64_t{42}), "42");
}

TEST(TableWriter, CsvRoundTrip) {
  TableWriter table{{"alpha", "delivery"}};
  table.add_row({"0.1", "0.999"});
  table.add_row({"0.9", "0.640"});

  const std::string path = ::testing::TempDir() + "/hours_table_test.csv";
  ASSERT_TRUE(table.write_csv(path));

  std::ifstream in{path};
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "alpha,delivery\n0.1,0.999\n0.9,0.640\n");
  std::remove(path.c_str());
}

TEST(TableWriter, PrintRendersAlignedTable) {
  TableWriter table{{"name", "value"}};
  table.add_row({"alpha", "1"});
  table.add_row({"beta-long", "22"});
  ::testing::internal::CaptureStdout();
  table.print("demo");
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("| name      | value |"), std::string::npos);
  EXPECT_NE(out.find("| beta-long | 22    |"), std::string::npos);
}

TEST(TableWriter, CsvFailsOnBadPath) {
  TableWriter table{{"x"}};
  EXPECT_FALSE(table.write_csv("/nonexistent-dir/impossible.csv"));
}

}  // namespace
}  // namespace hours::metrics
