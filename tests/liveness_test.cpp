// Tests for the unified liveness plane (src/liveness) and the resolver's
// gossip-shared negative-cache digest (DESIGN.md §11): the shared
// suspicion-TTL default pinned across every consumer, LivenessView's two
// expiry conventions (ring never-expires vs hierarchy TTL), gossip adoption
// semantics, bounded digest construction, and the per-zone distinct-miss
// burst detector behind the cache-busting defense.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hours/event_backend.hpp"
#include "hours/resolver.hpp"
#include "liveness/liveness.hpp"
#include "sim/hierarchy_protocol.hpp"
#include "sim/query_client.hpp"

namespace {

using namespace hours;
using liveness::Config;
using liveness::DigestEntry;
using liveness::Entry;
using liveness::LivenessView;
using liveness::Mode;
using liveness::Source;

// -- the one suspicion-TTL constant -------------------------------------------------

TEST(SuspicionTtl, DefaultIsPinnedAcrossEveryConsumer) {
  // The 4'000-tick suspicion TTL used to be duplicated at each call site;
  // it now lives once in liveness::kDefaultSuspicionTtl. This pins today's
  // value and every consumer's default to it — changing any of them is a
  // protocol change and must be deliberate.
  EXPECT_EQ(liveness::kDefaultSuspicionTtl, 4'000u);
  EXPECT_EQ(sim::QueryClientConfig{}.suspicion_ttl, liveness::kDefaultSuspicionTtl);
  EXPECT_EQ(sim::HierarchySimConfig{}.suspicion_ttl, liveness::kDefaultSuspicionTtl);
  EXPECT_EQ(EventBackendConfig{}.suspicion_ttl, liveness::kDefaultSuspicionTtl);
}

TEST(SuspicionTtl, GossipTuningDefaultsArePinned) {
  EXPECT_EQ(liveness::kDefaultDigestBudget, 4u);
  EXPECT_EQ(liveness::kDefaultDigestHorizon, 16'000u);
  const Config config;
  EXPECT_EQ(config.mode, Mode::kProbeOnly);
  EXPECT_EQ(config.digest_budget, liveness::kDefaultDigestBudget);
  EXPECT_EQ(config.digest_horizon, liveness::kDefaultDigestHorizon);
}

// -- LivenessView -------------------------------------------------------------------

TEST(LivenessView, RingSemanticsNeverExpire) {
  LivenessView view{{}, /*suspicion_ttl=*/0};
  EXPECT_TRUE(view.suspect(1, 7, 100));
  EXPECT_FALSE(view.suspect(1, 7, 200));  // overwrite, not an insertion
  EXPECT_TRUE(view.contains(1, 7));
  EXPECT_TRUE(view.is_suspected(1, 7, ~std::uint64_t{0} - 1));  // never expires
  EXPECT_TRUE(view.clear(1, 7));
  EXPECT_FALSE(view.contains(1, 7));
  EXPECT_FALSE(view.clear(1, 7));
}

TEST(LivenessView, HierarchySemanticsExpireButStayInTheMap) {
  LivenessView view{{}, /*suspicion_ttl=*/4'000};
  view.suspect(2, 9, 1'000);
  EXPECT_TRUE(view.is_suspected(2, 9, 4'999));
  EXPECT_FALSE(view.is_suspected(2, 9, 5'000));  // expiry = now + ttl, exclusive
  // The expired row remains until overwritten or cleared — the historical
  // flat maps kept it, and snapshots must reproduce them bit for bit.
  EXPECT_TRUE(view.contains(2, 9));
  view.suspect(2, 9, 6'000);  // re-suspect refreshes the expiry
  EXPECT_TRUE(view.is_suspected(2, 9, 9'999));
}

TEST(LivenessView, ObserverAndPeerClearing) {
  LivenessView view{{}, 0};
  view.suspect(1, 5, 10);
  view.suspect(1, 6, 10);
  view.suspect(2, 5, 10);
  EXPECT_EQ(view.size(), 3u);
  EXPECT_EQ(view.count_observer(1), 2u);

  view.clear_peer(5);  // hierarchy revival: every observer forgets peer 5
  EXPECT_FALSE(view.contains(1, 5));
  EXPECT_FALSE(view.contains(2, 5));
  EXPECT_TRUE(view.contains(1, 6));

  view.clear_observer(1);  // ring revival of the observer itself
  EXPECT_TRUE(view.observer_empty(1));
  EXPECT_EQ(view.size(), 0u);
}

TEST(LivenessView, NextAtOrAfterWrapsRoundRobin) {
  LivenessView view{{}, 0};
  view.suspect(3, 4, 0);
  view.suspect(3, 9, 0);
  EXPECT_EQ(view.next_at_or_after(3, 0), 4u);
  EXPECT_EQ(view.next_at_or_after(3, 5), 9u);
  EXPECT_EQ(view.next_at_or_after(3, 10), 4u);  // wraps
}

TEST(LivenessView, AdoptPreservesRumorAgeAndNeverOverwrites) {
  LivenessView view{Config{Mode::kGossip}, 0};
  // Adoption keeps the original observation time so the rumor ages across
  // hops instead of being refreshed at every gossip exchange.
  EXPECT_TRUE(view.adopt(1, 7, /*since=*/500, /*now=*/2'000));
  bool saw = false;
  view.for_each_observer(1, [&](liveness::NodeId peer, const Entry& entry) {
    saw = true;
    EXPECT_EQ(peer, 7u);
    EXPECT_EQ(entry.since, 500u);
    EXPECT_EQ(entry.source, Source::kGossip);
  });
  EXPECT_TRUE(saw);
  // A second rumor for the same peer is a no-op; so is gossip on top of a
  // local probe observation.
  EXPECT_FALSE(view.adopt(1, 7, 900, 2'100));
  view.suspect(2, 7, 1'000);
  EXPECT_FALSE(view.adopt(2, 7, 400, 2'000));
}

TEST(LivenessView, BuildDigestIsBoundedFreshestFirstAndHorizonFiltered) {
  Config config{Mode::kGossip, /*digest_budget=*/2, /*digest_horizon=*/1'000};
  LivenessView view{config, 0};
  const liveness::Ticks now = 1'500;
  view.suspect(1, 4, 1'200);
  view.suspect(1, 5, 1'400);
  view.suspect(1, 6, 1'200);
  view.suspect(1, 7, 300);  // past the horizon at `now` — never broadcast
  view.suspect(2, 8, 1'400);  // another observer's row

  const std::vector<DigestEntry> digest = view.build_digest(1, now);
  ASSERT_EQ(digest.size(), 2u);  // budget-truncated from 3 eligible
  EXPECT_EQ(digest[0].peer, 5u);  // freshest first
  EXPECT_EQ(digest[0].since, 1'400u);
  EXPECT_EQ(digest[1].peer, 4u);  // tie on since=1'200 breaks peer-ascending
  EXPECT_EQ(digest[1].since, 1'200u);

  EXPECT_TRUE(view.within_horizon(501, now));
  EXPECT_FALSE(view.within_horizon(500, now));  // since + horizon > now, exclusive
}

TEST(LivenessView, RestoreRowInstallsSavedStateVerbatim) {
  LivenessView view{{}, 4'000};
  view.restore_row(1, 2, Entry{/*expiry=*/123, /*since=*/45, Source::kGossip});
  EXPECT_TRUE(view.contains(1, 2));
  EXPECT_TRUE(view.is_suspected(1, 2, 122));
  EXPECT_FALSE(view.is_suspected(1, 2, 123));
  view.for_each([](liveness::NodeId observer, liveness::NodeId peer, const Entry& entry) {
    EXPECT_EQ(observer, 1u);
    EXPECT_EQ(peer, 2u);
    EXPECT_EQ(entry.expiry, 123u);
    EXPECT_EQ(entry.since, 45u);
    EXPECT_EQ(entry.source, Source::kGossip);
  });
}

// -- the gossip-shared negative-cache digest ----------------------------------------

TEST(NegativeCacheDigest, ZoneOfIsTheSuffixAfterTheFirstLabel) {
  EXPECT_EQ(NegativeCacheDigest::zone_of("h3.zone0"), "zone0");
  EXPECT_EQ(NegativeCacheDigest::zone_of("a.b.c"), "b.c");
  EXPECT_EQ(NegativeCacheDigest::zone_of("root"), "root");  // no dot: whole name
}

TEST(NegativeCacheDigest, FlagsAZoneOnlyAfterABurstOfDistinctMisses) {
  NegativeCacheDefenseConfig config;
  config.enabled = true;
  config.distinct_miss_threshold = 4;
  config.window = 10;
  config.flag_ttl = 60;
  NegativeCacheDigest digest{config};

  // The same name missing repeatedly is a dead record, not an attack.
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(digest.record_miss("cb", "h0.cb", 100));
  }
  EXPECT_FALSE(digest.flagged("cb", 100));

  // Distinct names inside one window trip the detector at the threshold.
  EXPECT_FALSE(digest.record_miss("cb", "h1.cb", 101));
  EXPECT_FALSE(digest.record_miss("cb", "h2.cb", 102));
  EXPECT_TRUE(digest.record_miss("cb", "h3.cb", 103));
  EXPECT_TRUE(digest.flagged("cb", 103));
  EXPECT_EQ(digest.zones_flagged(), 1u);

  // The flag expires after flag_ttl, and another burst re-flags.
  EXPECT_TRUE(digest.flagged("cb", 162));
  EXPECT_FALSE(digest.flagged("cb", 163));
  for (int i = 0; i < 3; ++i) {
    std::string name = "x";
    name += std::to_string(i);
    name += ".cb";
    EXPECT_FALSE(digest.record_miss("cb", name, 200));
  }
  EXPECT_TRUE(digest.record_miss("cb", "x3.cb", 200));
  EXPECT_EQ(digest.zones_flagged(), 2u);
}

TEST(NegativeCacheDigest, WindowPruningAndZoneIsolation) {
  NegativeCacheDefenseConfig config;
  config.enabled = true;
  config.distinct_miss_threshold = 3;
  config.window = 10;
  config.flag_ttl = 60;
  NegativeCacheDigest digest{config};

  // Two misses, then a long pause: the window forgets them, so two more
  // distinct misses later do not reach the threshold of three.
  EXPECT_FALSE(digest.record_miss("zone0", "a.zone0", 0));
  EXPECT_FALSE(digest.record_miss("zone0", "b.zone0", 1));
  EXPECT_FALSE(digest.record_miss("zone0", "c.zone0", 50));
  EXPECT_FALSE(digest.record_miss("zone0", "d.zone0", 51));
  EXPECT_FALSE(digest.flagged("zone0", 51));

  // Bursts accumulate per zone, never across zones.
  EXPECT_FALSE(digest.record_miss("zone1", "a.zone1", 52));
  EXPECT_FALSE(digest.record_miss("zone1", "b.zone1", 52));
  EXPECT_FALSE(digest.flagged("zone1", 52));
  EXPECT_TRUE(digest.record_miss("zone1", "c.zone1", 53));
  EXPECT_TRUE(digest.flagged("zone1", 53));
  EXPECT_FALSE(digest.flagged("zone0", 53));
}

}  // namespace
