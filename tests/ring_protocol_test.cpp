// Event-driven ring maintenance: probing, conventional neighborhood
// recovery, and Section 4.3 active recovery (Figure 3's scenario).
#include <gtest/gtest.h>

#include "sim/ring_protocol.hpp"

namespace hours::sim {
namespace {

RingSimConfig make_config(std::uint32_t size, std::uint32_t k) {
  RingSimConfig cfg;
  cfg.size = size;
  cfg.params.design = overlay::Design::kEnhanced;
  cfg.params.k = k;
  cfg.params.q = 2;
  cfg.params.seed = 0xFEEDULL;
  return cfg;
}

TEST(RingProtocol, StableRingStaysConnected) {
  RingSimulation ring{make_config(16, 3)};
  ring.start();
  ring.simulator().run(10 * ring.config().probe_period);
  EXPECT_TRUE(ring.ring_connected());
  EXPECT_GT(ring.probes_sent(), 0U);
  EXPECT_EQ(ring.repairs_sent(), 0U);  // nothing to repair
}

TEST(RingProtocol, ConventionalRecoveryHandlesSmallGap) {
  // Gap shorter than k: the node behind the gap walks its certain clockwise
  // pointers; no Repair message needed.
  const std::uint32_t k = 4;
  RingSimulation ring{make_config(24, k)};
  ring.start();
  ring.simulator().run(2 * ring.config().probe_period);

  ring.kill(10);
  ring.kill(11);  // gap of 2 < k
  ring.simulator().run(6 * ring.config().probe_period);

  EXPECT_TRUE(ring.ring_connected());
  EXPECT_EQ(ring.cw_successor(9), 12U);
  EXPECT_EQ(ring.ccw_neighbor(12), 9U);
}

TEST(RingProtocol, ActiveRecoveryBridgesLargeGap) {
  // Gap wider than k: all certain pointers across it are dead, so the node
  // clockwise of the gap must emit a Repair that lands behind the gap.
  const std::uint32_t k = 2;
  RingSimulation ring{make_config(24, k)};
  ring.start();
  ring.simulator().run(2 * ring.config().probe_period);

  for (ids::RingIndex i = 8; i <= 13; ++i) ring.kill(i);  // gap of 6 >> k
  ring.simulator().run(20 * ring.config().probe_period);

  EXPECT_TRUE(ring.ring_connected());
  EXPECT_EQ(ring.cw_successor(7), 14U);
  EXPECT_EQ(ring.ccw_neighbor(14), 7U);
  EXPECT_GE(ring.repairs_sent(), 1U);
}

TEST(RingProtocol, FigureThreeScenario) {
  // The paper's example: 10 nodes, k = 2, nodes 8 and 9 fail together.
  // Node 0 must eventually reconnect to node 7.
  RingSimConfig cfg = make_config(10, 2);
  RingSimulation ring{cfg};
  ring.start();
  ring.simulator().run(2 * cfg.probe_period);

  ring.kill(8);
  ring.kill(9);
  ring.simulator().run(20 * cfg.probe_period);

  EXPECT_TRUE(ring.ring_connected());
  EXPECT_EQ(ring.cw_successor(7), 0U);
  EXPECT_EQ(ring.ccw_neighbor(0), 7U);
}

TEST(RingProtocol, MultipleSimultaneousGaps) {
  RingSimulation ring{make_config(32, 2)};
  ring.start();
  ring.simulator().run(2 * ring.config().probe_period);

  for (ids::RingIndex i = 4; i <= 8; ++i) ring.kill(i);
  for (ids::RingIndex i = 18; i <= 23; ++i) ring.kill(i);
  ring.simulator().run(30 * ring.config().probe_period);

  EXPECT_TRUE(ring.ring_connected());
}

TEST(RingProtocol, QueriesDeliverOnHealthyRing) {
  RingSimulation ring{make_config(32, 3)};
  ring.start();
  ring.simulator().run(2 * ring.config().probe_period);

  const auto q1 = ring.inject_query(0, 20);
  const auto q2 = ring.inject_query(5, 6);
  const auto q3 = ring.inject_query(31, 31);
  ring.simulator().run(10 * ring.config().probe_period);

  EXPECT_TRUE(ring.query(q1).done);
  EXPECT_TRUE(ring.query(q1).delivered);
  EXPECT_TRUE(ring.query(q2).delivered);
  EXPECT_TRUE(ring.query(q3).delivered);
  EXPECT_EQ(ring.query(q3).hops, 0U);
}

TEST(RingProtocol, QueriesSurviveAfterRecovery) {
  const std::uint32_t k = 2;
  RingSimulation ring{make_config(32, k)};
  ring.start();
  ring.simulator().run(2 * ring.config().probe_period);

  // Neighbor-style attack around node 16 (kill it and 5 CCW neighbors).
  for (ids::RingIndex i = 11; i <= 16; ++i) ring.kill(i);
  ring.simulator().run(30 * ring.config().probe_period);
  ASSERT_TRUE(ring.ring_connected());

  // Queries toward the dead OD's neighborhood still terminate, and queries
  // between live nodes deliver.
  const auto q = ring.inject_query(20, 10);
  ring.simulator().run(20 * ring.config().probe_period);
  EXPECT_TRUE(ring.query(q).done);
  EXPECT_TRUE(ring.query(q).delivered);
}

TEST(RingProtocol, RecoveryConvergesUnderMessageLoss) {
  // 5% loss: probes and Repairs are retried every period, so the ring still
  // heals — it just may take more periods.
  RingSimConfig cfg = make_config(24, 2);
  cfg.loss_probability = 0.05;
  cfg.probe_failure_threshold = 3;  // lossy links need hysteresis
  RingSimulation ring{cfg};
  ring.start();
  ring.simulator().run(2 * cfg.probe_period);

  for (ids::RingIndex i = 8; i <= 13; ++i) ring.kill(i);
  ring.simulator().run(60 * cfg.probe_period);

  EXPECT_TRUE(ring.ring_connected());
  const auto q = ring.inject_query(20, 5);
  ring.simulator().run(30 * cfg.probe_period);
  EXPECT_TRUE(ring.query(q).delivered);
}

TEST(RingProtocol, RevivedNodeRejoins) {
  RingSimulation ring{make_config(16, 3)};
  ring.start();
  ring.simulator().run(2 * ring.config().probe_period);

  ring.kill(5);
  ring.simulator().run(8 * ring.config().probe_period);
  EXPECT_TRUE(ring.ring_connected());

  ring.revive(5);
  ring.simulator().run(8 * ring.config().probe_period);
  // The revived node probes its original neighbors and re-claims its slot.
  EXPECT_TRUE(ring.alive(5));
  EXPECT_EQ(ring.cw_successor(5), 6U);
}

}  // namespace
}  // namespace hours::sim
