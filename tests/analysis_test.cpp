#include <gtest/gtest.h>

#include <cmath>

#include "analysis/resilience.hpp"

namespace hours::analysis {
namespace {

TEST(Harmonic, SmallValues) {
  EXPECT_DOUBLE_EQ(harmonic(0), 0.0);
  EXPECT_DOUBLE_EQ(harmonic(1), 1.0);
  EXPECT_NEAR(harmonic(4), 1.0 + 0.5 + 1.0 / 3 + 0.25, 1e-12);
}

TEST(Harmonic, AsymptoticBranchIsContinuous) {
  // The exact and asymptotic branches must agree around the switch point.
  const double exact = harmonic(1'000'000);
  const double expansion =
      std::log(1e6) + 0.57721566490153286060 + 1.0 / 2e6 - 1.0 / (12.0 * 1e12);
  EXPECT_NEAR(exact, expansion, 1e-9);
}

TEST(ExpectedTableSize, BaseIsHarmonic) {
  EXPECT_NEAR(expected_table_size(1000, 1), harmonic(999), 1e-12);
}

TEST(ExpectedTableSize, EnhancedScalesByK) {
  const double base = expected_table_size(50'000, 1);
  const double enhanced = expected_table_size(50'000, 5);
  // Exact: k + k(H_{N-1} - H_k).
  EXPECT_NEAR(enhanced, 5.0 * (1.0 + harmonic(49'999) - harmonic(5)), 1e-9);
  // Paper's loose statement "increases by k times on average" holds within
  // the H_k correction.
  EXPECT_GT(enhanced / base, 4.0);
  EXPECT_LT(enhanced / base, 5.0);
}

TEST(ExpectedTableSize, DegenerateRings) {
  EXPECT_DOUBLE_EQ(expected_table_size(1, 5), 0.0);
  EXPECT_DOUBLE_EQ(expected_table_size(4, 10), 3.0);  // all pointers certain
}

TEST(DeliveryRandomAttack, Boundaries) {
  EXPECT_NEAR(delivery_random_attack(200, 5, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(delivery_random_attack(200, 5, 1.0), 0.0, 1e-12);
}

TEST(DeliveryRandomAttack, MonotoneInAlphaAndK) {
  double previous = 1.1;
  for (double alpha = 0.1; alpha < 1.0; alpha += 0.1) {
    const double p = delivery_random_attack(200, 5, alpha);
    EXPECT_LT(p, previous);
    previous = p;
  }
  EXPECT_LT(delivery_random_attack(200, 1, 0.5), delivery_random_attack(200, 5, 0.5));
  EXPECT_LT(delivery_random_attack(200, 5, 0.5), delivery_random_attack(200, 10, 0.5));
}

TEST(DeliveryRandomAttack, PaperFigure4Shape) {
  // "The random attack has almost negligible impact ... until more than 80%
  // of the nodes are attacked" (k = 5).
  EXPECT_GT(delivery_random_attack(200, 5, 0.5), 0.99);
  EXPECT_GT(delivery_random_attack(200, 5, 0.8), 0.90);
  EXPECT_LT(delivery_random_attack(200, 5, 0.99), 0.60);
}

TEST(DeliveryNeighborAttack, Boundaries) {
  EXPECT_NEAR(delivery_neighbor_attack(200, 5, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(delivery_neighbor_attack(200, 5, 1.0), 0.0, 1e-12);
}

TEST(DeliveryNeighborAttack, WorseThanRandom) {
  for (double alpha = 0.2; alpha < 1.0; alpha += 0.2) {
    EXPECT_LE(delivery_neighbor_attack(200, 5, alpha),
              delivery_random_attack(200, 5, alpha) + 1e-9)
        << "alpha=" << alpha;
  }
}

TEST(DeliveryNeighborAttack, PaperFigure4Numbers) {
  // "the attackers still need to shut down more than 80% of the nodes to
  // halve the service accessibility when k = 5".
  EXPECT_GT(delivery_neighbor_attack(200, 5, 0.8), 0.5);
  // "If we increase k to 10, even though 90% nodes are under attack, we can
  // still achieve a delivery ratio as high as 64%."
  EXPECT_NEAR(delivery_neighbor_attack(200, 10, 0.9), 0.64, 0.05);
}

TEST(InterOverlayFailure, IsAlphaToTheQ) {
  EXPECT_NEAR(inter_overlay_failure(0.5, 10), std::pow(0.5, 10), 1e-15);
  EXPECT_NEAR(inter_overlay_failure(0.0, 3), 0.0, 1e-15);
  EXPECT_NEAR(inter_overlay_failure(1.0, 3), 1.0, 1e-15);
}

TEST(Theorem3, ReducesToLogNWithoutAttack) {
  EXPECT_NEAR(theorem3_hops(1000, 0.0), std::log(1000.0), 1e-12);
  // Hops grow as the attack densifies.
  EXPECT_GT(theorem3_hops(1000, 0.9), theorem3_hops(1000, 0.1));
}

TEST(Theorem5, DamageDecaysWithDistance) {
  EXPECT_DOUBLE_EQ(theorem5_damage(0), 1.0);
  EXPECT_DOUBLE_EQ(theorem5_damage(1), 0.5);
  EXPECT_DOUBLE_EQ(theorem5_damage(9), 0.1);
}

TEST(ExpectedBasePathLength, IsLnN) {
  EXPECT_NEAR(expected_base_path_length(50'000), 10.82, 0.01);
  EXPECT_NEAR(expected_base_path_length(2'000'000), 14.51, 0.01);
}

TEST(BackwardSteps, ZeroWhenExitsAreCertain) {
  // With no dead block, the stall point's k certain counter-clockwise
  // holders make the expected walk short.
  EXPECT_LT(expected_backward_steps(1000, 5, 0), 1.0);
}

TEST(BackwardSteps, GrowsLinearlyInBlockWidth) {
  const double at100 = expected_backward_steps(1000, 5, 100);
  const double at200 = expected_backward_steps(1000, 5, 200);
  const double at400 = expected_backward_steps(1000, 5, 400);
  EXPECT_GT(at200, 1.5 * at100);
  EXPECT_GT(at400, 1.5 * at200);
  // Continuum model: E ~ attacked / (k - 1) for attacked >> k, before ring
  // truncation bites.
  EXPECT_NEAR(at200, 200.0 / 4.0, 12.0);
}

TEST(BackwardSteps, LargerKShortensTheWalk) {
  EXPECT_LT(expected_backward_steps(1000, 10, 300), expected_backward_steps(1000, 5, 300));
  EXPECT_LT(expected_backward_steps(1000, 5, 300), expected_backward_steps(1000, 2, 300));
}

}  // namespace
}  // namespace hours::analysis
