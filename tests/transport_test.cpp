// The event-simulation message transport: latency, acks, timeouts, loss,
// and dead-node suppression.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/transport.hpp"

namespace hours::sim {
namespace {

struct Payload {
  std::string text;
};

struct Fixture {
  Simulator sim;
  TransportConfig cfg;
  // 4 nodes, default timing.
  Transport<Payload> transport{sim, cfg, 4, /*seed=*/7};
  std::vector<std::pair<std::uint32_t, std::string>> received;

  Fixture() {
    transport.set_handler([this](std::uint32_t to, const Transport<Payload>::Envelope& env) {
      received.emplace_back(to, env.payload.text);
    });
  }
};

TEST(Transport, PostDeliversWithinLatencyBounds) {
  Fixture f;
  f.transport.post(0, 1, {"hello"});
  f.sim.run();
  ASSERT_EQ(f.received.size(), 1U);
  EXPECT_EQ(f.received[0].first, 1U);
  EXPECT_EQ(f.received[0].second, "hello");
  EXPECT_GE(f.sim.now(), f.cfg.latency_min);
  EXPECT_LE(f.sim.now(), f.cfg.latency_max);
}

TEST(Transport, DeadNodeReceivesNothing) {
  Fixture f;
  f.transport.set_alive(2, false);
  f.transport.post(0, 2, {"void"});
  f.sim.run();
  EXPECT_TRUE(f.received.empty());
}

TEST(Transport, AckFiresOnDelivery) {
  Fixture f;
  bool acked = false;
  bool timed_out = false;
  f.transport.send_expect_ack(0, 1, {"ping"}, [&] { acked = true; }, [&] { timed_out = true; });
  f.sim.run();
  EXPECT_TRUE(acked);
  EXPECT_FALSE(timed_out);
  ASSERT_EQ(f.received.size(), 1U);  // handler still runs at the receiver
}

TEST(Transport, TimeoutFiresForDeadTarget) {
  Fixture f;
  f.transport.set_alive(3, false);
  bool acked = false;
  bool timed_out = false;
  f.transport.send_expect_ack(0, 3, {"ping"}, [&] { acked = true; }, [&] { timed_out = true; });
  f.sim.run();
  EXPECT_FALSE(acked);
  EXPECT_TRUE(timed_out);
  EXPECT_GE(f.sim.now(), f.cfg.ack_timeout);
}

TEST(Transport, ExactlyOneOfAckOrTimeout) {
  Fixture f;
  int outcomes = 0;
  for (std::uint32_t to : {1U, 2U, 3U}) {
    f.transport.send_expect_ack(0, to, {"x"}, [&] { ++outcomes; }, [&] { ++outcomes; });
  }
  f.transport.set_alive(2, false);
  f.sim.run();
  EXPECT_EQ(outcomes, 3);
}

TEST(Transport, TotalLossAlwaysTimesOut) {
  Simulator sim;
  TransportConfig cfg;
  cfg.loss_probability = 0.95;
  Transport<Payload> transport{sim, cfg, 2, 7};
  transport.set_handler([](std::uint32_t, const Transport<Payload>::Envelope&) {});
  int timeouts = 0;
  int acks = 0;
  for (int i = 0; i < 100; ++i) {
    transport.send_expect_ack(0, 1, {"x"}, [&] { ++acks; }, [&] { ++timeouts; });
  }
  sim.run();
  EXPECT_EQ(acks + timeouts, 100);
  EXPECT_GT(timeouts, 80);  // ~0.95 + 0.05*0.95 of attempts lose msg or ack
  EXPECT_GT(transport.messages_lost(), 80U);
}

TEST(Transport, LossZeroLosesNothing) {
  Fixture f;
  for (int i = 0; i < 50; ++i) f.transport.post(0, 1, {"n"});
  f.sim.run();
  EXPECT_EQ(f.received.size(), 50U);
  EXPECT_EQ(f.transport.messages_lost(), 0U);
}

TEST(Transport, MessageCounterIncludesAcks) {
  Fixture f;
  f.transport.send_expect_ack(0, 1, {"ping"}, nullptr, nullptr);
  f.sim.run();
  EXPECT_EQ(f.transport.messages_sent(), 2U);  // message + ack
}

// -- ack-vs-timeout races (regression pins) -----------------------------------------
//
// Deterministic timing: latency fixed at 10, so a message lands at t=10 and
// its ack returns at t=20; the timeout arms at t=25.
struct RaceFixture {
  Simulator sim;
  Transport<Payload> transport;
  std::vector<std::uint32_t> received;

  RaceFixture() : transport{sim, make_cfg(), 4, /*seed=*/7} {
    transport.set_handler([this](std::uint32_t to, const Transport<Payload>::Envelope&) {
      received.push_back(to);
    });
  }
  static TransportConfig make_cfg() {
    TransportConfig c;
    c.latency_min = 10;
    c.latency_max = 10;
    c.ack_timeout = 25;
    return c;
  }
};

TEST(TransportRace, ReceiverDyingWithAckInFlightStillAcks) {
  // B processes the message at t=10 and dies at t=15 with its ack already in
  // flight. The ack lands anyway: only the *recipient's* liveness gates
  // delivery, and an ack's recipient is the (alive) sender. Pinned: the
  // sender rightly learns its message WAS processed before the death.
  RaceFixture f;
  bool acked = false;
  bool timed_out = false;
  f.transport.send_expect_ack(0, 1, {"x"}, [&] { acked = true; }, [&] { timed_out = true; });
  f.sim.schedule(15, [&] { f.transport.set_alive(1, false); });
  f.sim.run();
  EXPECT_EQ(f.received.size(), 1U);  // handler ran before the death
  EXPECT_TRUE(acked);
  EXPECT_FALSE(timed_out);
}

TEST(TransportRace, SenderDyingBeforeAckReturnsGetsTimeoutCallback) {
  // A sends at t=0 and dies at t=15; B's ack reaches A's address at t=20 but
  // is suppressed (dead nodes receive nothing), so the timeout fires at
  // t=25. Pinned: callbacks are engine-level and still run for a dead
  // sender — protocol code must guard with its own liveness check, exactly
  // as ring_protocol's handlers do.
  RaceFixture f;
  bool acked = false;
  bool timed_out = false;
  f.transport.send_expect_ack(0, 1, {"x"}, [&] { acked = true; }, [&] { timed_out = true; });
  f.sim.schedule(15, [&] { f.transport.set_alive(0, false); });
  f.sim.run();
  EXPECT_EQ(f.received.size(), 1U);  // B processed the message normally
  EXPECT_FALSE(acked);               // the ack was suppressed at the dead sender
  EXPECT_TRUE(timed_out);            // silence is reported despite the death
  EXPECT_EQ(f.sim.now(), 25U);
}

TEST(TransportRace, RevivedSenderDoesNotReceiveStaleAck) {
  // The suppressed ack is gone for good: reviving A after the ack's arrival
  // instant must not resurrect it, and the timeout outcome stands.
  RaceFixture f;
  bool acked = false;
  bool timed_out = false;
  f.transport.send_expect_ack(0, 1, {"x"}, [&] { acked = true; }, [&] { timed_out = true; });
  f.sim.schedule(15, [&] { f.transport.set_alive(0, false); });
  f.sim.schedule(22, [&] { f.transport.set_alive(0, true); });
  f.sim.run();
  EXPECT_FALSE(acked);
  EXPECT_TRUE(timed_out);
}

TEST(TransportRace, MessageInFlightWhenReceiverDiesIsSuppressedDespiteRevival) {
  // A sends at t=0 (arrival t=10); B dies at t=3 and is back up at t=6. The
  // restarted process has no connection state for traffic addressed to its
  // previous life: the message must NOT be delivered, and the sender's
  // timeout fires. Pinned: death *between send and delivery* voids the
  // message even when the node is alive again at the arrival instant.
  RaceFixture f;
  bool acked = false;
  bool timed_out = false;
  f.transport.send_expect_ack(0, 1, {"x"}, [&] { acked = true; }, [&] { timed_out = true; });
  f.sim.schedule(3, [&] { f.transport.set_alive(1, false); });
  f.sim.schedule(6, [&] { f.transport.set_alive(1, true); });
  f.sim.run();
  EXPECT_TRUE(f.received.empty());  // never delivered
  EXPECT_FALSE(acked);
  EXPECT_TRUE(timed_out);
  EXPECT_EQ(f.sim.now(), 25U);
}

TEST(TransportRace, MessageSentWhileReceiverDownDeliversAfterRevival) {
  // The converse ordering: B is down for [0, 6) and the message arrives at
  // t=10 into B's *current* life — it was never in flight across a death,
  // so it is delivered normally. Pinned together with the test above: what
  // matters is whether a death separates send from delivery, not whether
  // the node was ever down in between.
  RaceFixture f;
  f.transport.set_alive(1, false);
  f.transport.post(0, 1, {"x"});
  f.sim.schedule(6, [&] { f.transport.set_alive(1, true); });
  f.sim.run();
  ASSERT_EQ(f.received.size(), 1U);
}

TEST(TransportRace, DeathAfterDeliveryDoesNotRetractIt) {
  // Delivery at t=10, death at t=12: the handler already ran and the ack is
  // already in flight; both stand.
  RaceFixture f;
  bool acked = false;
  f.transport.send_expect_ack(0, 1, {"x"}, [&] { acked = true; }, nullptr);
  f.sim.schedule(12, [&] { f.transport.set_alive(1, false); });
  f.sim.run();
  EXPECT_EQ(f.received.size(), 1U);
  EXPECT_TRUE(acked);
}

// -- link-level reachability (partitions) -------------------------------------------

TEST(TransportLink, SeveredLinkSurfacesAsAckTimeoutNotLoss) {
  RaceFixture f;
  f.transport.set_link_filter([](std::uint32_t from, std::uint32_t to) {
    return !(from == 0 && to == 1);
  });
  bool acked = false;
  bool timed_out = false;
  f.transport.send_expect_ack(0, 1, {"x"}, [&] { acked = true; }, [&] { timed_out = true; });
  f.sim.run();
  EXPECT_TRUE(f.received.empty());
  EXPECT_FALSE(acked);
  EXPECT_TRUE(timed_out);  // silence, exactly like a dead peer
  EXPECT_EQ(f.transport.messages_lost(), 0U);  // not accounted as stochastic loss
  EXPECT_EQ(f.transport.messages_link_dropped(), 1U);
}

TEST(TransportLink, AsymmetricCutBlocksTheAckDirection) {
  // Only B->A is severed: the message reaches B (handler runs) but B's ack
  // cannot return, so the sender still observes silence. One-way
  // reachability is indistinguishable from a partition to the sender.
  RaceFixture f;
  f.transport.set_link_filter([](std::uint32_t from, std::uint32_t to) {
    return !(from == 1 && to == 0);
  });
  bool acked = false;
  bool timed_out = false;
  f.transport.send_expect_ack(0, 1, {"x"}, [&] { acked = true; }, [&] { timed_out = true; });
  f.sim.run();
  EXPECT_EQ(f.received.size(), 1U);  // delivered to B
  EXPECT_FALSE(acked);
  EXPECT_TRUE(timed_out);
  EXPECT_EQ(f.transport.messages_link_dropped(), 1U);  // the ack
}

TEST(TransportLink, FilterIsConsultedAtDeliveryTime) {
  // The link is cut at t=5 while the message (arrival t=10) is in flight:
  // it is dropped. A second message sent after the cut lifts (t=20) sails
  // through. Pinned: reachability is evaluated when the message lands, not
  // when it is sent.
  RaceFixture f;
  bool blocked = false;
  f.transport.set_link_filter(
      [&blocked](std::uint32_t, std::uint32_t) { return !blocked; });
  f.transport.post(0, 1, {"early"});
  f.sim.schedule(5, [&] { blocked = true; });
  f.sim.schedule(20, [&] {
    blocked = false;
    f.transport.post(0, 1, {"late"});
  });
  f.sim.run();
  ASSERT_EQ(f.received.size(), 1U);
  EXPECT_EQ(f.received[0], 1U);
  EXPECT_EQ(f.transport.messages_link_dropped(), 1U);
}

TEST(TransportRace, AckAlwaysBeatsTimeoutWhenDelivered) {
  // The config contract ack_timeout > 2 * latency_max exists precisely so a
  // delivered message's ack precedes its timeout; pin it across many sends
  // with randomized latencies.
  Fixture f;
  int acks = 0;
  int timeouts = 0;
  for (int i = 0; i < 200; ++i) {
    f.transport.send_expect_ack(0, 1 + static_cast<std::uint32_t>(i % 3), {"x"},
                                [&] { ++acks; }, [&] { ++timeouts; });
  }
  f.sim.run();
  EXPECT_EQ(acks, 200);
  EXPECT_EQ(timeouts, 0);
}

}  // namespace
}  // namespace hours::sim
