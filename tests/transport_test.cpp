// The event-simulation message transport: latency, acks, timeouts, loss,
// and dead-node suppression.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/transport.hpp"

namespace hours::sim {
namespace {

struct Payload {
  std::string text;
};

struct Fixture {
  Simulator sim;
  TransportConfig cfg;
  // 4 nodes, default timing.
  Transport<Payload> transport{sim, cfg, 4, /*seed=*/7};
  std::vector<std::pair<std::uint32_t, std::string>> received;

  Fixture() {
    transport.set_handler([this](std::uint32_t to, const Transport<Payload>::Envelope& env) {
      received.emplace_back(to, env.payload.text);
    });
  }
};

TEST(Transport, PostDeliversWithinLatencyBounds) {
  Fixture f;
  f.transport.post(0, 1, {"hello"});
  f.sim.run();
  ASSERT_EQ(f.received.size(), 1U);
  EXPECT_EQ(f.received[0].first, 1U);
  EXPECT_EQ(f.received[0].second, "hello");
  EXPECT_GE(f.sim.now(), f.cfg.latency_min);
  EXPECT_LE(f.sim.now(), f.cfg.latency_max);
}

TEST(Transport, DeadNodeReceivesNothing) {
  Fixture f;
  f.transport.set_alive(2, false);
  f.transport.post(0, 2, {"void"});
  f.sim.run();
  EXPECT_TRUE(f.received.empty());
}

TEST(Transport, AckFiresOnDelivery) {
  Fixture f;
  bool acked = false;
  bool timed_out = false;
  f.transport.send_expect_ack(0, 1, {"ping"}, [&] { acked = true; }, [&] { timed_out = true; });
  f.sim.run();
  EXPECT_TRUE(acked);
  EXPECT_FALSE(timed_out);
  ASSERT_EQ(f.received.size(), 1U);  // handler still runs at the receiver
}

TEST(Transport, TimeoutFiresForDeadTarget) {
  Fixture f;
  f.transport.set_alive(3, false);
  bool acked = false;
  bool timed_out = false;
  f.transport.send_expect_ack(0, 3, {"ping"}, [&] { acked = true; }, [&] { timed_out = true; });
  f.sim.run();
  EXPECT_FALSE(acked);
  EXPECT_TRUE(timed_out);
  EXPECT_GE(f.sim.now(), f.cfg.ack_timeout);
}

TEST(Transport, ExactlyOneOfAckOrTimeout) {
  Fixture f;
  int outcomes = 0;
  for (std::uint32_t to : {1U, 2U, 3U}) {
    f.transport.send_expect_ack(0, to, {"x"}, [&] { ++outcomes; }, [&] { ++outcomes; });
  }
  f.transport.set_alive(2, false);
  f.sim.run();
  EXPECT_EQ(outcomes, 3);
}

TEST(Transport, TotalLossAlwaysTimesOut) {
  Simulator sim;
  TransportConfig cfg;
  cfg.loss_probability = 0.95;
  Transport<Payload> transport{sim, cfg, 2, 7};
  transport.set_handler([](std::uint32_t, const Transport<Payload>::Envelope&) {});
  int timeouts = 0;
  int acks = 0;
  for (int i = 0; i < 100; ++i) {
    transport.send_expect_ack(0, 1, {"x"}, [&] { ++acks; }, [&] { ++timeouts; });
  }
  sim.run();
  EXPECT_EQ(acks + timeouts, 100);
  EXPECT_GT(timeouts, 80);  // ~0.95 + 0.05*0.95 of attempts lose msg or ack
  EXPECT_GT(transport.messages_lost(), 80U);
}

TEST(Transport, LossZeroLosesNothing) {
  Fixture f;
  for (int i = 0; i < 50; ++i) f.transport.post(0, 1, {"n"});
  f.sim.run();
  EXPECT_EQ(f.received.size(), 50U);
  EXPECT_EQ(f.transport.messages_lost(), 0U);
}

TEST(Transport, MessageCounterIncludesAcks) {
  Fixture f;
  f.transport.send_expect_ack(0, 1, {"ping"}, nullptr, nullptr);
  f.sim.run();
  EXPECT_EQ(f.transport.messages_sent(), 2U);  // message + ack
}

}  // namespace
}  // namespace hours::sim
