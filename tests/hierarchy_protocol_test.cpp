// Event-driven, message-level hierarchy forwarding: queries decided purely
// from local state (routing tables + ack-timeout suspicion), across
// multiple overlay levels, with message loss injection.
#include <gtest/gtest.h>

#include "sim/hierarchy_protocol.hpp"

namespace hours::sim {
namespace {

HierarchySimConfig make_config(std::vector<std::uint32_t> fanout, std::uint32_t k = 3) {
  HierarchySimConfig cfg;
  cfg.fanout = std::move(fanout);
  cfg.params.design = overlay::Design::kEnhanced;
  cfg.params.k = k;
  cfg.params.q = 3;
  return cfg;
}

TEST(HierarchyProtocol, TopologyLayout) {
  HierarchySimulation sim{make_config({4, 3})};
  EXPECT_EQ(sim.node_count(), 1U + 4U + 12U);
  EXPECT_EQ(sim.id_of({}), 0U);
  // Path <-> id round trip for every node.
  for (std::uint32_t id = 0; id < sim.node_count(); ++id) {
    EXPECT_EQ(sim.id_of(sim.path_of(id)), id);
  }
}

TEST(HierarchyProtocol, HealthyDeliveryExactHops) {
  HierarchySimulation sim{make_config({6, 4})};
  const auto outcome = sim.run_query({3, 2});
  ASSERT_TRUE(outcome.done);
  EXPECT_TRUE(outcome.delivered);
  EXPECT_EQ(outcome.hops, 2U);  // pure tree path
  EXPECT_EQ(outcome.timeouts, 0U);
}

TEST(HierarchyProtocol, SelfAndLevelOneDelivery) {
  HierarchySimulation sim{make_config({5})};
  EXPECT_TRUE(sim.run_query({}).delivered);
  const auto one = sim.run_query({4});
  EXPECT_TRUE(one.delivered);
  EXPECT_EQ(one.hops, 1U);
}

TEST(HierarchyProtocol, DetourAroundDeadAncestor) {
  HierarchySimulation sim{make_config({8, 6})};
  sim.kill({5});
  const auto outcome = sim.run_query({5, 3});
  ASSERT_TRUE(outcome.done);
  EXPECT_TRUE(outcome.delivered);
  EXPECT_GE(outcome.hops, 2U);      // detour can exit via a nephew straight to the leaf
  EXPECT_GE(outcome.timeouts, 1U);  // learned the death by silence
}

TEST(HierarchyProtocol, WholePathDeadStillDelivers) {
  HierarchySimulation sim{make_config({8, 8, 3})};
  sim.kill({5});
  sim.kill({5, 2});
  const auto outcome = sim.run_query({5, 2, 1});
  ASSERT_TRUE(outcome.done);
  EXPECT_TRUE(outcome.delivered);
}

TEST(HierarchyProtocol, DeadDestinationFails) {
  HierarchySimulation sim{make_config({4, 4})};
  sim.kill({1, 2});
  const auto outcome = sim.run_query({1, 2});
  ASSERT_TRUE(outcome.done);
  EXPECT_FALSE(outcome.delivered);
}

TEST(HierarchyProtocol, SuspicionIsLearnedAndReset) {
  HierarchySimulation sim{make_config({6, 4})};
  sim.kill({2});
  const auto first = sim.run_query({2, 1});
  ASSERT_TRUE(first.delivered);
  EXPECT_GE(first.timeouts, 1U);

  // Second query: the root already suspects the dead child; no new timeout
  // needed at that hop.
  const auto second = sim.run_query({2, 1});
  ASSERT_TRUE(second.delivered);
  EXPECT_LT(second.timeouts, first.timeouts + 1);

  // Revive: suspicion cleared, tree path works again.
  sim.revive({2});
  const auto third = sim.run_query({2, 1});
  ASSERT_TRUE(third.delivered);
  EXPECT_EQ(third.hops, 2U);
}

TEST(HierarchyProtocol, BootstrapFromSibling) {
  HierarchySimulation sim{make_config({8, 4})};
  sim.kill({});  // dead root
  const auto outcome = sim.run_query({5, 1}, /*start=*/{3});
  ASSERT_TRUE(outcome.done);
  EXPECT_TRUE(outcome.delivered);
}

TEST(HierarchyProtocol, ClimbFromUnrelatedStart) {
  HierarchySimulation sim{make_config({4, 4})};
  const auto outcome = sim.run_query({2, 2}, /*start=*/{1, 1});
  ASSERT_TRUE(outcome.done);
  EXPECT_TRUE(outcome.delivered);
  EXPECT_GE(outcome.hops, 3U);  // climb + descend
}

TEST(HierarchyProtocol, NeighborAttackCrossedByBackwardWalk) {
  // k = 3 keeps the no-surviving-exit probability ~1% (the event engine
  // uses one fixed seed per test).
  HierarchySimConfig cfg = make_config({24, 4}, /*k=*/3);
  HierarchySimulation sim{cfg};
  const ids::RingIndex target = 10;
  sim.kill({target});
  for (std::uint32_t s = 1; s <= 4; ++s) {
    sim.kill({ids::counter_clockwise_step(target, s, 24)});
  }
  const auto outcome = sim.run_query({target, 2});
  ASSERT_TRUE(outcome.done);
  EXPECT_TRUE(outcome.delivered);
}

TEST(HierarchyProtocol, UnrepairedRingLimitsBackwardReach) {
  HierarchySimConfig cfg = make_config({24, 4}, /*k=*/3);
  cfg.assume_ring_repaired = false;
  HierarchySimulation repaired_off{cfg};
  cfg.assume_ring_repaired = true;
  HierarchySimulation repaired_on{cfg};

  for (auto* sim : {&repaired_off, &repaired_on}) {
    const ids::RingIndex target = 10;
    sim->kill({target});
    for (std::uint32_t s = 1; s <= 6; ++s) {
      sim->kill({ids::counter_clockwise_step(target, s, 24)});
    }
  }
  const auto off = repaired_off.run_query({10, 2});
  const auto on = repaired_on.run_query({10, 2});
  EXPECT_TRUE(on.delivered);
  // Without repair the walk may dead-end; it must never beat the repaired
  // ring, and both must terminate.
  EXPECT_TRUE(off.done);
  EXPECT_LE(off.delivered, on.delivered);
}

TEST(HierarchyProtocol, SurvivesMessageLoss) {
  HierarchySimConfig cfg = make_config({8, 4});
  cfg.transport.loss_probability = 0.10;
  HierarchySimulation sim{cfg};
  sim.kill({3});
  int delivered = 0;
  for (int i = 0; i < 20; ++i) {
    const auto outcome = sim.run_query({3, static_cast<ids::RingIndex>(i % 4)});
    if (outcome.delivered) ++delivered;
  }
  // Lossy links cost timeouts, not correctness, in the vast majority of
  // runs (a lost ack can strand a candidate list, so allow a small miss).
  EXPECT_GE(delivered, 19);
}

TEST(HierarchyProtocol, MessagesAreCountedAndBounded) {
  HierarchySimulation sim{make_config({6, 4})};
  const auto before = sim.messages_sent();
  (void)sim.run_query({3, 2});
  const auto after = sim.messages_sent();
  EXPECT_GT(after, before);
  EXPECT_LT(after - before, 16U);  // 2 hops = 2 messages + 2 acks + injection overheads
}

TEST(HierarchyProtocol, StealthyDropperSwallowsQueries) {
  // Section 5.3: an insider acks (so no timeout betrays it) and drops the
  // query; the client never gets an answer, and — unlike a DoS — upstream
  // nodes learn nothing.
  HierarchySimulation sim{make_config({6, 4})};
  sim.set_behavior({3}, overlay::NodeBehavior::kDropper);
  const auto outcome = sim.run_query({3, 2});
  EXPECT_FALSE(outcome.done);       // the query simply vanished
  EXPECT_FALSE(outcome.delivered);

  // Other subtrees are untouched.
  EXPECT_TRUE(sim.run_query({4, 1}).delivered);
}

TEST(HierarchyProtocol, DropperOnlyHurtsRoutesThroughIt) {
  HierarchySimulation sim{make_config({8, 4, 2})};
  sim.set_behavior({2, 1}, overlay::NodeBehavior::kDropper);
  // Routed *through* the insider: swallowed.
  EXPECT_FALSE(sim.run_query({2, 1, 0}).done);
  // Addressed *to* the insider: it still answers (a compromised data holder
  // is outside HOURS' scope, Section 5.3).
  EXPECT_TRUE(sim.run_query({2, 1}).delivered);
  // Everything not behind it is unaffected.
  EXPECT_TRUE(sim.run_query({2, 0, 1}).delivered);
  EXPECT_TRUE(sim.run_query({5, 3, 0}).delivered);
}

TEST(HierarchyProtocol, MisrouterDelaysButHonestNodesRecover) {
  HierarchySimulation sim{make_config({16, 4}, /*k=*/5)};
  sim.kill({9});  // force overlay detours that may traverse the misrouter
  sim.set_behavior({8}, overlay::NodeBehavior::kMisrouter);
  int delivered = 0;
  for (int i = 0; i < 8; ++i) {
    const auto outcome = sim.run_query({9, static_cast<ids::RingIndex>(i % 4)});
    if (outcome.delivered) ++delivered;
  }
  // Mis-routing wastes hops; honest downstream nodes resume the algorithm.
  EXPECT_GE(delivered, 6);
}

// Property sweep: event engine delivery matches the oracle-based graph
// engine's guarantee (alive destinations under single-ancestor attacks are
// always reached) across shapes and k.
struct ProtoCase {
  std::uint32_t l1;
  std::uint32_t l2;
  std::uint32_t k;
};

class ProtocolSweep : public ::testing::TestWithParam<ProtoCase> {};

TEST_P(ProtocolSweep, DeliversThroughDeadAncestor) {
  const auto [l1, l2, k] = GetParam();
  HierarchySimulation sim{make_config({l1, l2}, k)};
  sim.kill({l1 / 2});
  for (ids::RingIndex leaf = 0; leaf < l2; ++leaf) {
    const auto outcome = sim.run_query({l1 / 2, leaf});
    ASSERT_TRUE(outcome.done);
    EXPECT_TRUE(outcome.delivered) << "l1=" << l1 << " l2=" << l2 << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ProtocolSweep,
                         ::testing::Values(ProtoCase{8, 4, 3}, ProtoCase{16, 8, 5},
                                           ProtoCase{32, 4, 2}, ProtoCase{5, 3, 1},
                                           ProtoCase{48, 6, 5}));

}  // namespace
}  // namespace hours::sim
