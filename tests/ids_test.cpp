#include <gtest/gtest.h>

#include "ids/identifier.hpp"
#include "ids/ring.hpp"

namespace hours::ids {
namespace {

TEST(Identifier, FromNameMatchesSha1Ordering) {
  const auto a = Identifier::from_name("alpha");
  const auto b = Identifier::from_name("alpha");
  const auto c = Identifier::from_name("beta");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Identifier, HexRoundTrip) {
  const auto id = Identifier::from_name("abc");
  // SHA-1("abc") is the RFC vector.
  EXPECT_EQ(id.to_hex(), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Identifier, ComparisonIsNumeric) {
  const auto small = Identifier::from_uint64(5);
  const auto large = Identifier::from_uint64(6);
  EXPECT_LT(small, large);
  EXPECT_GT(large, small);
  EXPECT_LE(small, small);
}

TEST(Identifier, ClockwiseDistanceWraps) {
  const auto a = Identifier::from_uint64(10);
  const auto b = Identifier::from_uint64(4);
  // a -> b wraps around the whole circle; the top 64 bits of the distance
  // are dominated by the wrap.
  EXPECT_GT(a.clockwise_distance_top64(b), 0U);
  // b -> a is a tiny forward step; top 64 bits are zero.
  EXPECT_EQ(b.clockwise_distance_top64(a), 0U);
}

TEST(Identifier, DistanceToSelfIsZero) {
  const auto a = Identifier::from_name("self");
  EXPECT_EQ(a.clockwise_distance_top64(a), 0U);
}

TEST(Ring, ClockwiseDistance) {
  EXPECT_EQ(clockwise_distance(2, 7, 10), 5U);
  EXPECT_EQ(clockwise_distance(7, 2, 10), 5U);
  EXPECT_EQ(clockwise_distance(9, 0, 10), 1U);
  EXPECT_EQ(clockwise_distance(4, 4, 10), 0U);
}

TEST(Ring, CounterClockwiseDistance) {
  EXPECT_EQ(counter_clockwise_distance(2, 7, 10), 5U);
  EXPECT_EQ(counter_clockwise_distance(0, 9, 10), 1U);
}

TEST(Ring, Steps) {
  EXPECT_EQ(clockwise_step(8, 3, 10), 1U);
  EXPECT_EQ(counter_clockwise_step(1, 3, 10), 8U);
  EXPECT_EQ(clockwise_step(0, 10, 10), 0U);
  EXPECT_EQ(counter_clockwise_step(0, 25, 10), 5U);
}

TEST(Ring, StepsAreInverse) {
  for (std::uint32_t i = 0; i < 10; ++i) {
    for (std::uint32_t s = 0; s < 30; ++s) {
      EXPECT_EQ(counter_clockwise_step(clockwise_step(i, s, 10), s, 10), i);
    }
  }
}

TEST(Ring, ClockwiseNotAfter) {
  EXPECT_TRUE(clockwise_not_after(0, 3, 5, 10));
  EXPECT_FALSE(clockwise_not_after(0, 5, 3, 10));
  EXPECT_TRUE(clockwise_not_after(8, 9, 2, 10));  // 9 comes before 2 from 8
}

}  // namespace
}  // namespace hours::ids
