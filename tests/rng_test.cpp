// Deterministic generators and the Algorithm-1 pointer samplers.
//
// The key property test: the O(k log N) jump sampler must be
// distribution-identical to the naive per-distance Bernoulli sampler. We
// check per-distance marginal frequencies with a z-score bound and the mean
// table size against the closed form k + k(H_{N-1} - H_k).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "analysis/resilience.hpp"
#include "rng/pointer_sampler.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256.hpp"

namespace hours::rng {
namespace {

TEST(Xoshiro, Deterministic) {
  Xoshiro256 a{123};
  Xoshiro256 b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, SeedsDiverge) {
  Xoshiro256 a{1};
  Xoshiro256 b{2};
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro, UniformInUnitInterval) {
  Xoshiro256 g{7};
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = g.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro, BelowIsInRangeAndRoughlyUniform) {
  Xoshiro256 g{11};
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) {
    const auto v = g.below(10);
    ASSERT_LT(v, 10U);
    counts[static_cast<std::size_t>(v)]++;
  }
  for (const int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(Mix64, StableAndSpreading) {
  EXPECT_EQ(mix64(1, 2), mix64(1, 2));
  EXPECT_NE(mix64(1, 2), mix64(2, 1));
  EXPECT_NE(mix64(0, 0), 0U);
}

TEST(PointerSampler, CertainPrefix) {
  Xoshiro256 g{5};
  for (const std::uint32_t k : {1U, 3U, 7U}) {
    const auto distances = sample_pointer_distances(1000, k, g);
    ASSERT_GE(distances.size(), k);
    for (std::uint32_t d = 1; d <= k; ++d) {
      EXPECT_EQ(distances[d - 1], d) << "k=" << k;
    }
    // Sorted and unique.
    for (std::size_t i = 1; i < distances.size(); ++i) {
      EXPECT_LT(distances[i - 1], distances[i]);
    }
  }
}

TEST(PointerSampler, TinyRings) {
  Xoshiro256 g{5};
  EXPECT_TRUE(sample_pointer_distances(1, 1, g).empty());
  const auto two = sample_pointer_distances(2, 1, g);
  ASSERT_EQ(two.size(), 1U);
  EXPECT_EQ(two[0], 1U);
  // k larger than the ring: every distance is certain.
  const auto all = sample_pointer_distances(5, 10, g);
  EXPECT_EQ(all, (std::vector<std::uint32_t>{1, 2, 3, 4}));
}

TEST(PointerSampler, MeanTableSizeMatchesClosedForm) {
  constexpr std::uint32_t kN = 2000;
  for (const std::uint32_t k : {1U, 5U}) {
    Xoshiro256 g{mix64(99, k)};
    double total = 0;
    constexpr int kTrials = 400;
    for (int t = 0; t < kTrials; ++t) {
      total += static_cast<double>(sample_pointer_distances(kN, k, g).size());
    }
    const double expected = analysis::expected_table_size(kN, k);
    const double mean = total / kTrials;
    // Std dev of the count is below sqrt(expected); 400 trials shrink the
    // standard error enough for a 3% relative band.
    EXPECT_NEAR(mean, expected, expected * 0.03) << "k=" << k;
  }
}

TEST(PointerSampler, JumpMatchesNaiveMarginals) {
  constexpr std::uint32_t kN = 300;
  constexpr std::uint32_t kK = 4;
  constexpr int kTrials = 3000;

  std::vector<int> jump_counts(kN, 0);
  std::vector<int> naive_counts(kN, 0);
  Xoshiro256 g1{42};
  Xoshiro256 g2{4242};
  for (int t = 0; t < kTrials; ++t) {
    for (const auto d : sample_pointer_distances(kN, kK, g1)) jump_counts[d]++;
    for (const auto d : sample_pointer_distances_naive(kN, kK, g2)) naive_counts[d]++;
  }

  // Compare each distance's empirical frequency with the analytic
  // probability using a normal-approximation bound (5 sigma, Bonferroni-safe
  // at this scale).
  for (std::uint32_t d = 1; d < kN; ++d) {
    const double p = std::min(1.0, static_cast<double>(kK) / d);
    const double sigma = std::sqrt(p * (1 - p) * kTrials);
    const double tolerance = 5.0 * sigma + 1.0;
    EXPECT_NEAR(jump_counts[d], p * kTrials, tolerance) << "jump sampler, d=" << d;
    EXPECT_NEAR(naive_counts[d], p * kTrials, tolerance) << "naive sampler, d=" << d;
  }
}

TEST(SampleDistinct, BasicProperties) {
  Xoshiro256 g{3};
  const auto sample = sample_distinct(100, 10, g);
  ASSERT_EQ(sample.size(), 10U);
  std::vector<std::uint32_t> sorted = sample;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 1; i < sorted.size(); ++i) EXPECT_NE(sorted[i - 1], sorted[i]);
  for (const auto v : sample) EXPECT_LT(v, 100U);
}

TEST(SampleDistinct, RequestExceedsPopulation) {
  Xoshiro256 g{3};
  const auto all = sample_distinct(5, 10, g);
  EXPECT_EQ(all, (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
}

TEST(SampleDistinct, UniformCoverage) {
  Xoshiro256 g{17};
  std::vector<int> counts(20, 0);
  for (int t = 0; t < 20000; ++t) {
    for (const auto v : sample_distinct(20, 3, g)) counts[v]++;
  }
  // Each element appears with probability 3/20.
  for (const int c : counts) EXPECT_NEAR(c, 3000, 300);
}

TEST(Xoshiro, StateRoundTripContinuesSequence) {
  Xoshiro256 original{0xFEEDULL};
  for (int i = 0; i < 1000; ++i) (void)original();  // advance into the stream
  const Xoshiro256::State saved = original.state();
  std::vector<std::uint64_t> expected;
  for (int i = 0; i < 256; ++i) expected.push_back(original());

  // A differently seeded generator, once set_state'd, continues the original
  // sequence bit-for-bit — the property every snapshot RNG field relies on.
  Xoshiro256 restored{0x0DDULL};
  restored.set_state(saved);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(restored(), expected[i]) << "diverged at draw " << i;
  }
}

TEST(Xoshiro, StateRoundTripPreservesDistributionHelpers) {
  Xoshiro256 original{42};
  (void)original.uniform();
  (void)original.below(17);
  Xoshiro256 restored{7};
  restored.set_state(original.state());
  EXPECT_EQ(restored.uniform(), original.uniform());
  EXPECT_EQ(restored.below(1000), original.below(1000));
  EXPECT_EQ(restored.bernoulli(0.5), original.bernoulli(0.5));
}

}  // namespace
}  // namespace hours::rng
