// Work-stealing executor stress suite — designed to run under the TSan CI
// job (every `unit`-labelled test does). Covers the contract corners the
// serving front-end and the sweep orchestrator lean on: external producers
// racing worker stealers, spawn-from-task, recursive fork/join via helping
// get(), exception propagation, and drain-on-destruction while busy.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "jobs/executor.hpp"
#include "jobs/rcu.hpp"
#include "jobs/sweep.hpp"
#include "jobs/work_deque.hpp"

namespace hours::jobs {
namespace {

TEST(WorkDeque, OwnerPushPopIsLifo) {
  WorkDeque<int> deque;
  int items[3] = {1, 2, 3};
  for (auto& item : items) deque.push(&item);
  EXPECT_EQ(deque.pop(), &items[2]);
  EXPECT_EQ(deque.pop(), &items[1]);
  EXPECT_EQ(deque.pop(), &items[0]);
  EXPECT_EQ(deque.pop(), nullptr);
}

TEST(WorkDeque, StealTakesOldestAndGrowthPreservesItems) {
  WorkDeque<int> deque{8};
  std::vector<int> items(100);
  for (auto& item : items) deque.push(&item);  // forces several growths
  EXPECT_EQ(deque.steal(), &items[0]);
  EXPECT_EQ(deque.steal(), &items[1]);
  EXPECT_EQ(deque.pop(), &items[99]);
  int seen = 0;
  while (deque.pop() != nullptr || deque.steal() != nullptr) ++seen;
  EXPECT_EQ(seen, 97);
}

TEST(WorkDeque, ProducersNeverLoseItemsToConcurrentThieves) {
  // One owner pushes/pops, 3 thieves steal: every pushed pointer must be
  // taken exactly once. Run enough items that growth and last-element
  // races both happen.
  constexpr int kItems = 20'000;
  WorkDeque<std::uint64_t> deque{8};
  std::vector<std::uint64_t> values(kItems);
  std::atomic<std::uint64_t> taken_sum{0};
  std::atomic<int> taken_count{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> thieves;
  for (int t = 0; t < 3; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        if (std::uint64_t* v = deque.steal()) {
          taken_sum.fetch_add(*v, std::memory_order_relaxed);
          taken_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::uint64_t expected_sum = 0;
  for (int i = 0; i < kItems; ++i) {
    values[static_cast<std::size_t>(i)] = static_cast<std::uint64_t>(i) + 1;
    expected_sum += static_cast<std::uint64_t>(i) + 1;
    deque.push(&values[static_cast<std::size_t>(i)]);
    if (i % 3 == 0) {
      if (std::uint64_t* v = deque.pop()) {
        taken_sum.fetch_add(*v, std::memory_order_relaxed);
        taken_count.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  // Owner drains what the thieves have not taken yet.
  for (;;) {
    std::uint64_t* v = deque.pop();
    if (v == nullptr) {
      if (taken_count.load(std::memory_order_acquire) == kItems) break;
      continue;  // a thief holds the last element or a race was lost — retry
    }
    taken_sum.fetch_add(*v, std::memory_order_relaxed);
    taken_count.fetch_add(1, std::memory_order_relaxed);
  }
  done.store(true, std::memory_order_release);
  for (auto& thief : thieves) thief.join();
  EXPECT_EQ(taken_count.load(), kItems);
  EXPECT_EQ(taken_sum.load(), expected_sum);
}

TEST(Executor, ExternalProducersAndWorkerStealers) {
  // N external producers × M workers hammering the injection queue and the
  // deques; every task must run exactly once.
  constexpr int kProducers = 8;
  constexpr int kTasksPerProducer = 500;
  Executor executor{4};
  std::atomic<int> ran{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&executor, &ran] {
      for (int i = 0; i < kTasksPerProducer; ++i) {
        auto unused = executor.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
        (void)unused;
      }
    });
  }
  for (auto& producer : producers) producer.join();
  executor.wait_idle();
  EXPECT_EQ(ran.load(), kProducers * kTasksPerProducer);
}

TEST(Executor, SpawnFromTaskRunsEntireTree) {
  // Tasks spawn subtasks (degree 3, depth 6) from inside workers; the
  // drain must count the whole tree: (3^7 - 1) / 2 = 1093.
  Executor executor{4};
  std::atomic<int> ran{0};
  std::function<void(int)> spawn = [&](int depth) {
    ran.fetch_add(1, std::memory_order_relaxed);
    if (depth == 0) return;
    for (int i = 0; i < 3; ++i) {
      auto unused = executor.submit([&spawn, depth] { spawn(depth - 1); });
      (void)unused;
    }
  };
  auto root = executor.submit([&spawn] { spawn(6) ; });
  root.get();
  executor.wait_idle();
  EXPECT_EQ(ran.load(), 1093);
}

int sequential_fib(int n) { return n < 2 ? n : sequential_fib(n - 1) + sequential_fib(n - 2); }

int parallel_fib(Executor& executor, int n) {
  if (n < 10) return sequential_fib(n);
  auto left = executor.submit([&executor, n] { return parallel_fib(executor, n - 1); });
  const int right = parallel_fib(executor, n - 2);
  return left.get() + right;  // get() on a worker helps instead of blocking
}

TEST(Executor, RecursiveForkJoinViaHelpingGet) {
  Executor executor{4};
  auto root = executor.submit([&executor] { return parallel_fib(executor, 20); });
  EXPECT_EQ(root.get(), 6765);
}

TEST(Executor, ExceptionPropagatesThroughGet) {
  Executor executor{2};
  auto failing = executor.submit([]() -> int { throw std::runtime_error{"task failed"}; });
  EXPECT_THROW(
      {
        try {
          (void)failing.get();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "task failed");
          throw;
        }
      },
      std::runtime_error);
  // The pool survives a throwing task.
  auto ok = executor.submit([] { return 7; });
  EXPECT_EQ(ok.get(), 7);
}

TEST(Executor, ExceptionFromSpawnedChildPropagatesToSweepCaller) {
  Executor executor{4};
  EXPECT_THROW(
      (void)sweep<int>(executor, 1, 16,
                       [](std::size_t index, rng::Xoshiro256&) -> int {
                         if (index == 11) throw std::runtime_error{"seed 11"};
                         return static_cast<int>(index);
                       }),
      std::runtime_error);
  executor.wait_idle();  // nothing dangling after the throw
}

TEST(Executor, ShutdownWhileBusyDrainsEverything) {
  std::atomic<int> ran{0};
  constexpr int kTasks = 200;
  {
    Executor executor{3};
    for (int i = 0; i < kTasks; ++i) {
      auto unused = executor.submit([&executor, &ran, i] {
        ran.fetch_add(1, std::memory_order_relaxed);
        if (i % 10 == 0) {
          // Children submitted while the destructor may already be waiting.
          auto child = executor.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
          (void)child;
        }
      });
      (void)unused;
    }
    // Destructor runs here with tasks still queued: it must drain, not drop.
  }
  EXPECT_EQ(ran.load(), kTasks + kTasks / 10);
}

TEST(Executor, WaitIdleFromWorkerHelps) {
  Executor executor{2};
  std::atomic<int> ran{0};
  auto root = executor.submit([&executor, &ran] {
    for (int i = 0; i < 50; ++i) {
      auto unused = executor.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      (void)unused;
    }
    executor.wait_idle();  // called on a worker: must help, not deadlock
    return ran.load(std::memory_order_acquire);
  });
  EXPECT_EQ(root.get(), 50);
}

TEST(Sweep, TaskRngIsAPureFunctionOfSeedAndIndex) {
  auto a = task_rng(42, 7);
  auto b = task_rng(42, 7);
  EXPECT_EQ(a(), b());
  auto c = task_rng(42, 8);
  auto d = task_rng(43, 7);
  auto fresh = task_rng(42, 7);
  const auto baseline = fresh();
  EXPECT_NE(c(), baseline);
  EXPECT_NE(d(), baseline);
}

TEST(Sweep, ResultsAreThreadCountInvariant) {
  const auto draw = [](std::size_t index, rng::Xoshiro256& rng) {
    return std::to_string(index) + ":" + std::to_string(rng());
  };
  Executor one{1};
  Executor four{4};
  const auto serial = sweep<std::string>(one, 99, 64, draw);
  const auto parallel = sweep<std::string>(four, 99, 64, draw);
  EXPECT_EQ(serial, parallel);
}

TEST(Rcu, ReadersPinRetiredObjectsUntilExit) {
  RcuDomain domain;
  bool freed = false;
  {
    RcuDomain::ReadGuard guard{domain};
    domain.retire([&freed] { freed = true; });
    domain.advance_and_reclaim();
    EXPECT_FALSE(freed);  // we are the announced reader holding the epoch
    EXPECT_EQ(domain.pending_reclaims(), 1U);
  }
  domain.retire([] {});
  domain.advance_and_reclaim();  // reader gone: both entries reclaimable
  EXPECT_TRUE(freed);
  EXPECT_EQ(domain.pending_reclaims(), 0U);
}

TEST(Rcu, ConcurrentReadersNeverSeeFreedMemory) {
  // Writer keeps swapping a published value and retiring the old one;
  // readers must always observe a live, internally consistent object.
  struct Boxed {
    explicit Boxed(std::uint64_t v) : a(v), b(~v) {}
    std::uint64_t a;
    std::uint64_t b;
  };
  RcuDomain domain;
  std::atomic<const Boxed*> live{new Boxed{0}};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        RcuDomain::ReadGuard guard{domain};
        const Boxed* boxed = live.load(std::memory_order_seq_cst);
        // The invariant b == ~a only holds for fully constructed, unfreed
        // objects; TSan/ASan catch lifetime violations, this catches tearing.
        ASSERT_EQ(boxed->b, ~boxed->a);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Keep swapping until the readers have demonstrably raced at least a few
  // hundred reads against the churn (on a loaded single-core box the first
  // 2000 swaps can finish before a reader is even scheduled).
  for (std::uint64_t i = 1; i <= 2'000 || reads.load(std::memory_order_relaxed) < 500; ++i) {
    const Boxed* old = live.load(std::memory_order_relaxed);
    live.store(new Boxed{i}, std::memory_order_seq_cst);
    domain.retire([old] { delete old; });
    domain.advance_and_reclaim();
  }
  stop.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();
  delete live.load(std::memory_order_relaxed);
  EXPECT_GT(reads.load(), 0U);
}

}  // namespace
}  // namespace hours::jobs
