// End-to-end scenarios across modules: paper-shaped hierarchies under
// coordinated attacks, delivery-ratio invariants, insider damage, and a
// chaos test interleaving kills, revives and queries.
#include <gtest/gtest.h>

#include "analysis/resilience.hpp"
#include "attack/attack.hpp"
#include "baseline/plain.hpp"
#include "hierarchy/router.hpp"
#include "hierarchy/synthetic.hpp"

namespace hours {
namespace {

using hierarchy::NodePath;
using hierarchy::Router;
using hierarchy::SyntheticHierarchy;
using hierarchy::SyntheticSpec;

overlay::OverlayParams params(std::uint32_t k, std::uint32_t q = 10) {
  overlay::OverlayParams p;
  p.design = overlay::Design::kEnhanced;
  p.k = k;
  p.q = q;
  return p;
}

TEST(Integration, HoursBeatsPlainUnderAncestorAttack) {
  SyntheticSpec spec;
  spec.fanout = {100, 20, 3};
  SyntheticHierarchy h{spec, params(5)};
  Router router{h};
  const NodePath dest{40, 7, 1};

  h.kill({40});

  EXPECT_FALSE(baseline::route_plain(h, dest).delivered);
  EXPECT_TRUE(router.route(dest).delivered);
}

TEST(Integration, DeliveryUnderModerateNeighborAttackIsPerfect) {
  SyntheticSpec spec;
  spec.fanout = {200, 50, 2};
  SyntheticHierarchy h{spec, params(5)};
  Router router{h};
  rng::Xoshiro256 rng{17};

  attack::HierarchyAttack plan;
  plan.target = {60};
  plan.strategy = attack::Strategy::kNeighbor;
  plan.sibling_count = 40;  // 20% of the overlay
  (void)attack::strike_hierarchy(h, plan, rng);

  int delivered = 0;
  constexpr int kQueries = 300;
  for (int i = 0; i < kQueries; ++i) {
    const NodePath dest{60, static_cast<ids::RingIndex>(i % 50),
                        static_cast<ids::RingIndex>(i % 2)};
    if (router.route(dest).delivered) ++delivered;
  }
  EXPECT_EQ(delivered, kQueries);
}

TEST(Integration, MonteCarloDeliveryTracksEquationTwo) {
  // Single-overlay delivery probability vs the Eq.(2) closed form, at one
  // operating point (N=200, k=5, alpha=0.85 — deep into the degraded zone).
  constexpr std::uint32_t kN = 200;
  constexpr std::uint32_t kK = 5;
  constexpr std::uint32_t kAttacked = 170;

  int exits = 0;
  constexpr int kTrials = 400;
  for (int t = 0; t < kTrials; ++t) {
    overlay::OverlayParams p = params(kK, 4);
    p.seed = 1000 + static_cast<std::uint64_t>(t);
    overlay::Overlay ov{kN, p, overlay::TableStorage::kEager,
                        [](ids::RingIndex) { return 10U; }};
    const ids::RingIndex od = 50;
    ov.kill(od);
    attack::strike(ov, attack::plan_neighbor(kN, od, kAttacked));

    const auto entrance = ov.nearest_alive_ccw(od);
    ASSERT_TRUE(entrance.has_value());
    const auto res = ov.forward(*entrance, od);
    if (res.kind == overlay::ExitKind::kNephewExit) ++exits;
  }

  const double measured = static_cast<double>(exits) / kTrials;
  const double predicted = analysis::delivery_neighbor_attack(kN, kK, 170.0 / 200.0);
  EXPECT_NEAR(measured, predicted, 0.08);
}

TEST(Integration, InsiderDropperDamageMatchesTheoremFive) {
  // A compromised node at index distance d counter-clockwise of the victim
  // drops queries; accessibility falls by ~1/(d+1) (Theorem 5) because the
  // dropper intercepts exactly the greedy traffic that lands on it.
  constexpr std::uint32_t kN = 100;
  const ids::RingIndex victim = 70;
  const std::uint32_t d = 4;

  int delivered = 0;
  int total = 0;
  constexpr int kSeeds = 60;
  for (int s = 0; s < kSeeds; ++s) {
    overlay::OverlayParams p = params(1, 2);  // base-like randomness, k=1
    p.design = overlay::Design::kEnhanced;
    p.seed = 7000 + static_cast<std::uint64_t>(s);
    overlay::Overlay ov{kN, p};
    ov.set_behavior(ids::counter_clockwise_step(victim, d, kN),
                    overlay::NodeBehavior::kDropper);
    for (ids::RingIndex from = 0; from < kN; from += 3) {
      const auto res = ov.forward(from, victim);
      ++total;
      if (res.kind == overlay::ExitKind::kArrivedAtOd) ++delivered;
    }
  }
  const double ratio = static_cast<double>(delivered) / total;
  const double predicted = 1.0 - analysis::theorem5_damage(d);
  EXPECT_NEAR(ratio, predicted, 0.08);
}

TEST(Integration, ChaosKillsRevivesAndQueries) {
  SyntheticSpec spec;
  spec.fanout = {64, 16, 2};
  SyntheticHierarchy h{spec, params(5, 4)};
  Router router{h};
  rng::Xoshiro256 rng{99};

  std::vector<NodePath> killed;
  int failures_with_alive_path = 0;
  for (int step = 0; step < 500; ++step) {
    const auto action = rng.below(10);
    if (action < 3) {
      const NodePath victim{static_cast<ids::RingIndex>(rng.below(64))};
      h.kill(victim);
      killed.push_back(victim);
    } else if (action < 5 && !killed.empty()) {
      const auto i = rng.below(killed.size());
      h.revive(killed[i]);
      killed.erase(killed.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      const NodePath dest{static_cast<ids::RingIndex>(rng.below(64)),
                          static_cast<ids::RingIndex>(rng.below(16)),
                          static_cast<ids::RingIndex>(rng.below(2))};
      const auto out = router.route(dest);
      if (!h.node_alive(dest)) {
        EXPECT_FALSE(out.delivered);
      } else if (!out.delivered) {
        // With k=5 and scattered level-1 kills, failures should be
        // essentially nonexistent.
        ++failures_with_alive_path;
      }
    }
  }
  EXPECT_LE(failures_with_alive_path, 1);
}

TEST(Integration, GracefulDegradationCurve) {
  // Delivery ratio must fall monotonically (within noise) and hops must rise
  // as the neighbor attack widens — the paper's graceful-degradation claim.
  SyntheticSpec spec;
  spec.fanout = {300, 20};
  SyntheticHierarchy h{spec, params(5, 10)};
  Router router{h};
  rng::Xoshiro256 rng{5};

  double previous_hops = 0.0;
  for (const std::uint32_t attacked : {0U, 60U, 150U}) {
    attack::HierarchyAttack plan;
    plan.target = {100};
    plan.strategy = attack::Strategy::kNeighbor;
    plan.sibling_count = attacked;
    const auto victims = attack::strike_hierarchy(h, plan, rng);

    std::uint64_t hops = 0;
    int delivered = 0;
    constexpr int kQueries = 200;
    for (int i = 0; i < kQueries; ++i) {
      const NodePath dest{100, static_cast<ids::RingIndex>(i % 20)};
      const auto out = router.route(dest);
      if (out.delivered) {
        ++delivered;
        hops += out.hops;
      }
    }
    ASSERT_GT(delivered, 0);
    const double mean_hops = static_cast<double>(hops) / delivered;
    EXPECT_GE(mean_hops + 0.5, previous_hops) << attacked;  // non-decreasing within noise
    previous_hops = mean_hops;
    EXPECT_EQ(delivered, kQueries) << "delivery must hold at alpha <= 0.5";

    attack::lift_hierarchy(h, plan, victims);
  }
}

}  // namespace
}  // namespace hours
