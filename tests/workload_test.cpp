#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "workload/workload.hpp"

namespace hours::workload {
namespace {

TEST(UniformSampler, InRangeAndFlat) {
  UniformSampler s{10, 42};
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50'000; ++i) {
    const auto v = s.next();
    ASSERT_LT(v, 10U);
    counts[v]++;
  }
  for (const int c : counts) EXPECT_NEAR(c, 5000, 350);
}

TEST(UniformSampler, SingletonUniverse) {
  UniformSampler s{1, 42};
  EXPECT_EQ(s.next(), 0U);
  EXPECT_EQ(s.universe(), 1U);
}

TEST(ZipfSampler, ZeroExponentIsUniform) {
  ZipfSampler s{20, 0.0, 7};
  std::vector<int> counts(20, 0);
  for (int i = 0; i < 40'000; ++i) counts[s.next()]++;
  for (const int c : counts) EXPECT_NEAR(c, 2000, 250);
}

TEST(ZipfSampler, HeadDominatesAtHighExponent) {
  ZipfSampler s{1000, 1.2, 7};
  int head = 0;
  constexpr int kDraws = 20'000;
  for (int i = 0; i < kDraws; ++i) {
    if (s.next() < 10) ++head;
  }
  // With s = 1.2 over 1000 items, the top-10 mass is > 55%.
  EXPECT_GT(static_cast<double>(head) / kDraws, 0.5);
}

TEST(ZipfSampler, RankFrequenciesMatchTheLaw) {
  constexpr double kS = 1.0;
  ZipfSampler s{100, kS, 11};
  std::vector<int> counts(100, 0);
  constexpr int kDraws = 200'000;
  for (int i = 0; i < kDraws; ++i) counts[s.next()]++;
  // Normalization constant.
  double z = 0;
  for (int i = 1; i <= 100; ++i) z += 1.0 / i;
  for (const int rank : {1, 2, 5, 10, 50}) {
    const double expected = kDraws / (rank * z);
    EXPECT_NEAR(counts[rank - 1], expected, expected * 0.1 + 30) << "rank " << rank;
  }
}

TEST(ZipfSampler, Deterministic) {
  ZipfSampler a{50, 0.8, 99};
  ZipfSampler b{50, 0.8, 99};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(HotspotSampler, HotFractionRespected) {
  HotspotSampler s{100, 42, 0.7, 3};
  int hot = 0;
  constexpr int kDraws = 30'000;
  for (int i = 0; i < kDraws; ++i) {
    if (s.next() == 42) ++hot;
  }
  // 0.7 direct + 0.3 * (1/100) background.
  EXPECT_NEAR(static_cast<double>(hot) / kDraws, 0.703, 0.02);
}

TEST(HotspotSampler, ZeroFractionIsUniform) {
  HotspotSampler s{10, 0, 0.0, 3};
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20'000; ++i) counts[s.next()]++;
  for (const int c : counts) EXPECT_NEAR(c, 2000, 250);
}

}  // namespace
}  // namespace hours::workload
