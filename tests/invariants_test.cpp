// Randomized invariant checks ("fuzz-lite"): hundreds of random
// hierarchy/attack/query scenarios, each validated against properties that
// must hold for *every* execution, independent of the random draw:
//
//   I1  delivered  =>  the destination is alive
//   I2  failure codes classify correctly (kDead iff destination dead)
//   I3  recorded paths are contiguous (each hop moves to a parent, child,
//       sibling, or nephew) and end at the destination
//   I4  hop counters are consistent (total = hierarchical + overlay +
//       inter-overlay; path length = hops + 1)
//   I5  reviving everything restores pure tree-path routing
#include <gtest/gtest.h>

#include "attack/attack.hpp"
#include "hierarchy/router.hpp"
#include "hierarchy/synthetic.hpp"

namespace hours {
namespace {

using hierarchy::NodePath;

bool adjacent(const NodePath& a, const NodePath& b) {
  // parent <-> child
  if (a.size() + 1 == b.size() && hierarchy::is_prefix(a, b)) return true;
  if (b.size() + 1 == a.size() && hierarchy::is_prefix(b, a)) return true;
  // siblings
  if (a.size() == b.size() && !a.empty() &&
      hierarchy::parent(a) == hierarchy::parent(b)) {
    return true;
  }
  // uncle -> nephew (inter-overlay hop): a and parent(b) are siblings
  if (a.size() + 1 == b.size() && !a.empty() &&
      hierarchy::parent(a) == hierarchy::parent(hierarchy::parent(b))) {
    return true;
  }
  return false;
}

struct Scenario {
  std::uint64_t seed;
};

class RandomScenarios : public ::testing::TestWithParam<Scenario> {};

TEST_P(RandomScenarios, InvariantsHold) {
  rng::Xoshiro256 rng{GetParam().seed};

  hierarchy::SyntheticSpec spec;
  spec.fanout = {static_cast<std::uint32_t>(8 + rng.below(56)),
                 static_cast<std::uint32_t>(4 + rng.below(12)),
                 static_cast<std::uint32_t>(1 + rng.below(3))};
  overlay::OverlayParams params;
  params.design = overlay::Design::kEnhanced;
  params.k = static_cast<std::uint32_t>(1 + rng.below(8));
  params.q = static_cast<std::uint32_t>(1 + rng.below(6));
  params.seed = rng();

  hierarchy::SyntheticHierarchy h{spec, params};
  hierarchy::Router router{h, rng()};

  // Random attack on a random level-1 node and some of its siblings.
  attack::HierarchyAttack plan;
  plan.target = {static_cast<ids::RingIndex>(rng.below(spec.fanout[0]))};
  plan.strategy = rng.bernoulli(0.5) ? attack::Strategy::kNeighbor : attack::Strategy::kRandom;
  plan.sibling_count = static_cast<std::uint32_t>(rng.below(spec.fanout[0] / 2));
  plan.include_target = rng.bernoulli(0.8);
  (void)attack::strike_hierarchy(h, plan, rng);

  // Also kill a few random level-2 nodes under the target.
  auto& target_overlay = h.overlay_of(plan.target);
  for (int j = 0; j < 3; ++j) {
    target_overlay.kill(static_cast<ids::RingIndex>(rng.below(target_overlay.size())));
  }

  hierarchy::RouteOptions opts;
  opts.record_path = true;

  for (int q = 0; q < 30; ++q) {
    const NodePath dest{static_cast<ids::RingIndex>(rng.below(spec.fanout[0])),
                        static_cast<ids::RingIndex>(rng.below(spec.fanout[1])),
                        static_cast<ids::RingIndex>(rng.below(spec.fanout[2]))};
    const auto out = router.route(dest, opts);
    const bool dest_alive = h.node_alive(dest);

    if (out.delivered) {
      ASSERT_TRUE(dest_alive) << "I1: delivered to a dead node";  // I1
      // I4: counters are consistent.
      EXPECT_EQ(out.hops,
                out.hierarchical_hops + out.overlay_hops + out.inter_overlay_hops);
      ASSERT_FALSE(out.path.empty());
      EXPECT_EQ(out.path.size(), out.hops + 1U);
      EXPECT_EQ(out.path.back(), dest);
      // I3: contiguity.
      for (std::size_t i = 1; i < out.path.size(); ++i) {
        ASSERT_TRUE(adjacent(out.path[i - 1], out.path[i]))
            << "I3: jump from " << hierarchy::to_string(out.path[i - 1]) << " to "
            << hierarchy::to_string(out.path[i]);
      }
    } else {
      // I2: classification.
      if (!dest_alive) {
        EXPECT_EQ(out.failure, util::Error::Code::kDead);
      } else {
        EXPECT_NE(out.failure, util::Error::Code::kDead);
      }
    }
  }

  // I5: heal everything; tree-path routing returns.
  h.overlay_of({}).revive_all();
  target_overlay.revive_all();
  const NodePath probe{plan.target[0], 0, 0};
  const auto healed = router.route(probe);
  ASSERT_TRUE(healed.delivered);
  EXPECT_EQ(healed.hops, 3U);
  EXPECT_EQ(healed.overlay_hops, 0U);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomScenarios,
                         ::testing::Values(Scenario{1}, Scenario{2}, Scenario{3}, Scenario{4},
                                           Scenario{5}, Scenario{6}, Scenario{7}, Scenario{8},
                                           Scenario{9}, Scenario{10}, Scenario{11},
                                           Scenario{12}));

}  // namespace
}  // namespace hours
