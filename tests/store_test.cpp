#include <gtest/gtest.h>

#include "store/record_store.hpp"

namespace hours::store {
namespace {

naming::Name name(std::string_view text) { return naming::Name::parse(text).value(); }

TEST(RecordStore, AddAndFetch) {
  RecordStore store;
  store.add(name("www.example.com"), {"A", "192.0.2.1", 300});
  store.add(name("www.example.com"), {"A", "192.0.2.2", 300});
  store.add(name("www.example.com"), {"TXT", "hello", 60});

  EXPECT_EQ(store.records_at(name("www.example.com")).size(), 3U);
  EXPECT_EQ(store.records_at(name("www.example.com"), "A").size(), 2U);
  EXPECT_EQ(store.records_at(name("www.example.com"), "MX").size(), 0U);
  EXPECT_EQ(store.total_records(), 3U);
}

TEST(RecordStore, MissingNameIsEmpty) {
  RecordStore store;
  EXPECT_TRUE(store.records_at(name("ghost")).empty());
}

TEST(RecordStore, RemoveByType) {
  RecordStore store;
  store.add(name("x.y"), {"A", "1.2.3.4", 300});
  store.add(name("x.y"), {"A", "5.6.7.8", 300});
  store.add(name("x.y"), {"CERT", "...", 300});

  EXPECT_EQ(store.remove(name("x.y"), "A"), 2U);
  EXPECT_EQ(store.total_records(), 1U);
  EXPECT_EQ(store.records_at(name("x.y")).size(), 1U);
  EXPECT_EQ(store.remove(name("x.y"), "A"), 0U);
  EXPECT_EQ(store.remove(name("nope"), "A"), 0U);
}

TEST(RecordStore, RemovingLastRecordDropsName) {
  RecordStore store;
  store.add(name("a.b"), {"A", "v", 1});
  EXPECT_EQ(store.remove(name("a.b"), "A"), 1U);
  EXPECT_TRUE(store.records_at(name("a.b")).empty());
  EXPECT_EQ(store.total_records(), 0U);
}

TEST(RecordStore, DistinctNamesAreIsolated) {
  RecordStore store;
  store.add(name("a.z"), {"A", "1", 1});
  store.add(name("b.z"), {"A", "2", 1});
  EXPECT_EQ(store.records_at(name("a.z"))[0].value, "1");
  EXPECT_EQ(store.records_at(name("b.z"))[0].value, "2");
}

}  // namespace
}  // namespace hours::store
