#include <gtest/gtest.h>

#include "hierarchy/synthetic.hpp"

namespace hours::hierarchy {
namespace {

overlay::OverlayParams params(std::uint32_t k = 5) {
  overlay::OverlayParams p;
  p.k = k;
  p.q = 4;
  return p;
}

TEST(NodePathHelpers, Basics) {
  const NodePath p{3, 7, 1};
  EXPECT_EQ(level(p), 3U);
  EXPECT_EQ(parent(p), (NodePath{3, 7}));
  EXPECT_EQ(child(p, 9), (NodePath{3, 7, 1, 9}));
  EXPECT_EQ(ancestor_at(p, 0), NodePath{});
  EXPECT_EQ(ancestor_at(p, 2), (NodePath{3, 7}));
  EXPECT_TRUE(is_prefix({3, 7}, p));
  EXPECT_TRUE(is_prefix(p, p));
  EXPECT_FALSE(is_prefix({3, 8}, p));
  EXPECT_FALSE(is_prefix({3, 7, 1, 0}, p));
  EXPECT_EQ(to_string(p), "/3/7/1");
  EXPECT_EQ(to_string({}), "/");
}

TEST(SyntheticSpec, NodeCount) {
  SyntheticSpec spec;
  spec.fanout = {3, 2};
  EXPECT_EQ(spec.approx_node_count(), 1U + 3U + 6U);
}

TEST(SyntheticHierarchy, FanoutAndOverrides) {
  SyntheticSpec spec;
  spec.fanout = {10, 5, 2};
  spec.fanout_overrides[{4}] = 50;

  SyntheticHierarchy h{spec, params()};
  EXPECT_EQ(h.child_count({}), 10U);
  EXPECT_EQ(h.child_count({0}), 5U);
  EXPECT_EQ(h.child_count({4}), 50U);       // overridden
  EXPECT_EQ(h.child_count({0, 1}), 2U);
  EXPECT_EQ(h.child_count({0, 1, 0}), 0U);  // leaf
  EXPECT_EQ(h.depth(), 3U);
}

TEST(SyntheticHierarchy, OverlaysMaterializeLazily) {
  SyntheticSpec spec;
  spec.fanout = {100, 100, 3};
  SyntheticHierarchy h{spec, params()};
  EXPECT_EQ(h.materialized_overlays(), 0U);
  (void)h.overlay_of({});
  EXPECT_EQ(h.materialized_overlays(), 1U);
  (void)h.overlay_of({7});
  (void)h.overlay_of({7});  // cached
  EXPECT_EQ(h.materialized_overlays(), 2U);
}

TEST(SyntheticHierarchy, OverlaySizesMatchFanout) {
  SyntheticSpec spec;
  spec.fanout = {10, 4};
  spec.fanout_overrides[{2}] = 17;
  SyntheticHierarchy h{spec, params()};
  EXPECT_EQ(h.overlay_of({}).size(), 10U);
  EXPECT_EQ(h.overlay_of({0}).size(), 4U);
  EXPECT_EQ(h.overlay_of({2}).size(), 17U);
}

TEST(SyntheticHierarchy, DistinctOverlaysGetDistinctSeeds) {
  SyntheticSpec spec;
  spec.fanout = {4, 50};
  SyntheticHierarchy h{spec, params()};
  const auto& t0 = h.overlay_of({0}).table(0);
  const auto& entries0 = t0.entries();
  std::vector<ids::RingIndex> siblings0;
  for (const auto& e : entries0) siblings0.push_back(e.sibling);

  const auto& t1 = h.overlay_of({1}).table(0);
  std::vector<ids::RingIndex> siblings1;
  for (const auto& e : t1.entries()) siblings1.push_back(e.sibling);
  EXPECT_NE(siblings0, siblings1);
}

TEST(SyntheticHierarchy, NephewsRespectChildOverlaySizes) {
  SyntheticSpec spec;
  spec.fanout = {6, 9};
  SyntheticHierarchy h{spec, params()};
  const auto& ov = h.overlay_of({});
  for (ids::RingIndex i = 0; i < ov.size(); ++i) {
    for (const auto& entry : ov.table(i).entries()) {
      for (const auto n : entry.nephews) EXPECT_LT(n, 9U);
    }
  }
}

TEST(SyntheticHierarchy, LivenessThroughModelInterface) {
  SyntheticSpec spec;
  spec.fanout = {5, 5};
  SyntheticHierarchy h{spec, params()};

  EXPECT_TRUE(h.node_alive({2, 3}));
  h.kill({2, 3});
  EXPECT_FALSE(h.node_alive({2, 3}));
  EXPECT_TRUE(h.node_alive({2}));
  h.revive({2, 3});
  EXPECT_TRUE(h.node_alive({2, 3}));

  EXPECT_TRUE(h.root_alive());
  h.kill({});
  EXPECT_FALSE(h.root_alive());
  h.revive({});
  EXPECT_TRUE(h.root_alive());
}

TEST(SyntheticHierarchy, HugeOverlayUsesLazyTables) {
  SyntheticSpec spec;
  spec.fanout = {30'000};
  spec.eager_table_limit = 1000;
  SyntheticHierarchy h{spec, params()};
  auto& ov = h.overlay_of({});
  EXPECT_EQ(ov.size(), 30'000U);
  // Lazy tables still answer forwarding queries.
  const auto res = ov.forward(5, 29'000);
  EXPECT_EQ(res.kind, overlay::ExitKind::kArrivedAtOd);
}

}  // namespace
}  // namespace hours::hierarchy
