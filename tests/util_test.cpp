#include <gtest/gtest.h>

#include "util/status.hpp"
#include "util/strings.hpp"

namespace hours::util {
namespace {

TEST(Strings, SplitBasic) {
  const auto parts = split("a.b.c", '.');
  ASSERT_EQ(parts.size(), 3U);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a..c", '.');
  ASSERT_EQ(parts.size(), 3U);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, SplitSingleField) {
  const auto parts = split("alone", '.');
  ASSERT_EQ(parts.size(), 1U);
  EXPECT_EQ(parts[0], "alone");
}

TEST(Strings, SplitEmptyInput) {
  const auto parts = split("", '.');
  ASSERT_EQ(parts.size(), 1U);
  EXPECT_EQ(parts[0], "");
}

TEST(Strings, JoinInvertsSplit) {
  const std::vector<std::string> parts{"www", "cs", "ucla"};
  EXPECT_EQ(join(parts, '.'), "www.cs.ucla");
  EXPECT_EQ(split(join(parts, '.'), '.'), parts);
}

TEST(Strings, JoinEmpty) { EXPECT_EQ(join({}, '.'), ""); }

TEST(Strings, ToLower) { EXPECT_EQ(to_lower("MiXeD.Case"), "mixed.case"); }

TEST(Strings, HexEncode) {
  const unsigned char bytes[] = {0x00, 0xde, 0xad, 0xbe, 0xef, 0xff};
  EXPECT_EQ(hex_encode(bytes, sizeof(bytes)), "00deadbeefff");
}

TEST(Result, HoldsValue) {
  Result<int> r{42};
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(Result, HoldsError) {
  Result<int> r{Error{Error::Code::kNotFound, "missing"}};
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Error::Code::kNotFound);
  EXPECT_EQ(r.error().message, "missing");
}

TEST(Result, MoveOutValue) {
  Result<std::string> r{std::string{"payload"}};
  const std::string taken = std::move(r).value();
  EXPECT_EQ(taken, "payload");
}

TEST(Result, ErrorCodeNames) {
  EXPECT_STREQ(to_string(Error::Code::kUnreachable), "unreachable");
  EXPECT_STREQ(to_string(Error::Code::kDropped), "dropped");
  EXPECT_STREQ(to_string(Error::Code::kDead), "dead");
  EXPECT_STREQ(to_string(Error::Code::kHopLimit), "hop_limit");
}

}  // namespace
}  // namespace hours::util
