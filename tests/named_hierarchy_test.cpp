#include <gtest/gtest.h>

#include <algorithm>

#include "hierarchy/named.hpp"
#include "ids/identifier.hpp"

namespace hours::hierarchy {
namespace {

overlay::OverlayParams params() {
  overlay::OverlayParams p;
  p.k = 3;
  p.q = 2;
  return p;
}

naming::Name name(std::string_view text) { return naming::Name::parse(text).value(); }

TEST(NamedHierarchy, AdmissionRequiresParent) {
  NamedHierarchy h{params()};
  EXPECT_FALSE(h.admit(name("www.cs.ucla")).ok());  // ucla not admitted yet
  EXPECT_TRUE(h.admit(name("ucla")).ok());
  EXPECT_TRUE(h.admit(name("cs.ucla")).ok());
  EXPECT_TRUE(h.admit(name("www.cs.ucla")).ok());
  EXPECT_EQ(h.node_count(), 3U);
}

TEST(NamedHierarchy, RejectsDuplicatesAndRoot) {
  NamedHierarchy h{params()};
  EXPECT_TRUE(h.admit(name("zone")).ok());
  EXPECT_FALSE(h.admit(name("zone")).ok());
  EXPECT_FALSE(h.admit(naming::Name{}).ok());
}

TEST(NamedHierarchy, IndicesFollowSha1Order) {
  NamedHierarchy h{params()};
  const std::vector<std::string> labels{"alpha", "beta", "gamma", "delta", "epsilon"};
  for (const auto& l : labels) ASSERT_TRUE(h.admit(name(l)).ok());

  // Expected ring order: children sorted by SHA-1 of their full names.
  std::vector<std::pair<ids::Identifier, std::string>> expected;
  for (const auto& l : labels) {
    expected.emplace_back(ids::Identifier::from_name(l), l);
  }
  std::sort(expected.begin(), expected.end());

  for (std::uint32_t i = 0; i < expected.size(); ++i) {
    const auto resolved = h.resolve(name(expected[i].second));
    ASSERT_TRUE(resolved.ok());
    EXPECT_EQ(resolved.value(), (NodePath{i})) << expected[i].second;
  }
}

TEST(NamedHierarchy, ResolveAndNameOfAreInverse) {
  NamedHierarchy h{params()};
  ASSERT_TRUE(h.admit(name("top")).ok());
  ASSERT_TRUE(h.admit(name("a.top")).ok());
  ASSERT_TRUE(h.admit(name("b.top")).ok());
  ASSERT_TRUE(h.admit(name("x.a.top")).ok());

  for (const char* text : {"top", "a.top", "b.top", "x.a.top"}) {
    const auto path = h.resolve(name(text));
    ASSERT_TRUE(path.ok()) << text;
    const auto back = h.name_of(path.value());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value().to_string(), text);
  }
  EXPECT_FALSE(h.resolve(name("missing.top")).ok());
  EXPECT_FALSE(h.name_of({9, 9}).ok());
}

TEST(NamedHierarchy, LivenessByName) {
  NamedHierarchy h{params()};
  ASSERT_TRUE(h.admit(name("zone")).ok());
  ASSERT_TRUE(h.admit(name("srv.zone")).ok());

  EXPECT_TRUE(h.is_alive(name("srv.zone")).value());
  ASSERT_TRUE(h.set_alive(name("srv.zone"), false).ok());
  EXPECT_FALSE(h.is_alive(name("srv.zone")).value());

  // Mirrored into the overlay liveness used by the router.
  const auto path = h.resolve(name("srv.zone")).value();
  EXPECT_FALSE(h.overlay_of(parent(path)).alive(path.back()));

  ASSERT_TRUE(h.set_alive(name("srv.zone"), true).ok());
  EXPECT_TRUE(h.overlay_of(parent(path)).alive(path.back()));
  EXPECT_FALSE(h.set_alive(name("ghost.zone"), false).ok());
}

TEST(NamedHierarchy, DeadNodeStaysMemberAcrossRefresh) {
  NamedHierarchy h{params()};
  ASSERT_TRUE(h.admit(name("zone")).ok());
  for (const char* l : {"a", "b", "c", "d"}) {
    ASSERT_TRUE(h.admit(name(std::string{l} + ".zone")).ok());
  }
  ASSERT_TRUE(h.set_alive(name("b.zone"), false).ok());

  // A membership change forces an overlay rebuild; the DoS'd node must stay
  // a dead member (failures are not leaves).
  ASSERT_TRUE(h.admit(name("e.zone")).ok());
  const auto path = h.resolve(name("b.zone")).value();
  EXPECT_FALSE(h.overlay_of(parent(path)).alive(path.back()));
  EXPECT_EQ(h.overlay_of(parent(path)).size(), 5U);
}

TEST(NamedHierarchy, RemoveSubtree) {
  NamedHierarchy h{params()};
  ASSERT_TRUE(h.admit(name("zone")).ok());
  ASSERT_TRUE(h.admit(name("a.zone")).ok());
  ASSERT_TRUE(h.admit(name("x.a.zone")).ok());
  ASSERT_TRUE(h.admit(name("y.a.zone")).ok());
  EXPECT_EQ(h.node_count(), 4U);

  ASSERT_TRUE(h.remove(name("a.zone")).ok());
  EXPECT_EQ(h.node_count(), 1U);
  EXPECT_FALSE(h.resolve(name("a.zone")).ok());
  EXPECT_FALSE(h.resolve(name("x.a.zone")).ok());
  EXPECT_FALSE(h.remove(name("a.zone")).ok());
  EXPECT_FALSE(h.remove(naming::Name{}).ok());
}

TEST(NamedHierarchy, ChildCountThroughModel) {
  NamedHierarchy h{params()};
  ASSERT_TRUE(h.admit(name("zone")).ok());
  ASSERT_TRUE(h.admit(name("a.zone")).ok());
  ASSERT_TRUE(h.admit(name("b.zone")).ok());
  const auto zone = h.resolve(name("zone")).value();
  EXPECT_EQ(h.child_count({}), 1U);
  EXPECT_EQ(h.child_count(zone), 2U);
  EXPECT_EQ(h.child_count({5}), 0U);  // nonexistent
}

TEST(NamedHierarchy, RootLiveness) {
  NamedHierarchy h{params()};
  EXPECT_TRUE(h.root_alive());
  h.set_root_alive(false);
  EXPECT_FALSE(h.root_alive());
}

}  // namespace
}  // namespace hours::hierarchy
