// Churn & fault-injection engine: scripted and stochastic fault schedules
// expanded deterministically onto the event simulators.
#include <gtest/gtest.h>

#include <vector>

#include "sim/fault_injector.hpp"
#include "sim/hierarchy_protocol.hpp"
#include "sim/ring_protocol.hpp"

namespace hours::sim {
namespace {

RingSimConfig small_ring() {
  RingSimConfig cfg;
  cfg.size = 16;
  return cfg;
}

TEST(FaultInjector, CrashAndTimedRecovery) {
  RingSimulation ring{small_ring()};
  FaultInjector injector{make_fault_target(ring), FaultPlan{}.crash(3, 100, 500)};
  injector.arm();

  auto& sim = ring.simulator();
  sim.run(99);
  EXPECT_TRUE(ring.alive(3));
  sim.run(1);  // t=100: fail-stop
  EXPECT_FALSE(ring.alive(3));
  EXPECT_TRUE(injector.held_down(3));
  sim.run(399);  // t=499: still down
  EXPECT_FALSE(ring.alive(3));
  sim.run(1);  // t=500: recovery
  EXPECT_TRUE(ring.alive(3));
  EXPECT_FALSE(injector.held_down(3));
  EXPECT_EQ(injector.stats().kills, 1U);
  EXPECT_EQ(injector.stats().revivals, 1U);
}

TEST(FaultInjector, PermanentCrashNeverRecovers) {
  RingSimulation ring{small_ring()};
  FaultInjector injector{make_fault_target(ring), FaultPlan{}.crash(7, 10)};
  injector.arm();
  ring.simulator().run(100'000);
  EXPECT_FALSE(ring.alive(7));
  EXPECT_EQ(injector.stats().revivals, 0U);
}

TEST(FaultInjector, FlappingNodeOscillatesAndEndsAlive) {
  RingSimulation ring{small_ring()};
  // Down at 10, 60, 110; up at 30, 80, 130.
  FaultInjector injector{make_fault_target(ring),
                         FaultPlan{}.flap(5, 10, /*down=*/20, /*up=*/30, /*cycles=*/3)};
  injector.arm();

  auto& sim = ring.simulator();
  sim.run(15);
  EXPECT_FALSE(ring.alive(5));
  sim.run(20);  // t=35
  EXPECT_TRUE(ring.alive(5));
  sim.run(30);  // t=65
  EXPECT_FALSE(ring.alive(5));
  sim.run(1000);
  EXPECT_TRUE(ring.alive(5));
  EXPECT_EQ(injector.stats().kills, 3U);
  EXPECT_EQ(injector.stats().revivals, 3U);
}

TEST(FaultInjector, CorrelatedOutageRestrikesAfterRepair) {
  RingSimulation ring{small_ring()};
  // Strike {1,2,3} at 50 for 100 ticks, calm for 50, strike again at 200.
  FaultInjector injector{
      make_fault_target(ring),
      FaultPlan{}.correlated_outage({1, 2, 3}, 50, /*duration=*/100, /*strikes=*/2,
                                    /*strike_gap=*/50)};
  injector.arm();

  auto& sim = ring.simulator();
  sim.run(60);
  for (ids::RingIndex i : {1U, 2U, 3U}) EXPECT_FALSE(ring.alive(i));
  sim.run(115);  // t=175: between strikes
  for (ids::RingIndex i : {1U, 2U, 3U}) EXPECT_TRUE(ring.alive(i));
  sim.run(75);  // t=250: second strike in force
  for (ids::RingIndex i : {1U, 2U, 3U}) EXPECT_FALSE(ring.alive(i));
  sim.run(10'000);
  for (ids::RingIndex i : {1U, 2U, 3U}) EXPECT_TRUE(ring.alive(i));
  EXPECT_EQ(injector.stats().kills, 6U);
  EXPECT_EQ(injector.stats().revivals, 6U);
}

TEST(FaultInjector, OverlappingWindowsAreRefcounted) {
  // A node covered by two windows stays down until the *last* one lifts and
  // only counts one kill/revive transition pair.
  RingSimulation ring{small_ring()};
  FaultInjector injector{make_fault_target(ring),
                         FaultPlan{}.crash(7, 10, 100).crash(7, 50, 60)};
  injector.arm();

  auto& sim = ring.simulator();
  sim.run(55);
  EXPECT_FALSE(ring.alive(7));
  sim.run(20);  // t=75: the inner window lifted at 60 — still down
  EXPECT_FALSE(ring.alive(7));
  EXPECT_TRUE(injector.held_down(7));
  sim.run(50);  // t=125: outer window lifted at 100
  EXPECT_TRUE(ring.alive(7));
  EXPECT_EQ(injector.stats().kills, 1U);
  EXPECT_EQ(injector.stats().revivals, 1U);
}

TEST(FaultInjector, LossEpisodeSetsAndRestoresRate) {
  RingSimConfig cfg = small_ring();
  cfg.loss_probability = 0.05;
  RingSimulation ring{cfg};
  FaultInjector injector{make_fault_target(ring),
                         FaultPlan{}.loss_episode(0.4, 100, 200)};
  injector.arm();

  auto& sim = ring.simulator();
  EXPECT_DOUBLE_EQ(ring.loss_probability(), 0.05);
  sim.run(150);
  EXPECT_DOUBLE_EQ(ring.loss_probability(), 0.4);
  sim.run(100);
  EXPECT_DOUBLE_EQ(ring.loss_probability(), 0.05);  // restored to the prior rate
  EXPECT_EQ(injector.stats().loss_changes, 2U);
}

TEST(FaultInjector, StackedLossEpisodesUnwindInOrder) {
  RingSimulation ring{small_ring()};
  FaultInjector injector{make_fault_target(ring), FaultPlan{}
                                                      .loss_episode(0.2, 100, 500)
                                                      .loss_episode(0.6, 200, 300)};
  injector.arm();

  auto& sim = ring.simulator();
  sim.run(250);
  EXPECT_DOUBLE_EQ(ring.loss_probability(), 0.6);
  sim.run(100);  // t=350: inner episode restored the 0.2 in force at its start
  EXPECT_DOUBLE_EQ(ring.loss_probability(), 0.2);
  sim.run(200);  // t=550: outer episode restored the base 0.0
  EXPECT_DOUBLE_EQ(ring.loss_probability(), 0.0);
}

TEST(FaultInjector, RandomChurnIsSeededAndSparesProtectedNodes) {
  const auto run_one = [](std::vector<bool>& liveness_trace) {
    RingSimulation ring{small_ring()};
    FaultInjector injector{
        make_fault_target(ring),
        FaultPlan{}.random_churn(/*events=*/25, /*from=*/0, /*until=*/10'000,
                                 /*mean_downtime=*/800, /*seed=*/42, /*spare=*/{0, 1})};
    injector.arm();
    auto& sim = ring.simulator();
    for (int step = 0; step < 10; ++step) {
      sim.run(1'200);
      EXPECT_TRUE(ring.alive(0));  // spared
      EXPECT_TRUE(ring.alive(1));
      for (ids::RingIndex i = 0; i < 16; ++i) liveness_trace.push_back(ring.alive(i));
    }
    return injector.stats().kills;
  };

  std::vector<bool> first_trace;
  std::vector<bool> second_trace;
  const auto first_kills = run_one(first_trace);
  const auto second_kills = run_one(second_trace);
  EXPECT_EQ(first_trace, second_trace);  // bit-reproducible schedule
  EXPECT_EQ(first_kills, second_kills);
  EXPECT_GT(first_kills, 0U);
}

TEST(FaultInjector, DrivesHierarchySimulationByNodeId) {
  HierarchySimConfig cfg;
  cfg.fanout = {6, 3};
  HierarchySimulation sim{cfg};
  const auto victim = sim.id_of({2});
  FaultInjector injector{make_fault_target(sim), FaultPlan{}.crash(victim, 10, 400)};
  injector.arm();

  sim.simulator().run(50);
  EXPECT_FALSE(sim.alive({2}));
  sim.simulator().run(500);
  EXPECT_TRUE(sim.alive({2}));
}

TEST(FaultInjector, ByzantineSwitchTurnsNodeIntoDropper) {
  HierarchySimConfig cfg;
  cfg.fanout = {6, 3};
  HierarchySimulation sim{cfg};
  const auto insider = sim.id_of({2});
  FaultInjector injector{
      make_fault_target(sim),
      FaultPlan{}.byzantine(insider, overlay::NodeBehavior::kDropper, 10'000)};
  injector.arm();

  // Before the switch: queries through {2} deliver. (run_query drains the
  // queue, so the t=10'000 switch also fires during this call — well after
  // the query settled.)
  const auto before = sim.run_query({2, 1});
  EXPECT_TRUE(before.delivered);
  EXPECT_LT(before.completed_at, 10'000U);
  EXPECT_EQ(injector.stats().behavior_changes, 1U);

  // After: the insider acks (stealthy) and swallows the query — it never
  // settles, exactly the Section 5.3 silent-drop signature.
  const auto after = sim.run_query({2, 1});
  EXPECT_FALSE(after.done);
  EXPECT_FALSE(after.delivered);
}

}  // namespace
}  // namespace hours::sim
