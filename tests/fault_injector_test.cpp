// Churn & fault-injection engine: scripted and stochastic fault schedules
// expanded deterministically onto the event simulators.
#include <gtest/gtest.h>

#include <vector>

#include "sim/fault_injector.hpp"
#include "sim/hierarchy_protocol.hpp"
#include "sim/ring_protocol.hpp"

namespace hours::sim {
namespace {

RingSimConfig small_ring() {
  RingSimConfig cfg;
  cfg.size = 16;
  return cfg;
}

TEST(FaultInjector, CrashAndTimedRecovery) {
  RingSimulation ring{small_ring()};
  FaultInjector injector{make_fault_target(ring), FaultPlan{}.crash(3, 100, 500)};
  injector.arm();

  auto& sim = ring.simulator();
  sim.run(99);
  EXPECT_TRUE(ring.alive(3));
  sim.run(1);  // t=100: fail-stop
  EXPECT_FALSE(ring.alive(3));
  EXPECT_TRUE(injector.held_down(3));
  sim.run(399);  // t=499: still down
  EXPECT_FALSE(ring.alive(3));
  sim.run(1);  // t=500: recovery
  EXPECT_TRUE(ring.alive(3));
  EXPECT_FALSE(injector.held_down(3));
  EXPECT_EQ(injector.stats().kills, 1U);
  EXPECT_EQ(injector.stats().revivals, 1U);
}

TEST(FaultInjector, PermanentCrashNeverRecovers) {
  RingSimulation ring{small_ring()};
  FaultInjector injector{make_fault_target(ring), FaultPlan{}.crash(7, 10)};
  injector.arm();
  ring.simulator().run(100'000);
  EXPECT_FALSE(ring.alive(7));
  EXPECT_EQ(injector.stats().revivals, 0U);
}

TEST(FaultInjector, FlappingNodeOscillatesAndEndsAlive) {
  RingSimulation ring{small_ring()};
  // Down at 10, 60, 110; up at 30, 80, 130.
  FaultInjector injector{make_fault_target(ring),
                         FaultPlan{}.flap(5, 10, /*down=*/20, /*up=*/30, /*cycles=*/3)};
  injector.arm();

  auto& sim = ring.simulator();
  sim.run(15);
  EXPECT_FALSE(ring.alive(5));
  sim.run(20);  // t=35
  EXPECT_TRUE(ring.alive(5));
  sim.run(30);  // t=65
  EXPECT_FALSE(ring.alive(5));
  sim.run(1000);
  EXPECT_TRUE(ring.alive(5));
  EXPECT_EQ(injector.stats().kills, 3U);
  EXPECT_EQ(injector.stats().revivals, 3U);
}

TEST(FaultInjector, CorrelatedOutageRestrikesAfterRepair) {
  RingSimulation ring{small_ring()};
  // Strike {1,2,3} at 50 for 100 ticks, calm for 50, strike again at 200.
  FaultInjector injector{
      make_fault_target(ring),
      FaultPlan{}.correlated_outage({1, 2, 3}, 50, /*duration=*/100, /*strikes=*/2,
                                    /*strike_gap=*/50)};
  injector.arm();

  auto& sim = ring.simulator();
  sim.run(60);
  for (ids::RingIndex i : {1U, 2U, 3U}) EXPECT_FALSE(ring.alive(i));
  sim.run(115);  // t=175: between strikes
  for (ids::RingIndex i : {1U, 2U, 3U}) EXPECT_TRUE(ring.alive(i));
  sim.run(75);  // t=250: second strike in force
  for (ids::RingIndex i : {1U, 2U, 3U}) EXPECT_FALSE(ring.alive(i));
  sim.run(10'000);
  for (ids::RingIndex i : {1U, 2U, 3U}) EXPECT_TRUE(ring.alive(i));
  EXPECT_EQ(injector.stats().kills, 6U);
  EXPECT_EQ(injector.stats().revivals, 6U);
}

TEST(FaultInjector, OverlappingWindowsAreRefcounted) {
  // A node covered by two windows stays down until the *last* one lifts and
  // only counts one kill/revive transition pair.
  RingSimulation ring{small_ring()};
  FaultInjector injector{make_fault_target(ring),
                         FaultPlan{}.crash(7, 10, 100).crash(7, 50, 60)};
  injector.arm();

  auto& sim = ring.simulator();
  sim.run(55);
  EXPECT_FALSE(ring.alive(7));
  sim.run(20);  // t=75: the inner window lifted at 60 — still down
  EXPECT_FALSE(ring.alive(7));
  EXPECT_TRUE(injector.held_down(7));
  sim.run(50);  // t=125: outer window lifted at 100
  EXPECT_TRUE(ring.alive(7));
  EXPECT_EQ(injector.stats().kills, 1U);
  EXPECT_EQ(injector.stats().revivals, 1U);
}

TEST(FaultInjector, LossEpisodeSetsAndRestoresRate) {
  RingSimConfig cfg = small_ring();
  cfg.loss_probability = 0.05;
  RingSimulation ring{cfg};
  FaultInjector injector{make_fault_target(ring),
                         FaultPlan{}.loss_episode(0.4, 100, 200)};
  injector.arm();

  auto& sim = ring.simulator();
  EXPECT_DOUBLE_EQ(ring.loss_probability(), 0.05);
  sim.run(150);
  EXPECT_DOUBLE_EQ(ring.loss_probability(), 0.4);
  sim.run(100);
  EXPECT_DOUBLE_EQ(ring.loss_probability(), 0.05);  // restored to the prior rate
  EXPECT_EQ(injector.stats().loss_changes, 2U);
}

TEST(FaultInjector, StackedLossEpisodesUnwindInOrder) {
  RingSimulation ring{small_ring()};
  FaultInjector injector{make_fault_target(ring), FaultPlan{}
                                                      .loss_episode(0.2, 100, 500)
                                                      .loss_episode(0.6, 200, 300)};
  injector.arm();

  auto& sim = ring.simulator();
  sim.run(250);
  EXPECT_DOUBLE_EQ(ring.loss_probability(), 0.6);
  sim.run(100);  // t=350: inner episode restored the 0.2 in force at its start
  EXPECT_DOUBLE_EQ(ring.loss_probability(), 0.2);
  sim.run(200);  // t=550: outer episode restored the base 0.0
  EXPECT_DOUBLE_EQ(ring.loss_probability(), 0.0);
}

TEST(FaultInjector, RandomChurnIsSeededAndSparesProtectedNodes) {
  const auto run_one = [](std::vector<bool>& liveness_trace) {
    RingSimulation ring{small_ring()};
    FaultInjector injector{
        make_fault_target(ring),
        FaultPlan{}.random_churn(/*events=*/25, /*from=*/0, /*until=*/10'000,
                                 /*mean_downtime=*/800, /*seed=*/42, /*spare=*/{0, 1})};
    injector.arm();
    auto& sim = ring.simulator();
    for (int step = 0; step < 10; ++step) {
      sim.run(1'200);
      EXPECT_TRUE(ring.alive(0));  // spared
      EXPECT_TRUE(ring.alive(1));
      for (ids::RingIndex i = 0; i < 16; ++i) liveness_trace.push_back(ring.alive(i));
    }
    return injector.stats().kills;
  };

  std::vector<bool> first_trace;
  std::vector<bool> second_trace;
  const auto first_kills = run_one(first_trace);
  const auto second_kills = run_one(second_trace);
  EXPECT_EQ(first_trace, second_trace);  // bit-reproducible schedule
  EXPECT_EQ(first_kills, second_kills);
  EXPECT_GT(first_kills, 0U);
}

// -- link-level faults (partitions, cuts) -------------------------------------------

TEST(FaultInjector, PartitionSeversCrossGroupLinksOnly) {
  RingSimulation ring{small_ring()};
  FaultInjector injector{make_fault_target(ring),
                         FaultPlan{}.partition({{0, 1, 2}, {3, 4}}, 100, 500)};
  injector.arm();

  auto& sim = ring.simulator();
  sim.run(99);
  EXPECT_FALSE(injector.link_severed(0, 3));
  sim.run(1);  // t=100: cut in force
  EXPECT_TRUE(injector.link_severed(0, 3));
  EXPECT_TRUE(injector.link_severed(3, 0));  // both directions
  EXPECT_TRUE(injector.link_severed(2, 4));
  EXPECT_FALSE(injector.link_severed(0, 1));   // same group
  EXPECT_FALSE(injector.link_severed(3, 4));   // same group
  EXPECT_FALSE(injector.link_severed(0, 15));  // unlisted node: full connectivity
  for (ids::RingIndex i = 0; i < 5; ++i) EXPECT_TRUE(ring.alive(i));  // nobody died
  sim.run(400);  // t=500: healed
  EXPECT_FALSE(injector.link_severed(0, 3));
  // 3 * 2 cross pairs, both directions.
  EXPECT_EQ(injector.stats().link_cuts, 12U);
  EXPECT_EQ(injector.stats().link_heals, 12U);
  EXPECT_EQ(injector.stats().kills, 0U);
}

TEST(FaultInjector, CutLinkSeversExactlyOnePair) {
  RingSimulation ring{small_ring()};
  FaultInjector injector{make_fault_target(ring), FaultPlan{}.cut_link(2, 9, 50, 200)};
  injector.arm();

  ring.simulator().run(60);
  EXPECT_TRUE(injector.link_severed(2, 9));
  EXPECT_TRUE(injector.link_severed(9, 2));
  EXPECT_FALSE(injector.link_severed(2, 8));
  ring.simulator().run(200);
  EXPECT_FALSE(injector.link_severed(2, 9));
}

TEST(FaultInjector, OverlappingPartitionWindowsSharingANodeAreRefcounted) {
  // Node 2 sits on the cut side of two windows: [100, 400) severing {2}|{5}
  // and [200, 600) severing {2}|{5, 6}. The 2<->5 link is covered by both
  // and must stay severed until the *last* window lifts at 600, while
  // 2<->6 heals with its only window. One transition pair per link.
  RingSimulation ring{small_ring()};
  FaultInjector injector{make_fault_target(ring), FaultPlan{}
                                                      .partition({{2}, {5}}, 100, 400)
                                                      .partition({{2}, {5, 6}}, 200, 600)};
  injector.arm();

  auto& sim = ring.simulator();
  sim.run(250);
  EXPECT_TRUE(injector.link_severed(2, 5));
  EXPECT_TRUE(injector.link_severed(2, 6));
  sim.run(200);  // t=450: first window lifted at 400 — 2<->5 still covered
  EXPECT_TRUE(injector.link_severed(2, 5));
  EXPECT_FALSE(injector.link_severed(5, 2) != injector.link_severed(2, 5));
  sim.run(200);  // t=650: second window lifted at 600
  EXPECT_FALSE(injector.link_severed(2, 5));
  EXPECT_FALSE(injector.link_severed(2, 6));
  // 2<->5 flipped once (despite double coverage); 2<->6 once.
  EXPECT_EQ(injector.stats().link_cuts, 4U);   // {2-5, 5-2} + {2-6, 6-2}
  EXPECT_EQ(injector.stats().link_heals, 4U);
}

TEST(FaultInjector, PermanentPartitionNeverHeals) {
  RingSimulation ring{small_ring()};
  FaultInjector injector{make_fault_target(ring),
                         FaultPlan{}.partition({{0, 1}, {2, 3}}, 10)};  // heal_at == 0
  injector.arm();
  ring.simulator().run(1'000'000);
  EXPECT_TRUE(injector.link_severed(0, 2));
  EXPECT_TRUE(injector.link_severed(1, 3));
  EXPECT_EQ(injector.stats().link_heals, 0U);
}

TEST(FaultInjector, PartitionOfAnAlreadyCrashedNodeComposesWithRecovery) {
  // Node 4 crashes at 50 and recovers at 300, inside a partition window
  // [100, 800) that cuts it off from node 10. While crashed it is dead AND
  // severed; after the crash lifts it is alive but still unreachable; only
  // the heal restores contact. Node and link state never bleed into each
  // other.
  RingSimulation ring{small_ring()};
  FaultInjector injector{make_fault_target(ring), FaultPlan{}
                                                      .crash(4, 50, 300)
                                                      .partition({{4}, {10}}, 100, 800)};
  injector.arm();

  auto& sim = ring.simulator();
  sim.run(150);  // crashed and partitioned
  EXPECT_FALSE(ring.alive(4));
  EXPECT_TRUE(injector.held_down(4));
  EXPECT_TRUE(injector.link_severed(4, 10));
  sim.run(200);  // t=350: crash lifted, partition still up
  EXPECT_TRUE(ring.alive(4));
  EXPECT_FALSE(injector.held_down(4));
  EXPECT_TRUE(injector.link_severed(4, 10));  // alive yet unreachable
  sim.run(500);  // t=850: partition healed
  EXPECT_TRUE(ring.alive(4));
  EXPECT_FALSE(injector.link_severed(4, 10));
  EXPECT_EQ(injector.stats().kills, 1U);
  EXPECT_EQ(injector.stats().revivals, 1U);
  EXPECT_EQ(injector.stats().link_cuts, 2U);
  EXPECT_EQ(injector.stats().link_heals, 2U);
}

TEST(FaultInjector, CrashAndPartitionRefcountsAreIndependent) {
  // The node refcount (crash windows) and the link refcount (partition
  // windows) must not share state: lifting the only crash while two
  // partition windows still cover the node leaves every link severed, and
  // vice versa a late crash re-kills a node whose partitions all healed.
  RingSimulation ring{small_ring()};
  FaultInjector injector{make_fault_target(ring), FaultPlan{}
                                                      .crash(6, 100, 200)
                                                      .partition({{6}, {12}}, 50, 400)
                                                      .partition({{6}, {12}}, 60, 500)
                                                      .crash(6, 450, 550)};
  injector.arm();

  auto& sim = ring.simulator();
  sim.run(250);  // crash lifted; both partition windows in force
  EXPECT_TRUE(ring.alive(6));
  EXPECT_TRUE(injector.link_severed(6, 12));
  sim.run(200);  // t=450: one partition window left, second crash began
  EXPECT_FALSE(ring.alive(6));
  EXPECT_TRUE(injector.link_severed(6, 12));
  sim.run(150);  // t=600: everything lifted
  EXPECT_TRUE(ring.alive(6));
  EXPECT_FALSE(injector.link_severed(6, 12));
  EXPECT_EQ(injector.stats().kills, 2U);
  EXPECT_EQ(injector.stats().link_cuts, 2U);   // refcounted: one severed episode
  EXPECT_EQ(injector.stats().link_heals, 2U);
}

TEST(FaultInjector, DescribeSerializesEverySpecKind) {
  const auto plan = FaultPlan{}
                        .crash(3, 100, 500)
                        .flap(5, 10, 20, 30, 3)
                        .correlated_outage({1, 2}, 50, 100, 2, 50)
                        .partition({{0, 1}, {2, 3}}, 10, 900)
                        .cut_link(4, 9, 20, 800)
                        .loss_episode(0.25, 100, 200)
                        .random_churn(5, 0, 1'000, 100, 42, {0});
  const std::string text = plan.describe();
  EXPECT_NE(text.find("crash(3, 100, 500)"), std::string::npos);
  EXPECT_NE(text.find("flap(5, 10, 20, 30, 3)"), std::string::npos);
  EXPECT_NE(text.find("correlated_outage({1, 2}, 50, 100, 2, 50)"), std::string::npos);
  EXPECT_NE(text.find("partition({{0, 1}, {2, 3}}, 10, 900)"), std::string::npos);
  EXPECT_NE(text.find("cut_link(4, 9, 20, 800)"), std::string::npos);
  EXPECT_NE(text.find("loss_episode(0.25, 100, 200)"), std::string::npos);
  EXPECT_NE(text.find("random_churn(5, 0, 1000, 100, 42, {0})"), std::string::npos);
}

TEST(FaultInjector, DrivesHierarchySimulationByNodeId) {
  HierarchySimConfig cfg;
  cfg.fanout = {6, 3};
  HierarchySimulation sim{cfg};
  const auto victim = sim.id_of({2});
  FaultInjector injector{make_fault_target(sim), FaultPlan{}.crash(victim, 10, 400)};
  injector.arm();

  sim.simulator().run(50);
  EXPECT_FALSE(sim.alive({2}));
  sim.simulator().run(500);
  EXPECT_TRUE(sim.alive({2}));
}

TEST(FaultInjector, ByzantineSwitchTurnsNodeIntoDropper) {
  HierarchySimConfig cfg;
  cfg.fanout = {6, 3};
  HierarchySimulation sim{cfg};
  const auto insider = sim.id_of({2});
  FaultInjector injector{
      make_fault_target(sim),
      FaultPlan{}.byzantine(insider, overlay::NodeBehavior::kDropper, 10'000)};
  injector.arm();

  // Before the switch: queries through {2} deliver. (run_query drains the
  // queue, so the t=10'000 switch also fires during this call — well after
  // the query settled.)
  const auto before = sim.run_query({2, 1});
  EXPECT_TRUE(before.delivered);
  EXPECT_LT(before.completed_at, 10'000U);
  EXPECT_EQ(injector.stats().behavior_changes, 1U);

  // After: the insider acks (stealthy) and swallows the query — it never
  // settles, exactly the Section 5.3 silent-drop signature.
  const auto after = sim.run_query({2, 1});
  EXPECT_FALSE(after.done);
  EXPECT_FALSE(after.delivered);
}

}  // namespace
}  // namespace hours::sim
