#include "baseline/chord.hpp"

#include "util/contracts.hpp"

namespace hours::baseline {

namespace {

std::uint32_t ceil_log2(std::uint32_t n) {
  std::uint32_t bits = 0;
  std::uint32_t value = 1;
  while (value < n) {
    value <<= 1;
    ++bits;
  }
  return bits;
}

}  // namespace

ChordOverlay::ChordOverlay(std::uint32_t size)
    : size_(size), finger_count_(ceil_log2(size)), alive_(size, 1) {
  HOURS_EXPECTS(size >= 2);
}

void ChordOverlay::kill(ids::RingIndex i) {
  HOURS_EXPECTS(i < size_);
  alive_[i] = 0;
}

void ChordOverlay::revive(ids::RingIndex i) {
  HOURS_EXPECTS(i < size_);
  alive_[i] = 1;
}

void ChordOverlay::revive_all() {
  std::fill(alive_.begin(), alive_.end(), static_cast<std::uint8_t>(1));
}

std::vector<ids::RingIndex> ChordOverlay::fingers(ids::RingIndex i) const {
  HOURS_EXPECTS(i < size_);
  std::vector<ids::RingIndex> out;
  out.reserve(finger_count_);
  for (std::uint32_t m = 0; m < finger_count_; ++m) {
    const auto f = ids::clockwise_step(i, 1U << m, size_);
    if (f != i && (out.empty() || out.back() != f)) out.push_back(f);
  }
  return out;
}

ChordRouteResult ChordOverlay::route(ids::RingIndex from, ids::RingIndex to) const {
  HOURS_EXPECTS(from < size_ && to < size_);
  HOURS_EXPECTS(alive(from));

  ChordRouteResult result;
  ids::RingIndex node = from;
  // Greedy progress is strictly decreasing, so size_ iterations suffice.
  for (std::uint32_t guard = 0; guard <= size_; ++guard) {
    if (node == to) {
      result.delivered = alive(to);
      return result;
    }
    const std::uint32_t d_to = ids::clockwise_distance(node, to, size_);
    // Closest preceding alive finger: largest 2^m <= d_to with finger alive.
    std::optional<ids::RingIndex> next;
    for (std::uint32_t m = finger_count_; m-- > 0;) {
      const std::uint32_t span = 1U << m;
      if (span > d_to) continue;
      const auto f = ids::clockwise_step(node, span, size_);
      if (alive(f)) {
        next = f;
        break;
      }
      result.failed_probes += 1;
    }
    if (!next.has_value()) return result;  // no alive pointer makes progress
    node = *next;
    result.hops += 1;
  }
  return result;
}

std::vector<ids::RingIndex> ChordOverlay::inbound_pointer_nodes(std::uint32_t size,
                                                                ids::RingIndex target) {
  std::vector<ids::RingIndex> out;
  const std::uint32_t fingers = ceil_log2(size);
  for (std::uint32_t m = 0; m < fingers; ++m) {
    const auto p = ids::counter_clockwise_step(target, 1U << m, size);
    if (p != target && (out.empty() || out.back() != p)) out.push_back(p);
  }
  return out;
}

}  // namespace hours::baseline
