// The unprotected service hierarchy — what DNS/LDAP/PKI look like without
// HOURS (Figure 1's domino effect).
//
// Forwarding follows the prescribed top-down path only; a single dead node
// anywhere on the path denies the whole subtree underneath it.
#pragma once

#include "hierarchy/model.hpp"

namespace hours::baseline {

struct PlainRouteResult {
  bool delivered = false;
  std::uint32_t hops = 0;  ///< path length when delivered
};

/// Routes a query along the unaugmented tree path from the root to `dest`.
[[nodiscard]] PlainRouteResult route_plain(hierarchy::HierarchyModel& model,
                                           const hierarchy::NodePath& dest);

}  // namespace hours::baseline
