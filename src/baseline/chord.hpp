// Idealized Chord ring — the comparison baseline of Section 5.2.
//
// The paper's argument: in deterministic structured overlays (Chord, CAN,
// Pastry, Viceroy), connectivity is a pure function of membership, so a
// topology-aware attacker can enumerate the O(log N) nodes that hold
// pointers to a victim and shut them down, throttling availability from
// 100% straight to zero. HOURS' randomized pointers deny the attacker that
// knowledge. bench/baseline_chord_compare reproduces the contrast.
//
// The ring is idealized: node i's m-th finger is node (i + 2^m) mod N, the
// exact analogue of our index-ring overlays (nodes evenly spaced, successor
// = index + 1). Forwarding is Chord's greedy closest-preceding-finger rule,
// made liveness-aware: dead fingers are skipped in preference order.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ids/ring.hpp"

namespace hours::baseline {

struct ChordRouteResult {
  bool delivered = false;
  std::uint32_t hops = 0;
  std::uint32_t failed_probes = 0;
};

class ChordOverlay {
 public:
  explicit ChordOverlay(std::uint32_t size);

  [[nodiscard]] std::uint32_t size() const noexcept { return size_; }

  void kill(ids::RingIndex i);
  void revive(ids::RingIndex i);
  void revive_all();
  [[nodiscard]] bool alive(ids::RingIndex i) const noexcept { return alive_[i] != 0; }

  /// Fingers of node `i`: (i + 2^m) mod N for m = 0..ceil(log2 N)-1,
  /// deduplicated.
  [[nodiscard]] std::vector<ids::RingIndex> fingers(ids::RingIndex i) const;

  /// Greedy Chord routing from `from` toward `to`; skips dead fingers.
  /// Fails when no alive finger makes clockwise progress (Chord keeps no
  /// backward pointers).
  [[nodiscard]] ChordRouteResult route(ids::RingIndex from, ids::RingIndex to) const;

  /// The deterministic set of nodes that maintain a pointer to `target`:
  /// (target - 2^m) mod N. Shutting these down makes `target` unreachable —
  /// the attack Section 5.2 describes.
  [[nodiscard]] static std::vector<ids::RingIndex> inbound_pointer_nodes(std::uint32_t size,
                                                                         ids::RingIndex target);

 private:
  std::uint32_t size_;
  std::uint32_t finger_count_;
  std::vector<std::uint8_t> alive_;
};

}  // namespace hours::baseline

// See also baseline/plain.hpp for the unprotected-hierarchy baseline.
