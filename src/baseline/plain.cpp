#include "baseline/plain.hpp"

namespace hours::baseline {

PlainRouteResult route_plain(hierarchy::HierarchyModel& model,
                             const hierarchy::NodePath& dest) {
  PlainRouteResult result;
  if (!model.root_alive()) return result;

  hierarchy::NodePath pos;
  for (const auto index : dest) {
    if (!model.overlay_of(pos).alive(index)) return result;  // domino effect
    pos.push_back(index);
    result.hops += 1;
  }
  result.delivered = true;
  return result;
}

}  // namespace hours::baseline
