#include "overlay/replication.hpp"

#include <numeric>

#include "util/contracts.hpp"

namespace hours::overlay {

ReplicatedOverlay::ReplicatedOverlay(Overlay& overlay, std::uint32_t replicas)
    : overlay_(overlay),
      replicas_(replicas),
      server_alive_(static_cast<std::size_t>(overlay.size()) * replicas, 1),
      alive_count_(overlay.size(), replicas) {
  HOURS_EXPECTS(replicas >= 1);
  // Take ownership of logical liveness: every node starts reachable.
  overlay_.revive_all();
}

bool ReplicatedOverlay::kill_server(ids::RingIndex node, std::uint32_t server) {
  HOURS_EXPECTS(node < overlay_.size() && server < replicas_);
  auto& bit = server_alive_[static_cast<std::size_t>(node) * replicas_ + server];
  if (bit == 0) return false;
  bit = 0;
  if (--alive_count_[node] == 0) overlay_.kill(node);
  return true;
}

bool ReplicatedOverlay::revive_server(ids::RingIndex node, std::uint32_t server) {
  HOURS_EXPECTS(node < overlay_.size() && server < replicas_);
  auto& bit = server_alive_[static_cast<std::size_t>(node) * replicas_ + server];
  if (bit != 0) return false;
  bit = 1;
  if (alive_count_[node]++ == 0) overlay_.revive(node);
  return true;
}

std::uint32_t ReplicatedOverlay::alive_servers(ids::RingIndex node) const {
  HOURS_EXPECTS(node < overlay_.size());
  return alive_count_[node];
}

std::uint64_t ReplicatedOverlay::total_alive_servers() const noexcept {
  return std::accumulate(alive_count_.begin(), alive_count_.end(), std::uint64_t{0});
}

}  // namespace hours::overlay
