#include "overlay/table_builder.hpp"

#include "rng/pointer_sampler.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256.hpp"

namespace hours::overlay {

RoutingTable build_routing_table(std::uint32_t ring_size, ids::RingIndex owner,
                                 const OverlayParams& params, const ChildCountFn& child_count) {
  params.validate();
  HOURS_EXPECTS(owner < ring_size);

  RoutingTable table{owner, ring_size};
  if (ring_size <= 1) return table;

  rng::Xoshiro256 rng{rng::mix64(params.seed, owner)};
  const std::uint32_t k_eff = params.effective_k();

  const auto distances = rng::sample_pointer_distances(ring_size, k_eff, rng);
  for (const std::uint32_t d : distances) {
    TableEntry entry;
    entry.sibling = ids::clockwise_step(owner, d, ring_size);

    const bool wants_nephews =
        params.design == Design::kEnhanced || d == 1;  // base: clockwise neighbor only
    if (wants_nephews && child_count) {
      const std::uint32_t children = child_count(entry.sibling);
      if (children > 0) {
        entry.nephews = rng::sample_distinct(children, params.q, rng);
      }
    }
    table.add_entry(std::move(entry));
  }

  if (params.design == Design::kEnhanced) {
    table.set_ccw_neighbor(ids::counter_clockwise_step(owner, 1, ring_size));
  }
  return table;
}

}  // namespace hours::overlay
