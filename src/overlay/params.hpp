// Overlay construction parameters (Sections 3.2 and 4.1).
#pragma once

#include <cstdint>

#include "util/contracts.hpp"

namespace hours::overlay {

/// Which HOURS design an overlay is built with.
///
/// * kBase (Section 3): sibling pointer to distance d with probability 1/d;
///   q nephew pointers only to children of the immediate clockwise neighbor;
///   no counter-clockwise pointer, no backward forwarding.
/// * kEnhanced (Section 4): sibling pointer with probability min(1, k/d);
///   q nephew pointers for *every* sibling entry; one counter-clockwise
///   neighbor pointer; backward forwarding enabled.
enum class Design : std::uint8_t { kBase, kEnhanced };

struct OverlayParams {
  Design design = Design::kEnhanced;

  /// Redundancy factor k (Section 4.1). Ignored (treated as 1) in the base
  /// design.
  std::uint32_t k = 5;

  /// Nephew pointers per routing-table entry (q in the paper).
  std::uint32_t q = 10;

  /// Seed for all randomness in this overlay; per-node table seeds derive
  /// deterministically from it, so tables can be regenerated on demand.
  std::uint64_t seed = 0x484F555253ULL;  // "HOURS"

  [[nodiscard]] std::uint32_t effective_k() const noexcept {
    return design == Design::kBase ? 1U : k;
  }

  void validate() const {
    HOURS_EXPECTS(k >= 1);
    HOURS_EXPECTS(q >= 1);
  }
};

}  // namespace hours::overlay
