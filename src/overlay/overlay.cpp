#include "overlay/overlay.hpp"

#include <algorithm>

#include "rng/splitmix64.hpp"
#include "rng/xoshiro256.hpp"
#include "util/contracts.hpp"

namespace hours::overlay {

Overlay::Overlay(std::uint32_t size, OverlayParams params, TableStorage storage,
                 ChildCountFn child_count)
    : size_(size),
      params_(params),
      storage_(storage),
      child_count_(std::move(child_count)),
      alive_(size, 1),
      alive_count_(size),
      scratch_table_(0, size == 0 ? 1 : size) {
  HOURS_EXPECTS(size >= 1);
  params_.validate();
  if (storage_ == TableStorage::kEager) {
    tables_.reserve(size_);
    for (ids::RingIndex i = 0; i < size_; ++i) {
      tables_.push_back(build_routing_table(size_, i, params_, child_count_));
    }
  }
}

void Overlay::kill(ids::RingIndex i) {
  HOURS_EXPECTS(i < size_);
  if (alive_[i] != 0) {
    alive_[i] = 0;
    --alive_count_;
  }
}

void Overlay::revive(ids::RingIndex i) {
  HOURS_EXPECTS(i < size_);
  if (alive_[i] == 0) {
    alive_[i] = 1;
    ++alive_count_;
  }
}

void Overlay::revive_all() {
  std::fill(alive_.begin(), alive_.end(), static_cast<std::uint8_t>(1));
  alive_count_ = size_;
}

void Overlay::set_behavior(ids::RingIndex i, NodeBehavior behavior) {
  HOURS_EXPECTS(i < size_);
  if (behaviors_.empty()) behaviors_.assign(size_, NodeBehavior::kHonest);
  behaviors_[i] = behavior;
}

void Overlay::reseed(std::uint64_t new_seed) {
  params_.seed = new_seed;
  if (storage_ == TableStorage::kEager) {
    tables_.clear();
    tables_.reserve(size_);
    for (ids::RingIndex i = 0; i < size_; ++i) {
      tables_.push_back(build_routing_table(size_, i, params_, child_count_));
    }
  }
  // Lazy storage regenerates from params_.seed on every access.
}

const RoutingTable& Overlay::table(ids::RingIndex i) const {
  HOURS_EXPECTS(i < size_);
  if (storage_ == TableStorage::kEager) return tables_[i];
  scratch_table_ = build_routing_table(size_, i, params_, child_count_);
  return scratch_table_;
}

std::optional<ids::RingIndex> Overlay::nearest_alive_ccw(ids::RingIndex i) const {
  HOURS_EXPECTS(i < size_);
  for (std::uint32_t step = 1; step < size_; ++step) {
    const ids::RingIndex candidate = ids::counter_clockwise_step(i, step, size_);
    if (alive(candidate)) return candidate;
  }
  return std::nullopt;
}

std::optional<ids::RingIndex> Overlay::nearest_alive_cw(ids::RingIndex i) const {
  HOURS_EXPECTS(i < size_);
  for (std::uint32_t step = 1; step < size_; ++step) {
    const ids::RingIndex candidate = ids::clockwise_step(i, step, size_);
    if (alive(candidate)) return candidate;
  }
  return std::nullopt;
}

std::optional<ids::RingIndex> Overlay::pick_nephew(const TableEntry& entry,
                                                   const ForwardOptions& opts) const {
  auto nephew_alive = [&](ids::RingIndex child) {
    return opts.child_alive == nullptr || child >= opts.child_alive->size() ||
           (*opts.child_alive)[child] != 0;
  };

  if (!opts.next_od.has_value()) {
    for (const ids::RingIndex n : entry.nephews) {
      if (nephew_alive(n)) return n;
    }
    return std::nullopt;
  }

  // "the query is forwarded to the nephew that is closest, in the ID space,
  // to the next level OD-node" (Section 3.3). Child indices follow identifier
  // order, so clockwise index distance implements ID-space closeness.
  const std::uint32_t child_ring =
      opts.child_alive != nullptr && !opts.child_alive->empty()
          ? static_cast<std::uint32_t>(opts.child_alive->size())
          : 0;
  std::optional<ids::RingIndex> best;
  std::uint64_t best_distance = 0;
  for (const ids::RingIndex n : entry.nephews) {
    if (!nephew_alive(n)) continue;
    const std::uint64_t d =
        child_ring > 0
            ? ids::clockwise_distance(n, *opts.next_od, child_ring)
            : (n >= *opts.next_od ? n - *opts.next_od : *opts.next_od - n);
    if (!best.has_value() || d < best_distance) {
      best = n;
      best_distance = d;
    }
  }
  return best;
}

Overlay::Step Overlay::decide(ids::RingIndex node, ids::RingIndex od, bool backward,
                              const ForwardOptions& opts) const {
  Step step;
  const RoutingTable& t = table(node);

  // Compromised misrouter: ignores the algorithm, picks a random alive entry
  // (Section 5.3 — mis-routing insider).
  if (behavior(node) == NodeBehavior::kMisrouter) {
    // Deterministic per (node, overlay): the stream position still varies by
    // call because the engine state is shared across decisions.
    static thread_local rng::Xoshiro256 misroute_rng{0xBADC0FFEEULL};
    std::vector<ids::RingIndex> alive_entries;
    for (const auto& e : t.entries()) {
      if (alive(e.sibling)) alive_entries.push_back(e.sibling);
    }
    if (alive_entries.empty()) return step;  // stuck
    step.kind = Step::Kind::kHop;
    step.target = alive_entries[misroute_rng.below(alive_entries.size())];
    return step;
  }

  // Rule 1 (Algorithm 3, lines 1-7): the OD itself is in the routing table.
  if (const TableEntry* entry = t.find(od)) {
    if (alive(od)) {
      step.kind = Step::Kind::kHop;
      step.target = od;
      return step;
    }
    step.failed_probes += 1;  // probed the dead OD
    if (auto nephew = pick_nephew(*entry, opts)) {
      step.kind = Step::Kind::kNephewExit;
      step.target = *nephew;
      return step;
    }
    // Entry unusable (no nephews kept, or all nephews dead): continue with
    // the normal forwarding rules below.
  }

  if (!backward) {
    // Rule 2 (lines 10-16): greedy clockwise. The best candidate is the alive
    // entry with the largest clockwise distance strictly below d(node, od) —
    // overshooting can never be closer on the clockwise metric.
    const std::uint32_t d_od = ids::clockwise_distance(node, od, size_);
    std::size_t pos = t.last_before_distance(d_od);
    for (; pos < t.entries().size(); --pos) {
      const auto& candidate = t.entries()[pos];
      if (alive(candidate.sibling)) {
        step.kind = Step::Kind::kHop;
        step.target = candidate.sibling;
        return step;
      }
      step.failed_probes += 1;
      if (pos == 0) break;
    }
    // Greedy failed: the node itself is the closest alive point known —
    // flip to backward mode (line 14). The base design has no backward
    // pointers, so the query is stuck.
    if (params_.design == Design::kBase) return step;
    step.entered_backward = true;
  }

  // Rule 3 (lines 17-19): backward step to the counter-clockwise neighbor.
  if (ring_repaired_) {
    if (auto ccw = nearest_alive_ccw(node)) {
      step.kind = Step::Kind::kHop;
      step.target = *ccw;
      step.backward_move = true;
      return step;
    }
    step.kind = Step::Kind::kStuck;
    return step;
  }
  const auto ccw = t.ccw_neighbor();
  if (ccw.has_value() && alive(*ccw)) {
    step.kind = Step::Kind::kHop;
    step.target = *ccw;
    step.backward_move = true;
    return step;
  }
  if (ccw.has_value()) step.failed_probes += 1;
  step.kind = Step::Kind::kStuck;  // un-repaired ring gap dead-ends the query
  return step;
}

ForwardResult Overlay::forward(ids::RingIndex entrance, ids::RingIndex od,
                               const ForwardOptions& opts) const {
  HOURS_EXPECTS(entrance < size_ && od < size_);
  HOURS_EXPECTS(alive(entrance));

  ForwardResult result;
  const std::uint32_t max_hops =
      opts.max_hops != 0 ? opts.max_hops : 4 * size_ + 64;

  ids::RingIndex node = entrance;
  bool backward = false;
  if (opts.record_path) result.path.push_back(node);

  if (behavior(node) == NodeBehavior::kDropper) {
    result.kind = ExitKind::kDropped;
    result.last_node = node;
    return result;
  }

  while (true) {
    if (node == od) {
      result.kind = ExitKind::kArrivedAtOd;
      result.last_node = node;
      return result;
    }

    const Step step = decide(node, od, backward, opts);
    result.failed_probes += step.failed_probes;

    switch (step.kind) {
      case Step::Kind::kStuck:
        result.kind = ExitKind::kUnreachable;
        result.last_node = node;
        return result;
      case Step::Kind::kNephewExit:
        result.kind = ExitKind::kNephewExit;
        result.last_node = node;
        result.nephew = step.target;
        return result;
      case Step::Kind::kHop:
        if (result.hops >= max_hops) {
          result.kind = ExitKind::kUnreachable;
          result.last_node = node;
          return result;
        }
        if (step.entered_backward) backward = true;
        node = step.target;
        result.hops += 1;
        if (step.backward_move) result.backward_steps += 1;
        if (opts.record_path) result.path.push_back(node);
        if (behavior(node) == NodeBehavior::kDropper) {
          result.kind = ExitKind::kDropped;
          result.last_node = node;
          return result;
        }
        break;
    }
  }
}

}  // namespace hours::overlay
