// A single randomized overlay network and its intra-overlay forwarding
// (Sections 3.3 and 4.2 — Algorithms 2 and 3).
//
// The Overlay owns the ring membership (indices 0..N-1), per-node liveness
// and behavior, and the routing tables (stored eagerly, or regenerated on
// demand for multi-million-node rings). Forwarding is implemented exactly as
// Algorithm 3:
//
//   at each node, in order:
//     1. if the overlay-destination (OD) is in the routing table:
//        hop to it if alive, else exit through an alive nephew pointer of
//        that entry (inter-overlay exit);
//     2. forward mode: greedy — hop to the alive sibling pointer closest to
//        the OD; if the node itself is closest, flip the query to backward
//        mode;
//     3. backward mode: hop to the closest alive counter-clockwise neighbor
//        (maintained by ring repair / active recovery).
//
// The base design has no backward mode: a query that cannot make clockwise
// progress fails, which is precisely the vulnerability Section 4 fixes.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "overlay/params.hpp"
#include "overlay/routing_table.hpp"
#include "overlay/table_builder.hpp"

namespace hours::overlay {

/// How routing tables are materialized.
enum class TableStorage : std::uint8_t {
  kEager,  ///< built once, stored; required for per-node workload accounting
  kLazy,   ///< regenerated deterministically at each visit; O(1) memory
};

/// Per-node behavior under the Section 5.3 insider-attack model.
enum class NodeBehavior : std::uint8_t {
  kHonest,
  kDropper,    ///< silently drops queries routed through it
  kMisrouter,  ///< forwards to a uniformly random alive table entry
};

/// Why intra-overlay forwarding ended.
enum class ExitKind : std::uint8_t {
  kArrivedAtOd,  ///< reached the alive overlay-destination; hierarchical forwarding resumes
  kNephewExit,   ///< OD dead; exited via a nephew pointer into the next-level overlay
  kDropped,      ///< swallowed by a compromised (dropper) node
  kUnreachable,  ///< no alive route (base design dead-end, ring gap, or hop budget)
};

struct ForwardOptions {
  bool record_path = false;
  /// Ring index of the next-level OD within the OD's child overlay, used to
  /// pick the nephew "closest in the ID space to the next level OD-node"
  /// (Section 3.3). Unset: the first alive nephew is taken.
  std::optional<ids::RingIndex> next_od;
  /// Liveness of the OD's children (indexed by child ring index); unset
  /// means all children alive.
  const std::vector<std::uint8_t>* child_alive = nullptr;
  /// Loop-protection hop budget; 0 means 4*N + 64.
  std::uint32_t max_hops = 0;
};

struct ForwardResult {
  ExitKind kind = ExitKind::kUnreachable;
  ids::RingIndex last_node = 0;   ///< OD / exit node / node where the query died
  ids::RingIndex nephew = 0;      ///< child ring index (valid for kNephewExit)
  std::uint32_t hops = 0;         ///< node-to-node transfers taken inside this overlay
  std::uint32_t backward_steps = 0;
  std::uint32_t failed_probes = 0;  ///< dead next-hop candidates skipped
  std::vector<ids::RingIndex> path;  ///< visited nodes (entrance first) if recorded

  [[nodiscard]] bool delivered_to_od() const noexcept { return kind == ExitKind::kArrivedAtOd; }
};

class Overlay {
 public:
  Overlay(std::uint32_t size, OverlayParams params,
          TableStorage storage = TableStorage::kEager, ChildCountFn child_count = {});

  [[nodiscard]] std::uint32_t size() const noexcept { return size_; }
  [[nodiscard]] const OverlayParams& params() const noexcept { return params_; }

  // -- liveness & behavior ---------------------------------------------------
  void kill(ids::RingIndex i);
  void revive(ids::RingIndex i);
  void revive_all();
  [[nodiscard]] bool alive(ids::RingIndex i) const noexcept { return alive_[i] != 0; }
  [[nodiscard]] std::uint32_t alive_count() const noexcept { return alive_count_; }

  /// Raw liveness bits indexed by ring index (1 = alive); used as the
  /// child_alive view during inter-overlay nephew selection.
  [[nodiscard]] const std::vector<std::uint8_t>& alive_vector() const noexcept { return alive_; }

  void set_behavior(ids::RingIndex i, NodeBehavior behavior);
  [[nodiscard]] NodeBehavior behavior(ids::RingIndex i) const noexcept {
    return behaviors_.empty() ? NodeBehavior::kHonest : behaviors_[i];
  }

  /// When true (default), backward forwarding assumes ring maintenance /
  /// active recovery has patched counter-clockwise pointers across failed
  /// nodes, so a backward step lands on the nearest *alive* CCW node. When
  /// false, the stored CCW pointer is followed blindly and a dead CCW
  /// neighbor dead-ends the query (the ablation in bench/ablation_recovery).
  void set_ring_repaired(bool repaired) noexcept { ring_repaired_ = repaired; }
  [[nodiscard]] bool ring_repaired() const noexcept { return ring_repaired_; }

  // -- routing tables ----------------------------------------------------------
  /// The routing table of node `i` (stored or regenerated per storage mode).
  [[nodiscard]] const RoutingTable& table(ids::RingIndex i) const;

  /// Periodic table regeneration (Section 7, "Overlay Maintenance"): every
  /// node redraws its random pointers. Liveness and behaviors are
  /// unaffected; only the random structure changes. A query that found no
  /// exit under one draw gets a fresh, independent chance after a refresh —
  /// which is how long-running deployments close the small residual failure
  /// mass of extreme neighbor attacks (EXPERIMENTS.md, Figure 10).
  void reseed(std::uint64_t new_seed);

  // -- forwarding --------------------------------------------------------------
  /// Runs Algorithm 3 from `entrance` toward overlay-destination `od`.
  /// `entrance` must be alive.
  [[nodiscard]] ForwardResult forward(ids::RingIndex entrance, ids::RingIndex od,
                                      const ForwardOptions& opts = {}) const;

  /// Nearest alive node counter-clockwise of `i` (excluding `i`), if any.
  [[nodiscard]] std::optional<ids::RingIndex> nearest_alive_ccw(ids::RingIndex i) const;

  /// Nearest alive node clockwise of `i` (excluding `i`), if any.
  [[nodiscard]] std::optional<ids::RingIndex> nearest_alive_cw(ids::RingIndex i) const;

 private:
  struct Step {
    enum class Kind : std::uint8_t { kHop, kNephewExit, kStuck } kind = Kind::kStuck;
    ids::RingIndex target = 0;       // next node (kHop) or exit nephew (kNephewExit)
    bool entered_backward = false;   // this step flipped the query to backward mode
    bool backward_move = false;      // this hop travels counter-clockwise
    std::uint32_t failed_probes = 0;
  };

  /// One Algorithm-3 decision at `node`; `backward` is the query's mode bit.
  [[nodiscard]] Step decide(ids::RingIndex node, ids::RingIndex od, bool backward,
                            const ForwardOptions& opts) const;

  /// Picks the best alive nephew of `entry` (closest to opts.next_od).
  [[nodiscard]] std::optional<ids::RingIndex> pick_nephew(const TableEntry& entry,
                                                          const ForwardOptions& opts) const;

  std::uint32_t size_;
  OverlayParams params_;
  TableStorage storage_;
  ChildCountFn child_count_;
  std::vector<std::uint8_t> alive_;
  std::uint32_t alive_count_;
  std::vector<NodeBehavior> behaviors_;  // lazily sized on first set_behavior
  bool ring_repaired_ = true;
  std::vector<RoutingTable> tables_;       // eager storage
  mutable RoutingTable scratch_table_;     // lazy storage: last regenerated table
};

}  // namespace hours::overlay
