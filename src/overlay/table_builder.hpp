// Routing-table generation — Algorithm 1 of the paper, in both the base form
// (pointer probability 1/d) and the enhanced form (min(1, k/d), nephews for
// every entry, counter-clockwise pointer).
//
// Generation is deterministic per (overlay seed, owner index): a node's table
// can be regenerated on demand instead of stored, which the Figure-7
// scalability bench relies on at 2,000,000 nodes.
#pragma once

#include <functional>

#include "overlay/params.hpp"
#include "overlay/routing_table.hpp"

namespace hours::overlay {

/// Returns the child-overlay size of sibling `j` — how many children node j
/// has. Used to sample nephew pointers. An empty function means "no
/// children anywhere" (single-overlay experiments).
using ChildCountFn = std::function<std::uint32_t(ids::RingIndex)>;

/// Builds the routing table of node `owner` in an overlay of `ring_size`
/// nodes, exactly as Algorithm 1 prescribes:
///
///  1. sample sibling pointer distances (probability min(1, k_eff/d));
///  2. for each chosen sibling with children, sample q distinct nephew
///     pointers among its children — in the base design only the immediate
///     clockwise neighbor's entry carries nephews (Section 3.2), in the
///     enhanced design every entry does (Section 4.1, step 2);
///  3. in the enhanced design, record the counter-clockwise neighbor pointer
///     required by backward forwarding (Section 4.2).
[[nodiscard]] RoutingTable build_routing_table(std::uint32_t ring_size, ids::RingIndex owner,
                                               const OverlayParams& params,
                                               const ChildCountFn& child_count = {});

}  // namespace hours::overlay
