// A node's overlay routing table (Sections 3.1, 3.2, 4.1).
//
// Entries are kept sorted by clockwise index distance from the owner, which
// makes greedy next-hop selection a binary search: the best candidate toward
// an overlay-destination at distance d_od is the alive entry with the largest
// distance strictly below d_od (greedy clockwise forwarding can never gain by
// overshooting; see tests/overlay_forwarding_test.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ids/ring.hpp"

namespace hours::overlay {

/// One routing-table entry: a sibling pointer plus its nephew pointers.
///
/// Nephew values are ring indices of the sibling's children within the
/// sibling's child overlay (the paper stores addresses; indices are the
/// simulation equivalent).
struct TableEntry {
  ids::RingIndex sibling = 0;
  std::vector<ids::RingIndex> nephews;
};

class RoutingTable {
 public:
  RoutingTable(ids::RingIndex owner, std::uint32_t ring_size)
      : owner_(owner), ring_size_(ring_size) {}

  [[nodiscard]] ids::RingIndex owner() const noexcept { return owner_; }
  [[nodiscard]] std::uint32_t ring_size() const noexcept { return ring_size_; }

  /// Adds an entry; entries must be inserted in increasing clockwise
  /// distance from the owner (the builder guarantees this).
  void add_entry(TableEntry entry);

  /// Inserts an entry at its sorted position, replacing an existing entry
  /// for the same sibling. Used by active recovery, which grows tables at
  /// run time ("it creates a new routing entry", Section 4.3).
  void insert_entry(TableEntry entry);

  /// All entries, sorted by clockwise distance from the owner.
  [[nodiscard]] const std::vector<TableEntry>& entries() const noexcept { return entries_; }

  /// Looks up the entry for sibling index `j`, if present.
  [[nodiscard]] const TableEntry* find(ids::RingIndex j) const noexcept;

  /// Position of the entry with the largest clockwise distance strictly
  /// below `distance`; scans from here toward distance 1 give greedy
  /// candidates in preference order. Returns entry count if none qualify.
  [[nodiscard]] std::size_t last_before_distance(std::uint32_t distance) const noexcept;

  /// The counter-clockwise neighbor pointer (enhanced design only).
  [[nodiscard]] std::optional<ids::RingIndex> ccw_neighbor() const noexcept {
    return ccw_neighbor_;
  }
  void set_ccw_neighbor(ids::RingIndex index) noexcept { ccw_neighbor_ = index; }

  /// Number of sibling pointers (table "entries" in Figure 5's unit).
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Total nephew pointers across entries.
  [[nodiscard]] std::size_t nephew_count() const noexcept;

 private:
  ids::RingIndex owner_;
  std::uint32_t ring_size_;
  std::vector<TableEntry> entries_;                    // sorted by cw distance from owner
  std::optional<ids::RingIndex> ccw_neighbor_;
};

}  // namespace hours::overlay
