#include "overlay/routing_table.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace hours::overlay {

void RoutingTable::add_entry(TableEntry entry) {
  HOURS_EXPECTS(entry.sibling != owner_ && entry.sibling < ring_size_);
  if (!entries_.empty()) {
    const auto prev = ids::clockwise_distance(owner_, entries_.back().sibling, ring_size_);
    const auto next = ids::clockwise_distance(owner_, entry.sibling, ring_size_);
    HOURS_EXPECTS(next > prev);
  }
  entries_.push_back(std::move(entry));
}

void RoutingTable::insert_entry(TableEntry entry) {
  HOURS_EXPECTS(entry.sibling != owner_ && entry.sibling < ring_size_);
  const auto target = ids::clockwise_distance(owner_, entry.sibling, ring_size_);
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), target, [this](const TableEntry& e, std::uint32_t d) {
        return ids::clockwise_distance(owner_, e.sibling, ring_size_) < d;
      });
  if (it != entries_.end() && it->sibling == entry.sibling) {
    *it = std::move(entry);
    return;
  }
  entries_.insert(it, std::move(entry));
}

const TableEntry* RoutingTable::find(ids::RingIndex j) const noexcept {
  const auto target = ids::clockwise_distance(owner_, j, ring_size_);
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), target, [this](const TableEntry& e, std::uint32_t d) {
        return ids::clockwise_distance(owner_, e.sibling, ring_size_) < d;
      });
  if (it != entries_.end() && it->sibling == j) return &*it;
  return nullptr;
}

std::size_t RoutingTable::last_before_distance(std::uint32_t distance) const noexcept {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), distance, [this](const TableEntry& e, std::uint32_t d) {
        return ids::clockwise_distance(owner_, e.sibling, ring_size_) < d;
      });
  if (it == entries_.begin()) return entries_.size();
  return static_cast<std::size_t>(std::distance(entries_.begin(), it)) - 1;
}

std::size_t RoutingTable::nephew_count() const noexcept {
  std::size_t total = 0;
  for (const auto& entry : entries_) total += entry.nephews.size();
  return total;
}

}  // namespace hours::overlay
