// Server replication (Section 7, "Server Replication").
//
// "A pointer to a node that is replicated at multiple servers actually
//  stores the addresses of all these servers. When a query is forwarded
//  using this pointer, it is actually forwarded to any server that is
//  alive."
//
// In the simulation model this means a logical overlay node stays reachable
// until *all* of its replica servers are shut down. ReplicatedOverlay wraps
// an Overlay with per-node replica counters and keeps the wrapped overlay's
// logical liveness in sync, so all forwarding machinery works unchanged
// while attacks operate on individual servers.
#pragma once

#include <cstdint>
#include <vector>

#include "overlay/overlay.hpp"

namespace hours::overlay {

class ReplicatedOverlay {
 public:
  /// Wraps `overlay`; every logical node starts with `replicas` alive
  /// servers. The wrapped overlay must outlive this object and its logical
  /// liveness is owned by this wrapper from now on.
  ReplicatedOverlay(Overlay& overlay, std::uint32_t replicas);

  [[nodiscard]] std::uint32_t replication_factor() const noexcept { return replicas_; }
  [[nodiscard]] Overlay& overlay() noexcept { return overlay_; }

  /// Shuts down one specific server of a logical node. Returns false if
  /// that server was already down.
  bool kill_server(ids::RingIndex node, std::uint32_t server);

  /// Brings one server back. Returns false if it was already up.
  bool revive_server(ids::RingIndex node, std::uint32_t server);

  /// Servers of `node` still alive.
  [[nodiscard]] std::uint32_t alive_servers(ids::RingIndex node) const;

  /// A logical node is reachable while any server survives.
  [[nodiscard]] bool node_reachable(ids::RingIndex node) const {
    return alive_servers(node) > 0;
  }

  /// Total alive servers across the overlay.
  [[nodiscard]] std::uint64_t total_alive_servers() const noexcept;

 private:
  Overlay& overlay_;
  std::uint32_t replicas_;
  std::vector<std::uint8_t> server_alive_;  // [node * replicas_ + server]
  std::vector<std::uint32_t> alive_count_;  // per node
};

}  // namespace hours::overlay
