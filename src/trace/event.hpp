// Typed event taxonomy for the query/repair lifecycle.
//
// Every interesting protocol transition — forwarding hops by kind, probe
// traffic, suspicion, Section 4.3 active recovery, client retries, message
// drops, and fault-injector actions — is describable as one fixed-layout
// Event. Events carry the simulation instant, the acting node, the peer it
// acted on, the hierarchy level (-1 when not applicable), and a causal id
// (query qid or repair rid) so a full query or repair path can be
// reconstructed from a flat event stream. `value` is a type-specific scalar
// (drop reason, loss rate in ppm, hop count, ...), documented per type in
// docs/OBSERVABILITY.md.
//
// The taxonomy is closed and versioned by kSchemaVersion: sinks serialize
// events by name, and trace/event.cpp's validator checks emitted JSON lines
// against exactly this schema (CI runs it on a real bench's output).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace hours::trace {

/// Bumped whenever the Event layout or the taxonomy changes incompatibly.
inline constexpr std::uint32_t kSchemaVersion = 1;

/// Sentinel for "no node" in Event::node / Event::peer.
inline constexpr std::uint32_t kNoNode = 0xFFFFFFFFU;

enum class EventType : std::uint8_t {
  // -- forwarding hops, by kind --------------------------------------------------
  kHierHop,      ///< parent->child or child->parent step along the dest path
  kDetourEnter,  ///< ancestor routed around a dead on-path child (footnote 4)
  kRingHop,      ///< greedy overlay step among siblings (Algorithm 3 rule 1/2)
  kBackwardHop,  ///< counter-clockwise step (Algorithm 3 rule 3)
  kNephewExit,   ///< hop to a child of a sibling (nephew pointer exit)
  // -- liveness probing -----------------------------------------------------------
  kProbeSent,    ///< ring probe transmitted; peer = probed node
  kProbeFailed,  ///< probe ack timed out; peer = silent node
  kSuspect,      ///< peer entered the node's suspicion set
  // -- Section 4.3 active recovery -------------------------------------------------
  kRecoveryStart,     ///< node inferred massive failure and emitted a Repair
  kRecoveryAdopt,     ///< node (gap's far edge) adopted originator peer
  kRecoveryComplete,  ///< originator's ccw side closed by an accepted claim
  // -- client / delivery ------------------------------------------------------------
  kQuerySubmit,     ///< causal = qid; node = start, peer = destination
  kQueryDelivered,  ///< causal = qid; value = hops
  kQueryFailed,     ///< causal = qid; value = hops attempted
  kRetry,           ///< client retransmitted an unanswered hop; peer = tried
  kDrop,            ///< transport dropped a message; value = DropReason
  // -- fault injection ---------------------------------------------------------------
  kFaultKill,       ///< injector/attacker took node down
  kFaultRevive,     ///< injector/attacker brought node back
  kLinkCut,         ///< directed link node->peer severed
  kLinkHeal,        ///< directed link node->peer restored
  kLossChange,      ///< transport loss rate changed; value = rate in ppm
  kBehaviorChange,  ///< insider switch; value = overlay::NodeBehavior
  // -- gossip-assisted liveness (DESIGN.md §11) --------------------------------------
  kLivenessDigestSent,     ///< suspicion digest piggybacked; value = entry count
  kLivenessDigestApplied,  ///< digest processed by receiver; value = entries adopted
  kLivenessGossipSuspect,  ///< peer adopted into suspicion from a digest; value = since
};

/// Number of event types (dense enum; used for per-type subscriber tables).
inline constexpr std::size_t kEventTypeCount =
    static_cast<std::size_t>(EventType::kLivenessGossipSuspect) + 1;

/// Why the transport suppressed a delivery (Event::value for kDrop).
enum class DropReason : std::uint8_t {
  kLoss = 1,         ///< i.i.d. transmission loss
  kDeadRecipient,    ///< recipient down at delivery time
  kMidFlightDeath,   ///< recipient died (even transiently) while in flight
  kSeveredLink,      ///< link filter rejected the delivery
};

struct Event {
  std::uint64_t at = 0;  ///< simulation ticks (or logical op count outside sims)
  EventType type = EventType::kHierHop;
  std::uint32_t node = kNoNode;  ///< acting node id
  std::uint32_t peer = kNoNode;  ///< other party, when meaningful
  std::int32_t level = -1;       ///< hierarchy level of `node`; -1 = n/a
  std::uint64_t causal = 0;      ///< query qid / repair rid; 0 = none
  std::uint64_t value = 0;       ///< type-specific scalar
};

/// Stable snake_case name, e.g. "recovery_adopt" — the wire name used by
/// every serializing sink.
[[nodiscard]] std::string_view event_type_name(EventType type) noexcept;

/// Reverse lookup; returns false when `name` is not in the taxonomy.
[[nodiscard]] bool event_type_from_name(std::string_view name, EventType& out) noexcept;

/// Serializes one event as a deterministic single-line JSON object (the
/// JSON-lines wire format, no trailing newline):
///   {"at":N,"type":"...","node":N,"peer":N,"level":N,"causal":N,"value":N}
/// node/peer equal to kNoNode serialize as null.
[[nodiscard]] std::string to_json_line(const Event& event);

/// Validates one JSON line against the schema: all seven keys present in
/// order, `type` a taxonomy name, numeric fields in range. On failure
/// returns false and, when `error` is non-null, explains why.
[[nodiscard]] bool validate_event_line(std::string_view line, std::string* error = nullptr);

}  // namespace hours::trace
