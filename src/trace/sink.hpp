// TraceSink interface and the Tracer dispatch point.
//
// Instrumented code holds a `Tracer*` (null by default) and emits through
// HOURS_TRACE_EMIT. The disabled path costs one null-pointer test per
// potential event — and compiling with -DHOURS_TRACE_DISABLED removes even
// that, turning every emission site into `(void)0` (the no-op path is thus
// checkable at compile time; bench/micro_overlay_ops measures the runtime
// side). Sinks are not owned by the tracer and must outlive it; everything
// is single-threaded, like the simulator it instruments.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/event.hpp"

namespace hours::trace {

/// Receives every emitted event. Implementations: RingBufferSink (in-memory
/// + subscriber callbacks), JsonLinesSink, ChromeTraceSink, and protocol
/// consumers such as sim::AdaptiveAttacker.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const Event& event) = 0;
  /// Called when a run wants buffered output persisted (file sinks).
  virtual void flush() {}
};

class Tracer {
 public:
  void add_sink(TraceSink* sink) {
    if (sink != nullptr) sinks_.push_back(sink);
  }
  void remove_sink(TraceSink* sink) {
    std::erase(sinks_, sink);
  }

  /// False while no sink is attached — emission sites skip event
  /// construction entirely.
  [[nodiscard]] bool enabled() const noexcept { return !sinks_.empty(); }

  [[nodiscard]] std::uint64_t events_emitted() const noexcept { return events_emitted_; }

  void emit(const Event& event) {
    ++events_emitted_;
    for (TraceSink* sink : sinks_) sink->on_event(event);
  }

  void flush() {
    for (TraceSink* sink : sinks_) sink->flush();
  }

 private:
  std::vector<TraceSink*> sinks_;
  std::uint64_t events_emitted_ = 0;
};

/// True when `tracer` (a possibly-null Tracer*) will deliver an emission.
[[nodiscard]] inline bool emitting(const Tracer* tracer) noexcept {
  return tracer != nullptr && tracer->enabled();
}

}  // namespace hours::trace

// The emission macro: `tracer` is a Tracer*, the remaining arguments are
// Event designated initializers. Example:
//   HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
//                             .type = trace::EventType::kProbeSent,
//                             .node = i, .peer = succ});
#ifdef HOURS_TRACE_DISABLED
// The arguments are named inside unevaluated sizeof operands: the compiler
// type-checks the emission site and sees every parameter "used" (so -Werror
// builds stay clean) but generates no code at all.
#define HOURS_TRACE_EMIT(tracer, ...) \
  ((void)sizeof(tracer), (void)sizeof(::hours::trace::Event __VA_ARGS__))
#else
#define HOURS_TRACE_EMIT(tracer, ...)                                \
  do {                                                               \
    if (::hours::trace::emitting(tracer)) {                          \
      (tracer)->emit(::hours::trace::Event __VA_ARGS__);             \
    }                                                                \
  } while (false)
#endif
