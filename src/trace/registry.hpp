// Counter/histogram registry: the one place run statistics live.
//
// Replaces the ad-hoc `std::uint64_t foo_sent_ = 0;` tallies that every
// protocol and bench grew independently. A component asks the registry for
// a named counter once (at construction) and bumps it through the returned
// Counter handle — a plain pointer increment on the hot path, no lookup.
// Names are dotted lowercase ("ring.probes_sent", "client.retransmissions")
// and enumerate deterministically (sorted), so to_json() is byte-stable for
// a seeded run.
//
// Handles stay valid for the registry's lifetime (node-based map storage);
// the registry is single-threaded like everything it instruments.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/histogram.hpp"

namespace hours::trace {

/// A registered counter; cheap to copy, increments the registry's slot.
class Counter {
 public:
  Counter() = default;

  void inc(std::uint64_t by = 1) noexcept {
    if (slot_ != nullptr) *slot_ += by;
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return slot_ != nullptr ? *slot_ : 0; }

 private:
  friend class Registry;
  explicit Counter(std::uint64_t* slot) : slot_(slot) {}
  std::uint64_t* slot_ = nullptr;
};

class Registry {
 public:
  /// Returns (creating on first use) the counter registered under `name`.
  [[nodiscard]] Counter counter(std::string_view name);

  /// Returns (creating on first use) the histogram registered under `name`.
  [[nodiscard]] metrics::Histogram& histogram(std::string_view name);

  /// Current value of a counter; 0 when `name` was never registered.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;

  /// Overwrites (registering on first use) a counter's value. Snapshot
  /// restore path; existing handles observe the new value.
  void set_counter(std::string_view name, std::uint64_t value);

  [[nodiscard]] bool has_counter(std::string_view name) const;
  [[nodiscard]] bool has_histogram(std::string_view name) const;

  /// Registered counter names, sorted.
  [[nodiscard]] std::vector<std::string> counter_names() const;
  /// Registered histogram names, sorted.
  [[nodiscard]] std::vector<std::string> histogram_names() const;

  /// Deterministic JSON snapshot:
  ///   {"counters":{"a.b":1,...},"histograms":{"x":{"count":N,"mean":...,
  ///    "p50":N,"p99":N,"max":N},...}}
  /// Keys sorted; doubles with 6 digits after the point.
  [[nodiscard]] std::string to_json() const;

  /// Zeroes every counter and clears every histogram (names stay
  /// registered, handles stay valid).
  void reset();

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, metrics::Histogram, std::less<>> histograms_;
};

}  // namespace hours::trace
