// In-memory ring-buffer sink with per-type subscriber callbacks.
//
// Keeps the most recent `capacity` events for post-run inspection (tests,
// failure artifacts) and fans each event out to subscribers as it happens —
// the hook protocol consumers use to *react* to the trace stream. The
// adaptive attacker (sim/adaptive_attacker.hpp) is the canonical
// subscriber: it watches recovery_adopt events and re-strikes the adopting
// neighborhood.
//
// Subscribers run synchronously at the emission site, so they may schedule
// simulator events but must not re-enter the protocol directly.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "trace/sink.hpp"

namespace hours::trace {

class RingBufferSink final : public TraceSink {
 public:
  using Callback = std::function<void(const Event&)>;

  explicit RingBufferSink(std::size_t capacity = 4096);

  void on_event(const Event& event) override;

  /// Invoked for every event of `type`, in subscription order.
  void subscribe(EventType type, Callback callback);
  /// Invoked for every event regardless of type, after typed subscribers.
  void subscribe_all(Callback callback);

  /// Buffered events, oldest first (at most `capacity`).
  [[nodiscard]] std::vector<Event> events() const;
  /// Buffered events of one type, oldest first.
  [[nodiscard]] std::vector<Event> events_of(EventType type) const;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t total_events() const noexcept { return total_; }
  /// Events that fell off the buffer's tail (total - buffered).
  [[nodiscard]] std::uint64_t overwritten() const noexcept {
    return total_ - (total_ < capacity_ ? total_ : capacity_);
  }

  void clear();

 private:
  std::size_t capacity_;
  std::vector<Event> buffer_;  ///< circular once full
  std::size_t next_ = 0;       ///< write cursor
  std::uint64_t total_ = 0;
  std::array<std::vector<Callback>, kEventTypeCount> typed_;
  std::vector<Callback> untyped_;
};

}  // namespace hours::trace
