#include "trace/chrome_trace_sink.hpp"

namespace hours::trace {

namespace {

/// Async span phases for the query lifecycle; everything else is instant.
const char* phase_of(EventType type) {
  switch (type) {
    case EventType::kQuerySubmit: return "b";
    case EventType::kQueryDelivered:
    case EventType::kQueryFailed: return "e";
    default: return "i";
  }
}

}  // namespace

ChromeTraceSink::ChromeTraceSink(std::ostream& out) : out_(&out) { write_prologue(); }

ChromeTraceSink::ChromeTraceSink(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path)), out_(owned_.get()) {
  write_prologue();
}

ChromeTraceSink::~ChromeTraceSink() { close(); }

void ChromeTraceSink::write_prologue() {
  if (!ok()) return;
  *out_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
}

void ChromeTraceSink::on_event(const Event& event) {
  if (!ok() || closed_) return;
  std::ostream& os = *out_;
  if (events_ != 0) os << ",";
  os << "\n{\"name\":\"" << event_type_name(event.type) << "\",\"ph\":\""
     << phase_of(event.type) << "\",\"ts\":" << event.at << ",\"pid\":0,\"tid\":"
     << (event.node == kNoNode ? 0 : event.node);
  const char* phase = phase_of(event.type);
  if (phase[0] == 'b' || phase[0] == 'e') {
    os << ",\"cat\":\"query\",\"id\":" << event.causal;
  } else {
    os << ",\"s\":\"t\"";
  }
  os << ",\"args\":{\"peer\":";
  if (event.peer == kNoNode) {
    os << "null";
  } else {
    os << event.peer;
  }
  os << ",\"level\":" << event.level << ",\"causal\":" << event.causal
     << ",\"value\":" << event.value << "}}";
  ++events_;
}

void ChromeTraceSink::flush() {
  if (out_ != nullptr) out_->flush();
}

void ChromeTraceSink::close() {
  if (closed_ || !ok()) return;
  closed_ = true;
  *out_ << "\n]}\n";
  out_->flush();
}

}  // namespace hours::trace
