#include "trace/ring_buffer_sink.hpp"

#include "util/contracts.hpp"

namespace hours::trace {

RingBufferSink::RingBufferSink(std::size_t capacity) : capacity_(capacity) {
  HOURS_EXPECTS(capacity > 0);
  buffer_.reserve(capacity);
}

void RingBufferSink::on_event(const Event& event) {
  if (buffer_.size() < capacity_) {
    buffer_.push_back(event);
  } else {
    buffer_[next_] = event;
  }
  next_ = (next_ + 1) % capacity_;
  ++total_;

  for (const auto& callback : typed_[static_cast<std::size_t>(event.type)]) callback(event);
  for (const auto& callback : untyped_) callback(event);
}

void RingBufferSink::subscribe(EventType type, Callback callback) {
  HOURS_EXPECTS(callback != nullptr);
  typed_[static_cast<std::size_t>(type)].push_back(std::move(callback));
}

void RingBufferSink::subscribe_all(Callback callback) {
  HOURS_EXPECTS(callback != nullptr);
  untyped_.push_back(std::move(callback));
}

std::vector<Event> RingBufferSink::events() const {
  std::vector<Event> out;
  out.reserve(buffer_.size());
  // Once wrapped, `next_` points at the oldest buffered event.
  const std::size_t start = buffer_.size() < capacity_ ? 0 : next_;
  for (std::size_t i = 0; i < buffer_.size(); ++i) {
    out.push_back(buffer_[(start + i) % buffer_.size()]);
  }
  return out;
}

std::vector<Event> RingBufferSink::events_of(EventType type) const {
  std::vector<Event> out;
  for (const Event& event : events()) {
    if (event.type == type) out.push_back(event);
  }
  return out;
}

void RingBufferSink::clear() {
  buffer_.clear();
  next_ = 0;
}

}  // namespace hours::trace
