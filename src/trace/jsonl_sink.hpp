// JSON-lines file sink: one schema-conformant JSON object per event.
//
// The wire format is exactly trace::to_json_line — deterministic key order,
// so a seeded run reproduces its trace byte for byte. Every line passes
// trace::validate_event_line (CI runs the validator over a real bench's
// output as the schema check). Writes to any std::ostream; the file
// constructor owns its stream.
#pragma once

#include <fstream>
#include <memory>
#include <ostream>
#include <string>

#include "trace/sink.hpp"

namespace hours::trace {

class JsonLinesSink final : public TraceSink {
 public:
  /// Writes to a caller-owned stream (kept alive by the caller).
  explicit JsonLinesSink(std::ostream& out);
  /// Opens `path` for writing; check ok() before use.
  explicit JsonLinesSink(const std::string& path);

  [[nodiscard]] bool ok() const noexcept { return out_ != nullptr && out_->good(); }
  [[nodiscard]] std::uint64_t lines_written() const noexcept { return lines_; }

  void on_event(const Event& event) override;
  void flush() override;

 private:
  std::unique_ptr<std::ofstream> owned_;  ///< set only by the path constructor
  std::ostream* out_ = nullptr;
  std::uint64_t lines_ = 0;
};

}  // namespace hours::trace
