#include "trace/event.hpp"

#include <array>
#include <charconv>
#include <cstdio>

namespace hours::trace {

namespace {

constexpr std::array<std::string_view, kEventTypeCount> kNames = {
    "hier_hop",       "detour_enter",    "ring_hop",        "backward_hop",
    "nephew_exit",    "probe_sent",      "probe_failed",    "suspect",
    "recovery_start", "recovery_adopt",  "recovery_complete",
    "query_submit",   "query_delivered", "query_failed",    "retry",
    "drop",           "fault_kill",      "fault_revive",    "link_cut",
    "link_heal",      "loss_change",     "behavior_change",
    "liveness_digest_sent", "liveness_digest_applied", "liveness_gossip_suspect",
};
static_assert(kNames.size() == kEventTypeCount);

void append_node(std::string& out, std::uint32_t node) {
  if (node == kNoNode) {
    out += "null";
  } else {
    out += std::to_string(node);
  }
}

/// Consumes `expected` from the front of `rest`; false on mismatch.
bool eat(std::string_view& rest, std::string_view expected) {
  if (rest.substr(0, expected.size()) != expected) return false;
  rest.remove_prefix(expected.size());
  return true;
}

/// Consumes a non-negative integer (or "null" when `nullable`).
bool eat_number(std::string_view& rest, bool nullable, bool allow_minus = false) {
  if (nullable && eat(rest, "null")) return true;
  std::size_t i = 0;
  if (allow_minus && i < rest.size() && rest[i] == '-') ++i;
  const std::size_t digits_start = i;
  while (i < rest.size() && rest[i] >= '0' && rest[i] <= '9') ++i;
  if (i == digits_start) return false;
  rest.remove_prefix(i);
  return true;
}

bool fail(std::string* error, std::string_view why) {
  if (error != nullptr) *error = std::string{why};
  return false;
}

}  // namespace

std::string_view event_type_name(EventType type) noexcept {
  const auto index = static_cast<std::size_t>(type);
  return index < kNames.size() ? kNames[index] : std::string_view{"unknown"};
}

bool event_type_from_name(std::string_view name, EventType& out) noexcept {
  for (std::size_t i = 0; i < kNames.size(); ++i) {
    if (kNames[i] == name) {
      out = static_cast<EventType>(i);
      return true;
    }
  }
  return false;
}

std::string to_json_line(const Event& event) {
  std::string out;
  out.reserve(112);
  out += "{\"at\":";
  out += std::to_string(event.at);
  out += ",\"type\":\"";
  out += event_type_name(event.type);
  out += "\",\"node\":";
  append_node(out, event.node);
  out += ",\"peer\":";
  append_node(out, event.peer);
  out += ",\"level\":";
  out += std::to_string(event.level);
  out += ",\"causal\":";
  out += std::to_string(event.causal);
  out += ",\"value\":";
  out += std::to_string(event.value);
  out += "}";
  return out;
}

bool validate_event_line(std::string_view line, std::string* error) {
  std::string_view rest = line;
  if (!eat(rest, "{\"at\":")) return fail(error, "missing '{\"at\":' prefix");
  if (!eat_number(rest, false)) return fail(error, "'at' is not a non-negative integer");
  if (!eat(rest, ",\"type\":\"")) return fail(error, "missing 'type' key");
  const std::size_t quote = rest.find('"');
  if (quote == std::string_view::npos) return fail(error, "unterminated 'type' string");
  EventType type{};
  if (!event_type_from_name(rest.substr(0, quote), type)) {
    return fail(error, "'type' value \"" + std::string{rest.substr(0, quote)} +
                           "\" is not in the event taxonomy");
  }
  rest.remove_prefix(quote + 1);
  if (!eat(rest, ",\"node\":")) return fail(error, "missing 'node' key");
  if (!eat_number(rest, true)) return fail(error, "'node' is neither integer nor null");
  if (!eat(rest, ",\"peer\":")) return fail(error, "missing 'peer' key");
  if (!eat_number(rest, true)) return fail(error, "'peer' is neither integer nor null");
  if (!eat(rest, ",\"level\":")) return fail(error, "missing 'level' key");
  if (!eat_number(rest, false, /*allow_minus=*/true)) {
    return fail(error, "'level' is not an integer");
  }
  if (!eat(rest, ",\"causal\":")) return fail(error, "missing 'causal' key");
  if (!eat_number(rest, false)) return fail(error, "'causal' is not a non-negative integer");
  if (!eat(rest, ",\"value\":")) return fail(error, "missing 'value' key");
  if (!eat_number(rest, false)) return fail(error, "'value' is not a non-negative integer");
  if (rest != "}") return fail(error, "trailing content after 'value'");
  return true;
}

}  // namespace hours::trace
