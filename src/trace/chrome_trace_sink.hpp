// Chrome trace_event exporter: open the output in chrome://tracing (or
// https://ui.perfetto.dev) for visual timeline inspection of a run.
//
// Mapping: every node is a "thread" (tid = node id) inside one process, so
// the viewer lays nodes out as parallel swimlanes with simulation ticks as
// timestamps. Query lifecycles are async spans ("ph":"b"/"e") keyed by the
// causal qid — a delivered query renders as a bar from submission to
// completion — and everything else is an instant event ("ph":"i") on the
// acting node's lane with the Event payload in args.
//
// The JSON array streams as events arrive; close() (also run by the
// destructor) terminates the array. Output is deterministic for a seeded
// run.
#pragma once

#include <fstream>
#include <memory>
#include <ostream>
#include <string>

#include "trace/sink.hpp"

namespace hours::trace {

class ChromeTraceSink final : public TraceSink {
 public:
  /// Writes to a caller-owned stream (kept alive by the caller).
  explicit ChromeTraceSink(std::ostream& out);
  /// Opens `path` for writing; check ok() before use.
  explicit ChromeTraceSink(const std::string& path);
  ~ChromeTraceSink() override;

  ChromeTraceSink(const ChromeTraceSink&) = delete;
  ChromeTraceSink& operator=(const ChromeTraceSink&) = delete;

  [[nodiscard]] bool ok() const noexcept { return out_ != nullptr && out_->good(); }
  [[nodiscard]] std::uint64_t events_written() const noexcept { return events_; }

  void on_event(const Event& event) override;
  void flush() override;

  /// Terminates the JSON document; further events are ignored.
  void close();

 private:
  void write_prologue();

  std::unique_ptr<std::ofstream> owned_;  ///< set only by the path constructor
  std::ostream* out_ = nullptr;
  std::uint64_t events_ = 0;
  bool closed_ = false;
};

}  // namespace hours::trace
