#include "trace/jsonl_sink.hpp"

namespace hours::trace {

JsonLinesSink::JsonLinesSink(std::ostream& out) : out_(&out) {}

JsonLinesSink::JsonLinesSink(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path)), out_(owned_.get()) {}

void JsonLinesSink::on_event(const Event& event) {
  if (!ok()) return;
  *out_ << to_json_line(event) << '\n';
  ++lines_;
}

void JsonLinesSink::flush() {
  if (out_ != nullptr) out_->flush();
}

}  // namespace hours::trace
