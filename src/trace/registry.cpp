#include "trace/registry.hpp"

#include <cstdio>

namespace hours::trace {

Counter Registry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string{name}, 0).first;
  }
  return Counter{&it->second};
}

metrics::Histogram& Registry::histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string{name}, metrics::Histogram{}).first;
  }
  return it->second;
}

void Registry::set_counter(std::string_view name, std::uint64_t value) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string{name}, value);
  } else {
    it->second = value;
  }
}

std::uint64_t Registry::counter_value(std::string_view name) const {
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second : 0;
}

bool Registry::has_counter(std::string_view name) const {
  return counters_.find(name) != counters_.end();
}

bool Registry::has_histogram(std::string_view name) const {
  return histograms_.find(name) != histograms_.end();
}

std::vector<std::string> Registry::counter_names() const {
  std::vector<std::string> out;
  out.reserve(counters_.size());
  for (const auto& [name, value] : counters_) out.push_back(name);
  return out;
}

std::vector<std::string> Registry::histogram_names() const {
  std::vector<std::string> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) out.push_back(name);
  return out;
}

std::string Registry::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + std::to_string(value);
  }
  out += "},\"histograms\":{";
  first = true;
  char buffer[64];
  for (const auto& [name, histogram] : histograms_) {
    if (!first) out += ",";
    first = false;
    std::snprintf(buffer, sizeof(buffer), "%.6f", histogram.mean());
    out += "\"" + name + "\":{\"count\":" + std::to_string(histogram.total_count()) +
           ",\"mean\":" + buffer;
    const std::uint64_t p50 = histogram.empty() ? 0 : histogram.quantile(0.5);
    const std::uint64_t p99 = histogram.empty() ? 0 : histogram.quantile(0.99);
    out += ",\"p50\":" + std::to_string(p50) + ",\"p99\":" + std::to_string(p99) +
           ",\"max\":" + std::to_string(histogram.max_value()) + "}";
  }
  out += "}}";
  return out;
}

void Registry::reset() {
  for (auto& [name, value] : counters_) value = 0;
  for (auto& [name, histogram] : histograms_) histogram = metrics::Histogram{};
}

}  // namespace hours::trace
