// Reusable ring-invariant assertions for the partition-healing test, the
// fault-schedule fuzz harness, and the parallel sweep orchestrator
// (sim/fuzz_cases.hpp) that fans fuzz seeds across the job system.
//
// After every fault window lifts and the protocol quiesces, a RingSimulation
// must sit at its no-fault fixpoint restricted to alive nodes:
//   * no pointer dangles at a dead node,
//   * successor/predecessor symmetry: ccw(cw_succ(i)) == i,
//   * the cw pointers form a single cycle covering every alive node,
//   * every live-origin query with a live target delivers.
// Violations come back as human-readable strings (empty vector = healthy)
// so a fuzz failure can print exactly which invariant broke and where.
#pragma once

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "sim/ring_protocol.hpp"

namespace hours::sim::invariants {

/// Structural ring invariants over the alive population.
inline std::vector<std::string> ring_invariant_violations(const RingSimulation& ring) {
  const std::uint32_t n = ring.config().size;
  std::vector<std::string> out;

  std::uint32_t alive_count = 0;
  for (ids::RingIndex i = 0; i < n; ++i) {
    if (ring.alive(i)) ++alive_count;
  }
  if (alive_count == 0) {
    out.push_back("no alive nodes");
    return out;
  }

  for (ids::RingIndex i = 0; i < n; ++i) {
    if (!ring.alive(i)) continue;
    const ids::RingIndex succ = ring.cw_successor(i);
    const ids::RingIndex ccw = ring.ccw_neighbor(i);
    std::ostringstream os;
    if (!ring.alive(succ)) {
      os << "node " << i << " cw successor dangles at dead node " << succ;
      out.push_back(os.str());
      continue;
    }
    if (!ring.alive(ccw)) {
      os << "node " << i << " ccw neighbor dangles at dead node " << ccw;
      out.push_back(os.str());
      continue;
    }
    if (alive_count > 1 && ring.ccw_neighbor(succ) != i) {
      os << "asymmetry: node " << i << " -> cw " << succ << ", but node " << succ
         << " -> ccw " << ring.ccw_neighbor(succ);
      out.push_back(os.str());
    }
  }

  if (!ring.ring_connected()) {
    out.push_back("cw pointers do not form a single cycle over the alive nodes");
  }
  return out;
}

/// Canonical serialization of every alive node's (cw, ccw) pointer pair.
/// Two runs converged to the same fixpoint compare byte-identical — used to
/// show a healed partition is indistinguishable from a never-partitioned run.
inline std::string pointer_table_fingerprint(const RingSimulation& ring) {
  std::ostringstream os;
  for (ids::RingIndex i = 0; i < ring.config().size; ++i) {
    if (!ring.alive(i)) continue;
    os << i << "->" << ring.cw_successor(i) << "/" << ring.ccw_neighbor(i) << ";";
  }
  return os.str();
}

/// Injects an in-network query for each (origin, target) pair whose ends are
/// both alive, runs the simulator to let them settle, and reports any that
/// failed to deliver. Pairs with a dead end are skipped, not failed.
inline std::vector<std::string> query_delivery_violations(
    RingSimulation& ring, const std::vector<std::pair<ids::RingIndex, ids::RingIndex>>& pairs,
    Ticks settle_ticks = 0) {
  std::vector<std::pair<std::uint64_t, std::pair<ids::RingIndex, ids::RingIndex>>> issued;
  for (const auto& p : pairs) {
    if (!ring.alive(p.first) || !ring.alive(p.second)) continue;
    issued.emplace_back(ring.inject_query(p.first, p.second), p);
  }
  ring.simulator().run(settle_ticks != 0 ? settle_ticks : 30 * ring.config().probe_period);

  std::vector<std::string> out;
  for (const auto& [qid, p] : issued) {
    const auto& outcome = ring.query(qid);
    if (outcome.done && outcome.delivered) continue;
    std::ostringstream os;
    os << "query " << p.first << " -> " << p.second << " "
       << (outcome.done ? "terminated undelivered" : "never settled");
    out.push_back(os.str());
  }
  return out;
}

}  // namespace hours::sim::invariants
