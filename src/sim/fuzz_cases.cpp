#include "sim/fuzz_cases.hpp"

#include <sstream>
#include <utility>

#include "metrics/json_writer.hpp"
#include "rng/xoshiro256.hpp"
#include "sim/ring_invariants.hpp"
#include "sim/snapshotter.hpp"
#include "snapshot/json.hpp"
#include "trace/event.hpp"
#include "trace/ring_buffer_sink.hpp"
#include "trace/sink.hpp"
#include "util/contracts.hpp"

namespace hours::sim::fuzz {

namespace {

Ticks ticks_between(rng::Xoshiro256& g, Ticks lo, Ticks hi) {
  HOURS_EXPECTS(hi > lo);
  return lo + g.below(hi - lo);
}

}  // namespace

FuzzCase generate_case(std::uint64_t seed) {
  rng::Xoshiro256 g{seed};
  FuzzCase c;

  const auto n = static_cast<std::uint32_t>(10 + g.below(7));  // 10..16 nodes
  c.config.size = n;
  c.config.params.design = overlay::Design::kEnhanced;
  c.config.params.k = static_cast<std::uint32_t>(2 + g.below(2));
  c.config.params.q = 2;
  c.config.params.seed = seed * 0x9E3779B97F4A7C15ULL + 1;
  c.config.seed = seed;
  // Loss episodes and flapping produce spurious single misses; require two
  // consecutive misses before declaring a neighbor dead.
  c.config.probe_failure_threshold = 2;
  // Every third seed arms the gossip liveness plane, so the invariant
  // sweep and the snapshot oracle both cover digest piggybacking and the
  // gossip-mode snapshot format. Stale rumors about revived nodes self-heal
  // through suspicion_refresh, so convergence demands are unchanged.
  if (seed % 3 == 0) c.config.liveness.mode = liveness::Mode::kGossip;

  // Crashes: 0..2, all recovering before the horizon.
  const auto crashes = g.below(3);
  for (std::uint64_t i = 0; i < crashes; ++i) {
    const Ticks at = ticks_between(g, 1'000, kFaultHorizon - 9'000);
    c.plan.crash(static_cast<std::uint32_t>(g.below(n)), at,
                 at + ticks_between(g, 2'000, 8'000));
  }

  // Flapping node: up to 3 down/up cycles, finished before the horizon.
  if (g.bernoulli(0.4)) {
    const auto cycles = static_cast<std::uint32_t>(1 + g.below(3));
    const Ticks down = ticks_between(g, 500, 2'000);
    const Ticks up = ticks_between(g, 1'500, 3'500);
    const Ticks span = cycles * (down + up);
    c.plan.flap(static_cast<std::uint32_t>(g.below(n)),
                ticks_between(g, 1'000, kFaultHorizon - span), down, up, cycles);
  }

  // Partitions: 0..2 windows, biased toward contiguous arc splits (the
  // hierarchy-realistic shape); always healing.
  const auto partitions = g.below(3);
  for (std::uint64_t i = 0; i < partitions; ++i) {
    std::vector<std::uint32_t> a;
    std::vector<std::uint32_t> b;
    if (g.bernoulli(0.75)) {
      // Contiguous arc [start, start+len) vs the rest.
      const auto start = g.below(n);
      const auto len = 2 + g.below(n - 3);
      for (std::uint32_t j = 0; j < n; ++j) {
        const bool in_arc = ((j + n - start) % n) < len;
        (in_arc ? a : b).push_back(j);
      }
    } else {
      // Arbitrary membership split (interleaved halves and worse).
      for (std::uint32_t j = 0; j < n; ++j) (g.bernoulli(0.5) ? a : b).push_back(j);
      if (a.empty()) a.push_back(b.back()), b.pop_back();
      if (b.empty()) b.push_back(a.back()), a.pop_back();
    }
    const Ticks at = ticks_between(g, 1'000, kFaultHorizon - 12'000);
    c.plan.partition({std::move(a), std::move(b)}, at,
                     at + ticks_between(g, 3'000, 11'000));
  }

  // Individual link cuts: 0..3, always healing.
  const auto cuts = g.below(4);
  for (std::uint64_t i = 0; i < cuts; ++i) {
    const auto x = static_cast<std::uint32_t>(g.below(n));
    auto y = static_cast<std::uint32_t>(g.below(n));
    if (y == x) y = (y + 1) % n;
    const Ticks at = ticks_between(g, 500, kFaultHorizon - 8'000);
    c.plan.cut_link(x, y, at, at + ticks_between(g, 1'000, 7'000));
  }

  // A lossy-link episode overlapping whatever else is in flight.
  if (g.bernoulli(0.35)) {
    const Ticks from = ticks_between(g, 1'000, kFaultHorizon - 9'000);
    c.plan.loss_episode(0.05 + g.uniform() * 0.15, from,
                        from + ticks_between(g, 2'000, 8'000));
  }

  return c;
}

std::string describe_config(const RingSimConfig& cfg) {
  std::ostringstream os;
  os << "size=" << cfg.size << " k=" << cfg.params.k << " q=" << cfg.params.q
     << " table_seed=" << cfg.params.seed << " sim_seed=" << cfg.seed
     << " probe_failure_threshold=" << cfg.probe_failure_threshold
     << " liveness=" << (cfg.liveness.mode == liveness::Mode::kGossip ? "gossip" : "probe_only");
  return os.str();
}

std::vector<std::string> run_case(const FuzzCase& c, bool traced) {
  RingSimulation ring{c.config};
  trace::Tracer tracer;
  trace::RingBufferSink events{2048};
  if (traced) {
    ring.set_tracer(&tracer);
    tracer.add_sink(&events);
  }
  ring.start();
  FaultInjector injector{make_fault_target(ring), c.plan};
  if (traced) injector.set_tracer(&tracer);
  injector.arm();
  ring.simulator().run(kFaultHorizon + kSettlePeriods * c.config.probe_period);

  auto violations = invariants::ring_invariant_violations(ring);
  if (traced) {
    // Probing alone guarantees traffic, so a silent stream means the
    // instrumentation came unhooked.
    if (tracer.events_emitted() == 0) {
      violations.push_back("traced run emitted no events");
    }
    std::string error;
    for (const auto& event : events.events()) {
      if (!trace::validate_event_line(trace::to_json_line(event), &error)) {
        violations.push_back("schema-invalid event: " + trace::to_json_line(event) + " (" +
                             error + ")");
        break;
      }
    }
  }
  if (!violations.empty()) return violations;  // queries would only add noise

  // Sample random query pairs over the survivors (permanent faults are never
  // generated here, so "survivors" is everyone — but stay defensive).
  rng::Xoshiro256 g{c.config.seed ^ 0xC0FFEEULL};
  std::vector<std::pair<ids::RingIndex, ids::RingIndex>> pairs;
  for (int i = 0; i < 6; ++i) {
    const auto from = static_cast<ids::RingIndex>(g.below(c.config.size));
    auto to = static_cast<ids::RingIndex>(g.below(c.config.size));
    if (to == from) to = (to + 1) % c.config.size;
    pairs.emplace_back(from, to);
  }
  return invariants::query_delivery_violations(ring, pairs);
}

std::vector<std::string> run_snapshot_oracle(const FuzzCase& c, std::uint64_t seed) {
  const Ticks total = kFaultHorizon + kSettlePeriods * c.config.probe_period;
  // Pause somewhere inside the fault window, where the most state is in
  // flight; derived from the seed so reproduction is exact.
  rng::Xoshiro256 g{seed ^ 0x534E4150ULL};  // "SNAP"
  const Ticks pause = 1 + g.below(kFaultHorizon);

  std::vector<std::string> violations;
  const auto fail = [&violations](std::string what) {
    violations.push_back("snapshot oracle: " + std::move(what));
  };

  // Run A: uninterrupted.
  std::string final_a;
  {
    RingSimulation ring{c.config};
    ring.start();
    FaultInjector injector{make_fault_target(ring), c.plan};
    injector.arm();
    Snapshotter snap{ring.simulator()};
    snap.add(ring);
    snap.add(injector);
    ring.simulator().run(total);
    if (const auto e = snap.save_string(final_a); !e.empty()) {
      fail("continuous run unsaveable at quiescence: " + e);
      return violations;
    }
  }

  // Run B: pause, save, restore into fresh objects, continue.
  std::string at_pause;
  {
    RingSimulation ring{c.config};
    ring.start();
    FaultInjector injector{make_fault_target(ring), c.plan};
    injector.arm();
    Snapshotter snap{ring.simulator()};
    snap.add(ring);
    snap.add(injector);
    ring.simulator().run(pause);
    if (const auto e = snap.save_string(at_pause); !e.empty()) {
      fail("save at t=" + std::to_string(pause) + " failed: " + e);
      return violations;
    }
  }
  {
    snapshot::Json doc;
    std::string error;
    if (!snapshot::parse_json(at_pause, doc, &error)) {
      fail("saved document does not re-parse: " + error);
      return violations;
    }
    RingSimulation ring{c.config};  // neither started nor armed: restored instead
    FaultInjector injector{make_fault_target(ring), c.plan};
    Snapshotter snap{ring.simulator()};
    snap.add(ring);
    snap.add(injector);
    if (const auto e = snap.restore(doc); !e.empty()) {
      fail("restore at t=" + std::to_string(pause) + " failed: " + e);
      return violations;
    }
    std::string resaved;
    if (const auto e = snap.save_string(resaved); !e.empty()) {
      fail("resave after restore failed: " + e);
      return violations;
    }
    if (resaved != at_pause) {
      fail("restore -> save is not the identity at t=" + std::to_string(pause));
    }
    ring.simulator().run(total - ring.simulator().now());
    std::string final_b;
    if (const auto e = snap.save_string(final_b); !e.empty()) {
      fail("restored run unsaveable at quiescence: " + e);
      return violations;
    }
    if (final_b != final_a) {
      fail("restored run diverged from continuous run (paused at t=" +
           std::to_string(pause) + ")");
    }
  }
  return violations;
}

SeedResult run_seed(std::uint64_t seed, const SeedOptions& options) {
  SeedResult result;
  result.seed = seed;
  const FuzzCase c = generate_case(seed);
  // Every fifth seed (and any pinned repro) runs with tracing attached:
  // wide enough to catch instrumentation regressions under arbitrary fault
  // overlap, sparse enough not to slow the default sweep.
  result.traced = options.force_traced || seed % 5 == 0;
  result.violations = run_case(c, result.traced);
  // Snapshot-equivalence oracle on a sampled subset (the case runs twice
  // more, so sampling keeps the default sweep fast).
  result.snapshot_checked =
      options.force_snapshot ||
      (options.snapshot_stride != 0 && seed % options.snapshot_stride == 0);
  if (result.snapshot_checked) {
    auto divergences = run_snapshot_oracle(c, seed);
    result.violations.insert(result.violations.end(),
                             std::make_move_iterator(divergences.begin()),
                             std::make_move_iterator(divergences.end()));
  }
  return result;
}

std::string sweep_report_json(const std::vector<SeedResult>& results) {
  metrics::JsonWriter json;
  std::uint64_t traced = 0;
  std::uint64_t snapshot_checked = 0;
  std::uint64_t failing = 0;
  for (const auto& r : results) {
    if (r.traced) ++traced;
    if (r.snapshot_checked) ++snapshot_checked;
    if (!r.violations.empty()) ++failing;
  }
  json.begin_object();
  json.field("report", "fuzz_sweep");
  json.field("seeds", static_cast<std::uint64_t>(results.size()));
  json.field("traced", traced);
  json.field("snapshot_checked", snapshot_checked);
  json.field("failing_seeds", failing);
  json.field("clean", failing == 0);
  json.key("results");
  json.begin_array();
  for (const auto& r : results) {
    json.begin_object();
    json.field("seed", r.seed);
    json.field("traced", r.traced);
    json.field("snapshot_checked", r.snapshot_checked);
    if (!r.violations.empty()) {
      json.key("violations");
      json.begin_array();
      for (const auto& v : r.violations) json.value(v);
      json.end_array();
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

}  // namespace hours::sim::fuzz
