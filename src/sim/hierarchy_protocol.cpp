#include "sim/hierarchy_protocol.hpp"

#include <algorithm>

#include "ids/ring.hpp"
#include "overlay/table_builder.hpp"
#include "rng/splitmix64.hpp"
#include "snapshot/event_kinds.hpp"
#include "snapshot/registry_io.hpp"
#include "util/contracts.hpp"

namespace hours::sim {

namespace {

std::uint32_t total_nodes(const std::vector<std::uint32_t>& fanout) {
  std::uint64_t total = 1;
  std::uint64_t level_nodes = 1;
  for (const auto f : fanout) {
    level_nodes *= f;
    total += level_nodes;
    HOURS_EXPECTS(total < 5'000'000);  // event engine is for protocol-scale trees
  }
  return static_cast<std::uint32_t>(total);
}

std::uint64_t overlay_seed(std::uint64_t base, const hierarchy::NodePath& parent_path) {
  std::uint64_t seed = rng::mix64(base, 0x6576656E74ULL /* "event" */);
  for (const auto index : parent_path) seed = rng::mix64(seed, index);
  return seed;
}

}  // namespace

bool TreeTopology::consistent() const noexcept {
  if (child_counts.empty()) return false;
  std::uint64_t total = 1;
  for (const auto c : child_counts) {
    total += c;
    if (total >= 5'000'000) return false;  // event engine is for protocol-scale trees
  }
  return total == child_counts.size();
}

TreeTopology topology_from_fanout(const std::vector<std::uint32_t>& fanout) {
  TreeTopology topology;
  topology.child_counts.reserve(total_nodes(fanout));
  std::uint64_t level_nodes = 1;
  for (const auto f : fanout) {
    topology.child_counts.insert(topology.child_counts.end(), level_nodes, f);
    level_nodes *= f;
  }
  topology.child_counts.insert(topology.child_counts.end(), level_nodes, 0);  // leaves
  return topology;
}

HierarchySimulation::HierarchySimulation(HierarchySimConfig config)
    : config_(std::move(config)),
      liveness_(config_.liveness, config_.suspicion_ttl),
      transport_(sim_, config_.transport, total_nodes(config_.fanout), config_.seed),
      queries_delivered_(registry_.counter("hier.queries_delivered")),
      queries_failed_(registry_.counter("hier.queries_failed")),
      hop_timeouts_(registry_.counter("hier.hop_timeouts")),
      delivered_hops_(&registry_.histogram("hier.delivered_hops")) {
  HOURS_EXPECTS(!config_.fanout.empty());
  build(topology_from_fanout(config_.fanout));
}

HierarchySimulation::HierarchySimulation(HierarchySimConfig config, const TreeTopology& topology)
    : config_(std::move(config)),
      liveness_(config_.liveness, config_.suspicion_ttl),
      transport_(sim_, config_.transport, static_cast<std::uint32_t>(topology.child_counts.size()),
                 config_.seed),
      queries_delivered_(registry_.counter("hier.queries_delivered")),
      queries_failed_(registry_.counter("hier.queries_failed")),
      hop_timeouts_(registry_.counter("hier.hop_timeouts")),
      delivered_hops_(&registry_.histogram("hier.delivered_hops")) {
  build(topology);
}

void HierarchySimulation::build(const TreeTopology& topology) {
  HOURS_EXPECTS(topology.consistent());
  config_.params.validate();

  // Breadth-first materialization into flat index tables: `child_counts` is
  // indexed by the very ids being assigned (children of node i appear after
  // every node j <= i has placed its children), so a single pass suffices
  // and children of each node get contiguous ids — a sibling set is the id
  // range [sibling_base, sibling_base + ring_size). Five flat vectors is
  // the whole topology; no per-node objects, no paths stored.
  const auto n = static_cast<std::uint32_t>(topology.child_counts.size());
  parent_.assign(n, 0);
  first_child_.assign(n, 0);
  child_count_.assign(n, 0);
  sibling_base_.assign(n, 0);
  ring_size_.assign(n, 1);
  level_.assign(n, 0);
  behavior_.assign(n, static_cast<std::uint8_t>(overlay::NodeBehavior::kHonest));

  std::uint32_t cursor = 1;  // next id to hand out
  for (std::uint32_t id = 0; id < n; ++id) {
    HOURS_EXPECTS(id < cursor);  // counts describe a connected tree
    const std::uint32_t count = topology.child_counts[id];
    if (count == 0) continue;
    first_child_[id] = cursor;
    child_count_[id] = count;
    for (std::uint32_t j = 0; j < count; ++j) {
      const std::uint32_t child = cursor + j;
      parent_[child] = id;
      sibling_base_[child] = cursor;
      ring_size_[child] = count;
      level_[child] = static_cast<std::uint16_t>(level_[id] + 1);
    }
    cursor += count;
  }
  HOURS_EXPECTS(cursor == n);

  transport_.set_handler([this](std::uint32_t to, const Transport<Message>::Envelope& env) {
    handle(to, env.payload);
  });
  transport_.set_snapshot_codec(
      [](const Message& msg, std::vector<std::uint64_t>& out) { encode_message(msg, out); },
      [](const std::uint64_t* words, std::size_t count) { return decode_message(words, count); });
  transport_.set_continuation_runner(
      [this](const snapshot::Described& cont) { run_continuation(cont); });
  // Described-only events (deliveries, ack timeouts, protocol continuations)
  // dispatch through here — the hot path, no closures involved.
  sim_.set_runner([this](std::uint32_t kind, const std::uint64_t* args, std::size_t count) {
    if (kind >= 0x100 && kind <= 0x1FF) {
      transport_.run_described(kind, args, count);
      return;
    }
    run_continuation(kind, args, count);
  });
  if (liveness_.gossip_enabled()) {
    digests_sent_ = registry_.counter("hier.liveness_digests_sent");
    digest_entries_sent_ = registry_.counter("hier.liveness_digest_entries_sent");
    gossip_adopted_ = registry_.counter("hier.liveness_gossip_adopted");
    transport_.set_digest_hooks(
        [this](std::uint32_t from, std::uint32_t /*to*/, std::vector<std::uint64_t>& out) {
          build_digest_words(from, out);
        },
        [this](std::uint32_t to, std::uint32_t from, const std::uint64_t* words,
               std::size_t count) { apply_digest_words(to, from, words, count); });
  }
}

const overlay::RoutingTable& HierarchySimulation::table_of(std::uint32_t id) const {
  const auto it = tables_.find(id);
  if (it != tables_.end()) return it->second;
  if (id == 0) {  // the root has no sibling overlay
    return tables_.emplace(0, overlay::RoutingTable{0, 1}).first->second;
  }
  // One randomized overlay per sibling set (Algorithm 1), built on first
  // touch. Nephew pointers are sampled against each sibling's actual child
  // count; a ring whose members are all leaves skips nephew sampling
  // entirely (matching the uniform constructor's leaf level).
  const std::uint32_t base = sibling_base_[id];
  const std::uint32_t ring = ring_size_[id];
  bool any_children = false;
  for (std::uint32_t j = 0; j < ring; ++j) {
    if (child_count_[base + j] > 0) {
      any_children = true;
      break;
    }
  }
  overlay::OverlayParams params = config_.params;
  params.seed = overlay_seed(config_.seed, path_of(parent_[id]));
  auto table = overlay::build_routing_table(
      ring, id - base, params,
      any_children ? overlay::ChildCountFn{[this, base](ids::RingIndex j) {
        return child_count_[base + j];
      }}
                   : overlay::ChildCountFn{});
  return tables_.emplace(id, std::move(table)).first->second;
}

std::int64_t HierarchySimulation::find_id(const hierarchy::NodePath& path) const {
  std::uint32_t id = 0;
  for (const auto index : path) {
    if (index >= child_count_[id]) return -1;
    id = first_child_[id] + index;
  }
  return id;
}

std::uint32_t HierarchySimulation::id_of(const hierarchy::NodePath& path) const {
  const std::int64_t id = find_id(path);
  HOURS_EXPECTS(id >= 0);
  return static_cast<std::uint32_t>(id);
}

hierarchy::NodePath HierarchySimulation::path_of(std::uint32_t id) const {
  HOURS_EXPECTS(id < node_count());
  hierarchy::NodePath out(level_[id]);
  std::uint32_t walk = id;
  for (std::size_t l = level_[id]; l > 0; --l) {
    out[l - 1] = static_cast<ids::RingIndex>(walk - sibling_base_[walk]);
    walk = parent_[walk];
  }
  return out;
}

bool HierarchySimulation::upward_prefix(std::uint32_t id, std::size_t drop,
                                        const hierarchy::NodePath& dest) const {
  const std::size_t level = level_[id];
  HOURS_EXPECTS(drop <= level);
  const std::size_t prefix_len = level - drop;
  if (prefix_len > dest.size()) return false;
  std::uint32_t walk = id;
  for (std::size_t l = level; l > 0; --l) {
    const auto index = static_cast<ids::RingIndex>(walk - sibling_base_[walk]);
    if (l <= prefix_len && index != dest[l - 1]) return false;
    walk = parent_[walk];
  }
  return true;
}

void HierarchySimulation::kill(const hierarchy::NodePath& path) { kill_id(id_of(path)); }
void HierarchySimulation::revive(const hierarchy::NodePath& path) { revive_id(id_of(path)); }
bool HierarchySimulation::alive(const hierarchy::NodePath& path) const {
  return alive_id(id_of(path));
}

void HierarchySimulation::kill_id(std::uint32_t id) { transport_.set_alive(id, false); }

void HierarchySimulation::revive_id(std::uint32_t id) {
  transport_.set_alive(id, true);
  // Peers would un-suspect a revived node after its next probe round; the
  // query engine has no probes, so model that refresh directly.
  liveness_.clear_peer(id);
}

bool HierarchySimulation::alive_id(std::uint32_t id) const { return transport_.alive(id); }

void HierarchySimulation::set_behavior(const hierarchy::NodePath& path,
                                       overlay::NodeBehavior behavior) {
  set_behavior_id(id_of(path), behavior);
}

void HierarchySimulation::set_behavior_id(std::uint32_t id, overlay::NodeBehavior behavior) {
  HOURS_EXPECTS(id < node_count());
  behavior_[id] = static_cast<std::uint8_t>(behavior);
}

std::uint64_t HierarchySimulation::inject_query(const hierarchy::NodePath& dest,
                                                const hierarchy::NodePath& start) {
  HOURS_EXPECTS(find_id(dest) >= 0);
  const auto start_id = id_of(start);
  HOURS_EXPECTS(transport_.alive(start_id));

  const std::uint64_t qid = next_qid_++;
  queries_[qid] = QueryOutcome{};
  HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                            .type = trace::EventType::kQuerySubmit,
                            .node = start_id,
                            .peer = id_of(dest),
                            .level = static_cast<std::int32_t>(start.size()),
                            .causal = qid});
  Message msg;
  msg.qid = qid;
  msg.dest = dest;
  snapshot::Described submit{snapshot::kHierQueryStart, {start_id}};
  encode_message(msg, submit.args);
  sim_.schedule(0, submit);  // described-only: dispatched through the runner
  return qid;
}

const HierarchySimulation::QueryOutcome& HierarchySimulation::query(std::uint64_t qid) const {
  const auto it = queries_.find(qid);
  HOURS_EXPECTS(it != queries_.end());
  return it->second;
}

HierarchySimulation::QueryOutcome HierarchySimulation::run_query(
    const hierarchy::NodePath& dest, const hierarchy::NodePath& start,
    std::size_t max_events) {
  const auto qid = inject_query(dest, start);
  // No time limit: the engine has no periodic timers, so the queue drains
  // when the query (and any forks) terminate. A time limit would fast-
  // forward the clock past suspicion expiries between back-to-back queries.
  sim_.run(/*limit=*/0, max_events);
  return query(qid);
}

void HierarchySimulation::finish(std::uint64_t qid, bool delivered, std::uint32_t hops) {
  // Failure is provisional: a lost ack forks the query (the sender retries
  // while the original copy keeps forwarding), and one fork giving up must
  // not mask another fork delivering. Success is final.
  auto& outcome = queries_[qid];
  if (outcome.done && (outcome.delivered || !delivered)) return;
  outcome.done = true;
  outcome.delivered = delivered;
  outcome.hops = hops;
  outcome.completed_at = sim_.now();
  if (delivered) {
    queries_delivered_.inc();
    delivered_hops_->add(hops);
  } else {
    queries_failed_.inc();
  }
  HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                            .type = delivered ? trace::EventType::kQueryDelivered
                                              : trace::EventType::kQueryFailed,
                            .causal = qid,
                            .value = hops});
}

bool HierarchySimulation::is_suspected(std::uint32_t at, std::uint32_t id) const {
  return liveness_.is_suspected(at, id, sim_.now());
}

void HierarchySimulation::suspect(std::uint32_t at, std::uint32_t peer) {
  liveness_.suspect(at, peer, sim_.now());
  HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                            .type = trace::EventType::kSuspect,
                            .node = at,
                            .peer = peer,
                            .level = static_cast<std::int32_t>(level_[at])});
}

// -- gossip evidence source ---------------------------------------------------------

void HierarchySimulation::build_digest_words(std::uint32_t from,
                                             std::vector<std::uint64_t>& out) {
  const auto digest = liveness_.build_digest(from, sim_.now());
  if (digest.empty()) return;
  for (const auto& entry : digest) {
    out.push_back(entry.peer);
    out.push_back(entry.since);
  }
  digests_sent_->inc();
  digest_entries_sent_->inc(digest.size());
  HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                            .type = trace::EventType::kLivenessDigestSent,
                            .node = from,
                            .level = static_cast<std::int32_t>(level_[from]),
                            .value = digest.size()});
}

void HierarchySimulation::apply_digest_words(std::uint32_t at, std::uint32_t from,
                                             const std::uint64_t* words, std::size_t count) {
  HOURS_EXPECTS(count % 2 == 0);
  const Ticks now = sim_.now();
  // Rumors are only adopted about the receiver's own sibling ring: that is
  // where its routing decisions consult suspicion, and the scoping keeps a
  // million-node tree's gossip state proportional to actual traffic.
  const std::uint32_t base = sibling_base_[at];
  const std::uint32_t limit = base + ring_size_[at];
  std::uint64_t adopted = 0;
  for (std::size_t k = 0; k + 1 < count; k += 2) {
    const auto peer = static_cast<std::uint32_t>(words[k]);
    const Ticks since = words[k + 1];
    // Never adopt suspicion of ourselves or of the sender (this very frame
    // proves the sender alive); drop rumors past the propagation horizon.
    if (peer == at || peer == from || peer < base || peer >= limit) continue;
    if (!liveness_.within_horizon(since, now)) continue;
    if (!liveness_.adopt(at, peer, since, now)) continue;
    ++adopted;
    gossip_adopted_->inc();
    HOURS_TRACE_EMIT(trace_, {.at = now,
                              .type = trace::EventType::kLivenessGossipSuspect,
                              .node = at,
                              .peer = peer,
                              .level = static_cast<std::int32_t>(level_[at]),
                              .value = since});
  }
  HOURS_TRACE_EMIT(trace_, {.at = now,
                            .type = trace::EventType::kLivenessDigestApplied,
                            .node = at,
                            .peer = from,
                            .level = static_cast<std::int32_t>(level_[at]),
                            .value = adopted});
}

std::vector<std::uint32_t> HierarchySimulation::candidates_at(std::uint32_t at,
                                                              Message& msg) const {
  std::vector<std::uint32_t> out;
  const auto& dest = msg.dest;
  const std::size_t level = level_[at];
  auto push = [&](std::uint32_t id) {
    if (!is_suspected(at, id) &&
        std::find(out.begin(), out.end(), id) == out.end()) {
      out.push_back(id);
      return true;
    }
    return false;
  };

  if (level < dest.size() && upward_prefix(at, 0, dest)) {
    // Algorithm 2 at an ancestor: the on-path child first; on its silence,
    // alive children nearest counter-clockwise of it serve as overlay
    // entrances (footnote 4 / line 6).
    const ids::RingIndex next_index = dest[level];
    HOURS_EXPECTS(next_index < child_count_[at]);
    push(first_child_[at] + next_index);
    for (std::uint32_t step = 1; step < child_count_[at]; ++step) {
      push(first_child_[at] +
           ids::counter_clockwise_step(next_index, step, child_count_[at]));
    }
    return out;
  }

  if (level == 0 || level > dest.size() || !upward_prefix(at, 1, dest)) {
    // Unrelated position (bootstrap start below/aside): climb.
    if (level > 0) push(parent_[at]);
    return out;
  }

  // Algorithm 3: overlay forwarding toward OD = dest[level-1] among
  // siblings.
  const auto self_index = static_cast<ids::RingIndex>(at - sibling_base_[at]);
  const std::uint32_t ring = ring_size_[at];
  const ids::RingIndex od = dest[level - 1];
  const std::uint32_t d_od = ids::clockwise_distance(self_index, od, ring);
  const overlay::RoutingTable& table = table_of(at);

  // Rule 1: OD in the routing table — try it, then its nephews (children of
  // the OD, i.e. the next-level overlay), closest to the next-level OD
  // first.
  if (const overlay::TableEntry* entry = table.find(od)) {
    push(sibling_id(at, od));
    if (level < dest.size() && !entry->nephews.empty()) {
      const auto od_id = sibling_id(at, od);
      std::vector<ids::RingIndex> ordered = entry->nephews;
      const ids::RingIndex next_od = dest[level];
      std::sort(ordered.begin(), ordered.end(), [&](ids::RingIndex a, ids::RingIndex b) {
        return ids::clockwise_distance(a, next_od, child_count_[od_id]) <
               ids::clockwise_distance(b, next_od, child_count_[od_id]);
      });
      for (const auto nephew : ordered) push(first_child_[od_id] + nephew);
    }
  }

  if (!msg.backward) {
    // Rule 2: greedy — alive-looking entries strictly closer to the OD,
    // closest first.
    const std::size_t start_pos = table.last_before_distance(d_od);
    bool any_greedy = false;
    for (std::size_t pos = start_pos; pos < table.entries().size(); --pos) {
      const auto sibling = table.entries()[pos].sibling;
      if (sibling != od && push(sibling_id(at, sibling))) {
        any_greedy = true;  // an un-suspected candidate actually exists
      }
      if (pos == 0) break;
    }
    if (!any_greedy && out.empty()) {
      msg.backward = true;  // Algorithm 3 line 14
    }
  }

  if (msg.backward && config_.params.design == overlay::Design::kEnhanced) {
    // Rule 3: counter-clockwise steps. With a repaired ring the node's CCW
    // pointer reaches the nearest alive sibling (tried here in order);
    // without repair only the immediate neighbor is known.
    const std::uint32_t reach = config_.assume_ring_repaired ? ring - 1 : 1;
    for (std::uint32_t step = 1; step <= reach; ++step) {
      push(sibling_id(at, ids::counter_clockwise_step(self_index, step, ring)));
    }
  }
  return out;
}

trace::EventType HierarchySimulation::hop_kind(std::uint32_t at, std::uint32_t next,
                                               const Message& msg) const {
  // Parent climb and on-path descent are plain hierarchical hops; an
  // off-path child is an overlay entrance chosen to detour around a dead
  // on-path child (Algorithm 2 footnote 4). Sibling steps are overlay
  // forwarding (ring, or backward once greedy progress is exhausted), and
  // anything else is a nephew pointer exiting into the next-level overlay.
  if (next == parent_[at]) return trace::EventType::kHierHop;
  if (next >= first_child_[at] && next < first_child_[at] + child_count_[at]) {
    const std::size_t level = level_[at];
    const bool on_path = level < msg.dest.size() && upward_prefix(at, 0, msg.dest) &&
                         next == first_child_[at] + msg.dest[level];
    return on_path ? trace::EventType::kHierHop : trace::EventType::kDetourEnter;
  }
  if (next >= sibling_base_[at] && next < sibling_base_[at] + ring_size_[at]) {
    return msg.backward ? trace::EventType::kBackwardHop : trace::EventType::kRingHop;
  }
  return trace::EventType::kNephewExit;
}

std::vector<std::uint32_t> HierarchySimulation::route_candidates(
    std::uint32_t at, const hierarchy::NodePath& dest, bool& backward) const {
  HOURS_EXPECTS(at < node_count());
  Message probe;
  probe.dest = dest;
  probe.backward = backward;
  auto out = candidates_at(at, probe);
  backward = probe.backward;
  return out;
}

void HierarchySimulation::client_attempt(std::uint32_t at, std::uint32_t to,
                                         std::function<void()> on_ack,
                                         std::function<void()> on_timeout) {
  HOURS_EXPECTS(at < node_count() && to < node_count());
  Message hop;
  hop.client_hop = true;
  transport_.send_expect_ack(at, to, hop, std::move(on_ack), std::move(on_timeout));
}

void HierarchySimulation::handle(std::uint32_t at, const Message& msg) {
  if (msg.client_hop) return;  // the transport-level ack is the whole exchange

  auto& outcome = queries_[msg.qid];
  if (outcome.done && outcome.delivered) return;  // already answered

  if (level_[at] == msg.dest.size() && upward_prefix(at, 0, msg.dest)) {
    finish(msg.qid, true, msg.hops);
    return;
  }

  // Insiders (Section 5.3). The transport already acked, so the upstream
  // sender believes this hop succeeded.
  const auto behavior = static_cast<overlay::NodeBehavior>(behavior_[at]);
  if (behavior == overlay::NodeBehavior::kDropper) {
    return;  // silently swallowed; the query never settles
  }
  if (behavior == overlay::NodeBehavior::kMisrouter) {
    // Forward to a uniformly random table entry, ignoring the algorithm;
    // honest downstream nodes resume greedy forwarding.
    const overlay::RoutingTable& table = table_of(at);
    if (!table.entries().empty()) {
      const auto& entries = table.entries();
      const auto pick = entries[misroute_rng_.below(entries.size())].sibling;
      Message forwarded = msg;
      forwarded.hops += 1;
      if (forwarded.hops <= 4 * node_count() + 64) {
        transport_.send_expect_ack(at, sibling_id(at, pick), forwarded,
                                   snapshot::Described{}, snapshot::Described{});
        return;
      }
    }
    return;
  }

  Message m = msg;
  if (m.hops > 4 * node_count() + 64) {
    finish(m.qid, false, m.hops);
    return;
  }
  auto candidates = candidates_at(at, m);
  if (candidates.empty()) {
    finish(m.qid, false, m.hops);
    return;
  }
  try_candidates(at, m, std::move(candidates));
}

void HierarchySimulation::try_candidates(std::uint32_t at, Message msg,
                                         std::vector<std::uint32_t> candidates) {
  const auto& outcome = queries_[msg.qid];
  if (outcome.done && outcome.delivered) return;
  if (candidates.empty()) {
    // Every candidate timed out; re-decide with the enriched suspicion set
    // (this is where a stalled greedy flips to backward mode).
    handle(at, msg);
    return;
  }
  const std::uint32_t next = candidates.front();
  candidates.erase(candidates.begin());

  Message forwarded = msg;
  forwarded.hops += 1;
  HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                            .type = hop_kind(at, next, msg),
                            .node = at,
                            .peer = next,
                            .level = static_cast<std::int32_t>(level_[at]),
                            .causal = msg.qid,
                            .value = forwarded.hops});
  // The timeout continuation carries the PRE-hop message: the retry
  // re-decides from the state the failed attempt saw, plus the enriched
  // suspicion set.
  snapshot::Described timeout{snapshot::kHierAttemptTimeout, {at, next}};
  encode_message(msg, timeout.args);
  for (const auto candidate : candidates) timeout.args.push_back(candidate);
  transport_.send_expect_ack(at, next, forwarded, /*on_ack=*/snapshot::Described{},
                             /*on_timeout=*/std::move(timeout));
}

void HierarchySimulation::attempt_timeout(std::uint32_t at, std::uint32_t next, Message msg,
                                          std::vector<std::uint32_t> remaining) {
  suspect(at, next);
  hop_timeouts_.inc();
  queries_[msg.qid].timeouts += 1;
  HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                            .type = trace::EventType::kRetry,
                            .node = at,
                            .peer = next,
                            .causal = msg.qid});
  try_candidates(at, std::move(msg), std::move(remaining));
}

void HierarchySimulation::encode_message(const Message& msg, std::vector<std::uint64_t>& out) {
  out.reserve(out.size() + 4 + msg.dest.size());
  out.push_back(msg.qid);
  out.push_back((msg.backward ? 1ULL : 0ULL) | (msg.client_hop ? 2ULL : 0ULL));
  out.push_back(msg.hops);
  out.push_back(msg.dest.size());
  for (const auto index : msg.dest) out.push_back(index);
}

HierarchySimulation::Message HierarchySimulation::decode_message(const std::uint64_t* words,
                                                                 std::size_t count) {
  HOURS_EXPECTS(count >= 4 && count == 4 + words[3]);
  Message msg;
  msg.qid = words[0];
  msg.backward = (words[1] & 1ULL) != 0;
  msg.client_hop = (words[1] & 2ULL) != 0;
  msg.hops = static_cast<std::uint32_t>(words[2]);
  msg.dest.reserve(static_cast<std::size_t>(words[3]));
  for (std::uint64_t i = 0; i < words[3]; ++i) {
    msg.dest.push_back(static_cast<ids::RingIndex>(words[4 + i]));
  }
  return msg;
}

void HierarchySimulation::run_continuation(std::uint32_t kind, const std::uint64_t* args,
                                           std::size_t count) {
  switch (kind) {
    case snapshot::kHierQueryStart: {
      HOURS_EXPECTS(count >= 5);
      handle(static_cast<std::uint32_t>(args[0]), decode_message(args + 1, count - 1));
      return;
    }
    case snapshot::kHierAttemptTimeout: {
      HOURS_EXPECTS(count >= 6);  // at, tried, then a >= 4-word message
      const auto at = static_cast<std::uint32_t>(args[0]);
      const auto next = static_cast<std::uint32_t>(args[1]);
      const std::size_t msg_words = 4 + static_cast<std::size_t>(args[2 + 3]);
      HOURS_EXPECTS(count >= 2 + msg_words);
      Message msg = decode_message(args + 2, msg_words);
      std::vector<std::uint32_t> remaining;
      remaining.reserve(count - 2 - msg_words);
      for (std::size_t i = 2 + msg_words; i < count; ++i) {
        remaining.push_back(static_cast<std::uint32_t>(args[i]));
      }
      attempt_timeout(at, next, std::move(msg), std::move(remaining));
      return;
    }
    default:
      HOURS_EXPECTS(!"unknown hierarchy continuation kind");
  }
}

snapshot::Json HierarchySimulation::config_json() const {
  using snapshot::Json;
  Json config = Json::object();
  Json counts = Json::array();
  for (const auto count : child_count_) {
    counts.push(Json(static_cast<std::uint64_t>(count)));
  }
  config["child_counts"] = std::move(counts);
  config["design"] = Json(static_cast<std::uint64_t>(config_.params.design));
  config["k"] = Json(static_cast<std::uint64_t>(config_.params.k));
  config["q"] = Json(static_cast<std::uint64_t>(config_.params.q));
  config["seed"] = Json(config_.seed);
  config["suspicion_ttl"] = Json(config_.suspicion_ttl);
  config["assume_ring_repaired"] =
      Json(static_cast<std::uint64_t>(config_.assume_ring_repaired ? 1 : 0));
  // Gossip mode extends the echo (and the suspicion rows in save_state);
  // probe-only snapshots keep the legacy byte layout exactly.
  if (liveness_.gossip_enabled()) {
    config["liveness_mode"] = Json(std::uint64_t{1});
    config["digest_budget"] =
        Json(static_cast<std::uint64_t>(liveness_.config().digest_budget));
    config["digest_horizon"] = Json(liveness_.config().digest_horizon);
  }
  return config;
}

snapshot::Json HierarchySimulation::save_state(std::string& error) const {
  using snapshot::Json;
  Json out = Json::object();
  out["config"] = config_json();

  Json rng = Json::array();
  for (const auto word : misroute_rng_.state()) rng.push(Json(word));
  out["misroute_rng"] = std::move(rng);
  out["next_qid"] = Json(next_qid_);

  // Sparse per-node state: honest behavior and an empty suspicion set are
  // the overwhelmingly common case. The global suspicion map is keyed
  // (node << 32 | peer), so rows come out node-ascending then
  // peer-ascending — the same order the per-node maps used to produce.
  Json behaviors = Json::array();  // rows [id, behavior]
  for (std::uint32_t id = 0; id < node_count(); ++id) {
    if (behavior_[id] != static_cast<std::uint8_t>(overlay::NodeBehavior::kHonest)) {
      Json row = Json::array();
      row.push(Json(static_cast<std::uint64_t>(id)));
      row.push(Json(static_cast<std::uint64_t>(behavior_[id])));
      behaviors.push(std::move(row));
    }
  }
  // Rows [node, peer, expiry] in probe-only mode (the legacy layout);
  // [node, peer, expiry, since, source] under gossip so a restored run
  // re-ages and re-broadcasts rumors identically.
  const bool gossip = liveness_.gossip_enabled();
  Json suspected = Json::array();
  liveness_.for_each([&suspected, gossip](liveness::NodeId node, liveness::NodeId peer,
                                          const liveness::Entry& entry) {
    Json row = Json::array();
    row.push(Json(static_cast<std::uint64_t>(node)));
    row.push(Json(static_cast<std::uint64_t>(peer)));
    row.push(Json(entry.expiry));
    if (gossip) {
      row.push(Json(entry.since));
      row.push(Json(static_cast<std::uint64_t>(entry.source)));
    }
    suspected.push(std::move(row));
  });
  out["behaviors"] = std::move(behaviors);
  out["suspected"] = std::move(suspected);

  Json queries = Json::array();
  for (const auto& [qid, outcome] : queries_) {
    Json row = Json::array();
    row.push(Json(qid));
    row.push(Json(static_cast<std::uint64_t>(outcome.done ? 1 : 0)));
    row.push(Json(static_cast<std::uint64_t>(outcome.delivered ? 1 : 0)));
    row.push(Json(static_cast<std::uint64_t>(outcome.hops)));
    row.push(Json(static_cast<std::uint64_t>(outcome.timeouts)));
    row.push(Json(outcome.completed_at));
    queries.push(std::move(row));
  }
  out["queries"] = std::move(queries);

  out["registry"] = snapshot::registry_to_json(registry_);
  out["transport"] = transport_.save_state(error);
  return out;
}

std::string HierarchySimulation::restore_state(const snapshot::Json& state) {
  using snapshot::Json;
  const Json* config = state.find("config");
  const Json* rng = state.find("misroute_rng");
  const Json* next_qid = state.find("next_qid");
  const Json* behaviors = state.find("behaviors");
  const Json* suspected = state.find("suspected");
  const Json* queries = state.find("queries");
  const Json* registry = state.find("registry");
  const Json* transport = state.find("transport");
  if (config == nullptr || rng == nullptr || !rng->is_array() || rng->items().size() != 4 ||
      next_qid == nullptr || !next_qid->is_u64() || behaviors == nullptr ||
      !behaviors->is_array() || suspected == nullptr || !suspected->is_array() ||
      queries == nullptr || !queries->is_array() || registry == nullptr ||
      transport == nullptr) {
    return "hier section malformed";
  }
  if (*config != config_json()) {
    return "hier.config does not match the running simulation";
  }
  const auto u64_row = [](const Json& row, std::size_t n) {
    if (!row.is_array() || row.items().size() != n) return false;
    for (const auto& field : row.items()) {
      if (!field.is_u64()) return false;
    }
    return true;
  };

  std::fill(behavior_.begin(), behavior_.end(),
            static_cast<std::uint8_t>(overlay::NodeBehavior::kHonest));
  liveness_.clear_all();
  for (const auto& raw : behaviors->items()) {
    if (!u64_row(raw, 2)) return "hier.behaviors entry malformed";
    const auto id = raw.items()[0].as_u64();
    const auto value = raw.items()[1].as_u64();
    if (id >= node_count() || value > static_cast<std::uint64_t>(overlay::NodeBehavior::kMisrouter)) {
      return "hier.behaviors entry out of range";
    }
    behavior_[id] = static_cast<std::uint8_t>(value);
  }
  const bool gossip = liveness_.gossip_enabled();
  for (const auto& raw : suspected->items()) {
    if (!u64_row(raw, gossip ? 5 : 3)) return "hier.suspected entry malformed";
    const auto& f = raw.items();
    const auto id = f[0].as_u64();
    const auto peer = f[1].as_u64();
    if (id >= node_count() || peer >= node_count() ||
        (gossip && f[4].as_u64() > 1)) {
      return "hier.suspected entry out of range";
    }
    liveness_.restore_row(
        static_cast<std::uint32_t>(id), static_cast<std::uint32_t>(peer),
        gossip ? liveness::Entry{f[2].as_u64(), f[3].as_u64(),
                                 static_cast<liveness::Source>(f[4].as_u64())}
               : liveness::Entry{f[2].as_u64(), 0, liveness::Source::kProbe});
  }

  for (const auto& field : rng->items()) {
    if (!field.is_u64()) return "hier.misroute_rng malformed";
  }
  rng::Xoshiro256::State words{};
  for (std::size_t i = 0; i < 4; ++i) words[i] = rng->items()[i].as_u64();
  misroute_rng_.set_state(words);
  next_qid_ = next_qid->as_u64();

  queries_.clear();
  for (const auto& raw : queries->items()) {
    if (!u64_row(raw, 6)) return "hier.queries entry malformed";
    const auto& f = raw.items();
    QueryOutcome outcome;
    outcome.done = f[1].as_u64() != 0;
    outcome.delivered = f[2].as_u64() != 0;
    outcome.hops = static_cast<std::uint32_t>(f[3].as_u64());
    outcome.timeouts = static_cast<std::uint32_t>(f[4].as_u64());
    outcome.completed_at = f[5].as_u64();
    queries_[f[0].as_u64()] = outcome;
  }

  if (std::string err = snapshot::registry_from_json(registry_, *registry); !err.empty()) {
    return "hier.registry: " + err;
  }
  if (std::string err = transport_.restore_state(*transport); !err.empty()) {
    return "hier.transport: " + err;
  }
  return "";
}

std::function<void()> HierarchySimulation::rebuild_event(const snapshot::Described& desc) {
  if (desc.kind >= 0x100 && desc.kind <= 0x1FF) return transport_.rebuild_event(desc);
  if (desc.kind >= 0x300 && desc.kind <= 0x3FF) {
    return [this, copy = desc] { run_continuation(copy); };
  }
  return nullptr;
}

}  // namespace hours::sim
