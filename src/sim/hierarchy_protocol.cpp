#include "sim/hierarchy_protocol.hpp"

#include <algorithm>

#include "ids/ring.hpp"
#include "overlay/table_builder.hpp"
#include "rng/splitmix64.hpp"
#include "util/contracts.hpp"

namespace hours::sim {

namespace {

std::uint32_t total_nodes(const std::vector<std::uint32_t>& fanout) {
  std::uint64_t total = 1;
  std::uint64_t level_nodes = 1;
  for (const auto f : fanout) {
    level_nodes *= f;
    total += level_nodes;
    HOURS_EXPECTS(total < 5'000'000);  // event engine is for protocol-scale trees
  }
  return static_cast<std::uint32_t>(total);
}

std::uint64_t overlay_seed(std::uint64_t base, const hierarchy::NodePath& parent_path) {
  std::uint64_t seed = rng::mix64(base, 0x6576656E74ULL /* "event" */);
  for (const auto index : parent_path) seed = rng::mix64(seed, index);
  return seed;
}

}  // namespace

bool TreeTopology::consistent() const noexcept {
  if (child_counts.empty()) return false;
  std::uint64_t total = 1;
  for (const auto c : child_counts) {
    total += c;
    if (total >= 5'000'000) return false;  // event engine is for protocol-scale trees
  }
  return total == child_counts.size();
}

TreeTopology topology_from_fanout(const std::vector<std::uint32_t>& fanout) {
  TreeTopology topology;
  topology.child_counts.reserve(total_nodes(fanout));
  std::uint64_t level_nodes = 1;
  for (const auto f : fanout) {
    topology.child_counts.insert(topology.child_counts.end(), level_nodes, f);
    level_nodes *= f;
  }
  topology.child_counts.insert(topology.child_counts.end(), level_nodes, 0);  // leaves
  return topology;
}

HierarchySimulation::HierarchySimulation(HierarchySimConfig config)
    : config_(std::move(config)),
      transport_(sim_, config_.transport, total_nodes(config_.fanout), config_.seed),
      queries_delivered_(registry_.counter("hier.queries_delivered")),
      queries_failed_(registry_.counter("hier.queries_failed")),
      hop_timeouts_(registry_.counter("hier.hop_timeouts")),
      delivered_hops_(&registry_.histogram("hier.delivered_hops")) {
  HOURS_EXPECTS(!config_.fanout.empty());
  build(topology_from_fanout(config_.fanout));
}

HierarchySimulation::HierarchySimulation(HierarchySimConfig config, const TreeTopology& topology)
    : config_(std::move(config)),
      transport_(sim_, config_.transport, static_cast<std::uint32_t>(topology.child_counts.size()),
                 config_.seed),
      queries_delivered_(registry_.counter("hier.queries_delivered")),
      queries_failed_(registry_.counter("hier.queries_failed")),
      hop_timeouts_(registry_.counter("hier.hop_timeouts")),
      delivered_hops_(&registry_.histogram("hier.delivered_hops")) {
  build(topology);
}

void HierarchySimulation::build(const TreeTopology& topology) {
  HOURS_EXPECTS(topology.consistent());
  config_.params.validate();

  // Breadth-first materialization: `child_counts` is indexed by the very ids
  // being assigned (children of node i appear after every node j <= i has
  // placed its children), so a single pass suffices and children of each
  // node get contiguous ids — a sibling set is the id range
  // [sibling_base, sibling_base + ring).
  nodes_.reserve(topology.child_counts.size());
  nodes_.push_back(Node{});
  nodes_[0].path = {};
  nodes_[0].parent = 0;
  id_by_path_[{}] = 0;

  for (std::uint32_t id = 0; id < topology.child_counts.size(); ++id) {
    HOURS_EXPECTS(id < nodes_.size());  // counts describe a connected tree
    const std::uint32_t count = topology.child_counts[id];
    if (count == 0) continue;
    nodes_[id].first_child = static_cast<std::uint32_t>(nodes_.size());
    nodes_[id].child_count = count;
    for (std::uint32_t j = 0; j < count; ++j) {
      Node child;
      child.path = hierarchy::child(nodes_[id].path, j);
      child.parent = id;
      child.sibling_base = nodes_[id].first_child;
      child.ring_size = count;
      id_by_path_[child.path] = static_cast<std::uint32_t>(nodes_.size());
      nodes_.push_back(std::move(child));
    }
  }
  HOURS_EXPECTS(nodes_.size() == topology.child_counts.size());

  // Routing tables: one randomized overlay per sibling set (Algorithm 1).
  // Nephew pointers are sampled against each sibling's actual child count;
  // a ring whose members are all leaves skips nephew sampling entirely
  // (matching the uniform constructor's leaf level).
  for (std::uint32_t id = 1; id < nodes_.size(); ++id) {
    Node& node = nodes_[id];
    bool any_children = false;
    for (std::uint32_t j = 0; j < node.ring_size; ++j) {
      if (nodes_[node.sibling_base + j].child_count > 0) {
        any_children = true;
        break;
      }
    }
    overlay::OverlayParams params = config_.params;
    params.seed = overlay_seed(config_.seed, nodes_[node.parent].path);
    node.table = overlay::build_routing_table(
        node.ring_size, node.path.back(), params,
        any_children ? overlay::ChildCountFn{[this, base = node.sibling_base](ids::RingIndex j) {
          return nodes_[base + j].child_count;
        }}
                     : overlay::ChildCountFn{});
  }

  transport_.set_handler([this](std::uint32_t to, const Transport<Message>::Envelope& env) {
    handle(to, env.payload);
  });
}

std::uint32_t HierarchySimulation::id_of(const hierarchy::NodePath& path) const {
  const auto it = id_by_path_.find(path);
  HOURS_EXPECTS(it != id_by_path_.end());
  return it->second;
}

const hierarchy::NodePath& HierarchySimulation::path_of(std::uint32_t id) const {
  HOURS_EXPECTS(id < nodes_.size());
  return nodes_[id].path;
}

void HierarchySimulation::kill(const hierarchy::NodePath& path) {
  transport_.set_alive(id_of(path), false);
}

void HierarchySimulation::revive(const hierarchy::NodePath& path) {
  const auto id = id_of(path);
  transport_.set_alive(id, true);
  // Peers would un-suspect a revived node after its next probe round; the
  // query engine has no probes, so model that refresh directly.
  for (auto& node : nodes_) node.suspected.erase(id);
}

bool HierarchySimulation::alive(const hierarchy::NodePath& path) const {
  return transport_.alive(id_of(path));
}

void HierarchySimulation::set_behavior(const hierarchy::NodePath& path,
                                       overlay::NodeBehavior behavior) {
  nodes_[id_of(path)].behavior = behavior;
}

std::uint64_t HierarchySimulation::inject_query(const hierarchy::NodePath& dest,
                                                const hierarchy::NodePath& start) {
  HOURS_EXPECTS(id_by_path_.count(dest) == 1);
  const auto start_id = id_of(start);
  HOURS_EXPECTS(transport_.alive(start_id));

  const std::uint64_t qid = next_qid_++;
  queries_[qid] = QueryOutcome{};
  HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                            .type = trace::EventType::kQuerySubmit,
                            .node = start_id,
                            .peer = id_of(dest),
                            .level = static_cast<std::int32_t>(start.size()),
                            .causal = qid});
  Message msg;
  msg.qid = qid;
  msg.dest = dest;
  sim_.schedule(0, [this, start_id, msg] { handle(start_id, msg); });
  return qid;
}

const HierarchySimulation::QueryOutcome& HierarchySimulation::query(std::uint64_t qid) const {
  const auto it = queries_.find(qid);
  HOURS_EXPECTS(it != queries_.end());
  return it->second;
}

HierarchySimulation::QueryOutcome HierarchySimulation::run_query(
    const hierarchy::NodePath& dest, const hierarchy::NodePath& start,
    std::size_t max_events) {
  const auto qid = inject_query(dest, start);
  // No time limit: the engine has no periodic timers, so the queue drains
  // when the query (and any forks) terminate. A time limit would fast-
  // forward the clock past suspicion expiries between back-to-back queries.
  sim_.run(/*limit=*/0, max_events);
  return query(qid);
}

void HierarchySimulation::finish(std::uint64_t qid, bool delivered, std::uint32_t hops) {
  // Failure is provisional: a lost ack forks the query (the sender retries
  // while the original copy keeps forwarding), and one fork giving up must
  // not mask another fork delivering. Success is final.
  auto& outcome = queries_[qid];
  if (outcome.done && (outcome.delivered || !delivered)) return;
  outcome.done = true;
  outcome.delivered = delivered;
  outcome.hops = hops;
  outcome.completed_at = sim_.now();
  if (delivered) {
    queries_delivered_.inc();
    delivered_hops_->add(hops);
  } else {
    queries_failed_.inc();
  }
  HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                            .type = delivered ? trace::EventType::kQueryDelivered
                                              : trace::EventType::kQueryFailed,
                            .causal = qid,
                            .value = hops});
}

bool HierarchySimulation::is_suspected(const Node& node, std::uint32_t id) const {
  const auto it = node.suspected.find(id);
  if (it == node.suspected.end()) return false;
  if (config_.suspicion_ttl != 0 && it->second <= sim_.now()) return false;  // expired
  return true;
}

void HierarchySimulation::suspect(std::uint32_t at, std::uint32_t peer) {
  Node& node = nodes_[at];
  const Ticks expiry = config_.suspicion_ttl == 0
                           ? ~Ticks{0}
                           : sim_.now() + config_.suspicion_ttl;
  node.suspected[peer] = expiry;
  HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                            .type = trace::EventType::kSuspect,
                            .node = at,
                            .peer = peer,
                            .level = static_cast<std::int32_t>(node.path.size())});
}

std::vector<std::uint32_t> HierarchySimulation::candidates_at(const Node& node,
                                                              Message& msg) const {
  std::vector<std::uint32_t> out;
  const auto& dest = msg.dest;
  const std::size_t level = node.path.size();
  auto push = [&](std::uint32_t id) {
    if (!is_suspected(node, id) &&
        std::find(out.begin(), out.end(), id) == out.end()) {
      out.push_back(id);
      return true;
    }
    return false;
  };

  if (hierarchy::is_prefix(node.path, dest) && node.path.size() < dest.size()) {
    // Algorithm 2 at an ancestor: the on-path child first; on its silence,
    // alive children nearest counter-clockwise of it serve as overlay
    // entrances (footnote 4 / line 6).
    const ids::RingIndex next_index = dest[level];
    HOURS_EXPECTS(next_index < node.child_count);
    push(node.first_child + next_index);
    for (std::uint32_t step = 1; step < node.child_count; ++step) {
      push(node.first_child +
           ids::counter_clockwise_step(next_index, step, node.child_count));
    }
    return out;
  }

  if (level == 0 || !hierarchy::is_prefix(hierarchy::parent(node.path), dest) ||
      level > dest.size()) {
    // Unrelated position (bootstrap start below/aside): climb.
    if (level > 0) push(node.parent);
    return out;
  }

  // Algorithm 3: overlay forwarding toward OD = dest[level-1] among
  // siblings.
  const ids::RingIndex self_index = node.path.back();
  const ids::RingIndex od = dest[level - 1];
  const std::uint32_t d_od = ids::clockwise_distance(self_index, od, node.ring_size);

  // Rule 1: OD in the routing table — try it, then its nephews (children of
  // the OD, i.e. the next-level overlay), closest to the next-level OD
  // first.
  if (const overlay::TableEntry* entry = node.table.find(od)) {
    push(sibling_id(node, od));
    if (level < dest.size() && !entry->nephews.empty()) {
      const auto od_node_id = sibling_id(node, od);
      const Node& od_node = nodes_[od_node_id];
      std::vector<ids::RingIndex> ordered = entry->nephews;
      const ids::RingIndex next_od = dest[level];
      std::sort(ordered.begin(), ordered.end(), [&](ids::RingIndex a, ids::RingIndex b) {
        return ids::clockwise_distance(a, next_od, od_node.child_count) <
               ids::clockwise_distance(b, next_od, od_node.child_count);
      });
      for (const auto n : ordered) push(od_node.first_child + n);
    }
  }

  if (!msg.backward) {
    // Rule 2: greedy — alive-looking entries strictly closer to the OD,
    // closest first.
    const std::size_t start_pos = node.table.last_before_distance(d_od);
    bool any_greedy = false;
    for (std::size_t pos = start_pos; pos < node.table.entries().size(); --pos) {
      const auto sibling = node.table.entries()[pos].sibling;
      if (sibling != od && push(sibling_id(node, sibling))) {
        any_greedy = true;  // an un-suspected candidate actually exists
      }
      if (pos == 0) break;
    }
    if (!any_greedy && out.empty()) {
      msg.backward = true;  // Algorithm 3 line 14
    }
  }

  if (msg.backward && config_.params.design == overlay::Design::kEnhanced) {
    // Rule 3: counter-clockwise steps. With a repaired ring the node's CCW
    // pointer reaches the nearest alive sibling (tried here in order);
    // without repair only the immediate neighbor is known.
    const std::uint32_t reach = config_.assume_ring_repaired ? node.ring_size - 1 : 1;
    for (std::uint32_t step = 1; step <= reach; ++step) {
      push(sibling_id(node,
                      ids::counter_clockwise_step(self_index, step, node.ring_size)));
    }
  }
  return out;
}

trace::EventType HierarchySimulation::hop_kind(const Node& node, std::uint32_t next,
                                               const Message& msg) const {
  // Parent climb and on-path descent are plain hierarchical hops; an
  // off-path child is an overlay entrance chosen to detour around a dead
  // on-path child (Algorithm 2 footnote 4). Sibling steps are overlay
  // forwarding (ring, or backward once greedy progress is exhausted), and
  // anything else is a nephew pointer exiting into the next-level overlay.
  if (next == node.parent) return trace::EventType::kHierHop;
  if (next >= node.first_child && next < node.first_child + node.child_count) {
    const std::size_t level = node.path.size();
    const bool on_path = hierarchy::is_prefix(node.path, msg.dest) &&
                         level < msg.dest.size() &&
                         next == node.first_child + msg.dest[level];
    return on_path ? trace::EventType::kHierHop : trace::EventType::kDetourEnter;
  }
  if (next >= node.sibling_base && next < node.sibling_base + node.ring_size) {
    return msg.backward ? trace::EventType::kBackwardHop : trace::EventType::kRingHop;
  }
  return trace::EventType::kNephewExit;
}

std::vector<std::uint32_t> HierarchySimulation::route_candidates(
    std::uint32_t at, const hierarchy::NodePath& dest, bool& backward) const {
  HOURS_EXPECTS(at < nodes_.size());
  Message probe;
  probe.dest = dest;
  probe.backward = backward;
  auto out = candidates_at(nodes_[at], probe);
  backward = probe.backward;
  return out;
}

void HierarchySimulation::client_attempt(std::uint32_t at, std::uint32_t to,
                                         std::function<void()> on_ack,
                                         std::function<void()> on_timeout) {
  HOURS_EXPECTS(at < nodes_.size() && to < nodes_.size());
  Message hop;
  hop.client_hop = true;
  transport_.send_expect_ack(at, to, hop, std::move(on_ack), std::move(on_timeout));
}

void HierarchySimulation::handle(std::uint32_t at, const Message& msg) {
  if (msg.client_hop) return;  // the transport-level ack is the whole exchange

  auto& outcome = queries_[msg.qid];
  if (outcome.done && outcome.delivered) return;  // already answered

  const Node& node = nodes_[at];
  if (node.path == msg.dest) {
    finish(msg.qid, true, msg.hops);
    return;
  }

  // Insiders (Section 5.3). The transport already acked, so the upstream
  // sender believes this hop succeeded.
  if (node.behavior == overlay::NodeBehavior::kDropper) {
    return;  // silently swallowed; the query never settles
  }
  if (node.behavior == overlay::NodeBehavior::kMisrouter) {
    // Forward to a uniformly random table entry, ignoring the algorithm;
    // honest downstream nodes resume greedy forwarding.
    if (!node.table.entries().empty()) {
      const auto& entries = node.table.entries();
      const auto pick = entries[misroute_rng_.below(entries.size())].sibling;
      Message forwarded = msg;
      forwarded.hops += 1;
      if (forwarded.hops <= 4 * node_count() + 64) {
        transport_.send_expect_ack(at, sibling_id(node, pick), forwarded, nullptr, nullptr);
        return;
      }
    }
    return;
  }

  Message m = msg;
  if (m.hops > 4 * node_count() + 64) {
    finish(m.qid, false, m.hops);
    return;
  }
  auto candidates = candidates_at(node, m);
  if (candidates.empty()) {
    finish(m.qid, false, m.hops);
    return;
  }
  try_candidates(at, m, std::move(candidates));
}

void HierarchySimulation::try_candidates(std::uint32_t at, Message msg,
                                         std::vector<std::uint32_t> candidates) {
  const auto& outcome = queries_[msg.qid];
  if (outcome.done && outcome.delivered) return;
  if (candidates.empty()) {
    // Every candidate timed out; re-decide with the enriched suspicion set
    // (this is where a stalled greedy flips to backward mode).
    handle(at, msg);
    return;
  }
  const std::uint32_t next = candidates.front();
  candidates.erase(candidates.begin());

  Message forwarded = msg;
  forwarded.hops += 1;
  HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                            .type = hop_kind(nodes_[at], next, msg),
                            .node = at,
                            .peer = next,
                            .level = static_cast<std::int32_t>(nodes_[at].path.size()),
                            .causal = msg.qid,
                            .value = forwarded.hops});
  transport_.send_expect_ack(
      at, next, forwarded, /*on_ack=*/nullptr,
      /*on_timeout=*/[this, at, msg, next, remaining = std::move(candidates)]() mutable {
        suspect(at, next);
        hop_timeouts_.inc();
        queries_[msg.qid].timeouts += 1;
        HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                                  .type = trace::EventType::kRetry,
                                  .node = at,
                                  .peer = next,
                                  .causal = msg.qid});
        try_candidates(at, msg, std::move(remaining));
      });
}

}  // namespace hours::sim
