// Library form of the fault-schedule fuzz harness: one seed in, one
// structured verdict out.
//
// Extracted from tests/fault_schedule_fuzz_test.cpp so three consumers can
// share the exact same per-seed pipeline:
//   * the gtest harness (artifacts + assertions, serial or parallel via
//     HOURS_FUZZ_THREADS),
//   * bench/sweep_runner, which fans seeds across the work-stealing
//     executor for the nightly 200-seed ASan sweep,
//   * tests/sweep_determinism_test, which proves the merged report is
//     byte-identical at 1, 2, and N worker threads.
//
// Everything here is a pure function of the seed (and options): case
// generation draws from a single seed-keyed Xoshiro256 stream, the
// simulation is single-threaded and deterministic, and the merged report
// renders results in seed order with metrics::JsonWriter. That purity is
// the whole determinism contract — the executor adds concurrency across
// seeds, never within one.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/fault_injector.hpp"
#include "sim/ring_protocol.hpp"

namespace hours::sim::fuzz {

/// Every generated fault window lifts by here; the ring must then converge.
inline constexpr Ticks kFaultHorizon = 24'000;
/// Probe periods granted to re-converge after the horizon.
inline constexpr Ticks kSettlePeriods = 80;

struct FuzzCase {
  RingSimConfig config;
  FaultPlan plan;
};

/// Derives a ring config and a FaultPlan from one seed. Every randomized
/// choice flows through a single Xoshiro256 stream, so the case is a pure
/// function of the seed.
[[nodiscard]] FuzzCase generate_case(std::uint64_t seed);

[[nodiscard]] std::string describe_config(const RingSimConfig& cfg);

/// Runs one generated case to quiescence; returns all invariant violations.
/// With `traced`, the run carries a full tracing pipeline (bounded ring
/// buffer, so memory stays flat) and the emitted stream itself becomes a
/// checked property: every event must serialize to a schema-valid JSON line.
[[nodiscard]] std::vector<std::string> run_case(const FuzzCase& c, bool traced);

/// Snapshot-equivalence oracle: runs the case twice — once uninterrupted,
/// once saved at a seed-derived instant, restored into a freshly built
/// simulation, and continued — and demands byte-identical final snapshots
/// plus a byte-exact resave immediately after restore. Returns violations.
[[nodiscard]] std::vector<std::string> run_snapshot_oracle(const FuzzCase& c,
                                                           std::uint64_t seed);

struct SeedOptions {
  /// Oracle every Kth seed (0 disables, 1 = every seed).
  std::uint64_t snapshot_stride = 4;
  /// Tracing every 5th seed by default; force for pinned reproductions.
  bool force_traced = false;
  /// Run the snapshot oracle regardless of stride (pinned reproductions).
  bool force_snapshot = false;
};

/// One seed's complete verdict — what the merged report is built from.
struct SeedResult {
  std::uint64_t seed = 0;
  bool traced = false;
  bool snapshot_checked = false;
  std::vector<std::string> violations;
};

/// The full per-seed pipeline: generate, run (traced on the sampling
/// schedule), snapshot-oracle on the stride. Pure function of
/// (seed, options) — safe to run concurrently for distinct seeds.
[[nodiscard]] SeedResult run_seed(std::uint64_t seed, const SeedOptions& options);

/// Deterministic merged sweep report: results render in the order given
/// (callers pass seed order), with no timing or host information — the
/// bytes depend only on the verdicts. Wall-clock and thread counts belong
/// in the caller's envelope, not here.
[[nodiscard]] std::string sweep_report_json(const std::vector<SeedResult>& results);

}  // namespace hours::sim::fuzz
