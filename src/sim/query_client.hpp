// End-to-end query client with retries, backoff, failover, and deadlines.
//
// The in-network query paths (ring_protocol, hierarchy_protocol) model a
// query as custody handed hop to hop; each relay walks its candidate list
// once per silence. A real resolver is more patient and more bounded: it
// retransmits an unanswered hop with capped exponential backoff (silence
// may be loss, not death), fails over to an alternate pointer only after
// the retry budget is spent, remembers timeout-inferred suspicion across
// queries, and gives up when an end-to-end deadline expires — whichever
// comes first. This client drives exactly that policy from outside the
// network, one transport-level attempt at a time, against any simulation
// exposing the QueryNetwork hooks. All liveness knowledge is inferred from
// silence; there is no oracle anywhere on the path.
//
// Determinism: backoff jitter comes from a client-owned seeded generator,
// so a fixed (network seed, client seed) pair replays bit-identically.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "liveness/liveness.hpp"
#include "rng/xoshiro256.hpp"
#include "sim/simulator.hpp"
#include "trace/registry.hpp"
#include "trace/sink.hpp"

namespace hours::sim {

class RingSimulation;
class HierarchySimulation;

/// The three hooks a simulation exposes to be queried by a client.
struct QueryNetwork {
  Simulator* sim = nullptr;
  std::uint32_t node_count = 0;
  /// One custody-transfer attempt; exactly one callback fires.
  std::function<void(std::uint32_t from, std::uint32_t to, std::function<void()> on_ack,
                     std::function<void()> on_timeout)>
      attempt;
  /// Ordered next-hop candidates `at` offers toward `dest`; may flip
  /// `backward` (Algorithm 3 line 14).
  std::function<std::vector<std::uint32_t>(std::uint32_t at, std::uint32_t dest,
                                           bool& backward)>
      candidates;
  std::function<bool(std::uint32_t at, std::uint32_t dest)> is_destination;
};

/// Ring adapter: destinations are ring indices.
[[nodiscard]] QueryNetwork make_query_network(RingSimulation& ring);
/// Hierarchy adapter: destinations are node ids (HierarchySimulation::id_of).
[[nodiscard]] QueryNetwork make_query_network(HierarchySimulation& hierarchy);

struct QueryClientConfig {
  /// Retransmissions of one hop after its first attempt, before the next-hop
  /// candidate is declared suspect and the client fails over.
  std::uint32_t max_retries_per_hop = 2;
  Ticks backoff_base = 200;   ///< delay before the first retransmission
  Ticks backoff_cap = 1'600;  ///< exponential growth is clamped here
  /// Each backoff delay is scaled by a deterministic factor drawn uniformly
  /// from [1 - jitter, 1 + jitter].
  double jitter = 0.25;
  /// End-to-end budget per query, measured from submission (0 = unbounded).
  Ticks deadline = 0;
  /// Hop budget (0 = 4 * node_count + 64, matching the in-network engines).
  std::uint32_t max_hops = 0;
  /// How long a timeout keeps a peer suspected client-side (0 = forever).
  Ticks suspicion_ttl = liveness::kDefaultSuspicionTtl;
  std::uint64_t seed = 0xC11E57ULL;
};

enum class QueryStatus : std::uint8_t {
  kPending,
  kDelivered,
  kDeadlineExceeded,
  kNoRoute,  ///< every known pointer is suspect; no path worth retrying
};

struct ClientQueryOutcome {
  QueryStatus status = QueryStatus::kPending;
  std::uint32_t hops = 0;             ///< successful custody transfers
  std::uint32_t retransmissions = 0;  ///< repeat attempts of an unanswered hop
  std::uint32_t failovers = 0;        ///< alternate pointers taken after retry exhaustion
  Ticks issued_at = 0;
  Ticks completed_at = 0;
  [[nodiscard]] Ticks latency() const noexcept { return completed_at - issued_at; }
};

/// Aggregate view over the client's registry counters ("client.*").
struct QueryClientStats {
  std::uint64_t submitted = 0;
  std::uint64_t delivered = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t no_route = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t failovers = 0;
};

class QueryClient {
 public:
  QueryClient(QueryNetwork network, QueryClientConfig config);

  /// Starts a query whose custody begins at `start`; returns its id. The
  /// simulation must then be run for the outcome to settle.
  std::uint64_t submit(std::uint32_t start, std::uint32_t dest);

  [[nodiscard]] const ClientQueryOutcome& outcome(std::uint64_t qid) const;
  /// Snapshot assembled from the registry counters.
  [[nodiscard]] QueryClientStats stats() const noexcept;
  [[nodiscard]] const QueryClientConfig& config() const noexcept { return config_; }

  /// Attaches the trace stream (submit/retry/suspect/outcome events); null
  /// detaches. Must outlive the client.
  void set_tracer(trace::Tracer* tracer) { trace_ = tracer; }

  /// The client's counter/histogram registry ("client.submitted", ...,
  /// "client.delivered_latency").
  [[nodiscard]] trace::Registry& registry() noexcept { return registry_; }
  [[nodiscard]] const trace::Registry& registry() const noexcept { return registry_; }

  /// Currently suspected peers (timeout-inferred, TTL-bounded).
  [[nodiscard]] bool suspected(std::uint32_t node) const;

  /// The backoff delay (before jitter) preceding retransmission `retry`
  /// (1-based). Exposed for tests and docs.
  [[nodiscard]] Ticks base_backoff(std::uint32_t retry) const;

 private:
  struct QueryState {
    std::uint32_t dest = 0;
    std::uint32_t at = 0;  ///< current custody holder
    bool backward = false;
    std::vector<std::uint32_t> candidates;  ///< remaining at `at`
    std::uint32_t current = 0;              ///< candidate being attempted
    std::uint32_t attempts = 0;             ///< attempts made for `current`
    std::uint32_t replans = 0;              ///< candidate recomputations at `at`
    std::uint64_t deadline_event = 0;
    ClientQueryOutcome out;
  };

  void advance(std::uint64_t qid);
  void attempt_current(std::uint64_t qid);
  void on_ack(std::uint64_t qid, std::uint32_t hopped_to);
  void on_timeout(std::uint64_t qid, std::uint32_t tried);
  void complete(std::uint64_t qid, QueryStatus status);
  void suspect(std::uint32_t node);
  [[nodiscard]] std::uint32_t hop_budget() const noexcept;

  QueryNetwork network_;
  QueryClientConfig config_;
  rng::Xoshiro256 jitter_rng_;
  std::uint64_t next_qid_ = 1;
  std::map<std::uint64_t, QueryState> queries_;
  /// Unified liveness plane (DESIGN.md §11); the client is the sole
  /// observer, so every row is keyed under observer 0.
  liveness::LivenessView liveness_;

  trace::Registry registry_;
  trace::Tracer* trace_ = nullptr;
  trace::Counter submitted_;
  trace::Counter delivered_;
  trace::Counter deadline_exceeded_;
  trace::Counter no_route_;
  trace::Counter retransmissions_;
  trace::Counter failovers_;
  metrics::Histogram* delivered_latency_ = nullptr;  ///< owned by registry_
};

}  // namespace hours::sim
