// The ROADMAP's adaptive attacker, built as a pure trace consumer.
//
// The paper's Section 5/6.2 attacker re-strikes a neighborhood after it
// repairs. The static form (FaultPlan::correlated_outage) re-strikes the
// *same* nodes on a timer — blind to where the repair actually landed. This
// attacker instead subscribes to the run's trace stream and watches
// `recovery_adopt` events: when active recovery closes a gap, the adopting
// node (and the originator it adopted) are exactly the servers now carrying
// the repaired neighborhood, so that is where the next strike lands.
//
// Deliberately restricted to information a real observer could have: it
// sees only emitted events (no routing tables, no liveness oracle) and acts
// through scheduled kill/revive, after a configurable reaction delay.
// Budgeted (max_strikes) and rate-limited (cooldown) so the comparison
// bench can hold total firepower equal between the static and adaptive
// forms. Attaching it to the Tracer is the whole integration — it is also
// the proof-of-API test for TraceSink subscribers.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"
#include "trace/sink.hpp"

namespace hours::sim {

class RingSimulation;

struct AdaptiveAttackerConfig {
  /// Nodes per strike: the adopter, the repair originator, then clockwise
  /// successors of the adopter until the set is this large.
  std::uint32_t neighborhood = 3;
  /// Observe -> strike latency (the attacker is not instantaneous).
  Ticks reaction_delay = 500;
  Ticks strike_duration = 15'000;
  /// Re-strikes the attacker may launch over the whole run.
  std::uint32_t max_strikes = 2;
  /// Minimum gap between consecutive strike launches; adoption events
  /// arriving inside it are observed but not acted on (a strike window
  /// produces a burst of adoptions — one answer per burst).
  Ticks cooldown = 10'000;
};

class AdaptiveAttacker final : public trace::TraceSink {
 public:
  /// The ring must outlive the attacker; attach with tracer.add_sink(&a).
  AdaptiveAttacker(RingSimulation& ring, AdaptiveAttackerConfig config);

  AdaptiveAttacker(const AdaptiveAttacker&) = delete;
  AdaptiveAttacker& operator=(const AdaptiveAttacker&) = delete;

  /// Trace callback: reacts to kRecoveryAdopt, ignores everything else.
  /// Never mutates the simulation synchronously — strikes are scheduled.
  void on_event(const trace::Event& event) override;

  [[nodiscard]] std::uint64_t adoptions_seen() const noexcept { return adoptions_seen_; }
  [[nodiscard]] std::uint32_t strikes_launched() const noexcept { return strikes_; }
  /// The node sets struck so far, in launch order.
  [[nodiscard]] const std::vector<std::vector<std::uint32_t>>& strike_sets() const noexcept {
    return strike_sets_;
  }

 private:
  void launch(std::vector<std::uint32_t> targets);

  RingSimulation& ring_;
  AdaptiveAttackerConfig config_;
  std::uint64_t adoptions_seen_ = 0;
  std::uint32_t strikes_ = 0;
  Ticks last_launch_at_ = 0;
  bool launched_any_ = false;
  std::vector<std::vector<std::uint32_t>> strike_sets_;
};

}  // namespace hours::sim
