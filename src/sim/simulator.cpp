#include "sim/simulator.hpp"

namespace hours::sim {

std::uint64_t Simulator::insert(Ticks at, std::uint64_t id, snapshot::Described desc,
                                Action action) {
  HOURS_EXPECTS(action != nullptr);
  queue_.emplace(Key{at, id}, Entry{std::move(desc), std::move(action)});
  at_of_.emplace(id, at);
  return id;
}

std::uint64_t Simulator::schedule(Ticks delay, Action action) {
  return insert(now_ + delay, next_id_++, snapshot::Described{}, std::move(action));
}

std::uint64_t Simulator::schedule(Ticks delay, snapshot::Described desc, Action action) {
  HOURS_EXPECTS(desc.kind != snapshot::kOpaque);
  return insert(now_ + delay, next_id_++, std::move(desc), std::move(action));
}

void Simulator::cancel(std::uint64_t id) {
  // Stale ids (already executed, already cancelled, never issued) are
  // no-ops; live ones are erased outright — pending() stays exact.
  const auto it = at_of_.find(id);
  if (it == at_of_.end()) return;
  queue_.erase(Key{it->second, id});
  at_of_.erase(it);
}

std::size_t Simulator::run(Ticks limit, std::size_t max_events) {
  const Ticks deadline = limit == 0 ? 0 : now_ + limit;
  std::size_t executed = 0;
  while (!queue_.empty() && executed < max_events) {
    const auto it = queue_.begin();
    if (deadline != 0 && it->first.at > deadline) break;

    // Move out before erase: the action may schedule or cancel freely.
    now_ = it->first.at;
    Action action = std::move(it->second.action);
    at_of_.erase(it->first.id);
    queue_.erase(it);
    action();
    ++executed;
  }
  if (deadline != 0 && now_ < deadline) now_ = deadline;
  return executed;
}

std::vector<Simulator::PendingEvent> Simulator::pending_events() const {
  std::vector<PendingEvent> out;
  out.reserve(queue_.size());
  for (const auto& [key, entry] : queue_) {
    out.push_back(PendingEvent{key.at, key.id, entry.desc});
  }
  return out;
}

std::vector<std::uint64_t> Simulator::opaque_event_ids() const {
  std::vector<std::uint64_t> out;
  for (const auto& [key, entry] : queue_) {
    if (entry.desc.kind == snapshot::kOpaque) out.push_back(key.id);
  }
  return out;
}

void Simulator::reset(Ticks now, std::uint64_t next_id) {
  HOURS_EXPECTS(next_id >= 1);
  queue_.clear();
  at_of_.clear();
  now_ = now;
  next_id_ = next_id;
}

void Simulator::restore_event(Ticks at, std::uint64_t id, snapshot::Described desc,
                              Action action) {
  HOURS_EXPECTS(at >= now_);
  HOURS_EXPECTS(id >= 1 && id < next_id_);
  HOURS_EXPECTS(at_of_.find(id) == at_of_.end());
  HOURS_EXPECTS(desc.kind != snapshot::kOpaque);
  insert(at, id, std::move(desc), std::move(action));
}

}  // namespace hours::sim
