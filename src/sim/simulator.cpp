#include "sim/simulator.hpp"

namespace hours::sim {

std::uint64_t Simulator::schedule(Ticks delay, Action action) {
  HOURS_EXPECTS(action != nullptr);
  const std::uint64_t id = next_id_++;
  queue_.push(Event{now_ + delay, id, std::move(action)});
  live_.insert(id);
  return id;
}

void Simulator::cancel(std::uint64_t id) {
  // Only ids that are actually queued move to the cancelled set; stale ids
  // (already executed, already cancelled, never issued) must not accumulate
  // or they would corrupt pending() and leak forever.
  if (live_.erase(id) != 0) cancelled_.insert(id);
}

std::size_t Simulator::run(Ticks limit, std::size_t max_events) {
  const Ticks deadline = limit == 0 ? 0 : now_ + limit;
  std::size_t executed = 0;
  while (!queue_.empty() && executed < max_events) {
    const Event& top = queue_.top();
    if (deadline != 0 && top.at > deadline) break;

    if (cancelled_.erase(top.id) != 0) {
      queue_.pop();
      continue;
    }
    live_.erase(top.id);

    // Copy out before pop: the action may schedule (and thus reallocate).
    Action action = std::move(const_cast<Event&>(top).action);
    now_ = top.at;
    queue_.pop();
    action();
    ++executed;
  }
  if (deadline != 0 && now_ < deadline) now_ = deadline;
  return executed;
}

}  // namespace hours::sim
