#include "sim/simulator.hpp"

#include <algorithm>

namespace hours::sim {

std::uint64_t Simulator::schedule(Ticks delay, Action action) {
  HOURS_EXPECTS(action != nullptr);
  const std::uint64_t id = next_id_++;
  queue_.push(Event{now_ + delay, id, std::move(action)});
  return id;
}

void Simulator::cancel(std::uint64_t id) {
  cancelled_.push_back(id);
  ++cancelled_pending_;
}

std::size_t Simulator::run(Ticks limit, std::size_t max_events) {
  const Ticks deadline = limit == 0 ? 0 : now_ + limit;
  std::size_t executed = 0;
  while (!queue_.empty() && executed < max_events) {
    const Event& top = queue_.top();
    if (deadline != 0 && top.at > deadline) break;

    if (std::find(cancelled_.begin(), cancelled_.end(), top.id) != cancelled_.end()) {
      cancelled_.erase(std::remove(cancelled_.begin(), cancelled_.end(), top.id),
                       cancelled_.end());
      --cancelled_pending_;
      queue_.pop();
      continue;
    }

    // Copy out before pop: the action may schedule (and thus reallocate).
    Action action = std::move(const_cast<Event&>(top).action);
    now_ = top.at;
    queue_.pop();
    action();
    ++executed;
  }
  if (deadline != 0 && now_ < deadline) now_ = deadline;
  return executed;
}

}  // namespace hours::sim
