#include "sim/simulator.hpp"

#include <algorithm>
#include <bit>

namespace hours::sim {

// The wheel keeps one invariant per level: every event at level L satisfies
// (at >> shift_L) - base_L in [0, 64), and windows are nested — window L's
// start is never after window L-1's start, and window L-1 fits inside one
// slot span of window L. Together these give the ordering property the
// run loop relies on: the antechamber (events before window 0) precedes
// every leveled event, level 0 holds the earliest leveled events, and any
// occupied higher level only holds events at or beyond the end of every
// lower window. Cascading pops the lowest occupied level's earliest slot
// and re-anchors the lower windows to exactly that slot's span, so events
// only ever move downward.

Simulator::Simulator() {
  for (auto& level : levels_) level.heads.fill(kNil);
}

void Simulator::rebase(Ticks at) {
  for (int level = 0; level < kLevels; ++level) {
    levels_[level].base = at >> level_shift(level);
  }
}

std::uint64_t Simulator::insert(Ticks at, std::uint64_t id, std::uint32_t kind,
                                const std::uint64_t* args, std::size_t count, Action action) {
  // Empty queue: re-anchor all windows at the current instant. Anchoring at
  // `at` instead would shunt every later-inserted-but-earlier event into the
  // antechamber, degrading find_next to an O(pending) scan (events can only
  // be inserted at >= now_, so now_ is a lower bound for every future at).
  if (slab_.live() == 0) rebase(now_);
  const std::uint32_t index = slab_.allocate();
  EventSlot& slot = slab_[index];
  slot.at = at;
  slot.id = id;
  slot.kind = kind;
  slot.live = true;
  slot.has_action = action != nullptr;
  slot.action = std::move(action);
  if (count > 0) {
    slot.args.assign(args, args + count);
  } else {
    slot.args.clear();
  }
  index_of_.emplace(id, index);
  place(index);
  return id;
}

void Simulator::place(std::uint32_t index) {
  EventSlot& slot = slab_[index];
  const Ticks at = slot.at;
  slot.prev = kNil;

  if (at < levels_[0].base) {  // before window 0: the antechamber
    slot.home = kHomeAnte;
    slot.next = ante_head_;
    if (ante_head_ != kNil) slab_[ante_head_].prev = index;
    ante_head_ = index;
    return;
  }
  for (int level = 0; level < kLevels; ++level) {
    Level& wheel = levels_[level];
    const std::uint64_t q = at >> level_shift(level);
    if (q - wheel.base < kSlots) {  // q >= base by window nesting
      const auto bucket = static_cast<std::uint8_t>(q & (kSlots - 1));
      slot.home = static_cast<std::uint8_t>(level);
      slot.bucket = bucket;
      slot.next = wheel.heads[bucket];
      if (wheel.heads[bucket] != kNil) slab_[wheel.heads[bucket]].prev = index;
      wheel.heads[bucket] = index;
      wheel.occupied |= 1ULL << bucket;
      return;
    }
  }
  slot.home = kHomeOverflow;  // beyond the top window's horizon
  slot.next = overflow_head_;
  if (overflow_head_ != kNil) slab_[overflow_head_].prev = index;
  overflow_head_ = index;
}

void Simulator::unlink(std::uint32_t index) {
  EventSlot& slot = slab_[index];
  if (slot.prev != kNil) {
    slab_[slot.prev].next = slot.next;
  } else if (slot.home == kHomeAnte) {
    ante_head_ = slot.next;
  } else if (slot.home == kHomeOverflow) {
    overflow_head_ = slot.next;
  } else {
    Level& wheel = levels_[slot.home];
    wheel.heads[slot.bucket] = slot.next;
    if (slot.next == kNil) wheel.occupied &= ~(1ULL << slot.bucket);
  }
  if (slot.next != kNil) slab_[slot.next].prev = slot.prev;
  slot.prev = kNil;
  slot.next = kNil;
}

std::uint32_t Simulator::list_min(std::uint32_t head) const {
  std::uint32_t best = kNil;
  for (std::uint32_t walk = head; walk != kNil; walk = slab_[walk].next) {
    if (best == kNil || slab_[walk].at < slab_[best].at ||
        (slab_[walk].at == slab_[best].at && slab_[walk].id < slab_[best].id)) {
      best = walk;
    }
  }
  return best;
}

std::uint32_t Simulator::find_next() {
  while (true) {
    if (ante_head_ != kNil) {
      // While any level is occupied the antechamber holds the global
      // minimum (every leveled event is at or past window 0's start), so
      // serve it directly. Once the levels drain, fold the antechamber back
      // into the wheel anchored at now_ — a one-time O(len) reflow instead
      // of an O(len) scan per pop.
      bool levels_occupied = false;
      for (const Level& level : levels_) {
        if (level.occupied != 0) {
          levels_occupied = true;
          break;
        }
      }
      if (levels_occupied) return list_min(ante_head_);
      // Deadline-clamped runs can leave pending events before now_, so the
      // new anchor must cover the antechamber's own minimum too.
      rebase(std::min(now_, slab_[list_min(ante_head_)].at));
      std::uint32_t walk = ante_head_;
      ante_head_ = kNil;
      while (walk != kNil) {
        const std::uint32_t next = slab_[walk].next;
        slab_[walk].prev = kNil;
        slab_[walk].next = kNil;
        place(walk);
        walk = next;
      }
      continue;
    }

    if (levels_[0].occupied != 0) {
      // Earliest occupied slot = first set bit clockwise from the window
      // start; a level-0 slot is a single tick, drained in id order.
      const auto finger = static_cast<unsigned>(levels_[0].base & (kSlots - 1));
      const std::uint64_t rotated = std::rotr(levels_[0].occupied, static_cast<int>(finger));
      const auto offset = static_cast<unsigned>(std::countr_zero(rotated));
      const auto bucket = (finger + offset) & (kSlots - 1);
      return list_min(levels_[0].heads[bucket]);
    }

    int lowest = -1;
    for (int level = 1; level < kLevels; ++level) {
      if (levels_[level].occupied != 0) {
        lowest = level;
        break;
      }
    }

    if (lowest < 0) {
      if (overflow_head_ == kNil) return kNil;
      // Refill: anchor the wheel at the overflow's earliest event and pull
      // in everything that now fits the top window.
      const std::uint32_t earliest = list_min(overflow_head_);
      rebase(slab_[earliest].at);
      const Level& top = levels_[kLevels - 1];
      std::uint32_t walk = overflow_head_;
      while (walk != kNil) {
        const std::uint32_t next = slab_[walk].next;
        const std::uint64_t q = slab_[walk].at >> level_shift(kLevels - 1);
        if (q - top.base < kSlots) {
          unlink(walk);
          place(walk);
        }
        walk = next;
      }
      continue;
    }

    // Cascade the lowest occupied level's earliest slot down one step:
    // levels below it are empty, so their windows re-anchor to exactly the
    // popped slot's span and every event in it fits a lower level.
    Level& wheel = levels_[lowest];
    const auto finger = static_cast<unsigned>(wheel.base & (kSlots - 1));
    const std::uint64_t rotated = std::rotr(wheel.occupied, static_cast<int>(finger));
    const auto offset = static_cast<unsigned>(std::countr_zero(rotated));
    const auto bucket = (finger + offset) & (kSlots - 1);
    const std::uint64_t q = wheel.base + offset;

    std::uint32_t head = wheel.heads[bucket];
    wheel.heads[bucket] = kNil;
    wheel.occupied &= ~(1ULL << bucket);
    const Ticks span_start = q << level_shift(lowest);
    for (int level = 0; level < lowest; ++level) {
      levels_[level].base = span_start >> level_shift(level);
    }
    while (head != kNil) {
      const std::uint32_t next = slab_[head].next;
      slab_[head].prev = kNil;
      slab_[head].next = kNil;
      place(head);
      head = next;
    }
  }
}

std::uint64_t Simulator::schedule(Ticks delay, Action action) {
  HOURS_EXPECTS(action != nullptr);
  return insert(now_ + delay, next_id_++, snapshot::kOpaque, nullptr, 0, std::move(action));
}

std::uint64_t Simulator::schedule(Ticks delay, snapshot::Described desc, Action action) {
  HOURS_EXPECTS(desc.kind != snapshot::kOpaque);
  HOURS_EXPECTS(action != nullptr);
  return insert(now_ + delay, next_id_++, desc.kind, desc.args.data(), desc.args.size(),
                std::move(action));
}

std::uint64_t Simulator::schedule(Ticks delay, std::uint32_t kind, const std::uint64_t* args,
                                  std::size_t count) {
  HOURS_EXPECTS(kind != snapshot::kOpaque);
  return insert(now_ + delay, next_id_++, kind, args, count, nullptr);
}

void Simulator::cancel(std::uint64_t id) {
  // Stale ids (already executed, already cancelled, never issued) are
  // no-ops; live ones are erased outright — pending() stays exact.
  const auto it = index_of_.find(id);
  if (it == index_of_.end()) return;
  const std::uint32_t index = it->second;
  index_of_.erase(it);
  unlink(index);
  EventSlot& slot = slab_[index];
  slot.live = false;
  slot.action = nullptr;
  slot.args.clear();
  slab_.release(index);
}

void Simulator::dispatch_and_free(std::uint32_t index) {
  EventSlot& slot = slab_[index];
  slot.live = false;
  if (slot.has_action) {
    Action action = std::move(slot.action);
    slot.action = nullptr;
    slot.args.clear();
    slab_.release(index);
    action();
    return;
  }
  HOURS_EXPECTS(runner_ != nullptr);
  // The args words stay in the slot through the call (chunk addresses are
  // stable even if the runner schedules); the slot is recycled after.
  runner_(slot.kind, slot.args.data(), slot.args.size());
  slot.args.clear();
  slab_.release(index);
}

std::size_t Simulator::run(Ticks limit, std::size_t max_events) {
  const Ticks deadline = limit == 0 ? 0 : now_ + limit;
  std::size_t executed = 0;
  truncated_ = false;
  while (executed < max_events) {
    const std::uint32_t index = find_next();
    if (index == kNil) break;
    EventSlot& slot = slab_[index];
    if (deadline != 0 && slot.at > deadline) break;

    now_ = slot.at;
    index_of_.erase(slot.id);
    unlink(index);
    dispatch_and_free(index);
    ++executed;
    ++executed_total_;
  }
  if (executed == max_events) {
    // The cap stopped the loop: loud, not silent — benches assert on this.
    const std::uint32_t index = find_next();
    truncated_ = index != kNil && (deadline == 0 || slab_[index].at <= deadline);
  }
  if (deadline != 0 && now_ < deadline) now_ = deadline;
  return executed;
}

std::vector<Simulator::PendingEvent> Simulator::pending_events() const {
  std::vector<PendingEvent> out;
  out.reserve(slab_.live());
  for (std::uint32_t index = 0; index < slab_.high_water(); ++index) {
    const EventSlot& slot = slab_[index];
    if (!slot.live) continue;
    PendingEvent event;
    event.at = slot.at;
    event.id = slot.id;
    event.desc.kind = slot.kind;
    event.desc.args = slot.args;
    out.push_back(std::move(event));
  }
  std::sort(out.begin(), out.end(), [](const PendingEvent& a, const PendingEvent& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.id < b.id;
  });
  return out;
}

std::vector<std::uint64_t> Simulator::opaque_event_ids() const {
  std::vector<std::pair<Ticks, std::uint64_t>> keyed;
  for (std::uint32_t index = 0; index < slab_.high_water(); ++index) {
    const EventSlot& slot = slab_[index];
    if (slot.live && slot.kind == snapshot::kOpaque) keyed.emplace_back(slot.at, slot.id);
  }
  std::sort(keyed.begin(), keyed.end());
  std::vector<std::uint64_t> out;
  out.reserve(keyed.size());
  for (const auto& [at, id] : keyed) out.push_back(id);
  return out;
}

void Simulator::reset(Ticks now, std::uint64_t next_id) {
  HOURS_EXPECTS(next_id >= 1);
  slab_.clear();
  index_of_.clear();
  for (auto& level : levels_) {
    level.occupied = 0;
    level.heads.fill(kNil);
  }
  ante_head_ = kNil;
  overflow_head_ = kNil;
  now_ = now;
  next_id_ = next_id;
  truncated_ = false;
  rebase(now);
}

void Simulator::restore_event(Ticks at, std::uint64_t id, snapshot::Described desc,
                              Action action) {
  HOURS_EXPECTS(at >= now_);
  HOURS_EXPECTS(id >= 1 && id < next_id_);
  HOURS_EXPECTS(index_of_.find(id) == index_of_.end());
  HOURS_EXPECTS(desc.kind != snapshot::kOpaque);
  HOURS_EXPECTS(action != nullptr);
  insert(at, id, desc.kind, desc.args.data(), desc.args.size(), std::move(action));
}

}  // namespace hours::sim
