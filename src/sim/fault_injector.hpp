// Churn and fault-injection engine for the discrete-event simulations.
//
// A FaultPlan is a declarative, seeded schedule of faults — fail-stop
// crashes with timed recoveries, flapping nodes, correlated sibling-set
// outages (the Section 5 attacker re-striking after repair), link-level
// partitions and single-link cuts (nodes alive but mutually unreachable),
// lossy-link episodes, stochastic churn, and insider (byzantine) behavior
// switches.
// A FaultInjector expands the plan into simulator events against any
// target exposing the FaultTarget hooks, so the same schedule can drive a
// RingSimulation, a HierarchySimulation, or future engines. Everything is
// deterministic: a fixed plan + seed yields a bit-identical fault timeline.
//
// Overlapping fault windows are reference-counted per node: a node stays
// down while *any* window covers it and revives only when the last one
// lifts, so composed schedules (churn on top of a scripted outage) behave
// as the union of their down intervals. Link-level faults are refcounted
// the same way, per directed (from, to) pair, independently of the node
// refcounts: crashing a partitioned node and lifting the crash leaves the
// node alive but still unreachable until the partition heals.
//
// Snapshot integration: arm() first expands the plan into an indexed,
// deterministic action list (build_schedule()); each simulator event is the
// described datum {kFaultAction, [index]}, so a snapshot stores indices and
// a restored injector — constructed with the identical plan — rebuilds the
// identical closures. FaultInjector is a snapshot::Participant; FaultPlan
// round-trips through describe()/parse().
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "overlay/overlay.hpp"
#include "sim/simulator.hpp"
#include "snapshot/participant.hpp"
#include "trace/sink.hpp"

namespace hours::sim {

class RingSimulation;
class HierarchySimulation;

/// Uniform control surface the injector drives. Adapters exist for both
/// event-engine simulations; anything exposing these hooks can be faulted.
struct FaultTarget {
  Simulator* sim = nullptr;
  std::uint32_t node_count = 0;
  std::function<void(std::uint32_t)> kill;
  std::function<void(std::uint32_t)> revive;
  std::function<bool(std::uint32_t)> alive;
  std::function<void(double)> set_loss;  ///< null: loss episodes unsupported
  std::function<double()> loss;
  /// Installs the transport's per-link reachability predicate (null hook:
  /// link-level faults unsupported). The injector passes a predicate bound
  /// to its own refcounted link state; passing null restores connectivity.
  std::function<void(std::function<bool(std::uint32_t, std::uint32_t)>)> set_link_filter;
  /// null: insider behavior unsupported (e.g. the ring protocol).
  std::function<void(std::uint32_t, overlay::NodeBehavior)> set_behavior;
};

[[nodiscard]] FaultTarget make_fault_target(RingSimulation& ring);
[[nodiscard]] FaultTarget make_fault_target(HierarchySimulation& hierarchy);

/// Declarative fault schedule; builder calls may be chained. Times are
/// absolute simulation ticks (relative to the injector's arm() instant).
class FaultPlan {
 public:
  /// Fail-stop crash at `at`; recovers at `recover_at` (0 = permanent).
  FaultPlan& crash(std::uint32_t node, Ticks at, Ticks recover_at = 0);

  /// `cycles` down/up oscillations starting at `start`: down for `down`
  /// ticks, then up for `up` ticks. Ends alive.
  FaultPlan& flap(std::uint32_t node, Ticks start, Ticks down, Ticks up, std::uint32_t cycles);

  /// Kills every listed node at once, restores them `duration` later, and
  /// repeats the strike `strikes` times with `strike_gap` ticks of calm in
  /// between — the paper-§5 attacker re-striking a repaired neighborhood.
  FaultPlan& correlated_outage(std::vector<std::uint32_t> nodes, Ticks at, Ticks duration,
                               std::uint32_t strikes = 1, Ticks strike_gap = 0);

  /// Severs every link between nodes of *different* groups during
  /// [at, heal_at): both sides stay alive yet mutually unreachable, the
  /// ROADMAP's two-half-rings scenario. Nodes absent from every group keep
  /// full connectivity; links within a group are untouched. heal_at == 0
  /// leaves the partition in force forever.
  FaultPlan& partition(std::vector<std::vector<std::uint32_t>> groups, Ticks at,
                       Ticks heal_at = 0);

  /// Severs the single bidirectional link a <-> b during [at, heal_at);
  /// heal_at == 0 = permanent.
  FaultPlan& cut_link(std::uint32_t a, std::uint32_t b, Ticks at, Ticks heal_at = 0);

  /// Sets the transport loss rate to `probability` during [from, until),
  /// then restores whatever rate was in force when the episode began.
  FaultPlan& loss_episode(double probability, Ticks from, Ticks until);

  /// Switches a node's insider behavior at `at` (Section 5.3).
  FaultPlan& byzantine(std::uint32_t node, overlay::NodeBehavior behavior, Ticks at);

  /// `events` crash+recover pairs at seeded-random nodes and instants in
  /// [from, until); downtimes are uniform in [mean_downtime/2,
  /// 3*mean_downtime/2). Nodes listed in `spare` are never chosen (protect
  /// the query source, a bench's measurement target, ...).
  FaultPlan& random_churn(std::uint32_t events, Ticks from, Ticks until, Ticks mean_downtime,
                          std::uint64_t seed, std::vector<std::uint32_t> spare = {});

  [[nodiscard]] bool needs_loss_hooks() const noexcept { return !loss_episodes_.empty(); }
  [[nodiscard]] bool needs_behavior_hook() const noexcept { return !byzantine_.empty(); }
  [[nodiscard]] bool needs_link_hook() const noexcept {
    return !partitions_.empty() || !cut_links_.empty();
  }

  /// One builder call per line, in builder-call syntax — enough to re-type
  /// a failing fuzz schedule by hand, and exact enough to round-trip:
  /// parse(describe(p)) == p (doubles are printed with 17 significant
  /// digits). Logged alongside the generating seed in fuzz artifacts and
  /// stored verbatim in snapshots.
  [[nodiscard]] std::string describe() const;

  /// Parses describe() output back into a plan. Returns std::nullopt — and
  /// fills `error`, when given — on malformed text. Syntax errors are
  /// reported; semantic violations (e.g. a zero-cycle flap) go through the
  /// builders and abort exactly as the equivalent code would.
  [[nodiscard]] static std::optional<FaultPlan> parse(std::string_view text,
                                                      std::string* error = nullptr);

  [[nodiscard]] bool operator==(const FaultPlan&) const = default;

 private:
  friend class FaultInjector;

  struct CrashSpec {
    std::uint32_t node = 0;
    Ticks at = 0;
    Ticks recover_at = 0;  ///< 0 = permanent
    [[nodiscard]] bool operator==(const CrashSpec&) const = default;
  };
  struct FlapSpec {
    std::uint32_t node = 0;
    Ticks start = 0;
    Ticks down = 0;
    Ticks up = 0;
    std::uint32_t cycles = 0;
    [[nodiscard]] bool operator==(const FlapSpec&) const = default;
  };
  struct OutageSpec {
    std::vector<std::uint32_t> nodes;
    Ticks at = 0;
    Ticks duration = 0;
    std::uint32_t strikes = 1;
    Ticks strike_gap = 0;
    [[nodiscard]] bool operator==(const OutageSpec&) const = default;
  };
  struct PartitionSpec {
    std::vector<std::vector<std::uint32_t>> groups;
    Ticks at = 0;
    Ticks heal_at = 0;  ///< 0 = permanent
    [[nodiscard]] bool operator==(const PartitionSpec&) const = default;
  };
  struct CutLinkSpec {
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    Ticks at = 0;
    Ticks heal_at = 0;  ///< 0 = permanent
    [[nodiscard]] bool operator==(const CutLinkSpec&) const = default;
  };
  struct LossSpec {
    double probability = 0.0;
    Ticks from = 0;
    Ticks until = 0;
    [[nodiscard]] bool operator==(const LossSpec&) const = default;
  };
  struct ByzantineSpec {
    std::uint32_t node = 0;
    overlay::NodeBehavior behavior = overlay::NodeBehavior::kHonest;
    Ticks at = 0;
    [[nodiscard]] bool operator==(const ByzantineSpec&) const = default;
  };
  struct ChurnSpec {
    std::uint32_t events = 0;
    Ticks from = 0;
    Ticks until = 0;
    Ticks mean_downtime = 0;
    std::uint64_t seed = 0;
    std::vector<std::uint32_t> spare;
    [[nodiscard]] bool operator==(const ChurnSpec&) const = default;
  };

  std::vector<CrashSpec> crashes_;
  std::vector<FlapSpec> flaps_;
  std::vector<OutageSpec> outages_;
  std::vector<PartitionSpec> partitions_;
  std::vector<CutLinkSpec> cut_links_;
  std::vector<LossSpec> loss_episodes_;
  std::vector<ByzantineSpec> byzantine_;
  std::vector<ChurnSpec> churn_;
};

/// Transitions actually applied (filtered through the per-node down
/// refcount), observable after — or during — a run.
struct FaultInjectorStats {
  std::uint64_t kills = 0;             ///< alive -> dead transitions
  std::uint64_t revivals = 0;          ///< dead -> alive transitions
  std::uint64_t link_cuts = 0;         ///< directed links passable -> severed
  std::uint64_t link_heals = 0;        ///< directed links severed -> passable
  std::uint64_t loss_changes = 0;      ///< set_loss invocations (incl. restores)
  std::uint64_t behavior_changes = 0;  ///< insider switches applied
};

class FaultInjector : public snapshot::Participant {
 public:
  /// The target's simulator/hooks must outlive the injector; the injector
  /// itself must outlive the run (scheduled events point back into it).
  FaultInjector(FaultTarget target, FaultPlan plan);

  /// Expands the plan into simulator events, offset from the current
  /// simulation instant. Call exactly once, before running the schedule
  /// window — and not at all when the injector is about to be restored
  /// from a snapshot.
  void arm();

  /// Attaches the trace stream (kill/revive/link/loss/behavior events as
  /// they are applied); null detaches. Must outlive the run.
  void set_tracer(trace::Tracer* tracer) { trace_ = tracer; }

  [[nodiscard]] const FaultInjectorStats& stats() const noexcept { return stats_; }

  /// True while any armed fault window holds `node` down.
  [[nodiscard]] bool held_down(std::uint32_t node) const;

  /// True while any armed partition/cut window severs the directed link
  /// `from` -> `to`. Both directions are severed together by every builder,
  /// but the state is tracked (and queryable) per direction.
  [[nodiscard]] bool link_severed(std::uint32_t from, std::uint32_t to) const;

  // -- snapshot (snapshot::Participant) -----------------------------------------
  [[nodiscard]] std::string section() const override { return "faults"; }
  [[nodiscard]] snapshot::Json save_state(std::string& error) const override;
  [[nodiscard]] std::string restore_state(const snapshot::Json& state) override;
  [[nodiscard]] std::function<void()> rebuild_event(
      const snapshot::Described& desc) override;

 private:
  /// One expanded plan step. `at` is the delay from the arm() instant;
  /// apply_planned() interprets the rest. A link action covers BOTH
  /// directions of the (a, b) pair, matching how every builder severs.
  struct PlannedAction {
    enum class Kind : std::uint8_t {
      kDown,
      kUp,
      kLinkDown,
      kLinkUp,
      kLossSet,
      kLossRestore,
      kBehavior,
    };
    Kind kind = Kind::kDown;
    Ticks at = 0;
    std::uint32_t a = 0;  ///< node, link endpoint, or behavior target
    std::uint32_t b = 0;  ///< second link endpoint
    double probability = 0.0;                                    ///< kLossSet
    std::size_t slot = 0;  ///< loss episode index (kLossSet/kLossRestore)
    overlay::NodeBehavior behavior = overlay::NodeBehavior::kHonest;
  };

  /// Pure, deterministic expansion of the plan. The vector ORDER is part of
  /// the snapshot contract: same-instant actions fire in list order (the
  /// simulator's FIFO tie-break), so it must never be reordered across
  /// versions without bumping kSnapshotVersion.
  [[nodiscard]] std::vector<PlannedAction> build_schedule() const;
  void apply_planned(std::size_t index);
  void install_link_filter();

  void apply_down(std::uint32_t node);
  void apply_up(std::uint32_t node);
  void apply_link_down(std::uint32_t a, std::uint32_t b);
  void apply_link_up(std::uint32_t a, std::uint32_t b);

  FaultTarget target_;
  FaultPlan plan_;
  FaultInjectorStats stats_;
  trace::Tracer* trace_ = nullptr;
  std::vector<PlannedAction> schedule_;  ///< built by arm() / restore_state()
  std::vector<double> loss_saved_;       ///< per-episode pre-episode loss rate
  std::vector<std::uint32_t> down_count_;
  /// Directed (from, to) -> number of severing windows currently in force.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t> link_down_count_;
  bool armed_ = false;
};

}  // namespace hours::sim
