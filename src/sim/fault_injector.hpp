// Churn and fault-injection engine for the discrete-event simulations.
//
// A FaultPlan is a declarative, seeded schedule of faults — fail-stop
// crashes with timed recoveries, flapping nodes, correlated sibling-set
// outages (the Section 5 attacker re-striking after repair), link-level
// partitions and single-link cuts (nodes alive but mutually unreachable),
// lossy-link episodes, stochastic churn, and insider (byzantine) behavior
// switches.
// A FaultInjector expands the plan into simulator events against any
// target exposing the FaultTarget hooks, so the same schedule can drive a
// RingSimulation, a HierarchySimulation, or future engines. Everything is
// deterministic: a fixed plan + seed yields a bit-identical fault timeline.
//
// Overlapping fault windows are reference-counted per node: a node stays
// down while *any* window covers it and revives only when the last one
// lifts, so composed schedules (churn on top of a scripted outage) behave
// as the union of their down intervals. Link-level faults are refcounted
// the same way, per directed (from, to) pair, independently of the node
// refcounts: crashing a partitioned node and lifting the crash leaves the
// node alive but still unreachable until the partition heals.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "overlay/overlay.hpp"
#include "sim/simulator.hpp"
#include "trace/sink.hpp"

namespace hours::sim {

class RingSimulation;
class HierarchySimulation;

/// Uniform control surface the injector drives. Adapters exist for both
/// event-engine simulations; anything exposing these hooks can be faulted.
struct FaultTarget {
  Simulator* sim = nullptr;
  std::uint32_t node_count = 0;
  std::function<void(std::uint32_t)> kill;
  std::function<void(std::uint32_t)> revive;
  std::function<bool(std::uint32_t)> alive;
  std::function<void(double)> set_loss;  ///< null: loss episodes unsupported
  std::function<double()> loss;
  /// Installs the transport's per-link reachability predicate (null hook:
  /// link-level faults unsupported). The injector passes a predicate bound
  /// to its own refcounted link state; passing null restores connectivity.
  std::function<void(std::function<bool(std::uint32_t, std::uint32_t)>)> set_link_filter;
  /// null: insider behavior unsupported (e.g. the ring protocol).
  std::function<void(std::uint32_t, overlay::NodeBehavior)> set_behavior;
};

[[nodiscard]] FaultTarget make_fault_target(RingSimulation& ring);
[[nodiscard]] FaultTarget make_fault_target(HierarchySimulation& hierarchy);

/// Declarative fault schedule; builder calls may be chained. Times are
/// absolute simulation ticks (relative to the injector's arm() instant).
class FaultPlan {
 public:
  /// Fail-stop crash at `at`; recovers at `recover_at` (0 = permanent).
  FaultPlan& crash(std::uint32_t node, Ticks at, Ticks recover_at = 0);

  /// `cycles` down/up oscillations starting at `start`: down for `down`
  /// ticks, then up for `up` ticks. Ends alive.
  FaultPlan& flap(std::uint32_t node, Ticks start, Ticks down, Ticks up, std::uint32_t cycles);

  /// Kills every listed node at once, restores them `duration` later, and
  /// repeats the strike `strikes` times with `strike_gap` ticks of calm in
  /// between — the paper-§5 attacker re-striking a repaired neighborhood.
  FaultPlan& correlated_outage(std::vector<std::uint32_t> nodes, Ticks at, Ticks duration,
                               std::uint32_t strikes = 1, Ticks strike_gap = 0);

  /// Severs every link between nodes of *different* groups during
  /// [at, heal_at): both sides stay alive yet mutually unreachable, the
  /// ROADMAP's two-half-rings scenario. Nodes absent from every group keep
  /// full connectivity; links within a group are untouched. heal_at == 0
  /// leaves the partition in force forever.
  FaultPlan& partition(std::vector<std::vector<std::uint32_t>> groups, Ticks at,
                       Ticks heal_at = 0);

  /// Severs the single bidirectional link a <-> b during [at, heal_at);
  /// heal_at == 0 = permanent.
  FaultPlan& cut_link(std::uint32_t a, std::uint32_t b, Ticks at, Ticks heal_at = 0);

  /// Sets the transport loss rate to `probability` during [from, until),
  /// then restores whatever rate was in force when the episode began.
  FaultPlan& loss_episode(double probability, Ticks from, Ticks until);

  /// Switches a node's insider behavior at `at` (Section 5.3).
  FaultPlan& byzantine(std::uint32_t node, overlay::NodeBehavior behavior, Ticks at);

  /// `events` crash+recover pairs at seeded-random nodes and instants in
  /// [from, until); downtimes are uniform in [mean_downtime/2,
  /// 3*mean_downtime/2). Nodes listed in `spare` are never chosen (protect
  /// the query source, a bench's measurement target, ...).
  FaultPlan& random_churn(std::uint32_t events, Ticks from, Ticks until, Ticks mean_downtime,
                          std::uint64_t seed, std::vector<std::uint32_t> spare = {});

  [[nodiscard]] bool needs_loss_hooks() const noexcept { return !loss_episodes_.empty(); }
  [[nodiscard]] bool needs_behavior_hook() const noexcept { return !byzantine_.empty(); }
  [[nodiscard]] bool needs_link_hook() const noexcept {
    return !partitions_.empty() || !cut_links_.empty();
  }

  /// One builder call per line, in builder-call syntax — enough to re-type
  /// a failing fuzz schedule by hand. Logged alongside the generating seed
  /// in the fuzz harness's failure artifacts.
  [[nodiscard]] std::string describe() const;

 private:
  friend class FaultInjector;

  struct CrashSpec {
    std::uint32_t node = 0;
    Ticks at = 0;
    Ticks recover_at = 0;  ///< 0 = permanent
  };
  struct FlapSpec {
    std::uint32_t node = 0;
    Ticks start = 0;
    Ticks down = 0;
    Ticks up = 0;
    std::uint32_t cycles = 0;
  };
  struct OutageSpec {
    std::vector<std::uint32_t> nodes;
    Ticks at = 0;
    Ticks duration = 0;
    std::uint32_t strikes = 1;
    Ticks strike_gap = 0;
  };
  struct PartitionSpec {
    std::vector<std::vector<std::uint32_t>> groups;
    Ticks at = 0;
    Ticks heal_at = 0;  ///< 0 = permanent
  };
  struct CutLinkSpec {
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    Ticks at = 0;
    Ticks heal_at = 0;  ///< 0 = permanent
  };
  struct LossSpec {
    double probability = 0.0;
    Ticks from = 0;
    Ticks until = 0;
  };
  struct ByzantineSpec {
    std::uint32_t node = 0;
    overlay::NodeBehavior behavior = overlay::NodeBehavior::kHonest;
    Ticks at = 0;
  };
  struct ChurnSpec {
    std::uint32_t events = 0;
    Ticks from = 0;
    Ticks until = 0;
    Ticks mean_downtime = 0;
    std::uint64_t seed = 0;
    std::vector<std::uint32_t> spare;
  };

  std::vector<CrashSpec> crashes_;
  std::vector<FlapSpec> flaps_;
  std::vector<OutageSpec> outages_;
  std::vector<PartitionSpec> partitions_;
  std::vector<CutLinkSpec> cut_links_;
  std::vector<LossSpec> loss_episodes_;
  std::vector<ByzantineSpec> byzantine_;
  std::vector<ChurnSpec> churn_;
};

/// Transitions actually applied (filtered through the per-node down
/// refcount), observable after — or during — a run.
struct FaultInjectorStats {
  std::uint64_t kills = 0;             ///< alive -> dead transitions
  std::uint64_t revivals = 0;          ///< dead -> alive transitions
  std::uint64_t link_cuts = 0;         ///< directed links passable -> severed
  std::uint64_t link_heals = 0;        ///< directed links severed -> passable
  std::uint64_t loss_changes = 0;      ///< set_loss invocations (incl. restores)
  std::uint64_t behavior_changes = 0;  ///< insider switches applied
};

class FaultInjector {
 public:
  /// The target's simulator/hooks must outlive the injector; the injector
  /// itself must outlive the run (scheduled events point back into it).
  FaultInjector(FaultTarget target, FaultPlan plan);

  /// Expands the plan into simulator events, offset from the current
  /// simulation instant. Call exactly once, before running the schedule
  /// window.
  void arm();

  /// Attaches the trace stream (kill/revive/link/loss/behavior events as
  /// they are applied); null detaches. Must outlive the run.
  void set_tracer(trace::Tracer* tracer) { trace_ = tracer; }

  [[nodiscard]] const FaultInjectorStats& stats() const noexcept { return stats_; }

  /// True while any armed fault window holds `node` down.
  [[nodiscard]] bool held_down(std::uint32_t node) const;

  /// True while any armed partition/cut window severs the directed link
  /// `from` -> `to`. Both directions are severed together by every builder,
  /// but the state is tracked (and queryable) per direction.
  [[nodiscard]] bool link_severed(std::uint32_t from, std::uint32_t to) const;

 private:
  void schedule_down(std::uint32_t node, Ticks at);
  void schedule_up(std::uint32_t node, Ticks at);
  void apply_down(std::uint32_t node);
  void apply_up(std::uint32_t node);
  void schedule_link_window(std::uint32_t a, std::uint32_t b, Ticks at, Ticks heal_at);
  void apply_link_down(std::uint32_t a, std::uint32_t b);
  void apply_link_up(std::uint32_t a, std::uint32_t b);

  FaultTarget target_;
  FaultPlan plan_;
  FaultInjectorStats stats_;
  trace::Tracer* trace_ = nullptr;
  std::vector<std::uint32_t> down_count_;
  /// Directed (from, to) -> number of severing windows currently in force.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t> link_down_count_;
  bool armed_ = false;
};

}  // namespace hours::sim
