// Event-driven overlay-ring protocol: periodic neighbor probing,
// conventional neighborhood recovery, and Section 4.3's *active recovery*.
//
// This is the message-level counterpart of the graph engine. Nodes know only
// their own routing table; liveness is learned through probe/ack timeouts,
// gaps are bridged by Repair messages exactly as Figure 3 describes:
//
//   * every node probes its clockwise successor and counter-clockwise
//     neighbor once per probe period;
//   * when a clockwise successor dies, the node walks its table for the next
//     responsive sibling and claims to be its counter-clockwise neighbor
//     (conventional recovery — works while gaps are shorter than k);
//   * when a node's counter-clockwise side goes silent for a full probe
//     period with no claim arriving, it infers massive failure and emits a
//     Repair message destined to itself; the node that cannot forward the
//     Repair any closer creates a routing entry for the originator and
//     becomes its new counter-clockwise neighbor, closing the gap.
//
// Queries ride the same machinery (greedy with per-hop timeout fallback and
// backward mode), so integration tests can show end-to-end service before,
// during, and after recovery.
//
// Every protocol continuation (probe callbacks, repair retries, query hops)
// is expressed as a snapshot::Described datum dispatched through
// run_continuation() — the same dispatcher on the live path and after a
// snapshot restore — making the whole simulation serializable mid-flight
// (RingSimulation is a snapshot::Participant). The only opaque events are
// client_attempt() callbacks, which belong to an external query client.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "liveness/liveness.hpp"
#include "overlay/params.hpp"
#include "overlay/routing_table.hpp"
#include "rng/xoshiro256.hpp"
#include "sim/simulator.hpp"
#include "sim/transport.hpp"
#include "snapshot/participant.hpp"
#include "trace/registry.hpp"
#include "trace/sink.hpp"

namespace hours::sim {

struct RingSimConfig {
  std::uint32_t size = 16;
  overlay::OverlayParams params;  // design/k/q/seed for table generation
  std::uint64_t seed = 0x52494E47ULL;

  Ticks probe_period = 1000;
  Ticks latency_min = 10;
  Ticks latency_max = 50;
  Ticks ack_timeout = 250;  ///< must exceed 2 * latency_max
  double loss_probability = 0.0;  ///< i.i.d. per transmission (incl. acks)
  /// Consecutive probe misses before a neighbor is declared dead. One miss
  /// is enough on loss-free links; lossy links need >= 2-3 or false
  /// suspicion keeps churning the ring.
  std::uint32_t probe_failure_threshold = 1;
  /// Each probe cycle, additionally re-probe one peer from the suspicion
  /// set (round-robin). A recovered peer — revived, or back in reach after
  /// a partition healed — is unsuspected on ack; when it invalidates this
  /// node's ring geometry the node adopts it (clockwise side) or re-runs
  /// Section 4.3 active recovery (counter-clockwise side). The latter is
  /// what re-merges two self-healed half-rings after a partition lifts;
  /// without refresh, disjoint halves never contact each other again.
  bool suspicion_refresh = true;
  /// Evidence-source selection for the liveness plane: kProbeOnly keeps
  /// today's timeout-only inference bit for bit; kGossip additionally
  /// piggybacks bounded suspicion digests on every transport frame (probes,
  /// repairs, queries and their acks alike — no new message types).
  liveness::Config liveness;
};

class RingSimulation : public snapshot::Participant {
 public:
  explicit RingSimulation(RingSimConfig config);

  [[nodiscard]] Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] const RingSimConfig& config() const noexcept { return config_; }

  /// Schedules the initial (staggered) probe timers. Call once — and not at
  /// all when the simulation is about to be restored from a snapshot.
  void start();

  void kill(ids::RingIndex i);
  void revive(ids::RingIndex i);
  [[nodiscard]] bool alive(ids::RingIndex i) const;

  /// Adjusts the transport loss rate mid-run (lossy-link fault episodes).
  void set_loss_probability(double p) { transport_.set_loss_probability(p); }
  [[nodiscard]] double loss_probability() const noexcept {
    return transport_.loss_probability();
  }

  /// Installs the transport's per-link reachability predicate (partition and
  /// link-cut faults); null restores full connectivity. Severed links look
  /// like dead peers: sends time out, probes raise suspicion.
  void set_link_filter(LinkFilter filter) { transport_.set_link_filter(std::move(filter)); }

  // -- observability -------------------------------------------------------------
  /// Attaches the trace stream (probe/suspect/recovery/query events, plus
  /// transport drops); null detaches. Must outlive the run.
  void set_tracer(trace::Tracer* tracer) {
    trace_ = tracer;
    transport_.set_tracer(tracer);
  }

  /// The run's counter registry ("ring.probes_sent", ...).
  [[nodiscard]] trace::Registry& registry() noexcept { return registry_; }
  [[nodiscard]] const trace::Registry& registry() const noexcept { return registry_; }

  // -- snapshot (snapshot::Participant) -----------------------------------------
  [[nodiscard]] std::string section() const override { return "ring"; }
  [[nodiscard]] snapshot::Json save_state(std::string& error) const override;
  [[nodiscard]] std::string restore_state(const snapshot::Json& state) override;
  [[nodiscard]] std::function<void()> rebuild_event(
      const snapshot::Described& desc) override;

  // -- protocol introspection (tests) ------------------------------------------
  [[nodiscard]] ids::RingIndex cw_successor(ids::RingIndex i) const;
  [[nodiscard]] ids::RingIndex ccw_neighbor(ids::RingIndex i) const;

  /// True if following cw-successor pointers from any alive node visits every
  /// alive node exactly once and returns — i.e. no gap survived.
  [[nodiscard]] bool ring_connected() const;

  /// True while node `i` believes `peer` is dead (timeout- or
  /// gossip-inferred; the liveness plane does not distinguish for routing).
  [[nodiscard]] bool suspects(ids::RingIndex i, ids::RingIndex peer) const;

  /// The unified suspicion store (DESIGN.md §11); read-only introspection
  /// for tests and benches.
  [[nodiscard]] const liveness::LivenessView& liveness() const noexcept {
    return liveness_;
  }

  [[nodiscard]] std::uint64_t probes_sent() const noexcept { return probes_sent_.value(); }
  [[nodiscard]] std::uint64_t repairs_sent() const noexcept { return repairs_sent_.value(); }
  [[nodiscard]] std::uint64_t claims_sent() const noexcept { return claims_sent_.value(); }
  /// Messages suppressed by the link filter (severed-link traffic).
  [[nodiscard]] std::uint64_t messages_link_dropped() const noexcept {
    return transport_.messages_link_dropped();
  }

  // -- queries -------------------------------------------------------------------
  struct QueryOutcome {
    bool done = false;
    bool delivered = false;
    std::uint32_t hops = 0;
    Ticks completed_at = 0;
  };

  /// Injects a query at `from` destined to overlay node `od`; returns its id.
  std::uint64_t inject_query(ids::RingIndex from, ids::RingIndex od);
  [[nodiscard]] const QueryOutcome& query(std::uint64_t qid) const;

  // -- client-driven queries (sim/query_client.hpp) -------------------------------
  /// The ordered next-hop candidates node `at` would offer a query toward
  /// overlay destination `od`, from its local table and suspicion state only
  /// (no liveness oracle). Flips `backward` when greedy progress is
  /// exhausted, exactly as Algorithm 3 line 14 does for in-network queries.
  [[nodiscard]] std::vector<ids::RingIndex> route_candidates(ids::RingIndex at,
                                                             ids::RingIndex od,
                                                             bool& backward) const;

  /// One custody-transfer attempt from `at` to `to` on behalf of an external
  /// query client: rides the transport's ack/timeout primitive, so exactly
  /// one of the callbacks fires. The receiving node takes no protocol action.
  /// Uses opaque (closure) callbacks: snapshotting is unavailable while one
  /// is outstanding.
  void client_attempt(ids::RingIndex at, ids::RingIndex to, std::function<void()> on_ack,
                      std::function<void()> on_timeout);

 private:
  struct Message {
    enum class Type : std::uint8_t {
      kProbe,
      kCcwInfo,  ///< probe response: "my counter-clockwise neighbor is msg.origin"
      kNeighborClaim,
      kRepair,
      kQuery,
      kClientHop,  ///< client-driven custody transfer; only the ack matters
    };
    Type type = Type::kProbe;
    ids::RingIndex origin = 0;  ///< Repair: the gap-side originator
    /// Causal id: the query's qid, or the repair id minted by
    /// start_active_recovery() (carried by Repair and its closing
    /// NeighborClaim so a recovery episode traces end to end).
    std::uint64_t qid = 0;
    ids::RingIndex od = 0;   ///< Query: overlay destination
    bool backward = false;   ///< Query: Algorithm 3 mode bit
    std::uint32_t hops = 0;  ///< Query: hops so far
  };

  struct Node {
    bool alive = true;
    overlay::RoutingTable table{0, 1};
    ids::RingIndex cw_succ = 0;
    ids::RingIndex ccw = 0;
    bool ccw_suspected = false;
    bool awaiting_claim = false;
    std::uint32_t cw_miss_count = 0;   ///< consecutive failed probes of cw_succ
    std::uint32_t ccw_miss_count = 0;  ///< consecutive failed probes of ccw
    std::uint64_t awaiting_check_event = 0;
    /// Round-robin position in this node's suspicion rows (liveness_).
    ids::RingIndex refresh_cursor = 0;
  };

  // Message <-> u64 words (transport snapshot codec; encode appends).
  static void encode_message(const Message& msg, std::vector<std::uint64_t>& out);
  static Message decode_message(const std::uint64_t* words, std::size_t count);

  /// Executes one described continuation — the single dispatch point for
  /// the live path and the restore path.
  void run_continuation(const snapshot::Described& cont);

  void send_expect_ack(ids::RingIndex from, ids::RingIndex to, Message msg,
                       std::function<void()> on_ack, std::function<void()> on_timeout);
  void send_expect_ack(ids::RingIndex from, ids::RingIndex to, Message msg,
                       snapshot::Described on_ack, snapshot::Described on_timeout);
  void handle(ids::RingIndex at, ids::RingIndex from, const Message& msg);

  // Probing and recovery. The *_ack / *_timeout methods are the bodies of
  // continuations; their arguments mirror the continuation args.
  void schedule_probe(ids::RingIndex i, Ticks delay);
  void probe_cycle(ids::RingIndex i);
  void cw_probe_timeout(ids::RingIndex i, ids::RingIndex succ);
  void ccw_probe_timeout(ids::RingIndex i, ids::RingIndex ccw);
  void refresh_suspected(ids::RingIndex i);
  void on_suspect_recovered(ids::RingIndex i, ids::RingIndex peer);
  void advance_cw_successor(ids::RingIndex i, std::vector<ids::RingIndex> candidates);
  void advance_ack(ids::RingIndex i, ids::RingIndex candidate);
  void ccw_silence_check(ids::RingIndex i);
  void start_active_recovery(ids::RingIndex origin);
  void forward_repair(ids::RingIndex at, ids::RingIndex origin, std::uint64_t rid);
  void repair_attempt(ids::RingIndex at, ids::RingIndex origin, std::uint64_t rid,
                      std::vector<ids::RingIndex> remaining);
  void attach_repair(ids::RingIndex at, ids::RingIndex origin, std::uint64_t rid);

  /// Marks `peer` suspected at node `i` (with the trace event); the
  /// scattered timeout handlers all funnel through here.
  void suspect_peer(ids::RingIndex i, ids::RingIndex peer);

  // Gossip evidence source: digest construction/adoption hooks installed on
  // the transport when config_.liveness.mode == kGossip.
  void build_digest_words(ids::RingIndex from, std::vector<std::uint64_t>& out);
  void apply_digest_words(ids::RingIndex at, ids::RingIndex from,
                          const std::uint64_t* words, std::size_t count);

  // Queries.
  void process_query(ids::RingIndex at, Message msg);
  void try_query_candidates(ids::RingIndex at, Message msg,
                            std::vector<ids::RingIndex> candidates);
  void finish_query(std::uint64_t qid, bool delivered, std::uint32_t hops);

  /// Greedy candidates at `at` toward `target`, nearest-to-target first,
  /// excluding `target` itself and suspected peers.
  [[nodiscard]] std::vector<ids::RingIndex> progress_candidates(const Node& node,
                                                                ids::RingIndex at,
                                                                ids::RingIndex target) const;

  RingSimConfig config_;
  Simulator sim_;
  rng::Xoshiro256 rng_;
  std::vector<Node> nodes_;
  Transport<Message> transport_;
  liveness::LivenessView liveness_;

  std::uint64_t next_qid_ = 1;
  std::uint64_t next_rid_ = 1;  ///< repair-episode causal ids
  std::map<std::uint64_t, QueryOutcome> queries_;

  trace::Registry registry_;
  trace::Tracer* trace_ = nullptr;
  trace::Counter probes_sent_;
  trace::Counter repairs_sent_;
  trace::Counter claims_sent_;
  // Registered only in gossip mode so the probe-only registry (and its
  // snapshot serialization) stays byte-identical to the legacy format.
  std::optional<trace::Counter> digests_sent_;
  std::optional<trace::Counter> digest_entries_sent_;
  std::optional<trace::Counter> gossip_adopted_;
};

}  // namespace hours::sim
