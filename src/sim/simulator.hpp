// Discrete-event simulation engine.
//
// Single-threaded by design: events execute in (time, insertion) order, so
// protocol state needs no locking and every run is bit-reproducible for a
// given seed. The engine knows nothing about networks or nodes; it executes
// closures at simulated instants.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/contracts.hpp"

namespace hours::sim {

/// Simulated time in abstract ticks (protocol periods are configured in the
/// same unit; nothing depends on a real-time interpretation).
using Ticks = std::uint64_t;

class Simulator {
 public:
  using Action = std::function<void()>;

  [[nodiscard]] Ticks now() const noexcept { return now_; }

  /// Schedules `action` to run at now() + delay. Returns an id usable with
  /// cancel().
  std::uint64_t schedule(Ticks delay, Action action);

  /// Cancels a scheduled event; no-op if it already ran, was cancelled, or
  /// never existed.
  void cancel(std::uint64_t id);

  /// Runs events until the queue drains or `limit` ticks pass (0 = no time
  /// limit). Returns the number of events executed.
  std::size_t run(Ticks limit = 0, std::size_t max_events = 10'000'000);

  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size() - cancelled_.size(); }

 private:
  struct Event {
    Ticks at;
    std::uint64_t id;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;  // FIFO among same-instant events
    }
  };

  Ticks now_ = 0;
  std::uint64_t next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<std::uint64_t> live_;       // scheduled, not yet run/cancelled
  std::unordered_set<std::uint64_t> cancelled_;  // cancelled, still queued
};

}  // namespace hours::sim
