// Discrete-event simulation engine.
//
// Single-threaded by design: events execute in (time, insertion) order, so
// protocol state needs no locking and every run is bit-reproducible for a
// given seed. The engine knows nothing about networks or nodes; it executes
// events at simulated instants.
//
// The event store is a hierarchical timer wheel over a slab arena
// (util/arena.hpp): six levels of 64 slots whose granularity grows by 64x
// per level, with per-level occupancy bitmaps, intrusive doubly-linked
// per-slot lists, and an overflow list beyond the ~2^36-tick horizon.
// Scheduling and cancellation are O(1); finding the next event cascades a
// slot down one level at a time (amortized O(levels) per event). Event
// payloads live in reused slab slots, so the steady state allocates
// nothing. Exact (at, id) FIFO order is preserved: a level-0 slot holds a
// single tick and is drained in id order.
//
// Events come in two dispatch forms. The closure overloads carry a
// std::function (required for opaque events and for subsystems whose
// described form alone cannot identify the handler). The described-only
// overloads carry just (kind, args) and dispatch through the installed
// runner — the hot path: no per-event allocation at all. Events scheduled
// through the legacy closure-only overload are *opaque* (kind 0) and make
// the queue unserializable while present. restore_event() re-instates a
// saved event under its ORIGINAL id, so same-instant FIFO tie-breaking
// after a restore is byte-identical to the uninterrupted run.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "snapshot/described.hpp"
#include "snapshot/event_kinds.hpp"
#include "util/arena.hpp"
#include "util/contracts.hpp"

namespace hours::sim {

/// Simulated time in abstract ticks (protocol periods are configured in the
/// same unit; nothing depends on a real-time interpretation).
using Ticks = std::uint64_t;

class Simulator {
 public:
  using Action = std::function<void()>;
  /// Dispatcher for described-only events: receives the event's kind and
  /// argument words. The words point into the event's slab slot and are
  /// valid only for the duration of the call.
  using Runner =
      std::function<void(std::uint32_t kind, const std::uint64_t* args, std::size_t count)>;

  /// One queued event's inspectable form (snapshot save path).
  struct PendingEvent {
    Ticks at = 0;
    std::uint64_t id = 0;
    snapshot::Described desc;
  };

  Simulator();

  [[nodiscard]] Ticks now() const noexcept { return now_; }

  /// Installs the dispatcher for described-only events. Must be installed
  /// before the first runner-dispatched event executes.
  void set_runner(Runner runner) { runner_ = std::move(runner); }

  /// Schedules an opaque `action` to run at now() + delay. Returns an id
  /// usable with cancel(). Opaque events execute normally but block
  /// snapshot save while queued; prefer the described overloads.
  std::uint64_t schedule(Ticks delay, Action action);

  /// Schedules an action together with its data form. `desc.kind` must be a
  /// registered kind (event_kinds.hpp) and `action` must be derived from
  /// `desc` alone, so a restored snapshot rebuilds the identical closure.
  std::uint64_t schedule(Ticks delay, snapshot::Described desc, Action action);

  /// Described-only scheduling: the event is dispatched through the
  /// installed runner. The hot path — `args` is copied into a reused slab
  /// slot, no allocation in steady state.
  std::uint64_t schedule(Ticks delay, std::uint32_t kind, const std::uint64_t* args,
                         std::size_t count);
  std::uint64_t schedule(Ticks delay, snapshot::Described desc) {
    return schedule(delay, desc.kind, desc.args.data(), desc.args.size());
  }

  /// Cancels a scheduled event; no-op if it already ran, was cancelled, or
  /// never existed.
  void cancel(std::uint64_t id);

  /// Runs events until the queue drains or `limit` ticks pass (0 = no time
  /// limit). Returns the number of events executed; when the return value
  /// equals `max_events`, check truncated() — a silently capped run would
  /// corrupt delivery statistics.
  std::size_t run(Ticks limit = 0, std::size_t max_events = 10'000'000);

  /// True when the most recent run() stopped at `max_events` with events
  /// still due (within its time limit) left unexecuted.
  [[nodiscard]] bool truncated() const noexcept { return truncated_; }

  /// Cumulative events executed over this simulator's lifetime (monotone;
  /// unaffected by reset()). Scale benches derive events/sec from deltas.
  [[nodiscard]] std::uint64_t executed_total() const noexcept { return executed_total_; }

  [[nodiscard]] std::size_t pending() const noexcept { return slab_.live(); }

  // -- snapshot support ---------------------------------------------------------
  /// The id the next scheduled event will receive (saved, so a restore can
  /// continue the same id sequence — the FIFO tie-break depends on it).
  [[nodiscard]] std::uint64_t next_id() const noexcept { return next_id_; }

  /// Every queued event in execution order. Opaque events appear with
  /// desc.kind == snapshot::kOpaque. Cold path: flat slab scan + sort.
  [[nodiscard]] std::vector<PendingEvent> pending_events() const;

  /// Ids of queued opaque events (empty = the queue is serializable).
  [[nodiscard]] std::vector<std::uint64_t> opaque_event_ids() const;

  /// Drops every queued event and rewinds/forwards the clock and the id
  /// counter to a saved instant. First step of a restore.
  void reset(Ticks now, std::uint64_t next_id);

  /// Re-instates a saved event under its original id (must be < next_id and
  /// unused; `at` must not be in the past). The caller supplies the closure
  /// rebuilt from `desc` by the owning subsystem.
  void restore_event(Ticks at, std::uint64_t id, snapshot::Described desc, Action action);

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFU;
  static constexpr int kLevelBits = 6;
  static constexpr std::uint32_t kSlots = 1U << kLevelBits;  // 64
  static constexpr int kLevels = 6;
  /// Sentinels for EventSlot::home beyond the wheel levels.
  static constexpr std::uint8_t kHomeAnte = 0xFE;      ///< antechamber list
  static constexpr std::uint8_t kHomeOverflow = 0xFF;  ///< beyond the horizon

  struct EventSlot {
    Ticks at = 0;
    std::uint64_t id = 0;
    std::uint32_t kind = snapshot::kOpaque;
    std::uint32_t prev = kNil;  ///< intrusive links within the home list
    std::uint32_t next = kNil;
    std::uint8_t home = 0;   ///< wheel level, kHomeAnte, or kHomeOverflow
    std::uint8_t bucket = 0; ///< slot index within the level (levels only)
    bool live = false;
    bool has_action = false;
    std::vector<std::uint64_t> args;  ///< capacity survives slot reuse
    Action action;
  };

  struct Level {
    std::uint64_t occupied = 0;                 ///< bit b set = heads[b] non-empty
    std::array<std::uint32_t, kSlots> heads{};  ///< slot list heads
    /// Window start in units of this level's granularity: events here have
    /// (at >> shift) in [base, base + 64). Windows are NESTED across levels
    /// (window L is contained in one slot span of window L+1), which is
    /// what makes "lowest occupied level holds the global minimum" true.
    std::uint64_t base = 0;
  };

  [[nodiscard]] static int level_shift(int level) noexcept { return kLevelBits * level; }

  std::uint64_t insert(Ticks at, std::uint64_t id, std::uint32_t kind,
                       const std::uint64_t* args, std::size_t count, Action action);
  void place(std::uint32_t index);       ///< link a filled slot into its home
  void unlink(std::uint32_t index);      ///< remove from its home list
  void dispatch_and_free(std::uint32_t index);

  /// Re-anchors every window to contain `at` (queue must be empty).
  void rebase(Ticks at);

  /// Index of the next event in (at, id) order, cascading wheel slots as
  /// needed; kNil when the queue is empty. Does not unlink.
  [[nodiscard]] std::uint32_t find_next();

  /// Min-(at,id) scan of one linked list; kNil for an empty list.
  [[nodiscard]] std::uint32_t list_min(std::uint32_t head) const;

  Ticks now_ = 0;
  std::uint64_t next_id_ = 1;
  bool truncated_ = false;
  std::uint64_t executed_total_ = 0;

  util::Slab<EventSlot> slab_;
  std::unordered_map<std::uint64_t, std::uint32_t> index_of_;  ///< id -> slab index

  std::array<Level, kLevels> levels_;
  /// Events earlier than window 0's start (scheduled after a deadline-
  /// bounded run left the windows anchored ahead of now). Always drained
  /// before the wheel; normally empty.
  std::uint32_t ante_head_ = kNil;
  /// Events beyond the top window (~2^36 ticks out). Refilled into the
  /// wheel when the levels drain.
  std::uint32_t overflow_head_ = kNil;

  Runner runner_;
};

}  // namespace hours::sim
