// Discrete-event simulation engine.
//
// Single-threaded by design: events execute in (time, insertion) order, so
// protocol state needs no locking and every run is bit-reproducible for a
// given seed. The engine knows nothing about networks or nodes; it executes
// closures at simulated instants.
//
// The event store is an ordered map keyed by (at, id) — inspectable and
// deterministically ordered, which is what snapshot/restore requires of it.
// Each event carries an optional snapshot::Described data form (kind +
// args); events scheduled through the legacy closure-only overload are
// *opaque* (kind 0) and make the queue unserializable while present.
// restore_event() re-instates a saved event under its ORIGINAL id, so
// same-instant FIFO tie-breaking after a restore is byte-identical to the
// uninterrupted run.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "snapshot/described.hpp"
#include "snapshot/event_kinds.hpp"
#include "util/contracts.hpp"

namespace hours::sim {

/// Simulated time in abstract ticks (protocol periods are configured in the
/// same unit; nothing depends on a real-time interpretation).
using Ticks = std::uint64_t;

class Simulator {
 public:
  using Action = std::function<void()>;

  /// One queued event's inspectable form (snapshot save path).
  struct PendingEvent {
    Ticks at = 0;
    std::uint64_t id = 0;
    snapshot::Described desc;
  };

  [[nodiscard]] Ticks now() const noexcept { return now_; }

  /// Schedules an opaque `action` to run at now() + delay. Returns an id
  /// usable with cancel(). Opaque events execute normally but block
  /// snapshot save while queued; prefer the described overload.
  std::uint64_t schedule(Ticks delay, Action action);

  /// Schedules an action together with its data form. `desc.kind` must be a
  /// registered kind (event_kinds.hpp) and `action` must be derived from
  /// `desc` alone, so a restored snapshot rebuilds the identical closure.
  std::uint64_t schedule(Ticks delay, snapshot::Described desc, Action action);

  /// Cancels a scheduled event; no-op if it already ran, was cancelled, or
  /// never existed.
  void cancel(std::uint64_t id);

  /// Runs events until the queue drains or `limit` ticks pass (0 = no time
  /// limit). Returns the number of events executed.
  std::size_t run(Ticks limit = 0, std::size_t max_events = 10'000'000);

  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

  // -- snapshot support ---------------------------------------------------------
  /// The id the next scheduled event will receive (saved, so a restore can
  /// continue the same id sequence — the FIFO tie-break depends on it).
  [[nodiscard]] std::uint64_t next_id() const noexcept { return next_id_; }

  /// Every queued event in execution order. Opaque events appear with
  /// desc.kind == snapshot::kOpaque.
  [[nodiscard]] std::vector<PendingEvent> pending_events() const;

  /// Ids of queued opaque events (empty = the queue is serializable).
  [[nodiscard]] std::vector<std::uint64_t> opaque_event_ids() const;

  /// Drops every queued event and rewinds/forwards the clock and the id
  /// counter to a saved instant. First step of a restore.
  void reset(Ticks now, std::uint64_t next_id);

  /// Re-instates a saved event under its original id (must be < next_id and
  /// unused; `at` must not be in the past). The caller supplies the closure
  /// rebuilt from `desc` by the owning subsystem.
  void restore_event(Ticks at, std::uint64_t id, snapshot::Described desc, Action action);

 private:
  struct Key {
    Ticks at = 0;
    std::uint64_t id = 0;
    bool operator<(const Key& other) const noexcept {
      if (at != other.at) return at < other.at;
      return id < other.id;  // FIFO among same-instant events
    }
  };
  struct Entry {
    snapshot::Described desc;
    Action action;
  };

  std::uint64_t insert(Ticks at, std::uint64_t id, snapshot::Described desc, Action action);

  Ticks now_ = 0;
  std::uint64_t next_id_ = 1;
  std::map<Key, Entry> queue_;
  std::unordered_map<std::uint64_t, Ticks> at_of_;  ///< id -> at, for cancel()
};

}  // namespace hours::sim
