// Event-driven, message-level simulation of a full HOURS-protected service
// hierarchy.
//
// Where the graph engine (hierarchy/router.hpp) consults a liveness oracle,
// here every forwarding decision is taken by a node process from purely
// local state: its routing table (Algorithm 1), a suspicion set learned
// from ack timeouts, and the Algorithm 2/3 rules. Queries travel as
// messages with per-hop acks; dead servers simply never answer, and the
// sender walks its candidate list on each timeout. This demonstrates the
// protocol end to end under realistic asynchrony, including message loss.
//
// Scale note: node state is struct-of-arrays — flat u32 index tables for
// the topology (parent/first-child/sibling-ring), one byte per node of
// behavior, a single global suspicion map, and routing tables materialized
// lazily on first touch (a pure function of the configuration, so lazy and
// eager construction are bitwise identical). Constructing a million-node
// hierarchy costs five flat vectors; overlays are paid for only where
// traffic actually lands.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "hierarchy/node_path.hpp"
#include "liveness/liveness.hpp"
#include "overlay/overlay.hpp"
#include "overlay/params.hpp"
#include "overlay/routing_table.hpp"
#include "rng/xoshiro256.hpp"
#include "sim/simulator.hpp"
#include "sim/transport.hpp"
#include "snapshot/participant.hpp"
#include "trace/registry.hpp"
#include "trace/sink.hpp"

namespace hours::sim {

/// An explicit (possibly irregular) tree shape: `child_counts[i]` is the
/// number of children of node i in breadth-first order, root first, with
/// each node's children assigned contiguous ids in parent order. This is
/// exactly the id layout the uniform-fanout constructor produces, so
/// `topology_from_fanout` round-trips. Used to mirror an admitted
/// NamedHierarchy (whose zones rarely have equal sizes) into the event
/// engine (hours::EventBackend).
struct TreeTopology {
  std::vector<std::uint32_t> child_counts;

  /// Total node count must equal 1 + sum(child_counts).
  [[nodiscard]] bool consistent() const noexcept;
};

[[nodiscard]] TreeTopology topology_from_fanout(const std::vector<std::uint32_t>& fanout);

struct HierarchySimConfig {
  /// fanout[i] = children per level-i node (small trees; every node is
  /// materialized as a process). Ignored by the TreeTopology constructor.
  std::vector<std::uint32_t> fanout{8, 8};
  overlay::OverlayParams params;
  TransportConfig transport;
  std::uint64_t seed = 0x486965722dULL;
  /// How long an ack-timeout keeps a peer suspected. Periodic probing would
  /// refresh liveness in a deployment; expiry models that, so transient
  /// (loss-induced) false suspicion heals. 0 disables expiry.
  Ticks suspicion_ttl = liveness::kDefaultSuspicionTtl;
  /// Evidence-source selection (DESIGN.md §11): kProbeOnly keeps the
  /// timeout-only inference bit for bit; kGossip piggybacks bounded
  /// suspicion digests on transport frames, adopted only within the
  /// receiver's sibling ring.
  liveness::Config liveness;
  /// When true, backward forwarding steps to the nearest alive
  /// counter-clockwise sibling (active recovery assumed converged — the
  /// ring protocol in sim/ring_protocol.hpp demonstrates the convergence
  /// itself). When false, a dead counter-clockwise neighbor dead-ends the
  /// query.
  bool assume_ring_repaired = true;
};

class HierarchySimulation : public snapshot::Participant {
 public:
  explicit HierarchySimulation(HierarchySimConfig config);

  /// Materializes an explicit tree shape instead of uniform per-level
  /// fanouts; `config.fanout` is ignored. For a topology equal to
  /// `topology_from_fanout(config.fanout)` this reproduces the uniform
  /// constructor bit-for-bit (same ids, same routing tables).
  HierarchySimulation(HierarchySimConfig config, const TreeTopology& topology);

  [[nodiscard]] Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] const HierarchySimConfig& config() const noexcept { return config_; }

  [[nodiscard]] std::uint32_t node_count() const noexcept {
    return static_cast<std::uint32_t>(parent_.size());
  }

  // -- topology ------------------------------------------------------------------
  [[nodiscard]] std::uint32_t id_of(const hierarchy::NodePath& path) const;
  /// Reconstructs the path by walking the flat parent table upward.
  [[nodiscard]] hierarchy::NodePath path_of(std::uint32_t id) const;
  /// id_of without the existence precondition: -1 when `path` leaves the
  /// tree's bounds.
  [[nodiscard]] std::int64_t find_id(const hierarchy::NodePath& path) const;

  // -- liveness ------------------------------------------------------------------
  void kill(const hierarchy::NodePath& path);
  void revive(const hierarchy::NodePath& path);
  [[nodiscard]] bool alive(const hierarchy::NodePath& path) const;
  /// Id-addressed forms (no path materialization; the hot path for
  /// fault-injection and facade mirroring at scale). Named distinctly from
  /// the path forms so single-element braced paths like `kill({2})` keep
  /// resolving to the NodePath overload.
  void kill_id(std::uint32_t id);
  void revive_id(std::uint32_t id);
  [[nodiscard]] bool alive_id(std::uint32_t id) const;

  /// Adjusts the transport loss rate mid-run (lossy-link fault episodes).
  void set_loss_probability(double p) { transport_.set_loss_probability(p); }
  [[nodiscard]] double loss_probability() const noexcept {
    return transport_.loss_probability();
  }

  /// Installs the transport's per-link reachability predicate (partition and
  /// link-cut faults, keyed by node id); null restores full connectivity.
  void set_link_filter(LinkFilter filter) { transport_.set_link_filter(std::move(filter)); }

  // -- observability -------------------------------------------------------------
  /// Attaches the trace stream (hop taxonomy, suspicion, query lifecycle,
  /// plus transport drops); null detaches. Must outlive the run.
  void set_tracer(trace::Tracer* tracer) {
    trace_ = tracer;
    transport_.set_tracer(tracer);
  }

  /// The run's counter/histogram registry ("hier.queries_delivered", ...).
  [[nodiscard]] trace::Registry& registry() noexcept { return registry_; }
  [[nodiscard]] const trace::Registry& registry() const noexcept { return registry_; }

  /// The unified suspicion store (DESIGN.md §11); read-only introspection
  /// for tests and benches.
  [[nodiscard]] const liveness::LivenessView& liveness() const noexcept {
    return liveness_;
  }

  // -- insiders (Section 5.3) ------------------------------------------------------
  /// Compromised-node behavior. Unlike a DoS'd server, an insider *acks*
  /// every message (the transport cannot tell), so a dropper is stealthy:
  /// upstream nodes learn nothing from timeouts and the query simply
  /// vanishes (the client-side outcome stays done = false).
  void set_behavior(const hierarchy::NodePath& path, overlay::NodeBehavior behavior);
  void set_behavior_id(std::uint32_t id, overlay::NodeBehavior behavior);

  // -- queries -------------------------------------------------------------------
  struct QueryOutcome {
    bool done = false;
    bool delivered = false;
    std::uint32_t hops = 0;           ///< successful transfers
    std::uint32_t timeouts = 0;       ///< dead/lossy attempts that timed out
    Ticks completed_at = 0;
  };

  /// Injects a query at the root (default) or `start` for `dest`.
  std::uint64_t inject_query(const hierarchy::NodePath& dest,
                             const hierarchy::NodePath& start = {});
  [[nodiscard]] const QueryOutcome& query(std::uint64_t qid) const;

  /// Convenience: injects, runs the simulator until the query settles (or
  /// `max_events` fire), and returns the outcome.
  QueryOutcome run_query(const hierarchy::NodePath& dest,
                         const hierarchy::NodePath& start = {},
                         std::size_t max_events = 10'000'000);

  [[nodiscard]] std::uint64_t messages_sent() const noexcept {
    return transport_.messages_sent();
  }

  // -- client-driven queries (sim/query_client.hpp) -------------------------------
  /// The ordered next-hop candidate ids node `at` would offer a query toward
  /// `dest`, from its local table and suspicion state only. Flips `backward`
  /// when greedy progress is exhausted (Algorithm 3 line 14).
  [[nodiscard]] std::vector<std::uint32_t> route_candidates(std::uint32_t at,
                                                            const hierarchy::NodePath& dest,
                                                            bool& backward) const;

  /// One custody-transfer attempt from `at` to `to` on behalf of an external
  /// query client; exactly one of the callbacks fires. The receiving node
  /// acks (if alive) but takes no forwarding action of its own.
  ///
  /// Snapshot note: client callbacks are caller-owned closures with no data
  /// form, so saves are blocked while a client attempt is outstanding (the
  /// protocol's own queries serialize fully).
  void client_attempt(std::uint32_t at, std::uint32_t to, std::function<void()> on_ack,
                      std::function<void()> on_timeout);

  // -- snapshot (snapshot/participant.hpp) -----------------------------------------
  // The "hier" section: suspicion state, insider behaviors, the misroute RNG
  // stream, query outcomes, metrics, and the transport — everything mutated
  // after construction. Topology and routing tables are NOT serialized; they
  // are pure functions of the configuration, which the section echoes and
  // restore_state() verifies against the running simulation.
  [[nodiscard]] std::string section() const override { return "hier"; }
  [[nodiscard]] snapshot::Json save_state(std::string& error) const override;
  [[nodiscard]] std::string restore_state(const snapshot::Json& state) override;
  [[nodiscard]] std::function<void()> rebuild_event(
      const snapshot::Described& desc) override;

 private:
  struct Message {
    std::uint64_t qid = 0;
    hierarchy::NodePath dest;
    bool backward = false;    ///< Algorithm 3 mode bit
    bool client_hop = false;  ///< custody transfer for an external client
    std::uint32_t hops = 0;
  };

  /// Shared constructor body: one BFS pass filling the flat index tables.
  void build(const TreeTopology& topology);

  /// The node's routing table, materialized on first touch (tables are pure
  /// functions of the configuration; lazy == eager bitwise).
  [[nodiscard]] const overlay::RoutingTable& table_of(std::uint32_t id) const;

  /// True when the node's path, with `drop` trailing indices removed, is a
  /// prefix of `dest` — computed by walking the parent table upward, no
  /// path materialization.
  [[nodiscard]] bool upward_prefix(std::uint32_t id, std::size_t drop,
                                   const hierarchy::NodePath& dest) const;

  [[nodiscard]] bool is_suspected(std::uint32_t at, std::uint32_t id) const;
  void suspect(std::uint32_t at, std::uint32_t peer);

  // Gossip evidence source: digest construction/adoption hooks installed on
  // the transport when config_.liveness.mode == kGossip.
  void build_digest_words(std::uint32_t from, std::vector<std::uint64_t>& out);
  void apply_digest_words(std::uint32_t at, std::uint32_t from,
                          const std::uint64_t* words, std::size_t count);

  void handle(std::uint32_t at, const Message& msg);
  void try_candidates(std::uint32_t at, Message msg, std::vector<std::uint32_t> candidates);
  void finish(std::uint64_t qid, bool delivered, std::uint32_t hops);

  /// Message <-> u64 words, self-delimiting ([qid, flags, hops, |dest|,
  /// dest...]) so a description can carry a message followed by more args.
  /// encode appends to `out`.
  static void encode_message(const Message& msg, std::vector<std::uint64_t>& out);
  static Message decode_message(const std::uint64_t* words, std::size_t count);

  /// Dispatches a described continuation (kHier* kinds) — the single decode
  /// path shared by live scheduling (the simulator runner) and snapshot
  /// restore.
  void run_continuation(std::uint32_t kind, const std::uint64_t* args, std::size_t count);
  void run_continuation(const snapshot::Described& cont) {
    run_continuation(cont.kind, cont.args.data(), cont.args.size());
  }

  /// The configuration echo stored in a snapshot and verified by
  /// restore_state() (a snapshot only restores into an identically
  /// configured simulation).
  [[nodiscard]] snapshot::Json config_json() const;

  /// Body of the per-attempt ack-timeout continuation: suspect the silent
  /// peer and walk on to the remaining candidates.
  void attempt_timeout(std::uint32_t at, std::uint32_t next, Message msg,
                       std::vector<std::uint32_t> remaining);

  /// Algorithm 2+3 decision at node `at`: ordered candidate ids for the
  /// next hop, or empty when the query must fail here.
  [[nodiscard]] std::vector<std::uint32_t> candidates_at(std::uint32_t at, Message& msg) const;

  /// Classifies the hop `at` -> `next` for the trace taxonomy (Algorithm 2
  /// descent, overlay detour entrance, ring/backward step, or nephew exit).
  [[nodiscard]] trace::EventType hop_kind(std::uint32_t at, std::uint32_t next,
                                          const Message& msg) const;

  [[nodiscard]] std::uint32_t sibling_id(std::uint32_t at, ids::RingIndex index) const {
    return sibling_base_[at] + index;
  }

  HierarchySimConfig config_;
  Simulator sim_;
  // Struct-of-arrays node state, indexed by node id (BFS order, root = 0).
  // A sibling set is the contiguous id range [sibling_base, sibling_base +
  // ring_size); a node's ring index is id - sibling_base.
  std::vector<std::uint32_t> parent_;        ///< self for the root
  std::vector<std::uint32_t> first_child_;   ///< id of child ring index 0
  std::vector<std::uint32_t> child_count_;
  std::vector<std::uint32_t> sibling_base_;  ///< id of sibling ring index 0
  std::vector<std::uint32_t> ring_size_;     ///< sibling overlay size
  std::vector<std::uint16_t> level_;         ///< depth (0 = root)
  std::vector<std::uint8_t> behavior_;       ///< overlay::NodeBehavior
  /// Routing tables materialized on first touch by table_of(). Iteration
  /// order never observed — only keyed lookups — so the unordered map does
  /// not threaten determinism.
  mutable std::unordered_map<std::uint32_t, overlay::RoutingTable> tables_;
  /// The unified suspicion store, keyed (node << 32 | peer) so snapshot
  /// rows come out node-ascending then peer-ascending, exactly as the
  /// per-node maps used to serialize. One map for the whole tree keeps the
  /// SoA memory profile at million-node scale.
  liveness::LivenessView liveness_;
  Transport<Message> transport_;

  rng::Xoshiro256 misroute_rng_{0x5E3ULL};
  std::uint64_t next_qid_ = 1;
  std::map<std::uint64_t, QueryOutcome> queries_;

  trace::Registry registry_;
  trace::Tracer* trace_ = nullptr;
  trace::Counter queries_delivered_;
  trace::Counter queries_failed_;
  trace::Counter hop_timeouts_;
  metrics::Histogram* delivered_hops_ = nullptr;  ///< owned by registry_
  // Registered only in gossip mode so the probe-only registry (and its
  // snapshot serialization) stays byte-identical to the legacy format.
  std::optional<trace::Counter> digests_sent_;
  std::optional<trace::Counter> digest_entries_sent_;
  std::optional<trace::Counter> gossip_adopted_;
};

}  // namespace hours::sim
