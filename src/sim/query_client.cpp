#include "sim/query_client.hpp"

#include <algorithm>

#include "sim/hierarchy_protocol.hpp"
#include "sim/ring_protocol.hpp"
#include "util/contracts.hpp"

namespace hours::sim {

QueryNetwork make_query_network(RingSimulation& ring) {
  QueryNetwork net;
  net.sim = &ring.simulator();
  net.node_count = ring.config().size;
  net.attempt = [&ring](std::uint32_t from, std::uint32_t to, std::function<void()> on_ack,
                        std::function<void()> on_timeout) {
    ring.client_attempt(from, to, std::move(on_ack), std::move(on_timeout));
  };
  net.candidates = [&ring](std::uint32_t at, std::uint32_t dest, bool& backward) {
    return ring.route_candidates(at, dest, backward);
  };
  net.is_destination = [](std::uint32_t at, std::uint32_t dest) { return at == dest; };
  return net;
}

QueryNetwork make_query_network(HierarchySimulation& hierarchy) {
  QueryNetwork net;
  net.sim = &hierarchy.simulator();
  net.node_count = hierarchy.node_count();
  net.attempt = [&hierarchy](std::uint32_t from, std::uint32_t to,
                             std::function<void()> on_ack, std::function<void()> on_timeout) {
    hierarchy.client_attempt(from, to, std::move(on_ack), std::move(on_timeout));
  };
  net.candidates = [&hierarchy](std::uint32_t at, std::uint32_t dest, bool& backward) {
    return hierarchy.route_candidates(at, hierarchy.path_of(dest), backward);
  };
  net.is_destination = [](std::uint32_t at, std::uint32_t dest) { return at == dest; };
  return net;
}

QueryClient::QueryClient(QueryNetwork network, QueryClientConfig config)
    : network_(std::move(network)),
      config_(config),
      jitter_rng_(config.seed),
      liveness_({}, config.suspicion_ttl),
      submitted_(registry_.counter("client.submitted")),
      delivered_(registry_.counter("client.delivered")),
      deadline_exceeded_(registry_.counter("client.deadline_exceeded")),
      no_route_(registry_.counter("client.no_route")),
      retransmissions_(registry_.counter("client.retransmissions")),
      failovers_(registry_.counter("client.failovers")),
      delivered_latency_(&registry_.histogram("client.delivered_latency")) {
  HOURS_EXPECTS(network_.sim != nullptr && network_.node_count > 0);
  HOURS_EXPECTS(network_.attempt != nullptr && network_.candidates != nullptr &&
                network_.is_destination != nullptr);
  HOURS_EXPECTS(config_.jitter >= 0.0 && config_.jitter < 1.0);
  HOURS_EXPECTS(config_.backoff_base > 0 && config_.backoff_cap >= config_.backoff_base);
}

std::uint32_t QueryClient::hop_budget() const noexcept {
  return config_.max_hops != 0 ? config_.max_hops : 4 * network_.node_count + 64;
}

Ticks QueryClient::base_backoff(std::uint32_t retry) const {
  HOURS_EXPECTS(retry >= 1);
  Ticks delay = config_.backoff_base;
  for (std::uint32_t i = 1; i < retry; ++i) {
    if (delay >= config_.backoff_cap) break;
    delay *= 2;
  }
  return std::min(delay, config_.backoff_cap);
}

bool QueryClient::suspected(std::uint32_t node) const {
  return liveness_.is_suspected(0, node, network_.sim->now());
}

void QueryClient::suspect(std::uint32_t node) {
  liveness_.suspect(0, node, network_.sim->now());
  HOURS_TRACE_EMIT(trace_, {.at = network_.sim->now(),
                            .type = trace::EventType::kSuspect,
                            .peer = node});
}

QueryClientStats QueryClient::stats() const noexcept {
  QueryClientStats s;
  s.submitted = submitted_.value();
  s.delivered = delivered_.value();
  s.deadline_exceeded = deadline_exceeded_.value();
  s.no_route = no_route_.value();
  s.retransmissions = retransmissions_.value();
  s.failovers = failovers_.value();
  return s;
}

std::uint64_t QueryClient::submit(std::uint32_t start, std::uint32_t dest) {
  HOURS_EXPECTS(start < network_.node_count && dest < network_.node_count);
  const std::uint64_t qid = next_qid_++;
  QueryState state;
  state.dest = dest;
  state.at = start;
  state.out.issued_at = network_.sim->now();
  submitted_.inc();
  HOURS_TRACE_EMIT(trace_, {.at = network_.sim->now(),
                            .type = trace::EventType::kQuerySubmit,
                            .node = start,
                            .peer = dest,
                            .causal = qid});
  if (config_.deadline != 0) {
    state.deadline_event = network_.sim->schedule(config_.deadline, [this, qid] {
      const auto it = queries_.find(qid);
      if (it == queries_.end() || it->second.out.status != QueryStatus::kPending) return;
      it->second.deadline_event = 0;  // this event is running; nothing to cancel
      complete(qid, QueryStatus::kDeadlineExceeded);
    });
  }
  queries_.emplace(qid, std::move(state));
  network_.sim->schedule(0, [this, qid] { advance(qid); });
  return qid;
}

const ClientQueryOutcome& QueryClient::outcome(std::uint64_t qid) const {
  const auto it = queries_.find(qid);
  HOURS_EXPECTS(it != queries_.end());
  return it->second.out;
}

void QueryClient::complete(std::uint64_t qid, QueryStatus status) {
  QueryState& q = queries_.at(qid);
  HOURS_EXPECTS(q.out.status == QueryStatus::kPending);
  q.out.status = status;
  q.out.completed_at = network_.sim->now();
  if (q.deadline_event != 0) {
    network_.sim->cancel(q.deadline_event);
    q.deadline_event = 0;
  }
  switch (status) {
    case QueryStatus::kDelivered:
      delivered_.inc();
      delivered_latency_->add(q.out.latency());
      break;
    case QueryStatus::kDeadlineExceeded: deadline_exceeded_.inc(); break;
    case QueryStatus::kNoRoute: no_route_.inc(); break;
    case QueryStatus::kPending: break;
  }
  HOURS_TRACE_EMIT(trace_, {.at = network_.sim->now(),
                            .type = status == QueryStatus::kDelivered
                                        ? trace::EventType::kQueryDelivered
                                        : trace::EventType::kQueryFailed,
                            .node = q.at,
                            .causal = qid,
                            .value = q.out.hops});
}

void QueryClient::advance(std::uint64_t qid) {
  QueryState& q = queries_.at(qid);
  if (q.out.status != QueryStatus::kPending) return;

  if (network_.is_destination(q.at, q.dest)) {
    complete(qid, QueryStatus::kDelivered);
    return;
  }
  if (q.out.hops >= hop_budget()) {
    complete(qid, QueryStatus::kNoRoute);
    return;
  }

  while (q.candidates.empty()) {
    // Re-plan at the current custody holder with the (possibly enriched)
    // suspicion set; the flip to backward mode happens in here. Bounded:
    // every failed candidate was suspected, so each round shrinks.
    if (q.replans >= 3) {
      complete(qid, QueryStatus::kNoRoute);
      return;
    }
    ++q.replans;
    bool backward = q.backward;
    auto candidates = network_.candidates(q.at, q.dest, backward);
    q.backward = backward;
    candidates.erase(std::remove_if(candidates.begin(), candidates.end(),
                                    [this](std::uint32_t c) { return suspected(c); }),
                     candidates.end());
    if (candidates.empty()) {
      if (!q.backward) {
        q.backward = true;  // client-side suspicion emptied the greedy list
        continue;
      }
      complete(qid, QueryStatus::kNoRoute);
      return;
    }
    q.candidates = std::move(candidates);
  }

  q.current = q.candidates.front();
  q.candidates.erase(q.candidates.begin());
  q.attempts = 0;
  attempt_current(qid);
}

void QueryClient::attempt_current(std::uint64_t qid) {
  QueryState& q = queries_.at(qid);
  if (q.out.status != QueryStatus::kPending) return;
  ++q.attempts;
  const std::uint32_t to = q.current;
  network_.attempt(
      q.at, to, [this, qid, to] { on_ack(qid, to); },
      [this, qid, to] { on_timeout(qid, to); });
}

void QueryClient::on_ack(std::uint64_t qid, std::uint32_t hopped_to) {
  QueryState& q = queries_.at(qid);
  if (q.out.status != QueryStatus::kPending) return;
  liveness_.clear(0, hopped_to);  // proof of life
  q.at = hopped_to;
  ++q.out.hops;
  q.candidates.clear();
  q.replans = 0;
  advance(qid);
}

void QueryClient::on_timeout(std::uint64_t qid, std::uint32_t tried) {
  QueryState& q = queries_.at(qid);
  if (q.out.status != QueryStatus::kPending) return;

  if (q.attempts <= config_.max_retries_per_hop) {
    // Retransmit after capped exponential backoff with deterministic jitter:
    // silence is as likely a lost message as a dead server.
    ++q.out.retransmissions;
    retransmissions_.inc();
    HOURS_TRACE_EMIT(trace_, {.at = network_.sim->now(),
                              .type = trace::EventType::kRetry,
                              .node = q.at,
                              .peer = tried,
                              .causal = qid,
                              .value = q.attempts});
    const Ticks base = base_backoff(q.attempts);
    const double factor = 1.0 - config_.jitter + 2.0 * config_.jitter * jitter_rng_.uniform();
    const Ticks delay =
        std::max<Ticks>(1, static_cast<Ticks>(static_cast<double>(base) * factor));
    network_.sim->schedule(delay, [this, qid] { attempt_current(qid); });
    return;
  }

  // Retry budget spent: infer death, fail over to the next pointer.
  suspect(tried);
  ++q.out.failovers;
  failovers_.inc();
  advance(qid);
}

}  // namespace hours::sim
