#include "sim/fault_injector.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <memory>

#include "rng/xoshiro256.hpp"
#include "sim/hierarchy_protocol.hpp"
#include "sim/ring_protocol.hpp"
#include "util/contracts.hpp"

namespace hours::sim {

FaultTarget make_fault_target(RingSimulation& ring) {
  FaultTarget target;
  target.sim = &ring.simulator();
  target.node_count = ring.config().size;
  target.kill = [&ring](std::uint32_t node) { ring.kill(node); };
  target.revive = [&ring](std::uint32_t node) { ring.revive(node); };
  target.alive = [&ring](std::uint32_t node) { return ring.alive(node); };
  target.set_loss = [&ring](double p) { ring.set_loss_probability(p); };
  target.loss = [&ring] { return ring.loss_probability(); };
  target.set_link_filter = [&ring](LinkFilter filter) {
    ring.set_link_filter(std::move(filter));
  };
  // set_behavior stays null: ring processes have no insider modes.
  return target;
}

FaultTarget make_fault_target(HierarchySimulation& hierarchy) {
  FaultTarget target;
  target.sim = &hierarchy.simulator();
  target.node_count = hierarchy.node_count();
  target.kill = [&hierarchy](std::uint32_t node) { hierarchy.kill(hierarchy.path_of(node)); };
  target.revive = [&hierarchy](std::uint32_t node) {
    hierarchy.revive(hierarchy.path_of(node));
  };
  target.alive = [&hierarchy](std::uint32_t node) {
    return hierarchy.alive(hierarchy.path_of(node));
  };
  target.set_loss = [&hierarchy](double p) { hierarchy.set_loss_probability(p); };
  target.loss = [&hierarchy] { return hierarchy.loss_probability(); };
  target.set_link_filter = [&hierarchy](LinkFilter filter) {
    hierarchy.set_link_filter(std::move(filter));
  };
  target.set_behavior = [&hierarchy](std::uint32_t node, overlay::NodeBehavior behavior) {
    hierarchy.set_behavior(hierarchy.path_of(node), behavior);
  };
  return target;
}

// -- FaultPlan builders ---------------------------------------------------------------

FaultPlan& FaultPlan::crash(std::uint32_t node, Ticks at, Ticks recover_at) {
  HOURS_EXPECTS(recover_at == 0 || recover_at > at);
  crashes_.push_back(CrashSpec{node, at, recover_at});
  return *this;
}

FaultPlan& FaultPlan::flap(std::uint32_t node, Ticks start, Ticks down, Ticks up,
                           std::uint32_t cycles) {
  HOURS_EXPECTS(down > 0 && up > 0 && cycles > 0);
  flaps_.push_back(FlapSpec{node, start, down, up, cycles});
  return *this;
}

FaultPlan& FaultPlan::correlated_outage(std::vector<std::uint32_t> nodes, Ticks at,
                                        Ticks duration, std::uint32_t strikes,
                                        Ticks strike_gap) {
  HOURS_EXPECTS(!nodes.empty() && duration > 0 && strikes > 0);
  outages_.push_back(OutageSpec{std::move(nodes), at, duration, strikes, strike_gap});
  return *this;
}

FaultPlan& FaultPlan::partition(std::vector<std::vector<std::uint32_t>> groups, Ticks at,
                                Ticks heal_at) {
  HOURS_EXPECTS(groups.size() >= 2);
  HOURS_EXPECTS(heal_at == 0 || heal_at > at);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    HOURS_EXPECTS(!groups[g].empty());
    for (std::size_t h = g + 1; h < groups.size(); ++h) {
      for (const auto a : groups[g]) {
        for (const auto b : groups[h]) HOURS_EXPECTS(a != b);  // groups are disjoint
      }
    }
  }
  partitions_.push_back(PartitionSpec{std::move(groups), at, heal_at});
  return *this;
}

FaultPlan& FaultPlan::cut_link(std::uint32_t a, std::uint32_t b, Ticks at, Ticks heal_at) {
  HOURS_EXPECTS(a != b);
  HOURS_EXPECTS(heal_at == 0 || heal_at > at);
  cut_links_.push_back(CutLinkSpec{a, b, at, heal_at});
  return *this;
}

FaultPlan& FaultPlan::loss_episode(double probability, Ticks from, Ticks until) {
  HOURS_EXPECTS(probability >= 0.0 && probability < 1.0);
  HOURS_EXPECTS(until > from);
  loss_episodes_.push_back(LossSpec{probability, from, until});
  return *this;
}

FaultPlan& FaultPlan::byzantine(std::uint32_t node, overlay::NodeBehavior behavior, Ticks at) {
  byzantine_.push_back(ByzantineSpec{node, behavior, at});
  return *this;
}

FaultPlan& FaultPlan::random_churn(std::uint32_t events, Ticks from, Ticks until,
                                   Ticks mean_downtime, std::uint64_t seed,
                                   std::vector<std::uint32_t> spare) {
  HOURS_EXPECTS(events > 0 && until > from && mean_downtime > 0);
  churn_.push_back(ChurnSpec{events, from, until, mean_downtime, seed, std::move(spare)});
  return *this;
}

std::string FaultPlan::describe() const {
  std::string out;
  char line[256];
  const auto add = [&out, &line] { out += line; };
  for (const auto& s : crashes_) {
    std::snprintf(line, sizeof(line), "crash(%u, %" PRIu64 ", %" PRIu64 ")\n", s.node, s.at,
                  s.recover_at);
    add();
  }
  for (const auto& s : flaps_) {
    std::snprintf(line, sizeof(line), "flap(%u, %" PRIu64 ", %" PRIu64 ", %" PRIu64 ", %u)\n",
                  s.node, s.start, s.down, s.up, s.cycles);
    add();
  }
  for (const auto& s : outages_) {
    std::string nodes;
    for (const auto n : s.nodes) {
      if (!nodes.empty()) nodes += ", ";
      nodes += std::to_string(n);
    }
    out += "correlated_outage({" + nodes + "}, " + std::to_string(s.at) + ", " +
           std::to_string(s.duration) + ", " + std::to_string(s.strikes) + ", " +
           std::to_string(s.strike_gap) + ")\n";
  }
  for (const auto& s : partitions_) {
    std::string groups;
    for (const auto& g : s.groups) {
      if (!groups.empty()) groups += ", ";
      groups += "{";
      for (std::size_t i = 0; i < g.size(); ++i) {
        if (i != 0) groups += ", ";
        groups += std::to_string(g[i]);
      }
      groups += "}";
    }
    out += "partition({" + groups + "}, " + std::to_string(s.at) + ", " +
           std::to_string(s.heal_at) + ")\n";
  }
  for (const auto& s : cut_links_) {
    std::snprintf(line, sizeof(line), "cut_link(%u, %u, %" PRIu64 ", %" PRIu64 ")\n", s.a, s.b,
                  s.at, s.heal_at);
    add();
  }
  for (const auto& s : loss_episodes_) {
    std::snprintf(line, sizeof(line), "loss_episode(%g, %" PRIu64 ", %" PRIu64 ")\n",
                  s.probability, s.from, s.until);
    add();
  }
  for (const auto& s : byzantine_) {
    std::snprintf(line, sizeof(line), "byzantine(%u, NodeBehavior(%d), %" PRIu64 ")\n", s.node,
                  static_cast<int>(s.behavior), s.at);
    add();
  }
  for (const auto& s : churn_) {
    std::string spare;
    for (const auto n : s.spare) {
      if (!spare.empty()) spare += ", ";
      spare += std::to_string(n);
    }
    out += "random_churn(" + std::to_string(s.events) + ", " + std::to_string(s.from) + ", " +
           std::to_string(s.until) + ", " + std::to_string(s.mean_downtime) + ", " +
           std::to_string(s.seed) + ", {" + spare + "})\n";
  }
  return out;
}

// -- FaultInjector --------------------------------------------------------------------

FaultInjector::FaultInjector(FaultTarget target, FaultPlan plan)
    : target_(std::move(target)), plan_(std::move(plan)) {
  HOURS_EXPECTS(target_.sim != nullptr && target_.node_count > 0);
  HOURS_EXPECTS(target_.kill != nullptr && target_.revive != nullptr);
  down_count_.assign(target_.node_count, 0);
}

bool FaultInjector::held_down(std::uint32_t node) const {
  HOURS_EXPECTS(node < down_count_.size());
  return down_count_[node] > 0;
}

bool FaultInjector::link_severed(std::uint32_t from, std::uint32_t to) const {
  const auto it = link_down_count_.find({from, to});
  return it != link_down_count_.end() && it->second > 0;
}

void FaultInjector::apply_link_down(std::uint32_t a, std::uint32_t b) {
  if (++link_down_count_[{a, b}] == 1) {
    ++stats_.link_cuts;
    HOURS_TRACE_EMIT(trace_, {.at = target_.sim->now(),
                              .type = trace::EventType::kLinkCut,
                              .node = a,
                              .peer = b});
  }
}

void FaultInjector::apply_link_up(std::uint32_t a, std::uint32_t b) {
  const auto it = link_down_count_.find({a, b});
  HOURS_EXPECTS(it != link_down_count_.end() && it->second > 0);
  if (--it->second == 0) {
    link_down_count_.erase(it);
    ++stats_.link_heals;
    HOURS_TRACE_EMIT(trace_, {.at = target_.sim->now(),
                              .type = trace::EventType::kLinkHeal,
                              .node = a,
                              .peer = b});
  }
}

void FaultInjector::schedule_link_window(std::uint32_t a, std::uint32_t b, Ticks at,
                                         Ticks heal_at) {
  HOURS_EXPECTS(a < target_.node_count && b < target_.node_count);
  // Both directions: a partitioned pair exchanges nothing either way.
  target_.sim->schedule(at, [this, a, b] {
    apply_link_down(a, b);
    apply_link_down(b, a);
  });
  if (heal_at != 0) {
    target_.sim->schedule(heal_at, [this, a, b] {
      apply_link_up(a, b);
      apply_link_up(b, a);
    });
  }
}

void FaultInjector::apply_down(std::uint32_t node) {
  HOURS_EXPECTS(node < down_count_.size());
  if (++down_count_[node] == 1) {
    target_.kill(node);
    ++stats_.kills;
    HOURS_TRACE_EMIT(trace_, {.at = target_.sim->now(),
                              .type = trace::EventType::kFaultKill,
                              .node = node});
  }
}

void FaultInjector::apply_up(std::uint32_t node) {
  HOURS_EXPECTS(node < down_count_.size());
  HOURS_EXPECTS(down_count_[node] > 0);
  if (--down_count_[node] == 0) {
    target_.revive(node);
    ++stats_.revivals;
    HOURS_TRACE_EMIT(trace_, {.at = target_.sim->now(),
                              .type = trace::EventType::kFaultRevive,
                              .node = node});
  }
}

void FaultInjector::schedule_down(std::uint32_t node, Ticks at) {
  HOURS_EXPECTS(node < target_.node_count);
  target_.sim->schedule(at, [this, node] { apply_down(node); });
}

void FaultInjector::schedule_up(std::uint32_t node, Ticks at) {
  target_.sim->schedule(at, [this, node] { apply_up(node); });
}

void FaultInjector::arm() {
  HOURS_EXPECTS(!armed_);
  armed_ = true;
  if (plan_.needs_loss_hooks()) {
    HOURS_EXPECTS(target_.set_loss != nullptr && target_.loss != nullptr);
  }
  if (plan_.needs_behavior_hook()) HOURS_EXPECTS(target_.set_behavior != nullptr);
  if (plan_.needs_link_hook()) {
    HOURS_EXPECTS(target_.set_link_filter != nullptr);
    // The injector owns the refcounted link state; the transport consults
    // it on every delivery. (The injector must outlive the run anyway.)
    target_.set_link_filter([this](std::uint32_t from, std::uint32_t to) {
      return !link_severed(from, to);
    });
  }

  for (const auto& spec : plan_.crashes_) {
    schedule_down(spec.node, spec.at);
    if (spec.recover_at != 0) schedule_up(spec.node, spec.recover_at);
  }

  for (const auto& spec : plan_.flaps_) {
    const Ticks cycle = spec.down + spec.up;
    for (std::uint32_t c = 0; c < spec.cycles; ++c) {
      schedule_down(spec.node, spec.start + c * cycle);
      schedule_up(spec.node, spec.start + c * cycle + spec.down);
    }
  }

  for (const auto& spec : plan_.outages_) {
    for (std::uint32_t s = 0; s < spec.strikes; ++s) {
      const Ticks base = spec.at + s * (spec.duration + spec.strike_gap);
      for (const auto node : spec.nodes) {
        schedule_down(node, base);
        schedule_up(node, base + spec.duration);
      }
    }
  }

  for (const auto& spec : plan_.partitions_) {
    for (std::size_t g = 0; g < spec.groups.size(); ++g) {
      for (std::size_t h = g + 1; h < spec.groups.size(); ++h) {
        for (const auto a : spec.groups[g]) {
          for (const auto b : spec.groups[h]) {
            schedule_link_window(a, b, spec.at, spec.heal_at);
          }
        }
      }
    }
  }

  for (const auto& spec : plan_.cut_links_) {
    schedule_link_window(spec.a, spec.b, spec.at, spec.heal_at);
  }

  for (const auto& spec : plan_.loss_episodes_) {
    // The restore value is whatever rate is in force when the episode
    // starts, so stacked episodes unwind in order.
    auto saved = std::make_shared<double>(0.0);
    target_.sim->schedule(spec.from, [this, spec, saved] {
      *saved = target_.loss();
      target_.set_loss(spec.probability);
      ++stats_.loss_changes;
      HOURS_TRACE_EMIT(trace_,
                       {.at = target_.sim->now(),
                        .type = trace::EventType::kLossChange,
                        .value = static_cast<std::uint64_t>(spec.probability * 1e6)});
    });
    target_.sim->schedule(spec.until, [this, saved] {
      target_.set_loss(*saved);
      ++stats_.loss_changes;
      HOURS_TRACE_EMIT(trace_,
                       {.at = target_.sim->now(),
                        .type = trace::EventType::kLossChange,
                        .value = static_cast<std::uint64_t>(*saved * 1e6)});
    });
  }

  for (const auto& spec : plan_.byzantine_) {
    HOURS_EXPECTS(spec.node < target_.node_count);
    target_.sim->schedule(spec.at, [this, spec] {
      target_.set_behavior(spec.node, spec.behavior);
      ++stats_.behavior_changes;
      HOURS_TRACE_EMIT(trace_,
                       {.at = target_.sim->now(),
                        .type = trace::EventType::kBehaviorChange,
                        .node = spec.node,
                        .value = static_cast<std::uint64_t>(spec.behavior)});
    });
  }

  for (const auto& spec : plan_.churn_) {
    HOURS_EXPECTS(spec.spare.size() < target_.node_count);
    rng::Xoshiro256 rng{spec.seed};
    for (std::uint32_t e = 0; e < spec.events; ++e) {
      std::uint32_t node = 0;
      do {
        node = static_cast<std::uint32_t>(rng.below(target_.node_count));
      } while (std::find(spec.spare.begin(), spec.spare.end(), node) != spec.spare.end());
      const Ticks at = spec.from + rng.below(spec.until - spec.from);
      const Ticks downtime = spec.mean_downtime / 2 + rng.below(spec.mean_downtime);
      schedule_down(node, at);
      schedule_up(node, at + downtime);
    }
  }
}

}  // namespace hours::sim
