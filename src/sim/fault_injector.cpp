#include "sim/fault_injector.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "rng/xoshiro256.hpp"
#include "sim/hierarchy_protocol.hpp"
#include "sim/ring_protocol.hpp"
#include "snapshot/event_kinds.hpp"
#include "snapshot/json.hpp"
#include "util/contracts.hpp"

namespace hours::sim {

FaultTarget make_fault_target(RingSimulation& ring) {
  FaultTarget target;
  target.sim = &ring.simulator();
  target.node_count = ring.config().size;
  target.kill = [&ring](std::uint32_t node) { ring.kill(node); };
  target.revive = [&ring](std::uint32_t node) { ring.revive(node); };
  target.alive = [&ring](std::uint32_t node) { return ring.alive(node); };
  target.set_loss = [&ring](double p) { ring.set_loss_probability(p); };
  target.loss = [&ring] { return ring.loss_probability(); };
  target.set_link_filter = [&ring](LinkFilter filter) {
    ring.set_link_filter(std::move(filter));
  };
  // set_behavior stays null: ring processes have no insider modes.
  return target;
}

FaultTarget make_fault_target(HierarchySimulation& hierarchy) {
  FaultTarget target;
  target.sim = &hierarchy.simulator();
  target.node_count = hierarchy.node_count();
  target.kill = [&hierarchy](std::uint32_t node) { hierarchy.kill_id(node); };
  target.revive = [&hierarchy](std::uint32_t node) { hierarchy.revive_id(node); };
  target.alive = [&hierarchy](std::uint32_t node) { return hierarchy.alive_id(node); };
  target.set_loss = [&hierarchy](double p) { hierarchy.set_loss_probability(p); };
  target.loss = [&hierarchy] { return hierarchy.loss_probability(); };
  target.set_link_filter = [&hierarchy](LinkFilter filter) {
    hierarchy.set_link_filter(std::move(filter));
  };
  target.set_behavior = [&hierarchy](std::uint32_t node, overlay::NodeBehavior behavior) {
    hierarchy.set_behavior_id(node, behavior);
  };
  return target;
}

// -- FaultPlan builders ---------------------------------------------------------------

FaultPlan& FaultPlan::crash(std::uint32_t node, Ticks at, Ticks recover_at) {
  HOURS_EXPECTS(recover_at == 0 || recover_at > at);
  crashes_.push_back(CrashSpec{node, at, recover_at});
  return *this;
}

FaultPlan& FaultPlan::flap(std::uint32_t node, Ticks start, Ticks down, Ticks up,
                           std::uint32_t cycles) {
  HOURS_EXPECTS(down > 0 && up > 0 && cycles > 0);
  flaps_.push_back(FlapSpec{node, start, down, up, cycles});
  return *this;
}

FaultPlan& FaultPlan::correlated_outage(std::vector<std::uint32_t> nodes, Ticks at,
                                        Ticks duration, std::uint32_t strikes,
                                        Ticks strike_gap) {
  HOURS_EXPECTS(!nodes.empty() && duration > 0 && strikes > 0);
  outages_.push_back(OutageSpec{std::move(nodes), at, duration, strikes, strike_gap});
  return *this;
}

FaultPlan& FaultPlan::partition(std::vector<std::vector<std::uint32_t>> groups, Ticks at,
                                Ticks heal_at) {
  HOURS_EXPECTS(groups.size() >= 2);
  HOURS_EXPECTS(heal_at == 0 || heal_at > at);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    HOURS_EXPECTS(!groups[g].empty());
    for (std::size_t h = g + 1; h < groups.size(); ++h) {
      for (const auto a : groups[g]) {
        for (const auto b : groups[h]) HOURS_EXPECTS(a != b);  // groups are disjoint
      }
    }
  }
  partitions_.push_back(PartitionSpec{std::move(groups), at, heal_at});
  return *this;
}

FaultPlan& FaultPlan::cut_link(std::uint32_t a, std::uint32_t b, Ticks at, Ticks heal_at) {
  HOURS_EXPECTS(a != b);
  HOURS_EXPECTS(heal_at == 0 || heal_at > at);
  cut_links_.push_back(CutLinkSpec{a, b, at, heal_at});
  return *this;
}

FaultPlan& FaultPlan::loss_episode(double probability, Ticks from, Ticks until) {
  HOURS_EXPECTS(probability >= 0.0 && probability < 1.0);
  HOURS_EXPECTS(until > from);
  loss_episodes_.push_back(LossSpec{probability, from, until});
  return *this;
}

FaultPlan& FaultPlan::byzantine(std::uint32_t node, overlay::NodeBehavior behavior, Ticks at) {
  byzantine_.push_back(ByzantineSpec{node, behavior, at});
  return *this;
}

FaultPlan& FaultPlan::random_churn(std::uint32_t events, Ticks from, Ticks until,
                                   Ticks mean_downtime, std::uint64_t seed,
                                   std::vector<std::uint32_t> spare) {
  HOURS_EXPECTS(events > 0 && until > from && mean_downtime > 0);
  churn_.push_back(ChurnSpec{events, from, until, mean_downtime, seed, std::move(spare)});
  return *this;
}

std::string FaultPlan::describe() const {
  std::string out;
  char line[256];
  const auto add = [&out, &line] { out += line; };
  for (const auto& s : crashes_) {
    std::snprintf(line, sizeof(line), "crash(%u, %" PRIu64 ", %" PRIu64 ")\n", s.node, s.at,
                  s.recover_at);
    add();
  }
  for (const auto& s : flaps_) {
    std::snprintf(line, sizeof(line), "flap(%u, %" PRIu64 ", %" PRIu64 ", %" PRIu64 ", %u)\n",
                  s.node, s.start, s.down, s.up, s.cycles);
    add();
  }
  for (const auto& s : outages_) {
    std::string nodes;
    for (const auto n : s.nodes) {
      if (!nodes.empty()) nodes += ", ";
      nodes += std::to_string(n);
    }
    out += "correlated_outage({" + nodes + "}, " + std::to_string(s.at) + ", " +
           std::to_string(s.duration) + ", " + std::to_string(s.strikes) + ", " +
           std::to_string(s.strike_gap) + ")\n";
  }
  for (const auto& s : partitions_) {
    std::string groups;
    for (const auto& g : s.groups) {
      if (!groups.empty()) groups += ", ";
      groups += "{";
      for (std::size_t i = 0; i < g.size(); ++i) {
        if (i != 0) groups += ", ";
        groups += std::to_string(g[i]);
      }
      groups += "}";
    }
    out += "partition({" + groups + "}, " + std::to_string(s.at) + ", " +
           std::to_string(s.heal_at) + ")\n";
  }
  for (const auto& s : cut_links_) {
    std::snprintf(line, sizeof(line), "cut_link(%u, %u, %" PRIu64 ", %" PRIu64 ")\n", s.a, s.b,
                  s.at, s.heal_at);
    add();
  }
  for (const auto& s : loss_episodes_) {
    // %.17g: enough digits to reconstruct the exact double, so the
    // describe()/parse() round-trip is lossless.
    std::snprintf(line, sizeof(line), "loss_episode(%.17g, %" PRIu64 ", %" PRIu64 ")\n",
                  s.probability, s.from, s.until);
    add();
  }
  for (const auto& s : byzantine_) {
    std::snprintf(line, sizeof(line), "byzantine(%u, NodeBehavior(%d), %" PRIu64 ")\n", s.node,
                  static_cast<int>(s.behavior), s.at);
    add();
  }
  for (const auto& s : churn_) {
    std::string spare;
    for (const auto n : s.spare) {
      if (!spare.empty()) spare += ", ";
      spare += std::to_string(n);
    }
    out += "random_churn(" + std::to_string(s.events) + ", " + std::to_string(s.from) + ", " +
           std::to_string(s.until) + ", " + std::to_string(s.mean_downtime) + ", " +
           std::to_string(s.seed) + ", {" + spare + "})\n";
  }
  return out;
}

// -- FaultPlan::parse -----------------------------------------------------------------

namespace {

/// Tiny cursor over one describe() line.
struct Cursor {
  std::string_view s;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t')) ++pos;
  }
  [[nodiscard]] bool done() {
    skip_ws();
    return pos == s.size();
  }
  bool eat(char c) {
    skip_ws();
    if (pos < s.size() && s[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  bool eat_word(std::string_view word) {
    skip_ws();
    if (s.substr(pos, word.size()) == word) {
      pos += word.size();
      return true;
    }
    return false;
  }
  bool u64(std::uint64_t& out) {
    skip_ws();
    const std::size_t start = pos;
    out = 0;
    while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
      out = out * 10 + static_cast<std::uint64_t>(s[pos] - '0');
      ++pos;
    }
    return pos != start;
  }
  bool u32(std::uint32_t& out) {
    std::uint64_t v = 0;
    if (!u64(v) || v > 0xFFFFFFFFULL) return false;
    out = static_cast<std::uint32_t>(v);
    return true;
  }
  bool i32(std::int32_t& out) {
    skip_ws();
    const bool negative = pos < s.size() && s[pos] == '-';
    if (negative) ++pos;
    std::uint64_t v = 0;
    if (!u64(v) || v > 0x7FFFFFFFULL) return false;
    out = negative ? -static_cast<std::int32_t>(v) : static_cast<std::int32_t>(v);
    return true;
  }
  bool dbl(double& out) {
    skip_ws();
    char buf[64];
    std::size_t n = 0;
    while (pos + n < s.size() && n + 1 < sizeof(buf)) {
      const char c = s[pos + n];
      const bool numeric = (c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
                           c == '+' || c == '-';
      if (!numeric) break;
      buf[n++] = c;
    }
    if (n == 0) return false;
    buf[n] = '\0';
    char* end = nullptr;
    out = std::strtod(buf, &end);
    if (end == buf) return false;
    pos += static_cast<std::size_t>(end - buf);
    return true;
  }
  /// {a, b, ...} — possibly empty.
  bool list(std::vector<std::uint32_t>& out) {
    if (!eat('{')) return false;
    if (eat('}')) return true;
    while (true) {
      std::uint32_t v = 0;
      if (!u32(v)) return false;
      out.push_back(v);
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }
  /// {{...}, {...}} — at least the outer braces.
  bool group_list(std::vector<std::vector<std::uint32_t>>& out) {
    if (!eat('{')) return false;
    if (eat('}')) return true;
    while (true) {
      std::vector<std::uint32_t> group;
      if (!list(group)) return false;
      out.push_back(std::move(group));
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }
};

}  // namespace

std::optional<FaultPlan> FaultPlan::parse(std::string_view text, std::string* error) {
  FaultPlan plan;
  // Errors carry the failure position: the cursor stops just past the last
  // token it consumed, so "col" points at (1-based) the first character that
  // did not parse and "near" quotes what the parser was looking at.
  const auto fail = [error](std::size_t line_no, const Cursor& c,
                            const std::string& what) -> std::optional<FaultPlan> {
    if (error != nullptr) {
      const std::size_t col = std::min(c.pos, c.s.size());
      const std::string_view rest = c.s.substr(col);
      std::string near{rest.substr(0, 24)};
      if (rest.size() > 24) near += "...";
      *error = "line " + std::to_string(line_no) + ", col " + std::to_string(col + 1) + ": " +
               what + (near.empty() ? " at end of line" : " near \"" + near + "\"");
    }
    return std::nullopt;
  };

  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    const std::string_view line =
        text.substr(start, nl == std::string_view::npos ? text.size() - start : nl - start);
    start = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;

    Cursor c{line};
    if (c.done()) continue;  // blank line

    if (c.eat_word("crash(")) {
      std::uint32_t node = 0;
      Ticks at = 0;
      Ticks recover_at = 0;
      if (!(c.u32(node) && c.eat(',') && c.u64(at) && c.eat(',') && c.u64(recover_at) &&
            c.eat(')') && c.done())) {
        return fail(line_no, c, "malformed crash()");
      }
      plan.crash(node, at, recover_at);
    } else if (c.eat_word("flap(")) {
      std::uint32_t node = 0;
      std::uint32_t cycles = 0;
      Ticks begin = 0;
      Ticks down = 0;
      Ticks up = 0;
      if (!(c.u32(node) && c.eat(',') && c.u64(begin) && c.eat(',') && c.u64(down) &&
            c.eat(',') && c.u64(up) && c.eat(',') && c.u32(cycles) && c.eat(')') && c.done())) {
        return fail(line_no, c, "malformed flap()");
      }
      plan.flap(node, begin, down, up, cycles);
    } else if (c.eat_word("correlated_outage(")) {
      std::vector<std::uint32_t> nodes;
      Ticks at = 0;
      Ticks duration = 0;
      std::uint32_t strikes = 0;
      Ticks gap = 0;
      if (!(c.list(nodes) && c.eat(',') && c.u64(at) && c.eat(',') && c.u64(duration) &&
            c.eat(',') && c.u32(strikes) && c.eat(',') && c.u64(gap) && c.eat(')') &&
            c.done())) {
        return fail(line_no, c, "malformed correlated_outage()");
      }
      plan.correlated_outage(std::move(nodes), at, duration, strikes, gap);
    } else if (c.eat_word("partition(")) {
      std::vector<std::vector<std::uint32_t>> groups;
      Ticks at = 0;
      Ticks heal_at = 0;
      if (!(c.group_list(groups) && c.eat(',') && c.u64(at) && c.eat(',') && c.u64(heal_at) &&
            c.eat(')') && c.done())) {
        return fail(line_no, c, "malformed partition()");
      }
      plan.partition(std::move(groups), at, heal_at);
    } else if (c.eat_word("cut_link(")) {
      std::uint32_t a = 0;
      std::uint32_t b = 0;
      Ticks at = 0;
      Ticks heal_at = 0;
      if (!(c.u32(a) && c.eat(',') && c.u32(b) && c.eat(',') && c.u64(at) && c.eat(',') &&
            c.u64(heal_at) && c.eat(')') && c.done())) {
        return fail(line_no, c, "malformed cut_link()");
      }
      plan.cut_link(a, b, at, heal_at);
    } else if (c.eat_word("loss_episode(")) {
      double probability = 0.0;
      Ticks from = 0;
      Ticks until = 0;
      if (!(c.dbl(probability) && c.eat(',') && c.u64(from) && c.eat(',') && c.u64(until) &&
            c.eat(')') && c.done())) {
        return fail(line_no, c, "malformed loss_episode()");
      }
      plan.loss_episode(probability, from, until);
    } else if (c.eat_word("byzantine(")) {
      std::uint32_t node = 0;
      std::int32_t behavior = 0;
      Ticks at = 0;
      if (!(c.u32(node) && c.eat(',') && c.eat_word("NodeBehavior(") && c.i32(behavior) &&
            c.eat(')') && c.eat(',') && c.u64(at) && c.eat(')') && c.done())) {
        return fail(line_no, c, "malformed byzantine()");
      }
      plan.byzantine(node, static_cast<overlay::NodeBehavior>(behavior), at);
    } else if (c.eat_word("random_churn(")) {
      std::uint32_t events = 0;
      Ticks from = 0;
      Ticks until = 0;
      Ticks mean_downtime = 0;
      std::uint64_t seed = 0;
      std::vector<std::uint32_t> spare;
      if (!(c.u32(events) && c.eat(',') && c.u64(from) && c.eat(',') && c.u64(until) &&
            c.eat(',') && c.u64(mean_downtime) && c.eat(',') && c.u64(seed) && c.eat(',') &&
            c.list(spare) && c.eat(')') && c.done())) {
        return fail(line_no, c, "malformed random_churn()");
      }
      plan.random_churn(events, from, until, mean_downtime, seed, std::move(spare));
    } else {
      c.skip_ws();
      std::size_t end = c.pos;
      while (end < line.size() && line[end] != '(' && line[end] != ' ' && line[end] != '\t') {
        ++end;
      }
      return fail(line_no, c,
                  "unknown builder call \"" + std::string(line.substr(c.pos, end - c.pos)) +
                      "\"");
    }
  }
  return plan;
}

// -- FaultInjector --------------------------------------------------------------------

FaultInjector::FaultInjector(FaultTarget target, FaultPlan plan)
    : target_(std::move(target)), plan_(std::move(plan)) {
  HOURS_EXPECTS(target_.sim != nullptr && target_.node_count > 0);
  HOURS_EXPECTS(target_.kill != nullptr && target_.revive != nullptr);
  down_count_.assign(target_.node_count, 0);
}

bool FaultInjector::held_down(std::uint32_t node) const {
  HOURS_EXPECTS(node < down_count_.size());
  return down_count_[node] > 0;
}

bool FaultInjector::link_severed(std::uint32_t from, std::uint32_t to) const {
  const auto it = link_down_count_.find({from, to});
  return it != link_down_count_.end() && it->second > 0;
}

void FaultInjector::apply_link_down(std::uint32_t a, std::uint32_t b) {
  if (++link_down_count_[{a, b}] == 1) {
    ++stats_.link_cuts;
    HOURS_TRACE_EMIT(trace_, {.at = target_.sim->now(),
                              .type = trace::EventType::kLinkCut,
                              .node = a,
                              .peer = b});
  }
}

void FaultInjector::apply_link_up(std::uint32_t a, std::uint32_t b) {
  const auto it = link_down_count_.find({a, b});
  HOURS_EXPECTS(it != link_down_count_.end() && it->second > 0);
  if (--it->second == 0) {
    link_down_count_.erase(it);
    ++stats_.link_heals;
    HOURS_TRACE_EMIT(trace_, {.at = target_.sim->now(),
                              .type = trace::EventType::kLinkHeal,
                              .node = a,
                              .peer = b});
  }
}

void FaultInjector::apply_down(std::uint32_t node) {
  HOURS_EXPECTS(node < down_count_.size());
  if (++down_count_[node] == 1) {
    target_.kill(node);
    ++stats_.kills;
    HOURS_TRACE_EMIT(trace_, {.at = target_.sim->now(),
                              .type = trace::EventType::kFaultKill,
                              .node = node});
  }
}

void FaultInjector::apply_up(std::uint32_t node) {
  HOURS_EXPECTS(node < down_count_.size());
  HOURS_EXPECTS(down_count_[node] > 0);
  if (--down_count_[node] == 0) {
    target_.revive(node);
    ++stats_.revivals;
    HOURS_TRACE_EMIT(trace_, {.at = target_.sim->now(),
                              .type = trace::EventType::kFaultRevive,
                              .node = node});
  }
}

std::vector<FaultInjector::PlannedAction> FaultInjector::build_schedule() const {
  using Kind = PlannedAction::Kind;
  std::vector<PlannedAction> out;
  const auto node_action = [&out, this](Kind kind, std::uint32_t node, Ticks at) {
    HOURS_EXPECTS(node < target_.node_count);
    PlannedAction action;
    action.kind = kind;
    action.at = at;
    action.a = node;
    out.push_back(action);
  };
  const auto link_window = [&out, this](std::uint32_t a, std::uint32_t b, Ticks at,
                                        Ticks heal_at) {
    HOURS_EXPECTS(a < target_.node_count && b < target_.node_count);
    PlannedAction down;
    down.kind = Kind::kLinkDown;
    down.at = at;
    down.a = a;
    down.b = b;
    out.push_back(down);
    if (heal_at != 0) {
      PlannedAction up = down;
      up.kind = Kind::kLinkUp;
      up.at = heal_at;
      out.push_back(up);
    }
  };

  for (const auto& spec : plan_.crashes_) {
    node_action(Kind::kDown, spec.node, spec.at);
    if (spec.recover_at != 0) node_action(Kind::kUp, spec.node, spec.recover_at);
  }

  for (const auto& spec : plan_.flaps_) {
    const Ticks cycle = spec.down + spec.up;
    for (std::uint32_t c = 0; c < spec.cycles; ++c) {
      node_action(Kind::kDown, spec.node, spec.start + c * cycle);
      node_action(Kind::kUp, spec.node, spec.start + c * cycle + spec.down);
    }
  }

  for (const auto& spec : plan_.outages_) {
    for (std::uint32_t s = 0; s < spec.strikes; ++s) {
      const Ticks base = spec.at + s * (spec.duration + spec.strike_gap);
      for (const auto node : spec.nodes) {
        node_action(Kind::kDown, node, base);
        node_action(Kind::kUp, node, base + spec.duration);
      }
    }
  }

  for (const auto& spec : plan_.partitions_) {
    for (std::size_t g = 0; g < spec.groups.size(); ++g) {
      for (std::size_t h = g + 1; h < spec.groups.size(); ++h) {
        for (const auto a : spec.groups[g]) {
          for (const auto b : spec.groups[h]) link_window(a, b, spec.at, spec.heal_at);
        }
      }
    }
  }

  for (const auto& spec : plan_.cut_links_) {
    link_window(spec.a, spec.b, spec.at, spec.heal_at);
  }

  for (std::size_t slot = 0; slot < plan_.loss_episodes_.size(); ++slot) {
    const auto& spec = plan_.loss_episodes_[slot];
    PlannedAction set;
    set.kind = Kind::kLossSet;
    set.at = spec.from;
    set.probability = spec.probability;
    set.slot = slot;
    out.push_back(set);
    PlannedAction restore;
    restore.kind = Kind::kLossRestore;
    restore.at = spec.until;
    restore.slot = slot;
    out.push_back(restore);
  }

  for (const auto& spec : plan_.byzantine_) {
    HOURS_EXPECTS(spec.node < target_.node_count);
    PlannedAction action;
    action.kind = Kind::kBehavior;
    action.at = spec.at;
    action.a = spec.node;
    action.behavior = spec.behavior;
    out.push_back(action);
  }

  for (const auto& spec : plan_.churn_) {
    HOURS_EXPECTS(spec.spare.size() < target_.node_count);
    rng::Xoshiro256 rng{spec.seed};
    for (std::uint32_t e = 0; e < spec.events; ++e) {
      std::uint32_t node = 0;
      do {
        node = static_cast<std::uint32_t>(rng.below(target_.node_count));
      } while (std::find(spec.spare.begin(), spec.spare.end(), node) != spec.spare.end());
      const Ticks at = spec.from + rng.below(spec.until - spec.from);
      const Ticks downtime = spec.mean_downtime / 2 + rng.below(spec.mean_downtime);
      node_action(Kind::kDown, node, at);
      node_action(Kind::kUp, node, at + downtime);
    }
  }

  return out;
}

void FaultInjector::apply_planned(std::size_t index) {
  HOURS_EXPECTS(index < schedule_.size());
  const PlannedAction& action = schedule_[index];
  switch (action.kind) {
    case PlannedAction::Kind::kDown:
      apply_down(action.a);
      break;
    case PlannedAction::Kind::kUp:
      apply_up(action.a);
      break;
    case PlannedAction::Kind::kLinkDown:
      // Both directions: a partitioned pair exchanges nothing either way.
      apply_link_down(action.a, action.b);
      apply_link_down(action.b, action.a);
      break;
    case PlannedAction::Kind::kLinkUp:
      apply_link_up(action.a, action.b);
      apply_link_up(action.b, action.a);
      break;
    case PlannedAction::Kind::kLossSet:
      // The restore value is whatever rate is in force when the episode
      // starts, so stacked episodes unwind in order.
      loss_saved_[action.slot] = target_.loss();
      target_.set_loss(action.probability);
      ++stats_.loss_changes;
      HOURS_TRACE_EMIT(trace_,
                       {.at = target_.sim->now(),
                        .type = trace::EventType::kLossChange,
                        .value = static_cast<std::uint64_t>(action.probability * 1e6)});
      break;
    case PlannedAction::Kind::kLossRestore:
      target_.set_loss(loss_saved_[action.slot]);
      ++stats_.loss_changes;
      HOURS_TRACE_EMIT(
          trace_, {.at = target_.sim->now(),
                   .type = trace::EventType::kLossChange,
                   .value = static_cast<std::uint64_t>(loss_saved_[action.slot] * 1e6)});
      break;
    case PlannedAction::Kind::kBehavior:
      target_.set_behavior(action.a, action.behavior);
      ++stats_.behavior_changes;
      HOURS_TRACE_EMIT(trace_, {.at = target_.sim->now(),
                                .type = trace::EventType::kBehaviorChange,
                                .node = action.a,
                                .value = static_cast<std::uint64_t>(action.behavior)});
      break;
  }
}

void FaultInjector::install_link_filter() {
  HOURS_EXPECTS(target_.set_link_filter != nullptr);
  // The injector owns the refcounted link state; the transport consults
  // it on every delivery. (The injector must outlive the run anyway.)
  target_.set_link_filter([this](std::uint32_t from, std::uint32_t to) {
    return !link_severed(from, to);
  });
}

void FaultInjector::arm() {
  HOURS_EXPECTS(!armed_);
  armed_ = true;
  if (plan_.needs_loss_hooks()) {
    HOURS_EXPECTS(target_.set_loss != nullptr && target_.loss != nullptr);
  }
  if (plan_.needs_behavior_hook()) HOURS_EXPECTS(target_.set_behavior != nullptr);
  if (plan_.needs_link_hook()) install_link_filter();

  schedule_ = build_schedule();
  loss_saved_.assign(plan_.loss_episodes_.size(), 0.0);
  for (std::size_t i = 0; i < schedule_.size(); ++i) {
    target_.sim->schedule(
        schedule_[i].at,
        snapshot::Described{snapshot::kFaultAction, {static_cast<std::uint64_t>(i)}},
        [this, i] { apply_planned(i); });
  }
}

// -- snapshot (snapshot::Participant) ------------------------------------------------

snapshot::Json FaultInjector::save_state(std::string& error) const {
  (void)error;  // fault state is always serializable
  using snapshot::Json;
  Json out = Json::object();
  out["armed"] = Json(static_cast<std::uint64_t>(armed_ ? 1 : 0));
  out["plan"] = Json(plan_.describe());
  Json down = Json::array();
  for (const auto count : down_count_) down.push(Json(static_cast<std::uint64_t>(count)));
  out["down_count"] = std::move(down);
  Json links = Json::array();
  for (const auto& [pair, count] : link_down_count_) {
    Json row = Json::array();
    row.push(Json(static_cast<std::uint64_t>(pair.first)));
    row.push(Json(static_cast<std::uint64_t>(pair.second)));
    row.push(Json(static_cast<std::uint64_t>(count)));
    links.push(std::move(row));
  }
  out["links"] = std::move(links);
  Json loss = Json::array();
  for (const auto saved : loss_saved_) loss.push(Json(snapshot::bits_from_double(saved)));
  out["loss_saved"] = std::move(loss);
  Json stats = Json::object();
  stats["kills"] = Json(stats_.kills);
  stats["revivals"] = Json(stats_.revivals);
  stats["link_cuts"] = Json(stats_.link_cuts);
  stats["link_heals"] = Json(stats_.link_heals);
  stats["loss_changes"] = Json(stats_.loss_changes);
  stats["behavior_changes"] = Json(stats_.behavior_changes);
  out["stats"] = std::move(stats);
  return out;
}

std::string FaultInjector::restore_state(const snapshot::Json& state) {
  using snapshot::Json;
  if (armed_) return "faults: restore requires a freshly constructed (un-armed) injector";

  const Json* plan = state.find("plan");
  if (plan == nullptr || !plan->is_string()) return "faults.plan missing";
  if (plan->as_string() != plan_.describe()) {
    return "faults.plan does not match this injector's plan";
  }
  const Json* armed = state.find("armed");
  if (armed == nullptr || !armed->is_u64()) return "faults.armed missing";
  const Json* down = state.find("down_count");
  if (down == nullptr || !down->is_array() || down->items().size() != down_count_.size()) {
    return "faults.down_count missing or wrong node count";
  }
  const Json* links = state.find("links");
  if (links == nullptr || !links->is_array()) return "faults.links missing";
  const Json* loss = state.find("loss_saved");
  if (loss == nullptr || !loss->is_array() ||
      loss->items().size() != plan_.loss_episodes_.size()) {
    return "faults.loss_saved missing or wrong episode count";
  }
  const Json* stats = state.find("stats");
  if (stats == nullptr || !stats->is_object()) return "faults.stats missing";
  const auto stat = [stats](const char* key, std::uint64_t& out) {
    const Json* v = stats->find(key);
    if (v == nullptr || !v->is_u64()) return false;
    out = v->as_u64();
    return true;
  };
  if (!stat("kills", stats_.kills) || !stat("revivals", stats_.revivals) ||
      !stat("link_cuts", stats_.link_cuts) || !stat("link_heals", stats_.link_heals) ||
      !stat("loss_changes", stats_.loss_changes) ||
      !stat("behavior_changes", stats_.behavior_changes)) {
    return "faults.stats malformed";
  }

  for (std::size_t i = 0; i < down_count_.size(); ++i) {
    const Json& v = down->items()[i];
    if (!v.is_u64()) return "faults.down_count malformed";
    down_count_[i] = static_cast<std::uint32_t>(v.as_u64());
  }
  link_down_count_.clear();
  for (const auto& raw : links->items()) {
    if (!raw.is_array() || raw.items().size() != 3) return "faults.links entry malformed";
    const auto& f = raw.items();
    if (!f[0].is_u64() || !f[1].is_u64() || !f[2].is_u64()) {
      return "faults.links entry malformed";
    }
    link_down_count_[{static_cast<std::uint32_t>(f[0].as_u64()),
                      static_cast<std::uint32_t>(f[1].as_u64())}] =
        static_cast<std::uint32_t>(f[2].as_u64());
  }
  loss_saved_.assign(plan_.loss_episodes_.size(), 0.0);
  for (std::size_t i = 0; i < loss_saved_.size(); ++i) {
    const Json& v = loss->items()[i];
    if (!v.is_u64()) return "faults.loss_saved malformed";
    loss_saved_[i] = snapshot::double_from_bits(v.as_u64());
  }

  if (armed->as_u64() != 0) {
    armed_ = true;
    if (plan_.needs_loss_hooks() &&
        (target_.set_loss == nullptr || target_.loss == nullptr)) {
      return "faults: plan needs loss hooks the target does not provide";
    }
    if (plan_.needs_behavior_hook() && target_.set_behavior == nullptr) {
      return "faults: plan needs the behavior hook the target does not provide";
    }
    if (plan_.needs_link_hook()) {
      if (target_.set_link_filter == nullptr) {
        return "faults: plan needs the link hook the target does not provide";
      }
      install_link_filter();
    }
    schedule_ = build_schedule();
  }
  return "";
}

std::function<void()> FaultInjector::rebuild_event(const snapshot::Described& desc) {
  if (desc.kind != snapshot::kFaultAction) return nullptr;
  HOURS_EXPECTS(desc.args.size() == 1);
  const std::size_t index = static_cast<std::size_t>(desc.args[0]);
  HOURS_EXPECTS(index < schedule_.size());
  return [this, index] { apply_planned(index); };
}

}  // namespace hours::sim
