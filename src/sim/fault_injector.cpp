#include "sim/fault_injector.hpp"

#include <algorithm>
#include <memory>

#include "rng/xoshiro256.hpp"
#include "sim/hierarchy_protocol.hpp"
#include "sim/ring_protocol.hpp"
#include "util/contracts.hpp"

namespace hours::sim {

FaultTarget make_fault_target(RingSimulation& ring) {
  FaultTarget target;
  target.sim = &ring.simulator();
  target.node_count = ring.config().size;
  target.kill = [&ring](std::uint32_t node) { ring.kill(node); };
  target.revive = [&ring](std::uint32_t node) { ring.revive(node); };
  target.alive = [&ring](std::uint32_t node) { return ring.alive(node); };
  target.set_loss = [&ring](double p) { ring.set_loss_probability(p); };
  target.loss = [&ring] { return ring.loss_probability(); };
  // set_behavior stays null: ring processes have no insider modes.
  return target;
}

FaultTarget make_fault_target(HierarchySimulation& hierarchy) {
  FaultTarget target;
  target.sim = &hierarchy.simulator();
  target.node_count = hierarchy.node_count();
  target.kill = [&hierarchy](std::uint32_t node) { hierarchy.kill(hierarchy.path_of(node)); };
  target.revive = [&hierarchy](std::uint32_t node) {
    hierarchy.revive(hierarchy.path_of(node));
  };
  target.alive = [&hierarchy](std::uint32_t node) {
    return hierarchy.alive(hierarchy.path_of(node));
  };
  target.set_loss = [&hierarchy](double p) { hierarchy.set_loss_probability(p); };
  target.loss = [&hierarchy] { return hierarchy.loss_probability(); };
  target.set_behavior = [&hierarchy](std::uint32_t node, overlay::NodeBehavior behavior) {
    hierarchy.set_behavior(hierarchy.path_of(node), behavior);
  };
  return target;
}

// -- FaultPlan builders ---------------------------------------------------------------

FaultPlan& FaultPlan::crash(std::uint32_t node, Ticks at, Ticks recover_at) {
  HOURS_EXPECTS(recover_at == 0 || recover_at > at);
  crashes_.push_back(CrashSpec{node, at, recover_at});
  return *this;
}

FaultPlan& FaultPlan::flap(std::uint32_t node, Ticks start, Ticks down, Ticks up,
                           std::uint32_t cycles) {
  HOURS_EXPECTS(down > 0 && up > 0 && cycles > 0);
  flaps_.push_back(FlapSpec{node, start, down, up, cycles});
  return *this;
}

FaultPlan& FaultPlan::correlated_outage(std::vector<std::uint32_t> nodes, Ticks at,
                                        Ticks duration, std::uint32_t strikes,
                                        Ticks strike_gap) {
  HOURS_EXPECTS(!nodes.empty() && duration > 0 && strikes > 0);
  outages_.push_back(OutageSpec{std::move(nodes), at, duration, strikes, strike_gap});
  return *this;
}

FaultPlan& FaultPlan::loss_episode(double probability, Ticks from, Ticks until) {
  HOURS_EXPECTS(probability >= 0.0 && probability < 1.0);
  HOURS_EXPECTS(until > from);
  loss_episodes_.push_back(LossSpec{probability, from, until});
  return *this;
}

FaultPlan& FaultPlan::byzantine(std::uint32_t node, overlay::NodeBehavior behavior, Ticks at) {
  byzantine_.push_back(ByzantineSpec{node, behavior, at});
  return *this;
}

FaultPlan& FaultPlan::random_churn(std::uint32_t events, Ticks from, Ticks until,
                                   Ticks mean_downtime, std::uint64_t seed,
                                   std::vector<std::uint32_t> spare) {
  HOURS_EXPECTS(events > 0 && until > from && mean_downtime > 0);
  churn_.push_back(ChurnSpec{events, from, until, mean_downtime, seed, std::move(spare)});
  return *this;
}

// -- FaultInjector --------------------------------------------------------------------

FaultInjector::FaultInjector(FaultTarget target, FaultPlan plan)
    : target_(std::move(target)), plan_(std::move(plan)) {
  HOURS_EXPECTS(target_.sim != nullptr && target_.node_count > 0);
  HOURS_EXPECTS(target_.kill != nullptr && target_.revive != nullptr);
  down_count_.assign(target_.node_count, 0);
}

bool FaultInjector::held_down(std::uint32_t node) const {
  HOURS_EXPECTS(node < down_count_.size());
  return down_count_[node] > 0;
}

void FaultInjector::apply_down(std::uint32_t node) {
  HOURS_EXPECTS(node < down_count_.size());
  if (++down_count_[node] == 1) {
    target_.kill(node);
    ++stats_.kills;
  }
}

void FaultInjector::apply_up(std::uint32_t node) {
  HOURS_EXPECTS(node < down_count_.size());
  HOURS_EXPECTS(down_count_[node] > 0);
  if (--down_count_[node] == 0) {
    target_.revive(node);
    ++stats_.revivals;
  }
}

void FaultInjector::schedule_down(std::uint32_t node, Ticks at) {
  HOURS_EXPECTS(node < target_.node_count);
  target_.sim->schedule(at, [this, node] { apply_down(node); });
}

void FaultInjector::schedule_up(std::uint32_t node, Ticks at) {
  target_.sim->schedule(at, [this, node] { apply_up(node); });
}

void FaultInjector::arm() {
  HOURS_EXPECTS(!armed_);
  armed_ = true;
  if (plan_.needs_loss_hooks()) {
    HOURS_EXPECTS(target_.set_loss != nullptr && target_.loss != nullptr);
  }
  if (plan_.needs_behavior_hook()) HOURS_EXPECTS(target_.set_behavior != nullptr);

  for (const auto& spec : plan_.crashes_) {
    schedule_down(spec.node, spec.at);
    if (spec.recover_at != 0) schedule_up(spec.node, spec.recover_at);
  }

  for (const auto& spec : plan_.flaps_) {
    const Ticks cycle = spec.down + spec.up;
    for (std::uint32_t c = 0; c < spec.cycles; ++c) {
      schedule_down(spec.node, spec.start + c * cycle);
      schedule_up(spec.node, spec.start + c * cycle + spec.down);
    }
  }

  for (const auto& spec : plan_.outages_) {
    for (std::uint32_t s = 0; s < spec.strikes; ++s) {
      const Ticks base = spec.at + s * (spec.duration + spec.strike_gap);
      for (const auto node : spec.nodes) {
        schedule_down(node, base);
        schedule_up(node, base + spec.duration);
      }
    }
  }

  for (const auto& spec : plan_.loss_episodes_) {
    // The restore value is whatever rate is in force when the episode
    // starts, so stacked episodes unwind in order.
    auto saved = std::make_shared<double>(0.0);
    target_.sim->schedule(spec.from, [this, spec, saved] {
      *saved = target_.loss();
      target_.set_loss(spec.probability);
      ++stats_.loss_changes;
    });
    target_.sim->schedule(spec.until, [this, saved] {
      target_.set_loss(*saved);
      ++stats_.loss_changes;
    });
  }

  for (const auto& spec : plan_.byzantine_) {
    HOURS_EXPECTS(spec.node < target_.node_count);
    target_.sim->schedule(spec.at, [this, spec] {
      target_.set_behavior(spec.node, spec.behavior);
      ++stats_.behavior_changes;
    });
  }

  for (const auto& spec : plan_.churn_) {
    HOURS_EXPECTS(spec.spare.size() < target_.node_count);
    rng::Xoshiro256 rng{spec.seed};
    for (std::uint32_t e = 0; e < spec.events; ++e) {
      std::uint32_t node = 0;
      do {
        node = static_cast<std::uint32_t>(rng.below(target_.node_count));
      } while (std::find(spec.spare.begin(), spec.spare.end(), node) != spec.spare.end());
      const Ticks at = spec.from + rng.below(spec.until - spec.from);
      const Ticks downtime = spec.mean_downtime / 2 + rng.below(spec.mean_downtime);
      schedule_down(node, at);
      schedule_up(node, at + downtime);
    }
  }
}

}  // namespace hours::sim
