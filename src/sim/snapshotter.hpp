// Orchestrates snapshot save/restore for one Simulator plus its registered
// Participants (sim/ring_protocol, sim/fault_injector, ...).
//
// save() produces the versioned document described in snapshot/snapshot.hpp:
// the simulator clock, id counter, and full event queue in described form,
// plus one section per participant. It fails loudly — with the offending
// event ids — while any opaque (closure-only) event is queued, because an
// opaque event cannot be rebuilt on restore.
//
// restore() is the exact inverse, into a *freshly constructed* simulation of
// identical configuration: validate, reset the simulator, hand each section
// back to its participant, then rebuild every queued event's closure by
// asking the participants in registration order (first non-null wins) and
// re-instate it under its original id. A restored run replays byte-for-byte
// identically to the uninterrupted one — tests/snapshot_replay_test.cpp
// holds that bar, and the fault-schedule fuzz harness uses it as a
// divergence oracle.
#pragma once

#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "snapshot/json.hpp"
#include "snapshot/participant.hpp"

namespace hours::sim {

class Snapshotter {
 public:
  explicit Snapshotter(Simulator& sim) : sim_(sim) {}

  /// Registers a participant. Registration ORDER is part of the restore
  /// contract (sections restore in order; rebuild_event asks in order), so
  /// save-side and restore-side Snapshotters must register identically.
  /// The participant must outlive the Snapshotter's use.
  void add(snapshot::Participant& participant);

  /// Builds the snapshot document. Returns "" and fills `doc` on success.
  [[nodiscard]] std::string save(snapshot::Json& doc) const;

  /// save() + deterministic dump. The string is the snapshot's canonical
  /// byte form: equality of two save_string() results is the equivalence
  /// oracle's definition of "same state".
  [[nodiscard]] std::string save_string(std::string& out) const;

  /// save() + write to `path`.
  [[nodiscard]] std::string save_file(const std::string& path) const;

  /// Restores a validated document into the simulator and participants.
  /// On error the simulation may be partially restored — discard it.
  [[nodiscard]] std::string restore(const snapshot::Json& doc);

  /// read_file() + restore().
  [[nodiscard]] std::string restore_file(const std::string& path);

 private:
  Simulator& sim_;
  std::vector<snapshot::Participant*> participants_;
};

}  // namespace hours::sim
