#include "sim/ring_protocol.hpp"

#include <algorithm>

#include "overlay/table_builder.hpp"
#include "rng/splitmix64.hpp"
#include "util/contracts.hpp"
#include "util/log.hpp"

namespace hours::sim {

namespace {

TransportConfig transport_config(const RingSimConfig& config) {
  TransportConfig t;
  t.latency_min = config.latency_min;
  t.latency_max = config.latency_max;
  t.ack_timeout = config.ack_timeout;
  t.loss_probability = config.loss_probability;
  return t;
}

}  // namespace

RingSimulation::RingSimulation(RingSimConfig config)
    : config_(config),
      rng_(rng::mix64(config.seed, 0x70726F746FULL)),
      transport_(sim_, transport_config(config), config.size, config.seed),
      probes_sent_(registry_.counter("ring.probes_sent")),
      repairs_sent_(registry_.counter("ring.repairs_sent")),
      claims_sent_(registry_.counter("ring.claims_sent")) {
  HOURS_EXPECTS(config_.size >= 3);
  config_.params.validate();

  nodes_.resize(config_.size);
  for (ids::RingIndex i = 0; i < config_.size; ++i) {
    Node& node = nodes_[i];
    node.table = overlay::build_routing_table(config_.size, i, config_.params);
    node.cw_succ = ids::clockwise_step(i, 1, config_.size);
    node.ccw = ids::counter_clockwise_step(i, 1, config_.size);
  }
  transport_.set_handler(
      [this](std::uint32_t to, const Transport<Message>::Envelope& env) {
        handle(static_cast<ids::RingIndex>(to), env.from, env.payload);
      });
}

void RingSimulation::start() {
  for (ids::RingIndex i = 0; i < config_.size; ++i) {
    schedule_probe(i, rng_.below(config_.probe_period));  // staggered
  }
}

void RingSimulation::kill(ids::RingIndex i) {
  HOURS_EXPECTS(i < config_.size);
  nodes_[i].alive = false;
  transport_.set_alive(i, false);
}

void RingSimulation::revive(ids::RingIndex i) {
  HOURS_EXPECTS(i < config_.size);
  Node& node = nodes_[i];
  node.alive = true;
  transport_.set_alive(i, true);
  node.suspected.clear();
  node.ccw_suspected = false;
  node.awaiting_claim = false;
}

bool RingSimulation::alive(ids::RingIndex i) const {
  HOURS_EXPECTS(i < config_.size);
  return nodes_[i].alive;
}

ids::RingIndex RingSimulation::cw_successor(ids::RingIndex i) const {
  HOURS_EXPECTS(i < config_.size);
  return nodes_[i].cw_succ;
}

ids::RingIndex RingSimulation::ccw_neighbor(ids::RingIndex i) const {
  HOURS_EXPECTS(i < config_.size);
  return nodes_[i].ccw;
}

bool RingSimulation::suspects(ids::RingIndex i, ids::RingIndex peer) const {
  HOURS_EXPECTS(i < config_.size && peer < config_.size);
  return nodes_[i].suspected.count(peer) != 0;
}

bool RingSimulation::ring_connected() const {
  ids::RingIndex start = config_.size;
  std::uint32_t alive_total = 0;
  for (ids::RingIndex i = 0; i < config_.size; ++i) {
    if (nodes_[i].alive) {
      ++alive_total;
      if (start == config_.size) start = i;
    }
  }
  if (alive_total == 0) return false;

  std::uint32_t visited = 0;
  ids::RingIndex at = start;
  do {
    if (!nodes_[at].alive) return false;  // pointer leads into a dead node
    ++visited;
    if (visited > alive_total) return false;  // short cycle that skips nodes
    at = nodes_[at].cw_succ;
  } while (at != start);
  return visited == alive_total;
}

// -- transport ------------------------------------------------------------------

void RingSimulation::send_expect_ack(ids::RingIndex from, ids::RingIndex to, Message msg,
                                     std::function<void()> on_ack,
                                     std::function<void()> on_timeout) {
  transport_.send_expect_ack(from, to, std::move(msg), std::move(on_ack),
                             std::move(on_timeout));
}

void RingSimulation::handle(ids::RingIndex at, ids::RingIndex from, const Message& msg) {
  Node& node = nodes_[at];

  // Hearing from a peer proves it alive. If we suspected it, its
  // reappearance may have invalidated our ring geometry (it revived, or a
  // partition healed): run the full adopt/re-merge check, not a silent
  // erase — otherwise a revived predecessor that probes us first would be
  // unsuspected here and the stale ccw pointer would never be repaired.
  if (node.suspected.count(from) != 0) on_suspect_recovered(at, from);

  switch (msg.type) {
    case Message::Type::kProbe: {
      // A probe from a strictly closer counter-clockwise node is an implicit
      // neighbor claim: the prober believes we are its clockwise successor.
      // Accepting it repairs the stale-predecessor state left behind when a
      // node we recovered around comes back (revival, healed partition) with
      // its own pointers intact — it will probe us but never re-claim.
      if (ids::counter_clockwise_distance(at, from, config_.size) <
          ids::counter_clockwise_distance(at, node.ccw, config_.size)) {
        if (node.ccw_suspected) {
          HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                                    .type = trace::EventType::kRecoveryComplete,
                                    .node = at,
                                    .peer = from});
        }
        node.ccw = from;
        node.ccw_suspected = false;
        node.awaiting_claim = false;
        node.ccw_miss_count = 0;
      }
      // Besides the transport-level ack, report our counter-clockwise
      // pointer: Chord-style stabilization. If the prober over-skipped us
      // (a loss-induced false suspicion made it adopt a farther successor),
      // this is how it finds its way back to the nearest alive node.
      Message info;
      info.type = Message::Type::kCcwInfo;
      info.origin = node.ccw;
      transport_.post(at, from, info);
      break;
    }
    case Message::Type::kCcwInfo: {
      // `from` is (normally) our successor telling us who precedes it. If
      // that node sits strictly between us and our current successor, probe
      // it and adopt it on response.
      const ids::RingIndex suggested = msg.origin;
      if (from != node.cw_succ || suggested == at) break;
      if (ids::clockwise_distance(at, suggested, config_.size) >=
          ids::clockwise_distance(at, node.cw_succ, config_.size)) {
        break;
      }
      Message probe;
      probe.type = Message::Type::kProbe;
      probes_sent_.inc();
      HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                                .type = trace::EventType::kProbeSent,
                                .node = at,
                                .peer = suggested});
      // The recovery check subsumes the adopt-if-closer logic this handler
      // used to inline, and additionally repairs the ccw side.
      send_expect_ack(at, suggested, probe,
                      /*on_ack=*/[this, at, suggested] { on_suspect_recovered(at, suggested); },
                      /*on_timeout=*/nullptr);
      break;
    }
    case Message::Type::kNeighborClaim: {
      // `from` asserts it is our closest alive counter-clockwise neighbor.
      // Accept if our current pointer is suspect, or the claimant sits
      // strictly closer counter-clockwise.
      const auto current = ids::counter_clockwise_distance(at, node.ccw, config_.size);
      const auto offered = ids::counter_clockwise_distance(at, from, config_.size);
      if (node.ccw_suspected || offered < current) {
        if (node.ccw_suspected) {
          HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                                    .type = trace::EventType::kRecoveryComplete,
                                    .node = at,
                                    .peer = from,
                                    .causal = msg.qid});
        }
        node.ccw = from;
        node.ccw_suspected = false;
        node.awaiting_claim = false;
        node.ccw_miss_count = 0;
      }
      break;
    }
    case Message::Type::kRepair:
      forward_repair(at, msg.origin, msg.qid);
      break;
    case Message::Type::kQuery:
      process_query(at, msg);
      break;
    case Message::Type::kClientHop:
      // Custody transfer for an externally driven query: the transport-level
      // ack already told the client this node is serving; nothing to do.
      break;
  }
}

// -- probing & recovery ------------------------------------------------------------

void RingSimulation::schedule_probe(ids::RingIndex i, Ticks delay) {
  sim_.schedule(delay, [this, i] { probe_cycle(i); });
}

void RingSimulation::probe_cycle(ids::RingIndex i) {
  Node& node = nodes_[i];
  if (!node.alive) {
    schedule_probe(i, config_.probe_period);  // dormant; resumes if revived
    return;
  }

  // Probe the clockwise successor; on silence, walk the table for the next
  // responsive sibling (conventional neighborhood recovery).
  {
    Message probe;
    probe.type = Message::Type::kProbe;
    probes_sent_.inc();
    const ids::RingIndex succ = node.cw_succ;
    HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                              .type = trace::EventType::kProbeSent,
                              .node = i,
                              .peer = succ});
    send_expect_ack(i, succ, probe,
                    /*on_ack=*/[this, i] { nodes_[i].cw_miss_count = 0; },
                    /*on_timeout=*/[this, i, succ] {
      Node& self = nodes_[i];
      if (!self.alive || self.cw_succ != succ) return;
      HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                                .type = trace::EventType::kProbeFailed,
                                .node = i,
                                .peer = succ});
      if (++self.cw_miss_count < config_.probe_failure_threshold) return;
      self.cw_miss_count = 0;
      suspect_peer(i, succ);
      // Candidates: remaining table entries in increasing clockwise distance.
      std::vector<ids::RingIndex> candidates;
      for (const auto& entry : self.table.entries()) {
        if (entry.sibling != succ && self.suspected.count(entry.sibling) == 0) {
          candidates.push_back(entry.sibling);
        }
      }
      advance_cw_successor(i, std::move(candidates));
    });
  }

  // Probe the counter-clockwise neighbor; on silence, wait one probe period
  // for a NeighborClaim before inferring massive failure (Section 4.3).
  {
    Message probe;
    probe.type = Message::Type::kProbe;
    probes_sent_.inc();
    const ids::RingIndex ccw = node.ccw;
    HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                              .type = trace::EventType::kProbeSent,
                              .node = i,
                              .peer = ccw});
    send_expect_ack(i, ccw, probe,
                    /*on_ack=*/
                    [this, i] {
                      nodes_[i].ccw_suspected = false;
                      nodes_[i].ccw_miss_count = 0;
                    },
                    /*on_timeout=*/[this, i, ccw] {
                      Node& self = nodes_[i];
                      if (!self.alive || self.ccw != ccw) return;
                      HOURS_TRACE_EMIT(trace_,
                                       {.at = sim_.now(),
                                        .type = trace::EventType::kProbeFailed,
                                        .node = i,
                                        .peer = ccw});
                      if (++self.ccw_miss_count < config_.probe_failure_threshold) return;
                      self.ccw_miss_count = 0;
                      if (self.awaiting_claim) return;  // a silence check is pending
                      // Re-armed on every silent probe period: if a Repair or
                      // its closing NeighborClaim is lost in transit, the next
                      // period simply tries again until the ring closes.
                      self.ccw_suspected = true;
                      self.awaiting_claim = true;
                      self.awaiting_check_event =
                          sim_.schedule(config_.probe_period, [this, i] { ccw_silence_check(i); });
                    });
  }

  if (config_.suspicion_refresh && !node.suspected.empty()) refresh_suspected(i);

  schedule_probe(i, config_.probe_period);
}

void RingSimulation::refresh_suspected(ids::RingIndex i) {
  Node& node = nodes_[i];
  // Round-robin: every suspected peer is re-checked within |suspected|
  // probe periods, however the set churns in between.
  auto it = node.suspected.lower_bound(node.refresh_cursor);
  if (it == node.suspected.end()) it = node.suspected.begin();
  const ids::RingIndex target = *it;
  node.refresh_cursor = target + 1;

  Message probe;
  probe.type = Message::Type::kProbe;
  probes_sent_.inc();
  HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                            .type = trace::EventType::kProbeSent,
                            .node = i,
                            .peer = target});
  send_expect_ack(i, target, probe,
                  /*on_ack=*/[this, i, target] { on_suspect_recovered(i, target); },
                  /*on_timeout=*/nullptr);  // still silent: stays suspected
}

void RingSimulation::on_suspect_recovered(ids::RingIndex i, ids::RingIndex peer) {
  Node& node = nodes_[i];
  if (!node.alive) return;
  node.suspected.erase(peer);

  // Clockwise side: the recovered peer may sit between us and the successor
  // we advanced to while it was unreachable — adopt it and claim the
  // neighborship, exactly as conventional recovery would have.
  if (ids::clockwise_distance(i, peer, config_.size) <
      ids::clockwise_distance(i, node.cw_succ, config_.size)) {
    node.cw_succ = peer;
    node.cw_miss_count = 0;
    Message claim;
    claim.type = Message::Type::kNeighborClaim;
    claims_sent_.inc();
    send_expect_ack(i, peer, claim, nullptr, nullptr);
  }

  // Counter-clockwise side: a recovered peer closer than the current ccw
  // neighbor means the predecessor geometry is stale — the signature state
  // after a partition heals, when each half has closed into its own ring
  // and the true predecessor sits in the other half. Re-run Section 4.3
  // active recovery: the Repair routes toward us through the re-merged
  // topology, the node that cannot forward it closer attaches, and the two
  // half-rings fuse back into one.
  if (ids::counter_clockwise_distance(i, peer, config_.size) <
      ids::counter_clockwise_distance(i, node.ccw, config_.size)) {
    start_active_recovery(i);
  }
}

void RingSimulation::advance_cw_successor(ids::RingIndex i, std::vector<ids::RingIndex> candidates) {
  Node& node = nodes_[i];
  if (!node.alive) return;
  if (candidates.empty()) {
    // Whole known clockwise side is silent; the far side of the gap will
    // reach us through active recovery.
    return;
  }
  const ids::RingIndex candidate = candidates.front();
  candidates.erase(candidates.begin());

  Message probe;
  probe.type = Message::Type::kProbe;
  probes_sent_.inc();
  HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                            .type = trace::EventType::kProbeSent,
                            .node = i,
                            .peer = candidate});
  send_expect_ack(
      i, candidate, probe,
      /*on_ack=*/
      [this, i, candidate] {
        Node& self = nodes_[i];
        if (!self.alive) return;
        self.cw_succ = candidate;
        Message claim;
        claim.type = Message::Type::kNeighborClaim;
        claims_sent_.inc();
        send_expect_ack(i, candidate, claim, nullptr, nullptr);
      },
      /*on_timeout=*/
      [this, i, candidate, remaining = std::move(candidates)]() mutable {
        HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                                  .type = trace::EventType::kProbeFailed,
                                  .node = i,
                                  .peer = candidate});
        suspect_peer(i, candidate);
        advance_cw_successor(i, std::move(remaining));
      });
}

void RingSimulation::ccw_silence_check(ids::RingIndex i) {
  Node& node = nodes_[i];
  if (!node.alive || !node.awaiting_claim) return;
  node.awaiting_claim = false;
  start_active_recovery(i);
}

void RingSimulation::start_active_recovery(ids::RingIndex origin) {
  repairs_sent_.inc();
  const std::uint64_t rid = next_rid_++;
  HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                            .type = trace::EventType::kRecoveryStart,
                            .node = origin,
                            .causal = rid});
  HOURS_LOG_DEBUG("node %u starts active recovery", origin);
  forward_repair(origin, origin, rid);
}

std::vector<ids::RingIndex> RingSimulation::progress_candidates(const Node& node,
                                                                ids::RingIndex at,
                                                                ids::RingIndex target) const {
  // The Repair originator routes toward itself: its own clockwise distance
  // is the full circle, not zero, so every entry makes "progress".
  const std::uint32_t self_distance =
      at == target ? config_.size : ids::clockwise_distance(at, target, config_.size);
  std::vector<ids::RingIndex> out;
  for (const auto& entry : node.table.entries()) {
    const ids::RingIndex s = entry.sibling;
    if (s == target || node.suspected.count(s) != 0) continue;
    if (ids::clockwise_distance(s, target, config_.size) < self_distance) out.push_back(s);
  }
  std::sort(out.begin(), out.end(), [&](ids::RingIndex a, ids::RingIndex b) {
    return ids::clockwise_distance(a, target, config_.size) <
           ids::clockwise_distance(b, target, config_.size);
  });
  return out;
}

void RingSimulation::forward_repair(ids::RingIndex at, ids::RingIndex origin,
                                    std::uint64_t rid) {
  Node& node = nodes_[at];
  if (!node.alive) return;

  // Both Figure-3 rules reduce to: try the alive entries that make clockwise
  // progress toward the originator, nearest first, never the originator
  // itself (that is the "second best choice" when the originator is in the
  // table). When nothing responds, this node is the far edge of the gap —
  // attach.
  std::vector<ids::RingIndex> candidates = progress_candidates(node, at, origin);
  if (candidates.empty()) {
    attach_repair(at, origin, rid);
    return;
  }

  struct Attempt {
    RingSimulation* self;
    ids::RingIndex at;
    ids::RingIndex origin;
    std::uint64_t rid;
    std::vector<ids::RingIndex> remaining;

    void run() {
      if (!self->nodes_[at].alive) return;
      if (remaining.empty()) {
        self->attach_repair(at, origin, rid);
        return;
      }
      const ids::RingIndex next = remaining.front();
      remaining.erase(remaining.begin());
      Message repair;
      repair.type = Message::Type::kRepair;
      repair.origin = origin;
      repair.qid = rid;
      Attempt copy = *this;
      self->send_expect_ack(
          at, next, repair, /*on_ack=*/nullptr,
          /*on_timeout=*/[copy, next]() mutable {
            copy.self->suspect_peer(copy.at, next);
            copy.run();
          });
    }
  };

  Attempt attempt{this, at, origin, rid, std::move(candidates)};
  attempt.run();
}

void RingSimulation::attach_repair(ids::RingIndex at, ids::RingIndex origin,
                                   std::uint64_t rid) {
  Node& node = nodes_[at];
  if (at == origin) return;

  HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                            .type = trace::EventType::kRecoveryAdopt,
                            .node = at,
                            .peer = origin,
                            .causal = rid});

  // "It creates a new routing entry for node s+1": the gap's far edge now
  // points at the originator and claims the counter-clockwise neighborship.
  node.table.insert_entry(overlay::TableEntry{origin, {}});
  const auto current = ids::clockwise_distance(at, node.cw_succ, config_.size);
  const auto offered = ids::clockwise_distance(at, origin, config_.size);
  if (node.suspected.count(node.cw_succ) != 0 || offered < current) {
    node.cw_succ = origin;
  }
  Message claim;
  claim.type = Message::Type::kNeighborClaim;
  claim.qid = rid;  // lets the originator's acceptance close the trace span
  claims_sent_.inc();
  send_expect_ack(at, origin, claim, nullptr, nullptr);
}

void RingSimulation::suspect_peer(ids::RingIndex i, ids::RingIndex peer) {
  if (nodes_[i].suspected.insert(peer).second) {
    HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                              .type = trace::EventType::kSuspect,
                              .node = i,
                              .peer = peer});
  }
}

// -- queries ------------------------------------------------------------------------

std::uint64_t RingSimulation::inject_query(ids::RingIndex from, ids::RingIndex od) {
  HOURS_EXPECTS(from < config_.size && od < config_.size);
  HOURS_EXPECTS(nodes_[from].alive);
  const std::uint64_t qid = next_qid_++;
  queries_[qid] = QueryOutcome{};
  HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                            .type = trace::EventType::kQuerySubmit,
                            .node = from,
                            .peer = od,
                            .causal = qid});

  Message query;
  query.type = Message::Type::kQuery;
  query.qid = qid;
  query.od = od;
  sim_.schedule(0, [this, from, query] { process_query(from, query); });
  return qid;
}

const RingSimulation::QueryOutcome& RingSimulation::query(std::uint64_t qid) const {
  const auto it = queries_.find(qid);
  HOURS_EXPECTS(it != queries_.end());
  return it->second;
}

void RingSimulation::finish_query(std::uint64_t qid, bool delivered, std::uint32_t hops) {
  auto& outcome = queries_[qid];
  outcome.done = true;
  outcome.delivered = delivered;
  outcome.hops = hops;
  outcome.completed_at = sim_.now();
  HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                            .type = delivered ? trace::EventType::kQueryDelivered
                                              : trace::EventType::kQueryFailed,
                            .causal = qid,
                            .value = hops});
}

std::vector<ids::RingIndex> RingSimulation::route_candidates(ids::RingIndex at,
                                                             ids::RingIndex od,
                                                             bool& backward) const {
  HOURS_EXPECTS(at < config_.size && od < config_.size);
  const Node& node = nodes_[at];
  std::vector<ids::RingIndex> candidates;
  if (!backward) {
    // Rule 1: the OD itself if we hold a pointer and do not suspect it.
    if (node.table.find(od) != nullptr && node.suspected.count(od) == 0) {
      candidates.push_back(od);
    }
    const auto greedy = progress_candidates(node, at, od);
    candidates.insert(candidates.end(), greedy.begin(), greedy.end());
    if (candidates.empty()) {
      backward = true;  // Algorithm 3 line 14: flip to backward mode
    }
  }
  if (backward) {
    if (node.suspected.count(node.ccw) == 0) {
      candidates.push_back(node.ccw);
    }
  }
  return candidates;
}

void RingSimulation::client_attempt(ids::RingIndex at, ids::RingIndex to,
                                    std::function<void()> on_ack,
                                    std::function<void()> on_timeout) {
  HOURS_EXPECTS(at < config_.size && to < config_.size);
  Message hop;
  hop.type = Message::Type::kClientHop;
  send_expect_ack(at, to, hop, std::move(on_ack), std::move(on_timeout));
}

void RingSimulation::process_query(ids::RingIndex at, Message msg) {
  Node& node = nodes_[at];
  if (!node.alive) return;

  if (at == msg.od) {
    finish_query(msg.qid, true, msg.hops);
    return;
  }

  auto candidates = route_candidates(at, msg.od, msg.backward);
  if (candidates.empty()) {
    finish_query(msg.qid, false, msg.hops);
    return;
  }
  try_query_candidates(at, msg, std::move(candidates));
}

void RingSimulation::try_query_candidates(ids::RingIndex at, Message msg,
                                          std::vector<ids::RingIndex> candidates) {
  if (!nodes_[at].alive) return;
  if (candidates.empty()) {
    // Everything we tried timed out; re-run the decision with the updated
    // suspicion set (it may flip the query to backward mode).
    process_query(at, msg);
    return;
  }
  const ids::RingIndex next = candidates.front();
  candidates.erase(candidates.begin());

  Message forwarded = msg;
  forwarded.hops += 1;
  if (forwarded.hops > 4 * config_.size) {
    finish_query(msg.qid, false, msg.hops);
    return;
  }
  HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                            .type = msg.backward ? trace::EventType::kBackwardHop
                                                 : trace::EventType::kRingHop,
                            .node = at,
                            .peer = next,
                            .causal = msg.qid,
                            .value = forwarded.hops});
  send_expect_ack(
      at, next, forwarded, /*on_ack=*/nullptr,
      /*on_timeout=*/[this, at, msg, next, remaining = std::move(candidates)]() mutable {
        suspect_peer(at, next);
        try_query_candidates(at, msg, std::move(remaining));
      });
}

}  // namespace hours::sim
