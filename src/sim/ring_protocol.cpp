#include "sim/ring_protocol.hpp"

#include <algorithm>

#include "overlay/table_builder.hpp"
#include "rng/splitmix64.hpp"
#include "snapshot/event_kinds.hpp"
#include "snapshot/registry_io.hpp"
#include "util/contracts.hpp"
#include "util/log.hpp"

namespace hours::sim {

namespace {

TransportConfig transport_config(const RingSimConfig& config) {
  TransportConfig t;
  t.latency_min = config.latency_min;
  t.latency_max = config.latency_max;
  t.ack_timeout = config.ack_timeout;
  t.loss_probability = config.loss_probability;
  return t;
}

}  // namespace

RingSimulation::RingSimulation(RingSimConfig config)
    : config_(config),
      rng_(rng::mix64(config.seed, 0x70726F746FULL)),
      transport_(sim_, transport_config(config), config.size, config.seed),
      liveness_(config.liveness, /*suspicion_ttl=*/0),
      probes_sent_(registry_.counter("ring.probes_sent")),
      repairs_sent_(registry_.counter("ring.repairs_sent")),
      claims_sent_(registry_.counter("ring.claims_sent")) {
  HOURS_EXPECTS(config_.size >= 3);
  config_.params.validate();

  nodes_.resize(config_.size);
  for (ids::RingIndex i = 0; i < config_.size; ++i) {
    Node& node = nodes_[i];
    node.table = overlay::build_routing_table(config_.size, i, config_.params);
    node.cw_succ = ids::clockwise_step(i, 1, config_.size);
    node.ccw = ids::counter_clockwise_step(i, 1, config_.size);
  }
  transport_.set_handler(
      [this](std::uint32_t to, const Transport<Message>::Envelope& env) {
        handle(static_cast<ids::RingIndex>(to), env.from, env.payload);
      });
  // With codec + runner installed, every in-flight message and every protocol
  // callback is a described event: the whole run is snapshottable.
  transport_.set_snapshot_codec(
      [](const Message& msg, std::vector<std::uint64_t>& out) { encode_message(msg, out); },
      [](const std::uint64_t* words, std::size_t count) {
        return decode_message(words, count);
      });
  transport_.set_continuation_runner(
      [this](const snapshot::Described& cont) { run_continuation(cont); });
  // Deliveries and codec-path ack timeouts are described-only events on the
  // simulator's hot path; route their kinds back to the transport.
  sim_.set_runner([this](std::uint32_t kind, const std::uint64_t* args, std::size_t count) {
    HOURS_EXPECTS(kind >= 0x100 && kind <= 0x1FF);
    transport_.run_described(kind, args, count);
  });
  if (liveness_.gossip_enabled()) {
    digests_sent_ = registry_.counter("ring.liveness_digests_sent");
    digest_entries_sent_ = registry_.counter("ring.liveness_digest_entries_sent");
    gossip_adopted_ = registry_.counter("ring.liveness_gossip_adopted");
    transport_.set_digest_hooks(
        [this](std::uint32_t from, std::uint32_t /*to*/, std::vector<std::uint64_t>& out) {
          build_digest_words(static_cast<ids::RingIndex>(from), out);
        },
        [this](std::uint32_t to, std::uint32_t from, const std::uint64_t* words,
               std::size_t count) {
          apply_digest_words(static_cast<ids::RingIndex>(to),
                             static_cast<ids::RingIndex>(from), words, count);
        });
  }
}

void RingSimulation::start() {
  for (ids::RingIndex i = 0; i < config_.size; ++i) {
    schedule_probe(i, rng_.below(config_.probe_period));  // staggered
  }
}

void RingSimulation::kill(ids::RingIndex i) {
  HOURS_EXPECTS(i < config_.size);
  nodes_[i].alive = false;
  transport_.set_alive(i, false);
}

void RingSimulation::revive(ids::RingIndex i) {
  HOURS_EXPECTS(i < config_.size);
  Node& node = nodes_[i];
  node.alive = true;
  transport_.set_alive(i, true);
  liveness_.clear_observer(i);
  node.ccw_suspected = false;
  node.awaiting_claim = false;
}

bool RingSimulation::alive(ids::RingIndex i) const {
  HOURS_EXPECTS(i < config_.size);
  return nodes_[i].alive;
}

ids::RingIndex RingSimulation::cw_successor(ids::RingIndex i) const {
  HOURS_EXPECTS(i < config_.size);
  return nodes_[i].cw_succ;
}

ids::RingIndex RingSimulation::ccw_neighbor(ids::RingIndex i) const {
  HOURS_EXPECTS(i < config_.size);
  return nodes_[i].ccw;
}

bool RingSimulation::suspects(ids::RingIndex i, ids::RingIndex peer) const {
  HOURS_EXPECTS(i < config_.size && peer < config_.size);
  return liveness_.contains(i, peer);
}

bool RingSimulation::ring_connected() const {
  ids::RingIndex start = config_.size;
  std::uint32_t alive_total = 0;
  for (ids::RingIndex i = 0; i < config_.size; ++i) {
    if (nodes_[i].alive) {
      ++alive_total;
      if (start == config_.size) start = i;
    }
  }
  if (alive_total == 0) return false;

  std::uint32_t visited = 0;
  ids::RingIndex at = start;
  do {
    if (!nodes_[at].alive) return false;  // pointer leads into a dead node
    ++visited;
    if (visited > alive_total) return false;  // short cycle that skips nodes
    at = nodes_[at].cw_succ;
  } while (at != start);
  return visited == alive_total;
}

// -- continuations -----------------------------------------------------------------

void RingSimulation::encode_message(const Message& msg, std::vector<std::uint64_t>& out) {
  out.push_back(static_cast<std::uint64_t>(msg.type));
  out.push_back(msg.origin);
  out.push_back(msg.qid);
  out.push_back(msg.od);
  out.push_back(static_cast<std::uint64_t>(msg.backward ? 1 : 0));
  out.push_back(msg.hops);
}

RingSimulation::Message RingSimulation::decode_message(const std::uint64_t* words,
                                                       std::size_t count) {
  HOURS_EXPECTS(count == 6);
  Message msg;
  msg.type = static_cast<Message::Type>(words[0]);
  msg.origin = static_cast<ids::RingIndex>(words[1]);
  msg.qid = words[2];
  msg.od = static_cast<ids::RingIndex>(words[3]);
  msg.backward = words[4] != 0;
  msg.hops = static_cast<std::uint32_t>(words[5]);
  return msg;
}

void RingSimulation::run_continuation(const snapshot::Described& cont) {
  const auto arg = [&cont](std::size_t k) {
    HOURS_EXPECTS(k < cont.args.size());
    return static_cast<ids::RingIndex>(cont.args[k]);
  };
  const auto tail = [&cont](std::size_t from) {
    std::vector<ids::RingIndex> out;
    for (std::size_t k = from; k < cont.args.size(); ++k) {
      out.push_back(static_cast<ids::RingIndex>(cont.args[k]));
    }
    return out;
  };

  switch (cont.kind) {
    case snapshot::kRingProbeTimer:
      probe_cycle(arg(0));
      break;
    case snapshot::kRingCwProbeAck:
      nodes_[arg(0)].cw_miss_count = 0;
      break;
    case snapshot::kRingCwProbeTimeout:
      cw_probe_timeout(arg(0), arg(1));
      break;
    case snapshot::kRingCcwProbeAck: {
      Node& node = nodes_[arg(0)];
      node.ccw_suspected = false;
      node.ccw_miss_count = 0;
      break;
    }
    case snapshot::kRingCcwProbeTimeout:
      ccw_probe_timeout(arg(0), arg(1));
      break;
    case snapshot::kRingRecoveredAck:
      on_suspect_recovered(arg(0), arg(1));
      break;
    case snapshot::kRingAdvanceAck:
      advance_ack(arg(0), arg(1));
      break;
    case snapshot::kRingAdvanceTimeout: {
      const ids::RingIndex i = arg(0);
      const ids::RingIndex candidate = arg(1);
      HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                                .type = trace::EventType::kProbeFailed,
                                .node = i,
                                .peer = candidate});
      suspect_peer(i, candidate);
      advance_cw_successor(i, tail(2));
      break;
    }
    case snapshot::kRingCcwSilenceCheck:
      ccw_silence_check(arg(0));
      break;
    case snapshot::kRingRepairTimeout: {
      const ids::RingIndex at = arg(0);
      const ids::RingIndex origin = arg(1);
      const std::uint64_t rid = cont.args[2];
      const ids::RingIndex tried = arg(3);
      suspect_peer(at, tried);
      repair_attempt(at, origin, rid, tail(4));
      break;
    }
    case snapshot::kRingQueryStart: {
      HOURS_EXPECTS(cont.args.size() == 7);
      process_query(arg(0), decode_message(cont.args.data() + 1, 6));
      break;
    }
    case snapshot::kRingQueryHopTimeout: {
      HOURS_EXPECTS(cont.args.size() >= 8);
      const ids::RingIndex at = arg(0);
      const ids::RingIndex tried = arg(1);
      const Message msg = decode_message(cont.args.data() + 2, 6);
      suspect_peer(at, tried);
      try_query_candidates(at, msg, tail(8));
      break;
    }
    default:
      HOURS_EXPECTS(!"unknown ring continuation kind");
  }
}

// -- transport ------------------------------------------------------------------

void RingSimulation::send_expect_ack(ids::RingIndex from, ids::RingIndex to, Message msg,
                                     std::function<void()> on_ack,
                                     std::function<void()> on_timeout) {
  transport_.send_expect_ack(from, to, std::move(msg), std::move(on_ack),
                             std::move(on_timeout));
}

void RingSimulation::send_expect_ack(ids::RingIndex from, ids::RingIndex to, Message msg,
                                     snapshot::Described on_ack,
                                     snapshot::Described on_timeout) {
  transport_.send_expect_ack(from, to, std::move(msg), std::move(on_ack),
                             std::move(on_timeout));
}

void RingSimulation::handle(ids::RingIndex at, ids::RingIndex from, const Message& msg) {
  Node& node = nodes_[at];

  // Hearing from a peer proves it alive. If we suspected it, its
  // reappearance may have invalidated our ring geometry (it revived, or a
  // partition healed): run the full adopt/re-merge check, not a silent
  // erase — otherwise a revived predecessor that probes us first would be
  // unsuspected here and the stale ccw pointer would never be repaired.
  if (liveness_.contains(at, from)) on_suspect_recovered(at, from);

  switch (msg.type) {
    case Message::Type::kProbe: {
      // A probe from a strictly closer counter-clockwise node is an implicit
      // neighbor claim: the prober believes we are its clockwise successor.
      // Accepting it repairs the stale-predecessor state left behind when a
      // node we recovered around comes back (revival, healed partition) with
      // its own pointers intact — it will probe us but never re-claim.
      if (ids::counter_clockwise_distance(at, from, config_.size) <
          ids::counter_clockwise_distance(at, node.ccw, config_.size)) {
        if (node.ccw_suspected) {
          HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                                    .type = trace::EventType::kRecoveryComplete,
                                    .node = at,
                                    .peer = from});
        }
        node.ccw = from;
        node.ccw_suspected = false;
        node.awaiting_claim = false;
        node.ccw_miss_count = 0;
      }
      // Besides the transport-level ack, report our counter-clockwise
      // pointer: Chord-style stabilization. If the prober over-skipped us
      // (a loss-induced false suspicion made it adopt a farther successor),
      // this is how it finds its way back to the nearest alive node.
      Message info;
      info.type = Message::Type::kCcwInfo;
      info.origin = node.ccw;
      transport_.post(at, from, info);
      break;
    }
    case Message::Type::kCcwInfo: {
      // `from` is (normally) our successor telling us who precedes it. If
      // that node sits strictly between us and our current successor, probe
      // it and adopt it on response.
      const ids::RingIndex suggested = msg.origin;
      if (from != node.cw_succ || suggested == at) break;
      if (ids::clockwise_distance(at, suggested, config_.size) >=
          ids::clockwise_distance(at, node.cw_succ, config_.size)) {
        break;
      }
      Message probe;
      probe.type = Message::Type::kProbe;
      probes_sent_.inc();
      HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                                .type = trace::EventType::kProbeSent,
                                .node = at,
                                .peer = suggested});
      // The recovery check subsumes the adopt-if-closer logic this handler
      // used to inline, and additionally repairs the ccw side.
      send_expect_ack(at, suggested, probe,
                      snapshot::Described{snapshot::kRingRecoveredAck, {at, suggested}},
                      snapshot::Described{});
      break;
    }
    case Message::Type::kNeighborClaim: {
      // `from` asserts it is our closest alive counter-clockwise neighbor.
      // Accept if our current pointer is suspect, or the claimant sits
      // strictly closer counter-clockwise.
      const auto current = ids::counter_clockwise_distance(at, node.ccw, config_.size);
      const auto offered = ids::counter_clockwise_distance(at, from, config_.size);
      if (node.ccw_suspected || offered < current) {
        if (node.ccw_suspected) {
          HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                                    .type = trace::EventType::kRecoveryComplete,
                                    .node = at,
                                    .peer = from,
                                    .causal = msg.qid});
        }
        node.ccw = from;
        node.ccw_suspected = false;
        node.awaiting_claim = false;
        node.ccw_miss_count = 0;
      }
      break;
    }
    case Message::Type::kRepair:
      forward_repair(at, msg.origin, msg.qid);
      break;
    case Message::Type::kQuery:
      process_query(at, msg);
      break;
    case Message::Type::kClientHop:
      // Custody transfer for an externally driven query: the transport-level
      // ack already told the client this node is serving; nothing to do.
      break;
  }
}

// -- probing & recovery ------------------------------------------------------------

void RingSimulation::schedule_probe(ids::RingIndex i, Ticks delay) {
  const snapshot::Described timer{snapshot::kRingProbeTimer, {i}};
  sim_.schedule(delay, timer, [this, timer] { run_continuation(timer); });
}

void RingSimulation::probe_cycle(ids::RingIndex i) {
  Node& node = nodes_[i];
  if (!node.alive) {
    schedule_probe(i, config_.probe_period);  // dormant; resumes if revived
    return;
  }

  // Probe the clockwise successor; on silence, walk the table for the next
  // responsive sibling (conventional neighborhood recovery).
  {
    Message probe;
    probe.type = Message::Type::kProbe;
    probes_sent_.inc();
    const ids::RingIndex succ = node.cw_succ;
    HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                              .type = trace::EventType::kProbeSent,
                              .node = i,
                              .peer = succ});
    send_expect_ack(i, succ, probe,
                    snapshot::Described{snapshot::kRingCwProbeAck, {i}},
                    snapshot::Described{snapshot::kRingCwProbeTimeout, {i, succ}});
  }

  // Probe the counter-clockwise neighbor; on silence, wait one probe period
  // for a NeighborClaim before inferring massive failure (Section 4.3).
  {
    Message probe;
    probe.type = Message::Type::kProbe;
    probes_sent_.inc();
    const ids::RingIndex ccw = node.ccw;
    HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                              .type = trace::EventType::kProbeSent,
                              .node = i,
                              .peer = ccw});
    send_expect_ack(i, ccw, probe,
                    snapshot::Described{snapshot::kRingCcwProbeAck, {i}},
                    snapshot::Described{snapshot::kRingCcwProbeTimeout, {i, ccw}});
  }

  if (config_.suspicion_refresh && !liveness_.observer_empty(i)) refresh_suspected(i);

  schedule_probe(i, config_.probe_period);
}

void RingSimulation::cw_probe_timeout(ids::RingIndex i, ids::RingIndex succ) {
  Node& self = nodes_[i];
  if (!self.alive || self.cw_succ != succ) return;
  HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                            .type = trace::EventType::kProbeFailed,
                            .node = i,
                            .peer = succ});
  if (++self.cw_miss_count < config_.probe_failure_threshold) return;
  self.cw_miss_count = 0;
  suspect_peer(i, succ);
  // Candidates: remaining table entries in increasing clockwise distance.
  std::vector<ids::RingIndex> candidates;
  for (const auto& entry : self.table.entries()) {
    if (entry.sibling != succ && !liveness_.contains(i, entry.sibling)) {
      candidates.push_back(entry.sibling);
    }
  }
  advance_cw_successor(i, std::move(candidates));
}

void RingSimulation::ccw_probe_timeout(ids::RingIndex i, ids::RingIndex ccw) {
  Node& self = nodes_[i];
  if (!self.alive || self.ccw != ccw) return;
  HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                            .type = trace::EventType::kProbeFailed,
                            .node = i,
                            .peer = ccw});
  if (++self.ccw_miss_count < config_.probe_failure_threshold) return;
  self.ccw_miss_count = 0;
  if (self.awaiting_claim) return;  // a silence check is pending
  // Re-armed on every silent probe period: if a Repair or its closing
  // NeighborClaim is lost in transit, the next period simply tries again
  // until the ring closes.
  self.ccw_suspected = true;
  self.awaiting_claim = true;
  const snapshot::Described check{snapshot::kRingCcwSilenceCheck, {i}};
  self.awaiting_check_event =
      sim_.schedule(config_.probe_period, check, [this, check] { run_continuation(check); });
}

void RingSimulation::refresh_suspected(ids::RingIndex i) {
  Node& node = nodes_[i];
  // Round-robin: every suspected peer is re-checked within |suspected|
  // probe periods, however the set churns in between.
  const ids::RingIndex target = liveness_.next_at_or_after(i, node.refresh_cursor);
  node.refresh_cursor = target + 1;

  Message probe;
  probe.type = Message::Type::kProbe;
  probes_sent_.inc();
  HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                            .type = trace::EventType::kProbeSent,
                            .node = i,
                            .peer = target});
  send_expect_ack(i, target, probe,
                  snapshot::Described{snapshot::kRingRecoveredAck, {i, target}},
                  snapshot::Described{});  // still silent: stays suspected
}

void RingSimulation::on_suspect_recovered(ids::RingIndex i, ids::RingIndex peer) {
  Node& node = nodes_[i];
  if (!node.alive) return;
  liveness_.clear(i, peer);

  // Clockwise side: the recovered peer may sit between us and the successor
  // we advanced to while it was unreachable — adopt it and claim the
  // neighborship, exactly as conventional recovery would have.
  if (ids::clockwise_distance(i, peer, config_.size) <
      ids::clockwise_distance(i, node.cw_succ, config_.size)) {
    node.cw_succ = peer;
    node.cw_miss_count = 0;
    Message claim;
    claim.type = Message::Type::kNeighborClaim;
    claims_sent_.inc();
    send_expect_ack(i, peer, claim, snapshot::Described{}, snapshot::Described{});
  }

  // Counter-clockwise side: a recovered peer closer than the current ccw
  // neighbor means the predecessor geometry is stale — the signature state
  // after a partition heals, when each half has closed into its own ring
  // and the true predecessor sits in the other half. Re-run Section 4.3
  // active recovery: the Repair routes toward us through the re-merged
  // topology, the node that cannot forward it closer attaches, and the two
  // half-rings fuse back into one.
  if (ids::counter_clockwise_distance(i, peer, config_.size) <
      ids::counter_clockwise_distance(i, node.ccw, config_.size)) {
    start_active_recovery(i);
  }
}

void RingSimulation::advance_cw_successor(ids::RingIndex i,
                                          std::vector<ids::RingIndex> candidates) {
  Node& node = nodes_[i];
  if (!node.alive) return;
  if (candidates.empty()) {
    // Whole known clockwise side is silent; the far side of the gap will
    // reach us through active recovery.
    return;
  }
  const ids::RingIndex candidate = candidates.front();
  candidates.erase(candidates.begin());

  Message probe;
  probe.type = Message::Type::kProbe;
  probes_sent_.inc();
  HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                            .type = trace::EventType::kProbeSent,
                            .node = i,
                            .peer = candidate});
  snapshot::Described timeout{snapshot::kRingAdvanceTimeout, {i, candidate}};
  timeout.args.insert(timeout.args.end(), candidates.begin(), candidates.end());
  send_expect_ack(i, candidate, probe,
                  snapshot::Described{snapshot::kRingAdvanceAck, {i, candidate}},
                  std::move(timeout));
}

void RingSimulation::advance_ack(ids::RingIndex i, ids::RingIndex candidate) {
  Node& self = nodes_[i];
  if (!self.alive) return;
  self.cw_succ = candidate;
  Message claim;
  claim.type = Message::Type::kNeighborClaim;
  claims_sent_.inc();
  send_expect_ack(i, candidate, claim, snapshot::Described{}, snapshot::Described{});
}

void RingSimulation::ccw_silence_check(ids::RingIndex i) {
  Node& node = nodes_[i];
  if (!node.alive || !node.awaiting_claim) return;
  node.awaiting_claim = false;
  start_active_recovery(i);
}

void RingSimulation::start_active_recovery(ids::RingIndex origin) {
  repairs_sent_.inc();
  const std::uint64_t rid = next_rid_++;
  HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                            .type = trace::EventType::kRecoveryStart,
                            .node = origin,
                            .causal = rid});
  HOURS_LOG_DEBUG("node %u starts active recovery", origin);
  forward_repair(origin, origin, rid);
}

std::vector<ids::RingIndex> RingSimulation::progress_candidates(const Node& node,
                                                                ids::RingIndex at,
                                                                ids::RingIndex target) const {
  // The Repair originator routes toward itself: its own clockwise distance
  // is the full circle, not zero, so every entry makes "progress".
  const std::uint32_t self_distance =
      at == target ? config_.size : ids::clockwise_distance(at, target, config_.size);
  std::vector<ids::RingIndex> out;
  for (const auto& entry : node.table.entries()) {
    const ids::RingIndex s = entry.sibling;
    if (s == target || liveness_.contains(at, s)) continue;
    if (ids::clockwise_distance(s, target, config_.size) < self_distance) out.push_back(s);
  }
  std::sort(out.begin(), out.end(), [&](ids::RingIndex a, ids::RingIndex b) {
    return ids::clockwise_distance(a, target, config_.size) <
           ids::clockwise_distance(b, target, config_.size);
  });
  return out;
}

void RingSimulation::forward_repair(ids::RingIndex at, ids::RingIndex origin,
                                    std::uint64_t rid) {
  Node& node = nodes_[at];
  if (!node.alive) return;

  // Both Figure-3 rules reduce to: try the alive entries that make clockwise
  // progress toward the originator, nearest first, never the originator
  // itself (that is the "second best choice" when the originator is in the
  // table). When nothing responds, this node is the far edge of the gap —
  // attach.
  repair_attempt(at, origin, rid, progress_candidates(node, at, origin));
}

void RingSimulation::repair_attempt(ids::RingIndex at, ids::RingIndex origin,
                                    std::uint64_t rid,
                                    std::vector<ids::RingIndex> remaining) {
  if (!nodes_[at].alive) return;
  if (remaining.empty()) {
    attach_repair(at, origin, rid);
    return;
  }
  const ids::RingIndex next = remaining.front();
  remaining.erase(remaining.begin());
  Message repair;
  repair.type = Message::Type::kRepair;
  repair.origin = origin;
  repair.qid = rid;
  snapshot::Described timeout{snapshot::kRingRepairTimeout, {at, origin, rid, next}};
  timeout.args.insert(timeout.args.end(), remaining.begin(), remaining.end());
  send_expect_ack(at, next, repair, snapshot::Described{}, std::move(timeout));
}

void RingSimulation::attach_repair(ids::RingIndex at, ids::RingIndex origin,
                                   std::uint64_t rid) {
  Node& node = nodes_[at];
  if (at == origin) return;

  HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                            .type = trace::EventType::kRecoveryAdopt,
                            .node = at,
                            .peer = origin,
                            .causal = rid});

  // "It creates a new routing entry for node s+1": the gap's far edge now
  // points at the originator and claims the counter-clockwise neighborship.
  node.table.insert_entry(overlay::TableEntry{origin, {}});
  const auto current = ids::clockwise_distance(at, node.cw_succ, config_.size);
  const auto offered = ids::clockwise_distance(at, origin, config_.size);
  if (liveness_.contains(at, node.cw_succ) || offered < current) {
    node.cw_succ = origin;
  }
  Message claim;
  claim.type = Message::Type::kNeighborClaim;
  claim.qid = rid;  // lets the originator's acceptance close the trace span
  claims_sent_.inc();
  send_expect_ack(at, origin, claim, snapshot::Described{}, snapshot::Described{});
}

void RingSimulation::suspect_peer(ids::RingIndex i, ids::RingIndex peer) {
  if (liveness_.suspect(i, peer, sim_.now())) {
    HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                              .type = trace::EventType::kSuspect,
                              .node = i,
                              .peer = peer});
  }
}

// -- gossip evidence source ---------------------------------------------------------

void RingSimulation::build_digest_words(ids::RingIndex from,
                                        std::vector<std::uint64_t>& out) {
  const auto digest = liveness_.build_digest(from, sim_.now());
  if (digest.empty()) return;
  for (const auto& entry : digest) {
    out.push_back(entry.peer);
    out.push_back(entry.since);
  }
  digests_sent_->inc();
  digest_entries_sent_->inc(digest.size());
  HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                            .type = trace::EventType::kLivenessDigestSent,
                            .node = from,
                            .value = digest.size()});
}

void RingSimulation::apply_digest_words(ids::RingIndex at, ids::RingIndex from,
                                        const std::uint64_t* words, std::size_t count) {
  HOURS_EXPECTS(count % 2 == 0);
  if (!nodes_[at].alive) return;
  const Ticks now = sim_.now();
  std::uint64_t adopted = 0;
  for (std::size_t k = 0; k + 1 < count; k += 2) {
    const auto peer = static_cast<ids::RingIndex>(words[k]);
    const Ticks since = words[k + 1];
    // Never adopt suspicion of ourselves or of the sender (this very frame
    // proves the sender alive); drop rumors past the propagation horizon.
    if (peer >= config_.size || peer == at || peer == from) continue;
    if (!liveness_.within_horizon(since, now)) continue;
    if (!liveness_.adopt(at, peer, since, now)) continue;
    ++adopted;
    gossip_adopted_->inc();
    HOURS_TRACE_EMIT(trace_, {.at = now,
                              .type = trace::EventType::kLivenessGossipSuspect,
                              .node = at,
                              .peer = peer,
                              .value = since});
  }
  HOURS_TRACE_EMIT(trace_, {.at = now,
                            .type = trace::EventType::kLivenessDigestApplied,
                            .node = at,
                            .peer = from,
                            .value = adopted});
}

// -- queries ------------------------------------------------------------------------

std::uint64_t RingSimulation::inject_query(ids::RingIndex from, ids::RingIndex od) {
  HOURS_EXPECTS(from < config_.size && od < config_.size);
  HOURS_EXPECTS(nodes_[from].alive);
  const std::uint64_t qid = next_qid_++;
  queries_[qid] = QueryOutcome{};
  HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                            .type = trace::EventType::kQuerySubmit,
                            .node = from,
                            .peer = od,
                            .causal = qid});

  Message query;
  query.type = Message::Type::kQuery;
  query.qid = qid;
  query.od = od;
  snapshot::Described start{snapshot::kRingQueryStart, {from}};
  encode_message(query, start.args);
  sim_.schedule(0, start, [this, start] { run_continuation(start); });
  return qid;
}

const RingSimulation::QueryOutcome& RingSimulation::query(std::uint64_t qid) const {
  const auto it = queries_.find(qid);
  HOURS_EXPECTS(it != queries_.end());
  return it->second;
}

void RingSimulation::finish_query(std::uint64_t qid, bool delivered, std::uint32_t hops) {
  auto& outcome = queries_[qid];
  outcome.done = true;
  outcome.delivered = delivered;
  outcome.hops = hops;
  outcome.completed_at = sim_.now();
  HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                            .type = delivered ? trace::EventType::kQueryDelivered
                                              : trace::EventType::kQueryFailed,
                            .causal = qid,
                            .value = hops});
}

std::vector<ids::RingIndex> RingSimulation::route_candidates(ids::RingIndex at,
                                                             ids::RingIndex od,
                                                             bool& backward) const {
  HOURS_EXPECTS(at < config_.size && od < config_.size);
  const Node& node = nodes_[at];
  std::vector<ids::RingIndex> candidates;
  if (!backward) {
    // Rule 1: the OD itself if we hold a pointer and do not suspect it.
    if (node.table.find(od) != nullptr && !liveness_.contains(at, od)) {
      candidates.push_back(od);
    }
    const auto greedy = progress_candidates(node, at, od);
    candidates.insert(candidates.end(), greedy.begin(), greedy.end());
    if (candidates.empty()) {
      backward = true;  // Algorithm 3 line 14: flip to backward mode
    }
  }
  if (backward) {
    if (!liveness_.contains(at, node.ccw)) {
      candidates.push_back(node.ccw);
    }
  }
  return candidates;
}

void RingSimulation::client_attempt(ids::RingIndex at, ids::RingIndex to,
                                    std::function<void()> on_ack,
                                    std::function<void()> on_timeout) {
  HOURS_EXPECTS(at < config_.size && to < config_.size);
  Message hop;
  hop.type = Message::Type::kClientHop;
  send_expect_ack(at, to, hop, std::move(on_ack), std::move(on_timeout));
}

void RingSimulation::process_query(ids::RingIndex at, Message msg) {
  Node& node = nodes_[at];
  if (!node.alive) return;

  if (at == msg.od) {
    finish_query(msg.qid, true, msg.hops);
    return;
  }

  auto candidates = route_candidates(at, msg.od, msg.backward);
  if (candidates.empty()) {
    finish_query(msg.qid, false, msg.hops);
    return;
  }
  try_query_candidates(at, msg, std::move(candidates));
}

void RingSimulation::try_query_candidates(ids::RingIndex at, Message msg,
                                          std::vector<ids::RingIndex> candidates) {
  if (!nodes_[at].alive) return;
  if (candidates.empty()) {
    // Everything we tried timed out; re-run the decision with the updated
    // suspicion set (it may flip the query to backward mode).
    process_query(at, msg);
    return;
  }
  const ids::RingIndex next = candidates.front();
  candidates.erase(candidates.begin());

  Message forwarded = msg;
  forwarded.hops += 1;
  if (forwarded.hops > 4 * config_.size) {
    finish_query(msg.qid, false, msg.hops);
    return;
  }
  HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                            .type = msg.backward ? trace::EventType::kBackwardHop
                                                 : trace::EventType::kRingHop,
                            .node = at,
                            .peer = next,
                            .causal = msg.qid,
                            .value = forwarded.hops});
  // The timeout carries the PRE-hop message: the retry re-decides from the
  // state the failed attempt saw.
  snapshot::Described timeout{snapshot::kRingQueryHopTimeout, {at, next}};
  encode_message(msg, timeout.args);
  timeout.args.insert(timeout.args.end(), candidates.begin(), candidates.end());
  send_expect_ack(at, next, forwarded, snapshot::Described{}, std::move(timeout));
}

// -- snapshot (snapshot::Participant) ------------------------------------------------

snapshot::Json RingSimulation::save_state(std::string& error) const {
  using snapshot::Json;
  Json transport = transport_.save_state(error);
  if (!error.empty()) return Json::object();

  Json out = Json::object();

  // Config echo: a snapshot only restores into an identically configured
  // simulation (routing tables and transport seeds must regenerate equal).
  Json cfg = Json::object();
  cfg["size"] = Json(static_cast<std::uint64_t>(config_.size));
  cfg["design"] = Json(static_cast<std::uint64_t>(config_.params.design));
  cfg["k"] = Json(static_cast<std::uint64_t>(config_.params.k));
  cfg["q"] = Json(static_cast<std::uint64_t>(config_.params.q));
  cfg["table_seed"] = Json(config_.params.seed);
  cfg["seed"] = Json(config_.seed);
  cfg["probe_period"] = Json(config_.probe_period);
  cfg["ack_timeout"] = Json(config_.ack_timeout);
  // Gossip mode extends the echo (and the per-node suspicion rows below);
  // probe-only snapshots keep the legacy byte layout exactly.
  if (liveness_.gossip_enabled()) {
    cfg["liveness_mode"] = Json(std::uint64_t{1});
    cfg["digest_budget"] = Json(static_cast<std::uint64_t>(liveness_.config().digest_budget));
    cfg["digest_horizon"] = Json(liveness_.config().digest_horizon);
  }
  out["config"] = std::move(cfg);

  Json rng = Json::array();
  for (const auto word : rng_.state()) rng.push(Json(word));
  out["rng"] = std::move(rng);
  out["next_qid"] = Json(next_qid_);
  out["next_rid"] = Json(next_rid_);

  Json nodes = Json::array();
  for (std::size_t idx = 0; idx < nodes_.size(); ++idx) {
    const Node& node = nodes_[idx];
    Json n = Json::object();
    n["alive"] = Json(static_cast<std::uint64_t>(node.alive ? 1 : 0));
    n["cw_succ"] = Json(static_cast<std::uint64_t>(node.cw_succ));
    n["ccw"] = Json(static_cast<std::uint64_t>(node.ccw));
    n["ccw_suspected"] = Json(static_cast<std::uint64_t>(node.ccw_suspected ? 1 : 0));
    n["awaiting_claim"] = Json(static_cast<std::uint64_t>(node.awaiting_claim ? 1 : 0));
    n["cw_miss"] = Json(static_cast<std::uint64_t>(node.cw_miss_count));
    n["ccw_miss"] = Json(static_cast<std::uint64_t>(node.ccw_miss_count));
    n["awaiting_check_event"] = Json(node.awaiting_check_event);
    n["refresh_cursor"] = Json(static_cast<std::uint64_t>(node.refresh_cursor));
    // Suspicion rows, ascending peer: bare peers in probe-only mode (the
    // legacy set serialization), [peer, since, source] triples under gossip
    // so a restored run re-ages and re-broadcasts rumors identically.
    Json suspected = Json::array();
    const auto observer = static_cast<liveness::NodeId>(idx);
    if (liveness_.gossip_enabled()) {
      liveness_.for_each_observer(observer,
                                  [&suspected](liveness::NodeId peer,
                                               const liveness::Entry& entry) {
        Json row = Json::array();
        row.push(Json(static_cast<std::uint64_t>(peer)));
        row.push(Json(entry.since));
        row.push(Json(static_cast<std::uint64_t>(entry.source)));
        suspected.push(std::move(row));
      });
    } else {
      liveness_.for_each_observer(observer,
                                  [&suspected](liveness::NodeId peer,
                                               const liveness::Entry&) {
        suspected.push(Json(static_cast<std::uint64_t>(peer)));
      });
    }
    n["suspected"] = std::move(suspected);
    // Table: entries as [sibling, nephews...] rows in stored (distance)
    // order; ccw pointer as a 0/1-element array (optional).
    Json entries = Json::array();
    for (const auto& entry : node.table.entries()) {
      Json row = Json::array();
      row.push(Json(static_cast<std::uint64_t>(entry.sibling)));
      for (const auto nephew : entry.nephews) {
        row.push(Json(static_cast<std::uint64_t>(nephew)));
      }
      entries.push(std::move(row));
    }
    Json table = Json::object();
    table["entries"] = std::move(entries);
    Json ccw_ptr = Json::array();
    if (node.table.ccw_neighbor().has_value()) {
      ccw_ptr.push(Json(static_cast<std::uint64_t>(*node.table.ccw_neighbor())));
    }
    table["ccw_neighbor"] = std::move(ccw_ptr);
    n["table"] = std::move(table);
    nodes.push(std::move(n));
  }
  out["nodes"] = std::move(nodes);

  Json queries = Json::array();
  for (const auto& [qid, outcome] : queries_) {
    Json row = Json::array();
    row.push(Json(qid));
    row.push(Json(static_cast<std::uint64_t>(outcome.done ? 1 : 0)));
    row.push(Json(static_cast<std::uint64_t>(outcome.delivered ? 1 : 0)));
    row.push(Json(static_cast<std::uint64_t>(outcome.hops)));
    row.push(Json(outcome.completed_at));
    queries.push(std::move(row));
  }
  out["queries"] = std::move(queries);

  out["registry"] = snapshot::registry_to_json(registry_);
  out["transport"] = std::move(transport);
  return out;
}

std::string RingSimulation::restore_state(const snapshot::Json& state) {
  using snapshot::Json;
  const auto u64_field = [&state](const char* key, std::uint64_t& out) {
    const Json* v = state.find(key);
    if (v == nullptr || !v->is_u64()) return false;
    out = v->as_u64();
    return true;
  };

  const Json* cfg = state.find("config");
  if (cfg == nullptr || !cfg->is_object()) return "ring.config missing";
  const auto cfg_is = [cfg](const char* key, std::uint64_t expect) {
    const Json* v = cfg->find(key);
    return v != nullptr && v->is_u64() && v->as_u64() == expect;
  };
  if (!cfg_is("size", config_.size) ||
      !cfg_is("design", static_cast<std::uint64_t>(config_.params.design)) ||
      !cfg_is("k", config_.params.k) || !cfg_is("q", config_.params.q) ||
      !cfg_is("table_seed", config_.params.seed) || !cfg_is("seed", config_.seed) ||
      !cfg_is("probe_period", config_.probe_period) ||
      !cfg_is("ack_timeout", config_.ack_timeout)) {
    return "ring.config does not match this simulation's configuration";
  }
  if (liveness_.gossip_enabled() &&
      (!cfg_is("liveness_mode", 1) ||
       !cfg_is("digest_budget", liveness_.config().digest_budget) ||
       !cfg_is("digest_horizon", liveness_.config().digest_horizon))) {
    return "ring.config liveness settings do not match this simulation's configuration";
  }

  const Json* rng = state.find("rng");
  if (rng == nullptr || !rng->is_array() || rng->items().size() != 4) {
    return "ring.rng missing or malformed";
  }
  const Json* nodes = state.find("nodes");
  if (nodes == nullptr || !nodes->is_array() || nodes->items().size() != nodes_.size()) {
    return "ring.nodes missing or wrong node count";
  }
  const Json* queries = state.find("queries");
  if (queries == nullptr || !queries->is_array()) return "ring.queries missing";
  const Json* registry = state.find("registry");
  if (registry == nullptr) return "ring.registry missing";
  const Json* transport = state.find("transport");
  if (transport == nullptr) return "ring.transport missing";
  if (!u64_field("next_qid", next_qid_)) return "ring.next_qid missing";
  if (!u64_field("next_rid", next_rid_)) return "ring.next_rid missing";

  rng::Xoshiro256::State words{};
  for (std::size_t i = 0; i < 4; ++i) words[i] = rng->items()[i].as_u64();
  rng_.set_state(words);

  liveness_.clear_all();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Json& n = nodes->items()[i];
    if (!n.is_object()) return "ring.nodes entry malformed";
    Node& node = nodes_[i];
    const auto get = [&n](const char* key) -> const Json* {
      const Json* v = n.find(key);
      return (v != nullptr && v->is_u64()) ? v : nullptr;
    };
    const Json* alive = get("alive");
    const Json* cw_succ = get("cw_succ");
    const Json* ccw = get("ccw");
    const Json* ccw_suspected = get("ccw_suspected");
    const Json* awaiting_claim = get("awaiting_claim");
    const Json* cw_miss = get("cw_miss");
    const Json* ccw_miss = get("ccw_miss");
    const Json* check_event = get("awaiting_check_event");
    const Json* refresh_cursor = get("refresh_cursor");
    const Json* suspected = n.find("suspected");
    const Json* table = n.find("table");
    if (alive == nullptr || cw_succ == nullptr || ccw == nullptr ||
        ccw_suspected == nullptr || awaiting_claim == nullptr || cw_miss == nullptr ||
        ccw_miss == nullptr || check_event == nullptr || refresh_cursor == nullptr ||
        suspected == nullptr || !suspected->is_array() || table == nullptr ||
        !table->is_object()) {
      return "ring.nodes entry malformed";
    }
    if (cw_succ->as_u64() >= config_.size || ccw->as_u64() >= config_.size) {
      return "ring.nodes pointer out of range";
    }
    node.alive = alive->as_u64() != 0;
    node.cw_succ = static_cast<ids::RingIndex>(cw_succ->as_u64());
    node.ccw = static_cast<ids::RingIndex>(ccw->as_u64());
    node.ccw_suspected = ccw_suspected->as_u64() != 0;
    node.awaiting_claim = awaiting_claim->as_u64() != 0;
    node.cw_miss_count = static_cast<std::uint32_t>(cw_miss->as_u64());
    node.ccw_miss_count = static_cast<std::uint32_t>(ccw_miss->as_u64());
    node.awaiting_check_event = check_event->as_u64();
    node.refresh_cursor = static_cast<ids::RingIndex>(refresh_cursor->as_u64());
    const auto observer = static_cast<liveness::NodeId>(i);
    if (liveness_.gossip_enabled()) {
      for (const auto& row : suspected->items()) {
        if (!row.is_array() || row.items().size() != 3) {
          return "ring.nodes suspected row malformed";
        }
        const auto& f = row.items();
        if (!f[0].is_u64() || f[0].as_u64() >= config_.size || !f[1].is_u64() ||
            !f[2].is_u64() || f[2].as_u64() > 1) {
          return "ring.nodes suspected row malformed";
        }
        liveness_.restore_row(observer, static_cast<liveness::NodeId>(f[0].as_u64()),
                              liveness::Entry{liveness::kNeverExpires, f[1].as_u64(),
                                              static_cast<liveness::Source>(f[2].as_u64())});
      }
    } else {
      for (const auto& peer : suspected->items()) {
        if (!peer.is_u64() || peer.as_u64() >= config_.size) {
          return "ring.nodes suspected peer malformed";
        }
        liveness_.restore_row(observer, static_cast<liveness::NodeId>(peer.as_u64()),
                              liveness::Entry{});
      }
    }
    const Json* entries = table->find("entries");
    const Json* ccw_ptr = table->find("ccw_neighbor");
    if (entries == nullptr || !entries->is_array() || ccw_ptr == nullptr ||
        !ccw_ptr->is_array() || ccw_ptr->items().size() > 1) {
      return "ring.nodes table malformed";
    }
    overlay::RoutingTable rebuilt{static_cast<ids::RingIndex>(i), config_.size};
    for (const auto& raw : entries->items()) {
      if (!raw.is_array() || raw.items().empty()) return "ring.nodes table row malformed";
      overlay::TableEntry entry;
      for (std::size_t f = 0; f < raw.items().size(); ++f) {
        const Json& v = raw.items()[f];
        if (!v.is_u64() || v.as_u64() >= config_.size) {
          return "ring.nodes table row malformed";
        }
        if (f == 0) {
          entry.sibling = static_cast<ids::RingIndex>(v.as_u64());
        } else {
          entry.nephews.push_back(static_cast<ids::RingIndex>(v.as_u64()));
        }
      }
      rebuilt.add_entry(std::move(entry));
    }
    if (!ccw_ptr->items().empty()) {
      const Json& v = ccw_ptr->items()[0];
      if (!v.is_u64() || v.as_u64() >= config_.size) return "ring.nodes table malformed";
      rebuilt.set_ccw_neighbor(static_cast<ids::RingIndex>(v.as_u64()));
    }
    node.table = std::move(rebuilt);
  }

  queries_.clear();
  for (const auto& raw : queries->items()) {
    if (!raw.is_array() || raw.items().size() != 5) return "ring.queries entry malformed";
    const auto& f = raw.items();
    for (const auto& v : f) {
      if (!v.is_u64()) return "ring.queries entry malformed";
    }
    QueryOutcome outcome;
    outcome.done = f[1].as_u64() != 0;
    outcome.delivered = f[2].as_u64() != 0;
    outcome.hops = static_cast<std::uint32_t>(f[3].as_u64());
    outcome.completed_at = f[4].as_u64();
    queries_.emplace(f[0].as_u64(), outcome);
  }

  if (std::string err = snapshot::registry_from_json(registry_, *registry); !err.empty()) {
    return "ring.registry: " + err;
  }
  if (std::string err = transport_.restore_state(*transport); !err.empty()) {
    return "ring.transport: " + err;
  }
  return "";
}

std::function<void()> RingSimulation::rebuild_event(const snapshot::Described& desc) {
  if (desc.kind >= 0x100 && desc.kind < 0x200) return transport_.rebuild_event(desc);
  if (desc.kind >= 0x200 && desc.kind < 0x300) {
    const snapshot::Described copy = desc;
    return [this, copy] { run_continuation(copy); };
  }
  return nullptr;
}

}  // namespace hours::sim
