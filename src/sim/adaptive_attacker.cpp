#include "sim/adaptive_attacker.hpp"

#include <algorithm>

#include "ids/ring.hpp"
#include "sim/ring_protocol.hpp"
#include "util/contracts.hpp"

namespace hours::sim {

AdaptiveAttacker::AdaptiveAttacker(RingSimulation& ring, AdaptiveAttackerConfig config)
    : ring_(ring), config_(config) {
  HOURS_EXPECTS(config_.neighborhood >= 1);
  HOURS_EXPECTS(config_.strike_duration > 0);
}

void AdaptiveAttacker::on_event(const trace::Event& event) {
  if (event.type != trace::EventType::kRecoveryAdopt) return;
  ++adoptions_seen_;
  if (strikes_ >= config_.max_strikes) return;

  auto& sim = ring_.simulator();
  if (launched_any_ && sim.now() < last_launch_at_ + config_.cooldown) return;

  const std::uint32_t size = ring_.config().size;
  if (event.node >= size) return;  // not a ring adoption event

  // The repaired neighborhood: the adopter, the originator it adopted, then
  // the adopter's clockwise successors until the strike set is full.
  std::vector<std::uint32_t> targets{event.node};
  auto push = [&targets](std::uint32_t n) {
    if (std::find(targets.begin(), targets.end(), n) == targets.end()) {
      targets.push_back(n);
    }
  };
  if (event.peer < size) push(event.peer);
  for (std::uint32_t step = 1;
       targets.size() < config_.neighborhood && step < size; ++step) {
    push(ids::clockwise_step(event.node, step, size));
  }

  ++strikes_;
  launched_any_ = true;
  last_launch_at_ = sim.now();
  strike_sets_.push_back(targets);

  // Strike after the reaction delay; never synchronously from inside the
  // protocol handler that emitted the event.
  sim.schedule(config_.reaction_delay, [this, targets = std::move(targets)] {
    std::vector<std::uint32_t> downed;
    for (const auto node : targets) {
      if (ring_.alive(node)) {
        ring_.kill(node);
        downed.push_back(node);
      }
    }
    ring_.simulator().schedule(config_.strike_duration, [this, downed = std::move(downed)] {
      for (const auto node : downed) ring_.revive(node);
    });
  });
}

}  // namespace hours::sim
