// Message transport for event-driven protocol simulations.
//
// Wraps the discrete-event Simulator with node-addressed messaging:
// randomized latency, optional message loss, delivery suppression to dead
// nodes, per-link reachability filtering (partitions), and an ack/timeout
// primitive (every non-ack message is acknowledged by the transport before
// the recipient's handler runs, so protocol code expresses "try, and on
// silence do X" directly).
//
// Delivery-time gates, in order: the recipient must be alive, it must not
// have died (even transiently) while the message was in flight, and the
// directed link from the sender must be passable under the installed
// LinkFilter. A failed gate is silence — for acked sends the sender's
// timeout fires, indistinguishable from a crashed peer, which is exactly
// how a severed link or mid-flight restart looks from the outside.
//
// Snapshot integration: with a payload codec installed (set_snapshot_codec)
// every in-flight message is scheduled in described-ONLY form — (kind,
// words) copied into a reused slab slot, no per-message allocation — and
// dispatched through run_described(), which decodes at execution time. The
// owning simulation's runner must route transport kinds (0x100 range) back
// to run_described(); snapshot restore rebuilds the same call, so the live
// and restored paths execute identical code. Ack/timeout callbacks come in
// two forms: the continuation overload of send_expect_ack() takes
// snapshot::Described pairs dispatched through the installed continuation
// runner (serializable), while the legacy closure overload marks its
// pending entry opaque — it works, but blocks snapshot save while
// outstanding.
//
// Header-only template: the payload type is supplied by the protocol.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "rng/xoshiro256.hpp"
#include "sim/simulator.hpp"
#include "snapshot/event_kinds.hpp"
#include "snapshot/json.hpp"
#include "trace/sink.hpp"
#include "util/contracts.hpp"

namespace hours::sim {

/// Directed reachability predicate: returns true when messages from `from`
/// can currently reach `to`. Null means full connectivity. Consulted at
/// delivery time, so a link severed while a message is in flight drops it.
using LinkFilter = std::function<bool(std::uint32_t from, std::uint32_t to)>;

struct TransportConfig {
  Ticks latency_min = 10;
  Ticks latency_max = 50;
  Ticks ack_timeout = 250;  ///< must exceed 2 * latency_max (+ loss retries)
  double loss_probability = 0.0;  ///< each transmission dropped i.i.d.
};

template <typename Payload>
class Transport {
 public:
  using Address = std::uint32_t;

  struct Envelope {
    Address from = 0;
    std::uint64_t token = 0;
    Payload payload{};
  };

  /// Invoked for every delivered (non-ack) message at the recipient.
  using Handler = std::function<void(Address to, const Envelope&)>;

  /// Payload <-> u64-word bridges enabling described (snapshottable)
  /// deliveries. encode appends the payload's words to `out` (append form,
  /// so the transport can reuse one scratch buffer across transmissions);
  /// decode must invert exactly what encode appended.
  using Encode = std::function<void(const Payload&, std::vector<std::uint64_t>& out)>;
  using Decode = std::function<Payload(const std::uint64_t* words, std::size_t count)>;

  Transport(Simulator& sim, TransportConfig config, std::uint32_t node_count,
            std::uint64_t seed)
      : sim_(sim),
        config_(config),
        alive_(node_count, 1),
        incarnation_(node_count, 0),
        rng_(seed) {
    HOURS_EXPECTS(config_.ack_timeout > 2 * config_.latency_max);
    HOURS_EXPECTS(config_.loss_probability >= 0.0 && config_.loss_probability < 1.0);
  }

  void set_handler(Handler handler) { handler_ = std::move(handler); }

  /// Installs the payload codec; from here on every transmission is
  /// scheduled in described form.
  void set_snapshot_codec(Encode encode, Decode decode) {
    encode_ = std::move(encode);
    decode_ = std::move(decode);
  }

  /// Installs the dispatcher for continuation-form ack/timeout callbacks
  /// (the owning protocol's run_continuation).
  void set_continuation_runner(std::function<void(const snapshot::Described&)> runner) {
    runner_ = std::move(runner);
  }

  /// Appends the digest words a sender piggybacks on a message to `to`
  /// (liveness gossip; may append nothing). Consulted on every successful
  /// transmission, acks included.
  using DigestBuilder =
      std::function<void(Address from, Address to, std::vector<std::uint64_t>& out)>;
  /// Consumes a received digest at the recipient, after the delivery gates
  /// (alive, incarnation, link) pass.
  using DigestApplier = std::function<void(Address to, Address from,
                                           const std::uint64_t* words, std::size_t count)>;

  /// Installs the piggyback seam. Requires the snapshot codec (digests ride
  /// the described wire form as a trailing [words..., count] frame appended
  /// after the payload). Install both hooks before any traffic is sent and
  /// never change them mid-run: the trailing frame is present on the wire
  /// exactly when the hooks are installed, so flipping them with messages
  /// in flight would misparse those messages. With no hooks installed the
  /// wire format is byte-identical to the pre-digest transport.
  void set_digest_hooks(DigestBuilder build, DigestApplier apply) {
    HOURS_EXPECTS(encode_ != nullptr && decode_ != nullptr);
    HOURS_EXPECTS(messages_sent_ == 0);
    digest_build_ = std::move(build);
    digest_apply_ = std::move(apply);
  }

  void set_alive(Address node, bool alive) {
    HOURS_EXPECTS(node < alive_.size());
    // A death — even one followed by a revival before a message lands —
    // voids everything in flight toward the node: the restarted process has
    // no connection state to receive into. Revivals do not bump, so traffic
    // sent while down is deliverable once the node is back.
    if (alive_[node] != 0 && !alive) ++incarnation_[node];
    alive_[node] = alive ? 1 : 0;
  }
  [[nodiscard]] bool alive(Address node) const {
    HOURS_EXPECTS(node < alive_.size());
    return alive_[node] != 0;
  }

  /// Adjusts the loss rate at run time (lossy-link fault episodes). Applies
  /// to transmissions from the next send on; in-flight messages keep the
  /// fate they were already assigned.
  void set_loss_probability(double p) {
    HOURS_EXPECTS(p >= 0.0 && p < 1.0);
    config_.loss_probability = p;
  }
  [[nodiscard]] double loss_probability() const noexcept { return config_.loss_probability; }

  /// Installs (or, with null, clears) the per-link reachability predicate.
  /// The filter must stay valid while any message can still be delivered.
  void set_link_filter(LinkFilter filter) { link_filter_ = std::move(filter); }

  /// Attaches (or, with null, detaches) the trace stream; every suppressed
  /// delivery emits a kDrop event with the DropReason in `value`. The
  /// tracer must outlive in-flight messages.
  void set_tracer(trace::Tracer* tracer) { trace_ = tracer; }

  [[nodiscard]] bool link_passable(Address from, Address to) const {
    return !link_filter_ || link_filter_(from, to);
  }

  [[nodiscard]] std::uint64_t messages_sent() const noexcept { return messages_sent_; }
  [[nodiscard]] std::uint64_t messages_lost() const noexcept { return messages_lost_; }
  /// Deliveries suppressed by the link filter (severed-link drops).
  [[nodiscard]] std::uint64_t messages_link_dropped() const noexcept {
    return messages_link_dropped_;
  }

  /// Fire-and-forget.
  void post(Address from, Address to, Payload payload) {
    Envelope env;
    env.from = from;
    env.payload = std::move(payload);
    transmit(to, std::move(env), /*is_ack=*/false);
  }

  /// Sends and expects a transport-level ack; legacy closure form. Exactly
  /// one of on_ack / on_timeout fires (either may be null). The pending
  /// entry is opaque: it blocks snapshot save while outstanding.
  void send_expect_ack(Address from, Address to, Payload payload,
                       std::function<void()> on_ack, std::function<void()> on_timeout) {
    Pending pending;
    pending.opaque = true;
    pending.on_ack_fn = std::move(on_ack);
    pending.on_timeout_fn = std::move(on_timeout);
    start_pending(from, to, std::move(payload), std::move(pending));
  }

  /// Continuation form: callbacks as described continuations dispatched
  /// through the installed runner (kind 0 = no-op). Fully snapshottable.
  void send_expect_ack(Address from, Address to, Payload payload, snapshot::Described on_ack,
                       snapshot::Described on_timeout) {
    HOURS_EXPECTS(runner_ != nullptr);
    Pending pending;
    pending.ack_cont = std::move(on_ack);
    pending.timeout_cont = std::move(on_timeout);
    start_pending(from, to, std::move(payload), std::move(pending));
  }

  // -- snapshot support ---------------------------------------------------------
  /// Serializes transport state (liveness, incarnations, RNG, counters,
  /// pending ack table). Fails — filling `error` — while a closure-form
  /// pending entry is outstanding.
  [[nodiscard]] snapshot::Json save_state(std::string& error) const {
    using snapshot::Json;
    for (const auto& [token, pending] : pending_) {
      if (pending.opaque) {
        error = "pending ack token " + std::to_string(token) +
                " uses closure callbacks (unserializable)";
        return Json::object();
      }
    }
    Json out = Json::object();
    out["loss_probability"] = Json(snapshot::bits_from_double(config_.loss_probability));
    Json alive = Json::array();
    for (const auto a : alive_) alive.push(Json(static_cast<std::uint64_t>(a)));
    out["alive"] = std::move(alive);
    Json incarnation = Json::array();
    for (const auto i : incarnation_) incarnation.push(Json(static_cast<std::uint64_t>(i)));
    out["incarnation"] = std::move(incarnation);
    Json rng = Json::array();
    for (const auto word : rng_.state()) rng.push(Json(word));
    out["rng"] = std::move(rng);
    out["next_token"] = Json(next_token_);
    out["messages_sent"] = Json(messages_sent_);
    out["messages_lost"] = Json(messages_lost_);
    out["messages_link_dropped"] = Json(messages_link_dropped_);
    Json pendings = Json::array();
    for (const auto& [token, pending] : pending_) {
      Json entry = Json::array();
      entry.push(Json(token));
      entry.push(Json(pending.timeout_event));
      entry.push(Json(static_cast<std::uint64_t>(pending.ack_cont.kind)));
      entry.push(Json(static_cast<std::uint64_t>(pending.ack_cont.args.size())));
      for (const auto a : pending.ack_cont.args) entry.push(Json(a));
      entry.push(Json(static_cast<std::uint64_t>(pending.timeout_cont.kind)));
      for (const auto a : pending.timeout_cont.args) entry.push(Json(a));
      pendings.push(std::move(entry));
    }
    out["pending"] = std::move(pendings);
    return out;
  }

  /// Restores state saved by save_state(). Does NOT schedule anything —
  /// queued deliveries and timeouts are restored through the simulator's
  /// event list. Returns "" on success.
  [[nodiscard]] std::string restore_state(const snapshot::Json& state) {
    const auto* alive = state.find("alive");
    const auto* incarnation = state.find("incarnation");
    const auto* rng = state.find("rng");
    const auto* pending = state.find("pending");
    const auto* loss = state.find("loss_probability");
    if (alive == nullptr || !alive->is_array() || alive->items().size() != alive_.size()) {
      return "transport.alive missing or wrong node count";
    }
    if (incarnation == nullptr || !incarnation->is_array() ||
        incarnation->items().size() != incarnation_.size()) {
      return "transport.incarnation missing or wrong node count";
    }
    if (rng == nullptr || !rng->is_array() || rng->items().size() != 4) {
      return "transport.rng missing or malformed";
    }
    if (pending == nullptr || !pending->is_array()) return "transport.pending missing";
    if (loss == nullptr || !loss->is_u64()) return "transport.loss_probability missing";
    for (std::size_t i = 0; i < alive_.size(); ++i) {
      alive_[i] = static_cast<std::uint8_t>(alive->items()[i].as_u64());
      incarnation_[i] = static_cast<std::uint32_t>(incarnation->items()[i].as_u64());
    }
    rng::Xoshiro256::State words{};
    for (std::size_t i = 0; i < 4; ++i) words[i] = rng->items()[i].as_u64();
    rng_.set_state(words);
    config_.loss_probability = snapshot::double_from_bits(loss->as_u64());
    next_token_ = state.find("next_token") != nullptr ? state.find("next_token")->as_u64() : 1;
    messages_sent_ =
        state.find("messages_sent") != nullptr ? state.find("messages_sent")->as_u64() : 0;
    messages_lost_ =
        state.find("messages_lost") != nullptr ? state.find("messages_lost")->as_u64() : 0;
    messages_link_dropped_ = state.find("messages_link_dropped") != nullptr
                                 ? state.find("messages_link_dropped")->as_u64()
                                 : 0;
    pending_.clear();
    for (const auto& raw : pending->items()) {
      if (!raw.is_array() || raw.items().size() < 5) return "transport.pending entry malformed";
      const auto& f = raw.items();
      std::size_t i = 0;
      const std::uint64_t token = f[i++].as_u64();
      Pending entry;
      entry.timeout_event = f[i++].as_u64();
      entry.ack_cont.kind = static_cast<std::uint32_t>(f[i++].as_u64());
      const std::uint64_t ack_args = f[i++].as_u64();
      if (i + ack_args + 1 > f.size()) return "transport.pending entry truncated";
      for (std::uint64_t a = 0; a < ack_args; ++a) entry.ack_cont.args.push_back(f[i++].as_u64());
      entry.timeout_cont.kind = static_cast<std::uint32_t>(f[i++].as_u64());
      for (; i < f.size(); ++i) entry.timeout_cont.args.push_back(f[i].as_u64());
      pending_.emplace(token, std::move(entry));
    }
    return "";
  }

  /// Executes one transport-owned described event: decodes a delivery at
  /// execution time or fires an ack timeout. This is the hot-path
  /// dispatcher — the owning simulation's runner routes transport kinds
  /// here, and snapshot-restored events call it through rebuild_event().
  void run_described(std::uint32_t kind, const std::uint64_t* args, std::size_t count) {
    if (kind == snapshot::kTransportAckTimeout) {
      HOURS_EXPECTS(count == 1);
      handle_ack_timeout(args[0]);
      return;
    }
    HOURS_EXPECTS(kind == snapshot::kTransportDelivery);
    HOURS_EXPECTS(decode_ != nullptr);
    HOURS_EXPECTS(count >= 5);
    const Address to = static_cast<Address>(args[0]);
    Envelope env;
    env.from = static_cast<Address>(args[1]);
    env.token = args[2];
    const auto sent_incarnation = static_cast<std::uint32_t>(args[3]);
    const bool is_ack = args[4] != 0;
    std::size_t payload_words = count - 5;
    const std::uint64_t* digest = nullptr;
    std::size_t digest_words = 0;
    if (digest_build_ || digest_apply_) {
      // Hooks installed: the tail is [payload..., digest..., digest_len].
      HOURS_EXPECTS(count >= 6);
      digest_words = static_cast<std::size_t>(args[count - 1]);
      HOURS_EXPECTS(digest_words + 6 <= count);
      payload_words = count - 6 - digest_words;
      digest = args + 5 + payload_words;
    }
    env.payload = decode_(args + 5, payload_words);
    deliver(to, std::move(env), sent_incarnation, is_ack, digest, digest_words);
  }

  /// Rebuilds the closure for a transport-owned described event; null when
  /// the kind is not the transport's.
  [[nodiscard]] Simulator::Action rebuild_event(const snapshot::Described& desc) {
    if (desc.kind != snapshot::kTransportDelivery &&
        desc.kind != snapshot::kTransportAckTimeout) {
      return nullptr;
    }
    return [this, desc] { run_described(desc.kind, desc.args.data(), desc.args.size()); };
  }

 private:
  struct Pending {
    bool opaque = false;
    std::function<void()> on_ack_fn;
    std::function<void()> on_timeout_fn;
    snapshot::Described ack_cont;
    snapshot::Described timeout_cont;
    std::uint64_t timeout_event = 0;
  };

  void start_pending(Address from, Address to, Payload payload, Pending pending) {
    const std::uint64_t token = next_token_++;
    Envelope env;
    env.from = from;
    env.token = token;
    env.payload = std::move(payload);
    transmit(to, std::move(env), /*is_ack=*/false);

    if (pending.opaque) {
      pending.timeout_event =
          sim_.schedule(config_.ack_timeout, [this, token] { handle_ack_timeout(token); });
    } else if (encode_) {
      // Codec installed implies the owning sim routes transport kinds to
      // run_described(): the timeout rides the described-only hot path.
      pending.timeout_event =
          sim_.schedule(config_.ack_timeout, snapshot::kTransportAckTimeout, &token, 1);
    } else {
      pending.timeout_event = sim_.schedule(
          config_.ack_timeout,
          snapshot::Described{snapshot::kTransportAckTimeout, {token}},
          [this, token] { handle_ack_timeout(token); });
    }
    pending_.emplace(token, std::move(pending));
  }

  void handle_ack_timeout(std::uint64_t token) {
    const auto it = pending_.find(token);
    if (it == pending_.end()) return;
    Pending pending = std::move(it->second);
    pending_.erase(it);
    if (pending.opaque) {
      if (pending.on_timeout_fn) pending.on_timeout_fn();
    } else if (pending.timeout_cont.kind != snapshot::kOpaque) {
      runner_(pending.timeout_cont);
    }
  }

  [[nodiscard]] Ticks draw_latency() {
    return config_.latency_min + rng_.below(config_.latency_max - config_.latency_min + 1);
  }

  void drop(Address to, Address from, trace::DropReason reason) {
    HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                              .type = trace::EventType::kDrop,
                              .node = to,
                              .peer = from,
                              .value = static_cast<std::uint64_t>(reason)});
  }

  /// Executes one delivery: the common body behind the live closure and the
  /// snapshot-restored closure.
  void deliver(Address to, Envelope env, std::uint32_t sent_incarnation, bool is_ack,
               const std::uint64_t* digest = nullptr, std::size_t digest_words = 0) {
    if (!alive(to)) {  // shut-down servers receive nothing
      drop(to, env.from, trace::DropReason::kDeadRecipient);
      return;
    }
    // Recipient died mid-flight (possibly reviving since): suppressed.
    if (incarnation_[to] != sent_incarnation) {
      drop(to, env.from, trace::DropReason::kMidFlightDeath);
      return;
    }
    if (!link_passable(env.from, to)) {  // severed link: silence, not loss
      ++messages_link_dropped_;
      drop(to, env.from, trace::DropReason::kSeveredLink);
      return;
    }
    // Any message that passed the gates carries its sender's suspicion
    // digest — evidence spreads on acks and forwarding traffic alike.
    if (digest_apply_ && digest_words != 0) {
      digest_apply_(to, env.from, digest, digest_words);
    }
    if (is_ack) {
      const auto it = pending_.find(env.token);
      if (it == pending_.end()) return;  // raced with its own timeout
      sim_.cancel(it->second.timeout_event);
      Pending pending = std::move(it->second);
      pending_.erase(it);
      if (pending.opaque) {
        if (pending.on_ack_fn) pending.on_ack_fn();
      } else if (pending.ack_cont.kind != snapshot::kOpaque) {
        runner_(pending.ack_cont);
      }
      return;
    }
    if (env.token != 0) {
      Envelope ack;
      ack.from = to;
      ack.token = env.token;
      transmit(env.from, std::move(ack), /*is_ack=*/true);
    }
    if (handler_) handler_(to, env);
  }

  void transmit(Address to, Envelope env, bool is_ack) {
    ++messages_sent_;
    if (config_.loss_probability > 0.0 && rng_.bernoulli(config_.loss_probability)) {
      ++messages_lost_;
      drop(to, env.from, trace::DropReason::kLoss);
      return;
    }
    const std::uint32_t sent_incarnation = incarnation_[to];
    const Ticks latency = draw_latency();
    if (encode_) {
      // Described-only hot path: header + payload words into the reused
      // scratch buffer, copied by the simulator into a reused slab slot.
      // Decode happens at execution time in run_described().
      scratch_args_.clear();
      scratch_args_.push_back(to);
      scratch_args_.push_back(env.from);
      scratch_args_.push_back(env.token);
      scratch_args_.push_back(sent_incarnation);
      scratch_args_.push_back(is_ack ? 1 : 0);
      encode_(env.payload, scratch_args_);
      if (digest_build_ || digest_apply_) {
        const std::size_t base = scratch_args_.size();
        if (digest_build_) digest_build_(env.from, to, scratch_args_);
        scratch_args_.push_back(scratch_args_.size() - base);
      }
      sim_.schedule(latency, snapshot::kTransportDelivery, scratch_args_.data(),
                    scratch_args_.size());
      return;
    }
    sim_.schedule(latency, [this, to, sent_incarnation, env = std::move(env), is_ack]() mutable {
      deliver(to, std::move(env), sent_incarnation, is_ack);
    });
  }

  Simulator& sim_;
  TransportConfig config_;
  std::vector<std::uint8_t> alive_;
  std::vector<std::uint32_t> incarnation_;  ///< bumped on each alive->dead flip
  rng::Xoshiro256 rng_;
  Handler handler_;
  Encode encode_;
  Decode decode_;
  DigestBuilder digest_build_;
  DigestApplier digest_apply_;
  std::function<void(const snapshot::Described&)> runner_;
  LinkFilter link_filter_;
  trace::Tracer* trace_ = nullptr;
  std::uint64_t next_token_ = 1;
  std::vector<std::uint64_t> scratch_args_;  ///< reused per-transmit encode buffer
  std::map<std::uint64_t, Pending> pending_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_lost_ = 0;
  std::uint64_t messages_link_dropped_ = 0;
};

}  // namespace hours::sim
