// Message transport for event-driven protocol simulations.
//
// Wraps the discrete-event Simulator with node-addressed messaging:
// randomized latency, optional message loss, delivery suppression to dead
// nodes, per-link reachability filtering (partitions), and an ack/timeout
// primitive (every non-ack message is acknowledged by the transport before
// the recipient's handler runs, so protocol code expresses "try, and on
// silence do X" directly).
//
// Delivery-time gates, in order: the recipient must be alive, it must not
// have died (even transiently) while the message was in flight, and the
// directed link from the sender must be passable under the installed
// LinkFilter. A failed gate is silence — for acked sends the sender's
// timeout fires, indistinguishable from a crashed peer, which is exactly
// how a severed link or mid-flight restart looks from the outside.
//
// Header-only template: the payload type is supplied by the protocol.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "rng/xoshiro256.hpp"
#include "sim/simulator.hpp"
#include "trace/sink.hpp"
#include "util/contracts.hpp"

namespace hours::sim {

/// Directed reachability predicate: returns true when messages from `from`
/// can currently reach `to`. Null means full connectivity. Consulted at
/// delivery time, so a link severed while a message is in flight drops it.
using LinkFilter = std::function<bool(std::uint32_t from, std::uint32_t to)>;

struct TransportConfig {
  Ticks latency_min = 10;
  Ticks latency_max = 50;
  Ticks ack_timeout = 250;  ///< must exceed 2 * latency_max (+ loss retries)
  double loss_probability = 0.0;  ///< each transmission dropped i.i.d.
};

template <typename Payload>
class Transport {
 public:
  using Address = std::uint32_t;

  struct Envelope {
    Address from = 0;
    std::uint64_t token = 0;
    Payload payload{};
  };

  /// Invoked for every delivered (non-ack) message at the recipient.
  using Handler = std::function<void(Address to, const Envelope&)>;

  Transport(Simulator& sim, TransportConfig config, std::uint32_t node_count,
            std::uint64_t seed)
      : sim_(sim),
        config_(config),
        alive_(node_count, 1),
        incarnation_(node_count, 0),
        rng_(seed) {
    HOURS_EXPECTS(config_.ack_timeout > 2 * config_.latency_max);
    HOURS_EXPECTS(config_.loss_probability >= 0.0 && config_.loss_probability < 1.0);
  }

  void set_handler(Handler handler) { handler_ = std::move(handler); }

  void set_alive(Address node, bool alive) {
    HOURS_EXPECTS(node < alive_.size());
    // A death — even one followed by a revival before a message lands —
    // voids everything in flight toward the node: the restarted process has
    // no connection state to receive into. Revivals do not bump, so traffic
    // sent while down is deliverable once the node is back.
    if (alive_[node] != 0 && !alive) ++incarnation_[node];
    alive_[node] = alive ? 1 : 0;
  }
  [[nodiscard]] bool alive(Address node) const {
    HOURS_EXPECTS(node < alive_.size());
    return alive_[node] != 0;
  }

  /// Adjusts the loss rate at run time (lossy-link fault episodes). Applies
  /// to transmissions from the next send on; in-flight messages keep the
  /// fate they were already assigned.
  void set_loss_probability(double p) {
    HOURS_EXPECTS(p >= 0.0 && p < 1.0);
    config_.loss_probability = p;
  }
  [[nodiscard]] double loss_probability() const noexcept { return config_.loss_probability; }

  /// Installs (or, with null, clears) the per-link reachability predicate.
  /// The filter must stay valid while any message can still be delivered.
  void set_link_filter(LinkFilter filter) { link_filter_ = std::move(filter); }

  /// Attaches (or, with null, detaches) the trace stream; every suppressed
  /// delivery emits a kDrop event with the DropReason in `value`. The
  /// tracer must outlive in-flight messages.
  void set_tracer(trace::Tracer* tracer) { trace_ = tracer; }

  [[nodiscard]] bool link_passable(Address from, Address to) const {
    return !link_filter_ || link_filter_(from, to);
  }

  [[nodiscard]] std::uint64_t messages_sent() const noexcept { return messages_sent_; }
  [[nodiscard]] std::uint64_t messages_lost() const noexcept { return messages_lost_; }
  /// Deliveries suppressed by the link filter (severed-link drops).
  [[nodiscard]] std::uint64_t messages_link_dropped() const noexcept {
    return messages_link_dropped_;
  }

  /// Fire-and-forget.
  void post(Address from, Address to, Payload payload) {
    Envelope env;
    env.from = from;
    env.payload = std::move(payload);
    transmit(to, std::move(env), /*is_ack=*/false);
  }

  /// Sends and expects a transport-level ack. Exactly one of on_ack /
  /// on_timeout fires (either may be null).
  void send_expect_ack(Address from, Address to, Payload payload,
                       std::function<void()> on_ack, std::function<void()> on_timeout) {
    const std::uint64_t token = next_token_++;
    Envelope env;
    env.from = from;
    env.token = token;
    env.payload = std::move(payload);
    transmit(to, std::move(env), /*is_ack=*/false);

    Pending pending;
    pending.on_ack = std::move(on_ack);
    pending.timeout_event =
        sim_.schedule(config_.ack_timeout, [this, token, cb = std::move(on_timeout)] {
          const auto it = pending_.find(token);
          if (it == pending_.end()) return;
          pending_.erase(it);
          if (cb) cb();
        });
    pending_.emplace(token, std::move(pending));
  }

 private:
  struct Pending {
    std::function<void()> on_ack;
    std::uint64_t timeout_event = 0;
  };

  [[nodiscard]] Ticks draw_latency() {
    return config_.latency_min + rng_.below(config_.latency_max - config_.latency_min + 1);
  }

  void drop(Address to, Address from, trace::DropReason reason) {
    HOURS_TRACE_EMIT(trace_, {.at = sim_.now(),
                              .type = trace::EventType::kDrop,
                              .node = to,
                              .peer = from,
                              .value = static_cast<std::uint64_t>(reason)});
  }

  void transmit(Address to, Envelope env, bool is_ack) {
    ++messages_sent_;
    if (config_.loss_probability > 0.0 && rng_.bernoulli(config_.loss_probability)) {
      ++messages_lost_;
      drop(to, env.from, trace::DropReason::kLoss);
      return;
    }
    const std::uint32_t sent_incarnation = incarnation_[to];
    sim_.schedule(draw_latency(), [this, to, sent_incarnation, env = std::move(env), is_ack] {
      if (!alive(to)) {  // shut-down servers receive nothing
        drop(to, env.from, trace::DropReason::kDeadRecipient);
        return;
      }
      // Recipient died mid-flight (possibly reviving since): suppressed.
      if (incarnation_[to] != sent_incarnation) {
        drop(to, env.from, trace::DropReason::kMidFlightDeath);
        return;
      }
      if (!link_passable(env.from, to)) {  // severed link: silence, not loss
        ++messages_link_dropped_;
        drop(to, env.from, trace::DropReason::kSeveredLink);
        return;
      }
      if (is_ack) {
        const auto it = pending_.find(env.token);
        if (it == pending_.end()) return;  // raced with its own timeout
        sim_.cancel(it->second.timeout_event);
        auto on_ack = std::move(it->second.on_ack);
        pending_.erase(it);
        if (on_ack) on_ack();
        return;
      }
      if (env.token != 0) {
        Envelope ack;
        ack.from = to;
        ack.token = env.token;
        transmit(env.from, std::move(ack), /*is_ack=*/true);
      }
      if (handler_) handler_(to, env);
    });
  }

  Simulator& sim_;
  TransportConfig config_;
  std::vector<std::uint8_t> alive_;
  std::vector<std::uint32_t> incarnation_;  ///< bumped on each alive->dead flip
  rng::Xoshiro256 rng_;
  Handler handler_;
  LinkFilter link_filter_;
  trace::Tracer* trace_ = nullptr;
  std::uint64_t next_token_ = 1;
  std::map<std::uint64_t, Pending> pending_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_lost_ = 0;
  std::uint64_t messages_link_dropped_ = 0;
};

}  // namespace hours::sim
