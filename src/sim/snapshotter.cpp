#include "sim/snapshotter.hpp"

#include "snapshot/event_kinds.hpp"
#include "snapshot/snapshot.hpp"
#include "util/contracts.hpp"

namespace hours::sim {

void Snapshotter::add(snapshot::Participant& participant) {
  for (const auto* existing : participants_) {
    HOURS_EXPECTS(existing->section() != participant.section());
  }
  participants_.push_back(&participant);
}

std::string Snapshotter::save(snapshot::Json& doc) const {
  using snapshot::Json;

  // Opaque events have no wire form; refuse with the full id list so the
  // caller can see exactly which closures block the save.
  const auto opaque = sim_.opaque_event_ids();
  if (!opaque.empty()) {
    std::string ids;
    for (const auto id : opaque) {
      if (!ids.empty()) ids += ", ";
      ids += std::to_string(id);
    }
    return "cannot snapshot: opaque (closure-only) events queued, ids [" + ids + "]";
  }

  doc = snapshot::make_document();
  Json& sections = doc["sections"];

  Json sim = Json::object();
  sim["now"] = Json(sim_.now());
  sim["next_id"] = Json(sim_.next_id());
  Json events = Json::array();
  for (const auto& event : sim_.pending_events()) {
    Json row = Json::array();
    row.push(Json(event.at));
    row.push(Json(event.id));
    row.push(Json(static_cast<std::uint64_t>(event.desc.kind)));
    for (const auto arg : event.desc.args) row.push(Json(arg));
    events.push(std::move(row));
  }
  sim["events"] = std::move(events);
  sections["sim"] = std::move(sim);

  for (const auto* participant : participants_) {
    std::string error;
    Json state = participant->save_state(error);
    if (!error.empty()) return participant->section() + ": " + error;
    sections[participant->section()] = std::move(state);
  }
  return "";
}

std::string Snapshotter::save_string(std::string& out) const {
  snapshot::Json doc;
  if (std::string error = save(doc); !error.empty()) return error;
  out = doc.dump();
  return "";
}

std::string Snapshotter::save_file(const std::string& path) const {
  snapshot::Json doc;
  if (std::string error = save(doc); !error.empty()) return error;
  return snapshot::write_file(path, doc);
}

std::string Snapshotter::restore(const snapshot::Json& doc) {
  using snapshot::Json;
  if (std::string error = snapshot::validate_document(doc); !error.empty()) return error;

  const Json* sections = doc.find("sections");
  const Json* sim = sections->find("sim");
  if (sim == nullptr) return "snapshot has no sim section";
  const Json* now = sim->find("now");
  const Json* next_id = sim->find("next_id");
  const Json* events = sim->find("events");

  sim_.reset(now->as_u64(), next_id->as_u64());

  // Participant state first: event closures may capture (pointers into)
  // restored subsystem state, and a subsystem's restore must not observe a
  // half-populated queue.
  for (auto* participant : participants_) {
    const Json* state = sections->find(participant->section());
    if (state == nullptr) {
      return "snapshot has no section \"" + participant->section() + "\"";
    }
    if (std::string error = participant->restore_state(*state); !error.empty()) return error;
  }

  for (const auto& raw : events->items()) {
    const auto& fields = raw.items();
    snapshot::Described desc;
    desc.kind = static_cast<std::uint32_t>(fields[2].as_u64());
    for (std::size_t i = 3; i < fields.size(); ++i) desc.args.push_back(fields[i].as_u64());

    Simulator::Action action;
    for (auto* participant : participants_) {
      action = participant->rebuild_event(desc);
      if (action != nullptr) break;
    }
    if (action == nullptr) {
      return "no participant rebuilds event kind " +
             std::string(snapshot::event_kind_name(desc.kind)) + " (" +
             std::to_string(desc.kind) + ")";
    }
    sim_.restore_event(fields[0].as_u64(), fields[1].as_u64(), std::move(desc),
                       std::move(action));
  }
  return "";
}

std::string Snapshotter::restore_file(const std::string& path) {
  snapshot::Json doc;
  if (std::string error = snapshot::read_file(path, doc); !error.empty()) return error;
  return restore(doc);
}

}  // namespace hours::sim
