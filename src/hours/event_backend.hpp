// Message-level query engine behind the HoursSystem facade.
//
// EventBackend mirrors the admitted NamedHierarchy into a
// sim::HierarchySimulation (a TreeTopology snapshot with a stable
// name<->node-id mapping), drives each facade query through
// sim::QueryClient — retries with capped backoff, failover, TTL suspicion,
// end-to-end deadlines, all liveness inferred from silence — and accepts
// sim::FaultPlan schedules so resolver caching studies run against scripted
// churn instead of static oracle strikes. The backend clock is the
// simulator's, scaled by ticks_per_second, so Resolver TTLs, fault windows
// and query deadlines share one timeline.
//
// Semantics that differ from GraphBackend (see docs/PROTOCOL.md §7):
// queries cost simulated time and can time out; per-hop taxonomy counters
// (overlay vs hierarchical hops) are not decomposed at the client;
// record_path is not supported (custody is opaque to the client); mesh
// secondary parents are not materialized (primary tree only).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "hours/query_backend.hpp"
#include "sim/fault_injector.hpp"
#include "sim/hierarchy_protocol.hpp"
#include "sim/query_client.hpp"
#include "trace/registry.hpp"

namespace hours {

class HoursSystem;

/// QueryClient defaults leave the deadline unbounded; a facade-driven study
/// wants availability semantics, so the event backend bounds each query.
[[nodiscard]] inline sim::QueryClientConfig default_event_client_config() {
  sim::QueryClientConfig config;
  config.deadline = 8'000;
  return config;
}

struct EventBackendConfig {
  sim::TransportConfig transport;
  sim::QueryClientConfig client = default_event_client_config();
  /// Scale between simulator ticks and the facade's second-granularity
  /// clock (Resolver TTLs, advance()).
  sim::Ticks ticks_per_second = 1'000;
  /// In-network suspicion expiry (HierarchySimConfig::suspicion_ttl).
  sim::Ticks suspicion_ttl = liveness::kDefaultSuspicionTtl;
  /// Evidence-source selection forwarded to the mirrored simulation
  /// (HierarchySimConfig::liveness).
  liveness::Config liveness;
  bool assume_ring_repaired = true;
  std::uint64_t seed = 0x486965722dULL;
};

class EventBackend final : public QueryBackend {
 public:
  /// `clock_offset_seconds` seeds now() so a backend swap mid-run continues
  /// the previous backend's timeline instead of rewinding to zero.
  EventBackend(HoursSystem& system, EventBackendConfig config,
               std::uint64_t clock_offset_seconds = 0);

  [[nodiscard]] std::string_view kind() const noexcept override { return "event"; }
  [[nodiscard]] std::uint64_t now() const noexcept override;
  void advance(std::uint64_t seconds) override;

  [[nodiscard]] QueryResult execute(const naming::Name& dest, bool record_path) override;
  [[nodiscard]] QueryResult execute_from(const naming::Name& start, const naming::Name& dest,
                                         bool record_path) override;

  void on_set_alive(const naming::Name& name, bool alive) override;
  void on_membership_change() override;
  util::Result<std::size_t> schedule_faults(sim::FaultPlan plan) override;
  [[nodiscard]] std::uint64_t trace_stamp(std::uint64_t& op_clock) const override;
  void set_tracer(trace::Tracer* tracer) override;

  // -- introspection ----------------------------------------------------------
  /// The simulator node id an admitted name maps to, for building FaultPlans
  /// in simulator coordinates. Forces the topology snapshot to materialize.
  [[nodiscard]] std::optional<std::uint32_t> node_id(std::string_view name);

  /// Underlying engines; materialized lazily on first query/advance/node_id.
  [[nodiscard]] sim::HierarchySimulation* simulation() noexcept { return sim_.get(); }
  [[nodiscard]] sim::QueryClient* client() noexcept { return client_.get(); }

  /// Transitions applied so far, summed over every scheduled plan.
  [[nodiscard]] sim::FaultInjectorStats fault_stats() const;

  [[nodiscard]] const EventBackendConfig& config() const noexcept { return config_; }

  /// Every plan scheduled so far (re-armed on each topology rebuild), for
  /// facade snapshots.
  [[nodiscard]] const std::vector<sim::FaultPlan>& plans() const noexcept { return plans_; }

 private:
  /// Snapshots the NamedHierarchy into a fresh simulation: flat BFS
  /// topology (no paths or names materialized), oracle liveness mirrored as
  /// initial kills, stored fault plans re-armed at the (fresh) simulator's
  /// t=0. Name->id lookups resolve lazily through resolve_id().
  void ensure_built();

  /// The simulator node id `name` maps to (its primary path), or -1 when
  /// the name is not admitted. Memoized until the topology rebuilds.
  [[nodiscard]] std::int64_t resolve_id(const naming::Name& name);

  /// Runs the simulator one event at a time until `qid` settles, so events
  /// scheduled past the settlement instant (fault windows, other timers)
  /// stay pending for advance() instead of being executed early.
  void settle(std::uint64_t qid);

  [[nodiscard]] QueryResult run_client_query(std::uint32_t start_id, std::uint32_t dest_id,
                                             const naming::Name& dest, bool from_cache);

  HoursSystem& system_;
  EventBackendConfig config_;
  std::uint64_t offset_seconds_;
  trace::Tracer* trace_ = nullptr;
  trace::Counter cache_bootstrap_queries_;  // shares the facade's registry slot

  std::unique_ptr<sim::HierarchySimulation> sim_;
  std::unique_ptr<sim::QueryClient> client_;
  std::vector<std::unique_ptr<sim::FaultInjector>> injectors_;
  std::vector<sim::FaultPlan> plans_;  ///< everything scheduled, for re-arming
  /// Lazy name -> simulator-id memo (-1 = unresolvable); cleared whenever
  /// the topology snapshot rebuilds.
  std::map<std::string, std::int64_t, std::less<>> id_cache_;
};

}  // namespace hours
