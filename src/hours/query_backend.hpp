// The query-execution seam of the facade.
//
// HoursSystem owns the backend-agnostic naming core — admission control,
// records, attacks, the client bootstrap cache, trace/metrics bookkeeping —
// and delegates the actual execution of a query to a QueryBackend:
//
//   * GraphBackend (graph_backend.hpp): the instantaneous graph walk over
//     hierarchy::Router with oracle liveness — the original facade engine,
//     unchanged in behavior. Its clock is a logical counter advanced only
//     by advance().
//   * EventBackend (event_backend.hpp): a message-level run over
//     sim::HierarchySimulation driven hop by hop by sim::QueryClient
//     (retries, capped backoff, failover, deadlines), with liveness
//     inferred from silence and faults scripted by sim::FaultPlan. Its
//     clock is the simulator's, scaled to seconds.
//
// Both report QueryResult-shaped outcomes and expose one time source, so a
// Resolver's cache TTLs, a FaultPlan's churn windows, and the client's
// query deadlines share a single timeline regardless of the engine
// underneath. docs/PROTOCOL.md §7 specifies the contract and the semantic
// differences between the two implementations.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "naming/name.hpp"
#include "sim/fault_injector.hpp"
#include "trace/sink.hpp"
#include "util/status.hpp"

namespace hours {

struct QueryResult {
  bool delivered = false;
  util::Error::Code failure = util::Error::Code::kInternal;  ///< valid when !delivered
  std::uint32_t hops = 0;
  std::uint32_t hierarchical_hops = 0;
  std::uint32_t overlay_hops = 0;
  std::uint32_t inter_overlay_hops = 0;
  std::uint32_t backward_steps = 0;
  bool used_bootstrap_cache = false;
  /// Top-down paths tried (> 1 only for mesh nodes with multiple parents,
  /// Section 7 "Hierarchy with Mesh Topology").
  std::uint32_t path_attempts = 1;
  std::vector<std::string> path;  ///< visited node names, when requested
  // -- event-backend outcome detail (zero on the graph backend) ---------------
  std::uint32_t retransmissions = 0;  ///< repeat attempts of an unanswered hop
  std::uint32_t failovers = 0;        ///< alternate pointers after retry exhaustion
  std::uint64_t latency_ticks = 0;    ///< submission -> settlement, simulator ticks
};

/// Executes name-level queries on behalf of the facade. Implementations
/// must treat the facade's NamedHierarchy as the source of truth for
/// membership and (initial) liveness.
class QueryBackend {
 public:
  virtual ~QueryBackend() = default;

  /// Stable engine name ("graph" / "event") for reports and dispatch.
  [[nodiscard]] virtual std::string_view kind() const noexcept = 0;

  /// Client-visible clock in seconds — the unit Resolver TTLs use.
  [[nodiscard]] virtual std::uint64_t now() const noexcept = 0;

  /// Advances the clock by `seconds`. The event backend also runs its
  /// simulator across the span, so scheduled fault windows open and close,
  /// suspicion expires, and stragglers from earlier queries settle.
  virtual void advance(std::uint64_t seconds) = 0;

  /// Routes `dest` from the backend's entry point: the root, falling back
  /// to the facade's bootstrap cache when the root is unreachable.
  [[nodiscard]] virtual QueryResult execute(const naming::Name& dest, bool record_path) = 0;

  /// Routes from an explicit start node instead of the root.
  [[nodiscard]] virtual QueryResult execute_from(const naming::Name& start,
                                                 const naming::Name& dest,
                                                 bool record_path) = 0;

  /// Liveness edge already applied to the hierarchy by the facade
  /// (set_alive / strike / lift_attack). The graph backend reads liveness
  /// from the hierarchy oracle directly; the event backend mirrors the edge
  /// into its simulator.
  virtual void on_set_alive(const naming::Name& /*name*/, bool /*alive*/) {}

  /// Admission or removal changed the tree; any frozen topology snapshot
  /// (the event backend's name<->index mapping) is now stale.
  virtual void on_membership_change() {}

  /// Schedules a declarative fault plan against the backend's engine.
  /// Only the event backend supports this; returns the number of plans now
  /// installed.
  virtual util::Result<std::size_t> schedule_faults(sim::FaultPlan /*plan*/) {
    return util::Error{util::Error::Code::kInvalidArgument,
                       "fault plans need an event-driven engine; call "
                       "HoursSystem::use_event_backend() first"};
  }

  /// Timestamp for facade-level trace events: without a simulator the
  /// facade advances its logical op clock; the event backend stamps with
  /// simulator ticks so facade and protocol events share one timeline.
  [[nodiscard]] virtual std::uint64_t trace_stamp(std::uint64_t& op_clock) const {
    return ++op_clock;
  }

  /// Trace stream propagation from HoursSystem::set_tracer.
  virtual void set_tracer(trace::Tracer* /*tracer*/) {}
};

}  // namespace hours
