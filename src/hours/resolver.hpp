// Client-side resolver with answer caching (Section 7, "Query Bootstrapping
// and Caching"; related-work discussion of [Breslau99]/[Jung01]).
//
// The paper is explicit that caching is *complementary* to HOURS: it gives
// only opportunistic resolution (hit rates depend on the query pattern),
// while HOURS assures forwarding of arbitrary queries. The Resolver models
// a client: a TTL-bounded answer cache in front of HoursSystem::lookup, with
// hit/miss/failure accounting so the caching ablation bench can quantify
// exactly that claim.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "hours/hours.hpp"
#include "snapshot/json.hpp"
#include "store/record_store.hpp"

namespace hours {

/// Minimum TTL over an answer's records; answers without records get a
/// short negative-style TTL (60s) so existence checks still benefit. No
/// sentinel: a record whose TTL *is* 60 participates in the minimum like
/// any other value. Shared by Resolver and ConcurrentResolver so both
/// caches age answers identically (the hit-rate oracle depends on it).
[[nodiscard]] std::uint64_t answer_min_ttl(const std::vector<store::Record>& records) noexcept;

struct ResolverStats {
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;    ///< forwarded to the hierarchy, answered
  std::uint64_t failures = 0;        ///< forwarded, not answered
  std::uint64_t evictions = 0;
  std::uint64_t refusals = 0;        ///< denied by the negative-cache defense
  std::uint64_t zones_flagged = 0;   ///< zone flag transitions by the defense

  [[nodiscard]] double hit_rate() const noexcept {
    const auto total = cache_hits + cache_misses + failures;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) / static_cast<double>(total);
  }
};

/// Cache-busting defense knobs (DESIGN.md §11). A zone that accumulates
/// `distinct_miss_threshold` distinct forwarded-miss names within `window`
/// seconds is flagged for `flag_ttl` seconds; queries for a flagged zone are
/// refused at the resolver edge instead of costing an authoritative lookup
/// and a cache eviction. Legitimate traffic re-asks a bounded name set, so
/// it never crosses the distinct-name threshold; the random-query-string
/// attacker crosses it almost immediately.
struct NegativeCacheDefenseConfig {
  bool enabled = false;
  std::uint64_t distinct_miss_threshold = 32;
  std::uint64_t window = 10;    ///< seconds of miss history per zone
  std::uint64_t flag_ttl = 60;  ///< seconds a flagged zone stays refused
};

/// The shared evidence the defense gossips between resolver instances: a
/// per-zone digest of recent distinct forwarded-miss names plus the flagged
/// set they imply. One digest may back many resolvers (every shard of a
/// ConcurrentResolver, or several cooperating clients) so any one of them
/// detecting a burst protects all — the cache analogue of the liveness
/// plane's suspicion digests. Internally synchronized; soft state only
/// (never snapshotted — a restored resolver re-learns it within one window).
class NegativeCacheDigest {
 public:
  explicit NegativeCacheDigest(NegativeCacheDefenseConfig config) : config_(config) {}

  [[nodiscard]] const NegativeCacheDefenseConfig& config() const noexcept { return config_; }

  /// True while `zone` is flagged at time `now`.
  [[nodiscard]] bool flagged(std::string_view zone, std::uint64_t now) const;

  /// Records one forwarded miss for `name` in `zone`; returns true when this
  /// miss crosses the distinct-name threshold and flags the zone.
  bool record_miss(std::string_view zone, std::string_view name, std::uint64_t now);

  /// Flag transitions so far (ResolverStats::zones_flagged).
  [[nodiscard]] std::uint64_t zones_flagged() const;

  /// The zone a name belongs to: the suffix after its first label
  /// ("h3.cb" -> "cb", "a.b.c" -> "b.c"), or the whole name when top-level.
  [[nodiscard]] static std::string_view zone_of(std::string_view name) noexcept;

 private:
  struct ZoneTrack {
    /// Distinct recently-missed names and their last forwarded-miss time;
    /// bounded by the threshold (cleared on every flag transition).
    std::map<std::string, std::uint64_t, std::less<>> recent;
    std::uint64_t flagged_until = 0;
  };

  NegativeCacheDefenseConfig config_;
  mutable std::mutex mutex_;
  std::map<std::string, ZoneTrack, std::less<>> zones_;
  std::uint64_t zones_flagged_ = 0;
};

struct ResolveResult {
  bool answered = false;
  bool from_cache = false;
  std::uint32_t hops = 0;  ///< 0 on a cache hit
  std::vector<store::Record> records;
};

class Resolver {
 public:
  /// `capacity` bounds the number of cached names (LRU-ish eviction by
  /// earliest expiry). The system reference must outlive the resolver.
  explicit Resolver(HoursSystem& system, std::size_t capacity = 1024)
      : system_(system), capacity_(capacity) {}

  /// Resolves `name` at client time `now` (seconds, monotone). Cached
  /// answers are served until their TTL expires.
  [[nodiscard]] ResolveResult resolve(std::string_view name, std::uint64_t now);

  /// Cache-only probe: returns the cached records if present and fresh,
  /// without touching the hierarchy. Does not update statistics.
  [[nodiscard]] const std::vector<store::Record>* peek(std::string_view name,
                                                       std::uint64_t now) const;

  /// Installs an answer obtained out of band (e.g. a comparison harness
  /// that routes through a different substrate).
  void insert(std::string_view name, std::uint64_t now, std::vector<store::Record> records);

  // Backend-clock variants: `now` comes from system.now(), so cache TTLs
  // live on the same timeline as the query engine — on the event backend
  // that is simulated time, where FaultPlan windows and query deadlines are
  // scheduled.
  [[nodiscard]] ResolveResult resolve(std::string_view name);
  [[nodiscard]] const std::vector<store::Record>* peek(std::string_view name) const;
  void insert(std::string_view name, std::vector<store::Record> records);

  /// Arms the cache-busting defense with a private digest. Refused queries
  /// return unanswered without touching the hierarchy and count under
  /// stats().refusals.
  void set_defense(NegativeCacheDefenseConfig config) {
    defense_ = config.enabled ? std::make_shared<NegativeCacheDigest>(config) : nullptr;
  }
  /// Adopts a digest shared with other resolvers (null disarms).
  void share_defense(std::shared_ptr<NegativeCacheDigest> digest) {
    defense_ = std::move(digest);
  }
  [[nodiscard]] const std::shared_ptr<NegativeCacheDigest>& defense() const noexcept {
    return defense_;
  }

  [[nodiscard]] ResolverStats stats() const noexcept {
    ResolverStats s = stats_;
    if (defense_ != nullptr) s.zones_flagged = defense_->zones_flagged();
    return s;
  }
  void clear_cache() noexcept { cache_.clear(); }
  [[nodiscard]] std::size_t cached_names() const noexcept { return cache_.size(); }

  // -- snapshot ---------------------------------------------------------------
  /// Serializes the answer cache and statistics (docs/PROTOCOL.md appendix
  /// C, "resolver" layout). The HoursSystem reference is not captured: a
  /// restored resolver must be constructed over the restored system.
  [[nodiscard]] snapshot::Json to_json() const;
  /// Replaces cache and statistics with the saved state. Returns "" on
  /// success.
  [[nodiscard]] std::string from_json(const snapshot::Json& state);

 private:
  struct Entry {
    std::uint64_t expires_at = 0;
    std::vector<store::Record> records;
  };

  void evict_expired_or_oldest(std::uint64_t now);

  HoursSystem& system_;
  std::size_t capacity_;
  std::map<std::string, Entry> cache_;
  ResolverStats stats_;
  std::shared_ptr<NegativeCacheDigest> defense_;  ///< null = defense off
};

}  // namespace hours
