// Client-side resolver with answer caching (Section 7, "Query Bootstrapping
// and Caching"; related-work discussion of [Breslau99]/[Jung01]).
//
// The paper is explicit that caching is *complementary* to HOURS: it gives
// only opportunistic resolution (hit rates depend on the query pattern),
// while HOURS assures forwarding of arbitrary queries. The Resolver models
// a client: a TTL-bounded answer cache in front of HoursSystem::lookup, with
// hit/miss/failure accounting so the caching ablation bench can quantify
// exactly that claim.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "hours/hours.hpp"
#include "snapshot/json.hpp"
#include "store/record_store.hpp"

namespace hours {

/// Minimum TTL over an answer's records; answers without records get a
/// short negative-style TTL (60s) so existence checks still benefit. No
/// sentinel: a record whose TTL *is* 60 participates in the minimum like
/// any other value. Shared by Resolver and ConcurrentResolver so both
/// caches age answers identically (the hit-rate oracle depends on it).
[[nodiscard]] std::uint64_t answer_min_ttl(const std::vector<store::Record>& records) noexcept;

struct ResolverStats {
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;    ///< forwarded to the hierarchy, answered
  std::uint64_t failures = 0;        ///< forwarded, not answered
  std::uint64_t evictions = 0;

  [[nodiscard]] double hit_rate() const noexcept {
    const auto total = cache_hits + cache_misses + failures;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) / static_cast<double>(total);
  }
};

struct ResolveResult {
  bool answered = false;
  bool from_cache = false;
  std::uint32_t hops = 0;  ///< 0 on a cache hit
  std::vector<store::Record> records;
};

class Resolver {
 public:
  /// `capacity` bounds the number of cached names (LRU-ish eviction by
  /// earliest expiry). The system reference must outlive the resolver.
  explicit Resolver(HoursSystem& system, std::size_t capacity = 1024)
      : system_(system), capacity_(capacity) {}

  /// Resolves `name` at client time `now` (seconds, monotone). Cached
  /// answers are served until their TTL expires.
  [[nodiscard]] ResolveResult resolve(std::string_view name, std::uint64_t now);

  /// Cache-only probe: returns the cached records if present and fresh,
  /// without touching the hierarchy. Does not update statistics.
  [[nodiscard]] const std::vector<store::Record>* peek(std::string_view name,
                                                       std::uint64_t now) const;

  /// Installs an answer obtained out of band (e.g. a comparison harness
  /// that routes through a different substrate).
  void insert(std::string_view name, std::uint64_t now, std::vector<store::Record> records);

  // Backend-clock variants: `now` comes from system.now(), so cache TTLs
  // live on the same timeline as the query engine — on the event backend
  // that is simulated time, where FaultPlan windows and query deadlines are
  // scheduled.
  [[nodiscard]] ResolveResult resolve(std::string_view name);
  [[nodiscard]] const std::vector<store::Record>* peek(std::string_view name) const;
  void insert(std::string_view name, std::vector<store::Record> records);

  [[nodiscard]] const ResolverStats& stats() const noexcept { return stats_; }
  void clear_cache() noexcept { cache_.clear(); }
  [[nodiscard]] std::size_t cached_names() const noexcept { return cache_.size(); }

  // -- snapshot ---------------------------------------------------------------
  /// Serializes the answer cache and statistics (docs/PROTOCOL.md appendix
  /// C, "resolver" layout). The HoursSystem reference is not captured: a
  /// restored resolver must be constructed over the restored system.
  [[nodiscard]] snapshot::Json to_json() const;
  /// Replaces cache and statistics with the saved state. Returns "" on
  /// success.
  [[nodiscard]] std::string from_json(const snapshot::Json& state);

 private:
  struct Entry {
    std::uint64_t expires_at = 0;
    std::vector<store::Record> records;
  };

  void evict_expired_or_oldest(std::uint64_t now);

  HoursSystem& system_;
  std::size_t capacity_;
  std::map<std::string, Entry> cache_;
  ResolverStats stats_;
};

}  // namespace hours
