#include "hours/concurrent_resolver.hpp"

#include <algorithm>
#include <utility>

#include "util/contracts.hpp"

namespace hours {

namespace {

/// FNV-1a — stable across platforms, so shard assignment (and therefore
/// shard-local eviction behavior) is reproducible.
std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

ConcurrentResolver::ConcurrentResolver(HoursSystem& system, std::size_t capacity,
                                       unsigned shard_count)
    : system_(system) {
  HOURS_EXPECTS(capacity > 0);
  HOURS_EXPECTS(shard_count > 0);
  shard_capacity_ = (capacity + shard_count - 1) / shard_count;
  shards_.reserve(shard_count);
  for (unsigned i = 0; i < shard_count; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->live.store(new Table{}, std::memory_order_release);
    shards_.push_back(std::move(shard));
  }
}

ConcurrentResolver::~ConcurrentResolver() {
  // No concurrent readers may remain; the RCU domain frees retired tables,
  // the live ones are freed here.
  for (auto& shard : shards_) {
    delete shard->live.load(std::memory_order_relaxed);
  }
}

ConcurrentResolver::Shard& ConcurrentResolver::shard_of(std::string_view name) const {
  return *shards_[fnv1a(name) % shards_.size()];
}

bool ConcurrentResolver::probe(const Shard& shard, std::string_view name, std::uint64_t now,
                               std::vector<store::Record>* out) const {
  jobs::RcuDomain::ReadGuard guard{rcu_};
  const Table* table = shard.live.load(std::memory_order_seq_cst);
  const auto it = table->find(name);
  if (it == table->end() || it->second.expires_at <= now) return false;
  if (out != nullptr) *out = it->second.records;  // copy while the guard pins the table
  return true;
}

void ConcurrentResolver::publish(Shard& shard, std::string_view name, Entry entry,
                                 std::uint64_t now) {
  std::lock_guard<std::mutex> lock{shard.writer};
  const Table* old = shard.live.load(std::memory_order_relaxed);
  auto next = std::make_unique<Table>(*old);
  // Mirror Resolver::evict_expired_or_oldest per shard: an overwrite never
  // evicts; a fresh name over capacity drops everything expired, else the
  // entry closest to expiry.
  if (next->find(name) == next->end() && next->size() >= shard_capacity_) {
    bool dropped = false;
    for (auto it = next->begin(); it != next->end();) {
      if (it->second.expires_at <= now) {
        it = next->erase(it);
        shard.evictions.fetch_add(1, std::memory_order_relaxed);
        dropped = true;
      } else {
        ++it;
      }
    }
    if (!dropped && !next->empty()) {
      const auto victim = std::min_element(next->begin(), next->end(),
                                           [](const auto& a, const auto& b) {
                                             return a.second.expires_at < b.second.expires_at;
                                           });
      next->erase(victim);
      shard.evictions.fetch_add(1, std::memory_order_relaxed);
    }
  }
  (*next)[std::string{name}] = std::move(entry);
  const Table* fresh = next.release();
  shard.live.store(fresh, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> rcu_lock{rcu_writer_mutex_};
    rcu_.retire([old] { delete old; });
    rcu_.advance_and_reclaim();
  }
}

ResolveResult ConcurrentResolver::resolve(std::string_view name, std::uint64_t now) {
  ResolveResult result;
  Shard& shard = shard_of(name);
  if (probe(shard, name, now, &result.records)) {
    shard.hits.fetch_add(1, std::memory_order_relaxed);
    result.answered = true;
    result.from_cache = true;
    return result;
  }

  // Defense gate before the authority mutex: a refused query must not even
  // contend for the single-consumer hierarchy path — starving the authority
  // of attacker traffic is the point.
  if (defense_ != nullptr && defense_->config().enabled &&
      defense_->flagged(NegativeCacheDigest::zone_of(name), now)) {
    shard.refusals.fetch_add(1, std::memory_order_relaxed);
    return result;
  }

  std::lock_guard<std::mutex> lock{system_mutex_};
  // Double-check: a concurrent miss on the same name may have answered and
  // published while we waited for the authority mutex.
  if (probe(shard, name, now, &result.records)) {
    shard.hits.fetch_add(1, std::memory_order_relaxed);
    result.answered = true;
    result.from_cache = true;
    return result;
  }
  const auto looked_up = system_.lookup(name);
  result.hops = looked_up.query.hops;
  if (defense_ != nullptr && defense_->config().enabled) {
    (void)defense_->record_miss(NegativeCacheDigest::zone_of(name), name, now);
  }
  if (!looked_up.query.delivered) {
    shard.failures.fetch_add(1, std::memory_order_relaxed);
    return result;
  }
  shard.misses.fetch_add(1, std::memory_order_relaxed);
  result.answered = true;
  result.records = looked_up.records;
  publish(shard, name, Entry{now + answer_min_ttl(result.records), result.records}, now);
  return result;
}

std::vector<ResolveResult> ConcurrentResolver::resolve_batch(
    const std::vector<std::string>& names, std::uint64_t now) {
  std::vector<ResolveResult> results(names.size());
  std::vector<std::size_t> missing;
  for (std::size_t i = 0; i < names.size(); ++i) {
    Shard& shard = shard_of(names[i]);
    if (probe(shard, names[i], now, &results[i].records)) {
      shard.hits.fetch_add(1, std::memory_order_relaxed);
      results[i].answered = true;
      results[i].from_cache = true;
    } else {
      missing.push_back(i);
    }
  }
  if (missing.empty()) return results;

  std::lock_guard<std::mutex> lock{system_mutex_};
  std::vector<std::string> forwarded;
  std::vector<std::size_t> forwarded_index;
  forwarded.reserve(missing.size());
  for (const auto i : missing) {
    Shard& shard = shard_of(names[i]);
    // Same double-check as resolve(): the batch ahead of us may have
    // already answered some of these names.
    if (probe(shard, names[i], now, &results[i].records)) {
      shard.hits.fetch_add(1, std::memory_order_relaxed);
      results[i].answered = true;
      results[i].from_cache = true;
      continue;
    }
    if (defense_ != nullptr && defense_->config().enabled &&
        defense_->flagged(NegativeCacheDigest::zone_of(names[i]), now)) {
      shard.refusals.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    forwarded.push_back(names[i]);
    forwarded_index.push_back(i);
  }
  const auto answers = system_.lookup_batch(forwarded);
  for (std::size_t j = 0; j < answers.size(); ++j) {
    const std::size_t i = forwarded_index[j];
    Shard& shard = shard_of(names[i]);
    results[i].hops = answers[j].query.hops;
    if (defense_ != nullptr && defense_->config().enabled) {
      (void)defense_->record_miss(NegativeCacheDigest::zone_of(names[i]), names[i], now);
    }
    if (!answers[j].query.delivered) {
      shard.failures.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    shard.misses.fetch_add(1, std::memory_order_relaxed);
    results[i].answered = true;
    results[i].records = answers[j].records;
    publish(shard, names[i], Entry{now + answer_min_ttl(results[i].records), results[i].records},
            now);
  }
  return results;
}

bool ConcurrentResolver::peek(std::string_view name, std::uint64_t now,
                              std::vector<store::Record>* out) const {
  return probe(shard_of(name), name, now, out);
}

void ConcurrentResolver::insert(std::string_view name, std::uint64_t now,
                                std::vector<store::Record> records) {
  const std::uint64_t ttl = answer_min_ttl(records);
  publish(shard_of(name), name, Entry{now + ttl, std::move(records)}, now);
}

ResolverStats ConcurrentResolver::stats() const {
  ResolverStats total;
  for (const auto& shard : shards_) {
    total.cache_hits += shard->hits.load(std::memory_order_relaxed);
    total.cache_misses += shard->misses.load(std::memory_order_relaxed);
    total.failures += shard->failures.load(std::memory_order_relaxed);
    total.evictions += shard->evictions.load(std::memory_order_relaxed);
    total.refusals += shard->refusals.load(std::memory_order_relaxed);
  }
  if (defense_ != nullptr) total.zones_flagged = defense_->zones_flagged();
  return total;
}

std::size_t ConcurrentResolver::cached_names() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    jobs::RcuDomain::ReadGuard guard{rcu_};
    total += shard->live.load(std::memory_order_seq_cst)->size();
  }
  return total;
}

}  // namespace hours
